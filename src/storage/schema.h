#ifndef PROVLIN_STORAGE_SCHEMA_H_
#define PROVLIN_STORAGE_SCHEMA_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "storage/datum.h"

namespace provlin::storage {

/// One column of a table schema.
struct Column {
  std::string name;
  DatumKind kind = DatumKind::kString;
};

/// Ordered list of named, typed columns.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<Column> columns);

  size_t num_columns() const { return columns_.size(); }
  const Column& column(size_t i) const { return columns_[i]; }
  const std::vector<Column>& columns() const { return columns_; }

  /// Ordinal of the named column, or error when absent.
  Result<size_t> ColumnIndex(std::string_view name) const;

  /// Ordinals for a list of names, preserving order.
  Result<std::vector<size_t>> ColumnIndices(
      const std::vector<std::string>& names) const;

  /// Checks arity and per-column kind (NULLs are accepted in any column).
  Status ValidateRow(const Row& row) const;

  std::string ToString() const;

 private:
  std::vector<Column> columns_;
};

}  // namespace provlin::storage

#endif  // PROVLIN_STORAGE_SCHEMA_H_
