#include "storage/datum.h"

#include <functional>

namespace provlin::storage {

std::string_view DatumKindName(DatumKind kind) {
  switch (kind) {
    case DatumKind::kNull:
      return "null";
    case DatumKind::kInt:
      return "int";
    case DatumKind::kDouble:
      return "double";
    case DatumKind::kString:
      return "string";
    case DatumKind::kIdPair:
      return "id-pair";
    case DatumKind::kIndexPath:
      return "index-path";
  }
  return "?";
}

DatumKind Datum::kind() const {
  switch (rep_.index()) {
    case 0:
      return DatumKind::kNull;
    case 1:
      return DatumKind::kInt;
    case 2:
      return DatumKind::kDouble;
    case 3:
      return DatumKind::kString;
    case 4:
      return DatumKind::kIdPair;
    case 5:
      return DatumKind::kIndexPath;
  }
  return DatumKind::kNull;
}

std::string Datum::ToString() const {
  switch (kind()) {
    case DatumKind::kNull:
      return "NULL";
    case DatumKind::kInt:
      return std::to_string(AsInt());
    case DatumKind::kDouble:
      return std::to_string(AsDouble());
    case DatumKind::kString:
      return "'" + AsString() + "'";
    case DatumKind::kIdPair: {
      IdPair p = AsIdPair();
      return "(" + std::to_string(p.first) + ":" + std::to_string(p.second) +
             ")";
    }
    case DatumKind::kIndexPath: {
      std::string out = "[";
      const IndexPath& path = AsIndexPath();
      for (size_t i = 0; i < path.size(); ++i) {
        if (i > 0) out += ".";
        out += std::to_string(path[i]);
      }
      out += "]";
      return out;
    }
  }
  return "?";
}

bool Datum::operator<(const Datum& other) const {
  if (rep_.index() != other.rep_.index()) {
    return rep_.index() < other.rep_.index();
  }
  return rep_ < other.rep_;
}

size_t Datum::Hash() const {
  switch (kind()) {
    case DatumKind::kNull:
      return 0x517cc1b7;
    case DatumKind::kInt:
      return std::hash<int64_t>{}(AsInt());
    case DatumKind::kDouble:
      return std::hash<double>{}(AsDouble());
    case DatumKind::kString:
      return std::hash<std::string>{}(AsString());
    case DatumKind::kIdPair:
      return std::hash<uint64_t>{}(AsIdPair().Packed()) ^ 0x9e3779b97f4a7c15ull;
    case DatumKind::kIndexPath: {
      size_t h = 0xcbf29ce484222325ull;
      for (int32_t p : AsIndexPath()) {
        h ^= static_cast<size_t>(static_cast<uint32_t>(p));
        h *= 0x100000001b3ull;
      }
      return h;
    }
  }
  return 0;
}

int CompareKeys(const Key& a, const Key& b) {
  size_t n = std::min(a.size(), b.size());
  for (size_t i = 0; i < n; ++i) {
    if (a[i] < b[i]) return -1;
    if (b[i] < a[i]) return 1;
  }
  if (a.size() < b.size()) return -1;
  if (a.size() > b.size()) return 1;
  return 0;
}

bool KeyHasPrefix(const Key& key, const Key& prefix) {
  if (prefix.size() > key.size()) return false;
  for (size_t i = 0; i < prefix.size(); ++i) {
    if (!(key[i] == prefix[i])) return false;
  }
  return true;
}

size_t HashKey(const Key& key) {
  size_t h = 0xcbf29ce484222325ull;
  for (const Datum& d : key) {
    h ^= d.Hash();
    h *= 0x100000001b3ull;
  }
  return h;
}

std::string KeyToString(const Key& key) {
  std::string out = "(";
  for (size_t i = 0; i < key.size(); ++i) {
    if (i > 0) out += ", ";
    out += key[i].ToString();
  }
  out += ")";
  return out;
}

}  // namespace provlin::storage
