#include "storage/schema.h"

namespace provlin::storage {

Schema::Schema(std::vector<Column> columns) : columns_(std::move(columns)) {}

Result<size_t> Schema::ColumnIndex(std::string_view name) const {
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i].name == name) return i;
  }
  return Status::NotFound("no column named '" + std::string(name) + "'");
}

Result<std::vector<size_t>> Schema::ColumnIndices(
    const std::vector<std::string>& names) const {
  std::vector<size_t> out;
  out.reserve(names.size());
  for (const std::string& n : names) {
    PROVLIN_ASSIGN_OR_RETURN(size_t idx, ColumnIndex(n));
    out.push_back(idx);
  }
  return out;
}

Status Schema::ValidateRow(const Row& row) const {
  if (row.size() != columns_.size()) {
    return Status::InvalidArgument(
        "row arity " + std::to_string(row.size()) + " != schema arity " +
        std::to_string(columns_.size()));
  }
  for (size_t i = 0; i < row.size(); ++i) {
    if (row[i].is_null()) continue;
    if (row[i].kind() != columns_[i].kind) {
      return Status::InvalidArgument(
          "column '" + columns_[i].name + "' expects " +
          std::string(DatumKindName(columns_[i].kind)) + ", got " +
          std::string(DatumKindName(row[i].kind())));
    }
  }
  return Status::OK();
}

std::string Schema::ToString() const {
  std::string out = "(";
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (i > 0) out += ", ";
    out += columns_[i].name;
    out += " ";
    out += DatumKindName(columns_[i].kind);
  }
  out += ")";
  return out;
}

}  // namespace provlin::storage
