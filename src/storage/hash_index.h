#ifndef PROVLIN_STORAGE_HASH_INDEX_H_
#define PROVLIN_STORAGE_HASH_INDEX_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "storage/datum.h"

namespace provlin::storage {

/// Unordered secondary index: equality probes only, O(1) expected.
/// Used for the value-id lookups where range/prefix access is never
/// needed; every other trace index is a BPlusTree.
class HashIndex {
 public:
  void Insert(const Key& key, uint64_t rid);
  bool Erase(const Key& key, uint64_t rid);

  /// Row ids for `key` in insertion order; empty when absent.
  std::vector<uint64_t> Lookup(const Key& key) const;

  size_t size() const { return size_; }

  /// Approximate resident bytes: bucket array, per-key datum heap, and
  /// rid vectors.
  size_t ApproxMemoryUsage() const;

 private:
  struct KeyHash {
    size_t operator()(const Key& k) const { return HashKey(k); }
  };

  std::unordered_map<Key, std::vector<uint64_t>, KeyHash> map_;
  size_t size_ = 0;
};

}  // namespace provlin::storage

#endif  // PROVLIN_STORAGE_HASH_INDEX_H_
