#ifndef PROVLIN_STORAGE_BPLUS_TREE_H_
#define PROVLIN_STORAGE_BPLUS_TREE_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/status.h"
#include "storage/datum.h"

namespace provlin::storage {

/// In-memory B+tree over composite keys, used for every ordered secondary
/// index of the trace database. Duplicate user keys are disambiguated by
/// the row id, which is appended as the least-significant key component,
/// so equality lookups become prefix scans.
///
/// Structure: internal nodes hold separator keys and child pointers; leaf
/// nodes hold (key, row-id) entries and are linked left-to-right for range
/// scans. Fanout is fixed at kFanout; nodes split when they exceed it and
/// borrow/merge when they underflow below kFanout/2 after a deletion.
class BPlusTree {
 public:
  /// One indexed entry: composite user key plus owning row id.
  struct Entry {
    Key key;
    uint64_t rid = 0;
  };

  BPlusTree();
  ~BPlusTree();

  BPlusTree(const BPlusTree&) = delete;
  BPlusTree& operator=(const BPlusTree&) = delete;

  /// Inserts (key, rid). Duplicate (key, rid) pairs are ignored.
  void Insert(const Key& key, uint64_t rid);

  /// Removes (key, rid); returns false when absent.
  bool Erase(const Key& key, uint64_t rid);

  /// Row ids of all entries whose key equals `key`, in rid order.
  std::vector<uint64_t> Lookup(const Key& key) const;

  /// Row ids of all entries whose key has `prefix` as its leading
  /// components, in (key, rid) order. An empty prefix returns everything.
  std::vector<uint64_t> PrefixLookup(const Key& prefix) const;

  /// Row ids of entries with lo <= key <= hi (inclusive bounds compare on
  /// full composite keys).
  std::vector<uint64_t> RangeLookup(const Key& lo, const Key& hi) const;

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  /// Tree height (1 = a lone leaf). Exposed for tests and stats.
  int height() const;

  /// Validates structural invariants: sorted entries, separator ordering,
  /// node occupancy, leaf-chain consistency, size agreement. Used by the
  /// property tests after randomized workloads.
  Status CheckInvariants() const;

  /// Read cursor positioned inside the leaf chain.
  class Iterator {
   public:
    bool Valid() const { return leaf_ != nullptr; }
    const Key& key() const;
    uint64_t rid() const;
    void Next();

   private:
    friend class BPlusTree;
    const void* leaf_ = nullptr;  // LeafNode*
    size_t pos_ = 0;
  };

  Iterator Begin() const;
  /// First entry with key-tuple >= (key, rid = 0).
  Iterator Seek(const Key& key) const;

 private:
  struct Node;
  struct LeafNode;
  struct InternalNode;

  static constexpr size_t kFanout = 64;
  static constexpr size_t kMinOccupancy = kFanout / 2;

  /// Result of a child insert that overflowed and split.
  struct SplitResult {
    Entry separator;            // first entry of the right node
    std::unique_ptr<Node> right;
  };

  static int CompareEntries(const Entry& a, const Entry& b);

  bool InsertRec(Node* node, const Entry& entry,
                 std::unique_ptr<SplitResult>* split);
  bool EraseRec(Node* node, const Entry& entry, bool* underflow);
  void FixChildUnderflow(InternalNode* parent, size_t child_idx);

  const LeafNode* FindLeaf(const Entry& probe) const;

  std::unique_ptr<Node> root_;
  size_t size_ = 0;
};

}  // namespace provlin::storage

#endif  // PROVLIN_STORAGE_BPLUS_TREE_H_
