#ifndef PROVLIN_STORAGE_BPLUS_TREE_H_
#define PROVLIN_STORAGE_BPLUS_TREE_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/status.h"
#include "storage/datum.h"

namespace provlin::storage {

/// In-memory B+tree over composite keys, used for every ordered secondary
/// index of the trace database. Duplicate user keys are disambiguated by
/// the row id, which is appended as the least-significant key component,
/// so equality lookups become prefix scans.
///
/// Structure: internal nodes hold separator keys and child pointers; leaf
/// nodes hold (key, row-id) entries and are linked left-to-right for range
/// scans. Fanout is fixed at kFanout; nodes split when they exceed it and
/// borrow/merge when they underflow below kFanout/2 after a deletion.
class BPlusTree {
 public:
  /// One indexed entry: composite user key plus owning row id.
  struct Entry {
    Key key;
    uint64_t rid = 0;
  };

  BPlusTree();
  ~BPlusTree();

  BPlusTree(const BPlusTree&) = delete;
  BPlusTree& operator=(const BPlusTree&) = delete;

  /// Inserts (key, rid). Duplicate (key, rid) pairs are ignored.
  void Insert(const Key& key, uint64_t rid);

  /// Removes (key, rid); returns false when absent.
  bool Erase(const Key& key, uint64_t rid);

  /// Row ids of all entries whose key equals `key`, in rid order.
  std::vector<uint64_t> Lookup(const Key& key) const;

  /// Row ids of all entries whose key has `prefix` as its leading
  /// components, in (key, rid) order. An empty prefix returns everything.
  std::vector<uint64_t> PrefixLookup(const Key& prefix) const;

  /// Row ids of entries with lo <= key <= hi (inclusive bounds compare on
  /// full composite keys).
  std::vector<uint64_t> RangeLookup(const Key& lo, const Key& hi) const;

  /// One probe of a MultiSeek batch: the batched forms of Lookup
  /// (kPoint, key = lo), PrefixLookup (kPrefix, prefix = lo), and
  /// RangeLookup (kRange, [lo, hi] inclusive).
  struct Probe {
    enum class Kind { kPoint, kPrefix, kRange };
    Kind kind = Kind::kPoint;
    Key lo;
    Key hi;  // only read for kRange
  };

  /// Batched lookup answer in flat CSR form: probe i's row ids are
  /// rids[offsets[i] .. offsets[i+1]), in the same order the
  /// single-probe calls produce them, and descents counts the physical
  /// root-to-leaf walks the batch cost. The flat layout is deliberate:
  /// a vector-of-vectors costs one heap allocation per probe, which on
  /// small in-memory trees outweighs the descents the batch saves.
  struct MultiSeekResult {
    std::vector<uint64_t> rids;
    std::vector<size_t> offsets = {0};  // probe count + 1 entries
    uint64_t descents = 0;

    size_t num_probes() const { return offsets.size() - 1; }
    /// Probe i's row ids as a copy — convenience for tests and
    /// diagnostics; hot paths index rids/offsets directly.
    std::vector<uint64_t> MatchesOf(size_t i) const {
      return std::vector<uint64_t>(rids.begin() + static_cast<long>(offsets[i]),
                                   rids.begin() +
                                       static_cast<long>(offsets[i + 1]));
    }
  };

  /// Answers a batch of probes in one amortized pass. The tree descends
  /// from the root for the first probe only; each subsequent probe whose
  /// lower bound is >= the previous probe's advances along the linked
  /// leaf chain from the previous probe's start position (bounded by
  /// kMaxLeafWalk leaves before falling back to a fresh descent).
  /// Callers get maximum amortization by sorting probes by `lo`, but any
  /// order is answered correctly — an out-of-order probe just pays a
  /// descent.
  MultiSeekResult MultiSeek(const std::vector<Probe>& probes) const;

  size_t size() const { return size_; }

  /// Approximate resident bytes of the whole tree: node objects, entry
  /// vectors, and every key's datum heap.
  size_t ApproxMemoryUsage() const;
  bool empty() const { return size_ == 0; }

  /// Tree height (1 = a lone leaf). Exposed for tests and stats.
  int height() const;

  /// Validates structural invariants: sorted entries, separator ordering,
  /// node occupancy, leaf-chain consistency, size agreement. Used by the
  /// property tests after randomized workloads.
  Status CheckInvariants() const;

  /// Read cursor positioned inside the leaf chain.
  class Iterator {
   public:
    bool Valid() const { return leaf_ != nullptr; }
    const Key& key() const;
    uint64_t rid() const;
    void Next();

   private:
    friend class BPlusTree;
    const void* leaf_ = nullptr;  // LeafNode*
    size_t pos_ = 0;
  };

  Iterator Begin() const;
  /// First entry with key-tuple >= (key, rid = 0).
  Iterator Seek(const Key& key) const;

 private:
  struct Node;
  struct LeafNode;
  struct InternalNode;

  static constexpr size_t kFanout = 64;
  static constexpr size_t kMinOccupancy = kFanout / 2;
  /// How many leaves MultiSeek walks forward before a chain advance is
  /// judged more expensive than a fresh O(height) descent.
  static constexpr int kMaxLeafWalk = 8;

  /// Result of a child insert that overflowed and split.
  struct SplitResult {
    Entry separator;            // first entry of the right node
    std::unique_ptr<Node> right;
  };

  static int CompareEntries(const Entry& a, const Entry& b);

  bool InsertRec(Node* node, const Entry& entry,
                 std::unique_ptr<SplitResult>* split);
  bool EraseRec(Node* node, const Entry& entry, bool* underflow);
  void FixChildUnderflow(InternalNode* parent, size_t child_idx);

  const LeafNode* FindLeaf(const Entry& probe) const;
  /// FindLeaf for a probe Entry{key, rid 0}, without copying the key.
  const LeafNode* FindLeafForKey(const Key& key) const;

  std::unique_ptr<Node> root_;
  size_t size_ = 0;
};

}  // namespace provlin::storage

#endif  // PROVLIN_STORAGE_BPLUS_TREE_H_
