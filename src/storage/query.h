#ifndef PROVLIN_STORAGE_QUERY_H_
#define PROVLIN_STORAGE_QUERY_H_

#include <optional>
#include <string>
#include <vector>

#include "common/result.h"
#include "storage/table.h"

namespace provlin::storage {

/// Declarative single-table selection: a conjunction of column-equality
/// predicates plus an optional prefix predicate on one column — either a
/// string prefix (legacy encoded-index columns) or a path prefix on a
/// kIndexPath column. This is the query surface the lineage engines
/// target — the C++ analogue of the SQL the paper issues against MySQL.
struct SelectQuery {
  struct Equal {
    std::string column;
    Datum value;
  };
  struct StringPrefix {
    std::string column;
    std::string prefix;
  };
  /// Matches rows whose kIndexPath column starts with `prefix`
  /// (component-wise; an equal path matches too). Lexicographic path
  /// order makes this a contiguous B+-tree range, so "all sub-elements
  /// of index p" stays a single range scan under integer keys.
  struct PathPrefix {
    std::string column;
    IndexPath prefix;
  };

  std::vector<Equal> equals;
  std::optional<StringPrefix> string_prefix;
  std::optional<PathPrefix> path_prefix;
};

/// How the planner answered a query — surfaced so tests and benches can
/// assert that trace queries never degrade to full scans (the paper
/// relies on "none requiring full table scans").
enum class AccessPath { kIndexEq, kIndexRange, kFullScan };

std::string_view AccessPathName(AccessPath path);

/// Borrowed view of one matching row. In zero-copy mode the view points
/// into the table's own row storage, so it is invalidated by the next
/// write (Insert/Delete) to that table — views must be consumed before
/// any mutation, the same lifetime rule as Table::PeekRow.
class RowView {
 public:
  RowView() = default;
  explicit RowView(const Row* row) : row_(row) {}

  bool valid() const { return row_ != nullptr; }
  const Row& row() const { return *row_; }
  const Datum& operator[](size_t col) const { return (*row_)[col]; }
  size_t size() const { return row_->size(); }

 private:
  const Row* row_ = nullptr;
};

struct SelectOptions {
  /// When set, results carry row ids + borrowed row pointers instead of
  /// deep-copied rows (see RowView for the lifetime rule). The hot trace
  /// probes use this to stop paying a Datum deep-copy per matching row.
  bool zero_copy = false;
};

struct SelectResult {
  /// Deep-copied rows (copy mode only).
  std::vector<Row> rows;
  /// Matching row ids (zero-copy mode only), in result order.
  std::vector<uint64_t> rids;
  /// Borrowed rows parallel to `rids` (zero-copy mode only).
  std::vector<const Row*> row_ptrs;
  AccessPath access_path = AccessPath::kFullScan;
  std::string index_used;  // empty for full scans
  bool zero_copy = false;

  size_t num_rows() const { return zero_copy ? rids.size() : rows.size(); }
  RowView ViewAt(size_t i) const {
    return RowView(zero_copy ? row_ptrs[i] : &rows[i]);
  }
};

/// Smallest string that sorts after every extension of `prefix`: the
/// prefix with trailing 0xFF bytes dropped and the last remaining byte
/// bumped (mirroring the path-prefix successor). nullopt when no finite
/// successor exists (empty or all-0xFF prefix — such prefixes cannot
/// bound an index range and fall back to the residual filter).
std::optional<std::string> StringPrefixSuccessor(const std::string& prefix);

/// Plans and executes `query` against `table`.
///
/// Index selection: a BTree index is usable when its leading columns are
/// covered by equality predicates; if a string-prefix predicate exists it
/// must sit on the next index column, turning the probe into a range scan
/// (prefix .. successor). A hash index is usable only when its columns
/// are exactly the equality-predicate columns. Among usable indexes the
/// one covering the most predicates wins. Residual predicates are applied
/// as a filter; with no usable index the table is fully scanned.
Result<SelectResult> ExecuteSelect(const Table& table,
                                   const SelectQuery& query,
                                   const SelectOptions& options = {});

/// Answers a batch of queries against one table in one amortized pass.
/// Queries are planned once per predicate shape (the set of equality
/// columns plus the prefix predicate's column — index choice depends
/// only on the shape, not the probed values), grouped onto their chosen
/// BTree index, sorted by probe key, and executed through
/// Table::IndexMultiSeek so consecutive probes advance along the leaf
/// chain instead of re-descending. Queries whose plan is not a BTree
/// probe (hash index, full scan, un-boundable prefix) are answered
/// individually. results[i] answers queries[i], identical to what
/// ExecuteSelect(table, queries[i], options) returns.
Result<std::vector<SelectResult>> ExecuteMultiSelect(
    const Table& table, const std::vector<SelectQuery>& queries,
    const SelectOptions& options = {});

}  // namespace provlin::storage

#endif  // PROVLIN_STORAGE_QUERY_H_
