#ifndef PROVLIN_STORAGE_QUERY_H_
#define PROVLIN_STORAGE_QUERY_H_

#include <optional>
#include <string>
#include <vector>

#include "common/result.h"
#include "storage/table.h"

namespace provlin::storage {

/// Declarative single-table selection: a conjunction of column-equality
/// predicates plus an optional prefix predicate on one column — either a
/// string prefix (legacy encoded-index columns) or a path prefix on a
/// kIndexPath column. This is the query surface the lineage engines
/// target — the C++ analogue of the SQL the paper issues against MySQL.
struct SelectQuery {
  struct Equal {
    std::string column;
    Datum value;
  };
  struct StringPrefix {
    std::string column;
    std::string prefix;
  };
  /// Matches rows whose kIndexPath column starts with `prefix`
  /// (component-wise; an equal path matches too). Lexicographic path
  /// order makes this a contiguous B+-tree range, so "all sub-elements
  /// of index p" stays a single range scan under integer keys.
  struct PathPrefix {
    std::string column;
    IndexPath prefix;
  };

  std::vector<Equal> equals;
  std::optional<StringPrefix> string_prefix;
  std::optional<PathPrefix> path_prefix;
};

/// How the planner answered a query — surfaced so tests and benches can
/// assert that trace queries never degrade to full scans (the paper
/// relies on "none requiring full table scans").
enum class AccessPath { kIndexEq, kIndexRange, kFullScan };

std::string_view AccessPathName(AccessPath path);

struct SelectResult {
  std::vector<Row> rows;
  AccessPath access_path = AccessPath::kFullScan;
  std::string index_used;  // empty for full scans
};

/// Plans and executes `query` against `table`.
///
/// Index selection: a BTree index is usable when its leading columns are
/// covered by equality predicates; if a string-prefix predicate exists it
/// must sit on the next index column, turning the probe into a range scan
/// (prefix .. prefix+0xFF). A hash index is usable only when its columns
/// are exactly the equality-predicate columns. Among usable indexes the
/// one covering the most predicates wins. Residual predicates are applied
/// as a filter; with no usable index the table is fully scanned.
Result<SelectResult> ExecuteSelect(const Table& table,
                                   const SelectQuery& query);

}  // namespace provlin::storage

#endif  // PROVLIN_STORAGE_QUERY_H_
