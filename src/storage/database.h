#ifndef PROVLIN_STORAGE_DATABASE_H_
#define PROVLIN_STORAGE_DATABASE_H_

#include <map>
#include <memory>
#include <string>

#include "common/interner.h"
#include "common/result.h"
#include "storage/table.h"

namespace provlin::storage {

/// Catalog of tables — the embedded stand-in for the paper's local MySQL
/// instance. Owns all tables plus the identifier dictionaries that
/// kIdPair / kIndexPath columns refer to; supports binary save/load of
/// the full database image (indexes are rebuilt on load, dictionaries
/// are persisted verbatim so ids stay stable across save/load).
///
/// Thread safety: writes are single-threaded (one thread owns the
/// capture side, like the paper's single-user desktop setting), but the
/// read path is safe to share: const query paths only bump relaxed
/// atomic statistics counters (plus thread_local mirrors), and the
/// identifier dictionaries synchronize internally, so any number of
/// threads may query a quiescent database concurrently — the contract
/// the batch lineage service relies on. Interleaving writes with reads
/// still requires external synchronization.
class Database {
 public:
  Database() = default;

  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;
  Database(Database&&) = default;
  Database& operator=(Database&&) = default;

  /// Creates an empty table.
  Result<Table*> CreateTable(const std::string& name, Schema schema);

  Result<Table*> GetTable(const std::string& name);
  Result<const Table*> GetTable(const std::string& name) const;

  Status DropTable(const std::string& name);

  std::vector<std::string> TableNames() const;

  /// Total live rows across all tables.
  size_t TotalRows() const;

  /// Aggregated access-path counters across all tables.
  TableStats AggregateStats() const;
  void ResetStats();

  /// Serializes the whole database to `path` / restores it. Load replaces
  /// the current catalog and dictionaries.
  Status Save(const std::string& path) const;
  Status Load(const std::string& path);

  /// Dictionary of interned names (processors, ports, run labels).
  /// kIdPair cells hold SymbolIds from this table.
  common::SymbolTable& symbols() { return symbols_; }
  const common::SymbolTable& symbols() const { return symbols_; }

  /// Dictionary of interned index paths. kIndexPath cells store raw
  /// paths inline (so range scans order correctly); this dictionary
  /// gives lineage plans a dense IndexId handle for cache keys.
  common::IndexDictionary& index_dict() { return index_dict_; }
  const common::IndexDictionary& index_dict() const { return index_dict_; }

 private:
  std::map<std::string, std::unique_ptr<Table>> tables_;
  common::SymbolTable symbols_;
  common::IndexDictionary index_dict_;
};

}  // namespace provlin::storage

#endif  // PROVLIN_STORAGE_DATABASE_H_
