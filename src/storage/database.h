#ifndef PROVLIN_STORAGE_DATABASE_H_
#define PROVLIN_STORAGE_DATABASE_H_

#include <map>
#include <memory>
#include <string>

#include "common/result.h"
#include "storage/table.h"

namespace provlin::storage {

/// Catalog of tables — the embedded stand-in for the paper's local MySQL
/// instance. Owns all tables; supports binary save/load of the full
/// database image (indexes are rebuilt on load).
///
/// Thread safety: none — like the paper's single-user desktop setting,
/// one thread owns a Database (note that even const query paths bump the
/// access-path statistics counters). Share across threads with external
/// synchronization, or give each thread its own loaded image.
class Database {
 public:
  Database() = default;

  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;
  Database(Database&&) = default;
  Database& operator=(Database&&) = default;

  /// Creates an empty table.
  Result<Table*> CreateTable(const std::string& name, Schema schema);

  Result<Table*> GetTable(const std::string& name);
  Result<const Table*> GetTable(const std::string& name) const;

  Status DropTable(const std::string& name);

  std::vector<std::string> TableNames() const;

  /// Total live rows across all tables.
  size_t TotalRows() const;

  /// Aggregated access-path counters across all tables.
  TableStats AggregateStats() const;
  void ResetStats();

  /// Serializes the whole database to `path` / restores it. Load replaces
  /// the current catalog.
  Status Save(const std::string& path) const;
  Status Load(const std::string& path);

 private:
  std::map<std::string, std::unique_ptr<Table>> tables_;
};

}  // namespace provlin::storage

#endif  // PROVLIN_STORAGE_DATABASE_H_
