#ifndef PROVLIN_STORAGE_DATABASE_H_
#define PROVLIN_STORAGE_DATABASE_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/annotations.h"
#include "common/interner.h"
#include "common/result.h"
#include "common/sync.h"
#include "storage/table.h"

namespace provlin::storage {

/// Catalog of tables — the embedded stand-in for the paper's local MySQL
/// instance. Owns all tables plus the identifier dictionaries that
/// kIdPair / kIndexPath columns refer to; supports binary save/load of
/// the full database image (indexes are rebuilt on load, dictionaries
/// are persisted verbatim so ids stay stable across save/load).
///
/// Thread safety: writes are single-threaded (one thread owns the
/// capture side, like the paper's single-user desktop setting), but the
/// read path is safe to share: const query paths only bump relaxed
/// atomic statistics counters (plus thread_local mirrors), and the
/// identifier dictionaries synchronize internally, so any number of
/// threads may query a quiescent database concurrently — the contract
/// the batch lineage service relies on. Interleaving writes with reads
/// still requires external synchronization.
class Database {
 public:
  Database() = default;

  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;
  Database(Database&&) = default;
  Database& operator=(Database&&) = default;

  /// Creates an empty table.
  Result<Table*> CreateTable(const std::string& name, Schema schema);

  Result<Table*> GetTable(const std::string& name);
  Result<const Table*> GetTable(const std::string& name) const;

  Status DropTable(const std::string& name);

  std::vector<std::string> TableNames() const;

  /// Total live rows across all tables.
  size_t TotalRows() const;

  /// Aggregated access-path counters across all tables.
  TableStats AggregateStats() const;
  void ResetStats();

  /// Serializes the whole database to `path` / restores it. Load replaces
  /// the current catalog and dictionaries.
  Status Save(const std::string& path) const;
  Status Load(const std::string& path);

  /// Dictionary of interned names (processors, ports, run labels).
  /// kIdPair cells hold SymbolIds from this table.
  common::SymbolTable& symbols() { return symbols_; }
  const common::SymbolTable& symbols() const { return symbols_; }

  /// Dictionary of interned index paths. kIndexPath cells store raw
  /// paths inline (so range scans order correctly); this dictionary
  /// gives lineage plans a dense IndexId handle for cache keys.
  common::IndexDictionary& index_dict() { return index_dict_; }
  const common::IndexDictionary& index_dict() const { return index_dict_; }

  // --- blob catalog ---------------------------------------------------------
  // Named immutable byte strings riding in the image alongside the
  // table catalog — compressed trace segments, keyed
  // "segment/<table>/<run>". Internally synchronized (unlike the table
  // catalog): sealing runs on different shards holds different shard
  // locks but shares this one catalog.

  /// Stores (or replaces) a blob. The bytes are shared, not copied.
  void PutBlob(const std::string& key,
               std::shared_ptr<const std::string> bytes);
  /// The blob under `key`, or nullptr when absent.
  std::shared_ptr<const std::string> GetBlob(const std::string& key) const;
  /// Removes `key` (no-op when absent).
  void DropBlob(const std::string& key);
  /// All blob keys, sorted.
  std::vector<std::string> BlobKeys() const;

 private:
  /// The catalog lives behind a pointer so Database stays movable
  /// (common::Mutex is neither movable nor copyable).
  struct Blobs {
    mutable common::Mutex mu{common::LockRank::kDatabaseBlobs};
    std::map<std::string, std::shared_ptr<const std::string>> map
        GUARDED_BY(mu);
  };

  std::map<std::string, std::unique_ptr<Table>> tables_;
  common::SymbolTable symbols_;
  common::IndexDictionary index_dict_;
  std::unique_ptr<Blobs> blobs_ = std::make_unique<Blobs>();
};

}  // namespace provlin::storage

#endif  // PROVLIN_STORAGE_DATABASE_H_
