#include "storage/hash_index.h"

#include <algorithm>

namespace provlin::storage {

void HashIndex::Insert(const Key& key, uint64_t rid) {
  std::vector<uint64_t>& rids = map_[key];
  if (std::find(rids.begin(), rids.end(), rid) != rids.end()) return;
  rids.push_back(rid);
  ++size_;
}

bool HashIndex::Erase(const Key& key, uint64_t rid) {
  auto it = map_.find(key);
  if (it == map_.end()) return false;
  auto& rids = it->second;
  auto pos = std::find(rids.begin(), rids.end(), rid);
  if (pos == rids.end()) return false;
  rids.erase(pos);
  if (rids.empty()) map_.erase(it);
  --size_;
  return true;
}

std::vector<uint64_t> HashIndex::Lookup(const Key& key) const {
  auto it = map_.find(key);
  if (it == map_.end()) return {};
  return it->second;
}

}  // namespace provlin::storage
