#include "storage/hash_index.h"

#include <algorithm>

#include "storage/segment.h"

namespace provlin::storage {

void HashIndex::Insert(const Key& key, uint64_t rid) {
  std::vector<uint64_t>& rids = map_[key];
  if (std::find(rids.begin(), rids.end(), rid) != rids.end()) return;
  rids.push_back(rid);
  ++size_;
}

bool HashIndex::Erase(const Key& key, uint64_t rid) {
  auto it = map_.find(key);
  if (it == map_.end()) return false;
  auto& rids = it->second;
  auto pos = std::find(rids.begin(), rids.end(), rid);
  if (pos == rids.end()) return false;
  rids.erase(pos);
  if (rids.empty()) map_.erase(it);
  --size_;
  return true;
}

std::vector<uint64_t> HashIndex::Lookup(const Key& key) const {
  auto it = map_.find(key);
  if (it == map_.end()) return {};
  return it->second;
}

size_t HashIndex::ApproxMemoryUsage() const {
  size_t total = sizeof(HashIndex);
  // Bucket array plus one node allocation per element (libstdc++-style
  // chaining: node header + the stored pair).
  total += map_.bucket_count() * sizeof(void*);
  for (const auto& [key, rids] : map_) {
    total += 2 * sizeof(void*);  // node overhead
    total += RowApproxBytes(key);
    total += sizeof(rids) + rids.capacity() * sizeof(uint64_t);
  }
  return total;
}

}  // namespace provlin::storage
