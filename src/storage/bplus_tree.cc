#include "storage/bplus_tree.h"

#include <algorithm>
#include <cassert>

#include "storage/segment.h"

namespace provlin::storage {

// ---------------------------------------------------------------------------
// Node layout
// ---------------------------------------------------------------------------

struct BPlusTree::Node {
  explicit Node(bool leaf) : is_leaf(leaf) {}
  virtual ~Node() = default;
  bool is_leaf;
};

struct BPlusTree::LeafNode : Node {
  LeafNode() : Node(true) {}
  std::vector<Entry> entries;
  LeafNode* next = nullptr;
};

struct BPlusTree::InternalNode : Node {
  InternalNode() : Node(false) {}
  // children.size() == seps.size() + 1. seps[i] is a lower bound for the
  // subtree children[i+1]: every entry e in children[i+1] satisfies
  // seps[i] <= e, and every entry in children[i] is < seps[i].
  std::vector<Entry> seps;
  std::vector<std::unique_ptr<Node>> children;
};

int BPlusTree::CompareEntries(const Entry& a, const Entry& b) {
  int c = CompareKeys(a.key, b.key);
  if (c != 0) return c;
  if (a.rid < b.rid) return -1;
  if (a.rid > b.rid) return 1;
  return 0;
}

namespace {

bool EntryLess(const BPlusTree::Entry& a, const BPlusTree::Entry& b) {
  int c = CompareKeys(a.key, b.key);
  if (c != 0) return c < 0;
  return a.rid < b.rid;
}

// Entry comparisons against a bare probe key, semantically identical to
// EntryLess against Entry{key, rid 0} — used where materializing the
// probe Entry would deep-copy the key.
bool EntryBelowKey(const BPlusTree::Entry& e, const Key& key) {
  // The rid tie-break can never fire: no rid is below the probe's 0.
  return CompareKeys(e.key, key) < 0;
}

bool KeyBelowEntry(const Key& key, const BPlusTree::Entry& e) {
  int c = CompareKeys(key, e.key);
  return c < 0 || (c == 0 && e.rid != 0);
}

}  // namespace

// ---------------------------------------------------------------------------
// Construction
// ---------------------------------------------------------------------------

BPlusTree::BPlusTree() : root_(std::make_unique<LeafNode>()) {}
BPlusTree::~BPlusTree() = default;

// ---------------------------------------------------------------------------
// Descent helpers
// ---------------------------------------------------------------------------

const BPlusTree::LeafNode* BPlusTree::FindLeaf(const Entry& probe) const {
  const Node* node = root_.get();
  while (!node->is_leaf) {
    const auto* in = static_cast<const InternalNode*>(node);
    // Child index = number of separators <= probe.
    size_t idx = static_cast<size_t>(
        std::upper_bound(in->seps.begin(), in->seps.end(), probe, EntryLess) -
        in->seps.begin());
    node = in->children[idx].get();
  }
  return static_cast<const LeafNode*>(node);
}

const BPlusTree::LeafNode* BPlusTree::FindLeafForKey(const Key& key) const {
  // Same descent as FindLeaf(Entry{key, 0}) without copying the key.
  const Node* node = root_.get();
  while (!node->is_leaf) {
    const auto* in = static_cast<const InternalNode*>(node);
    size_t idx = static_cast<size_t>(
        std::upper_bound(in->seps.begin(), in->seps.end(), key,
                         KeyBelowEntry) -
        in->seps.begin());
    node = in->children[idx].get();
  }
  return static_cast<const LeafNode*>(node);
}

// ---------------------------------------------------------------------------
// Insert
// ---------------------------------------------------------------------------

void BPlusTree::Insert(const Key& key, uint64_t rid) {
  Entry entry{key, rid};
  std::unique_ptr<SplitResult> split;
  if (!InsertRec(root_.get(), entry, &split)) return;  // duplicate
  ++size_;
  if (split != nullptr) {
    // Grow a new root above the old one.
    auto new_root = std::make_unique<InternalNode>();
    new_root->seps.push_back(split->separator);
    new_root->children.push_back(std::move(root_));
    new_root->children.push_back(std::move(split->right));
    root_ = std::move(new_root);
  }
}

bool BPlusTree::InsertRec(Node* node, const Entry& entry,
                          std::unique_ptr<SplitResult>* split) {
  if (node->is_leaf) {
    auto* leaf = static_cast<LeafNode*>(node);
    auto it = std::lower_bound(leaf->entries.begin(), leaf->entries.end(),
                               entry, EntryLess);
    if (it != leaf->entries.end() && CompareEntries(*it, entry) == 0) {
      return false;  // exact duplicate
    }
    leaf->entries.insert(it, entry);
    if (leaf->entries.size() > kFanout) {
      size_t mid = leaf->entries.size() / 2;
      auto right = std::make_unique<LeafNode>();
      right->entries.assign(leaf->entries.begin() + static_cast<long>(mid),
                            leaf->entries.end());
      leaf->entries.resize(mid);
      right->next = leaf->next;
      leaf->next = right.get();
      auto out = std::make_unique<SplitResult>();
      out->separator = right->entries.front();
      out->right = std::move(right);
      *split = std::move(out);
    }
    return true;
  }

  auto* in = static_cast<InternalNode*>(node);
  size_t idx = static_cast<size_t>(
      std::upper_bound(in->seps.begin(), in->seps.end(), entry, EntryLess) -
      in->seps.begin());
  std::unique_ptr<SplitResult> child_split;
  if (!InsertRec(in->children[idx].get(), entry, &child_split)) return false;
  if (child_split != nullptr) {
    in->seps.insert(in->seps.begin() + static_cast<long>(idx),
                    child_split->separator);
    in->children.insert(in->children.begin() + static_cast<long>(idx) + 1,
                        std::move(child_split->right));
    if (in->seps.size() > kFanout) {
      // Push the median separator up; right node takes the tail.
      size_t mid = in->seps.size() / 2;
      auto right = std::make_unique<InternalNode>();
      Entry up = in->seps[mid];
      right->seps.assign(in->seps.begin() + static_cast<long>(mid) + 1,
                         in->seps.end());
      for (size_t i = mid + 1; i < in->children.size(); ++i) {
        right->children.push_back(std::move(in->children[i]));
      }
      in->seps.resize(mid);
      in->children.resize(mid + 1);
      auto out = std::make_unique<SplitResult>();
      out->separator = up;
      out->right = std::move(right);
      *split = std::move(out);
    }
  }
  return true;
}

// ---------------------------------------------------------------------------
// Erase
// ---------------------------------------------------------------------------

bool BPlusTree::Erase(const Key& key, uint64_t rid) {
  Entry entry{key, rid};
  bool underflow = false;
  if (!EraseRec(root_.get(), entry, &underflow)) return false;
  --size_;
  // Shrink the root when an internal root is left with a single child.
  while (!root_->is_leaf) {
    auto* in = static_cast<InternalNode*>(root_.get());
    if (in->children.size() > 1) break;
    root_ = std::move(in->children.front());
  }
  return true;
}

bool BPlusTree::EraseRec(Node* node, const Entry& entry, bool* underflow) {
  if (node->is_leaf) {
    auto* leaf = static_cast<LeafNode*>(node);
    auto it = std::lower_bound(leaf->entries.begin(), leaf->entries.end(),
                               entry, EntryLess);
    if (it == leaf->entries.end() || CompareEntries(*it, entry) != 0) {
      return false;
    }
    leaf->entries.erase(it);
    *underflow = leaf->entries.size() < kMinOccupancy;
    return true;
  }

  auto* in = static_cast<InternalNode*>(node);
  size_t idx = static_cast<size_t>(
      std::upper_bound(in->seps.begin(), in->seps.end(), entry, EntryLess) -
      in->seps.begin());
  bool child_underflow = false;
  if (!EraseRec(in->children[idx].get(), entry, &child_underflow)) {
    return false;
  }
  if (child_underflow) FixChildUnderflow(in, idx);
  *underflow = in->children.size() < kMinOccupancy;
  return true;
}

void BPlusTree::FixChildUnderflow(InternalNode* parent, size_t child_idx) {
  Node* child = parent->children[child_idx].get();

  auto left_idx = child_idx > 0 ? child_idx - 1 : child_idx;
  Node* left_sib =
      child_idx > 0 ? parent->children[child_idx - 1].get() : nullptr;
  Node* right_sib = child_idx + 1 < parent->children.size()
                        ? parent->children[child_idx + 1].get()
                        : nullptr;

  if (child->is_leaf) {
    auto* leaf = static_cast<LeafNode*>(child);
    auto* lleaf = static_cast<LeafNode*>(left_sib);
    auto* rleaf = static_cast<LeafNode*>(right_sib);
    if (lleaf != nullptr && lleaf->entries.size() > kMinOccupancy) {
      // Borrow the largest entry from the left sibling.
      leaf->entries.insert(leaf->entries.begin(), lleaf->entries.back());
      lleaf->entries.pop_back();
      parent->seps[child_idx - 1] = leaf->entries.front();
      return;
    }
    if (rleaf != nullptr && rleaf->entries.size() > kMinOccupancy) {
      // Borrow the smallest entry from the right sibling.
      leaf->entries.push_back(rleaf->entries.front());
      rleaf->entries.erase(rleaf->entries.begin());
      parent->seps[child_idx] = rleaf->entries.front();
      return;
    }
    // Merge with a sibling (prefer left so the leaf chain stays simple).
    if (lleaf != nullptr) {
      lleaf->entries.insert(lleaf->entries.end(), leaf->entries.begin(),
                            leaf->entries.end());
      lleaf->next = leaf->next;
      parent->seps.erase(parent->seps.begin() + static_cast<long>(left_idx));
      parent->children.erase(parent->children.begin() +
                             static_cast<long>(child_idx));
    } else if (rleaf != nullptr) {
      leaf->entries.insert(leaf->entries.end(), rleaf->entries.begin(),
                           rleaf->entries.end());
      leaf->next = rleaf->next;
      parent->seps.erase(parent->seps.begin() + static_cast<long>(child_idx));
      parent->children.erase(parent->children.begin() +
                             static_cast<long>(child_idx) + 1);
    }
    return;
  }

  auto* in = static_cast<InternalNode*>(child);
  auto* lin = static_cast<InternalNode*>(left_sib);
  auto* rin = static_cast<InternalNode*>(right_sib);
  if (lin != nullptr && lin->children.size() > kMinOccupancy) {
    // Rotate through the parent separator.
    in->seps.insert(in->seps.begin(), parent->seps[child_idx - 1]);
    parent->seps[child_idx - 1] = lin->seps.back();
    lin->seps.pop_back();
    in->children.insert(in->children.begin(),
                        std::move(lin->children.back()));
    lin->children.pop_back();
    return;
  }
  if (rin != nullptr && rin->children.size() > kMinOccupancy) {
    in->seps.push_back(parent->seps[child_idx]);
    parent->seps[child_idx] = rin->seps.front();
    rin->seps.erase(rin->seps.begin());
    in->children.push_back(std::move(rin->children.front()));
    rin->children.erase(rin->children.begin());
    return;
  }
  if (lin != nullptr) {
    lin->seps.push_back(parent->seps[left_idx]);
    lin->seps.insert(lin->seps.end(), in->seps.begin(), in->seps.end());
    for (auto& c : in->children) lin->children.push_back(std::move(c));
    parent->seps.erase(parent->seps.begin() + static_cast<long>(left_idx));
    parent->children.erase(parent->children.begin() +
                           static_cast<long>(child_idx));
  } else if (rin != nullptr) {
    in->seps.push_back(parent->seps[child_idx]);
    in->seps.insert(in->seps.end(), rin->seps.begin(), rin->seps.end());
    for (auto& c : rin->children) in->children.push_back(std::move(c));
    parent->seps.erase(parent->seps.begin() + static_cast<long>(child_idx));
    parent->children.erase(parent->children.begin() +
                           static_cast<long>(child_idx) + 1);
  }
}

// ---------------------------------------------------------------------------
// Lookups
// ---------------------------------------------------------------------------

std::vector<uint64_t> BPlusTree::Lookup(const Key& key) const {
  std::vector<uint64_t> out;
  for (Iterator it = Seek(key); it.Valid(); it.Next()) {
    if (CompareKeys(it.key(), key) != 0) break;
    out.push_back(it.rid());
  }
  return out;
}

std::vector<uint64_t> BPlusTree::PrefixLookup(const Key& prefix) const {
  std::vector<uint64_t> out;
  for (Iterator it = Seek(prefix); it.Valid(); it.Next()) {
    if (!KeyHasPrefix(it.key(), prefix)) break;
    out.push_back(it.rid());
  }
  return out;
}

std::vector<uint64_t> BPlusTree::RangeLookup(const Key& lo,
                                             const Key& hi) const {
  std::vector<uint64_t> out;
  for (Iterator it = Seek(lo); it.Valid(); it.Next()) {
    if (CompareKeys(it.key(), hi) > 0) break;
    out.push_back(it.rid());
  }
  return out;
}

BPlusTree::MultiSeekResult BPlusTree::MultiSeek(
    const std::vector<Probe>& probes) const {
  MultiSeekResult out;
  if (probes.empty()) return out;
  out.offsets.reserve(probes.size() + 1);

  // Cursor invariant: (anchor_leaf, anchor_pos) is where the previous
  // probe's matches *started* (its lower bound), and prev_lo is that
  // probe's lower bound. lower_bound is monotone in the probe key, so
  // any probe with lo >= prev_lo finds its own lower bound at or after
  // the anchor — reachable by walking the leaf chain forward instead of
  // re-descending from the root.
  const LeafNode* anchor_leaf = nullptr;
  size_t anchor_pos = 0;
  const Key* prev_lo = nullptr;

  for (size_t i = 0; i < probes.size(); ++i) {
    const Probe& probe = probes[i];

    bool positioned = false;
    if (anchor_leaf != nullptr && prev_lo != nullptr &&
        CompareKeys(*prev_lo, probe.lo) <= 0) {
      const LeafNode* leaf = anchor_leaf;
      size_t start = anchor_pos;
      for (int walked = 0; leaf != nullptr && walked <= kMaxLeafWalk;
           ++walked) {
        if (!leaf->entries.empty() &&
            !EntryBelowKey(leaf->entries.back(), probe.lo)) {
          // The lower bound lies in this leaf, at or after `start`
          // (everything before `start` is below the previous — hence
          // also this — probe's lower bound).
          auto begin = leaf->entries.begin() + static_cast<long>(start);
          auto it = std::lower_bound(begin, leaf->entries.end(), probe.lo,
                                     EntryBelowKey);
          anchor_leaf = leaf;
          anchor_pos = static_cast<size_t>(it - leaf->entries.begin());
          positioned = true;
          break;
        }
        if (leaf->next == nullptr) {
          // Ran off the chain: the lower bound is end-of-tree. Pin the
          // anchor there so later (sorted) probes resolve without a
          // futile descent.
          anchor_leaf = leaf;
          anchor_pos = leaf->entries.size();
          positioned = true;
          break;
        }
        leaf = leaf->next;
        start = 0;
      }
    }
    if (!positioned) {
      ++out.descents;
      const LeafNode* leaf = FindLeafForKey(probe.lo);
      auto it = std::lower_bound(leaf->entries.begin(), leaf->entries.end(),
                                 probe.lo, EntryBelowKey);
      anchor_leaf = leaf;
      anchor_pos = static_cast<size_t>(it - leaf->entries.begin());
    }
    prev_lo = &probe.lo;

    // Collect this probe's matches from the anchor forward.
    const LeafNode* leaf = anchor_leaf;
    size_t pos = anchor_pos;
    while (leaf != nullptr) {
      if (pos >= leaf->entries.size()) {
        leaf = leaf->next;
        pos = 0;
        continue;
      }
      const Entry& e = leaf->entries[pos];
      bool keep = false;
      switch (probe.kind) {
        case Probe::Kind::kPoint:
          keep = CompareKeys(e.key, probe.lo) == 0;
          break;
        case Probe::Kind::kPrefix:
          keep = KeyHasPrefix(e.key, probe.lo);
          break;
        case Probe::Kind::kRange:
          keep = CompareKeys(e.key, probe.hi) <= 0;
          break;
      }
      if (!keep) break;
      out.rids.push_back(e.rid);
      ++pos;
    }
    out.offsets.push_back(out.rids.size());
  }
  return out;
}

int BPlusTree::height() const {
  int h = 1;
  const Node* node = root_.get();
  while (!node->is_leaf) {
    node = static_cast<const InternalNode*>(node)->children.front().get();
    ++h;
  }
  return h;
}

// ---------------------------------------------------------------------------
// Iterator
// ---------------------------------------------------------------------------

const Key& BPlusTree::Iterator::key() const {
  return static_cast<const LeafNode*>(leaf_)->entries[pos_].key;
}

uint64_t BPlusTree::Iterator::rid() const {
  return static_cast<const LeafNode*>(leaf_)->entries[pos_].rid;
}

void BPlusTree::Iterator::Next() {
  const auto* leaf = static_cast<const LeafNode*>(leaf_);
  ++pos_;
  while (leaf != nullptr && pos_ >= leaf->entries.size()) {
    leaf = leaf->next;
    pos_ = 0;
  }
  leaf_ = leaf;
}

BPlusTree::Iterator BPlusTree::Begin() const {
  const Node* node = root_.get();
  while (!node->is_leaf) {
    node = static_cast<const InternalNode*>(node)->children.front().get();
  }
  const auto* leaf = static_cast<const LeafNode*>(node);
  Iterator it;
  it.leaf_ = leaf;
  it.pos_ = 0;
  if (leaf->entries.empty()) {
    // Empty tree has a single empty leaf.
    it.leaf_ = nullptr;
  }
  return it;
}

BPlusTree::Iterator BPlusTree::Seek(const Key& key) const {
  Entry probe{key, 0};
  const LeafNode* leaf = FindLeaf(probe);
  auto pos = static_cast<size_t>(
      std::lower_bound(leaf->entries.begin(), leaf->entries.end(), probe,
                       EntryLess) -
      leaf->entries.begin());
  // Walk forward past empty tails into the next non-empty leaf.
  const LeafNode* cur = leaf;
  while (cur != nullptr && pos >= cur->entries.size()) {
    cur = cur->next;
    pos = 0;
  }
  Iterator it;
  it.leaf_ = cur;
  it.pos_ = pos;
  return it;
}

// ---------------------------------------------------------------------------
// Invariant checking
// ---------------------------------------------------------------------------

Status BPlusTree::CheckInvariants() const {
  // Recursive walk validating ordering and occupancy, with lo/hi bounds.
  struct Walker {
    const BPlusTree* tree;
    size_t entries = 0;
    int leaf_depth = -1;

    Status Walk(const Node* node, const Entry* lo, const Entry* hi, int depth,
                bool is_root) {
      if (node->is_leaf) {
        const auto* leaf = static_cast<const LeafNode*>(node);
        if (leaf_depth == -1) leaf_depth = depth;
        if (leaf_depth != depth) {
          return Status::Corruption("leaves at differing depths");
        }
        if (!is_root && leaf->entries.size() < kMinOccupancy) {
          return Status::Corruption("leaf underflow");
        }
        if (leaf->entries.size() > kFanout) {
          return Status::Corruption("leaf overflow");
        }
        const Entry* prev = nullptr;
        for (const Entry& e : leaf->entries) {
          if (prev != nullptr && CompareEntries(*prev, e) >= 0) {
            return Status::Corruption("unsorted leaf entries");
          }
          if (lo != nullptr && CompareEntries(e, *lo) < 0) {
            return Status::Corruption("leaf entry below lower bound");
          }
          if (hi != nullptr && CompareEntries(e, *hi) >= 0) {
            return Status::Corruption("leaf entry above upper bound");
          }
          prev = &e;
          ++entries;
        }
        return Status::OK();
      }
      const auto* in = static_cast<const InternalNode*>(node);
      if (in->children.size() != in->seps.size() + 1) {
        return Status::Corruption("child/separator count mismatch");
      }
      if (!is_root && in->children.size() < kMinOccupancy) {
        return Status::Corruption("internal underflow");
      }
      if (in->seps.size() > kFanout) {
        return Status::Corruption("internal overflow");
      }
      for (size_t i = 0; i + 1 < in->seps.size(); ++i) {
        if (CompareEntries(in->seps[i], in->seps[i + 1]) >= 0) {
          return Status::Corruption("unsorted separators");
        }
      }
      for (size_t i = 0; i < in->children.size(); ++i) {
        const Entry* clo = i == 0 ? lo : &in->seps[i - 1];
        const Entry* chi = i == in->seps.size() ? hi : &in->seps[i];
        Status st = Walk(in->children[i].get(), clo, chi, depth + 1, false);
        if (!st.ok()) return st;
      }
      return Status::OK();
    }
  };

  Walker w{this};
  Status st = w.Walk(root_.get(), nullptr, nullptr, 1, true);
  if (!st.ok()) return st;
  if (w.entries != size_) {
    return Status::Corruption("size() disagrees with entry count");
  }
  // Leaf-chain must enumerate exactly size_ entries in sorted order.
  size_t chained = 0;
  bool have_prev = false;
  Entry prev;
  for (Iterator it = Begin(); it.Valid(); it.Next()) {
    ++chained;
    Entry cur{it.key(), it.rid()};
    if (have_prev && CompareEntries(prev, cur) >= 0) {
      return Status::Corruption("leaf chain out of order");
    }
    prev = cur;
    have_prev = true;
  }
  if (chained != size_) {
    return Status::Corruption("leaf chain length disagrees with size()");
  }
  return Status::OK();
}

size_t BPlusTree::ApproxMemoryUsage() const {
  struct Walker {
    static size_t KeyHeap(const Key& key) {
      // RowApproxBytes counts the vector header too; the Entry already
      // accounts for it, so strip it back off.
      return RowApproxBytes(key) - sizeof(Row);
    }
    static size_t Walk(const Node* node) {
      if (node->is_leaf) {
        const auto* leaf = static_cast<const LeafNode*>(node);
        size_t total =
            sizeof(LeafNode) + leaf->entries.capacity() * sizeof(Entry);
        for (const Entry& e : leaf->entries) total += KeyHeap(e.key);
        return total;
      }
      const auto* inner = static_cast<const InternalNode*>(node);
      size_t total = sizeof(InternalNode) +
                     inner->seps.capacity() * sizeof(Entry) +
                     inner->children.capacity() * sizeof(std::unique_ptr<Node>);
      for (const Entry& e : inner->seps) total += KeyHeap(e.key);
      for (const auto& child : inner->children) total += Walk(child.get());
      return total;
    }
  };
  return sizeof(BPlusTree) + (root_ != nullptr ? Walker::Walk(root_.get()) : 0);
}

}  // namespace provlin::storage
