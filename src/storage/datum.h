#ifndef PROVLIN_STORAGE_DATUM_H_
#define PROVLIN_STORAGE_DATUM_H_

#include <compare>
#include <cstdint>
#include <string>
#include <variant>
#include <vector>

namespace provlin::storage {

/// Column type of the embedded relational engine. kIdPair and kIndexPath
/// are the identifier-layer kinds: composite trace keys carry interned
/// integer ids and integer index paths, so B+-tree and hash probes
/// compare machine words instead of heap strings.
enum class DatumKind {
  kNull = 0,
  kInt,
  kDouble,
  kString,
  kIdPair,
  kIndexPath
};

std::string_view DatumKindName(DatumKind kind);

/// A packed pair of dense dictionary ids — e.g. (processor, port) — that
/// compares as a single 64-bit integer.
struct IdPair {
  uint32_t first = 0;
  uint32_t second = 0;

  uint64_t Packed() const {
    return (static_cast<uint64_t>(first) << 32) | second;
  }
  static IdPair FromPacked(uint64_t packed) {
    return IdPair{static_cast<uint32_t>(packed >> 32),
                  static_cast<uint32_t>(packed & 0xffffffffu)};
  }

  bool operator==(const IdPair&) const = default;
  auto operator<=>(const IdPair& o) const { return Packed() <=> o.Packed(); }
};

/// An index path: the raw components of a values::Index. Lexicographic
/// vector order equals the prefix-then-component order of indices, so
/// B+-tree range scans over a kIndexPath column enumerate all
/// sub-elements of a path — the property the old string Encode() form
/// provided, now with integer comparisons.
using IndexPath = std::vector<int32_t>;

/// One typed cell. NULL sorts before every non-null value; across kinds
/// the order follows DatumKind (the engine schemas are homogeneous per
/// column, so cross-kind comparison only arises with NULLs in practice).
class Datum {
 public:
  Datum() : rep_(std::monostate{}) {}
  explicit Datum(int64_t v) : rep_(v) {}
  explicit Datum(double v) : rep_(v) {}
  explicit Datum(std::string v) : rep_(std::move(v)) {}
  explicit Datum(const char* v) : rep_(std::string(v)) {}
  explicit Datum(IdPair v) : rep_(v) {}
  explicit Datum(IndexPath v) : rep_(std::move(v)) {}

  static Datum Null() { return Datum(); }
  static Datum Pair(uint32_t first, uint32_t second) {
    return Datum(IdPair{first, second});
  }

  DatumKind kind() const;
  bool is_null() const { return kind() == DatumKind::kNull; }

  int64_t AsInt() const { return std::get<int64_t>(rep_); }
  double AsDouble() const { return std::get<double>(rep_); }
  const std::string& AsString() const { return std::get<std::string>(rep_); }
  IdPair AsIdPair() const { return std::get<IdPair>(rep_); }
  const IndexPath& AsIndexPath() const { return std::get<IndexPath>(rep_); }

  std::string ToString() const;

  bool operator==(const Datum& other) const { return rep_ == other.rep_; }
  bool operator!=(const Datum& other) const { return !(*this == other); }
  bool operator<(const Datum& other) const;

  size_t Hash() const;

 private:
  std::variant<std::monostate, int64_t, double, std::string, IdPair, IndexPath>
      rep_;
};

/// Composite key / row: ordered tuple of datums.
using Key = std::vector<Datum>;
using Row = std::vector<Datum>;

/// Lexicographic comparison of composite keys.
int CompareKeys(const Key& a, const Key& b);

/// True iff `prefix` equals the first prefix.size() components of `key`.
bool KeyHasPrefix(const Key& key, const Key& prefix);

size_t HashKey(const Key& key);

std::string KeyToString(const Key& key);

}  // namespace provlin::storage

#endif  // PROVLIN_STORAGE_DATUM_H_
