#ifndef PROVLIN_STORAGE_DATUM_H_
#define PROVLIN_STORAGE_DATUM_H_

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

namespace provlin::storage {

/// Column type of the embedded relational engine.
enum class DatumKind { kNull = 0, kInt, kDouble, kString };

std::string_view DatumKindName(DatumKind kind);

/// One typed cell. NULL sorts before every non-null value; across kinds
/// the order is kNull < kInt < kDouble < kString (the engine schemas are
/// homogeneous per column, so cross-kind comparison only arises with
/// NULLs in practice).
class Datum {
 public:
  Datum() : rep_(std::monostate{}) {}
  explicit Datum(int64_t v) : rep_(v) {}
  explicit Datum(double v) : rep_(v) {}
  explicit Datum(std::string v) : rep_(std::move(v)) {}
  explicit Datum(const char* v) : rep_(std::string(v)) {}

  static Datum Null() { return Datum(); }

  DatumKind kind() const;
  bool is_null() const { return kind() == DatumKind::kNull; }

  int64_t AsInt() const { return std::get<int64_t>(rep_); }
  double AsDouble() const { return std::get<double>(rep_); }
  const std::string& AsString() const { return std::get<std::string>(rep_); }

  std::string ToString() const;

  bool operator==(const Datum& other) const { return rep_ == other.rep_; }
  bool operator!=(const Datum& other) const { return !(*this == other); }
  bool operator<(const Datum& other) const;

  size_t Hash() const;

 private:
  std::variant<std::monostate, int64_t, double, std::string> rep_;
};

/// Composite key / row: ordered tuple of datums.
using Key = std::vector<Datum>;
using Row = std::vector<Datum>;

/// Lexicographic comparison of composite keys.
int CompareKeys(const Key& a, const Key& b);

/// True iff `prefix` equals the first prefix.size() components of `key`.
bool KeyHasPrefix(const Key& key, const Key& prefix);

size_t HashKey(const Key& key);

std::string KeyToString(const Key& key);

}  // namespace provlin::storage

#endif  // PROVLIN_STORAGE_DATUM_H_
