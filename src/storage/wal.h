#ifndef PROVLIN_STORAGE_WAL_H_
#define PROVLIN_STORAGE_WAL_H_

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "common/result.h"

namespace provlin::storage {

/// CRC-32 (IEEE, reflected) over a byte string.
uint32_t Crc32(std::string_view data);

/// Append-only write-ahead log. Record framing:
///
///   [u32 length | u32 crc32(payload) | payload bytes]
///
/// Append() writes and flushes one record. Replay() returns every intact
/// record in order and stops silently at the first torn or corrupt entry
/// (the expected state after a crash mid-append), so recovery replays
/// exactly the committed prefix.
///
/// The provenance layer logs every trace-row insert through this, making
/// provenance capture crash-safe: a run interrupted mid-execution loses
/// at most the record being written.
class WriteAheadLog {
 public:
  /// Opens (creating if absent) the log at `path` for appending.
  static Result<WriteAheadLog> Open(const std::string& path);

  WriteAheadLog(WriteAheadLog&& other) noexcept;
  WriteAheadLog& operator=(WriteAheadLog&& other) noexcept;
  WriteAheadLog(const WriteAheadLog&) = delete;
  WriteAheadLog& operator=(const WriteAheadLog&) = delete;
  ~WriteAheadLog();

  /// Appends one record and flushes it to the OS.
  Status Append(std::string_view payload);

  /// Number of records appended through this handle.
  uint64_t records_appended() const { return records_appended_; }
  const std::string& path() const { return path_; }

  /// Reads all intact records from a log file.
  static Result<std::vector<std::string>> Replay(const std::string& path);

 private:
  WriteAheadLog(std::string path, std::FILE* file)
      : path_(std::move(path)), file_(file) {}

  std::string path_;
  std::FILE* file_ = nullptr;
  uint64_t records_appended_ = 0;
};

// --- sharded WAL layout -----------------------------------------------------
//
// A run-sharded store (DESIGN.md §11) keeps one WAL per shard so writer
// threads append without contending on a shared file. Shard 0 logs to
// the caller's base path unchanged (an N=1 sharded WAL is exactly the
// legacy single-file WAL); shard k > 0 logs to "<base>.shard-<k>". A
// small text manifest at "<base>.manifest" records the shard count, so
// recovery knows how many files to replay; it is only written when the
// layout actually has more than one shard.

/// WAL file path of shard `shard` under `base` (base itself for 0).
std::string ShardWalPath(const std::string& base, size_t shard);

/// Manifest path for the sharded WAL rooted at `base`.
std::string WalManifestPath(const std::string& base);

/// Writes/overwrites the manifest recording `shards`.
Status WriteWalManifest(const std::string& base, size_t shards);

/// Shard count from the manifest; NotFound when no manifest exists
/// (the layout is then a plain single-file WAL).
Result<size_t> ReadWalManifest(const std::string& base);

}  // namespace provlin::storage

#endif  // PROVLIN_STORAGE_WAL_H_
