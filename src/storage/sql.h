#ifndef PROVLIN_STORAGE_SQL_H_
#define PROVLIN_STORAGE_SQL_H_

#include <optional>
#include <string>
#include <vector>

#include "common/result.h"
#include "storage/database.h"
#include "storage/query.h"

namespace provlin::storage {

/// Result of a SQL SELECT: the projected column names and rows, plus the
/// access path the planner chose (so callers — and tests — can assert
/// that trace queries are index probes, as the paper requires).
struct SqlResult {
  std::vector<std::string> columns;
  std::vector<Row> rows;
  AccessPath access_path = AccessPath::kFullScan;
  std::string index_used;
};

/// Executes a minimal SQL dialect against the database — the C++
/// analogue of the SQL the paper issues to its MySQL trace store:
///
///   SELECT <* | col[, col]*> FROM <table>
///     [WHERE col = <literal> [AND col = <literal>]*
///            [AND col LIKE '<prefix>%']]
///     [LIMIT <n>]
///
///   SELECT COUNT(*) FROM <table> [WHERE ...]
///
/// Literals are single-quoted strings ('it''s' escapes a quote),
/// integers, or doubles. Keywords are case-insensitive. Exactly one
/// LIKE predicate is allowed and its pattern must be a prefix match
/// ('...%'). Queries plan through the same index-selection logic as the
/// typed SelectQuery API. COUNT(*) results come back as a single row
/// with one int column named "count".
Result<SqlResult> ExecuteSql(const Database& db, std::string_view sql);

}  // namespace provlin::storage

#endif  // PROVLIN_STORAGE_SQL_H_
