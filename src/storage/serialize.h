#ifndef PROVLIN_STORAGE_SERIALIZE_H_
#define PROVLIN_STORAGE_SERIALIZE_H_

#include <cstdint>
#include <string>

#include "common/result.h"
#include "storage/datum.h"

namespace provlin::storage {

/// Little binary writer for database persistence. Fixed-width integers
/// (little-endian), length-prefixed strings.
class BinaryWriter {
 public:
  void WriteU8(uint8_t v);
  void WriteU32(uint32_t v);
  void WriteU64(uint64_t v);
  void WriteI64(int64_t v);
  void WriteDouble(double v);
  void WriteString(std::string_view s);
  void WriteDatum(const Datum& d);
  void WriteRow(const Row& row);

  const std::string& buffer() const { return buf_; }

 private:
  std::string buf_;
};

/// Reader counterpart; every accessor checks bounds and reports
/// Corruption on truncated input.
class BinaryReader {
 public:
  explicit BinaryReader(std::string_view data) : data_(data) {}

  Result<uint8_t> ReadU8();
  Result<uint32_t> ReadU32();
  Result<uint64_t> ReadU64();
  Result<int64_t> ReadI64();
  Result<double> ReadDouble();
  Result<std::string> ReadString();
  Result<Datum> ReadDatum();
  Result<Row> ReadRow();

  bool AtEnd() const { return pos_ == data_.size(); }
  size_t position() const { return pos_; }

 private:
  Status Need(size_t n);

  std::string_view data_;
  size_t pos_ = 0;
};

}  // namespace provlin::storage

#endif  // PROVLIN_STORAGE_SERIALIZE_H_
