#include "storage/query.h"

#include <algorithm>

namespace provlin::storage {

std::string_view AccessPathName(AccessPath path) {
  switch (path) {
    case AccessPath::kIndexEq:
      return "index-eq";
    case AccessPath::kIndexRange:
      return "index-range";
    case AccessPath::kFullScan:
      return "full-scan";
  }
  return "?";
}

namespace {

/// A candidate plan: which index, how many leading equality columns it
/// consumes, and whether it also consumes the string-prefix predicate.
struct Candidate {
  const IndexSpec* spec = nullptr;
  size_t eq_covered = 0;
  bool uses_prefix = false;
  bool uses_path_prefix = false;

  size_t score() const {
    return eq_covered + (uses_prefix || uses_path_prefix ? 1 : 0);
  }
};

const Datum* FindEqual(const SelectQuery& q, const std::string& column) {
  for (const auto& e : q.equals) {
    if (e.column == column) return &e.value;
  }
  return nullptr;
}

bool RowMatches(const Schema& schema, const Row& row, const SelectQuery& q) {
  for (const auto& e : q.equals) {
    auto idx = schema.ColumnIndex(e.column);
    if (!idx.ok()) return false;
    if (!(row[idx.value()] == e.value)) return false;
  }
  if (q.string_prefix.has_value()) {
    auto idx = schema.ColumnIndex(q.string_prefix->column);
    if (!idx.ok()) return false;
    const Datum& d = row[idx.value()];
    if (d.kind() != DatumKind::kString) return false;
    const std::string& s = d.AsString();
    const std::string& p = q.string_prefix->prefix;
    if (s.size() < p.size() || s.compare(0, p.size(), p) != 0) return false;
  }
  if (q.path_prefix.has_value()) {
    auto idx = schema.ColumnIndex(q.path_prefix->column);
    if (!idx.ok()) return false;
    const Datum& d = row[idx.value()];
    if (d.kind() != DatumKind::kIndexPath) return false;
    const IndexPath& path = d.AsIndexPath();
    const IndexPath& p = q.path_prefix->prefix;
    if (path.size() < p.size()) return false;
    if (!std::equal(p.begin(), p.end(), path.begin())) return false;
  }
  return true;
}

/// Smallest path that sorts after every extension of `prefix`: the
/// prefix with its last component bumped. Empty when no such successor
/// exists (empty prefix matches everything; INT32_MAX cannot be bumped)
/// — callers then skip the index range and rely on the residual filter.
std::optional<IndexPath> PathSuccessor(const IndexPath& prefix) {
  if (prefix.empty() || prefix.back() == INT32_MAX) return std::nullopt;
  IndexPath succ = prefix;
  ++succ.back();
  return succ;
}

}  // namespace

Result<SelectResult> ExecuteSelect(const Table& table,
                                   const SelectQuery& query) {
  // Validate referenced columns up front.
  for (const auto& e : query.equals) {
    PROVLIN_RETURN_IF_ERROR(table.schema().ColumnIndex(e.column).status());
  }
  if (query.string_prefix.has_value()) {
    PROVLIN_RETURN_IF_ERROR(
        table.schema().ColumnIndex(query.string_prefix->column).status());
  }
  if (query.path_prefix.has_value()) {
    PROVLIN_RETURN_IF_ERROR(
        table.schema().ColumnIndex(query.path_prefix->column).status());
  }

  // Enumerate candidate plans.
  std::vector<IndexSpec> specs = table.indexes();
  Candidate best;
  for (const IndexSpec& spec : specs) {
    Candidate cand;
    cand.spec = &spec;
    if (spec.type == IndexType::kHash) {
      // Hash: exact column set, order-sensitive probe key construction
      // below requires all columns to have equality predicates.
      if (spec.columns.size() != query.equals.size()) continue;
      bool all = true;
      for (const std::string& col : spec.columns) {
        if (FindEqual(query, col) == nullptr) {
          all = false;
          break;
        }
      }
      if (!all) continue;
      cand.eq_covered = spec.columns.size();
    } else {
      size_t i = 0;
      while (i < spec.columns.size() &&
             FindEqual(query, spec.columns[i]) != nullptr) {
        ++i;
      }
      cand.eq_covered = i;
      if (query.string_prefix.has_value() && i < spec.columns.size() &&
          spec.columns[i] == query.string_prefix->column) {
        cand.uses_prefix = true;
      } else if (query.path_prefix.has_value() && i < spec.columns.size() &&
                 spec.columns[i] == query.path_prefix->column &&
                 PathSuccessor(query.path_prefix->prefix).has_value()) {
        cand.uses_path_prefix = true;
      }
      if (cand.score() == 0) continue;
    }
    if (cand.score() > best.score()) best = cand;
  }

  SelectResult out;
  std::vector<uint64_t> rids;
  if (best.spec == nullptr) {
    out.access_path = AccessPath::kFullScan;
    rids = table.FullScan();
  } else {
    out.index_used = best.spec->name;
    Key probe;
    for (size_t i = 0; i < best.eq_covered; ++i) {
      probe.push_back(*FindEqual(query, best.spec->columns[i]));
    }
    if (best.uses_prefix) {
      out.access_path = AccessPath::kIndexRange;
      Key lo = probe;
      Key hi = probe;
      lo.push_back(Datum(query.string_prefix->prefix));
      hi.push_back(Datum(query.string_prefix->prefix + "\xff\xff\xff\xff"));
      PROVLIN_ASSIGN_OR_RETURN(
          rids, table.IndexRangeLookup(best.spec->name, lo, hi));
    } else if (best.uses_path_prefix) {
      // [prefix, successor] is a superset of "extensions of prefix" by
      // exactly the successor path itself, which the residual filter
      // drops; the scan stays one contiguous range of integer keys.
      out.access_path = AccessPath::kIndexRange;
      Key lo = probe;
      Key hi = probe;
      lo.push_back(Datum(query.path_prefix->prefix));
      hi.push_back(Datum(*PathSuccessor(query.path_prefix->prefix)));
      PROVLIN_ASSIGN_OR_RETURN(
          rids, table.IndexRangeLookup(best.spec->name, lo, hi));
    } else if (best.spec->type == IndexType::kBTree &&
               best.eq_covered < best.spec->columns.size()) {
      out.access_path = AccessPath::kIndexRange;
      PROVLIN_ASSIGN_OR_RETURN(
          rids, table.IndexPrefixLookup(best.spec->name, probe));
    } else {
      out.access_path = AccessPath::kIndexEq;
      PROVLIN_ASSIGN_OR_RETURN(rids,
                               table.IndexLookup(best.spec->name, probe));
    }
  }

  // Apply residual predicates.
  for (uint64_t rid : rids) {
    PROVLIN_ASSIGN_OR_RETURN(Row row, table.Get(rid));
    if (RowMatches(table.schema(), row, query)) {
      out.rows.push_back(std::move(row));
    }
  }
  return out;
}

}  // namespace provlin::storage
