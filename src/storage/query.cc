#include "storage/query.h"

#include <algorithm>
#include <numeric>

#include "common/tracing.h"

namespace provlin::storage {

std::string_view AccessPathName(AccessPath path) {
  switch (path) {
    case AccessPath::kIndexEq:
      return "index-eq";
    case AccessPath::kIndexRange:
      return "index-range";
    case AccessPath::kFullScan:
      return "full-scan";
  }
  return "?";
}

std::optional<std::string> StringPrefixSuccessor(const std::string& prefix) {
  std::string succ = prefix;
  while (!succ.empty() && static_cast<unsigned char>(succ.back()) == 0xff) {
    succ.pop_back();
  }
  if (succ.empty()) return std::nullopt;
  succ.back() = static_cast<char>(static_cast<unsigned char>(succ.back()) + 1);
  return succ;
}

namespace {

/// A candidate plan: which index, how many leading equality columns it
/// consumes, and whether it also consumes the string-prefix predicate.
struct Candidate {
  const IndexSpec* spec = nullptr;
  size_t eq_covered = 0;
  bool uses_prefix = false;
  bool uses_path_prefix = false;

  size_t score() const {
    return eq_covered + (uses_prefix || uses_path_prefix ? 1 : 0);
  }
};

const Datum* FindEqual(const SelectQuery& q, const std::string& column) {
  for (const auto& e : q.equals) {
    if (e.column == column) return &e.value;
  }
  return nullptr;
}

bool RowMatches(const Schema& schema, const Row& row, const SelectQuery& q) {
  for (const auto& e : q.equals) {
    auto idx = schema.ColumnIndex(e.column);
    if (!idx.ok()) return false;
    if (!(row[idx.value()] == e.value)) return false;
  }
  if (q.string_prefix.has_value()) {
    auto idx = schema.ColumnIndex(q.string_prefix->column);
    if (!idx.ok()) return false;
    const Datum& d = row[idx.value()];
    if (d.kind() != DatumKind::kString) return false;
    const std::string& s = d.AsString();
    const std::string& p = q.string_prefix->prefix;
    if (s.size() < p.size() || s.compare(0, p.size(), p) != 0) return false;
  }
  if (q.path_prefix.has_value()) {
    auto idx = schema.ColumnIndex(q.path_prefix->column);
    if (!idx.ok()) return false;
    const Datum& d = row[idx.value()];
    if (d.kind() != DatumKind::kIndexPath) return false;
    const IndexPath& path = d.AsIndexPath();
    const IndexPath& p = q.path_prefix->prefix;
    if (path.size() < p.size()) return false;
    if (!std::equal(p.begin(), p.end(), path.begin())) return false;
  }
  return true;
}

/// Smallest path that sorts after every extension of `prefix`: the
/// prefix with its last component bumped. Empty when no such successor
/// exists (empty prefix matches everything; INT32_MAX cannot be bumped)
/// — callers then skip the index range and rely on the residual filter.
std::optional<IndexPath> PathSuccessor(const IndexPath& prefix) {
  if (prefix.empty() || prefix.back() == INT32_MAX) return std::nullopt;
  IndexPath succ = prefix;
  ++succ.back();
  return succ;
}

/// Allocation-free boundability checks, equivalent to
/// StringPrefixSuccessor(p).has_value() / PathSuccessor(p).has_value().
bool StringPrefixBoundable(const std::string& prefix) {
  for (char c : prefix) {
    if (static_cast<unsigned char>(c) != 0xff) return true;
  }
  return false;
}

bool PathBoundable(const IndexPath& prefix) {
  return !prefix.empty() && prefix.back() != INT32_MAX;
}

Status ValidateColumns(const Table& table, const SelectQuery& query) {
  for (const auto& e : query.equals) {
    PROVLIN_RETURN_IF_ERROR(table.schema().ColumnIndex(e.column).status());
  }
  if (query.string_prefix.has_value()) {
    PROVLIN_RETURN_IF_ERROR(
        table.schema().ColumnIndex(query.string_prefix->column).status());
  }
  if (query.path_prefix.has_value()) {
    PROVLIN_RETURN_IF_ERROR(
        table.schema().ColumnIndex(query.path_prefix->column).status());
  }
  return Status::OK();
}

/// Picks the best access plan for `query`. Depends only on the query's
/// *shape* — which columns have equality predicates, which column the
/// prefix predicate sits on, and whether the prefix value admits a range
/// upper bound — never on the probed values themselves, which is what
/// lets ExecuteMultiSelect plan once per shape group.
Candidate ChoosePlan(const std::vector<IndexSpec>& specs,
                     const SelectQuery& query) {
  Candidate best;
  for (const IndexSpec& spec : specs) {
    Candidate cand;
    cand.spec = &spec;
    if (spec.type == IndexType::kHash) {
      // Hash: exact column set, order-sensitive probe key construction
      // below requires all columns to have equality predicates.
      if (spec.columns.size() != query.equals.size()) continue;
      bool all = true;
      for (const std::string& col : spec.columns) {
        if (FindEqual(query, col) == nullptr) {
          all = false;
          break;
        }
      }
      if (!all) continue;
      cand.eq_covered = spec.columns.size();
    } else {
      size_t i = 0;
      while (i < spec.columns.size() &&
             FindEqual(query, spec.columns[i]) != nullptr) {
        ++i;
      }
      cand.eq_covered = i;
      if (query.string_prefix.has_value() && i < spec.columns.size() &&
          spec.columns[i] == query.string_prefix->column &&
          StringPrefixBoundable(query.string_prefix->prefix)) {
        cand.uses_prefix = true;
      } else if (query.path_prefix.has_value() && i < spec.columns.size() &&
                 spec.columns[i] == query.path_prefix->column &&
                 PathBoundable(query.path_prefix->prefix)) {
        cand.uses_path_prefix = true;
      }
      if (cand.score() == 0) continue;
    }
    if (cand.score() > best.score()) best = cand;
  }
  return best;
}

/// Equality-probe key over the candidate's leading index columns.
Key BuildEqKey(const SelectQuery& query, const Candidate& plan) {
  Key probe;
  probe.reserve(plan.eq_covered);
  for (size_t i = 0; i < plan.eq_covered; ++i) {
    probe.push_back(*FindEqual(query, plan.spec->columns[i]));
  }
  return probe;
}

/// One BPlusTree probe realizing `plan` for `query`, plus the access
/// path it reports. Only valid for BTree candidates.
BPlusTree::Probe BuildBTreeProbe(const SelectQuery& query,
                                 const Candidate& plan,
                                 AccessPath* access_path) {
  BPlusTree::Probe probe;
  probe.lo = BuildEqKey(query, plan);
  if (plan.uses_prefix) {
    *access_path = AccessPath::kIndexRange;
    probe.kind = BPlusTree::Probe::Kind::kRange;
    probe.hi = probe.lo;
    probe.lo.push_back(Datum(query.string_prefix->prefix));
    probe.hi.push_back(
        Datum(*StringPrefixSuccessor(query.string_prefix->prefix)));
  } else if (plan.uses_path_prefix) {
    // [prefix, successor] is a superset of "extensions of prefix" by
    // exactly the successor itself, which the residual filter drops;
    // the scan stays one contiguous range of keys.
    *access_path = AccessPath::kIndexRange;
    probe.kind = BPlusTree::Probe::Kind::kRange;
    probe.hi = probe.lo;
    probe.lo.push_back(Datum(query.path_prefix->prefix));
    probe.hi.push_back(Datum(*PathSuccessor(query.path_prefix->prefix)));
  } else if (plan.eq_covered < plan.spec->columns.size()) {
    *access_path = AccessPath::kIndexRange;
    probe.kind = BPlusTree::Probe::Kind::kPrefix;
  } else {
    *access_path = AccessPath::kIndexEq;
    probe.kind = BPlusTree::Probe::Kind::kPoint;
  }
  return probe;
}

bool ProbeLess(const BPlusTree::Probe& a, const BPlusTree::Probe& b) {
  return CompareKeys(a.lo, b.lo) < 0;
}

/// Residual-filters the rids in [rids, rids + n) into `out` (copy or
/// zero-copy per options). Raw span so MultiSeek's flat CSR result can
/// be sliced without per-probe copies.
void FilterInto(const Table& table, const SelectQuery& query,
                const uint64_t* rids, size_t n, const SelectOptions& options,
                SelectResult* out) {
  out->zero_copy = options.zero_copy;
  for (size_t k = 0; k < n; ++k) {
    uint64_t rid = rids[k];
    const Row* row = table.PeekRow(rid);
    if (row == nullptr || !RowMatches(table.schema(), *row, query)) continue;
    if (options.zero_copy) {
      out->rids.push_back(rid);
      out->row_ptrs.push_back(row);
    } else {
      out->rows.push_back(*row);
    }
  }
}

}  // namespace

Result<SelectResult> ExecuteSelect(const Table& table,
                                   const SelectQuery& query,
                                   const SelectOptions& options) {
  PROVLIN_TRACE_SPAN("storage/select");
  PROVLIN_RETURN_IF_ERROR(ValidateColumns(table, query));

  std::vector<IndexSpec> specs = table.indexes();
  Candidate best = ChoosePlan(specs, query);

  SelectResult out;
  std::vector<uint64_t> rids;
  if (best.spec == nullptr) {
    out.access_path = AccessPath::kFullScan;
    rids = table.FullScan();
  } else if (best.spec->type == IndexType::kHash) {
    out.index_used = best.spec->name;
    out.access_path = AccessPath::kIndexEq;
    PROVLIN_ASSIGN_OR_RETURN(
        rids, table.IndexLookup(best.spec->name, BuildEqKey(query, best)));
  } else {
    out.index_used = best.spec->name;
    BPlusTree::Probe probe = BuildBTreeProbe(query, best, &out.access_path);
    if (probe.kind == BPlusTree::Probe::Kind::kPoint) {
      PROVLIN_ASSIGN_OR_RETURN(rids,
                               table.IndexLookup(best.spec->name, probe.lo));
    } else if (probe.kind == BPlusTree::Probe::Kind::kPrefix) {
      PROVLIN_ASSIGN_OR_RETURN(
          rids, table.IndexPrefixLookup(best.spec->name, probe.lo));
    } else {
      PROVLIN_ASSIGN_OR_RETURN(
          rids, table.IndexRangeLookup(best.spec->name, probe.lo, probe.hi));
    }
  }

  FilterInto(table, query, rids.data(), rids.size(), options, &out);
  return out;
}

Result<std::vector<SelectResult>> ExecuteMultiSelect(
    const Table& table, const std::vector<SelectQuery>& queries,
    const SelectOptions& options) {
  PROVLIN_TRACE_SPAN_VAR(span, "storage/multi_select");
  if (span.active()) {
    span.SetArgs("queries=" + std::to_string(queries.size()) + " table=" +
                 table.name());
  }
  std::vector<SelectResult> out(queries.size());
  if (queries.empty()) return out;

  for (const SelectQuery& q : queries) {
    PROVLIN_RETURN_IF_ERROR(ValidateColumns(table, q));
  }
  std::vector<IndexSpec> specs = table.indexes();

  // Group query ordinals by predicate shape. The shape captures every
  // input ChoosePlan reads, so one plan per group is exact: equality
  // columns in declaration order (count matters for hash eligibility)
  // plus the prefix predicate's column and range-boundability. Shapes
  // are compared structurally — batches are hot enough that building a
  // per-query key string would dominate small-tree probes.
  auto same_shape = [](const SelectQuery& a, const SelectQuery& b) {
    if (a.equals.size() != b.equals.size()) return false;
    for (size_t i = 0; i < a.equals.size(); ++i) {
      if (a.equals[i].column != b.equals[i].column) return false;
    }
    if (a.string_prefix.has_value() != b.string_prefix.has_value()) {
      return false;
    }
    if (a.string_prefix.has_value() &&
        (a.string_prefix->column != b.string_prefix->column ||
         StringPrefixBoundable(a.string_prefix->prefix) !=
             StringPrefixBoundable(b.string_prefix->prefix))) {
      return false;
    }
    if (a.path_prefix.has_value() != b.path_prefix.has_value()) return false;
    if (a.path_prefix.has_value() &&
        (a.path_prefix->column != b.path_prefix->column ||
         PathBoundable(a.path_prefix->prefix) !=
             PathBoundable(b.path_prefix->prefix))) {
      return false;
    }
    return true;
  };

  // Linear scan over group representatives: real batches have a handful
  // of shapes, so this stays O(n · shapes) with zero allocation per
  // query.
  std::vector<std::vector<size_t>> groups;
  for (size_t i = 0; i < queries.size(); ++i) {
    bool placed = false;
    for (std::vector<size_t>& g : groups) {
      if (same_shape(queries[g.front()], queries[i])) {
        g.push_back(i);
        placed = true;
        break;
      }
    }
    if (!placed) groups.push_back({i});
  }

  for (std::vector<size_t>& members : groups) {
    Candidate plan = ChoosePlan(specs, queries[members.front()]);
    if (plan.spec == nullptr || plan.spec->type == IndexType::kHash) {
      // Hash probes and full scans have no descent to amortize; answer
      // each member through the single-query path.
      for (size_t i : members) {
        PROVLIN_ASSIGN_OR_RETURN(out[i],
                                 ExecuteSelect(table, queries[i], options));
      }
      continue;
    }

    // BTree group: one probe per query, sorted by lower bound so the
    // multi-seek advances along the leaf chain between them.
    std::vector<BPlusTree::Probe> probes;
    probes.reserve(members.size());
    std::vector<AccessPath> paths(members.size());
    for (size_t m = 0; m < members.size(); ++m) {
      probes.push_back(
          BuildBTreeProbe(queries[members[m]], plan, &paths[m]));
    }
    // Trace-probe batches arrive (nearly) sorted — the generators emit
    // probes in key order — so checking dodges the n·log n key
    // comparisons in the common case.
    if (std::is_sorted(probes.begin(), probes.end(), ProbeLess)) {
      PROVLIN_ASSIGN_OR_RETURN(BPlusTree::MultiSeekResult seek,
                               table.IndexMultiSeek(plan.spec->name, probes));
      for (size_t m = 0; m < members.size(); ++m) {
        size_t i = members[m];
        out[i].access_path = paths[m];
        out[i].index_used = plan.spec->name;
        FilterInto(table, queries[i], seek.rids.data() + seek.offsets[m],
                   seek.offsets[m + 1] - seek.offsets[m], options, &out[i]);
      }
      continue;
    }
    std::vector<size_t> order(members.size());
    std::iota(order.begin(), order.end(), size_t{0});
    std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
      return ProbeLess(probes[a], probes[b]);
    });
    std::vector<BPlusTree::Probe> sorted;
    sorted.reserve(probes.size());
    for (size_t m : order) sorted.push_back(std::move(probes[m]));
    PROVLIN_ASSIGN_OR_RETURN(BPlusTree::MultiSeekResult seek,
                             table.IndexMultiSeek(plan.spec->name, sorted));
    for (size_t s = 0; s < order.size(); ++s) {
      size_t i = members[order[s]];
      out[i].access_path = paths[order[s]];
      out[i].index_used = plan.spec->name;
      FilterInto(table, queries[i], seek.rids.data() + seek.offsets[s],
                 seek.offsets[s + 1] - seek.offsets[s], options, &out[i]);
    }
  }
  return out;
}

}  // namespace provlin::storage
