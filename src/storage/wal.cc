#include "storage/wal.h"

#include "common/metrics.h"
#include "common/tracing.h"

#include <array>
#include <cstring>
#include <fstream>

namespace provlin::storage {

namespace {

std::array<uint32_t, 256> BuildCrcTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

}  // namespace

uint32_t Crc32(std::string_view data) {
  static const std::array<uint32_t, 256> kTable = BuildCrcTable();
  uint32_t crc = 0xFFFFFFFFu;
  for (char c : data) {
    crc = kTable[(crc ^ static_cast<unsigned char>(c)) & 0xFFu] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

Result<WriteAheadLog> WriteAheadLog::Open(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "ab");
  if (file == nullptr) {
    return Status::IoError("cannot open WAL '" + path + "' for append");
  }
  return WriteAheadLog(path, file);
}

WriteAheadLog::WriteAheadLog(WriteAheadLog&& other) noexcept
    : path_(std::move(other.path_)),
      file_(other.file_),
      records_appended_(other.records_appended_) {
  other.file_ = nullptr;
}

WriteAheadLog& WriteAheadLog::operator=(WriteAheadLog&& other) noexcept {
  if (this != &other) {
    if (file_ != nullptr) std::fclose(file_);
    path_ = std::move(other.path_);
    file_ = other.file_;
    records_appended_ = other.records_appended_;
    other.file_ = nullptr;
  }
  return *this;
}

WriteAheadLog::~WriteAheadLog() {
  if (file_ != nullptr) std::fclose(file_);
}

Status WriteAheadLog::Append(std::string_view payload) {
  PROVLIN_TRACE_SPAN("wal/append");
  if (file_ == nullptr) {
    return Status::FailedPrecondition("WAL is closed");
  }
  uint32_t length = static_cast<uint32_t>(payload.size());
  uint32_t crc = Crc32(payload);
  char header[8];
  std::memcpy(header, &length, 4);
  std::memcpy(header + 4, &crc, 4);
  if (std::fwrite(header, 1, 8, file_) != 8 ||
      std::fwrite(payload.data(), 1, payload.size(), file_) !=
          payload.size()) {
    return Status::IoError("short write to WAL '" + path_ + "'");
  }
  if (std::fflush(file_) != 0) {
    return Status::IoError("flush failed for WAL '" + path_ + "'");
  }
  ++records_appended_;
  static auto* appends = common::metrics::GetCounter("wal/appends");
  static auto* bytes = common::metrics::GetCounter("wal/bytes");
  static auto* flushes = common::metrics::GetCounter("wal/flushes");
  appends->Increment();
  bytes->Add(payload.size() + 8);
  flushes->Increment();
  return Status::OK();
}

Result<std::vector<std::string>> WriteAheadLog::Replay(
    const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::IoError("cannot open WAL '" + path + "' for read");
  }
  std::string data((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());

  std::vector<std::string> records;
  size_t pos = 0;
  while (pos + 8 <= data.size()) {
    uint32_t length = 0;
    uint32_t crc = 0;
    std::memcpy(&length, data.data() + pos, 4);
    std::memcpy(&crc, data.data() + pos + 4, 4);
    if (pos + 8 + length > data.size()) break;  // torn tail record
    std::string_view payload(data.data() + pos + 8, length);
    if (Crc32(payload) != crc) break;  // corrupt tail record
    records.emplace_back(payload);
    pos += 8 + length;
  }
  return records;
}

std::string ShardWalPath(const std::string& base, size_t shard) {
  if (shard == 0) return base;
  return base + ".shard-" + std::to_string(shard);
}

std::string WalManifestPath(const std::string& base) {
  return base + ".manifest";
}

Status WriteWalManifest(const std::string& base, size_t shards) {
  const std::string path = WalManifestPath(base);
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    return Status::IoError("cannot open WAL manifest '" + path +
                           "' for write");
  }
  out << "provlin-wal-manifest v1\nshards " << shards << "\n";
  out.flush();
  if (!out) return Status::IoError("short write to WAL manifest '" + path +
                                   "'");
  return Status::OK();
}

Result<size_t> ReadWalManifest(const std::string& base) {
  const std::string path = WalManifestPath(base);
  std::ifstream in(path);
  if (!in) return Status::NotFound("no WAL manifest at '" + path + "'");
  std::string header;
  std::getline(in, header);
  if (header != "provlin-wal-manifest v1") {
    return Status::Corruption("bad WAL manifest header in '" + path + "'");
  }
  std::string key;
  size_t shards = 0;
  if (!(in >> key >> shards) || key != "shards" || shards == 0) {
    return Status::Corruption("bad shard count in WAL manifest '" + path +
                              "'");
  }
  return shards;
}

}  // namespace provlin::storage
