#include "storage/database.h"

#include <cstdio>
#include <fstream>
#include <sstream>

#include "storage/serialize.h"

namespace provlin::storage {

namespace {
constexpr uint32_t kMagic = 0x50564C42;  // "PVLB"
// v2 adds the identifier dictionaries (symbols + index paths) to the
// image, persisted before the table catalog so kIdPair cells resolve.
// v3 appends a blob section (compressed trace segments) after the
// tables; an image without blobs is still written as v2, bit for bit,
// so sealing never changes the format of stores that don't use it.
constexpr uint32_t kVersion = 2;
constexpr uint32_t kVersionBlobs = 3;
}  // namespace

Result<Table*> Database::CreateTable(const std::string& name, Schema schema) {
  if (tables_.count(name) > 0) {
    return Status::AlreadyExists("table '" + name + "' already exists");
  }
  auto table = std::make_unique<Table>(name, std::move(schema));
  Table* ptr = table.get();
  tables_[name] = std::move(table);
  return ptr;
}

Result<Table*> Database::GetTable(const std::string& name) {
  auto it = tables_.find(name);
  if (it == tables_.end()) {
    return Status::NotFound("no table named '" + name + "'");
  }
  return it->second.get();
}

Result<const Table*> Database::GetTable(const std::string& name) const {
  auto it = tables_.find(name);
  if (it == tables_.end()) {
    return Status::NotFound("no table named '" + name + "'");
  }
  return const_cast<const Table*>(it->second.get());
}

Status Database::DropTable(const std::string& name) {
  if (tables_.erase(name) == 0) {
    return Status::NotFound("no table named '" + name + "'");
  }
  return Status::OK();
}

std::vector<std::string> Database::TableNames() const {
  std::vector<std::string> out;
  out.reserve(tables_.size());
  for (const auto& [name, _] : tables_) out.push_back(name);
  return out;
}

size_t Database::TotalRows() const {
  size_t n = 0;
  for (const auto& [_, t] : tables_) n += t->num_rows();
  return n;
}

TableStats Database::AggregateStats() const {
  TableStats agg;
  for (const auto& [_, t] : tables_) {
    TableStats s = t->stats();
    agg.inserts += s.inserts;
    agg.deletes += s.deletes;
    agg.index_probes += s.index_probes;
    agg.full_scans += s.full_scans;
    agg.rows_examined += s.rows_examined;
    agg.batched_probes += s.batched_probes;
    agg.descents += s.descents;
  }
  return agg;
}

void Database::ResetStats() {
  for (auto& [_, t] : tables_) t->ResetStats();
}

void Database::PutBlob(const std::string& key,
                       std::shared_ptr<const std::string> bytes) {
  common::MutexLock lock(blobs_->mu);
  blobs_->map[key] = std::move(bytes);
}

std::shared_ptr<const std::string> Database::GetBlob(
    const std::string& key) const {
  common::MutexLock lock(blobs_->mu);
  auto it = blobs_->map.find(key);
  return it == blobs_->map.end() ? nullptr : it->second;
}

void Database::DropBlob(const std::string& key) {
  common::MutexLock lock(blobs_->mu);
  blobs_->map.erase(key);
}

std::vector<std::string> Database::BlobKeys() const {
  common::MutexLock lock(blobs_->mu);
  std::vector<std::string> out;
  out.reserve(blobs_->map.size());
  for (const auto& [key, _] : blobs_->map) out.push_back(key);
  return out;
}

Status Database::Save(const std::string& path) const {
  common::MutexLock blob_lock(blobs_->mu);
  BinaryWriter w;
  w.WriteU32(kMagic);
  w.WriteU32(blobs_->map.empty() ? kVersion : kVersionBlobs);
  // Identifier dictionaries: ids are vector positions, so writing the
  // vectors in order round-trips them exactly.
  const std::vector<std::string> sym_names = symbols_.names();
  w.WriteU32(static_cast<uint32_t>(sym_names.size()));
  for (const std::string& name : sym_names) w.WriteString(name);
  const std::vector<std::vector<int32_t>> ipaths = index_dict_.paths();
  w.WriteU32(static_cast<uint32_t>(ipaths.size()));
  for (const auto& ipath : ipaths) {
    w.WriteU32(static_cast<uint32_t>(ipath.size()));
    for (int32_t p : ipath) w.WriteU32(static_cast<uint32_t>(p));
  }
  w.WriteU32(static_cast<uint32_t>(tables_.size()));
  for (const auto& [name, table] : tables_) {
    w.WriteString(name);
    // Schema.
    const Schema& schema = table->schema();
    w.WriteU32(static_cast<uint32_t>(schema.num_columns()));
    for (const Column& c : schema.columns()) {
      w.WriteString(c.name);
      w.WriteU8(static_cast<uint8_t>(c.kind));
    }
    // Index specs.
    std::vector<IndexSpec> specs = table->indexes();
    w.WriteU32(static_cast<uint32_t>(specs.size()));
    for (const IndexSpec& spec : specs) {
      w.WriteString(spec.name);
      w.WriteU8(spec.type == IndexType::kBTree ? 0 : 1);
      w.WriteU32(static_cast<uint32_t>(spec.columns.size()));
      for (const std::string& c : spec.columns) w.WriteString(c);
    }
    // Live rows.
    std::vector<uint64_t> rids = table->FullScan();
    w.WriteU64(rids.size());
    for (uint64_t rid : rids) {
      auto row = table->Get(rid);
      if (!row.ok()) return row.status();
      w.WriteRow(row.value());
    }
  }
  if (!blobs_->map.empty()) {
    w.WriteU32(static_cast<uint32_t>(blobs_->map.size()));
    for (const auto& [key, bytes] : blobs_->map) {
      w.WriteString(key);
      w.WriteString(*bytes);
    }
  }
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::IoError("cannot open '" + path + "' for write");
  out.write(w.buffer().data(),
            static_cast<std::streamsize>(w.buffer().size()));
  if (!out) return Status::IoError("short write to '" + path + "'");
  return Status::OK();
}

Status Database::Load(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open '" + path + "' for read");
  std::ostringstream ss;
  ss << in.rdbuf();
  std::string data = ss.str();

  BinaryReader r(data);
  PROVLIN_ASSIGN_OR_RETURN(uint32_t magic, r.ReadU32());
  if (magic != kMagic) return Status::Corruption("bad magic");
  PROVLIN_ASSIGN_OR_RETURN(uint32_t version, r.ReadU32());
  if (version != kVersion && version != kVersionBlobs) {
    return Status::Corruption("unsupported version " +
                              std::to_string(version));
  }
  std::vector<std::string> symbol_names;
  PROVLIN_ASSIGN_OR_RETURN(uint32_t nsyms, r.ReadU32());
  symbol_names.reserve(nsyms);
  for (uint32_t i = 0; i < nsyms; ++i) {
    PROVLIN_ASSIGN_OR_RETURN(std::string name, r.ReadString());
    symbol_names.push_back(std::move(name));
  }
  std::vector<std::vector<int32_t>> index_paths;
  PROVLIN_ASSIGN_OR_RETURN(uint32_t npaths, r.ReadU32());
  index_paths.reserve(npaths);
  for (uint32_t i = 0; i < npaths; ++i) {
    PROVLIN_ASSIGN_OR_RETURN(uint32_t plen, r.ReadU32());
    std::vector<int32_t> ipath;
    ipath.reserve(plen);
    for (uint32_t j = 0; j < plen; ++j) {
      PROVLIN_ASSIGN_OR_RETURN(uint32_t p, r.ReadU32());
      ipath.push_back(static_cast<int32_t>(p));
    }
    index_paths.push_back(std::move(ipath));
  }
  std::map<std::string, std::unique_ptr<Table>> tables;
  PROVLIN_ASSIGN_OR_RETURN(uint32_t ntables, r.ReadU32());
  for (uint32_t t = 0; t < ntables; ++t) {
    PROVLIN_ASSIGN_OR_RETURN(std::string name, r.ReadString());
    PROVLIN_ASSIGN_OR_RETURN(uint32_t ncols, r.ReadU32());
    std::vector<Column> cols;
    for (uint32_t c = 0; c < ncols; ++c) {
      Column col;
      PROVLIN_ASSIGN_OR_RETURN(col.name, r.ReadString());
      PROVLIN_ASSIGN_OR_RETURN(uint8_t kind, r.ReadU8());
      if (kind > static_cast<uint8_t>(DatumKind::kIndexPath)) {
        return Status::Corruption("bad column kind");
      }
      col.kind = static_cast<DatumKind>(kind);
      cols.push_back(std::move(col));
    }
    auto table = std::make_unique<Table>(name, Schema(std::move(cols)));
    PROVLIN_ASSIGN_OR_RETURN(uint32_t nidx, r.ReadU32());
    for (uint32_t i = 0; i < nidx; ++i) {
      IndexSpec spec;
      PROVLIN_ASSIGN_OR_RETURN(spec.name, r.ReadString());
      PROVLIN_ASSIGN_OR_RETURN(uint8_t type, r.ReadU8());
      if (type > 1) return Status::Corruption("bad index type");
      spec.type = type == 0 ? IndexType::kBTree : IndexType::kHash;
      PROVLIN_ASSIGN_OR_RETURN(uint32_t nic, r.ReadU32());
      for (uint32_t c = 0; c < nic; ++c) {
        PROVLIN_ASSIGN_OR_RETURN(std::string col, r.ReadString());
        spec.columns.push_back(std::move(col));
      }
      PROVLIN_RETURN_IF_ERROR(table->CreateIndex(spec));
    }
    PROVLIN_ASSIGN_OR_RETURN(uint64_t nrows, r.ReadU64());
    for (uint64_t i = 0; i < nrows; ++i) {
      PROVLIN_ASSIGN_OR_RETURN(Row row, r.ReadRow());
      PROVLIN_RETURN_IF_ERROR(table->Insert(row).status());
    }
    tables[name] = std::move(table);
  }
  std::map<std::string, std::shared_ptr<const std::string>> blobs;
  if (version == kVersionBlobs) {
    PROVLIN_ASSIGN_OR_RETURN(uint32_t nblobs, r.ReadU32());
    for (uint32_t i = 0; i < nblobs; ++i) {
      PROVLIN_ASSIGN_OR_RETURN(std::string key, r.ReadString());
      PROVLIN_ASSIGN_OR_RETURN(std::string bytes, r.ReadString());
      blobs[std::move(key)] =
          std::make_shared<const std::string>(std::move(bytes));
    }
  }
  if (!r.AtEnd()) return Status::Corruption("trailing bytes in database file");
  tables_ = std::move(tables);
  symbols_.Restore(std::move(symbol_names));
  index_dict_.Restore(std::move(index_paths));
  {
    common::MutexLock lock(blobs_->mu);
    blobs_->map = std::move(blobs);
  }
  return Status::OK();
}

}  // namespace provlin::storage
