#include "storage/sql.h"

#include <cctype>

#include "common/string_util.h"

namespace provlin::storage {
namespace {

enum class TokenKind {
  kIdentifier,  // table/column names, keywords
  kString,      // 'literal'
  kNumber,      // 42, -1.5
  kStar,        // *
  kComma,
  kEquals,
  kLParen,
  kRParen,
  kEnd,
};

struct Token {
  TokenKind kind = TokenKind::kEnd;
  std::string text;  // identifier (upper-cased copy in `upper`), literal
  std::string upper;
  size_t offset = 0;
};

class Lexer {
 public:
  explicit Lexer(std::string_view sql) : sql_(sql) {}

  Result<std::vector<Token>> Tokenize() {
    std::vector<Token> out;
    while (true) {
      SkipSpace();
      Token tok;
      tok.offset = pos_;
      if (pos_ >= sql_.size()) {
        tok.kind = TokenKind::kEnd;
        out.push_back(tok);
        return out;
      }
      char c = sql_[pos_];
      if (c == '*') {
        tok.kind = TokenKind::kStar;
        ++pos_;
      } else if (c == ',') {
        tok.kind = TokenKind::kComma;
        ++pos_;
      } else if (c == '=') {
        tok.kind = TokenKind::kEquals;
        ++pos_;
      } else if (c == '(') {
        tok.kind = TokenKind::kLParen;
        ++pos_;
      } else if (c == ')') {
        tok.kind = TokenKind::kRParen;
        ++pos_;
      } else if (c == '\'') {
        PROVLIN_ASSIGN_OR_RETURN(tok.text, LexString());
        tok.kind = TokenKind::kString;
      } else if (std::isdigit(static_cast<unsigned char>(c)) || c == '-') {
        tok.kind = TokenKind::kNumber;
        size_t start = pos_;
        ++pos_;
        while (pos_ < sql_.size() &&
               (std::isdigit(static_cast<unsigned char>(sql_[pos_])) ||
                sql_[pos_] == '.' || sql_[pos_] == 'e' || sql_[pos_] == 'E' ||
                sql_[pos_] == '+' || sql_[pos_] == '-')) {
          ++pos_;
        }
        tok.text = std::string(sql_.substr(start, pos_ - start));
      } else if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
        tok.kind = TokenKind::kIdentifier;
        size_t start = pos_;
        // '#' is legal inside identifiers: sharded stores name their
        // physical tables "xform#k" (provenance/schema.h).
        while (pos_ < sql_.size() &&
               (std::isalnum(static_cast<unsigned char>(sql_[pos_])) ||
                sql_[pos_] == '_' || sql_[pos_] == '#')) {
          ++pos_;
        }
        tok.text = std::string(sql_.substr(start, pos_ - start));
        tok.upper = tok.text;
        for (char& ch : tok.upper) {
          ch = static_cast<char>(std::toupper(static_cast<unsigned char>(ch)));
        }
      } else {
        return Status::InvalidArgument("unexpected character '" +
                                       std::string(1, c) + "' at offset " +
                                       std::to_string(pos_));
      }
      out.push_back(std::move(tok));
    }
  }

 private:
  Result<std::string> LexString() {
    ++pos_;  // opening quote
    std::string out;
    while (pos_ < sql_.size()) {
      char c = sql_[pos_++];
      if (c == '\'') {
        if (pos_ < sql_.size() && sql_[pos_] == '\'') {
          out += '\'';  // '' escape
          ++pos_;
          continue;
        }
        return out;
      }
      out += c;
    }
    return Status::InvalidArgument("unterminated string literal");
  }

  void SkipSpace() {
    while (pos_ < sql_.size() &&
           std::isspace(static_cast<unsigned char>(sql_[pos_]))) {
      ++pos_;
    }
  }

  std::string_view sql_;
  size_t pos_ = 0;
};

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  struct Statement {
    bool count_star = false;
    bool select_all = false;
    std::vector<std::string> columns;
    std::string table;
    SelectQuery where;
    std::optional<size_t> limit;
  };

  Result<Statement> Parse() {
    Statement stmt;
    PROVLIN_RETURN_IF_ERROR(ExpectKeyword("SELECT"));

    if (Peek().kind == TokenKind::kIdentifier && Peek().upper == "COUNT") {
      Advance();
      PROVLIN_RETURN_IF_ERROR(Expect(TokenKind::kLParen, "("));
      PROVLIN_RETURN_IF_ERROR(Expect(TokenKind::kStar, "*"));
      PROVLIN_RETURN_IF_ERROR(Expect(TokenKind::kRParen, ")"));
      stmt.count_star = true;
    } else if (Peek().kind == TokenKind::kStar) {
      Advance();
      stmt.select_all = true;
    } else {
      while (true) {
        PROVLIN_ASSIGN_OR_RETURN(std::string col, ExpectIdentifier("column"));
        stmt.columns.push_back(std::move(col));
        if (Peek().kind != TokenKind::kComma) break;
        Advance();
      }
    }

    PROVLIN_RETURN_IF_ERROR(ExpectKeyword("FROM"));
    PROVLIN_ASSIGN_OR_RETURN(stmt.table, ExpectIdentifier("table"));

    if (Peek().kind == TokenKind::kIdentifier && Peek().upper == "WHERE") {
      Advance();
      PROVLIN_RETURN_IF_ERROR(ParsePredicates(&stmt.where));
    }
    if (Peek().kind == TokenKind::kIdentifier && Peek().upper == "LIMIT") {
      Advance();
      if (Peek().kind != TokenKind::kNumber) {
        return Err("expected a number after LIMIT");
      }
      int64_t n = 0;
      if (!ParseInt64(Peek().text, &n) || n < 0) {
        return Err("bad LIMIT value");
      }
      stmt.limit = static_cast<size_t>(n);
      Advance();
    }
    if (Peek().kind != TokenKind::kEnd) {
      return Err("trailing tokens after statement");
    }
    return stmt;
  }

 private:
  Status ParsePredicates(SelectQuery* where) {
    while (true) {
      PROVLIN_ASSIGN_OR_RETURN(std::string col, ExpectIdentifier("column"));
      if (Peek().kind == TokenKind::kEquals) {
        Advance();
        PROVLIN_ASSIGN_OR_RETURN(Datum value, ExpectLiteral());
        where->equals.push_back({std::move(col), std::move(value)});
      } else if (Peek().kind == TokenKind::kIdentifier &&
                 Peek().upper == "LIKE") {
        Advance();
        if (Peek().kind != TokenKind::kString) {
          return Err("LIKE expects a string literal").status();
        }
        std::string pattern = Peek().text;
        Advance();
        if (pattern.empty() || pattern.back() != '%' ||
            pattern.find('%') != pattern.size() - 1 ||
            pattern.find('_') != std::string::npos) {
          return Err("only prefix patterns ('...%') are supported")
              .status();
        }
        if (where->string_prefix.has_value()) {
          return Err("at most one LIKE predicate is supported").status();
        }
        pattern.pop_back();
        where->string_prefix =
            SelectQuery::StringPrefix{std::move(col), std::move(pattern)};
      } else {
        return Err("expected '=' or LIKE").status();
      }
      if (Peek().kind == TokenKind::kIdentifier && Peek().upper == "AND") {
        Advance();
        continue;
      }
      return Status::OK();
    }
  }

  Result<Datum> ExpectLiteral() {
    const Token& tok = Peek();
    if (tok.kind == TokenKind::kString) {
      Advance();
      return Datum(tok.text);
    }
    if (tok.kind == TokenKind::kNumber) {
      Advance();
      int64_t i = 0;
      if (ParseInt64(tok.text, &i)) return Datum(i);
      double d = 0;
      if (ParseDouble(tok.text, &d)) return Datum(d);
      return Err("malformed number '" + tok.text + "'").status();
    }
    return Err("expected a literal").status();
  }

  Result<std::string> ExpectIdentifier(const char* what) {
    if (Peek().kind != TokenKind::kIdentifier) {
      return Err(std::string("expected a ") + what + " name").status();
    }
    std::string text = Peek().text;
    Advance();
    return text;
  }

  Status ExpectKeyword(const char* kw) {
    if (Peek().kind != TokenKind::kIdentifier || Peek().upper != kw) {
      return Err(std::string("expected ") + kw).status();
    }
    Advance();
    return Status::OK();
  }

  Status Expect(TokenKind kind, const char* what) {
    if (Peek().kind != kind) {
      return Err(std::string("expected '") + what + "'").status();
    }
    Advance();
    return Status::OK();
  }

  Result<Parser::Statement> Err(const std::string& msg) const {
    return Status::InvalidArgument(msg + " at offset " +
                                   std::to_string(Peek().offset));
  }

  const Token& Peek() const { return tokens_[pos_]; }
  void Advance() { ++pos_; }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace

Result<SqlResult> ExecuteSql(const Database& db, std::string_view sql) {
  Lexer lexer(sql);
  PROVLIN_ASSIGN_OR_RETURN(std::vector<Token> tokens, lexer.Tokenize());
  Parser parser(std::move(tokens));
  PROVLIN_ASSIGN_OR_RETURN(Parser::Statement stmt, parser.Parse());

  PROVLIN_ASSIGN_OR_RETURN(const Table* table, db.GetTable(stmt.table));
  PROVLIN_ASSIGN_OR_RETURN(SelectResult selected,
                           ExecuteSelect(*table, stmt.where));

  SqlResult out;
  out.access_path = selected.access_path;
  out.index_used = selected.index_used;

  if (stmt.count_star) {
    out.columns = {"count"};
    out.rows.push_back({Datum(static_cast<int64_t>(selected.rows.size()))});
    return out;
  }

  std::vector<size_t> projection;
  if (stmt.select_all) {
    for (size_t i = 0; i < table->schema().num_columns(); ++i) {
      projection.push_back(i);
      out.columns.push_back(table->schema().column(i).name);
    }
  } else {
    for (const std::string& col : stmt.columns) {
      PROVLIN_ASSIGN_OR_RETURN(size_t idx, table->schema().ColumnIndex(col));
      projection.push_back(idx);
      out.columns.push_back(col);
    }
  }

  size_t limit = stmt.limit.value_or(selected.rows.size());
  for (const Row& row : selected.rows) {
    if (out.rows.size() >= limit) break;
    Row projected;
    projected.reserve(projection.size());
    for (size_t idx : projection) projected.push_back(row[idx]);
    out.rows.push_back(std::move(projected));
  }
  return out;
}

}  // namespace provlin::storage
