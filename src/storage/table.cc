#include "storage/table.h"

#include "common/metrics.h"
#include "storage/segment.h"

namespace provlin::storage {

namespace {

namespace metrics = common::metrics;

/// Process-wide access-path counters, mirrored into the MetricsRegistry
/// at the same sites that bump the per-table and per-thread stats. The
/// handles are resolved once; each bump is a single relaxed add.
struct StorageMetrics {
  metrics::Counter* inserts = metrics::GetCounter("storage/inserts");
  metrics::Counter* deletes = metrics::GetCounter("storage/deletes");
  metrics::Counter* index_probes = metrics::GetCounter("storage/index_probes");
  metrics::Counter* full_scans = metrics::GetCounter("storage/full_scans");
  metrics::Counter* rows_examined =
      metrics::GetCounter("storage/rows_examined");
  metrics::Counter* batched_probes =
      metrics::GetCounter("storage/batched_probes");
  metrics::Counter* descents = metrics::GetCounter("storage/descents");
  metrics::Histogram* multiseek_batch = metrics::GetHistogram(
      "storage/multiseek_batch_size", metrics::DefaultSizeBounds());
};

StorageMetrics& Mx() {
  static StorageMetrics m;
  return m;
}

}  // namespace

ThreadStats& ThisThreadStats() {
  thread_local ThreadStats stats;
  return stats;
}

TableStats Table::StatsCounters::Snapshot() const {
  TableStats s;
  s.inserts = inserts.load(std::memory_order_relaxed);
  s.deletes = deletes.load(std::memory_order_relaxed);
  s.index_probes = index_probes.load(std::memory_order_relaxed);
  s.full_scans = full_scans.load(std::memory_order_relaxed);
  s.rows_examined = rows_examined.load(std::memory_order_relaxed);
  s.batched_probes = batched_probes.load(std::memory_order_relaxed);
  s.descents = descents.load(std::memory_order_relaxed);
  return s;
}

void Table::StatsCounters::Reset() {
  inserts.store(0, std::memory_order_relaxed);
  deletes.store(0, std::memory_order_relaxed);
  index_probes.store(0, std::memory_order_relaxed);
  full_scans.store(0, std::memory_order_relaxed);
  rows_examined.store(0, std::memory_order_relaxed);
  batched_probes.store(0, std::memory_order_relaxed);
  descents.store(0, std::memory_order_relaxed);
}

Table::Table(std::string name, Schema schema)
    : name_(std::move(name)), schema_(std::move(schema)) {}

Status Table::CreateIndex(const IndexSpec& spec) {
  if (spec.columns.empty()) {
    return Status::InvalidArgument("index '" + spec.name + "' has no columns");
  }
  if (HasIndex(spec.name)) {
    return Status::AlreadyExists("index '" + spec.name + "' already exists");
  }
  SecondaryIndex idx;
  idx.spec = spec;
  PROVLIN_ASSIGN_OR_RETURN(idx.column_idx,
                           schema_.ColumnIndices(spec.columns));
  if (spec.type == IndexType::kBTree) {
    idx.btree = std::make_unique<BPlusTree>();
  } else {
    idx.hash = std::make_unique<HashIndex>();
  }
  // Backfill from the heap.
  for (uint64_t rid = 0; rid < rows_.size(); ++rid) {
    if (deleted_[rid]) continue;
    Key key = ExtractKey(rows_[rid], idx);
    if (idx.btree != nullptr) {
      idx.btree->Insert(key, rid);
    } else {
      idx.hash->Insert(key, rid);
    }
  }
  indexes_.push_back(std::move(idx));
  return Status::OK();
}

bool Table::HasIndex(std::string_view index_name) const {
  for (const auto& idx : indexes_) {
    if (idx.spec.name == index_name) return true;
  }
  return false;
}

std::vector<IndexSpec> Table::indexes() const {
  std::vector<IndexSpec> out;
  out.reserve(indexes_.size());
  for (const auto& idx : indexes_) out.push_back(idx.spec);
  return out;
}

Result<uint64_t> Table::Insert(const Row& row) {
  PROVLIN_RETURN_IF_ERROR(schema_.ValidateRow(row));
  uint64_t rid = rows_.size();
  rows_.push_back(row);
  deleted_.push_back(false);
  ++live_rows_;
  stats_.Bump(stats_.inserts);
  Mx().inserts->Increment();
  for (auto& idx : indexes_) {
    Key key = ExtractKey(row, idx);
    if (idx.btree != nullptr) {
      idx.btree->Insert(key, rid);
    } else {
      idx.hash->Insert(key, rid);
    }
  }
  return rid;
}

Status Table::Delete(uint64_t rid) {
  if (rid >= rows_.size() || deleted_[rid]) {
    return Status::NotFound("row " + std::to_string(rid) + " not found");
  }
  for (auto& idx : indexes_) {
    Key key = ExtractKey(rows_[rid], idx);
    if (idx.btree != nullptr) {
      idx.btree->Erase(key, rid);
    } else {
      idx.hash->Erase(key, rid);
    }
  }
  // Release the payload, not just the slot: sealing a run into a
  // compressed segment deletes its rows and relies on the tombstones
  // not pinning the row heap.
  rows_[rid] = Row();
  deleted_[rid] = true;
  --live_rows_;
  stats_.Bump(stats_.deletes);
  Mx().deletes->Increment();
  return Status::OK();
}

Result<Row> Table::Get(uint64_t rid) const {
  if (rid >= rows_.size() || deleted_[rid]) {
    return Status::NotFound("row " + std::to_string(rid) + " not found");
  }
  stats_.Bump(stats_.rows_examined);
  ++ThisThreadStats().rows_examined;
  Mx().rows_examined->Increment();
  return rows_[rid];
}

const Row* Table::PeekRow(uint64_t rid) const {
  if (rid >= rows_.size() || deleted_[rid]) return nullptr;
  stats_.Bump(stats_.rows_examined);
  ++ThisThreadStats().rows_examined;
  Mx().rows_examined->Increment();
  return &rows_[rid];
}

Result<const Table::SecondaryIndex*> Table::FindIndex(
    std::string_view index_name) const {
  for (const auto& idx : indexes_) {
    if (idx.spec.name == index_name) return &idx;
  }
  return Status::NotFound("no index named '" + std::string(index_name) +
                          "' on table '" + name_ + "'");
}

Result<std::vector<uint64_t>> Table::IndexLookup(std::string_view index_name,
                                                 const Key& key) const {
  PROVLIN_ASSIGN_OR_RETURN(const SecondaryIndex* idx, FindIndex(index_name));
  if (key.size() != idx->column_idx.size()) {
    return Status::InvalidArgument(
        "key arity " + std::to_string(key.size()) + " != index arity " +
        std::to_string(idx->column_idx.size()));
  }
  stats_.Bump(stats_.index_probes);
  ++ThisThreadStats().index_probes;
  Mx().index_probes->Increment();
  if (idx->btree != nullptr) {
    stats_.Bump(stats_.descents);
    ++ThisThreadStats().descents;
    Mx().descents->Increment();
    return idx->btree->Lookup(key);
  }
  return idx->hash->Lookup(key);
}

Result<std::vector<uint64_t>> Table::IndexPrefixLookup(
    std::string_view index_name, const Key& prefix) const {
  PROVLIN_ASSIGN_OR_RETURN(const SecondaryIndex* idx, FindIndex(index_name));
  if (idx->btree == nullptr) {
    return Status::InvalidArgument("prefix lookup requires a BTree index");
  }
  if (prefix.size() > idx->column_idx.size()) {
    return Status::InvalidArgument("prefix longer than index arity");
  }
  stats_.Bump(stats_.index_probes);
  ++ThisThreadStats().index_probes;
  stats_.Bump(stats_.descents);
  ++ThisThreadStats().descents;
  Mx().index_probes->Increment();
  Mx().descents->Increment();
  return idx->btree->PrefixLookup(prefix);
}

Result<std::vector<uint64_t>> Table::IndexRangeLookup(
    std::string_view index_name, const Key& lo, const Key& hi) const {
  PROVLIN_ASSIGN_OR_RETURN(const SecondaryIndex* idx, FindIndex(index_name));
  if (idx->btree == nullptr) {
    return Status::InvalidArgument("range lookup requires a BTree index");
  }
  stats_.Bump(stats_.index_probes);
  ++ThisThreadStats().index_probes;
  stats_.Bump(stats_.descents);
  ++ThisThreadStats().descents;
  Mx().index_probes->Increment();
  Mx().descents->Increment();
  return idx->btree->RangeLookup(lo, hi);
}

Result<BPlusTree::MultiSeekResult> Table::IndexMultiSeek(
    std::string_view index_name,
    const std::vector<BPlusTree::Probe>& probes) const {
  PROVLIN_ASSIGN_OR_RETURN(const SecondaryIndex* idx, FindIndex(index_name));
  if (idx->btree == nullptr) {
    return Status::InvalidArgument("multi-seek requires a BTree index");
  }
  uint64_t n = probes.size();
  stats_.Bump(stats_.index_probes, n);
  stats_.Bump(stats_.batched_probes, n);
  ThisThreadStats().index_probes += n;
  ThisThreadStats().batched_probes += n;
  Mx().index_probes->Add(n);
  Mx().batched_probes->Add(n);
  Mx().multiseek_batch->Observe(static_cast<double>(n));
  BPlusTree::MultiSeekResult result = idx->btree->MultiSeek(probes);
  stats_.Bump(stats_.descents, result.descents);
  ThisThreadStats().descents += result.descents;
  Mx().descents->Add(result.descents);
  return result;
}

std::vector<uint64_t> Table::FullScan() const {
  stats_.Bump(stats_.full_scans);
  stats_.Bump(stats_.rows_examined, rows_.size());
  ++ThisThreadStats().full_scans;
  ThisThreadStats().rows_examined += rows_.size();
  Mx().full_scans->Increment();
  Mx().rows_examined->Add(rows_.size());
  std::vector<uint64_t> out;
  out.reserve(live_rows_);
  for (uint64_t rid = 0; rid < rows_.size(); ++rid) {
    if (!deleted_[rid]) out.push_back(rid);
  }
  return out;
}

void Table::ForEachLiveRow(
    const std::function<void(uint64_t rid, const Row& row)>& fn) const {
  for (uint64_t rid = 0; rid < rows_.size(); ++rid) {
    if (!deleted_[rid]) fn(rid, rows_[rid]);
  }
}

size_t Table::ApproxMemoryUsage() const {
  size_t total = sizeof(Table) + name_.capacity();
  total += rows_.capacity() * sizeof(Row);
  for (uint64_t rid = 0; rid < rows_.size(); ++rid) {
    if (!deleted_[rid]) total += RowApproxBytes(rows_[rid]) - sizeof(Row);
  }
  total += deleted_.capacity() / 8;
  for (const auto& idx : indexes_) {
    total += sizeof(SecondaryIndex) +
             idx.column_idx.capacity() * sizeof(size_t);
    if (idx.btree != nullptr) total += idx.btree->ApproxMemoryUsage();
    if (idx.hash != nullptr) total += idx.hash->ApproxMemoryUsage();
  }
  return total;
}

Key Table::ExtractKey(const Row& row, const SecondaryIndex& idx) const {
  Key key;
  key.reserve(idx.column_idx.size());
  for (size_t c : idx.column_idx) key.push_back(row[c]);
  return key;
}

Status Table::CheckIndexConsistency() const {
  for (const auto& idx : indexes_) {
    size_t indexed =
        idx.btree != nullptr ? idx.btree->size() : idx.hash->size();
    if (indexed != live_rows_) {
      return Status::Corruption("index '" + idx.spec.name + "' holds " +
                                std::to_string(indexed) + " entries, heap " +
                                std::to_string(live_rows_));
    }
    if (idx.btree != nullptr) {
      PROVLIN_RETURN_IF_ERROR(idx.btree->CheckInvariants());
    }
    for (uint64_t rid = 0; rid < rows_.size(); ++rid) {
      if (deleted_[rid]) continue;
      Key key = ExtractKey(rows_[rid], idx);
      std::vector<uint64_t> rids = idx.btree != nullptr
                                       ? idx.btree->Lookup(key)
                                       : idx.hash->Lookup(key);
      bool found = false;
      for (uint64_t r : rids) {
        if (r == rid) {
          found = true;
          break;
        }
      }
      if (!found) {
        return Status::Corruption("row " + std::to_string(rid) +
                                  " missing from index '" + idx.spec.name +
                                  "'");
      }
    }
  }
  return Status::OK();
}

}  // namespace provlin::storage
