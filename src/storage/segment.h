#ifndef PROVLIN_STORAGE_SEGMENT_H_
#define PROVLIN_STORAGE_SEGMENT_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "storage/datum.h"

namespace provlin::storage {

/// Immutable compressed representation of one run's rows of a trace
/// table (DESIGN.md §13). The encoded buffer IS the resident form: a
/// sealed run keeps only this byte string in memory, and probes answer
/// directly on it — binary search over per-block first keys, then a
/// bounds-checked delta scan inside the one block (or few blocks) a
/// probe touches. Matching rows are materialized transiently into a
/// caller-owned Scratch; nothing decoded outlives the probe.
///
/// Two row layouts are supported, mirroring the provenance schema
/// (provenance/schema.cc) without depending on it:
///
///   kXform — 8 columns:
///     run INT | event INT | in IDPAIR? | in_index PATH? | in_value INT?
///     | out IDPAIR? | out_index PATH? | out_value INT?
///     The three in-side columns are null together, likewise out-side.
///   kXfer — 6 columns, all non-null:
///     run INT | src IDPAIR | src_index PATH | dst IDPAIR
///     | dst_index PATH | value INT
///
/// Encoding, per block of at most kRowsPerBlock rows (all integers are
/// LEB128 varints; signed values zigzag):
///   - event/value ids: delta from the previous row in the block;
///   - (processor, port) IdPairs: dictionary-run encoding — a sorted
///     per-segment dictionary of packed u64 pairs, blocks carrying
///     (dict_id, run_length) pairs;
///   - index paths: shared-prefix delta chains — (lcp, suffix) against
///     the previous path in the stream;
///   - nullability: one presence bitmap per optional side.
///
/// On top of the row blocks sit two sorted views per segment (xform:
/// out-side and in-side; xfer: src-side and dst-side). A view lists
/// (pair, path, ordinal) for every row whose side is non-null, sorted
/// exactly like the corresponding B+tree index key (run, pair, path) —
/// run is constant per segment — so a view scan enumerates matches in
/// the same (key, rid) order the B+tree path produces. Views use the
/// same block structure; the in-memory object keeps only a per-block
/// directory (byte offset + first key) for binary search.
///
/// FromBytes() fully validates structure (bounds, counts vs payload,
/// block sortedness, dictionary references, ordinal ranges); decoding
/// after a successful parse cannot read out of bounds. Untrusted counts
/// are checked against remaining bytes before any allocation.
class Segment {
 public:
  enum class Kind : uint8_t { kXform = 0, kXfer = 1 };

  /// Rows per encoded block, for both row blocks and view blocks. The
  /// unit of transient decode: probes never materialize more than the
  /// blocks their matches live in.
  static constexpr size_t kRowsPerBlock = 512;

  /// Per-view inclusive probe bounds over (pair, path). An unset bound
  /// extends to the pair's full extent, so
  ///   {pair}                  = all entries of the pair (prefix probe),
  ///   {pair, lo==hi}          = exact-path point probe,
  ///   {pair, lo, hi}          = inclusive path range probe,
  /// mirroring BPlusTree::Probe::{kPrefix, kPoint, kRange} with the run
  /// column implied by the segment.
  struct ViewProbe {
    uint64_t pair = 0;  // IdPair::Packed()
    bool has_lo = false;
    bool has_hi = false;
    IndexPath lo;
    IndexPath hi;
    /// When set, only entries whose path extends `residual` are emitted;
    /// entries inside the bounds still count as examined — the
    /// segment-side twin of the planner's residual row filter, which
    /// also touches every candidate before rejecting it.
    bool has_residual = false;
    IndexPath residual;
  };

  /// Physical cost of a probe, reported back to the caller (the trace
  /// store maps these onto the storage counters: searches ~ descents).
  struct ProbeCounts {
    uint64_t entries_examined = 0;  // entries inside the probe bounds
    uint64_t searches = 0;          // fresh directory binary searches
    uint64_t blocks_decoded = 0;    // row blocks materialized
  };

  /// Per-probe-call decode workspace: cached materialized row blocks
  /// plus per-view stream positions so a sorted sequence of probes
  /// continues forward instead of re-searching (the MultiSeek
  /// equivalent). Row references handed to emit callbacks point into
  /// the scratch and stay valid for the scratch's lifetime — nothing is
  /// evicted. Use one Scratch per logical probe batch and drop it.
  class Scratch {
   public:
    Scratch();
    ~Scratch();
    Scratch(const Scratch&) = delete;
    Scratch& operator=(const Scratch&) = delete;

   private:
    friend class Segment;
    struct Impl;
    std::unique_ptr<Impl> impl_;
  };

  /// Number of sorted views (xform: out/in; xfer: src/dst).
  static constexpr size_t kNumViews = 2;
  /// View ids by side. kViewOut doubles as src for kXfer, kViewIn as dst.
  static constexpr size_t kViewOut = 0;
  static constexpr size_t kViewIn = 1;

  /// Encodes `rows` (one run's rows of a trace table, in insertion
  /// order; ordinal i = rows[i]). Validates layout: column count and
  /// kinds, run column equal to `run` everywhere, null-triple
  /// consistency for kXform, non-null everywhere for kXfer.
  static Result<Segment> Build(Kind kind, uint64_t run,
                               const std::vector<Row>& rows);

  /// Parses and validates an encoded segment. The buffer is shared, not
  /// copied — the caller may also hand it to Database::PutBlob.
  static Result<Segment> FromBytes(std::shared_ptr<const std::string> bytes);

  Segment(Segment&&) noexcept;
  Segment& operator=(Segment&&) noexcept;
  ~Segment();

  Kind kind() const;
  uint64_t run() const;
  size_t num_rows() const;
  /// Entries in view `view` (rows whose side is non-null).
  size_t view_entries(size_t view) const;

  const std::string& bytes() const;
  std::shared_ptr<const std::string> shared_bytes() const;

  /// Resident footprint: the encoded buffer plus the block directories.
  size_t ApproxMemoryUsage() const;

  /// Decodes every row in insertion (ordinal) order — unseal, scans,
  /// and the canonical re-encode check.
  Result<std::vector<Row>> DecodeAllRows() const;

  /// Executes one probe against view `view` (kViewOut/kViewIn),
  /// emitting (ordinal, row) for every entry within bounds, in (pair,
  /// path, ordinal) order — byte-identical to the B+tree (key, rid)
  /// order for the same probe. The Row& points into `scratch`.
  /// Sorted probe sequences sharing a scratch continue forward from the
  /// previous position when possible instead of re-searching.
  Status ProbeView(size_t view, const ViewProbe& probe, Scratch* scratch,
                   ProbeCounts* counts,
                   const std::function<void(uint64_t ordinal, const Row& row)>&
                       emit) const;

  /// Parsed-directory representation; defined in segment.cc (public so
  /// file-local decode helpers there can name it; still opaque here).
  struct Rep;

 private:
  Segment();
  std::unique_ptr<Rep> rep_;
};

/// Approximate heap bytes behind one datum (the variant itself plus any
/// string/path heap allocation). Shared by the resident-footprint
/// accounting in Table, BPlusTree, and the trace store's tier report.
size_t DatumApproxBytes(const Datum& d);
/// sizeof the row vector's heap plus every datum's heap.
size_t RowApproxBytes(const Row& row);

}  // namespace provlin::storage

#endif  // PROVLIN_STORAGE_SEGMENT_H_
