#include "storage/segment.h"

#include <algorithm>
#include <cstring>
#include <unordered_map>

namespace provlin::storage {

namespace {

// Column ordinals of the two trace layouts (mirrors provenance/schema).
namespace xform_col {
enum { kRun = 0, kEvent, kIn, kInIndex, kInValue, kOut, kOutIndex, kOutValue };
constexpr size_t kWidth = 8;
}  // namespace xform_col
namespace xfer_col {
enum { kRun = 0, kSrc, kSrcIndex, kDst, kDstIndex, kValue };
constexpr size_t kWidth = 6;
}  // namespace xfer_col

constexpr char kMagic[4] = {'P', 'S', 'E', 'G'};
constexpr uint8_t kVersion = 1;
constexpr size_t kBlock = Segment::kRowsPerBlock;
// Forward-reuse bound for sorted probe sequences: if the next probe's
// lower bound is not in the current or the next view block, re-search
// the directory instead of walking (the leaf-chain walk analogue).
constexpr size_t kMaxBlockWalk = 8;

// ---------------------------------------------------------------------------
// Varint codec. LEB128; signed values zigzag. Deltas are mod-2^64
// (encoded as the wrapped unsigned difference), so decode never
// overflows regardless of input.
// ---------------------------------------------------------------------------

void PutU64(std::string& out, uint64_t v) {
  while (v >= 0x80) {
    out.push_back(static_cast<char>(v | 0x80));
    v >>= 7;
  }
  out.push_back(static_cast<char>(v));
}

uint64_t ZigZag(int64_t v) {
  return (static_cast<uint64_t>(v) << 1) ^
         static_cast<uint64_t>(v >> 63);  // arithmetic shift
}

int64_t UnZigZag(uint64_t v) {
  return static_cast<int64_t>(v >> 1) ^ -static_cast<int64_t>(v & 1);
}

void PutS64(std::string& out, int64_t v) { PutU64(out, ZigZag(v)); }

// Wrapped delta so arbitrary int64 sequences round-trip without UB.
int64_t WrappedDelta(int64_t cur, int64_t prev) {
  return static_cast<int64_t>(static_cast<uint64_t>(cur) -
                              static_cast<uint64_t>(prev));
}
int64_t ApplyDelta(int64_t prev, int64_t delta) {
  return static_cast<int64_t>(static_cast<uint64_t>(prev) +
                              static_cast<uint64_t>(delta));
}

/// Bounds-checked reader over a byte span. Every primitive returns
/// false on truncation or malformed varints; callers translate that
/// into Status::Corruption. Counts read from the input are validated
/// against remaining() before any allocation sized by them.
struct Dec {
  const uint8_t* p = nullptr;
  const uint8_t* end = nullptr;

  size_t remaining() const { return static_cast<size_t>(end - p); }

  bool U8(uint8_t* v) {
    if (p >= end) return false;
    *v = *p++;
    return true;
  }

  bool U64(uint64_t* v) {
    uint64_t out = 0;
    int shift = 0;
    while (p < end) {
      uint8_t b = *p++;
      if (shift == 63 && (b & 0x7Eu) != 0) return false;  // overflow
      out |= static_cast<uint64_t>(b & 0x7Fu) << shift;
      if ((b & 0x80u) == 0) {
        *v = out;
        return true;
      }
      shift += 7;
      if (shift >= 64) return false;
    }
    return false;  // truncated
  }

  bool S64(int64_t* v) {
    uint64_t raw;
    if (!U64(&raw)) return false;
    *v = UnZigZag(raw);
    return true;
  }

  bool Skip(size_t n) {
    if (remaining() < n) return false;
    p += n;
    return true;
  }
};

// Path delta chain: (shared prefix length, suffix length, suffix
// components). `path` is updated in place (the previous path in the
// stream); block starts reset it to empty.
void PutPathDelta(std::string& out, const IndexPath& prev,
                  const IndexPath& cur) {
  size_t lcp = 0;
  size_t max = std::min(prev.size(), cur.size());
  while (lcp < max && prev[lcp] == cur[lcp]) ++lcp;
  PutU64(out, lcp);
  PutU64(out, cur.size() - lcp);
  for (size_t i = lcp; i < cur.size(); ++i) PutS64(out, cur[i]);
}

bool ReadPathDelta(Dec& d, IndexPath& path) {
  uint64_t lcp, slen;
  if (!d.U64(&lcp) || lcp > path.size()) return false;
  if (!d.U64(&slen) || slen > d.remaining()) return false;
  path.resize(lcp);
  for (uint64_t i = 0; i < slen; ++i) {
    int64_t c;
    if (!d.S64(&c) || c < INT32_MIN || c > INT32_MAX) return false;
    path.push_back(static_cast<int32_t>(c));
  }
  return true;
}

// Dictionary-run encoding of a pair column: (dict_id, run_length)
// repeated until `ids` is covered; adjacent runs always differ.
void PutDictRuns(std::string& out, const std::vector<uint32_t>& ids) {
  size_t i = 0;
  while (i < ids.size()) {
    size_t j = i;
    while (j < ids.size() && ids[j] == ids[i]) ++j;
    PutU64(out, ids[i]);
    PutU64(out, j - i);
    i = j;
  }
}

/// Streaming decode state for one dict-run column within a block.
struct RunReader {
  uint64_t pair = 0;   // current packed pair
  uint64_t left = 0;   // entries remaining in the current run
  uint64_t last_id = 0;
  bool first = true;

  // Reads the next element; `used` (when non-null) marks dictionary
  // references for the canonical-usage validation pass.
  bool Next(Dec& d, const std::vector<uint64_t>& dict, uint64_t* out,
            std::vector<bool>* used) {
    if (left == 0) {
      uint64_t id, len;
      if (!d.U64(&id) || id >= dict.size()) return false;
      if (!d.U64(&len) || len == 0) return false;
      if (!first && id == last_id) return false;  // non-canonical run split
      first = false;
      last_id = id;
      pair = dict[id];
      left = len;
      if (used != nullptr) (*used)[id] = true;
    }
    --left;
    *out = pair;
    return true;
  }
};

int ComparePath(const IndexPath& a, const IndexPath& b) {
  size_t n = std::min(a.size(), b.size());
  for (size_t i = 0; i < n; ++i) {
    if (a[i] != b[i]) return a[i] < b[i] ? -1 : 1;
  }
  if (a.size() == b.size()) return 0;
  return a.size() < b.size() ? -1 : 1;
}

int ComparePairPath(uint64_t pa, const IndexPath& a, uint64_t pb,
                    const IndexPath& b) {
  if (pa != pb) return pa < pb ? -1 : 1;
  return ComparePath(a, b);
}

bool PathExtends(const IndexPath& path, const IndexPath& prefix) {
  if (path.size() < prefix.size()) return false;
  return std::equal(prefix.begin(), prefix.end(), path.begin());
}

Status Corrupt(const char* what) {
  return Status::Corruption(std::string("segment: ") + what);
}

}  // namespace

// ---------------------------------------------------------------------------
// Rep: shared encoded buffer + parse-time directories.
// ---------------------------------------------------------------------------

struct Segment::Rep {
  std::shared_ptr<const std::string> bytes;
  Kind kind = Kind::kXform;
  uint64_t run = 0;
  uint64_t nrows = 0;
  std::vector<uint64_t> pair_dict;

  struct RowBlockRef {
    size_t offset = 0;  // payload start within bytes
    size_t len = 0;
    uint32_t count = 0;
  };
  std::vector<RowBlockRef> row_blocks;

  struct ViewBlockRef {
    size_t offset = 0;
    size_t len = 0;
    uint32_t count = 0;
    uint64_t first_pair = 0;
    IndexPath first_path;
  };
  struct ViewDir {
    uint64_t entries = 0;
    std::vector<ViewBlockRef> blocks;
  };
  ViewDir views[kNumViews];
};

// ---------------------------------------------------------------------------
// Scratch
// ---------------------------------------------------------------------------

namespace {

/// Streaming cursor over one sorted view: decodes (pair, path, ordinal)
/// entries in order, holding the current entry. SeekBlock resets the
/// delta chains at a block boundary.
struct ViewStream {
  const Segment::Rep* rep = nullptr;
  size_t view = 0;
  bool valid = false;      // bound to a view, position meaningful
  bool exhausted = false;  // ran off the end; cur_* hold the last entry
  size_t block = 0;
  uint32_t consumed = 0;  // entries produced from the current block
  Dec dec;
  RunReader pairs;
  uint64_t cur_pair = 0;
  IndexPath cur_path;
  int64_t cur_ord = 0;

  const Segment::Rep::ViewDir& dir() const { return rep->views[view]; }

  // Positions at the first entry of block b. Returns false on internal
  // decode failure (cannot happen after FromBytes validation).
  bool SeekBlock(size_t b) {
    const auto& vb = dir().blocks[b];
    block = b;
    consumed = 0;
    const auto* base =
        reinterpret_cast<const uint8_t*>(rep->bytes->data()) + vb.offset;
    dec = Dec{base, base + vb.len};
    pairs = RunReader{};
    cur_path.clear();
    cur_ord = 0;
    exhausted = false;
    valid = true;
    return DecodeNext();
  }

  // Decodes the next entry of the current block into cur_*.
  bool DecodeNext() {
    uint64_t pair;
    if (!pairs.Next(dec, rep->pair_dict, &pair, nullptr)) return false;
    if (!ReadPathDelta(dec, cur_path)) return false;
    int64_t delta;
    if (!dec.S64(&delta)) return false;
    cur_pair = pair;
    cur_ord = ApplyDelta(cur_ord, delta);
    ++consumed;
    return true;
  }

  // Advances to the next entry, crossing block boundaries. On
  // exhaustion keeps cur_* as the last entry and flags exhausted.
  bool Advance() {
    if (consumed < dir().blocks[block].count) return DecodeNext();
    if (block + 1 < dir().blocks.size()) return SeekBlock(block + 1);
    exhausted = true;
    return false;
  }
};

}  // namespace

struct Segment::Scratch::Impl {
  const Segment::Rep* bound = nullptr;
  ViewStream streams[kNumViews];
  // Materialized row blocks, keyed by block index. Never evicted for
  // the scratch's lifetime, so emitted Row& stay valid.
  std::unordered_map<size_t, std::vector<Row>> row_blocks;
};

Segment::Scratch::Scratch() : impl_(std::make_unique<Impl>()) {}
Segment::Scratch::~Scratch() = default;

// ---------------------------------------------------------------------------
// Accessors
// ---------------------------------------------------------------------------

Segment::Segment() : rep_(std::make_unique<Rep>()) {}
Segment::Segment(Segment&&) noexcept = default;
Segment& Segment::operator=(Segment&&) noexcept = default;
Segment::~Segment() = default;

Segment::Kind Segment::kind() const { return rep_->kind; }
uint64_t Segment::run() const { return rep_->run; }
size_t Segment::num_rows() const { return rep_->nrows; }
size_t Segment::view_entries(size_t view) const {
  return rep_->views[view].entries;
}
const std::string& Segment::bytes() const { return *rep_->bytes; }
std::shared_ptr<const std::string> Segment::shared_bytes() const {
  return rep_->bytes;
}

size_t Segment::ApproxMemoryUsage() const {
  size_t total = sizeof(Rep) + rep_->bytes->capacity();
  total += rep_->pair_dict.capacity() * sizeof(uint64_t);
  total += rep_->row_blocks.capacity() * sizeof(Rep::RowBlockRef);
  for (const auto& view : rep_->views) {
    total += view.blocks.capacity() * sizeof(Rep::ViewBlockRef);
    for (const auto& b : view.blocks) {
      total += b.first_path.capacity() * sizeof(int32_t);
    }
  }
  return total;
}

// ---------------------------------------------------------------------------
// Build
// ---------------------------------------------------------------------------

namespace {

Status ValidateBuildRows(Segment::Kind kind, uint64_t run,
                         const std::vector<Row>& rows) {
  const bool xform = kind == Segment::Kind::kXform;
  const size_t width = xform ? xform_col::kWidth : xfer_col::kWidth;
  for (const Row& row : rows) {
    if (row.size() != width) {
      return Status::InvalidArgument("segment: row width mismatch");
    }
    if (row[0].kind() != DatumKind::kInt ||
        static_cast<uint64_t>(row[0].AsInt()) != run) {
      return Status::InvalidArgument("segment: run column mismatch");
    }
    auto side_ok = [&](size_t pair_c, size_t path_c, size_t val_c,
                       bool optional) {
      bool present = !row[pair_c].is_null();
      if (!present) {
        return optional && row[path_c].is_null() && row[val_c].is_null();
      }
      return row[pair_c].kind() == DatumKind::kIdPair &&
             row[path_c].kind() == DatumKind::kIndexPath &&
             row[val_c].kind() == DatumKind::kInt;
    };
    if (xform) {
      if (row[xform_col::kEvent].kind() != DatumKind::kInt ||
          !side_ok(xform_col::kIn, xform_col::kInIndex, xform_col::kInValue,
                   true) ||
          !side_ok(xform_col::kOut, xform_col::kOutIndex, xform_col::kOutValue,
                   true)) {
        return Status::InvalidArgument("segment: malformed xform row");
      }
    } else {
      if (!side_ok(xfer_col::kSrc, xfer_col::kSrcIndex, xfer_col::kValue,
                   false) ||
          row[xfer_col::kDst].kind() != DatumKind::kIdPair ||
          row[xfer_col::kDstIndex].kind() != DatumKind::kIndexPath) {
        return Status::InvalidArgument("segment: malformed xfer row");
      }
    }
  }
  return Status::OK();
}

/// One sorted-view entry during Build.
struct BuildEntry {
  uint64_t pair;
  const IndexPath* path;
  uint64_t ordinal;
};

void EncodeView(std::string& out, const std::vector<BuildEntry>& entries,
                const std::unordered_map<uint64_t, uint32_t>& dict_ids) {
  PutU64(out, entries.size());
  size_t nblocks = (entries.size() + kBlock - 1) / kBlock;
  PutU64(out, nblocks);
  for (size_t b = 0; b < nblocks; ++b) {
    size_t begin = b * kBlock;
    size_t count = std::min(kBlock, entries.size() - begin);
    PutU64(out, count);
    // Interleaved layout, matching the streaming probe decode: each
    // dict-run header (id, length) is followed by that run's
    // (path delta, ordinal delta) pairs; delta chains reset per block.
    std::string payload;
    IndexPath prev_path;
    int64_t prev_ord = 0;
    size_t i = 0;
    while (i < count) {
      uint32_t id = dict_ids.at(entries[begin + i].pair);
      size_t j = i;
      while (j < count && dict_ids.at(entries[begin + j].pair) == id) ++j;
      PutU64(payload, id);
      PutU64(payload, j - i);
      for (; i < j; ++i) {
        PutPathDelta(payload, prev_path, *entries[begin + i].path);
        prev_path = *entries[begin + i].path;
        int64_t ord = static_cast<int64_t>(entries[begin + i].ordinal);
        PutS64(payload, WrappedDelta(ord, prev_ord));
        prev_ord = ord;
      }
    }
    PutU64(out, payload.size());
    out.append(payload);
  }
}

void EncodePresence(std::string& out, const std::vector<Row>& rows,
                    size_t begin, size_t count, size_t col) {
  for (size_t byte = 0; byte * 8 < count; ++byte) {
    uint8_t b = 0;
    for (size_t bit = 0; bit < 8 && byte * 8 + bit < count; ++bit) {
      if (!rows[begin + byte * 8 + bit][col].is_null()) {
        b |= static_cast<uint8_t>(1u << bit);
      }
    }
    out.push_back(static_cast<char>(b));
  }
}

// Encodes one side's (pair, path, value) columns over the subset of
// rows in [begin, begin+count) whose pair column is non-null.
void EncodeSide(std::string& out, const std::vector<Row>& rows, size_t begin,
                size_t count, size_t pair_c, size_t path_c, size_t val_c,
                const std::unordered_map<uint64_t, uint32_t>& dict_ids) {
  std::vector<uint32_t> ids;
  for (size_t i = 0; i < count; ++i) {
    const Row& row = rows[begin + i];
    if (row[pair_c].is_null()) continue;
    ids.push_back(dict_ids.at(row[pair_c].AsIdPair().Packed()));
  }
  PutDictRuns(out, ids);
  IndexPath prev_path;
  for (size_t i = 0; i < count; ++i) {
    const Row& row = rows[begin + i];
    if (row[pair_c].is_null()) continue;
    PutPathDelta(out, prev_path, row[path_c].AsIndexPath());
    prev_path = row[path_c].AsIndexPath();
  }
  int64_t prev = 0;
  for (size_t i = 0; i < count; ++i) {
    const Row& row = rows[begin + i];
    if (row[pair_c].is_null()) continue;
    PutS64(out, WrappedDelta(row[val_c].AsInt(), prev));
    prev = row[val_c].AsInt();
  }
}

}  // namespace

Result<Segment> Segment::Build(Kind kind, uint64_t run,
                               const std::vector<Row>& rows) {
  PROVLIN_RETURN_IF_ERROR(ValidateBuildRows(kind, run, rows));
  const bool xform = kind == Kind::kXform;

  // Pair dictionary: sorted unique packed pairs across all pair columns.
  std::vector<uint64_t> dict;
  auto collect = [&](size_t col) {
    for (const Row& row : rows) {
      if (!row[col].is_null()) dict.push_back(row[col].AsIdPair().Packed());
    }
  };
  if (xform) {
    collect(xform_col::kIn);
    collect(xform_col::kOut);
  } else {
    collect(xfer_col::kSrc);
    collect(xfer_col::kDst);
  }
  std::sort(dict.begin(), dict.end());
  dict.erase(std::unique(dict.begin(), dict.end()), dict.end());
  std::unordered_map<uint64_t, uint32_t> dict_ids;
  dict_ids.reserve(dict.size());
  for (size_t i = 0; i < dict.size(); ++i) {
    dict_ids.emplace(dict[i], static_cast<uint32_t>(i));
  }

  std::string out;
  out.append(kMagic, sizeof(kMagic));
  out.push_back(static_cast<char>(kVersion));
  out.push_back(static_cast<char>(kind));
  PutU64(out, run);
  PutU64(out, rows.size());
  PutU64(out, dict.size());
  uint64_t prev_pair = 0;
  for (size_t i = 0; i < dict.size(); ++i) {
    PutU64(out, i == 0 ? dict[i] : dict[i] - prev_pair);
    prev_pair = dict[i];
  }

  // Row blocks.
  size_t nblocks = (rows.size() + kBlock - 1) / kBlock;
  PutU64(out, nblocks);
  for (size_t b = 0; b < nblocks; ++b) {
    size_t begin = b * kBlock;
    size_t count = std::min(kBlock, rows.size() - begin);
    PutU64(out, count);
    std::string payload;
    if (xform) {
      int64_t prev = 0;
      for (size_t i = 0; i < count; ++i) {
        int64_t ev = rows[begin + i][xform_col::kEvent].AsInt();
        PutS64(payload, WrappedDelta(ev, prev));
        prev = ev;
      }
      EncodePresence(payload, rows, begin, count, xform_col::kIn);
      EncodePresence(payload, rows, begin, count, xform_col::kOut);
      EncodeSide(payload, rows, begin, count, xform_col::kIn,
                 xform_col::kInIndex, xform_col::kInValue, dict_ids);
      EncodeSide(payload, rows, begin, count, xform_col::kOut,
                 xform_col::kOutIndex, xform_col::kOutValue, dict_ids);
    } else {
      EncodeSide(payload, rows, begin, count, xfer_col::kSrc,
                 xfer_col::kSrcIndex, xfer_col::kValue, dict_ids);
      // Dst side has no value column of its own; reuse the pair/path
      // streams and encode the shared value column once afterwards.
      std::vector<uint32_t> ids;
      ids.reserve(count);
      for (size_t i = 0; i < count; ++i) {
        ids.push_back(
            dict_ids.at(rows[begin + i][xfer_col::kDst].AsIdPair().Packed()));
      }
      PutDictRuns(payload, ids);
      IndexPath prev_path;
      for (size_t i = 0; i < count; ++i) {
        const IndexPath& p = rows[begin + i][xfer_col::kDstIndex].AsIndexPath();
        PutPathDelta(payload, prev_path, p);
        prev_path = p;
      }
    }
    PutU64(out, payload.size());
    out.append(payload);
  }

  // Sorted views: (pair, path, ordinal), same order as the B+tree key
  // (run, pair, path) with the rid tie-break.
  auto build_view = [&](size_t pair_c, size_t path_c) {
    std::vector<BuildEntry> entries;
    for (size_t i = 0; i < rows.size(); ++i) {
      if (rows[i][pair_c].is_null()) continue;
      entries.push_back(BuildEntry{rows[i][pair_c].AsIdPair().Packed(),
                                   &rows[i][path_c].AsIndexPath(), i});
    }
    std::sort(entries.begin(), entries.end(),
              [](const BuildEntry& a, const BuildEntry& b) {
                int c = ComparePairPath(a.pair, *a.path, b.pair, *b.path);
                if (c != 0) return c < 0;
                return a.ordinal < b.ordinal;
              });
    return entries;
  };
  if (xform) {
    EncodeView(out, build_view(xform_col::kOut, xform_col::kOutIndex),
               dict_ids);
    EncodeView(out, build_view(xform_col::kIn, xform_col::kInIndex), dict_ids);
  } else {
    EncodeView(out, build_view(xfer_col::kSrc, xfer_col::kSrcIndex), dict_ids);
    EncodeView(out, build_view(xfer_col::kDst, xfer_col::kDstIndex), dict_ids);
  }

  // Round through the validating parser so Build and FromBytes can
  // never disagree about what a well-formed segment is.
  return FromBytes(std::make_shared<const std::string>(std::move(out)));
}

// ---------------------------------------------------------------------------
// FromBytes: full structural validation + directory construction.
// ---------------------------------------------------------------------------

namespace {

/// Validates one row-block payload without materializing datums.
/// Tallies the per-side presence counts (for the view cross-check) and
/// marks dictionary usage.
Status ValidateRowBlock(Segment::Kind kind, Dec d, size_t count,
                        const std::vector<uint64_t>& dict,
                        std::vector<bool>* used, uint64_t* n_in,
                        uint64_t* n_out) {
  auto side = [&](size_t n) -> Status {
    RunReader runs;
    uint64_t pair;
    for (size_t i = 0; i < n; ++i) {
      if (!runs.Next(d, dict, &pair, used)) return Corrupt("bad pair runs");
    }
    if (runs.left != 0) return Corrupt("pair run overshoots block");
    IndexPath path;
    for (size_t i = 0; i < n; ++i) {
      if (!ReadPathDelta(d, path)) return Corrupt("bad path chain");
    }
    int64_t v;
    for (size_t i = 0; i < n; ++i) {
      if (!d.S64(&v)) return Corrupt("bad value delta");
    }
    return Status::OK();
  };

  if (kind == Segment::Kind::kXform) {
    int64_t v;
    for (size_t i = 0; i < count; ++i) {
      if (!d.S64(&v)) return Corrupt("bad event delta");
    }
    size_t nbytes = (count + 7) / 8;
    uint64_t in_count = 0, out_count = 0;
    for (int s = 0; s < 2; ++s) {
      uint64_t& tally = s == 0 ? in_count : out_count;
      for (size_t i = 0; i < nbytes; ++i) {
        uint8_t b;
        if (!d.U8(&b)) return Corrupt("truncated presence bitmap");
        if (i + 1 == nbytes && count % 8 != 0 &&
            (b >> (count % 8)) != 0) {
          return Corrupt("presence bitmap spare bits set");
        }
        tally += static_cast<uint64_t>(__builtin_popcount(b));
      }
    }
    PROVLIN_RETURN_IF_ERROR(side(in_count));
    PROVLIN_RETURN_IF_ERROR(side(out_count));
    *n_in += in_count;
    *n_out += out_count;
  } else {
    PROVLIN_RETURN_IF_ERROR(side(count));  // src pairs/paths + values
    // Dst side: pairs + paths only.
    RunReader runs;
    uint64_t pair;
    for (size_t i = 0; i < count; ++i) {
      if (!runs.Next(d, dict, &pair, used)) return Corrupt("bad pair runs");
    }
    if (runs.left != 0) return Corrupt("pair run overshoots block");
    IndexPath path;
    for (size_t i = 0; i < count; ++i) {
      if (!ReadPathDelta(d, path)) return Corrupt("bad path chain");
    }
  }
  if (d.remaining() != 0) return Corrupt("row block payload not consumed");
  return Status::OK();
}

}  // namespace

Result<Segment> Segment::FromBytes(
    std::shared_ptr<const std::string> bytes) {
  if (bytes == nullptr) return Status::InvalidArgument("segment: null buffer");
  Segment seg;
  Rep& rep = *seg.rep_;
  rep.bytes = std::move(bytes);
  const auto* base = reinterpret_cast<const uint8_t*>(rep.bytes->data());
  Dec d{base, base + rep.bytes->size()};

  if (d.remaining() < sizeof(kMagic) ||
      std::memcmp(d.p, kMagic, sizeof(kMagic)) != 0) {
    return Corrupt("bad magic");
  }
  d.p += sizeof(kMagic);
  uint8_t version, kind;
  if (!d.U8(&version) || version != kVersion) {
    return Corrupt("unsupported version");
  }
  if (!d.U8(&kind) || kind > static_cast<uint8_t>(Kind::kXfer)) {
    return Corrupt("bad kind");
  }
  rep.kind = static_cast<Kind>(kind);
  if (!d.U64(&rep.run)) return Corrupt("truncated run");
  if (!d.U64(&rep.nrows)) return Corrupt("truncated row count");

  // Pair dictionary (strictly increasing deltas).
  uint64_t npairs;
  if (!d.U64(&npairs)) return Corrupt("truncated dictionary count");
  if (npairs > d.remaining()) return Corrupt("dictionary count exceeds input");
  rep.pair_dict.reserve(npairs);
  uint64_t prev_pair = 0;
  for (uint64_t i = 0; i < npairs; ++i) {
    uint64_t delta;
    if (!d.U64(&delta)) return Corrupt("truncated dictionary");
    if (i > 0 && (delta == 0 || delta > UINT64_MAX - prev_pair)) {
      return Corrupt("dictionary not strictly increasing");
    }
    prev_pair = i == 0 ? delta : prev_pair + delta;
    rep.pair_dict.push_back(prev_pair);
  }
  std::vector<bool> used(rep.pair_dict.size(), false);

  // Row blocks.
  uint64_t nrowblocks;
  if (!d.U64(&nrowblocks)) return Corrupt("truncated row block count");
  if (nrowblocks != (rep.nrows + kBlock - 1) / kBlock) {
    return Corrupt("row block count mismatch");
  }
  if (nrowblocks > d.remaining()) return Corrupt("row blocks exceed input");
  rep.row_blocks.reserve(nrowblocks);
  uint64_t n_in = 0, n_out = 0;
  for (uint64_t b = 0; b < nrowblocks; ++b) {
    uint64_t count, len;
    if (!d.U64(&count) || !d.U64(&len)) return Corrupt("truncated row block");
    uint64_t expect =
        b + 1 == nrowblocks ? rep.nrows - b * kBlock : static_cast<uint64_t>(kBlock);
    if (count != expect) return Corrupt("row block size mismatch");
    if (len > d.remaining()) return Corrupt("row block length exceeds input");
    Rep::RowBlockRef ref;
    ref.offset = static_cast<size_t>(d.p - base);
    ref.len = static_cast<size_t>(len);
    ref.count = static_cast<uint32_t>(count);
    PROVLIN_RETURN_IF_ERROR(ValidateRowBlock(rep.kind, Dec{d.p, d.p + len},
                                             count, rep.pair_dict, &used,
                                             &n_in, &n_out));
    d.Skip(static_cast<size_t>(len));
    rep.row_blocks.push_back(std::move(ref));
  }

  // Views.
  for (size_t v = 0; v < kNumViews; ++v) {
    Rep::ViewDir& dir = rep.views[v];
    uint64_t nentries, nviewblocks;
    if (!d.U64(&nentries) || !d.U64(&nviewblocks)) {
      return Corrupt("truncated view header");
    }
    uint64_t expect_entries =
        rep.kind == Kind::kXfer ? rep.nrows : (v == kViewOut ? n_out : n_in);
    if (nentries != expect_entries) {
      return Corrupt("view entry count disagrees with rows");
    }
    if (nviewblocks != (nentries + kBlock - 1) / kBlock) {
      return Corrupt("view block count mismatch");
    }
    if (nviewblocks > d.remaining()) return Corrupt("view blocks exceed input");
    dir.entries = nentries;
    dir.blocks.reserve(nviewblocks);

    uint64_t prev_key_pair = 0;
    IndexPath prev_key_path;
    int64_t prev_key_ord = 0;
    bool have_prev = false;
    for (uint64_t b = 0; b < nviewblocks; ++b) {
      uint64_t count, len;
      if (!d.U64(&count) || !d.U64(&len)) return Corrupt("truncated view block");
      uint64_t expect = b + 1 == nviewblocks ? nentries - b * kBlock
                                             : static_cast<uint64_t>(kBlock);
      if (count != expect) return Corrupt("view block size mismatch");
      if (len > d.remaining()) return Corrupt("view block length exceeds input");
      Rep::ViewBlockRef ref;
      ref.offset = static_cast<size_t>(d.p - base);
      ref.len = static_cast<size_t>(len);
      ref.count = static_cast<uint32_t>(count);

      // Interleaved decode mirroring ViewStream: per entry, a lazily
      // consumed dict-run header, then path delta, then ordinal delta.
      Dec bd{d.p, d.p + len};
      RunReader runs;
      IndexPath path;
      int64_t ord = 0;
      for (uint64_t i = 0; i < count; ++i) {
        uint64_t pair;
        if (!runs.Next(bd, rep.pair_dict, &pair, &used)) {
          return Corrupt("bad view pair runs");
        }
        if (!ReadPathDelta(bd, path)) return Corrupt("bad view path chain");
        int64_t delta;
        if (!bd.S64(&delta)) return Corrupt("bad view ordinal delta");
        ord = ApplyDelta(ord, delta);
        if (ord < 0 || static_cast<uint64_t>(ord) >= rep.nrows) {
          return Corrupt("view ordinal out of range");
        }
        if (i == 0) {
          ref.first_pair = pair;
          ref.first_path = path;
        }
        if (have_prev) {
          int c = ComparePairPath(prev_key_pair, prev_key_path, pair, path);
          if (c > 0) return Corrupt("view entries out of order");
          if (c == 0 && ord <= prev_key_ord) {
            return Corrupt("view ordinal not increasing within key");
          }
        }
        prev_key_pair = pair;
        prev_key_path = path;
        prev_key_ord = ord;
        have_prev = true;
      }
      if (runs.left != 0) return Corrupt("view pair run overshoots block");
      if (bd.remaining() != 0) return Corrupt("view payload not consumed");
      d.Skip(static_cast<size_t>(len));
      dir.blocks.push_back(std::move(ref));
    }
  }

  for (size_t i = 0; i < used.size(); ++i) {
    if (!used[i]) return Corrupt("unused dictionary entry");
  }
  if (d.remaining() != 0) return Corrupt("trailing bytes");
  return seg;
}

// ---------------------------------------------------------------------------
// Row decode
// ---------------------------------------------------------------------------

namespace {

Status DecodeRowBlockInto(const Segment::Rep& rep, size_t b,
                          std::vector<Row>* out) {
  const auto& ref = rep.row_blocks[b];
  const auto* base =
      reinterpret_cast<const uint8_t*>(rep.bytes->data()) + ref.offset;
  Dec d{base, base + ref.len};
  const size_t n = ref.count;
  const Datum run_datum(static_cast<int64_t>(rep.run));
  out->clear();
  out->reserve(n);

  // Decodes one side's streams into per-present-row vectors.
  auto read_side = [&](size_t count, std::vector<uint64_t>* pairs,
                       std::vector<IndexPath>* paths,
                       std::vector<int64_t>* values) -> Status {
    RunReader runs;
    pairs->resize(count);
    for (size_t i = 0; i < count; ++i) {
      if (!runs.Next(d, rep.pair_dict, &(*pairs)[i], nullptr)) {
        return Status::Internal("segment: pair decode after validation");
      }
    }
    IndexPath path;
    paths->resize(count);
    for (size_t i = 0; i < count; ++i) {
      if (!ReadPathDelta(d, path)) {
        return Status::Internal("segment: path decode after validation");
      }
      (*paths)[i] = path;
    }
    if (values != nullptr) {
      values->resize(count);
      int64_t prev = 0;
      for (size_t i = 0; i < count; ++i) {
        int64_t delta;
        if (!d.S64(&delta)) {
          return Status::Internal("segment: value decode after validation");
        }
        prev = ApplyDelta(prev, delta);
        (*values)[i] = prev;
      }
    }
    return Status::OK();
  };

  if (rep.kind == Segment::Kind::kXform) {
    std::vector<int64_t> events(n);
    int64_t prev = 0;
    for (size_t i = 0; i < n; ++i) {
      int64_t delta;
      if (!d.S64(&delta)) return Status::Internal("segment: event decode");
      prev = ApplyDelta(prev, delta);
      events[i] = prev;
    }
    size_t nbytes = (n + 7) / 8;
    std::vector<bool> has_in(n), has_out(n);
    size_t n_in = 0, n_out = 0;
    for (int s = 0; s < 2; ++s) {
      std::vector<bool>& flags = s == 0 ? has_in : has_out;
      size_t& tally = s == 0 ? n_in : n_out;
      for (size_t i = 0; i < nbytes; ++i) {
        uint8_t byte;
        if (!d.U8(&byte)) return Status::Internal("segment: bitmap decode");
        for (size_t bit = 0; bit < 8 && i * 8 + bit < n; ++bit) {
          bool set = (byte >> bit) & 1u;
          flags[i * 8 + bit] = set;
          if (set) ++tally;
        }
      }
    }
    std::vector<uint64_t> in_pairs, out_pairs;
    std::vector<IndexPath> in_paths, out_paths;
    std::vector<int64_t> in_values, out_values;
    PROVLIN_RETURN_IF_ERROR(read_side(n_in, &in_pairs, &in_paths, &in_values));
    PROVLIN_RETURN_IF_ERROR(
        read_side(n_out, &out_pairs, &out_paths, &out_values));
    size_t ic = 0, oc = 0;
    for (size_t i = 0; i < n; ++i) {
      Row row(xform_col::kWidth);
      row[xform_col::kRun] = run_datum;
      row[xform_col::kEvent] = Datum(events[i]);
      if (has_in[i]) {
        row[xform_col::kIn] = Datum(IdPair::FromPacked(in_pairs[ic]));
        row[xform_col::kInIndex] = Datum(in_paths[ic]);
        row[xform_col::kInValue] = Datum(in_values[ic]);
        ++ic;
      }
      if (has_out[i]) {
        row[xform_col::kOut] = Datum(IdPair::FromPacked(out_pairs[oc]));
        row[xform_col::kOutIndex] = Datum(out_paths[oc]);
        row[xform_col::kOutValue] = Datum(out_values[oc]);
        ++oc;
      }
      out->push_back(std::move(row));
    }
  } else {
    std::vector<uint64_t> src_pairs, dst_pairs;
    std::vector<IndexPath> src_paths, dst_paths;
    std::vector<int64_t> values;
    PROVLIN_RETURN_IF_ERROR(read_side(n, &src_pairs, &src_paths, &values));
    PROVLIN_RETURN_IF_ERROR(read_side(n, &dst_pairs, &dst_paths, nullptr));
    for (size_t i = 0; i < n; ++i) {
      Row row(xfer_col::kWidth);
      row[xfer_col::kRun] = run_datum;
      row[xfer_col::kSrc] = Datum(IdPair::FromPacked(src_pairs[i]));
      row[xfer_col::kSrcIndex] = Datum(src_paths[i]);
      row[xfer_col::kDst] = Datum(IdPair::FromPacked(dst_pairs[i]));
      row[xfer_col::kDstIndex] = Datum(dst_paths[i]);
      row[xfer_col::kValue] = Datum(values[i]);
      out->push_back(std::move(row));
    }
  }
  if (d.remaining() != 0) {
    return Status::Internal("segment: row block not consumed");
  }
  return Status::OK();
}

}  // namespace

Result<std::vector<Row>> Segment::DecodeAllRows() const {
  std::vector<Row> rows;
  rows.reserve(rep_->nrows);
  std::vector<Row> block;
  for (size_t b = 0; b < rep_->row_blocks.size(); ++b) {
    PROVLIN_RETURN_IF_ERROR(DecodeRowBlockInto(*rep_, b, &block));
    for (Row& r : block) rows.push_back(std::move(r));
  }
  return rows;
}

// ---------------------------------------------------------------------------
// ProbeView
// ---------------------------------------------------------------------------

namespace {

// entry < probe's lower bound? (-inf when has_lo is unset)
bool EntryBelowLo(uint64_t pair, const IndexPath& path,
                  const Segment::ViewProbe& probe) {
  if (pair != probe.pair) return pair < probe.pair;
  if (!probe.has_lo) return false;
  return ComparePath(path, probe.lo) < 0;
}

// entry > probe's upper bound? (+inf within the pair when unset)
bool EntryAboveHi(uint64_t pair, const IndexPath& path,
                  const Segment::ViewProbe& probe) {
  if (pair != probe.pair) return pair > probe.pair;
  if (!probe.has_hi) return false;
  return ComparePath(path, probe.hi) > 0;
}

// entry <= probe's lower bound? With an unset lo the bound is the
// pair's first entry, so only entries of smaller pairs qualify —
// except that under sorted probe issuance an equal-pair position is
// also safe to resume from (nothing of this pair was consumed yet).
bool EntryAtOrBelowLo(uint64_t pair, const IndexPath& path,
                      const Segment::ViewProbe& probe) {
  if (pair != probe.pair) return pair < probe.pair;
  if (!probe.has_lo) return true;
  return ComparePath(path, probe.lo) <= 0;
}

// block first key strictly below the probe's lower bound? Strict, so
// the search lands one block early when a run of keys equal to lo
// spans a block boundary — the tail of the previous block may hold
// matches too.
bool BlockFirstBelowLo(const Segment::Rep::ViewBlockRef& blk,
                       const Segment::ViewProbe& probe) {
  if (blk.first_pair != probe.pair) return blk.first_pair < probe.pair;
  if (!probe.has_lo) return false;  // any real path >= (pair, -inf)
  return ComparePath(blk.first_path, probe.lo) < 0;
}

}  // namespace

Status Segment::ProbeView(
    size_t view, const ViewProbe& probe, Scratch* scratch, ProbeCounts* counts,
    const std::function<void(uint64_t ordinal, const Row& row)>& emit) const {
  if (view >= kNumViews) {
    return Status::InvalidArgument("segment: bad view index");
  }
  const Rep::ViewDir& dir = rep_->views[view];
  if (dir.entries == 0) return Status::OK();

  Scratch::Impl* impl = scratch->impl_.get();
  if (impl->bound != rep_.get()) {
    *impl = Scratch::Impl{};
    impl->bound = rep_.get();
  }
  ViewStream& st = impl->streams[view];
  st.rep = rep_.get();
  st.view = view;

  // Position at the first entry >= lo. A sorted probe sequence reuses
  // the previous position when everything before it is provably below
  // this probe's lower bound; otherwise binary-search the directory.
  bool positioned = false;
  if (st.valid) {
    if (st.exhausted) {
      if (EntryBelowLo(st.cur_pair, st.cur_path, probe)) {
        return Status::OK();  // last entry below lo: nothing can match
      }
    } else if (EntryAtOrBelowLo(st.cur_pair, st.cur_path, probe)) {
      // Current entry <= lo: everything already consumed is strictly
      // below it, hence below lo — walk forward. Bounded: fall back to
      // a directory search if the walk drags across too many blocks.
      positioned = true;
      size_t start_block = st.block;
      while (!st.exhausted && EntryBelowLo(st.cur_pair, st.cur_path, probe)) {
        if (st.consumed >= dir.blocks[st.block].count &&
            st.block - start_block >= kMaxBlockWalk) {
          positioned = false;  // too far: re-search below
          break;
        }
        st.Advance();
      }
      if (st.exhausted) return Status::OK();
    }
  }
  if (!positioned) {
    ++counts->searches;
    // Last block whose first key < lo (matches cannot start earlier).
    size_t lo_idx = 0, hi_idx = dir.blocks.size();
    while (lo_idx < hi_idx) {
      size_t mid = (lo_idx + hi_idx) / 2;
      if (BlockFirstBelowLo(dir.blocks[mid], probe)) {
        lo_idx = mid + 1;
      } else {
        hi_idx = mid;
      }
    }
    size_t start = lo_idx > 0 ? lo_idx - 1 : 0;
    if (!st.SeekBlock(start)) {
      return Status::Internal("segment: view decode after validation");
    }
    while (!st.exhausted && EntryBelowLo(st.cur_pair, st.cur_path, probe)) {
      st.Advance();
    }
    if (st.exhausted) return Status::OK();
  }

  // Collect entries within [lo, hi] in (pair, path, ordinal) order.
  while (!st.exhausted && !EntryAboveHi(st.cur_pair, st.cur_path, probe)) {
    ++counts->entries_examined;
    if (!probe.has_residual || PathExtends(st.cur_path, probe.residual)) {
      size_t ord = static_cast<size_t>(st.cur_ord);
      size_t block = ord / kRowsPerBlock;
      auto it = impl->row_blocks.find(block);
      if (it == impl->row_blocks.end()) {
        std::vector<Row> rows;
        PROVLIN_RETURN_IF_ERROR(DecodeRowBlockInto(*rep_, block, &rows));
        ++counts->blocks_decoded;
        it = impl->row_blocks.emplace(block, std::move(rows)).first;
      }
      emit(static_cast<uint64_t>(ord), it->second[ord % kRowsPerBlock]);
    }
    st.Advance();
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Footprint accounting helpers
// ---------------------------------------------------------------------------

size_t DatumApproxBytes(const Datum& d) {
  size_t total = sizeof(Datum);
  switch (d.kind()) {
    case DatumKind::kString: {
      const std::string& s = d.AsString();
      // Small strings live inside the object; count only heap spills.
      if (s.capacity() > sizeof(std::string)) total += s.capacity();
      break;
    }
    case DatumKind::kIndexPath:
      total += d.AsIndexPath().capacity() * sizeof(int32_t);
      break;
    default:
      break;
  }
  return total;
}

size_t RowApproxBytes(const Row& row) {
  size_t total = sizeof(Row);
  for (const Datum& d : row) total += DatumApproxBytes(d);
  total += (row.capacity() - row.size()) * sizeof(Datum);
  return total;
}

}  // namespace provlin::storage
