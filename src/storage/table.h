#ifndef PROVLIN_STORAGE_TABLE_H_
#define PROVLIN_STORAGE_TABLE_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "storage/bplus_tree.h"
#include "storage/hash_index.h"
#include "storage/schema.h"

namespace provlin::storage {

enum class IndexType { kBTree, kHash };

/// Declarative secondary-index description.
struct IndexSpec {
  std::string name;
  std::vector<std::string> columns;
  IndexType type = IndexType::kBTree;
};

/// Access-path counters (a value snapshot). The benches report these
/// alongside wall-clock times: unlike milliseconds they are hardware
/// independent, so the NI-vs-IndexProj probe-count gap directly mirrors
/// the paper's argument.
struct TableStats {
  uint64_t inserts = 0;
  uint64_t deletes = 0;
  uint64_t index_probes = 0;
  uint64_t full_scans = 0;
  uint64_t rows_examined = 0;
  /// Logical probes that were submitted through a batched lookup
  /// (IndexMultiSeek). Each such probe also counts in index_probes —
  /// batching changes the physical execution, never the logical count.
  uint64_t batched_probes = 0;
  /// Physical root-to-leaf B+-tree descents. A single-probe lookup costs
  /// exactly one; a batch amortizes — descents <= probes is the whole
  /// point of the batched layer. Hash probes never descend.
  uint64_t descents = 0;
};

/// Per-thread access-path counters, mirroring the read-side TableStats
/// fields. The global atomics aggregate across all threads, so a delta
/// of AggregateStats() taken around a query is meaningless once queries
/// run concurrently — it charges every other thread's probes to this
/// query. Read paths therefore also bump these plain thread_local
/// counters, and per-query cost attribution (LineageTiming.trace_probes,
/// the service's per-thread metrics) uses deltas of ThisThreadStats().
struct ThreadStats {
  uint64_t index_probes = 0;
  uint64_t full_scans = 0;
  uint64_t rows_examined = 0;
  uint64_t batched_probes = 0;
  uint64_t descents = 0;

  uint64_t probes() const { return index_probes + full_scans; }
};

/// The calling thread's counters (monotonic; never reset by the layer).
ThreadStats& ThisThreadStats();

/// Heap table with optional secondary indexes. Rows are addressed by a
/// stable row id (their insertion ordinal); deletes tombstone in place.
///
/// Concurrency contract (DESIGN.md §10): the table itself is
/// single-writer — rows_, deleted_, and indexes_ carry no capability
/// because mutation is confined to capture/setup phases, while query
/// phases share the table read-only across threads (the regime the
/// LineageService batches run in; trace stores must be quiescent during
/// a batch). The only state touched from concurrent const readers is
/// StatsCounters, which is relaxed-atomic by design rather than
/// mutex-guarded: counter bumps sit on the per-probe hot path, and
/// cross-counter consistency of a snapshot is explicitly not promised
/// (racy-exact, exact when quiescent).
class Table {
 public:
  Table(std::string name, Schema schema);

  const std::string& name() const { return name_; }
  const Schema& schema() const { return schema_; }

  /// Registers and backfills a secondary index.
  Status CreateIndex(const IndexSpec& spec);

  bool HasIndex(std::string_view index_name) const;
  std::vector<IndexSpec> indexes() const;

  /// Appends a row; returns its row id. The row must match the schema.
  Result<uint64_t> Insert(const Row& row);

  /// Tombstones a row and removes it from all indexes.
  Status Delete(uint64_t rid);

  /// Fetches a live row.
  Result<Row> Get(uint64_t rid) const;

  /// Zero-copy read of a live row: a pointer into the table's own row
  /// storage, or nullptr for dead/out-of-range rids. The pointer is
  /// invalidated by the next write to this table (Insert may reallocate
  /// the heap, Delete tombstones) — callers on the read-only query path
  /// must finish with it before any mutation.
  const Row* PeekRow(uint64_t rid) const;

  /// Row ids whose indexed columns equal `key` (one datum per index
  /// column, in index order).
  Result<std::vector<uint64_t>> IndexLookup(std::string_view index_name,
                                            const Key& key) const;

  /// Row ids whose leading indexed columns equal `prefix` (BTree only).
  Result<std::vector<uint64_t>> IndexPrefixLookup(std::string_view index_name,
                                                  const Key& prefix) const;

  /// Row ids with lo <= indexed-key <= hi (BTree only; composite bounds).
  Result<std::vector<uint64_t>> IndexRangeLookup(std::string_view index_name,
                                                 const Key& lo,
                                                 const Key& hi) const;

  /// Answers a batch of probes against one BTree index in a single
  /// amortized pass (see BPlusTree::MultiSeek). Counts every probe as a
  /// logical index probe (and as a batched one), but only the physical
  /// descents the batch actually paid.
  Result<BPlusTree::MultiSeekResult> IndexMultiSeek(
      std::string_view index_name,
      const std::vector<BPlusTree::Probe>& probes) const;

  /// All live row ids, in insertion order. Counts as a full scan.
  std::vector<uint64_t> FullScan() const;

  /// Visits every live row in rid order without moving any access-path
  /// counter. Maintenance-path enumeration (segment seal/unseal, image
  /// writers) — not a query surface, so cost attribution around queries
  /// stays undisturbed.
  void ForEachLiveRow(
      const std::function<void(uint64_t rid, const Row& row)>& fn) const;

  /// Approximate resident bytes: row payloads (live slots only — Delete
  /// releases a tombstoned row's storage), the slot/tombstone vectors,
  /// and every secondary index.
  size_t ApproxMemoryUsage() const;

  size_t num_rows() const { return live_rows_; }
  size_t num_slots() const { return rows_.size(); }

  /// Snapshot of the access-path counters (relaxed reads).
  TableStats stats() const { return stats_.Snapshot(); }
  void ResetStats() { stats_.Reset(); }

  /// Verifies that every index agrees with the heap (used in tests).
  Status CheckIndexConsistency() const;

 private:
  struct SecondaryIndex {
    IndexSpec spec;
    std::vector<size_t> column_idx;
    std::unique_ptr<BPlusTree> btree;  // when type == kBTree
    std::unique_ptr<HashIndex> hash;   // when type == kHash
  };

  Key ExtractKey(const Row& row, const SecondaryIndex& idx) const;
  Result<const SecondaryIndex*> FindIndex(std::string_view index_name) const;

  /// Counters behind the TableStats snapshot. Const query paths (Get,
  /// IndexLookup, FullScan) bump them, so they are mutable — and relaxed
  /// atomics, so concurrent const readers of a shared table stay
  /// data-race free once shared-read serving lands.
  struct StatsCounters {
    std::atomic<uint64_t> inserts{0};
    std::atomic<uint64_t> deletes{0};
    std::atomic<uint64_t> index_probes{0};
    std::atomic<uint64_t> full_scans{0};
    std::atomic<uint64_t> rows_examined{0};
    std::atomic<uint64_t> batched_probes{0};
    std::atomic<uint64_t> descents{0};

    TableStats Snapshot() const;
    void Reset();
    void Bump(std::atomic<uint64_t>& counter, uint64_t n = 1) {
      counter.fetch_add(n, std::memory_order_relaxed);
    }
  };

  std::string name_;
  Schema schema_;
  std::vector<Row> rows_;
  std::vector<bool> deleted_;
  size_t live_rows_ = 0;
  std::vector<SecondaryIndex> indexes_;
  mutable StatsCounters stats_;
};

}  // namespace provlin::storage

#endif  // PROVLIN_STORAGE_TABLE_H_
