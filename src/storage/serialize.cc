#include "storage/serialize.h"

#include <cstring>

namespace provlin::storage {

void BinaryWriter::WriteU8(uint8_t v) { buf_.push_back(static_cast<char>(v)); }

void BinaryWriter::WriteU32(uint32_t v) {
  char b[4];
  std::memcpy(b, &v, 4);
  buf_.append(b, 4);
}

void BinaryWriter::WriteU64(uint64_t v) {
  char b[8];
  std::memcpy(b, &v, 8);
  buf_.append(b, 8);
}

void BinaryWriter::WriteI64(int64_t v) {
  WriteU64(static_cast<uint64_t>(v));
}

void BinaryWriter::WriteDouble(double v) {
  char b[8];
  std::memcpy(b, &v, 8);
  buf_.append(b, 8);
}

void BinaryWriter::WriteString(std::string_view s) {
  WriteU64(s.size());
  buf_.append(s);
}

void BinaryWriter::WriteDatum(const Datum& d) {
  WriteU8(static_cast<uint8_t>(d.kind()));
  switch (d.kind()) {
    case DatumKind::kNull:
      break;
    case DatumKind::kInt:
      WriteI64(d.AsInt());
      break;
    case DatumKind::kDouble:
      WriteDouble(d.AsDouble());
      break;
    case DatumKind::kString:
      WriteString(d.AsString());
      break;
    case DatumKind::kIdPair:
      WriteU64(d.AsIdPair().Packed());
      break;
    case DatumKind::kIndexPath: {
      const IndexPath& path = d.AsIndexPath();
      WriteU32(static_cast<uint32_t>(path.size()));
      for (int32_t p : path) WriteU32(static_cast<uint32_t>(p));
      break;
    }
  }
}

void BinaryWriter::WriteRow(const Row& row) {
  WriteU32(static_cast<uint32_t>(row.size()));
  for (const Datum& d : row) WriteDatum(d);
}

Status BinaryReader::Need(size_t n) {
  if (pos_ + n > data_.size()) {
    return Status::Corruption("truncated input at offset " +
                              std::to_string(pos_));
  }
  return Status::OK();
}

Result<uint8_t> BinaryReader::ReadU8() {
  PROVLIN_RETURN_IF_ERROR(Need(1));
  return static_cast<uint8_t>(data_[pos_++]);
}

Result<uint32_t> BinaryReader::ReadU32() {
  PROVLIN_RETURN_IF_ERROR(Need(4));
  uint32_t v;
  std::memcpy(&v, data_.data() + pos_, 4);
  pos_ += 4;
  return v;
}

Result<uint64_t> BinaryReader::ReadU64() {
  PROVLIN_RETURN_IF_ERROR(Need(8));
  uint64_t v;
  std::memcpy(&v, data_.data() + pos_, 8);
  pos_ += 8;
  return v;
}

Result<int64_t> BinaryReader::ReadI64() {
  PROVLIN_ASSIGN_OR_RETURN(uint64_t v, ReadU64());
  return static_cast<int64_t>(v);
}

Result<double> BinaryReader::ReadDouble() {
  PROVLIN_RETURN_IF_ERROR(Need(8));
  double v;
  std::memcpy(&v, data_.data() + pos_, 8);
  pos_ += 8;
  return v;
}

Result<std::string> BinaryReader::ReadString() {
  PROVLIN_ASSIGN_OR_RETURN(uint64_t len, ReadU64());
  PROVLIN_RETURN_IF_ERROR(Need(len));
  std::string out(data_.substr(pos_, len));
  pos_ += len;
  return out;
}

Result<Datum> BinaryReader::ReadDatum() {
  PROVLIN_ASSIGN_OR_RETURN(uint8_t tag, ReadU8());
  switch (static_cast<DatumKind>(tag)) {
    case DatumKind::kNull:
      return Datum::Null();
    case DatumKind::kInt: {
      PROVLIN_ASSIGN_OR_RETURN(int64_t v, ReadI64());
      return Datum(v);
    }
    case DatumKind::kDouble: {
      PROVLIN_ASSIGN_OR_RETURN(double v, ReadDouble());
      return Datum(v);
    }
    case DatumKind::kString: {
      PROVLIN_ASSIGN_OR_RETURN(std::string v, ReadString());
      return Datum(std::move(v));
    }
    case DatumKind::kIdPair: {
      PROVLIN_ASSIGN_OR_RETURN(uint64_t v, ReadU64());
      return Datum(IdPair::FromPacked(v));
    }
    case DatumKind::kIndexPath: {
      PROVLIN_ASSIGN_OR_RETURN(uint32_t n, ReadU32());
      IndexPath path;
      path.reserve(n);
      for (uint32_t i = 0; i < n; ++i) {
        PROVLIN_ASSIGN_OR_RETURN(uint32_t p, ReadU32());
        path.push_back(static_cast<int32_t>(p));
      }
      return Datum(std::move(path));
    }
  }
  return Status::Corruption("bad datum tag " + std::to_string(tag));
}

Result<Row> BinaryReader::ReadRow() {
  PROVLIN_ASSIGN_OR_RETURN(uint32_t n, ReadU32());
  Row row;
  row.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    PROVLIN_ASSIGN_OR_RETURN(Datum d, ReadDatum());
    row.push_back(std::move(d));
  }
  return row;
}

}  // namespace provlin::storage
