#ifndef PROVLIN_PROVENANCE_OPM_EXPORT_H_
#define PROVLIN_PROVENANCE_OPM_EXPORT_H_

#include <string>

#include "common/result.h"
#include "provenance/trace_store.h"

namespace provlin::provenance {

/// Exports one run's trace in an Open Provenance Model style JSON
/// document — the interchange vocabulary of the provenance challenges
/// the paper builds on (§1). The mapping:
///
///   * every distinct binding ⟨P:X[p]⟩ becomes an OPM *artifact*
///     (JSON key "artifacts"), annotated with its port, index and value
///     literal;
///   * every elementary xform event becomes a *process* keyed by its
///     event id and processor name;
///   * xform dependency rows become "used" (process ← input artifact)
///     and "wasGeneratedBy" (output artifact ← process) edges;
///   * xfer rows become "wasDerivedFrom" edges between artifacts.
///
/// The document is self-contained and deterministic (artifacts are
/// keyed by binding, sorted), so golden tests can pin it.
Result<std::string> ExportOpmJson(const TraceStore& store,
                                  const std::string& run);

}  // namespace provlin::provenance

#endif  // PROVLIN_PROVENANCE_OPM_EXPORT_H_
