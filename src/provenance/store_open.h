#ifndef PROVLIN_PROVENANCE_STORE_OPEN_H_
#define PROVLIN_PROVENANCE_STORE_OPEN_H_

#include <memory>
#include <optional>
#include <string>

#include "common/result.h"
#include "provenance/trace_store.h"
#include "storage/database.h"

namespace provlin::provenance {

/// The one way a trace store is opened from the outside: database path,
/// shard layout, ingest mode, and WAL attachment in a single options
/// struct. The CLI (every command), the lineage server, and the benches
/// all build one of these instead of hand-wiring Database::Load +
/// TraceStore::Open + AttachWalFiles in their own order.
struct StoreOptions {
  /// Database image path. Loaded when the file exists, created fresh
  /// otherwise. Empty = in-memory only (benches, tests): nothing is
  /// loaded and Save() is a no-op.
  std::string db_path;
  /// When non-empty, store-owned per-shard WAL files are attached under
  /// this base path (TraceStore::AttachWalFiles): capture becomes
  /// crash-safe before rows reach the tables.
  std::string wal_base;
  /// Run-shard count. 0 = auto: the count recorded in the database
  /// image, else PROVLIN_TEST_SHARDS, else 1. An explicit count that
  /// differs from the image's reshards on open (DESIGN.md §11).
  size_t shards = 0;
  /// Per-shard writer threads draining bounded ingest queues instead of
  /// synchronous writes on the caller's thread.
  bool async_ingest = false;
  /// Segment sealing policy (DESIGN.md §13). Unset = the
  /// PROVLIN_TEST_COMPRESS environment variable, else off.
  std::optional<CompressMode> compress;

  /// The storage-layer slice of these options.
  TraceStoreOptions ToTraceStoreOptions() const {
    TraceStoreOptions out;
    out.shards = shards;
    out.async_ingest = async_ingest;
    out.compress = compress;
    return out;
  }
};

/// An opened database + trace store pair with aligned lifetimes (the
/// store points into the database; moving the OpenedStore keeps the
/// pointer valid because the database is heap-owned). Movable,
/// non-copyable.
class OpenedStore {
 public:
  OpenedStore(OpenedStore&&) = default;
  OpenedStore& operator=(OpenedStore&&) = default;
  OpenedStore(const OpenedStore&) = delete;
  OpenedStore& operator=(const OpenedStore&) = delete;

  TraceStore& store() { return *store_; }
  const TraceStore& store() const { return *store_; }
  storage::Database& db() { return *db_; }

  /// Persists the database image back to StoreOptions::db_path (no-op
  /// for an in-memory store). Flushes pending async ingest first.
  Status Save();

 private:
  friend Result<OpenedStore> OpenStore(const StoreOptions& options);
  OpenedStore() = default;

  StoreOptions options_;
  std::unique_ptr<storage::Database> db_;
  std::optional<TraceStore> store_;
};

/// Opens (or creates) the database at options.db_path, opens the trace
/// store over it with the requested shard layout, and attaches WAL
/// files when requested — the single replacement for the scattered
/// OpenDb / TraceStore::Open / AttachWalFiles call shapes.
Result<OpenedStore> OpenStore(const StoreOptions& options);

}  // namespace provlin::provenance

#endif  // PROVLIN_PROVENANCE_STORE_OPEN_H_
