#include "provenance/provenance_graph.h"

#include <sstream>

#include "provenance/schema.h"
#include "workflow/dataflow.h"

namespace provlin::provenance {

Result<ProvenanceGraph> ProvenanceGraph::Build(const TraceStore& store,
                                               const std::string& run) {
  ProvenanceGraph graph;

  // Records carry interned ids; the graph is a render boundary, so
  // resolve names once per record here.
  PROVLIN_ASSIGN_OR_RETURN(std::vector<XformRecord> xforms,
                           store.ScanXforms(run));
  for (const XformRecord& rec : xforms) {
    std::string proc = store.NameOf(rec.processor);
    if (rec.has_in && rec.has_out) {
      BindingNode from{proc, store.NameOf(rec.in_port), rec.in_index};
      BindingNode to{proc, store.NameOf(rec.out_port), rec.out_index};
      graph.nodes_.insert(from);
      graph.nodes_.insert(to);
      graph.edges_.push_back({from, to, EdgeKind::kXform});
    } else if (rec.has_out) {
      // Source rows (workflow inputs) contribute a node only.
      graph.nodes_.insert(
          BindingNode{proc, store.NameOf(rec.out_port), rec.out_index});
    }
  }
  PROVLIN_ASSIGN_OR_RETURN(std::vector<XferRecord> xfers,
                           store.ScanXfers(run));
  for (const XferRecord& rec : xfers) {
    BindingNode from{store.NameOf(rec.src_proc), store.NameOf(rec.src_port),
                     rec.src_index};
    BindingNode to{store.NameOf(rec.dst_proc), store.NameOf(rec.dst_port),
                   rec.dst_index};
    graph.nodes_.insert(from);
    graph.nodes_.insert(to);
    graph.edges_.push_back({from, to, EdgeKind::kXfer});
  }
  // Refinement edges: within each (processor, port) group, link every
  // binding to its longest strictly-coarser recorded prefix.
  std::map<std::pair<std::string, std::string>, std::vector<BindingNode>>
      by_port;
  for (const BindingNode& n : graph.nodes_) {
    by_port[{n.processor, n.port}].push_back(n);
  }
  for (auto& [key, group] : by_port) {
    for (const BindingNode& fine : group) {
      const BindingNode* best = nullptr;
      for (const BindingNode& coarse : group) {
        if (coarse.index.length() >= fine.index.length()) continue;
        if (!coarse.index.IsPrefixOf(fine.index)) continue;
        if (best == nullptr || coarse.index.length() > best->index.length()) {
          best = &coarse;
        }
      }
      if (best != nullptr) {
        graph.edges_.push_back({*best, fine, EdgeKind::kRefine});
      }
    }
  }
  return graph;
}

ProvenanceGraphStats ProvenanceGraph::Stats() const {
  ProvenanceGraphStats stats;
  stats.nodes = nodes_.size();
  std::set<BindingNode> has_in;
  std::set<BindingNode> has_out;
  for (const ProvenanceEdge& e : edges_) {
    if (e.kind == EdgeKind::kXform) {
      ++stats.xform_edges;
    } else if (e.kind == EdgeKind::kXfer) {
      ++stats.xfer_edges;
    } else {
      ++stats.refine_edges;
    }
    has_out.insert(e.from);
    has_in.insert(e.to);
  }
  for (const BindingNode& n : nodes_) {
    if (has_in.count(n) == 0) ++stats.source_nodes;
    if (has_out.count(n) == 0) ++stats.sink_nodes;
  }
  return stats;
}

std::string ProvenanceGraph::ToDot(const std::string& graph_name) const {
  std::ostringstream out;
  out << "digraph \"" << graph_name << "\" {\n";
  out << "  rankdir=LR;\n  node [fontsize=10];\n";
  std::map<BindingNode, size_t> ids;
  for (const BindingNode& n : nodes_) {
    size_t id = ids.size();
    ids[n] = id;
    out << "  n" << id << " [label=\"" << n.ToString() << "\"";
    if (n.processor == workflow::kWorkflowProcessor) {
      out << ", shape=box";
    }
    out << "];\n";
  }
  for (const ProvenanceEdge& e : edges_) {
    out << "  n" << ids.at(e.from) << " -> n" << ids.at(e.to);
    if (e.kind == EdgeKind::kXfer) out << " [style=dashed]";
    if (e.kind == EdgeKind::kRefine) out << " [style=dotted]";
    out << ";\n";
  }
  out << "}\n";
  return out.str();
}

}  // namespace provlin::provenance
