#include "provenance/trace_store.h"

#include <set>

#include "provenance/schema.h"
#include "storage/serialize.h"
#include "values/value_parser.h"

namespace provlin::provenance {

using storage::Datum;
using storage::Row;
using storage::SelectQuery;
using storage::SelectResult;
using storage::Table;

namespace {

// WAL table tags.
constexpr uint8_t kTagRuns = 0, kTagVal = 1, kTagXform = 2, kTagXfer = 3;

// Column ordinals, fixed by CreateProvenanceSchema.
namespace xform_col {
constexpr size_t kRun = 0, kEvent = 1, kProc = 2, kInPort = 3, kInIndex = 4,
                 kInValue = 5, kOutPort = 6, kOutIndex = 7, kOutValue = 8;
}  // namespace xform_col
namespace xfer_col {
constexpr size_t kSrcProc = 1, kSrcPort = 2, kSrcIndex = 3, kDstProc = 4,
                 kDstPort = 5, kDstIndex = 6, kValue = 7;
}  // namespace xfer_col

Result<XformRecord> DecodeXform(const Row& row) {
  XformRecord rec;
  rec.run_id = row[xform_col::kRun].AsString();
  rec.event_id = row[xform_col::kEvent].AsInt();
  rec.processor = row[xform_col::kProc].AsString();
  rec.has_in = !row[xform_col::kInPort].is_null();
  if (rec.has_in) {
    rec.in_port = row[xform_col::kInPort].AsString();
    PROVLIN_ASSIGN_OR_RETURN(rec.in_index,
                             Index::Decode(row[xform_col::kInIndex].AsString()));
    rec.in_value = row[xform_col::kInValue].AsInt();
  }
  rec.has_out = !row[xform_col::kOutPort].is_null();
  if (rec.has_out) {
    rec.out_port = row[xform_col::kOutPort].AsString();
    PROVLIN_ASSIGN_OR_RETURN(
        rec.out_index, Index::Decode(row[xform_col::kOutIndex].AsString()));
    rec.out_value = row[xform_col::kOutValue].AsInt();
  }
  return rec;
}

Result<XferRecord> DecodeXfer(const Row& row) {
  XferRecord rec;
  rec.run_id = row[0].AsString();
  rec.src_proc = row[xfer_col::kSrcProc].AsString();
  rec.src_port = row[xfer_col::kSrcPort].AsString();
  PROVLIN_ASSIGN_OR_RETURN(rec.src_index,
                           Index::Decode(row[xfer_col::kSrcIndex].AsString()));
  rec.dst_proc = row[xfer_col::kDstProc].AsString();
  rec.dst_port = row[xfer_col::kDstPort].AsString();
  PROVLIN_ASSIGN_OR_RETURN(rec.dst_index,
                           Index::Decode(row[xfer_col::kDstIndex].AsString()));
  rec.value_id = row[xfer_col::kValue].AsInt();
  return rec;
}

std::string RowKey(const Row& row) {
  std::string key;
  for (const Datum& d : row) {
    key += d.ToString();
    key += '\x1f';
  }
  return key;
}

}  // namespace

Result<TraceStore> TraceStore::Open(storage::Database* db) {
  if (!db->GetTable(tables::kXform).ok()) {
    PROVLIN_RETURN_IF_ERROR(CreateProvenanceSchema(db));
  }
  return TraceStore(db);
}

Status TraceStore::InsertRun(const std::string& run_id,
                             const std::string& workflow) {
  PROVLIN_ASSIGN_OR_RETURN(Table * runs, db_->GetTable(tables::kRuns));
  PROVLIN_ASSIGN_OR_RETURN(
      std::vector<uint64_t> existing,
      runs->IndexLookup(indexes::kRunsById, {Datum(run_id)}));
  if (!existing.empty()) {
    return Status::AlreadyExists("run '" + run_id + "' already recorded");
  }
  int64_t seq = static_cast<int64_t>(runs->num_rows());
  storage::Row row{Datum(run_id), Datum(workflow), Datum(seq)};
  PROVLIN_RETURN_IF_ERROR(LogRow(kTagRuns, row));
  return runs->Insert(row).status();
}

Result<int64_t> TraceStore::InternValue(const std::string& run_id,
                                        const std::string& repr) {
  // Interning is an in-memory write-path optimization: ids are unique per
  // run, and a freshly opened store only ever writes new runs.
  auto key = std::make_pair(run_id, repr);
  auto it = intern_cache_.find(key);
  if (it != intern_cache_.end()) return it->second;
  PROVLIN_ASSIGN_OR_RETURN(Table * val, db_->GetTable(tables::kVal));
  int64_t id = static_cast<int64_t>(next_value_id_[run_id]++);
  storage::Row row{Datum(run_id), Datum(id), Datum(repr)};
  PROVLIN_RETURN_IF_ERROR(LogRow(kTagVal, row));
  PROVLIN_RETURN_IF_ERROR(val->Insert(row).status());
  intern_cache_[key] = id;
  return id;
}

Status TraceStore::InsertXform(const XformRecord& rec) {
  PROVLIN_ASSIGN_OR_RETURN(Table * xform, db_->GetTable(tables::kXform));
  Row row(9);
  row[xform_col::kRun] = Datum(rec.run_id);
  row[xform_col::kEvent] = Datum(rec.event_id);
  row[xform_col::kProc] = Datum(rec.processor);
  if (rec.has_in) {
    row[xform_col::kInPort] = Datum(rec.in_port);
    row[xform_col::kInIndex] = Datum(rec.in_index.Encode());
    row[xform_col::kInValue] = Datum(rec.in_value);
  }
  if (rec.has_out) {
    row[xform_col::kOutPort] = Datum(rec.out_port);
    row[xform_col::kOutIndex] = Datum(rec.out_index.Encode());
    row[xform_col::kOutValue] = Datum(rec.out_value);
  }
  PROVLIN_RETURN_IF_ERROR(LogRow(kTagXform, row));
  return xform->Insert(row).status();
}

Status TraceStore::InsertXfer(const XferRecord& rec) {
  PROVLIN_ASSIGN_OR_RETURN(Table * xfer, db_->GetTable(tables::kXfer));
  storage::Row row{Datum(rec.run_id),         Datum(rec.src_proc),
                   Datum(rec.src_port),       Datum(rec.src_index.Encode()),
                   Datum(rec.dst_proc),       Datum(rec.dst_port),
                   Datum(rec.dst_index.Encode()), Datum(rec.value_id)};
  PROVLIN_RETURN_IF_ERROR(LogRow(kTagXfer, row));
  return xfer->Insert(row).status();
}

Status TraceStore::LogRow(uint8_t table_tag, const storage::Row& row) {
  if (wal_ == nullptr) return Status::OK();
  storage::BinaryWriter w;
  w.WriteU8(table_tag);
  w.WriteRow(row);
  return wal_->Append(w.buffer());
}

Result<size_t> TraceStore::ReplayWal(const std::string& wal_path,
                                     storage::Database* db) {
  if (!db->GetTable(tables::kXform).ok()) {
    PROVLIN_RETURN_IF_ERROR(CreateProvenanceSchema(db));
  }
  PROVLIN_ASSIGN_OR_RETURN(std::vector<std::string> records,
                           storage::WriteAheadLog::Replay(wal_path));
  size_t applied = 0;
  for (const std::string& record : records) {
    storage::BinaryReader r(record);
    PROVLIN_ASSIGN_OR_RETURN(uint8_t tag, r.ReadU8());
    PROVLIN_ASSIGN_OR_RETURN(Row row, r.ReadRow());
    const char* table_name = nullptr;
    switch (tag) {
      case kTagRuns:
        table_name = tables::kRuns;
        break;
      case kTagVal:
        table_name = tables::kVal;
        break;
      case kTagXform:
        table_name = tables::kXform;
        break;
      case kTagXfer:
        table_name = tables::kXfer;
        break;
      default:
        return Status::Corruption("bad WAL table tag " + std::to_string(tag));
    }
    PROVLIN_ASSIGN_OR_RETURN(Table * table, db->GetTable(table_name));
    PROVLIN_RETURN_IF_ERROR(table->Insert(row).status());
    ++applied;
  }
  return applied;
}

Result<size_t> TraceStore::DeleteRun(const std::string& run_id) {
  PROVLIN_ASSIGN_OR_RETURN(Table * runs, db_->GetTable(tables::kRuns));
  PROVLIN_ASSIGN_OR_RETURN(
      std::vector<uint64_t> run_rows,
      runs->IndexLookup(indexes::kRunsById, {Datum(run_id)}));
  if (run_rows.empty()) {
    return Status::NotFound("run '" + run_id + "' not recorded");
  }
  size_t removed = 0;
  for (uint64_t rid : run_rows) {
    PROVLIN_RETURN_IF_ERROR(runs->Delete(rid));
    ++removed;
  }
  // The trace tables key everything by run_id in column 0; sweep them.
  for (const char* name : {tables::kVal, tables::kXform, tables::kXfer}) {
    PROVLIN_ASSIGN_OR_RETURN(Table * table, db_->GetTable(name));
    std::vector<uint64_t> to_delete;
    for (uint64_t rid : table->FullScan()) {
      PROVLIN_ASSIGN_OR_RETURN(Row row, table->Get(rid));
      if (row[0].AsString() == run_id) to_delete.push_back(rid);
    }
    for (uint64_t rid : to_delete) {
      PROVLIN_RETURN_IF_ERROR(table->Delete(rid));
      ++removed;
    }
  }
  // Drop the write-path caches for the deleted run so a future run may
  // reuse the id with fresh value ids.
  next_value_id_.erase(run_id);
  for (auto it = intern_cache_.begin(); it != intern_cache_.end();) {
    if (it->first.first == run_id) {
      it = intern_cache_.erase(it);
    } else {
      ++it;
    }
  }
  return removed;
}

Result<std::string> TraceStore::RunWorkflow(const std::string& run_id) const {
  PROVLIN_ASSIGN_OR_RETURN(const Table* runs, db_->GetTable(tables::kRuns));
  PROVLIN_ASSIGN_OR_RETURN(
      std::vector<uint64_t> run_rows,
      runs->IndexLookup(indexes::kRunsById, {Datum(run_id)}));
  if (run_rows.empty()) {
    return Status::NotFound("run '" + run_id + "' not recorded");
  }
  PROVLIN_ASSIGN_OR_RETURN(Row row, runs->Get(run_rows.front()));
  return row[1].AsString();
}

Result<std::vector<std::string>> TraceStore::ListRuns() const {
  PROVLIN_ASSIGN_OR_RETURN(const Table* runs, db_->GetTable(tables::kRuns));
  std::vector<std::string> out;
  for (uint64_t rid : runs->FullScan()) {
    PROVLIN_ASSIGN_OR_RETURN(Row row, runs->Get(rid));
    out.push_back(row[0].AsString());
  }
  return out;
}

Result<std::vector<storage::Row>> TraceStore::OverlapProbe(
    const char* table, const std::string& run, const char* proc_col,
    const std::string& proc, const char* port_col, const std::string& port,
    const char* index_col, const Index& idx) const {
  PROVLIN_ASSIGN_OR_RETURN(const Table* t, db_->GetTable(table));

  std::vector<Row> rows;
  std::set<std::string> seen;
  auto add = [&](SelectResult& r) {
    for (Row& row : r.rows) {
      if (seen.insert(RowKey(row)).second) rows.push_back(std::move(row));
    }
  };

  auto base = [&]() {
    SelectQuery q;
    q.equals.push_back({"run_id", Datum(run)});
    q.equals.push_back({proc_col, Datum(proc)});
    q.equals.push_back({port_col, Datum(port)});
    return q;
  };

  if (idx.empty()) {
    // The whole-value query: one range probe enumerates every binding on
    // the port (exact [] row included — "" is a prefix of everything).
    SelectQuery q = base();
    q.string_prefix = SelectQuery::StringPrefix{index_col, ""};
    PROVLIN_ASSIGN_OR_RETURN(SelectResult r, storage::ExecuteSelect(*t, q));
    add(r);
    return rows;
  }

  // Covering bindings: the exact index and every proper prefix of it
  // (|q|+1 point probes).
  for (size_t k = 0; k <= idx.length(); ++k) {
    SelectQuery q = base();
    q.equals.push_back({index_col, Datum(idx.Prefix(k).Encode())});
    PROVLIN_ASSIGN_OR_RETURN(SelectResult r, storage::ExecuteSelect(*t, q));
    add(r);
  }
  // Strictly finer bindings below q: one range probe.
  {
    SelectQuery q = base();
    q.string_prefix =
        SelectQuery::StringPrefix{index_col, idx.Encode() + "."};
    PROVLIN_ASSIGN_OR_RETURN(SelectResult r, storage::ExecuteSelect(*t, q));
    add(r);
  }
  return rows;
}

Result<std::vector<XformRecord>> TraceStore::FindProducing(
    const std::string& run, const std::string& processor,
    const std::string& out_port, const Index& q) const {
  PROVLIN_ASSIGN_OR_RETURN(
      std::vector<Row> rows,
      OverlapProbe(tables::kXform, run, "processor", processor, "out_port",
                   out_port, "out_index", q));
  std::vector<XformRecord> out;
  out.reserve(rows.size());
  for (const Row& row : rows) {
    PROVLIN_ASSIGN_OR_RETURN(XformRecord rec, DecodeXform(row));
    out.push_back(std::move(rec));
  }
  return out;
}

Result<std::vector<XformRecord>> TraceStore::FindConsuming(
    const std::string& run, const std::string& processor,
    const std::string& in_port, const Index& p) const {
  PROVLIN_ASSIGN_OR_RETURN(
      std::vector<Row> rows,
      OverlapProbe(tables::kXform, run, "processor", processor, "in_port",
                   in_port, "in_index", p));
  std::vector<XformRecord> out;
  out.reserve(rows.size());
  for (const Row& row : rows) {
    PROVLIN_ASSIGN_OR_RETURN(XformRecord rec, DecodeXform(row));
    out.push_back(std::move(rec));
  }
  return out;
}

Result<std::vector<XferRecord>> TraceStore::FindXfersInto(
    const std::string& run, const std::string& dst_proc,
    const std::string& dst_port, const Index& p) const {
  PROVLIN_ASSIGN_OR_RETURN(
      std::vector<Row> rows,
      OverlapProbe(tables::kXfer, run, "dst_proc", dst_proc, "dst_port",
                   dst_port, "dst_index", p));
  std::vector<XferRecord> out;
  out.reserve(rows.size());
  for (const Row& row : rows) {
    PROVLIN_ASSIGN_OR_RETURN(XferRecord rec, DecodeXfer(row));
    out.push_back(std::move(rec));
  }
  return out;
}

Result<std::vector<XferRecord>> TraceStore::FindXfersFrom(
    const std::string& run, const std::string& src_proc,
    const std::string& src_port, const Index& p) const {
  PROVLIN_ASSIGN_OR_RETURN(
      std::vector<Row> rows,
      OverlapProbe(tables::kXfer, run, "src_proc", src_proc, "src_port",
                   src_port, "src_index", p));
  std::vector<XferRecord> out;
  out.reserve(rows.size());
  for (const Row& row : rows) {
    PROVLIN_ASSIGN_OR_RETURN(XferRecord rec, DecodeXfer(row));
    out.push_back(std::move(rec));
  }
  return out;
}

Result<std::string> TraceStore::GetValueRepr(const std::string& run,
                                             int64_t value_id) const {
  PROVLIN_ASSIGN_OR_RETURN(const Table* val, db_->GetTable(tables::kVal));
  PROVLIN_ASSIGN_OR_RETURN(
      std::vector<uint64_t> rids,
      val->IndexLookup(indexes::kValById, {Datum(run), Datum(value_id)}));
  if (rids.empty()) {
    return Status::NotFound("no value " + std::to_string(value_id) +
                            " in run '" + run + "'");
  }
  PROVLIN_ASSIGN_OR_RETURN(Row row, val->Get(rids.front()));
  return row[2].AsString();
}

Result<Value> TraceStore::GetValue(const std::string& run,
                                   int64_t value_id) const {
  PROVLIN_ASSIGN_OR_RETURN(std::string repr, GetValueRepr(run, value_id));
  return ParseValue(repr);
}

Result<TraceCounts> TraceStore::CountRecords(const std::string& run) const {
  TraceCounts counts;
  PROVLIN_ASSIGN_OR_RETURN(const Table* xform, db_->GetTable(tables::kXform));
  PROVLIN_ASSIGN_OR_RETURN(const Table* xfer, db_->GetTable(tables::kXfer));
  PROVLIN_ASSIGN_OR_RETURN(const Table* val, db_->GetTable(tables::kVal));
  auto count_in = [&](const Table* t) -> Result<size_t> {
    size_t n = 0;
    for (uint64_t rid : t->FullScan()) {
      PROVLIN_ASSIGN_OR_RETURN(Row row, t->Get(rid));
      if (row[0].AsString() == run) ++n;
    }
    return n;
  };
  PROVLIN_ASSIGN_OR_RETURN(counts.xform_rows, count_in(xform));
  PROVLIN_ASSIGN_OR_RETURN(counts.xfer_rows, count_in(xfer));
  PROVLIN_ASSIGN_OR_RETURN(counts.value_rows, count_in(val));
  return counts;
}

Result<TraceCounts> TraceStore::CountAllRecords() const {
  TraceCounts counts;
  PROVLIN_ASSIGN_OR_RETURN(const Table* xform, db_->GetTable(tables::kXform));
  PROVLIN_ASSIGN_OR_RETURN(const Table* xfer, db_->GetTable(tables::kXfer));
  PROVLIN_ASSIGN_OR_RETURN(const Table* val, db_->GetTable(tables::kVal));
  counts.xform_rows = xform->num_rows();
  counts.xfer_rows = xfer->num_rows();
  counts.value_rows = val->num_rows();
  return counts;
}

}  // namespace provlin::provenance
