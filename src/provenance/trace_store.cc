#include "provenance/trace_store.h"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <fstream>
#include <limits>
#include <numeric>
#include <set>
#include <thread>
#include <type_traits>

#include "common/metrics.h"
#include "common/thread_pool.h"
#include "common/tracing.h"
#include "provenance/schema.h"
#include "storage/segment.h"
#include "storage/serialize.h"
#include "values/value_parser.h"

namespace provlin::provenance {

using storage::Datum;
using storage::IdPair;
using storage::IndexPath;
using storage::Row;
using storage::Segment;
using storage::SelectQuery;
using storage::SelectResult;
using storage::Table;

namespace {

// WAL record tags: one per trace table, plus symbol definitions and run
// deletions. Symbol ids are positional, so replaying kTagSymbol records
// in log order re-mints identical ids before any row references them.
// kTagDeleteRun carries the run id string; replay sweeps the rows of
// that run inserted so far, so a deleted run stays deleted after
// recovery without rewriting the log.
constexpr uint8_t kTagRuns = 0, kTagVal = 1, kTagXform = 2, kTagXfer = 3,
                  kTagSymbol = 4, kTagDeleteRun = 5;

// Column ordinals, fixed by CreateProvenanceSchema.
namespace xform_col {
constexpr size_t kRun = 0, kEvent = 1, kIn = 2, kInIndex = 3, kInValue = 4,
                 kOut = 5, kOutIndex = 6, kOutValue = 7;
}  // namespace xform_col
namespace xfer_col {
constexpr size_t kRun = 0, kSrc = 1, kSrcIndex = 2, kDst = 3, kDstIndex = 4,
                 kValue = 5;
}  // namespace xfer_col

SymbolId SymOf(const Datum& d) {
  return static_cast<SymbolId>(static_cast<uint64_t>(d.AsInt()));
}

Datum SymDatum(SymbolId id) { return Datum(static_cast<int64_t>(id)); }

XformRecord DecodeXform(const Row& row) {
  XformRecord rec;
  rec.run = SymOf(row[xform_col::kRun]);
  rec.event_id = row[xform_col::kEvent].AsInt();
  rec.has_in = !row[xform_col::kIn].is_null();
  if (rec.has_in) {
    IdPair in = row[xform_col::kIn].AsIdPair();
    rec.processor = in.first;
    rec.in_port = in.second;
    rec.in_index = Index(row[xform_col::kInIndex].AsIndexPath());
    rec.in_value = row[xform_col::kInValue].AsInt();
  }
  rec.has_out = !row[xform_col::kOut].is_null();
  if (rec.has_out) {
    IdPair out = row[xform_col::kOut].AsIdPair();
    rec.processor = out.first;
    rec.out_port = out.second;
    rec.out_index = Index(row[xform_col::kOutIndex].AsIndexPath());
    rec.out_value = row[xform_col::kOutValue].AsInt();
  }
  return rec;
}

// Memo key spaces, one per public Find* flavor.
constexpr int kKindProducing = 0, kKindConsuming = 1, kKindXferInto = 2,
              kKindXferFrom = 3;

/// Content-comparing row-pointer order, for deduping overlap-probe rows
/// without copying them (two rids with byte-identical rows still dedup,
/// matching the historical std::set<Row> behaviour).
struct RowPtrLess {
  bool operator()(const Row* a, const Row* b) const { return *a < *b; }
};

/// Appends the overlap-probe query sequence for one (pair, idx) probe:
/// one prefix scan for the empty index, else |idx|+1 point probes
/// (coarser covering bindings) plus one path-prefix range probe (finer
/// bindings at or below idx).
void AppendOverlapQueries(SymbolId run, const char* pair_col, IdPair pair,
                          const char* index_col, const Index& idx,
                          std::vector<SelectQuery>* queries) {
  auto base = [&]() {
    SelectQuery q;
    q.equals.push_back({"run", SymDatum(run)});
    q.equals.push_back({pair_col, Datum(pair)});
    return q;
  };
  if (idx.empty()) {
    // The whole-value query: one range probe (an index-prefix scan over
    // the two equality columns) enumerates every binding on the port.
    queries->push_back(base());
    return;
  }
  for (size_t k = 0; k <= idx.length(); ++k) {
    SelectQuery q = base();
    q.equals.push_back({index_col, Datum(IndexPath(idx.Prefix(k).parts()))});
    queries->push_back(std::move(q));
  }
  {
    SelectQuery q = base();
    q.path_prefix = SelectQuery::PathPrefix{index_col, idx.parts()};
    queries->push_back(std::move(q));
  }
}

thread_local ProbeMemo* g_active_probe_memo = nullptr;
thread_local ProbeBreakdown* g_active_probe_breakdown = nullptr;

/// Registry mirrors of the per-memo hit/lookup atomics: process-wide
/// totals across all memos, exposed as provenance/memo_* in `stats`.
struct MemoMetrics {
  common::metrics::Counter* hits =
      common::metrics::GetCounter("provenance/memo_hits");
  common::metrics::Counter* lookups =
      common::metrics::GetCounter("provenance/memo_lookups");
};

MemoMetrics& MemoMx() {
  static MemoMetrics m;
  return m;
}

XferRecord DecodeXfer(const Row& row) {
  XferRecord rec;
  rec.run = SymOf(row[xfer_col::kRun]);
  IdPair src = row[xfer_col::kSrc].AsIdPair();
  rec.src_proc = src.first;
  rec.src_port = src.second;
  rec.src_index = Index(row[xfer_col::kSrcIndex].AsIndexPath());
  IdPair dst = row[xfer_col::kDst].AsIdPair();
  rec.dst_proc = dst.first;
  rec.dst_port = dst.second;
  rec.dst_index = Index(row[xfer_col::kDstIndex].AsIndexPath());
  rec.value_id = row[xfer_col::kValue].AsInt();
  return rec;
}

/// Runs an equality+overlap probe against one shard's `t` through
/// independent single ExecuteSelect calls: equality on (run,
/// pair-column), point probes for q and its proper prefixes, and one
/// path-prefix range probe for strict extensions. Emits each distinct
/// matching row once, in discovery order. Rows are borrowed from the
/// table (zero-copy) — consumed before the caller releases the shard's
/// reader lock.
Status OverlapProbe(const Table* t, SymbolId run, const char* pair_col,
                    IdPair pair, const char* index_col, const Index& idx,
                    const std::function<void(const Row&)>& emit) {
  std::vector<SelectQuery> queries;
  AppendOverlapQueries(run, pair_col, pair, index_col, idx, &queries);
  storage::SelectOptions zero_copy;
  zero_copy.zero_copy = true;
  std::set<const Row*, RowPtrLess> seen;
  for (const SelectQuery& q : queries) {
    PROVLIN_ASSIGN_OR_RETURN(SelectResult r,
                             storage::ExecuteSelect(*t, q, zero_copy));
    for (const Row* row : r.row_ptrs) {
      if (seen.insert(row).second) emit(*row);
    }
  }
  return Status::OK();
}

/// Batched overlap probes against one shard: the whole sub-batch's
/// queries flatten into one ExecuteMultiSelect pass. emit(i, row) fires
/// once per distinct row matching probes[i], in the same order
/// OverlapProbe discovers them. Every probe must belong to this shard.
Status OverlapProbeBatch(
    const Table* t, const char* pair_col, const char* index_col,
    const std::vector<PortProbe>& probes,
    const std::function<void(size_t, const Row&)>& emit) {
  std::vector<SelectQuery> queries;
  std::vector<size_t> owner;  // flattened query ordinal -> probe ordinal
  for (size_t i = 0; i < probes.size(); ++i) {
    AppendOverlapQueries(probes[i].run, pair_col,
                         IdPair{probes[i].processor, probes[i].port}, index_col,
                         probes[i].index, &queries);
    owner.resize(queries.size(), i);
  }
  storage::SelectOptions zero_copy;
  zero_copy.zero_copy = true;
  PROVLIN_ASSIGN_OR_RETURN(std::vector<SelectResult> results,
                           storage::ExecuteMultiSelect(*t, queries, zero_copy));
  // Per-probe content dedup in flattened query order — the same
  // discovery order the single-probe path produces.
  std::vector<std::set<const Row*, RowPtrLess>> seen(probes.size());
  for (size_t qi = 0; qi < results.size(); ++qi) {
    size_t i = owner[qi];
    for (const Row* row : results[qi].row_ptrs) {
      if (seen[i].insert(row).second) emit(i, *row);
    }
  }
  return Status::OK();
}

// --- sealed segment tier (DESIGN.md §13) -----------------------------------

CompressMode ResolveCompressMode(const TraceStoreOptions& options) {
  if (options.compress.has_value()) return *options.compress;
  if (const char* env = std::getenv("PROVLIN_TEST_COMPRESS");
      env != nullptr && env[0] != '\0') {
    if (std::strcmp(env, "seal") == 0) return CompressMode::kSeal;
    if (std::strcmp(env, "always") == 0) return CompressMode::kAlways;
  }
  return CompressMode::kOff;
}

/// Blob catalog keys: "segment/<shard table name>/<run id>". Table
/// names never contain '/', so the table parses back out as everything
/// up to the first '/' after the prefix — run ids may contain anything.
constexpr char kSegmentBlobPrefix[] = "segment/";

std::string SegmentBlobKey(const char* base, size_t shard,
                           const std::string& run_name) {
  return kSegmentBlobPrefix + ShardTableName(base, shard) + "/" + run_name;
}

/// The segment view answering probes against `pair_col` ("out"/"src"
/// sides share view 0, "in"/"dst" view 1 — Segment's layout contract).
size_t ViewForPairCol(const char* pair_col) {
  return std::strcmp(pair_col, "out") == 0 || std::strcmp(pair_col, "src") == 0
             ? Segment::kViewOut
             : Segment::kViewIn;
}

// Twins of the planner's file-local path-prefix bound helpers
// (storage/query.cc): a prefix probe is boundable iff bumping its last
// component cannot overflow.
bool SealedPathBoundable(const IndexPath& p) {
  return !p.empty() && p.back() != std::numeric_limits<int32_t>::max();
}

IndexPath SealedPathSuccessor(IndexPath p) {
  ++p.back();
  return p;
}

/// Sealed twin of AppendOverlapQueries: the same probe sequence phrased
/// as per-view bounds, so both tiers examine the same candidate entries
/// and their counters agree. The final range probe carries the residual
/// filter the planner applies row-side: entries within [idx, succ(idx)]
/// all count as examined, only extensions of idx are emitted.
void AppendOverlapViewProbes(IdPair pair, const Index& idx,
                             std::vector<Segment::ViewProbe>* probes) {
  const uint64_t packed = pair.Packed();
  if (idx.empty()) {
    Segment::ViewProbe p;
    p.pair = packed;
    probes->push_back(std::move(p));
    return;
  }
  for (size_t k = 0; k <= idx.length(); ++k) {
    Segment::ViewProbe p;
    p.pair = packed;
    p.has_lo = p.has_hi = true;
    p.lo = IndexPath(idx.Prefix(k).parts());
    p.hi = p.lo;
    probes->push_back(std::move(p));
  }
  Segment::ViewProbe p;
  p.pair = packed;
  p.has_residual = true;
  p.residual = IndexPath(idx.parts());
  if (SealedPathBoundable(p.residual)) {
    p.has_lo = p.has_hi = true;
    p.lo = p.residual;
    p.hi = SealedPathSuccessor(p.residual);
  }
  probes->push_back(std::move(p));
}

/// Sealed twin of OverlapProbe: runs one (pair, idx) overlap probe
/// against a view of the run's segment. Emits each distinct matching
/// row once, in the same discovery order as the B+tree path. Rows point
/// into `scratch` and stay valid for its lifetime. `queries` tallies
/// the logical probes issued (the index_probes equivalent).
Status SealedOverlapProbe(const Segment& seg, size_t view, IdPair pair,
                          const Index& idx, Segment::Scratch* scratch,
                          Segment::ProbeCounts* counts, size_t* queries,
                          const std::function<void(const Row&)>& emit) {
  std::vector<Segment::ViewProbe> probes;
  AppendOverlapViewProbes(pair, idx, &probes);
  *queries += probes.size();
  std::set<const Row*, RowPtrLess> seen;
  for (const Segment::ViewProbe& p : probes) {
    PROVLIN_RETURN_IF_ERROR(
        seg.ProbeView(view, p, scratch, counts, [&](uint64_t, const Row& row) {
          if (seen.insert(&row).second) emit(row);
        }));
  }
  return Status::OK();
}

/// Global counter surfaces for sealed probes: segment-specific physical
/// costs under storage/segment_*, plus mirrors onto the storage/*
/// names the B+tree path bumps so cross-tier totals stay comparable.
struct SealedProbeMetrics {
  common::metrics::Counter* probes =
      common::metrics::GetCounter("storage/segment_probes");
  common::metrics::Counter* entries =
      common::metrics::GetCounter("storage/segment_entries_examined");
  common::metrics::Counter* searches =
      common::metrics::GetCounter("storage/segment_searches");
  common::metrics::Counter* blocks =
      common::metrics::GetCounter("storage/segment_block_decodes");
  common::metrics::Counter* index_probes =
      common::metrics::GetCounter("storage/index_probes");
  common::metrics::Counter* rows_examined =
      common::metrics::GetCounter("storage/rows_examined");
  common::metrics::Counter* descents =
      common::metrics::GetCounter("storage/descents");
  common::metrics::Counter* batched =
      common::metrics::GetCounter("storage/batched_probes");
};

SealedProbeMetrics& SegMx() {
  static SealedProbeMetrics m;
  return m;
}

/// Credits a finished sealed probe run to the same surfaces the hot
/// path uses: the calling thread's ThreadStats (harvested by the batch
/// fan-out's delta accounting) and the global storage counters.
/// entries_examined maps to rows_examined, searches to descents.
void CreditSealedProbe(size_t queries, const Segment::ProbeCounts& counts,
                       bool batched) {
  storage::ThreadStats& ts = storage::ThisThreadStats();
  ts.index_probes += queries;
  ts.rows_examined += counts.entries_examined;
  ts.descents += counts.searches;
  if (batched) ts.batched_probes += queries;
  SealedProbeMetrics& mx = SegMx();
  mx.probes->Add(queries);
  mx.entries->Add(counts.entries_examined);
  mx.searches->Add(counts.searches);
  mx.blocks->Add(counts.blocks_decoded);
  mx.index_probes->Add(queries);
  mx.rows_examined->Add(counts.entries_examined);
  mx.descents->Add(counts.searches);
  if (batched) mx.batched->Add(queries);
}

/// Decodes every segment blob back into its hot table and drops the
/// blob. The escape hatch for CompressMode::kOff, and the
/// normalization step before physical-layout operations (resharding,
/// WAL replay) that walk tables directly and must see every row.
Status UnsealAllBlobs(storage::Database* db) {
  for (const std::string& key : db->BlobKeys()) {
    if (key.rfind(kSegmentBlobPrefix, 0) != 0) continue;
    std::string table_name = key.substr(std::strlen(kSegmentBlobPrefix));
    const size_t slash = table_name.find('/');
    if (slash == std::string::npos) {
      return Status::Corruption("bad segment blob key '" + key + "'");
    }
    table_name.resize(slash);
    PROVLIN_ASSIGN_OR_RETURN(Table * table, db->GetTable(table_name));
    PROVLIN_ASSIGN_OR_RETURN(Segment seg, Segment::FromBytes(db->GetBlob(key)));
    PROVLIN_ASSIGN_OR_RETURN(std::vector<Row> rows, seg.DecodeAllRows());
    for (Row& row : rows) {
      PROVLIN_RETURN_IF_ERROR(table->Insert(row).status());
    }
    db->DropBlob(key);
  }
  return Status::OK();
}

/// Completion latch for batch fan-out: the caller blocks until every
/// per-shard task has signalled.
struct FanLatch {
  common::Mutex mu{common::LockRank::kStoreFanLatch};
  common::CondVar cv;
  size_t pending GUARDED_BY(mu) = 0;
};

/// Per-shard ingest rate cap: an unbounded queue would let a fast
/// producer outrun the writer without limit.
constexpr size_t kMaxQueuedRows = 4096;

}  // namespace

// ---------------------------------------------------------------------------
// Shard: one partition's tables, WAL, and ingest machinery.
// Lock order within a shard: ingest_mu before data_mu before the
// facade's shared-WAL mutex; none of the three is ever acquired in the
// reverse direction (DESIGN.md §11 extends the §10 lock table).
// ---------------------------------------------------------------------------

struct TraceStore::Shard {
  /// One pending ingest row; the WAL tag doubles as the table selector.
  struct Pending {
    uint8_t tag = 0;
    Row row;
  };

  size_t id = 0;
  // Physical tables of this shard, cached at Open (stable thereafter).
  Table* runs = nullptr;
  Table* val = nullptr;
  Table* xform = nullptr;
  Table* xfer = nullptr;

  // --- enqueue side -------------------------------------------------------
  common::Mutex ingest_mu{common::LockRank::kShardIngest};
  common::CondVar work_cv;     // writer thread waits for rows / stop
  common::CondVar drained_cv;  // readers wait for applied to catch up
  common::CondVar space_cv;    // producers wait for queue headroom
  std::deque<Pending> queue GUARDED_BY(ingest_mu);
  uint64_t enqueued GUARDED_BY(ingest_mu) = 0;
  uint64_t applied GUARDED_BY(ingest_mu) = 0;
  bool stop GUARDED_BY(ingest_mu) = false;
  /// First apply error; the shard refuses further ingest once set.
  Status ingest_status GUARDED_BY(ingest_mu);
  /// Write-path value interning: (run, repr) -> id, ids unique per run.
  std::map<std::pair<SymbolId, std::string>, int64_t> intern_cache
      GUARDED_BY(ingest_mu);
  std::map<SymbolId, uint64_t> next_value_id GUARDED_BY(ingest_mu);

  // --- apply side ---------------------------------------------------------
  /// Readers hold the shared side across a whole probe (zero-copy rows
  /// must not move underneath them); the writer thread / synchronous
  /// writers hold the exclusive side per applied batch.
  common::SharedMutex data_mu{common::LockRank::kShardData};
  /// Per-shard WAL (AttachWalFiles); shard 0 owns the base file.
  std::optional<storage::WriteAheadLog> owned_wal GUARDED_BY(data_mu);
  /// Symbols flushed to owned_wal as definition records; the tail
  /// [wal_syms_logged, symbols.size()) is flushed before each row.
  size_t wal_syms_logged GUARDED_BY(data_mu) = 0;

  // --- sealed segment tier (DESIGN.md §13) --------------------------------
  /// Sealed runs' compressed segments, keyed by run symbol. A run is
  /// wholly hot or wholly sealed: sealing covers both trace tables at
  /// once, a side with no rows simply has no entry. Writing a trace row
  /// to a sealed run unseals it first (Rep::Apply).
  std::map<SymbolId, std::shared_ptr<const Segment>> sealed_xform
      GUARDED_BY(data_mu);
  std::map<SymbolId, std::shared_ptr<const Segment>> sealed_xfer
      GUARDED_BY(data_mu);

  // Per-shard observability (satellite: surfaced by `stats`).
  common::metrics::Counter* rows_ctr = nullptr;
  common::metrics::Counter* probes_ctr = nullptr;
  /// Segments sealed over the shard's lifetime (monotonic)…
  common::metrics::Counter* segments_ctr = nullptr;
  /// …and the current tier split: rows/bytes resident in sealed
  /// segments vs rows still in the mutable tables (all four), so
  /// segment_rows + hot_rows tracks rows_ingested absent deletions.
  common::metrics::Gauge* segment_rows_g = nullptr;
  common::metrics::Gauge* segment_bytes_g = nullptr;
  common::metrics::Gauge* hot_rows_g = nullptr;

  std::thread writer;  // running iff async ingest is on

  Table* TableFor(uint8_t tag) const {
    switch (tag) {
      case kTagRuns:
        return runs;
      case kTagVal:
        return val;
      case kTagXform:
        return xform;
      default:
        return xfer;
    }
  }

  const Table* ProbeTableFor(const char* base) const {
    return std::strcmp(base, tables::kXform) == 0 ? xform : xfer;
  }

  /// The sealed segment answering probes against `base` for `run`, or
  /// nullptr when the run is hot (or absent) — the tier routing test.
  const Segment* SealedSegFor(const char* base, SymbolId run) const
      REQUIRES_SHARED(data_mu) {
    const auto& sealed =
        std::strcmp(base, tables::kXform) == 0 ? sealed_xform : sealed_xfer;
    auto it = sealed.find(run);
    return it == sealed.end() ? nullptr : it->second.get();
  }
};

// ---------------------------------------------------------------------------
// Rep: the routing facade's shared state.
// ---------------------------------------------------------------------------

struct TraceStore::Rep {
  storage::Database* db = nullptr;
  size_t nshards = 1;
  bool async = false;
  CompressMode compress = CompressMode::kOff;
  std::vector<std::unique_ptr<Shard>> shards;
  /// Fan-out pool for batches spanning shards (created iff nshards > 1).
  std::unique_ptr<common::ThreadPool> fanout;

  /// Run sequence numbers are global, not per shard, so ListRuns can
  /// merge shards back into insertion order.
  common::Mutex run_mu{common::LockRank::kStoreRunSeq};
  int64_t next_run_seq GUARDED_BY(run_mu) = 0;

  /// Single externally-attached WAL shared by all shards (legacy
  /// AttachWal surface). Appends from concurrent writer threads
  /// serialize here; per-shard owned WALs do not take this lock.
  common::Mutex wal_mu{common::LockRank::kStoreSharedWal};
  storage::WriteAheadLog* shared_wal GUARDED_BY(wal_mu) = nullptr;
  size_t shared_wal_syms GUARDED_BY(wal_mu) = 0;

  common::metrics::Counter* rows_ingested = nullptr;

  ~Rep() {
    for (auto& s : shards) {
      if (!s->writer.joinable()) continue;
      {
        common::MutexLock lock(s->ingest_mu);
        s->stop = true;
        s->work_cv.NotifyAll();
      }
      s->writer.join();
    }
  }

  size_t ShardIdOfRun(std::string_view run_id) const {
    return nshards == 1 ? 0 : RunShardHash(run_id) % nshards;
  }

  size_t ShardIdOfSym(SymbolId run) const {
    if (nshards == 1) return 0;
    if (run == common::kNoSymbol || run >= db->symbols().size()) return 0;
    return ShardIdOfRun(db->symbols().NameOf(run));
  }

  Shard* ShardForRun(std::string_view run_id) {
    return shards[ShardIdOfRun(run_id)].get();
  }

  Shard* ShardForSym(SymbolId run) { return shards[ShardIdOfSym(run)].get(); }

  /// Appends one row to the shared WAL (no-op when detached), flushing
  /// the symbol-definition tail first. Called with the shard's data_mu
  /// held exclusively; wal_mu nests inside it.
  Status LogShared(uint8_t tag, const Row& row) EXCLUDES(wal_mu) {
    common::MutexLock lock(wal_mu);
    if (shared_wal == nullptr) return Status::OK();
    const common::SymbolTable& symbols = db->symbols();
    while (shared_wal_syms < symbols.size()) {
      storage::BinaryWriter w;
      w.WriteU8(kTagSymbol);
      w.WriteString(symbols.NameOf(static_cast<SymbolId>(shared_wal_syms)));
      PROVLIN_RETURN_IF_ERROR(shared_wal->Append(w.buffer()));
      ++shared_wal_syms;
    }
    storage::BinaryWriter w;
    w.WriteU8(tag);
    w.WriteRow(row);
    return shared_wal->Append(w.buffer());
  }

  /// Same for a run-deletion record (string payload, no symbol flush —
  /// the record carries the run id verbatim).
  Status LogSharedDelete(const std::string& run_id) EXCLUDES(wal_mu) {
    common::MutexLock lock(wal_mu);
    if (shared_wal == nullptr) return Status::OK();
    storage::BinaryWriter w;
    w.WriteU8(kTagDeleteRun);
    w.WriteString(run_id);
    return shared_wal->Append(w.buffer());
  }

  /// Seals one run's trace rows into compressed segments: encode each
  /// table's rows, delete them from the hot tier, park the encoded
  /// bytes in the database's blob catalog (so Save persists them).
  /// Idempotent; a run with no trace rows seals to nothing.
  Status SealRunLocked(Shard* s, SymbolId run_sym, const std::string& run_name)
      REQUIRES(s->data_mu) {
    if (s->sealed_xform.count(run_sym) > 0 ||
        s->sealed_xfer.count(run_sym) > 0) {
      return Status::OK();
    }
    const Datum run_datum = SymDatum(run_sym);
    struct Side {
      Table* table;
      Segment::Kind kind;
      const char* base;
      std::map<SymbolId, std::shared_ptr<const Segment>>* sealed;
    };
    const Side sides[] = {
        {s->xform, Segment::Kind::kXform, tables::kXform, &s->sealed_xform},
        {s->xfer, Segment::Kind::kXfer, tables::kXfer, &s->sealed_xfer}};
    for (const Side& side : sides) {
      std::vector<uint64_t> rids;
      std::vector<Row> rows;
      side.table->ForEachLiveRow([&](uint64_t rid, const Row& row) {
        if (row[0] == run_datum) {
          rids.push_back(rid);
          rows.push_back(row);
        }
      });
      if (rows.empty()) continue;
      PROVLIN_ASSIGN_OR_RETURN(
          Segment seg,
          Segment::Build(side.kind, static_cast<uint64_t>(run_sym), rows));
      for (uint64_t rid : rids) {
        PROVLIN_RETURN_IF_ERROR(side.table->Delete(rid));
      }
      auto shared = std::make_shared<const Segment>(std::move(seg));
      db->PutBlob(SegmentBlobKey(side.base, s->id, run_name),
                  shared->shared_bytes());
      s->segment_rows_g->Add(static_cast<int64_t>(shared->num_rows()));
      s->segment_bytes_g->Add(static_cast<int64_t>(shared->bytes().size()));
      s->hot_rows_g->Add(-static_cast<int64_t>(shared->num_rows()));
      s->segments_ctr->Increment();
      side.sealed->emplace(run_sym, std::move(shared));
    }
    return Status::OK();
  }

  /// Reverses SealRunLocked: decode the run's segments back into the
  /// hot tables and drop the blobs. No WAL append and no ingest
  /// counters — the rows were logged and counted when first inserted.
  Status UnsealRunLocked(Shard* s, SymbolId run_sym) REQUIRES(s->data_mu) {
    const std::string& run_name = db->symbols().NameOf(run_sym);
    struct Side {
      Table* table;
      const char* base;
      std::map<SymbolId, std::shared_ptr<const Segment>>* sealed;
    };
    const Side sides[] = {{s->xform, tables::kXform, &s->sealed_xform},
                          {s->xfer, tables::kXfer, &s->sealed_xfer}};
    for (const Side& side : sides) {
      auto it = side.sealed->find(run_sym);
      if (it == side.sealed->end()) continue;
      const Segment& seg = *it->second;
      PROVLIN_ASSIGN_OR_RETURN(std::vector<Row> rows, seg.DecodeAllRows());
      for (const Row& row : rows) {
        PROVLIN_RETURN_IF_ERROR(side.table->Insert(row).status());
      }
      s->segment_rows_g->Add(-static_cast<int64_t>(seg.num_rows()));
      s->segment_bytes_g->Add(-static_cast<int64_t>(seg.bytes().size()));
      s->hot_rows_g->Add(static_cast<int64_t>(seg.num_rows()));
      db->DropBlob(SegmentBlobKey(side.base, s->id, run_name));
      side.sealed->erase(it);
    }
    return Status::OK();
  }

  /// Seals every run on `s` except `skip_run` (nullptr = seal all).
  /// Runs that never minted a symbol have no trace rows and are
  /// skipped.
  Status SealShardRunsLocked(Shard* s, const std::string* skip_run)
      REQUIRES(s->data_mu) {
    std::vector<std::pair<SymbolId, std::string>> to_seal;
    s->runs->ForEachLiveRow([&](uint64_t, const Row& row) {
      const std::string& run_name = row[0].AsString();
      if (skip_run != nullptr && run_name == *skip_run) return;
      std::optional<SymbolId> sym = db->symbols().Lookup(run_name);
      if (sym.has_value()) to_seal.emplace_back(*sym, run_name);
    });
    for (const auto& [sym, name] : to_seal) {
      PROVLIN_RETURN_IF_ERROR(SealRunLocked(s, sym, name));
    }
    return Status::OK();
  }

  /// WAL append + table insert of one pending row, on `s`.
  Status Apply(Shard* s, const Shard::Pending& p) REQUIRES(s->data_mu) {
    if (s->owned_wal.has_value()) {
      const common::SymbolTable& symbols = db->symbols();
      while (s->wal_syms_logged < symbols.size()) {
        storage::BinaryWriter w;
        w.WriteU8(kTagSymbol);
        w.WriteString(
            symbols.NameOf(static_cast<SymbolId>(s->wal_syms_logged)));
        PROVLIN_RETURN_IF_ERROR(s->owned_wal->Append(w.buffer()));
        ++s->wal_syms_logged;
      }
      storage::BinaryWriter w;
      w.WriteU8(p.tag);
      w.WriteRow(p.row);
      PROVLIN_RETURN_IF_ERROR(s->owned_wal->Append(w.buffer()));
    }
    PROVLIN_RETURN_IF_ERROR(LogShared(p.tag, p.row));
    // Late writes to a sealed run (out-of-order capture, replayed
    // rows) transparently pull the run back into the hot tier first.
    if ((p.tag == kTagXform || p.tag == kTagXfer) &&
        (!s->sealed_xform.empty() || !s->sealed_xfer.empty())) {
      const SymbolId run = SymOf(p.row[0]);
      if (s->sealed_xform.count(run) > 0 || s->sealed_xfer.count(run) > 0) {
        PROVLIN_RETURN_IF_ERROR(UnsealRunLocked(s, run));
      }
    }
    PROVLIN_RETURN_IF_ERROR(s->TableFor(p.tag)->Insert(p.row).status());
    s->rows_ctr->Increment();
    s->hot_rows_g->Add(1);
    rows_ingested->Increment();
    return Status::OK();
  }

  /// Routes one write: enqueue for the shard's writer thread (async) or
  /// apply inline under the shard's exclusive lock (sync).
  Status EnqueueOrApply(Shard* s, uint8_t tag, Row row) {
    if (async) {
      common::MutexLock lock(s->ingest_mu);
      PROVLIN_RETURN_IF_ERROR(s->ingest_status);
      while (s->queue.size() >= kMaxQueuedRows && !s->stop) {
        s->space_cv.Wait(s->ingest_mu);
      }
      PROVLIN_RETURN_IF_ERROR(s->ingest_status);
      s->queue.push_back({tag, std::move(row)});
      ++s->enqueued;
      s->work_cv.NotifyOne();
      return Status::OK();
    }
    common::WriterLock data(s->data_mu);
    return Apply(s, {tag, std::move(row)});
  }

  /// Read barrier: waits until everything enqueued on `s` before this
  /// call has been applied, then reports the shard's latched status.
  Status Drain(Shard* s) const {
    if (!async) return Status::OK();
    common::MutexLock lock(s->ingest_mu);
    const uint64_t target = s->enqueued;
    while (s->applied < target) s->drained_cv.Wait(s->ingest_mu);
    return s->ingest_status;
  }

  /// Dedicated writer: drains the queue in batches, holding the shard's
  /// exclusive data lock only while applying.
  void WriterLoop(Shard* s) {
    for (;;) {
      std::deque<Shard::Pending> batch;
      {
        common::MutexLock lock(s->ingest_mu);
        while (s->queue.empty() && !s->stop) s->work_cv.Wait(s->ingest_mu);
        if (s->queue.empty() && s->stop) return;
        batch.swap(s->queue);
        s->space_cv.NotifyAll();
      }
      Status st = Status::OK();
      {
        common::WriterLock data(s->data_mu);
        for (const Shard::Pending& p : batch) {
          if (st.ok()) st = Apply(s, p);
        }
      }
      {
        common::MutexLock lock(s->ingest_mu);
        s->applied += batch.size();
        if (!st.ok() && s->ingest_status.ok()) s->ingest_status = st;
        s->drained_cv.NotifyAll();
      }
    }
  }
};

namespace {

/// Row migration between shard layouts: moves every row to the shard
/// its run hashes to under `to` shards, then drops emptied surplus
/// tables and rewrites shard_meta. Runs single-threaded on a store
/// that is not yet (or no longer) serving.
Status ReshardDatabase(storage::Database* db, size_t from, size_t to) {
  for (size_t k = 0; k < to; ++k) {
    PROVLIN_RETURN_IF_ERROR(EnsureShardTables(db, k));
  }
  const char* bases[] = {tables::kRuns, tables::kVal, tables::kXform,
                         tables::kXfer};
  const size_t all = from > to ? from : to;
  for (size_t s = 0; s < all; ++s) {
    for (const char* base : bases) {
      auto src_r = db->GetTable(ShardTableName(base, s));
      if (!src_r.ok()) continue;
      Table* src = src_r.value();
      std::vector<std::pair<uint64_t, size_t>> moves;  // rid -> target shard
      for (uint64_t rid : src->FullScan()) {
        PROVLIN_ASSIGN_OR_RETURN(Row row, src->Get(rid));
        const std::string& run_name =
            std::strcmp(base, tables::kRuns) == 0
                ? row[0].AsString()
                : db->symbols().NameOf(SymOf(row[0]));
        size_t target = RunShardHash(run_name) % to;
        if (target != s) moves.push_back({rid, target});
      }
      for (const auto& [rid, target] : moves) {
        PROVLIN_ASSIGN_OR_RETURN(Row row, src->Get(rid));
        PROVLIN_ASSIGN_OR_RETURN(Table * dst,
                                 db->GetTable(ShardTableName(base, target)));
        PROVLIN_RETURN_IF_ERROR(dst->Insert(row).status());
        PROVLIN_RETURN_IF_ERROR(src->Delete(rid));
      }
    }
  }
  for (size_t s = to; s < from; ++s) {
    for (const char* base : bases) {
      PROVLIN_RETURN_IF_ERROR(db->DropTable(ShardTableName(base, s)));
    }
  }
  return WriteShardMeta(db, to);
}

/// Deletes every row of `run_id` from one shard's tables (replay-side
/// twin of TraceStore::DeleteRun's sweep).
Result<size_t> SweepRunRows(storage::Database* db, size_t shard,
                            const std::string& run_id) {
  size_t removed = 0;
  PROVLIN_ASSIGN_OR_RETURN(
      Table * runs, db->GetTable(ShardTableName(tables::kRuns, shard)));
  PROVLIN_ASSIGN_OR_RETURN(
      std::vector<uint64_t> run_rows,
      runs->IndexLookup(indexes::kRunsById, {Datum(run_id)}));
  for (uint64_t rid : run_rows) {
    PROVLIN_RETURN_IF_ERROR(runs->Delete(rid));
    ++removed;
  }
  std::optional<SymbolId> run_sym = db->symbols().Lookup(run_id);
  if (run_sym.has_value()) {
    Datum run_datum = SymDatum(*run_sym);
    for (const char* base : {tables::kVal, tables::kXform, tables::kXfer}) {
      PROVLIN_ASSIGN_OR_RETURN(Table * table,
                               db->GetTable(ShardTableName(base, shard)));
      std::vector<uint64_t> to_delete;
      for (uint64_t rid : table->FullScan()) {
        PROVLIN_ASSIGN_OR_RETURN(Row row, table->Get(rid));
        if (row[0] == run_datum) to_delete.push_back(rid);
      }
      for (uint64_t rid : to_delete) {
        PROVLIN_RETURN_IF_ERROR(table->Delete(rid));
        ++removed;
      }
    }
  }
  return removed;
}

}  // namespace

// ---------------------------------------------------------------------------
// Open / lifecycle
// ---------------------------------------------------------------------------

TraceStore::TraceStore(std::unique_ptr<Rep> rep) : rep_(std::move(rep)) {}
TraceStore::TraceStore(TraceStore&& other) noexcept = default;
TraceStore& TraceStore::operator=(TraceStore&& other) noexcept = default;
TraceStore::~TraceStore() = default;

Result<TraceStore> TraceStore::Open(storage::Database* db) {
  return Open(db, TraceStoreOptions{});
}

Result<TraceStore> TraceStore::Open(storage::Database* db,
                                    const TraceStoreOptions& options) {
  size_t requested = options.shards;
  PROVLIN_ASSIGN_OR_RETURN(size_t existing, DetectShardCount(*db));
  if (requested == 0) {
    if (existing > 0) {
      requested = existing;
    } else if (const char* env = std::getenv("PROVLIN_TEST_SHARDS");
               env != nullptr && env[0] != '\0') {
      int n = std::atoi(env);
      requested = n >= 1 ? static_cast<size_t>(n) : 1;
    } else {
      requested = 1;
    }
  }
  const CompressMode compress = ResolveCompressMode(options);
  // Resharding walks physical tables row by row, and kOff promises a
  // segment-free store: both need every sealed run decoded back first.
  if (existing > 0 &&
      (compress == CompressMode::kOff || existing != requested)) {
    PROVLIN_RETURN_IF_ERROR(UnsealAllBlobs(db));
  }
  if (existing == 0) {
    PROVLIN_RETURN_IF_ERROR(CreateProvenanceSchema(db, requested));
  } else if (existing != requested) {
    PROVLIN_RETURN_IF_ERROR(ReshardDatabase(db, existing, requested));
  }

  auto rep = std::make_unique<Rep>();
  rep->db = db;
  rep->nshards = requested;
  rep->async = options.async_ingest;
  rep->compress = compress;
  rep->rows_ingested =
      common::metrics::GetCounter("provenance/rows_ingested");
  common::metrics::GetGauge("provenance/shards")
      ->Set(static_cast<int64_t>(requested));

  int64_t max_seq = -1;
  for (size_t k = 0; k < requested; ++k) {
    auto shard = std::make_unique<Shard>();
    shard->id = k;
    PROVLIN_ASSIGN_OR_RETURN(
        shard->runs, db->GetTable(ShardTableName(tables::kRuns, k)));
    PROVLIN_ASSIGN_OR_RETURN(shard->val,
                             db->GetTable(ShardTableName(tables::kVal, k)));
    PROVLIN_ASSIGN_OR_RETURN(
        shard->xform, db->GetTable(ShardTableName(tables::kXform, k)));
    PROVLIN_ASSIGN_OR_RETURN(
        shard->xfer, db->GetTable(ShardTableName(tables::kXfer, k)));
    const std::string prefix = "provenance/shard" + std::to_string(k);
    shard->rows_ctr = common::metrics::GetCounter(prefix + "/rows");
    shard->probes_ctr = common::metrics::GetCounter(prefix + "/probes");
    shard->segments_ctr = common::metrics::GetCounter(prefix + "/segments");
    shard->segment_rows_g = common::metrics::GetGauge(prefix + "/segment_rows");
    shard->segment_bytes_g =
        common::metrics::GetGauge(prefix + "/segment_bytes");
    shard->hot_rows_g = common::metrics::GetGauge(prefix + "/hot_rows");
    for (uint64_t rid : shard->runs->FullScan()) {
      PROVLIN_ASSIGN_OR_RETURN(Row row, shard->runs->Get(rid));
      if (row[2].AsInt() > max_seq) max_seq = row[2].AsInt();
    }
    {
      // Re-attach the shard's sealed segments from the image's blob
      // catalog (none under kOff — everything was just unsealed). The
      // lock is uncontended here; it satisfies the guard annotations.
      common::WriterLock data(shard->data_mu);
      int64_t sealed_rows = 0, sealed_bytes = 0;
      for (const char* base : {tables::kXform, tables::kXfer}) {
        const std::string key_prefix =
            kSegmentBlobPrefix + ShardTableName(base, k) + "/";
        for (const std::string& key : db->BlobKeys()) {
          if (key.rfind(key_prefix, 0) != 0) continue;
          const std::string run_name = key.substr(key_prefix.size());
          std::optional<SymbolId> sym = db->symbols().Lookup(run_name);
          if (!sym.has_value()) {
            return Status::Corruption("segment blob '" + key +
                                      "' names an unknown run");
          }
          PROVLIN_ASSIGN_OR_RETURN(Segment seg,
                                   Segment::FromBytes(db->GetBlob(key)));
          sealed_rows += static_cast<int64_t>(seg.num_rows());
          sealed_bytes += static_cast<int64_t>(seg.bytes().size());
          auto& sealed = std::strcmp(base, tables::kXform) == 0
                             ? shard->sealed_xform
                             : shard->sealed_xfer;
          sealed.emplace(*sym, std::make_shared<const Segment>(std::move(seg)));
        }
      }
      shard->segment_rows_g->Set(sealed_rows);
      shard->segment_bytes_g->Set(sealed_bytes);
      shard->hot_rows_g->Set(static_cast<int64_t>(
          shard->runs->num_rows() + shard->val->num_rows() +
          shard->xform->num_rows() + shard->xfer->num_rows()));
    }
    rep->shards.push_back(std::move(shard));
  }
  {
    common::MutexLock lock(rep->run_mu);
    rep->next_run_seq = max_seq + 1;
  }
  if (requested > 1) {
    rep->fanout = std::make_unique<common::ThreadPool>(
        requested < 8 ? requested : size_t{8});
  }
  if (compress != CompressMode::kOff) {
    // Seal cold runs now: everything under kAlways, all but the
    // latest-inserted run per shard under kSeal (the run most likely
    // still being captured stays hot).
    for (auto& shard : rep->shards) {
      Shard* s = shard.get();
      common::WriterLock data(s->data_mu);
      if (compress == CompressMode::kAlways) {
        PROVLIN_RETURN_IF_ERROR(rep->SealShardRunsLocked(s, nullptr));
        continue;
      }
      std::string latest;
      int64_t best = -1;
      bool have = false;
      s->runs->ForEachLiveRow([&](uint64_t, const Row& row) {
        if (!have || row[2].AsInt() >= best) {
          best = row[2].AsInt();
          latest = row[0].AsString();
          have = true;
        }
      });
      PROVLIN_RETURN_IF_ERROR(
          rep->SealShardRunsLocked(s, have ? &latest : nullptr));
    }
  }
  if (rep->async) {
    Rep* raw = rep.get();
    for (auto& shard : rep->shards) {
      shard->writer = std::thread([raw, s = shard.get()] {
        raw->WriterLoop(s);
      });
    }
  }
  return TraceStore(std::move(rep));
}

size_t TraceStore::shard_count() const { return rep_->nshards; }

size_t TraceStore::ShardOfRun(std::string_view run_id) const {
  return rep_->ShardIdOfRun(run_id);
}

Status TraceStore::Flush() {
  Status first = Status::OK();
  for (auto& shard : rep_->shards) {
    Status st = rep_->Drain(shard.get());
    if (first.ok() && !st.ok()) first = st;
  }
  // kAlways keeps nothing hot across a flush boundary — the freshly
  // captured run is sealed too.
  if (first.ok() && rep_->compress == CompressMode::kAlways) {
    first = SealAllRuns();
  }
  return first;
}

CompressMode TraceStore::compress_mode() const { return rep_->compress; }

Status TraceStore::SealRun(const std::string& run_id) {
  Rep* rep = rep_.get();
  Shard* s = rep->ShardForRun(run_id);
  PROVLIN_RETURN_IF_ERROR(rep->Drain(s));
  common::WriterLock data(s->data_mu);
  PROVLIN_ASSIGN_OR_RETURN(
      std::vector<uint64_t> run_rows,
      s->runs->IndexLookup(indexes::kRunsById, {Datum(run_id)}));
  if (run_rows.empty()) {
    return Status::NotFound("run '" + run_id + "' not recorded");
  }
  std::optional<SymbolId> run_sym = rep->db->symbols().Lookup(run_id);
  // A run that never minted a symbol has no trace rows to seal.
  if (!run_sym.has_value()) return Status::OK();
  return rep->SealRunLocked(s, *run_sym, run_id);
}

Status TraceStore::SealAllRuns() {
  Rep* rep = rep_.get();
  for (auto& shard : rep->shards) {
    Shard* s = shard.get();
    PROVLIN_RETURN_IF_ERROR(rep->Drain(s));
    common::WriterLock data(s->data_mu);
    PROVLIN_RETURN_IF_ERROR(rep->SealShardRunsLocked(s, nullptr));
  }
  return Status::OK();
}

TraceStore::TierBytes TraceStore::ApproxMemory() const {
  TierBytes tb;
  for (auto& shard : rep_->shards) {
    Shard* s = shard.get();
    (void)rep_->Drain(s);
    common::ReaderLock data(s->data_mu);
    tb.hot_bytes +=
        s->xform->ApproxMemoryUsage() + s->xfer->ApproxMemoryUsage();
    tb.hot_rows += s->xform->num_rows() + s->xfer->num_rows();
    for (const auto& [sym, seg] : s->sealed_xform) {
      tb.sealed_bytes += seg->ApproxMemoryUsage();
      tb.sealed_rows += seg->num_rows();
    }
    for (const auto& [sym, seg] : s->sealed_xfer) {
      tb.sealed_bytes += seg->ApproxMemoryUsage();
      tb.sealed_rows += seg->num_rows();
    }
  }
  return tb;
}

storage::Database* TraceStore::db() { return rep_->db; }
const storage::Database* TraceStore::db() const { return rep_->db; }

// ---------------------------------------------------------------------------
// Dictionaries
// ---------------------------------------------------------------------------

SymbolId TraceStore::Intern(std::string_view name) const {
  return rep_->db->symbols().Intern(name);
}

std::optional<SymbolId> TraceStore::LookupSymbol(std::string_view name) const {
  return rep_->db->symbols().Lookup(name);
}

const std::string& TraceStore::NameOf(SymbolId id) const {
  return rep_->db->symbols().NameOf(id);
}

IndexId TraceStore::InternIndex(const Index& index) const {
  return rep_->db->index_dict().Intern(index.parts());
}

// ---------------------------------------------------------------------------
// WAL attach / replay
// ---------------------------------------------------------------------------

void TraceStore::AttachWal(storage::WriteAheadLog* wal) {
  common::MutexLock lock(rep_->wal_mu);
  rep_->shared_wal = wal;
}

Status TraceStore::AttachWalFiles(const std::string& base) {
  for (auto& shard : rep_->shards) {
    PROVLIN_ASSIGN_OR_RETURN(
        storage::WriteAheadLog wal,
        storage::WriteAheadLog::Open(storage::ShardWalPath(base, shard->id)));
    common::WriterLock data(shard->data_mu);
    shard->owned_wal.emplace(std::move(wal));
  }
  if (rep_->nshards > 1) {
    PROVLIN_RETURN_IF_ERROR(storage::WriteWalManifest(base, rep_->nshards));
  }
  return Status::OK();
}

Result<size_t> TraceStore::ReplayWal(const std::string& wal_path,
                                     storage::Database* db, size_t shards) {
  auto manifest = storage::ReadWalManifest(wal_path);
  const size_t wal_shards = manifest.ok() ? manifest.value() : 1;

  PROVLIN_ASSIGN_OR_RETURN(size_t existing, DetectShardCount(*db));
  size_t target = shards;
  if (target == 0) target = existing > 0 ? existing : wal_shards;
  // Replay inserts and sweeps rows directly in the tables, so a target
  // database carrying sealed segments decodes them back first.
  if (existing > 0) PROVLIN_RETURN_IF_ERROR(UnsealAllBlobs(db));
  if (existing == 0) {
    PROVLIN_RETURN_IF_ERROR(CreateProvenanceSchema(db, target));
  } else if (existing != target) {
    PROVLIN_RETURN_IF_ERROR(ReshardDatabase(db, existing, target));
  }

  size_t applied = 0;
  for (size_t k = 0; k < wal_shards; ++k) {
    const std::string path = storage::ShardWalPath(wal_path, k);
    if (k > 0) {
      // A shard file can legitimately be missing if the manifest was
      // written but that shard crashed before creating its log.
      std::ifstream probe(path, std::ios::binary);
      if (!probe) continue;
    }
    PROVLIN_ASSIGN_OR_RETURN(std::vector<std::string> records,
                             storage::WriteAheadLog::Replay(path));
    for (const std::string& record : records) {
      storage::BinaryReader r(record);
      PROVLIN_ASSIGN_OR_RETURN(uint8_t tag, r.ReadU8());
      if (tag == kTagSymbol) {
        PROVLIN_ASSIGN_OR_RETURN(std::string name, r.ReadString());
        db->symbols().Intern(name);
        continue;
      }
      if (tag == kTagDeleteRun) {
        // Replay-skip: sweep the deleted run's rows out of its owning
        // shard, exactly as the live DeleteRun did.
        PROVLIN_ASSIGN_OR_RETURN(std::string run_id, r.ReadString());
        size_t owner = target == 1 ? 0 : RunShardHash(run_id) % target;
        PROVLIN_RETURN_IF_ERROR(SweepRunRows(db, owner, run_id).status());
        continue;
      }
      if (tag > kTagXfer) {
        return Status::Corruption("bad WAL table tag " + std::to_string(tag));
      }
      PROVLIN_ASSIGN_OR_RETURN(Row row, r.ReadRow());
      // Route by the row's run under the *target* layout, so replaying
      // into a differently-sharded database reshards on the fly.
      const std::string& run_name =
          tag == kTagRuns ? row[0].AsString()
                          : db->symbols().NameOf(SymOf(row[0]));
      size_t owner = target == 1 ? 0 : RunShardHash(run_name) % target;
      const char* base = tag == kTagRuns  ? tables::kRuns
                         : tag == kTagVal ? tables::kVal
                         : tag == kTagXform ? tables::kXform
                                            : tables::kXfer;
      PROVLIN_ASSIGN_OR_RETURN(Table * table,
                               db->GetTable(ShardTableName(base, owner)));
      PROVLIN_RETURN_IF_ERROR(table->Insert(row).status());
      ++applied;
    }
  }
  return applied;
}

// ---------------------------------------------------------------------------
// Write side
// ---------------------------------------------------------------------------

Status TraceStore::InsertRun(const std::string& run_id,
                             const std::string& workflow) {
  Rep* rep = rep_.get();
  Shard* s = rep->ShardForRun(run_id);
  // Maintenance ops are synchronous: barrier the shard so the WAL keeps
  // enqueue order, then write under its exclusive lock.
  PROVLIN_RETURN_IF_ERROR(rep->Drain(s));
  int64_t seq = 0;
  {
    common::MutexLock lock(rep->run_mu);
    seq = rep->next_run_seq++;
  }
  common::WriterLock data(s->data_mu);
  PROVLIN_ASSIGN_OR_RETURN(
      std::vector<uint64_t> existing,
      s->runs->IndexLookup(indexes::kRunsById, {Datum(run_id)}));
  if (!existing.empty()) {
    return Status::AlreadyExists("run '" + run_id + "' already recorded");
  }
  PROVLIN_RETURN_IF_ERROR(rep->Apply(
      s, {kTagRuns, Row{Datum(run_id), Datum(workflow), Datum(seq)}}));
  // A new run marks the shard's earlier runs cold: seal them so the hot
  // tier only ever holds the run currently being captured.
  if (rep->compress != CompressMode::kOff) {
    PROVLIN_RETURN_IF_ERROR(rep->SealShardRunsLocked(s, &run_id));
  }
  return Status::OK();
}

Result<int64_t> TraceStore::InternValue(const std::string& run_id,
                                        const std::string& repr) {
  // Interning is an in-memory write-path optimization: ids are unique per
  // run, and a freshly opened store only ever writes new runs.
  Rep* rep = rep_.get();
  SymbolId run = Intern(run_id);
  Shard* s = rep->ShardForRun(run_id);
  common::MutexLock lock(s->ingest_mu);
  PROVLIN_RETURN_IF_ERROR(s->ingest_status);
  auto key = std::make_pair(run, repr);
  auto it = s->intern_cache.find(key);
  if (it != s->intern_cache.end()) return it->second;
  int64_t id = static_cast<int64_t>(s->next_value_id[run]++);
  Row row{SymDatum(run), Datum(id), Datum(repr)};
  if (rep->async) {
    while (s->queue.size() >= kMaxQueuedRows && !s->stop) {
      s->space_cv.Wait(s->ingest_mu);
    }
    PROVLIN_RETURN_IF_ERROR(s->ingest_status);
    s->queue.push_back({kTagVal, std::move(row)});
    ++s->enqueued;
    s->work_cv.NotifyOne();
  } else {
    // Lock order: ingest_mu nests outside data_mu (§11 lock table).
    common::WriterLock data(s->data_mu);
    PROVLIN_RETURN_IF_ERROR(rep->Apply(s, {kTagVal, std::move(row)}));
  }
  s->intern_cache[key] = id;
  return id;
}

Status TraceStore::InsertXform(const XformRecord& rec) {
  static auto* rows = common::metrics::GetCounter("provenance/xform_rows");
  rows->Increment();
  Row row(8);
  row[xform_col::kRun] = SymDatum(rec.run);
  row[xform_col::kEvent] = Datum(rec.event_id);
  if (rec.has_in) {
    row[xform_col::kIn] = Datum(IdPair{rec.processor, rec.in_port});
    row[xform_col::kInIndex] = Datum(IndexPath(rec.in_index.parts()));
    row[xform_col::kInValue] = Datum(rec.in_value);
  }
  if (rec.has_out) {
    row[xform_col::kOut] = Datum(IdPair{rec.processor, rec.out_port});
    row[xform_col::kOutIndex] = Datum(IndexPath(rec.out_index.parts()));
    row[xform_col::kOutValue] = Datum(rec.out_value);
  }
  Shard* s = rep_->ShardForSym(rec.run);
  return rep_->EnqueueOrApply(s, kTagXform, std::move(row));
}

Status TraceStore::InsertXfer(const XferRecord& rec) {
  static auto* rows = common::metrics::GetCounter("provenance/xfer_rows");
  rows->Increment();
  Row row{SymDatum(rec.run),
          Datum(IdPair{rec.src_proc, rec.src_port}),
          Datum(IndexPath(rec.src_index.parts())),
          Datum(IdPair{rec.dst_proc, rec.dst_port}),
          Datum(IndexPath(rec.dst_index.parts())),
          Datum(rec.value_id)};
  Shard* s = rep_->ShardForSym(rec.run);
  return rep_->EnqueueOrApply(s, kTagXfer, std::move(row));
}

Result<size_t> TraceStore::DeleteRun(const std::string& run_id) {
  Rep* rep = rep_.get();
  Shard* s = rep->ShardForRun(run_id);
  PROVLIN_RETURN_IF_ERROR(rep->Drain(s));
  std::optional<SymbolId> run_sym = LookupSymbol(run_id);
  // Drop the write-path caches for the deleted run so a future run may
  // reuse the id with fresh value ids. (The symbol itself is
  // append-only and survives; ids must stay stable for other runs.)
  // Done before taking data_mu: ingest_mu never nests inside it.
  if (run_sym.has_value()) {
    common::MutexLock lock(s->ingest_mu);
    s->next_value_id.erase(*run_sym);
    for (auto it = s->intern_cache.begin(); it != s->intern_cache.end();) {
      if (it->first.first == *run_sym) {
        it = s->intern_cache.erase(it);
      } else {
        ++it;
      }
    }
  }
  common::WriterLock data(s->data_mu);
  PROVLIN_ASSIGN_OR_RETURN(
      std::vector<uint64_t> run_rows,
      s->runs->IndexLookup(indexes::kRunsById, {Datum(run_id)}));
  if (run_rows.empty()) {
    return Status::NotFound("run '" + run_id + "' not recorded");
  }
  size_t removed = 0;
  for (uint64_t rid : run_rows) {
    PROVLIN_RETURN_IF_ERROR(s->runs->Delete(rid));
    ++removed;
  }
  // The trace tables key everything by the run symbol in column 0; a run
  // that never minted a symbol has no trace rows to sweep.
  if (run_sym.has_value()) {
    Datum run_datum = SymDatum(*run_sym);
    for (Table* table : {s->val, s->xform, s->xfer}) {
      std::vector<uint64_t> to_delete;
      for (uint64_t rid : table->FullScan()) {
        PROVLIN_ASSIGN_OR_RETURN(Row row, table->Get(rid));
        if (row[0] == run_datum) to_delete.push_back(rid);
      }
      for (uint64_t rid : to_delete) {
        PROVLIN_RETURN_IF_ERROR(table->Delete(rid));
        ++removed;
      }
    }
  }
  s->hot_rows_g->Add(-static_cast<int64_t>(removed));
  // A sealed run's trace rows drop with their whole segment — no
  // decode needed, the run is gone either way.
  if (run_sym.has_value()) {
    const char* seal_bases[] = {tables::kXform, tables::kXfer};
    std::map<SymbolId, std::shared_ptr<const Segment>>* sealed_maps[] = {
        &s->sealed_xform, &s->sealed_xfer};
    for (size_t m = 0; m < 2; ++m) {
      auto it = sealed_maps[m]->find(*run_sym);
      if (it == sealed_maps[m]->end()) continue;
      const Segment& seg = *it->second;
      removed += seg.num_rows();
      s->segment_rows_g->Add(-static_cast<int64_t>(seg.num_rows()));
      s->segment_bytes_g->Add(-static_cast<int64_t>(seg.bytes().size()));
      rep->db->DropBlob(SegmentBlobKey(seal_bases[m], s->id, run_id));
      sealed_maps[m]->erase(it);
    }
  }
  // Deletion touches only the owning shard's WAL: its replay sweeps the
  // run back out, and no other shard's log ever mentions this run.
  if (s->owned_wal.has_value()) {
    storage::BinaryWriter w;
    w.WriteU8(kTagDeleteRun);
    w.WriteString(run_id);
    PROVLIN_RETURN_IF_ERROR(s->owned_wal->Append(w.buffer()));
  }
  PROVLIN_RETURN_IF_ERROR(rep->LogSharedDelete(run_id));
  return removed;
}

// ---------------------------------------------------------------------------
// Read side
// ---------------------------------------------------------------------------

Result<std::string> TraceStore::RunWorkflow(const std::string& run_id) const {
  Shard* s = rep_->ShardForRun(run_id);
  PROVLIN_RETURN_IF_ERROR(rep_->Drain(s));
  common::ReaderLock data(s->data_mu);
  PROVLIN_ASSIGN_OR_RETURN(
      std::vector<uint64_t> run_rows,
      s->runs->IndexLookup(indexes::kRunsById, {Datum(run_id)}));
  if (run_rows.empty()) {
    return Status::NotFound("run '" + run_id + "' not recorded");
  }
  PROVLIN_ASSIGN_OR_RETURN(Row row, s->runs->Get(run_rows.front()));
  return row[1].AsString();
}

Result<std::vector<std::string>> TraceStore::ListRuns() const {
  // Single shard: pure insertion (rid) order — the legacy behavior,
  // including for pre-sharding images whose seq column may repeat.
  if (rep_->nshards == 1) {
    Shard* s = rep_->shards[0].get();
    PROVLIN_RETURN_IF_ERROR(rep_->Drain(s));
    common::ReaderLock data(s->data_mu);
    std::vector<std::string> out;
    for (uint64_t rid : s->runs->FullScan()) {
      PROVLIN_ASSIGN_OR_RETURN(Row row, s->runs->Get(rid));
      out.push_back(row[0].AsString());
    }
    return out;
  }
  // Sharded: merge by the global run sequence number.
  std::vector<std::pair<int64_t, std::string>> acc;
  for (auto& shard : rep_->shards) {
    Shard* s = shard.get();
    PROVLIN_RETURN_IF_ERROR(rep_->Drain(s));
    common::ReaderLock data(s->data_mu);
    for (uint64_t rid : s->runs->FullScan()) {
      PROVLIN_ASSIGN_OR_RETURN(Row row, s->runs->Get(rid));
      acc.emplace_back(row[2].AsInt(), row[0].AsString());
    }
  }
  std::stable_sort(acc.begin(), acc.end(),
                   [](const auto& a, const auto& b) { return a.first < b.first; });
  std::vector<std::string> out;
  out.reserve(acc.size());
  for (auto& [seq, id] : acc) out.push_back(std::move(id));
  return out;
}

ProbeMemoScope::ProbeMemoScope(ProbeMemo* memo) : prev_(g_active_probe_memo) {
  g_active_probe_memo = memo;
}

ProbeMemoScope::~ProbeMemoScope() { g_active_probe_memo = prev_; }

ProbeMemo* ProbeMemoScope::Active() { return g_active_probe_memo; }

ProbeBreakdownScope::ProbeBreakdownScope(ProbeBreakdown* breakdown)
    : prev_(g_active_probe_breakdown) {
  g_active_probe_breakdown = breakdown;
}

ProbeBreakdownScope::~ProbeBreakdownScope() {
  g_active_probe_breakdown = prev_;
}

ProbeBreakdown* ProbeBreakdownScope::Active() {
  return g_active_probe_breakdown;
}

template <typename Record>
Result<std::vector<Record>> TraceStore::FindOneImpl(
    int kind, const char* table, const char* pair_col, const char* index_col,
    Record (*decode)(const storage::Row&), SymbolId run, IdPair pair,
    const Index& idx) const {
  PROVLIN_TRACE_SPAN("trace/find");
  ProbeMemo* memo = ProbeMemoScope::Active();
  ProbeMemo::Key key{kind, run, pair.Packed(), InternIndex(idx)};
  if (memo != nullptr) {
    memo->lookups_.fetch_add(1, std::memory_order_relaxed);
    MemoMx().lookups->Increment();
    common::MutexLock lock(memo->mu_);
    auto& map = memo->MapFor<Record>();
    auto it = map.find(key);
    if (it != map.end()) {
      memo->hits_.fetch_add(1, std::memory_order_relaxed);
      MemoMx().hits->Increment();
      return *it->second;
    }
  }
  const size_t shard_id = rep_->ShardIdOfSym(run);
  Shard* s = rep_->shards[shard_id].get();
  PROVLIN_RETURN_IF_ERROR(rep_->Drain(s));
  s->probes_ctr->Increment();
  std::vector<Record> out;
  ProbeBreakdown* breakdown = ProbeBreakdownScope::Active();
  const storage::ThreadStats before = storage::ThisThreadStats();
  {
    common::ReaderLock data(s->data_mu);
    if (const Segment* seg = s->SealedSegFor(table, run)) {
      // Sealed run: answer in place on the compressed segment.
      Segment::Scratch scratch;
      Segment::ProbeCounts counts;
      size_t queries = 0;
      PROVLIN_RETURN_IF_ERROR(SealedOverlapProbe(
          *seg, ViewForPairCol(pair_col), pair, idx, &scratch, &counts,
          &queries, [&](const Row& row) { out.push_back(decode(row)); }));
      CreditSealedProbe(queries, counts, /*batched=*/false);
      if (breakdown != nullptr) {
        breakdown->CreditSealed(queries, counts.entries_examined);
      }
    } else {
      PROVLIN_RETURN_IF_ERROR(OverlapProbe(
          s->ProbeTableFor(table), run, pair_col, pair, index_col, idx,
          [&](const Row& row) { out.push_back(decode(row)); }));
    }
  }
  if (breakdown != nullptr) {
    const storage::ThreadStats after = storage::ThisThreadStats();
    breakdown->CreditShard(static_cast<uint32_t>(shard_id),
                           after.index_probes - before.index_probes,
                           after.descents - before.descents,
                           after.rows_examined - before.rows_examined);
  }
  if (memo != nullptr) {
    auto cached = std::make_shared<const std::vector<Record>>(out);
    common::MutexLock lock(memo->mu_);
    memo->MapFor<Record>().emplace(key, std::move(cached));
  }
  return out;
}

template <typename Record>
Result<std::vector<std::vector<Record>>> TraceStore::FindBatchImpl(
    int kind, const char* table, const char* pair_col, const char* index_col,
    Record (*decode)(const storage::Row&),
    const std::vector<PortProbe>& probes) const {
  PROVLIN_TRACE_SPAN_VAR(span, "trace/find_batch");
  if (span.active()) {
    span.SetArgs("probes=" + std::to_string(probes.size()));
  }
  std::vector<std::vector<Record>> results(probes.size());
  ProbeMemo* memo = ProbeMemoScope::Active();

  std::vector<size_t> misses;
  std::vector<ProbeMemo::Key> keys;
  if (memo == nullptr) {
    misses.resize(probes.size());
    std::iota(misses.begin(), misses.end(), size_t{0});
  } else {
    keys.reserve(probes.size());
    for (const PortProbe& p : probes) {
      keys.push_back(ProbeMemo::Key{kind, p.run,
                                    IdPair{p.processor, p.port}.Packed(),
                                    InternIndex(p.index)});
    }
    memo->lookups_.fetch_add(probes.size(), std::memory_order_relaxed);
    MemoMx().lookups->Add(probes.size());
    common::MutexLock lock(memo->mu_);
    auto& map = memo->MapFor<Record>();
    uint64_t hits = 0;
    for (size_t i = 0; i < probes.size(); ++i) {
      auto it = map.find(keys[i]);
      if (it != map.end()) {
        ++hits;
        results[i] = *it->second;
      } else {
        misses.push_back(i);
      }
    }
    if (hits > 0) {
      memo->hits_.fetch_add(hits, std::memory_order_relaxed);
      MemoMx().hits->Add(hits);
    }
  }
  if (misses.empty()) return results;

  // Group the missed probes by owning shard, preserving probe order
  // inside each group. With one shard (or one run) this is a single
  // group executed inline — the pre-sharding fast path, bit for bit.
  std::map<size_t, std::vector<size_t>> groups;
  for (size_t i : misses) {
    groups[rep_->ShardIdOfSym(probes[i].run)].push_back(i);
  }

  // Executes one shard's sub-batch; results land directly in the
  // caller-ordered slots, so the merge is the index mapping itself.
  // `sealed_probes`/`sealed_rows` accumulate the slice of the work the
  // sealed tier answered, for per-tier attribution by the caller.
  auto run_group = [&](size_t shard_id, const std::vector<size_t>& idxs,
                       uint64_t* sealed_probes,
                       uint64_t* sealed_rows) -> Status {
    Shard* s = rep_->shards[shard_id].get();
    PROVLIN_RETURN_IF_ERROR(rep_->Drain(s));
    s->probes_ctr->Add(idxs.size());
    common::ReaderLock data(s->data_mu);
    // Split the shard's probes by tier: sealed runs answer on their
    // compressed segments, the rest flatten into one MultiSelect pass
    // over the hot tables. Results land in caller-ordered slots either
    // way, so the merge stays the index mapping itself.
    std::vector<size_t> hot;
    std::map<SymbolId, std::vector<size_t>> sealed_runs;
    for (size_t i : idxs) {
      if (s->SealedSegFor(table, probes[i].run) != nullptr) {
        sealed_runs[probes[i].run].push_back(i);
      } else {
        hot.push_back(i);
      }
    }
    if (!hot.empty()) {
      std::vector<PortProbe> sub;
      const std::vector<PortProbe>* batch = &probes;
      if (hot.size() != probes.size()) {
        sub.reserve(hot.size());
        for (size_t i : hot) sub.push_back(probes[i]);
        batch = &sub;
      }
      PROVLIN_RETURN_IF_ERROR(OverlapProbeBatch(
          s->ProbeTableFor(table), pair_col, index_col, *batch,
          [&](size_t m, const Row& row) {
            results[hot[m]].push_back(decode(row));
          }));
    }
    const size_t view = ViewForPairCol(pair_col);
    for (auto& [run_sym, ridx] : sealed_runs) {
      const Segment* seg = s->SealedSegFor(table, run_sym);
      // Sort the run's probes in view key order so the segment cursor
      // walks forward across them (the MultiSeek equivalent). Empty
      // indexes sort first within a pair — an unbounded probe must not
      // reuse a cursor mid-pair.
      std::stable_sort(ridx.begin(), ridx.end(), [&](size_t a, size_t b) {
        const uint64_t ka =
            IdPair{probes[a].processor, probes[a].port}.Packed();
        const uint64_t kb =
            IdPair{probes[b].processor, probes[b].port}.Packed();
        if (ka != kb) return ka < kb;
        return probes[a].index.parts() < probes[b].index.parts();
      });
      Segment::Scratch scratch;
      Segment::ProbeCounts counts;
      size_t queries = 0;
      for (size_t i : ridx) {
        PROVLIN_RETURN_IF_ERROR(SealedOverlapProbe(
            *seg, view, IdPair{probes[i].processor, probes[i].port},
            probes[i].index, &scratch, &counts, &queries,
            [&](const Row& row) { results[i].push_back(decode(row)); }));
      }
      CreditSealedProbe(queries, counts, /*batched=*/true);
      *sealed_probes += queries;
      *sealed_rows += counts.entries_examined;
    }
    return Status::OK();
  };

  ProbeBreakdown* breakdown = ProbeBreakdownScope::Active();
  if (groups.size() <= 1) {
    for (const auto& [shard_id, idxs] : groups) {
      const storage::ThreadStats before = storage::ThisThreadStats();
      uint64_t sealed_probes = 0;
      uint64_t sealed_rows = 0;
      PROVLIN_RETURN_IF_ERROR(
          run_group(shard_id, idxs, &sealed_probes, &sealed_rows));
      if (breakdown != nullptr) {
        const storage::ThreadStats after = storage::ThisThreadStats();
        breakdown->CreditShard(static_cast<uint32_t>(shard_id),
                               after.index_probes - before.index_probes,
                               after.descents - before.descents,
                               after.rows_examined - before.rows_examined);
        breakdown->CreditSealed(sealed_probes, sealed_rows);
      }
    }
  } else {
    // Fan the per-shard sub-batches out over the store's pool. Each task
    // writes disjoint result slots; probe/descent deltas harvested from
    // the worker's thread-local stats are credited back to the caller so
    // cost attribution stays identical to inline execution.
    struct GroupOutcome {
      Status status;
      storage::ThreadStats delta;
      size_t shard_id = 0;
      uint64_t sealed_probes = 0;
      uint64_t sealed_rows = 0;
    };
    std::vector<GroupOutcome> outcomes(groups.size());
    FanLatch latch;
    {
      common::MutexLock lock(latch.mu);
      latch.pending = groups.size();
    }
    size_t slot = 0;
    for (const auto& [shard_id, idxs] : groups) {
      const std::vector<size_t>* idxs_p = &idxs;
      const size_t my_slot = slot++;
      const size_t my_shard = shard_id;
      rep_->fanout->Submit([&, idxs_p, my_slot, my_shard]() {
        storage::ThreadStats& mine = storage::ThisThreadStats();
        const storage::ThreadStats before = mine;
        GroupOutcome& out = outcomes[my_slot];
        out.shard_id = my_shard;
        out.status = run_group(my_shard, *idxs_p, &out.sealed_probes,
                               &out.sealed_rows);
        const storage::ThreadStats after = mine;
        out.delta.index_probes = after.index_probes - before.index_probes;
        out.delta.full_scans = after.full_scans - before.full_scans;
        out.delta.rows_examined = after.rows_examined - before.rows_examined;
        out.delta.batched_probes = after.batched_probes - before.batched_probes;
        out.delta.descents = after.descents - before.descents;
        common::MutexLock lock(latch.mu);
        if (--latch.pending == 0) latch.cv.NotifyAll();
      });
    }
    {
      common::MutexLock lock(latch.mu);
      while (latch.pending > 0) latch.cv.Wait(latch.mu);
    }
    storage::ThreadStats& mine = storage::ThisThreadStats();
    Status first = Status::OK();
    for (const GroupOutcome& out : outcomes) {
      mine.index_probes += out.delta.index_probes;
      mine.full_scans += out.delta.full_scans;
      mine.rows_examined += out.delta.rows_examined;
      mine.batched_probes += out.delta.batched_probes;
      mine.descents += out.delta.descents;
      if (breakdown != nullptr) {
        breakdown->CreditShard(static_cast<uint32_t>(out.shard_id),
                               out.delta.index_probes, out.delta.descents,
                               out.delta.rows_examined);
        breakdown->CreditSealed(out.sealed_probes, out.sealed_rows);
      }
      if (first.ok() && !out.status.ok()) first = out.status;
    }
    PROVLIN_RETURN_IF_ERROR(first);
  }

  if (memo != nullptr) {
    common::MutexLock lock(memo->mu_);
    auto& map = memo->MapFor<Record>();
    for (size_t i : misses) {
      map.emplace(keys[i],
                  std::make_shared<const std::vector<Record>>(results[i]));
    }
  }
  return results;
}

Result<std::vector<XformRecord>> TraceStore::FindProducing(
    SymbolId run, SymbolId processor, SymbolId out_port,
    const Index& q) const {
  return FindOneImpl<XformRecord>(kKindProducing, tables::kXform, "out",
                                  "out_index", &DecodeXform, run,
                                  IdPair{processor, out_port}, q);
}

Result<std::vector<std::vector<XformRecord>>> TraceStore::FindProducingBatch(
    const std::vector<PortProbe>& probes) const {
  return FindBatchImpl<XformRecord>(kKindProducing, tables::kXform, "out",
                                    "out_index", &DecodeXform, probes);
}

Result<std::vector<std::vector<XformRecord>>> TraceStore::FindConsumingBatch(
    const std::vector<PortProbe>& probes) const {
  return FindBatchImpl<XformRecord>(kKindConsuming, tables::kXform, "in",
                                    "in_index", &DecodeXform, probes);
}

Result<std::vector<std::vector<XferRecord>>> TraceStore::FindXfersIntoBatch(
    const std::vector<PortProbe>& probes) const {
  return FindBatchImpl<XferRecord>(kKindXferInto, tables::kXfer, "dst",
                                   "dst_index", &DecodeXfer, probes);
}

Result<std::vector<std::vector<XferRecord>>> TraceStore::FindXfersFromBatch(
    const std::vector<PortProbe>& probes) const {
  return FindBatchImpl<XferRecord>(kKindXferFrom, tables::kXfer, "src",
                                   "src_index", &DecodeXfer, probes);
}

Result<std::vector<XformRecord>> TraceStore::FindProducing(
    const std::string& run, const std::string& processor,
    const std::string& out_port, const Index& q) const {
  auto r = LookupSymbol(run);
  auto p = LookupSymbol(processor);
  auto o = LookupSymbol(out_port);
  if (!r || !p || !o) return std::vector<XformRecord>{};
  return FindProducing(*r, *p, *o, q);
}

Result<std::vector<XformRecord>> TraceStore::FindConsuming(
    SymbolId run, SymbolId processor, SymbolId in_port, const Index& p) const {
  return FindOneImpl<XformRecord>(kKindConsuming, tables::kXform, "in",
                                  "in_index", &DecodeXform, run,
                                  IdPair{processor, in_port}, p);
}

Result<std::vector<XformRecord>> TraceStore::FindConsuming(
    const std::string& run, const std::string& processor,
    const std::string& in_port, const Index& p) const {
  auto r = LookupSymbol(run);
  auto pr = LookupSymbol(processor);
  auto i = LookupSymbol(in_port);
  if (!r || !pr || !i) return std::vector<XformRecord>{};
  return FindConsuming(*r, *pr, *i, p);
}

Result<std::vector<XferRecord>> TraceStore::FindXfersInto(
    SymbolId run, SymbolId dst_proc, SymbolId dst_port, const Index& p) const {
  return FindOneImpl<XferRecord>(kKindXferInto, tables::kXfer, "dst",
                                 "dst_index", &DecodeXfer, run,
                                 IdPair{dst_proc, dst_port}, p);
}

Result<std::vector<XferRecord>> TraceStore::FindXfersInto(
    const std::string& run, const std::string& dst_proc,
    const std::string& dst_port, const Index& p) const {
  auto r = LookupSymbol(run);
  auto d = LookupSymbol(dst_proc);
  auto dp = LookupSymbol(dst_port);
  if (!r || !d || !dp) return std::vector<XferRecord>{};
  return FindXfersInto(*r, *d, *dp, p);
}

Result<std::vector<XferRecord>> TraceStore::FindXfersFrom(
    SymbolId run, SymbolId src_proc, SymbolId src_port, const Index& p) const {
  return FindOneImpl<XferRecord>(kKindXferFrom, tables::kXfer, "src",
                                 "src_index", &DecodeXfer, run,
                                 IdPair{src_proc, src_port}, p);
}

Result<std::vector<XferRecord>> TraceStore::FindXfersFrom(
    const std::string& run, const std::string& src_proc,
    const std::string& src_port, const Index& p) const {
  auto r = LookupSymbol(run);
  auto s = LookupSymbol(src_proc);
  auto sp = LookupSymbol(src_port);
  if (!r || !s || !sp) return std::vector<XferRecord>{};
  return FindXfersFrom(*r, *s, *sp, p);
}

Result<std::vector<XformRecord>> TraceStore::ScanXforms(
    const std::string& run) const {
  std::vector<XformRecord> out;
  std::optional<SymbolId> run_sym = LookupSymbol(run);
  if (!run_sym.has_value()) return out;
  Datum run_datum = SymDatum(*run_sym);
  Shard* s = rep_->ShardForRun(run);
  PROVLIN_RETURN_IF_ERROR(rep_->Drain(s));
  common::ReaderLock data(s->data_mu);
  if (const Segment* seg = s->SealedSegFor(tables::kXform, *run_sym)) {
    // Ordinal order is insertion order — the same order the hot scan
    // discovers the run's rows in.
    PROVLIN_ASSIGN_OR_RETURN(std::vector<Row> rows, seg->DecodeAllRows());
    out.reserve(rows.size());
    for (const Row& row : rows) out.push_back(DecodeXform(row));
    return out;
  }
  for (uint64_t rid : s->xform->FullScan()) {
    PROVLIN_ASSIGN_OR_RETURN(Row row, s->xform->Get(rid));
    if (row[0] == run_datum) out.push_back(DecodeXform(row));
  }
  return out;
}

Result<std::vector<XferRecord>> TraceStore::ScanXfers(
    const std::string& run) const {
  std::vector<XferRecord> out;
  std::optional<SymbolId> run_sym = LookupSymbol(run);
  if (!run_sym.has_value()) return out;
  Datum run_datum = SymDatum(*run_sym);
  Shard* s = rep_->ShardForRun(run);
  PROVLIN_RETURN_IF_ERROR(rep_->Drain(s));
  common::ReaderLock data(s->data_mu);
  if (const Segment* seg = s->SealedSegFor(tables::kXfer, *run_sym)) {
    PROVLIN_ASSIGN_OR_RETURN(std::vector<Row> rows, seg->DecodeAllRows());
    out.reserve(rows.size());
    for (const Row& row : rows) out.push_back(DecodeXfer(row));
    return out;
  }
  for (uint64_t rid : s->xfer->FullScan()) {
    PROVLIN_ASSIGN_OR_RETURN(Row row, s->xfer->Get(rid));
    if (row[0] == run_datum) out.push_back(DecodeXfer(row));
  }
  return out;
}

Result<std::string> TraceStore::GetValueRepr(SymbolId run,
                                             int64_t value_id) const {
  Shard* s = rep_->ShardForSym(run);
  PROVLIN_RETURN_IF_ERROR(rep_->Drain(s));
  common::ReaderLock data(s->data_mu);
  PROVLIN_ASSIGN_OR_RETURN(
      std::vector<uint64_t> rids,
      s->val->IndexLookup(indexes::kValById, {SymDatum(run), Datum(value_id)}));
  if (rids.empty()) {
    return Status::NotFound("no value " + std::to_string(value_id) +
                            " in run '" + NameOf(run) + "'");
  }
  PROVLIN_ASSIGN_OR_RETURN(Row row, s->val->Get(rids.front()));
  return row[2].AsString();
}

Result<std::string> TraceStore::GetValueRepr(const std::string& run,
                                             int64_t value_id) const {
  std::optional<SymbolId> run_sym = LookupSymbol(run);
  if (!run_sym.has_value()) {
    return Status::NotFound("no value " + std::to_string(value_id) +
                            " in run '" + run + "'");
  }
  return GetValueRepr(*run_sym, value_id);
}

Result<Value> TraceStore::GetValue(const std::string& run,
                                   int64_t value_id) const {
  PROVLIN_ASSIGN_OR_RETURN(std::string repr, GetValueRepr(run, value_id));
  return ParseValue(repr);
}

Result<TraceCounts> TraceStore::CountRecords(const std::string& run) const {
  TraceCounts counts;
  std::optional<SymbolId> run_sym = LookupSymbol(run);
  if (!run_sym.has_value()) return counts;
  Datum run_datum = SymDatum(*run_sym);
  Shard* s = rep_->ShardForRun(run);
  PROVLIN_RETURN_IF_ERROR(rep_->Drain(s));
  common::ReaderLock data(s->data_mu);
  auto count_in = [&](const Table* t) -> Result<size_t> {
    size_t n = 0;
    for (uint64_t rid : t->FullScan()) {
      PROVLIN_ASSIGN_OR_RETURN(Row row, t->Get(rid));
      if (row[0] == run_datum) ++n;
    }
    return n;
  };
  if (const Segment* seg = s->SealedSegFor(tables::kXform, *run_sym)) {
    counts.xform_rows = seg->num_rows();
  } else {
    PROVLIN_ASSIGN_OR_RETURN(counts.xform_rows, count_in(s->xform));
  }
  if (const Segment* seg = s->SealedSegFor(tables::kXfer, *run_sym)) {
    counts.xfer_rows = seg->num_rows();
  } else {
    PROVLIN_ASSIGN_OR_RETURN(counts.xfer_rows, count_in(s->xfer));
  }
  PROVLIN_ASSIGN_OR_RETURN(counts.value_rows, count_in(s->val));
  return counts;
}

Result<TraceCounts> TraceStore::CountAllRecords() const {
  TraceCounts counts;
  for (auto& shard : rep_->shards) {
    Shard* s = shard.get();
    PROVLIN_RETURN_IF_ERROR(rep_->Drain(s));
    common::ReaderLock data(s->data_mu);
    counts.xform_rows += s->xform->num_rows();
    counts.xfer_rows += s->xfer->num_rows();
    counts.value_rows += s->val->num_rows();
    for (const auto& [sym, seg] : s->sealed_xform) {
      counts.xform_rows += seg->num_rows();
    }
    for (const auto& [sym, seg] : s->sealed_xfer) {
      counts.xfer_rows += seg->num_rows();
    }
  }
  return counts;
}

}  // namespace provlin::provenance
