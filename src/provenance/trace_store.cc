#include "provenance/trace_store.h"

#include <numeric>
#include <set>
#include <type_traits>

#include "common/metrics.h"
#include "common/tracing.h"
#include "provenance/schema.h"
#include "storage/serialize.h"
#include "values/value_parser.h"

namespace provlin::provenance {

using storage::Datum;
using storage::IdPair;
using storage::IndexPath;
using storage::Row;
using storage::SelectQuery;
using storage::SelectResult;
using storage::Table;

namespace {

// WAL record tags: one per trace table, plus symbol definitions.
// Symbol ids are positional, so replaying kTagSymbol records in log
// order re-mints identical ids before any row references them.
constexpr uint8_t kTagRuns = 0, kTagVal = 1, kTagXform = 2, kTagXfer = 3,
                  kTagSymbol = 4;

// Column ordinals, fixed by CreateProvenanceSchema.
namespace xform_col {
constexpr size_t kRun = 0, kEvent = 1, kIn = 2, kInIndex = 3, kInValue = 4,
                 kOut = 5, kOutIndex = 6, kOutValue = 7;
}  // namespace xform_col
namespace xfer_col {
constexpr size_t kRun = 0, kSrc = 1, kSrcIndex = 2, kDst = 3, kDstIndex = 4,
                 kValue = 5;
}  // namespace xfer_col

SymbolId SymOf(const Datum& d) {
  return static_cast<SymbolId>(static_cast<uint64_t>(d.AsInt()));
}

Datum SymDatum(SymbolId id) { return Datum(static_cast<int64_t>(id)); }

XformRecord DecodeXform(const Row& row) {
  XformRecord rec;
  rec.run = SymOf(row[xform_col::kRun]);
  rec.event_id = row[xform_col::kEvent].AsInt();
  rec.has_in = !row[xform_col::kIn].is_null();
  if (rec.has_in) {
    IdPair in = row[xform_col::kIn].AsIdPair();
    rec.processor = in.first;
    rec.in_port = in.second;
    rec.in_index = Index(row[xform_col::kInIndex].AsIndexPath());
    rec.in_value = row[xform_col::kInValue].AsInt();
  }
  rec.has_out = !row[xform_col::kOut].is_null();
  if (rec.has_out) {
    IdPair out = row[xform_col::kOut].AsIdPair();
    rec.processor = out.first;
    rec.out_port = out.second;
    rec.out_index = Index(row[xform_col::kOutIndex].AsIndexPath());
    rec.out_value = row[xform_col::kOutValue].AsInt();
  }
  return rec;
}

// Memo key spaces, one per public Find* flavor.
constexpr int kKindProducing = 0, kKindConsuming = 1, kKindXferInto = 2,
              kKindXferFrom = 3;

/// Content-comparing row-pointer order, for deduping overlap-probe rows
/// without copying them (two rids with byte-identical rows still dedup,
/// matching the historical std::set<Row> behaviour).
struct RowPtrLess {
  bool operator()(const Row* a, const Row* b) const { return *a < *b; }
};

/// Appends the overlap-probe query sequence for one (pair, idx) probe:
/// one prefix scan for the empty index, else |idx|+1 point probes
/// (coarser covering bindings) plus one path-prefix range probe (finer
/// bindings at or below idx).
void AppendOverlapQueries(SymbolId run, const char* pair_col, IdPair pair,
                          const char* index_col, const Index& idx,
                          std::vector<SelectQuery>* queries) {
  auto base = [&]() {
    SelectQuery q;
    q.equals.push_back({"run", SymDatum(run)});
    q.equals.push_back({pair_col, Datum(pair)});
    return q;
  };
  if (idx.empty()) {
    // The whole-value query: one range probe (an index-prefix scan over
    // the two equality columns) enumerates every binding on the port.
    queries->push_back(base());
    return;
  }
  for (size_t k = 0; k <= idx.length(); ++k) {
    SelectQuery q = base();
    q.equals.push_back({index_col, Datum(IndexPath(idx.Prefix(k).parts()))});
    queries->push_back(std::move(q));
  }
  {
    SelectQuery q = base();
    q.path_prefix = SelectQuery::PathPrefix{index_col, idx.parts()};
    queries->push_back(std::move(q));
  }
}

thread_local ProbeMemo* g_active_probe_memo = nullptr;

/// Registry mirrors of the per-memo hit/lookup atomics: process-wide
/// totals across all memos, exposed as provenance/memo_* in `stats`.
struct MemoMetrics {
  common::metrics::Counter* hits =
      common::metrics::GetCounter("provenance/memo_hits");
  common::metrics::Counter* lookups =
      common::metrics::GetCounter("provenance/memo_lookups");
};

MemoMetrics& MemoMx() {
  static MemoMetrics m;
  return m;
}

XferRecord DecodeXfer(const Row& row) {
  XferRecord rec;
  rec.run = SymOf(row[xfer_col::kRun]);
  IdPair src = row[xfer_col::kSrc].AsIdPair();
  rec.src_proc = src.first;
  rec.src_port = src.second;
  rec.src_index = Index(row[xfer_col::kSrcIndex].AsIndexPath());
  IdPair dst = row[xfer_col::kDst].AsIdPair();
  rec.dst_proc = dst.first;
  rec.dst_port = dst.second;
  rec.dst_index = Index(row[xfer_col::kDstIndex].AsIndexPath());
  rec.value_id = row[xfer_col::kValue].AsInt();
  return rec;
}

}  // namespace

Result<TraceStore> TraceStore::Open(storage::Database* db) {
  if (!db->GetTable(tables::kXform).ok()) {
    PROVLIN_RETURN_IF_ERROR(CreateProvenanceSchema(db));
  }
  return TraceStore(db);
}

SymbolId TraceStore::Intern(std::string_view name) const {
  return db_->symbols().Intern(name);
}

std::optional<SymbolId> TraceStore::LookupSymbol(std::string_view name) const {
  return db_->symbols().Lookup(name);
}

const std::string& TraceStore::NameOf(SymbolId id) const {
  return db_->symbols().NameOf(id);
}

IndexId TraceStore::InternIndex(const Index& index) const {
  return db_->index_dict().Intern(index.parts());
}

Status TraceStore::InsertRun(const std::string& run_id,
                             const std::string& workflow) {
  PROVLIN_ASSIGN_OR_RETURN(Table * runs, db_->GetTable(tables::kRuns));
  PROVLIN_ASSIGN_OR_RETURN(
      std::vector<uint64_t> existing,
      runs->IndexLookup(indexes::kRunsById, {Datum(run_id)}));
  if (!existing.empty()) {
    return Status::AlreadyExists("run '" + run_id + "' already recorded");
  }
  int64_t seq = static_cast<int64_t>(runs->num_rows());
  storage::Row row{Datum(run_id), Datum(workflow), Datum(seq)};
  PROVLIN_RETURN_IF_ERROR(LogRow(kTagRuns, row));
  return runs->Insert(row).status();
}

Result<int64_t> TraceStore::InternValue(const std::string& run_id,
                                        const std::string& repr) {
  // Interning is an in-memory write-path optimization: ids are unique per
  // run, and a freshly opened store only ever writes new runs.
  SymbolId run = Intern(run_id);
  auto key = std::make_pair(run, repr);
  auto it = intern_cache_.find(key);
  if (it != intern_cache_.end()) return it->second;
  PROVLIN_ASSIGN_OR_RETURN(Table * val, db_->GetTable(tables::kVal));
  int64_t id = static_cast<int64_t>(next_value_id_[run]++);
  storage::Row row{SymDatum(run), Datum(id), Datum(repr)};
  PROVLIN_RETURN_IF_ERROR(LogRow(kTagVal, row));
  PROVLIN_RETURN_IF_ERROR(val->Insert(row).status());
  intern_cache_[key] = id;
  return id;
}

Status TraceStore::InsertXform(const XformRecord& rec) {
  static auto* rows = common::metrics::GetCounter("provenance/xform_rows");
  rows->Increment();
  PROVLIN_ASSIGN_OR_RETURN(Table * xform, db_->GetTable(tables::kXform));
  Row row(8);
  row[xform_col::kRun] = SymDatum(rec.run);
  row[xform_col::kEvent] = Datum(rec.event_id);
  if (rec.has_in) {
    row[xform_col::kIn] = Datum(IdPair{rec.processor, rec.in_port});
    row[xform_col::kInIndex] = Datum(IndexPath(rec.in_index.parts()));
    row[xform_col::kInValue] = Datum(rec.in_value);
  }
  if (rec.has_out) {
    row[xform_col::kOut] = Datum(IdPair{rec.processor, rec.out_port});
    row[xform_col::kOutIndex] = Datum(IndexPath(rec.out_index.parts()));
    row[xform_col::kOutValue] = Datum(rec.out_value);
  }
  PROVLIN_RETURN_IF_ERROR(LogRow(kTagXform, row));
  return xform->Insert(row).status();
}

Status TraceStore::InsertXfer(const XferRecord& rec) {
  static auto* rows = common::metrics::GetCounter("provenance/xfer_rows");
  rows->Increment();
  PROVLIN_ASSIGN_OR_RETURN(Table * xfer, db_->GetTable(tables::kXfer));
  storage::Row row{SymDatum(rec.run),
                   Datum(IdPair{rec.src_proc, rec.src_port}),
                   Datum(IndexPath(rec.src_index.parts())),
                   Datum(IdPair{rec.dst_proc, rec.dst_port}),
                   Datum(IndexPath(rec.dst_index.parts())),
                   Datum(rec.value_id)};
  PROVLIN_RETURN_IF_ERROR(LogRow(kTagXfer, row));
  return xfer->Insert(row).status();
}

Status TraceStore::LogRow(uint8_t table_tag, const storage::Row& row) {
  if (wal_ == nullptr) return Status::OK();
  // Flush symbol definitions minted since the last logged record, so a
  // replay re-interns them in id order before any row references them.
  const common::SymbolTable& symbols = db_->symbols();
  while (wal_syms_logged_ < symbols.size()) {
    storage::BinaryWriter w;
    w.WriteU8(kTagSymbol);
    w.WriteString(symbols.NameOf(static_cast<SymbolId>(wal_syms_logged_)));
    PROVLIN_RETURN_IF_ERROR(wal_->Append(w.buffer()));
    ++wal_syms_logged_;
  }
  storage::BinaryWriter w;
  w.WriteU8(table_tag);
  w.WriteRow(row);
  return wal_->Append(w.buffer());
}

Result<size_t> TraceStore::ReplayWal(const std::string& wal_path,
                                     storage::Database* db) {
  if (!db->GetTable(tables::kXform).ok()) {
    PROVLIN_RETURN_IF_ERROR(CreateProvenanceSchema(db));
  }
  PROVLIN_ASSIGN_OR_RETURN(std::vector<std::string> records,
                           storage::WriteAheadLog::Replay(wal_path));
  size_t applied = 0;
  for (const std::string& record : records) {
    storage::BinaryReader r(record);
    PROVLIN_ASSIGN_OR_RETURN(uint8_t tag, r.ReadU8());
    if (tag == kTagSymbol) {
      PROVLIN_ASSIGN_OR_RETURN(std::string name, r.ReadString());
      db->symbols().Intern(name);
      continue;
    }
    PROVLIN_ASSIGN_OR_RETURN(Row row, r.ReadRow());
    const char* table_name = nullptr;
    switch (tag) {
      case kTagRuns:
        table_name = tables::kRuns;
        break;
      case kTagVal:
        table_name = tables::kVal;
        break;
      case kTagXform:
        table_name = tables::kXform;
        break;
      case kTagXfer:
        table_name = tables::kXfer;
        break;
      default:
        return Status::Corruption("bad WAL table tag " + std::to_string(tag));
    }
    PROVLIN_ASSIGN_OR_RETURN(Table * table, db->GetTable(table_name));
    PROVLIN_RETURN_IF_ERROR(table->Insert(row).status());
    ++applied;
  }
  return applied;
}

Result<size_t> TraceStore::DeleteRun(const std::string& run_id) {
  PROVLIN_ASSIGN_OR_RETURN(Table * runs, db_->GetTable(tables::kRuns));
  PROVLIN_ASSIGN_OR_RETURN(
      std::vector<uint64_t> run_rows,
      runs->IndexLookup(indexes::kRunsById, {Datum(run_id)}));
  if (run_rows.empty()) {
    return Status::NotFound("run '" + run_id + "' not recorded");
  }
  size_t removed = 0;
  for (uint64_t rid : run_rows) {
    PROVLIN_RETURN_IF_ERROR(runs->Delete(rid));
    ++removed;
  }
  // The trace tables key everything by the run symbol in column 0; a run
  // that never minted a symbol has no trace rows to sweep.
  std::optional<SymbolId> run_sym = LookupSymbol(run_id);
  if (run_sym.has_value()) {
    Datum run_datum = SymDatum(*run_sym);
    for (const char* name : {tables::kVal, tables::kXform, tables::kXfer}) {
      PROVLIN_ASSIGN_OR_RETURN(Table * table, db_->GetTable(name));
      std::vector<uint64_t> to_delete;
      for (uint64_t rid : table->FullScan()) {
        PROVLIN_ASSIGN_OR_RETURN(Row row, table->Get(rid));
        if (row[0] == run_datum) to_delete.push_back(rid);
      }
      for (uint64_t rid : to_delete) {
        PROVLIN_RETURN_IF_ERROR(table->Delete(rid));
        ++removed;
      }
    }
    // Drop the write-path caches for the deleted run so a future run may
    // reuse the id with fresh value ids. (The symbol itself is
    // append-only and survives; ids must stay stable for other runs.)
    next_value_id_.erase(*run_sym);
    for (auto it = intern_cache_.begin(); it != intern_cache_.end();) {
      if (it->first.first == *run_sym) {
        it = intern_cache_.erase(it);
      } else {
        ++it;
      }
    }
  }
  return removed;
}

Result<std::string> TraceStore::RunWorkflow(const std::string& run_id) const {
  PROVLIN_ASSIGN_OR_RETURN(const Table* runs, db_->GetTable(tables::kRuns));
  PROVLIN_ASSIGN_OR_RETURN(
      std::vector<uint64_t> run_rows,
      runs->IndexLookup(indexes::kRunsById, {Datum(run_id)}));
  if (run_rows.empty()) {
    return Status::NotFound("run '" + run_id + "' not recorded");
  }
  PROVLIN_ASSIGN_OR_RETURN(Row row, runs->Get(run_rows.front()));
  return row[1].AsString();
}

Result<std::vector<std::string>> TraceStore::ListRuns() const {
  PROVLIN_ASSIGN_OR_RETURN(const Table* runs, db_->GetTable(tables::kRuns));
  std::vector<std::string> out;
  for (uint64_t rid : runs->FullScan()) {
    PROVLIN_ASSIGN_OR_RETURN(Row row, runs->Get(rid));
    out.push_back(row[0].AsString());
  }
  return out;
}

ProbeMemoScope::ProbeMemoScope(ProbeMemo* memo) : prev_(g_active_probe_memo) {
  g_active_probe_memo = memo;
}

ProbeMemoScope::~ProbeMemoScope() { g_active_probe_memo = prev_; }

ProbeMemo* ProbeMemoScope::Active() { return g_active_probe_memo; }

Status TraceStore::OverlapProbe(
    const char* table, SymbolId run, const char* pair_col, IdPair pair,
    const char* index_col, const Index& idx,
    const std::function<void(const storage::Row&)>& emit) const {
  PROVLIN_ASSIGN_OR_RETURN(const Table* t, db_->GetTable(table));
  std::vector<SelectQuery> queries;
  AppendOverlapQueries(run, pair_col, pair, index_col, idx, &queries);
  storage::SelectOptions zero_copy;
  zero_copy.zero_copy = true;
  std::set<const Row*, RowPtrLess> seen;
  for (const SelectQuery& q : queries) {
    PROVLIN_ASSIGN_OR_RETURN(SelectResult r,
                             storage::ExecuteSelect(*t, q, zero_copy));
    for (const Row* row : r.row_ptrs) {
      if (seen.insert(row).second) emit(*row);
    }
  }
  return Status::OK();
}

Status TraceStore::OverlapProbeBatch(
    const char* table, SymbolId run, const char* pair_col,
    const char* index_col, const std::vector<PortProbe>& probes,
    const std::function<void(size_t, const storage::Row&)>& emit) const {
  PROVLIN_ASSIGN_OR_RETURN(const Table* t, db_->GetTable(table));
  std::vector<SelectQuery> queries;
  std::vector<size_t> owner;  // flattened query ordinal -> probe ordinal
  for (size_t i = 0; i < probes.size(); ++i) {
    AppendOverlapQueries(run, pair_col,
                         IdPair{probes[i].processor, probes[i].port}, index_col,
                         probes[i].index, &queries);
    owner.resize(queries.size(), i);
  }
  storage::SelectOptions zero_copy;
  zero_copy.zero_copy = true;
  PROVLIN_ASSIGN_OR_RETURN(std::vector<SelectResult> results,
                           storage::ExecuteMultiSelect(*t, queries, zero_copy));
  // Per-probe content dedup in flattened query order — the same
  // discovery order the single-probe path produces.
  std::vector<std::set<const Row*, RowPtrLess>> seen(probes.size());
  for (size_t qi = 0; qi < results.size(); ++qi) {
    size_t i = owner[qi];
    for (const Row* row : results[qi].row_ptrs) {
      if (seen[i].insert(row).second) emit(i, *row);
    }
  }
  return Status::OK();
}

template <typename Record>
Result<std::vector<Record>> TraceStore::FindOneImpl(
    int kind, const char* table, const char* pair_col, const char* index_col,
    Record (*decode)(const storage::Row&), SymbolId run, IdPair pair,
    const Index& idx) const {
  PROVLIN_TRACE_SPAN("trace/find");
  ProbeMemo* memo = ProbeMemoScope::Active();
  ProbeMemo::Key key{kind, run, pair.Packed(), InternIndex(idx)};
  if (memo != nullptr) {
    memo->lookups_.fetch_add(1, std::memory_order_relaxed);
    MemoMx().lookups->Increment();
    common::MutexLock lock(memo->mu_);
    auto& map = memo->MapFor<Record>();
    auto it = map.find(key);
    if (it != map.end()) {
      memo->hits_.fetch_add(1, std::memory_order_relaxed);
      MemoMx().hits->Increment();
      return *it->second;
    }
  }
  std::vector<Record> out;
  PROVLIN_RETURN_IF_ERROR(
      OverlapProbe(table, run, pair_col, pair, index_col, idx,
                   [&](const Row& row) { out.push_back(decode(row)); }));
  if (memo != nullptr) {
    auto cached = std::make_shared<const std::vector<Record>>(out);
    common::MutexLock lock(memo->mu_);
    memo->MapFor<Record>().emplace(key, std::move(cached));
  }
  return out;
}

template <typename Record>
Result<std::vector<std::vector<Record>>> TraceStore::FindBatchImpl(
    int kind, const char* table, const char* pair_col, const char* index_col,
    Record (*decode)(const storage::Row&), SymbolId run,
    const std::vector<PortProbe>& probes) const {
  PROVLIN_TRACE_SPAN_VAR(span, "trace/find_batch");
  if (span.active()) {
    span.SetArgs("probes=" + std::to_string(probes.size()));
  }
  std::vector<std::vector<Record>> results(probes.size());
  ProbeMemo* memo = ProbeMemoScope::Active();

  std::vector<size_t> misses;
  std::vector<ProbeMemo::Key> keys;
  if (memo == nullptr) {
    misses.resize(probes.size());
    std::iota(misses.begin(), misses.end(), size_t{0});
  } else {
    keys.reserve(probes.size());
    for (const PortProbe& p : probes) {
      keys.push_back(ProbeMemo::Key{kind, run,
                                    IdPair{p.processor, p.port}.Packed(),
                                    InternIndex(p.index)});
    }
    memo->lookups_.fetch_add(probes.size(), std::memory_order_relaxed);
    MemoMx().lookups->Add(probes.size());
    common::MutexLock lock(memo->mu_);
    auto& map = memo->MapFor<Record>();
    uint64_t hits = 0;
    for (size_t i = 0; i < probes.size(); ++i) {
      auto it = map.find(keys[i]);
      if (it != map.end()) {
        ++hits;
        results[i] = *it->second;
      } else {
        misses.push_back(i);
      }
    }
    if (hits > 0) {
      memo->hits_.fetch_add(hits, std::memory_order_relaxed);
      MemoMx().hits->Add(hits);
    }
  }
  if (misses.empty()) return results;

  // When every probe missed (always true without a memo), probe the
  // store with the caller's vector directly — copying PortProbes costs
  // one heap allocation each for the embedded Index.
  std::vector<PortProbe> miss_probes;
  if (misses.size() < probes.size()) {
    miss_probes.reserve(misses.size());
    for (size_t i : misses) miss_probes.push_back(probes[i]);
  }
  PROVLIN_RETURN_IF_ERROR(OverlapProbeBatch(
      table, run, pair_col, index_col,
      miss_probes.empty() ? probes : miss_probes,
      [&](size_t m, const Row& row) {
        results[misses[m]].push_back(decode(row));
      }));
  if (memo != nullptr) {
    common::MutexLock lock(memo->mu_);
    auto& map = memo->MapFor<Record>();
    for (size_t i : misses) {
      map.emplace(keys[i],
                  std::make_shared<const std::vector<Record>>(results[i]));
    }
  }
  return results;
}

Result<std::vector<XformRecord>> TraceStore::FindProducing(
    SymbolId run, SymbolId processor, SymbolId out_port,
    const Index& q) const {
  return FindOneImpl<XformRecord>(kKindProducing, tables::kXform, "out",
                                  "out_index", &DecodeXform, run,
                                  IdPair{processor, out_port}, q);
}

Result<std::vector<std::vector<XformRecord>>> TraceStore::FindProducingBatch(
    SymbolId run, const std::vector<PortProbe>& probes) const {
  return FindBatchImpl<XformRecord>(kKindProducing, tables::kXform, "out",
                                    "out_index", &DecodeXform, run, probes);
}

Result<std::vector<std::vector<XformRecord>>> TraceStore::FindConsumingBatch(
    SymbolId run, const std::vector<PortProbe>& probes) const {
  return FindBatchImpl<XformRecord>(kKindConsuming, tables::kXform, "in",
                                    "in_index", &DecodeXform, run, probes);
}

Result<std::vector<std::vector<XferRecord>>> TraceStore::FindXfersIntoBatch(
    SymbolId run, const std::vector<PortProbe>& probes) const {
  return FindBatchImpl<XferRecord>(kKindXferInto, tables::kXfer, "dst",
                                   "dst_index", &DecodeXfer, run, probes);
}

Result<std::vector<std::vector<XferRecord>>> TraceStore::FindXfersFromBatch(
    SymbolId run, const std::vector<PortProbe>& probes) const {
  return FindBatchImpl<XferRecord>(kKindXferFrom, tables::kXfer, "src",
                                   "src_index", &DecodeXfer, run, probes);
}

Result<std::vector<XformRecord>> TraceStore::FindProducing(
    const std::string& run, const std::string& processor,
    const std::string& out_port, const Index& q) const {
  auto r = LookupSymbol(run);
  auto p = LookupSymbol(processor);
  auto o = LookupSymbol(out_port);
  if (!r || !p || !o) return std::vector<XformRecord>{};
  return FindProducing(*r, *p, *o, q);
}

Result<std::vector<XformRecord>> TraceStore::FindConsuming(
    SymbolId run, SymbolId processor, SymbolId in_port, const Index& p) const {
  return FindOneImpl<XformRecord>(kKindConsuming, tables::kXform, "in",
                                  "in_index", &DecodeXform, run,
                                  IdPair{processor, in_port}, p);
}

Result<std::vector<XformRecord>> TraceStore::FindConsuming(
    const std::string& run, const std::string& processor,
    const std::string& in_port, const Index& p) const {
  auto r = LookupSymbol(run);
  auto pr = LookupSymbol(processor);
  auto i = LookupSymbol(in_port);
  if (!r || !pr || !i) return std::vector<XformRecord>{};
  return FindConsuming(*r, *pr, *i, p);
}

Result<std::vector<XferRecord>> TraceStore::FindXfersInto(
    SymbolId run, SymbolId dst_proc, SymbolId dst_port, const Index& p) const {
  return FindOneImpl<XferRecord>(kKindXferInto, tables::kXfer, "dst",
                                 "dst_index", &DecodeXfer, run,
                                 IdPair{dst_proc, dst_port}, p);
}

Result<std::vector<XferRecord>> TraceStore::FindXfersInto(
    const std::string& run, const std::string& dst_proc,
    const std::string& dst_port, const Index& p) const {
  auto r = LookupSymbol(run);
  auto d = LookupSymbol(dst_proc);
  auto dp = LookupSymbol(dst_port);
  if (!r || !d || !dp) return std::vector<XferRecord>{};
  return FindXfersInto(*r, *d, *dp, p);
}

Result<std::vector<XferRecord>> TraceStore::FindXfersFrom(
    SymbolId run, SymbolId src_proc, SymbolId src_port, const Index& p) const {
  return FindOneImpl<XferRecord>(kKindXferFrom, tables::kXfer, "src",
                                 "src_index", &DecodeXfer, run,
                                 IdPair{src_proc, src_port}, p);
}

Result<std::vector<XferRecord>> TraceStore::FindXfersFrom(
    const std::string& run, const std::string& src_proc,
    const std::string& src_port, const Index& p) const {
  auto r = LookupSymbol(run);
  auto s = LookupSymbol(src_proc);
  auto sp = LookupSymbol(src_port);
  if (!r || !s || !sp) return std::vector<XferRecord>{};
  return FindXfersFrom(*r, *s, *sp, p);
}

Result<std::vector<XformRecord>> TraceStore::ScanXforms(
    const std::string& run) const {
  std::vector<XformRecord> out;
  std::optional<SymbolId> run_sym = LookupSymbol(run);
  if (!run_sym.has_value()) return out;
  Datum run_datum = SymDatum(*run_sym);
  PROVLIN_ASSIGN_OR_RETURN(const Table* xform, db_->GetTable(tables::kXform));
  for (uint64_t rid : xform->FullScan()) {
    PROVLIN_ASSIGN_OR_RETURN(Row row, xform->Get(rid));
    if (row[0] == run_datum) out.push_back(DecodeXform(row));
  }
  return out;
}

Result<std::vector<XferRecord>> TraceStore::ScanXfers(
    const std::string& run) const {
  std::vector<XferRecord> out;
  std::optional<SymbolId> run_sym = LookupSymbol(run);
  if (!run_sym.has_value()) return out;
  Datum run_datum = SymDatum(*run_sym);
  PROVLIN_ASSIGN_OR_RETURN(const Table* xfer, db_->GetTable(tables::kXfer));
  for (uint64_t rid : xfer->FullScan()) {
    PROVLIN_ASSIGN_OR_RETURN(Row row, xfer->Get(rid));
    if (row[0] == run_datum) out.push_back(DecodeXfer(row));
  }
  return out;
}

Result<std::string> TraceStore::GetValueRepr(SymbolId run,
                                             int64_t value_id) const {
  PROVLIN_ASSIGN_OR_RETURN(const Table* val, db_->GetTable(tables::kVal));
  PROVLIN_ASSIGN_OR_RETURN(
      std::vector<uint64_t> rids,
      val->IndexLookup(indexes::kValById, {SymDatum(run), Datum(value_id)}));
  if (rids.empty()) {
    return Status::NotFound("no value " + std::to_string(value_id) +
                            " in run '" + NameOf(run) + "'");
  }
  PROVLIN_ASSIGN_OR_RETURN(Row row, val->Get(rids.front()));
  return row[2].AsString();
}

Result<std::string> TraceStore::GetValueRepr(const std::string& run,
                                             int64_t value_id) const {
  std::optional<SymbolId> run_sym = LookupSymbol(run);
  if (!run_sym.has_value()) {
    return Status::NotFound("no value " + std::to_string(value_id) +
                            " in run '" + run + "'");
  }
  return GetValueRepr(*run_sym, value_id);
}

Result<Value> TraceStore::GetValue(const std::string& run,
                                   int64_t value_id) const {
  PROVLIN_ASSIGN_OR_RETURN(std::string repr, GetValueRepr(run, value_id));
  return ParseValue(repr);
}

Result<TraceCounts> TraceStore::CountRecords(const std::string& run) const {
  TraceCounts counts;
  std::optional<SymbolId> run_sym = LookupSymbol(run);
  if (!run_sym.has_value()) return counts;
  Datum run_datum = SymDatum(*run_sym);
  PROVLIN_ASSIGN_OR_RETURN(const Table* xform, db_->GetTable(tables::kXform));
  PROVLIN_ASSIGN_OR_RETURN(const Table* xfer, db_->GetTable(tables::kXfer));
  PROVLIN_ASSIGN_OR_RETURN(const Table* val, db_->GetTable(tables::kVal));
  auto count_in = [&](const Table* t) -> Result<size_t> {
    size_t n = 0;
    for (uint64_t rid : t->FullScan()) {
      PROVLIN_ASSIGN_OR_RETURN(Row row, t->Get(rid));
      if (row[0] == run_datum) ++n;
    }
    return n;
  };
  PROVLIN_ASSIGN_OR_RETURN(counts.xform_rows, count_in(xform));
  PROVLIN_ASSIGN_OR_RETURN(counts.xfer_rows, count_in(xfer));
  PROVLIN_ASSIGN_OR_RETURN(counts.value_rows, count_in(val));
  return counts;
}

Result<TraceCounts> TraceStore::CountAllRecords() const {
  TraceCounts counts;
  PROVLIN_ASSIGN_OR_RETURN(const Table* xform, db_->GetTable(tables::kXform));
  PROVLIN_ASSIGN_OR_RETURN(const Table* xfer, db_->GetTable(tables::kXfer));
  PROVLIN_ASSIGN_OR_RETURN(const Table* val, db_->GetTable(tables::kVal));
  counts.xform_rows = xform->num_rows();
  counts.xfer_rows = xfer->num_rows();
  counts.value_rows = val->num_rows();
  return counts;
}

}  // namespace provlin::provenance
