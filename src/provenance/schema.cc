#include "provenance/schema.h"

namespace provlin::provenance {

using storage::Column;
using storage::DatumKind;
using storage::IndexSpec;
using storage::IndexType;
using storage::Schema;
using storage::Table;

Status CreateProvenanceSchema(storage::Database* db) {
  {
    PROVLIN_ASSIGN_OR_RETURN(
        Table * runs,
        db->CreateTable(tables::kRuns,
                        Schema({{"run_id", DatumKind::kString},
                                {"workflow", DatumKind::kString},
                                {"seq", DatumKind::kInt}})));
    PROVLIN_RETURN_IF_ERROR(runs->CreateIndex(
        IndexSpec{indexes::kRunsById, {"run_id"}, IndexType::kHash}));
  }
  {
    PROVLIN_ASSIGN_OR_RETURN(
        Table * val,
        db->CreateTable(tables::kVal,
                        Schema({{"run_id", DatumKind::kString},
                                {"value_id", DatumKind::kInt},
                                {"repr", DatumKind::kString}})));
    PROVLIN_RETURN_IF_ERROR(val->CreateIndex(IndexSpec{
        indexes::kValById, {"run_id", "value_id"}, IndexType::kHash}));
  }
  {
    PROVLIN_ASSIGN_OR_RETURN(
        Table * xform,
        db->CreateTable(tables::kXform,
                        Schema({{"run_id", DatumKind::kString},
                                {"event_id", DatumKind::kInt},
                                {"processor", DatumKind::kString},
                                {"in_port", DatumKind::kString},
                                {"in_index", DatumKind::kString},
                                {"in_value", DatumKind::kInt},
                                {"out_port", DatumKind::kString},
                                {"out_index", DatumKind::kString},
                                {"out_value", DatumKind::kInt}})));
    PROVLIN_RETURN_IF_ERROR(xform->CreateIndex(IndexSpec{
        indexes::kXformOut,
        {"run_id", "processor", "out_port", "out_index"},
        IndexType::kBTree}));
    PROVLIN_RETURN_IF_ERROR(xform->CreateIndex(IndexSpec{
        indexes::kXformIn,
        {"run_id", "processor", "in_port", "in_index"},
        IndexType::kBTree}));
    PROVLIN_RETURN_IF_ERROR(xform->CreateIndex(IndexSpec{
        indexes::kXformEvent, {"run_id", "event_id"}, IndexType::kBTree}));
  }
  {
    PROVLIN_ASSIGN_OR_RETURN(
        Table * xfer,
        db->CreateTable(tables::kXfer,
                        Schema({{"run_id", DatumKind::kString},
                                {"src_proc", DatumKind::kString},
                                {"src_port", DatumKind::kString},
                                {"src_index", DatumKind::kString},
                                {"dst_proc", DatumKind::kString},
                                {"dst_port", DatumKind::kString},
                                {"dst_index", DatumKind::kString},
                                {"value_id", DatumKind::kInt}})));
    PROVLIN_RETURN_IF_ERROR(xfer->CreateIndex(IndexSpec{
        indexes::kXferDst,
        {"run_id", "dst_proc", "dst_port", "dst_index"},
        IndexType::kBTree}));
    // Forward (impact) queries hop arcs in flow direction.
    PROVLIN_RETURN_IF_ERROR(xfer->CreateIndex(IndexSpec{
        indexes::kXferSrc,
        {"run_id", "src_proc", "src_port", "src_index"},
        IndexType::kBTree}));
  }
  return Status::OK();
}

}  // namespace provlin::provenance
