#include "provenance/schema.h"

namespace provlin::provenance {

using storage::Column;
using storage::DatumKind;
using storage::IndexSpec;
using storage::IndexType;
using storage::Schema;
using storage::Table;

Status CreateProvenanceSchema(storage::Database* db) {
  {
    PROVLIN_ASSIGN_OR_RETURN(
        Table * runs,
        db->CreateTable(tables::kRuns,
                        Schema({{"run_id", DatumKind::kString},
                                {"workflow", DatumKind::kString},
                                {"seq", DatumKind::kInt}})));
    PROVLIN_RETURN_IF_ERROR(runs->CreateIndex(
        IndexSpec{indexes::kRunsById, {"run_id"}, IndexType::kHash}));
  }
  {
    PROVLIN_ASSIGN_OR_RETURN(
        Table * val,
        db->CreateTable(tables::kVal,
                        Schema({{"run", DatumKind::kInt},
                                {"value_id", DatumKind::kInt},
                                {"repr", DatumKind::kString}})));
    PROVLIN_RETURN_IF_ERROR(val->CreateIndex(
        IndexSpec{indexes::kValById, {"run", "value_id"}, IndexType::kHash}));
  }
  {
    PROVLIN_ASSIGN_OR_RETURN(
        Table * xform,
        db->CreateTable(tables::kXform,
                        Schema({{"run", DatumKind::kInt},
                                {"event_id", DatumKind::kInt},
                                {"in", DatumKind::kIdPair},
                                {"in_index", DatumKind::kIndexPath},
                                {"in_value", DatumKind::kInt},
                                {"out", DatumKind::kIdPair},
                                {"out_index", DatumKind::kIndexPath},
                                {"out_value", DatumKind::kInt}})));
    PROVLIN_RETURN_IF_ERROR(xform->CreateIndex(IndexSpec{
        indexes::kXformOut, {"run", "out", "out_index"}, IndexType::kBTree}));
    PROVLIN_RETURN_IF_ERROR(xform->CreateIndex(IndexSpec{
        indexes::kXformIn, {"run", "in", "in_index"}, IndexType::kBTree}));
    PROVLIN_RETURN_IF_ERROR(xform->CreateIndex(IndexSpec{
        indexes::kXformEvent, {"run", "event_id"}, IndexType::kBTree}));
  }
  {
    PROVLIN_ASSIGN_OR_RETURN(
        Table * xfer,
        db->CreateTable(tables::kXfer,
                        Schema({{"run", DatumKind::kInt},
                                {"src", DatumKind::kIdPair},
                                {"src_index", DatumKind::kIndexPath},
                                {"dst", DatumKind::kIdPair},
                                {"dst_index", DatumKind::kIndexPath},
                                {"value_id", DatumKind::kInt}})));
    PROVLIN_RETURN_IF_ERROR(xfer->CreateIndex(IndexSpec{
        indexes::kXferDst, {"run", "dst", "dst_index"}, IndexType::kBTree}));
    // Forward (impact) queries hop arcs in flow direction.
    PROVLIN_RETURN_IF_ERROR(xfer->CreateIndex(IndexSpec{
        indexes::kXferSrc, {"run", "src", "src_index"}, IndexType::kBTree}));
  }
  return Status::OK();
}

}  // namespace provlin::provenance
