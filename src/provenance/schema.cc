#include "provenance/schema.h"

namespace provlin::provenance {

using storage::Column;
using storage::Datum;
using storage::DatumKind;
using storage::IndexSpec;
using storage::IndexType;
using storage::Schema;
using storage::Table;

Status EnsureShardTables(storage::Database* db, size_t shard) {
  if (db->GetTable(ShardTableName(tables::kXform, shard)).ok()) {
    return Status::OK();
  }
  {
    PROVLIN_ASSIGN_OR_RETURN(
        Table * runs,
        db->CreateTable(ShardTableName(tables::kRuns, shard),
                        Schema({{"run_id", DatumKind::kString},
                                {"workflow", DatumKind::kString},
                                {"seq", DatumKind::kInt}})));
    PROVLIN_RETURN_IF_ERROR(runs->CreateIndex(
        IndexSpec{indexes::kRunsById, {"run_id"}, IndexType::kHash}));
  }
  {
    PROVLIN_ASSIGN_OR_RETURN(
        Table * val,
        db->CreateTable(ShardTableName(tables::kVal, shard),
                        Schema({{"run", DatumKind::kInt},
                                {"value_id", DatumKind::kInt},
                                {"repr", DatumKind::kString}})));
    PROVLIN_RETURN_IF_ERROR(val->CreateIndex(
        IndexSpec{indexes::kValById, {"run", "value_id"}, IndexType::kHash}));
  }
  {
    PROVLIN_ASSIGN_OR_RETURN(
        Table * xform,
        db->CreateTable(ShardTableName(tables::kXform, shard),
                        Schema({{"run", DatumKind::kInt},
                                {"event_id", DatumKind::kInt},
                                {"in", DatumKind::kIdPair},
                                {"in_index", DatumKind::kIndexPath},
                                {"in_value", DatumKind::kInt},
                                {"out", DatumKind::kIdPair},
                                {"out_index", DatumKind::kIndexPath},
                                {"out_value", DatumKind::kInt}})));
    PROVLIN_RETURN_IF_ERROR(xform->CreateIndex(IndexSpec{
        indexes::kXformOut, {"run", "out", "out_index"}, IndexType::kBTree}));
    PROVLIN_RETURN_IF_ERROR(xform->CreateIndex(IndexSpec{
        indexes::kXformIn, {"run", "in", "in_index"}, IndexType::kBTree}));
    PROVLIN_RETURN_IF_ERROR(xform->CreateIndex(IndexSpec{
        indexes::kXformEvent, {"run", "event_id"}, IndexType::kBTree}));
  }
  {
    PROVLIN_ASSIGN_OR_RETURN(
        Table * xfer,
        db->CreateTable(ShardTableName(tables::kXfer, shard),
                        Schema({{"run", DatumKind::kInt},
                                {"src", DatumKind::kIdPair},
                                {"src_index", DatumKind::kIndexPath},
                                {"dst", DatumKind::kIdPair},
                                {"dst_index", DatumKind::kIndexPath},
                                {"value_id", DatumKind::kInt}})));
    PROVLIN_RETURN_IF_ERROR(xfer->CreateIndex(IndexSpec{
        indexes::kXferDst, {"run", "dst", "dst_index"}, IndexType::kBTree}));
    // Forward (impact) queries hop arcs in flow direction.
    PROVLIN_RETURN_IF_ERROR(xfer->CreateIndex(IndexSpec{
        indexes::kXferSrc, {"run", "src", "src_index"}, IndexType::kBTree}));
  }
  return Status::OK();
}

std::string ShardTableName(const char* base, size_t shard) {
  if (shard == 0) return base;
  return std::string(base) + "#" + std::to_string(shard);
}

uint64_t RunShardHash(std::string_view run_id) {
  // FNV-1a 64: stable across processes, unlike std::hash — the same run
  // must land in the same shard after an image reload in a new process.
  uint64_t h = 1469598103934665603ull;
  for (char c : run_id) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return h;
}

Status CreateProvenanceSchema(storage::Database* db) {
  return CreateProvenanceSchema(db, 1);
}

Status CreateProvenanceSchema(storage::Database* db, size_t shards) {
  if (shards == 0) shards = 1;
  for (size_t k = 0; k < shards; ++k) {
    PROVLIN_RETURN_IF_ERROR(EnsureShardTables(db, k));
  }
  return WriteShardMeta(db, shards);
}

Result<size_t> DetectShardCount(const storage::Database& db) {
  auto meta = db.GetTable(tables::kShardMeta);
  if (meta.ok()) {
    for (uint64_t rid : meta.value()->FullScan()) {
      PROVLIN_ASSIGN_OR_RETURN(storage::Row row, meta.value()->Get(rid));
      int64_t n = row[0].AsInt();
      if (n < 1) return Status::Corruption("shard_meta records " +
                                           std::to_string(n) + " shards");
      return static_cast<size_t>(n);
    }
    return Status::Corruption("shard_meta table is empty");
  }
  // Legacy images carry no shard_meta: the unsuffixed tables, if
  // present, are a single-shard layout.
  return db.GetTable(tables::kXform).ok() ? size_t{1} : size_t{0};
}

Status WriteShardMeta(storage::Database* db, size_t shards) {
  if (shards <= 1) {
    // Single-shard layouts stay byte-identical to pre-sharding images:
    // no meta table at all.
    if (db->GetTable(tables::kShardMeta).ok()) {
      PROVLIN_RETURN_IF_ERROR(db->DropTable(tables::kShardMeta));
    }
    return Status::OK();
  }
  Table* meta = nullptr;
  auto existing = db->GetTable(tables::kShardMeta);
  if (existing.ok()) {
    meta = existing.value();
    std::vector<uint64_t> rids = meta->FullScan();
    for (uint64_t rid : rids) PROVLIN_RETURN_IF_ERROR(meta->Delete(rid));
  } else {
    PROVLIN_ASSIGN_OR_RETURN(
        meta, db->CreateTable(tables::kShardMeta,
                              Schema({{"shards", DatumKind::kInt}})));
  }
  return meta->Insert({Datum(static_cast<int64_t>(shards))}).status();
}

}  // namespace provlin::provenance
