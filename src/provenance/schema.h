#ifndef PROVLIN_PROVENANCE_SCHEMA_H_
#define PROVLIN_PROVENANCE_SCHEMA_H_

#include "common/result.h"
#include "storage/database.h"

namespace provlin::provenance {

/// Relational layout of the trace database (DESIGN.md §3). Every index
/// leads with run_id, mirroring the paper's remark that "trace IDs are
/// key attributes in our relational implementation".
///
///   runs (run_id, workflow, seq)
///   val  (run_id, value_id, repr)
///   xform(run_id, event_id, processor,
///         in_port, in_index, in_value,
///         out_port, out_index, out_value)
///       one row per (input-binding, output-binding) pair of one
///       elementary invocation — the extensional form of relation (1) of
///       §2.3. Workflow-input "source" rows carry NULL in_* columns.
///   xfer (run_id, src_proc, src_port, src_index,
///         dst_proc, dst_port, dst_index, value_id)
///       relation (2) of §2.3, one row per transferred element at the
///       producer's granularity; indices map identically across an arc.
///
/// Index paths are stored in the order-preserving fixed-radix encoding of
/// Index::Encode(), so prefix scans enumerate all finer-grained bindings.
namespace tables {
inline constexpr const char* kRuns = "runs";
inline constexpr const char* kVal = "val";
inline constexpr const char* kXform = "xform";
inline constexpr const char* kXfer = "xfer";
}  // namespace tables

namespace indexes {
inline constexpr const char* kValById = "val_by_id";
inline constexpr const char* kXformOut = "xform_out";
inline constexpr const char* kXformIn = "xform_in";
inline constexpr const char* kXformEvent = "xform_event";
inline constexpr const char* kXferDst = "xfer_dst";
inline constexpr const char* kXferSrc = "xfer_src";
inline constexpr const char* kRunsById = "runs_by_id";
}  // namespace indexes

/// Creates the four trace tables and their indexes in `db`.
Status CreateProvenanceSchema(storage::Database* db);

}  // namespace provlin::provenance

#endif  // PROVLIN_PROVENANCE_SCHEMA_H_
