#ifndef PROVLIN_PROVENANCE_SCHEMA_H_
#define PROVLIN_PROVENANCE_SCHEMA_H_

#include "common/result.h"
#include "storage/database.h"

namespace provlin::provenance {

/// Relational layout of the trace database (DESIGN.md §3). Every index
/// leads with the run, mirroring the paper's remark that "trace IDs are
/// key attributes in our relational implementation".
///
/// The trace tables are dictionary-encoded: processor/port names and run
/// labels live once in the database's SymbolTable, and the hot columns
/// carry dense integer ids. (processor, port) pairs pack into a single
/// kIdPair column per side, and index paths are kIndexPath cells whose
/// lexicographic order preserves the prefix-then-component order the old
/// string Encode() form provided — so B+-tree probes compare machine
/// words end to end.
///
///   runs (run_id TEXT, workflow TEXT, seq INT)
///       the only string-keyed trace table: the public boundary where
///       external run labels enter the system.
///   val  (run INT=SymbolId, value_id INT, repr TEXT)
///   xform(run INT=SymbolId, event_id INT,
///         in IDPAIR=(processor, in_port), in_index PATH, in_value INT,
///         out IDPAIR=(processor, out_port), out_index PATH, out_value INT)
///       one row per (input-binding, output-binding) pair of one
///       elementary invocation — the extensional form of relation (1) of
///       §2.3. Workflow-input "source" rows carry NULL in_* columns.
///   xfer (run INT=SymbolId, src IDPAIR, src_index PATH,
///         dst IDPAIR, dst_index PATH, value_id INT)
///       relation (2) of §2.3, one row per transferred element at the
///       producer's granularity; indices map identically across an arc.
namespace tables {
inline constexpr const char* kRuns = "runs";
inline constexpr const char* kVal = "val";
inline constexpr const char* kXform = "xform";
inline constexpr const char* kXfer = "xfer";
/// Single-row catalog table recording the shard count of a sharded
/// store image (absent in unsharded images, which predate sharding).
inline constexpr const char* kShardMeta = "shard_meta";
}  // namespace tables

namespace indexes {
inline constexpr const char* kValById = "val_by_id";
inline constexpr const char* kXformOut = "xform_out";
inline constexpr const char* kXformIn = "xform_in";
inline constexpr const char* kXformEvent = "xform_event";
inline constexpr const char* kXferDst = "xfer_dst";
inline constexpr const char* kXferSrc = "xfer_src";
inline constexpr const char* kRunsById = "runs_by_id";
}  // namespace indexes

/// Creates the four trace tables and their indexes in `db`.
Status CreateProvenanceSchema(storage::Database* db);

// --- run sharding (DESIGN.md §11) ------------------------------------------
//
// A sharded store keeps one physical copy of the trace tables per shard.
// Shard 0 keeps the legacy unsuffixed names above (so an N=1 store is
// byte-identical to the historical layout); shard k > 0 uses the base
// name suffixed with "#k" ("xform#2"). Every table keys rows by run in
// column 0, so a run's rows live wholly inside the shard its id hashes
// to — the property the fan-out/merge probe layer and per-shard WALs
// rely on.

/// Physical table name of `base` in shard `shard`.
std::string ShardTableName(const char* base, size_t shard);

/// Stable hash of a run id, identical across processes and platforms
/// (FNV-1a 64); the owning shard of a run is RunShardHash(id) % N.
uint64_t RunShardHash(std::string_view run_id);

/// Creates the trace tables and indexes for `shards` shards, plus the
/// shard_meta record when `shards` > 1.
Status CreateProvenanceSchema(storage::Database* db, size_t shards);

/// Creates shard `shard`'s copy of the four trace tables if missing
/// (used by resharding to grow a layout in place). Index names need no
/// suffixing: IndexSpec names are scoped to their table.
Status EnsureShardTables(storage::Database* db, size_t shard);

/// Shard count recorded in `db`: the shard_meta row if present, 1 if
/// the (legacy, unsuffixed) schema exists without one, 0 if the
/// provenance schema has not been created at all.
Result<size_t> DetectShardCount(const storage::Database& db);

/// Rewrites the shard_meta record (creating or dropping the table as
/// needed) to record `shards`.
Status WriteShardMeta(storage::Database* db, size_t shards);

}  // namespace provlin::provenance

#endif  // PROVLIN_PROVENANCE_SCHEMA_H_
