#include "provenance/opm_export.h"

#include <map>
#include <set>
#include <sstream>

#include "provenance/schema.h"

namespace provlin::provenance {
namespace {

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

struct Artifact {
  std::string processor;
  std::string port;
  Index index;
  int64_t value_id = -1;

  std::string Key() const {
    return processor + ":" + port + index.ToString();
  }
  bool operator<(const Artifact& o) const { return Key() < o.Key(); }
};

}  // namespace

Result<std::string> ExportOpmJson(const TraceStore& store,
                                  const std::string& run) {
  std::set<Artifact> artifacts;
  // (process id, artifact key, role) triples.
  std::vector<std::tuple<std::string, std::string, std::string>> used;
  std::vector<std::tuple<std::string, std::string, std::string>> generated;
  std::vector<std::pair<std::string, std::string>> derived;
  std::map<std::string, std::string> processes;  // id -> processor

  // Records carry interned ids; the export is a render boundary, so
  // resolve names once per record here.
  PROVLIN_ASSIGN_OR_RETURN(std::vector<XformRecord> xforms,
                           store.ScanXforms(run));
  for (const XformRecord& rec : xforms) {
    std::string proc = store.NameOf(rec.processor);
    std::string pid = "p" + std::to_string(rec.event_id);
    processes[pid] = proc;
    if (rec.has_in) {
      std::string port = store.NameOf(rec.in_port);
      Artifact a{proc, port, rec.in_index, rec.in_value};
      used.emplace_back(pid, a.Key(), port);
      artifacts.insert(std::move(a));
    }
    if (rec.has_out) {
      std::string port = store.NameOf(rec.out_port);
      Artifact a{proc, port, rec.out_index, rec.out_value};
      generated.emplace_back(a.Key(), pid, port);
      artifacts.insert(std::move(a));
    }
  }
  PROVLIN_ASSIGN_OR_RETURN(std::vector<XferRecord> xfers,
                           store.ScanXfers(run));
  for (const XferRecord& rec : xfers) {
    Artifact src{store.NameOf(rec.src_proc), store.NameOf(rec.src_port),
                 rec.src_index, rec.value_id};
    Artifact dst{store.NameOf(rec.dst_proc), store.NameOf(rec.dst_port),
                 rec.dst_index, rec.value_id};
    derived.emplace_back(dst.Key(), src.Key());
    artifacts.insert(src);
    artifacts.insert(dst);
  }
  if (processes.empty() && artifacts.empty()) {
    return Status::NotFound("run '" + run + "' has no trace records");
  }

  std::ostringstream out;
  out << "{\n  \"opm\": \"1.1\",\n  \"run\": \"" << JsonEscape(run)
      << "\",\n";

  out << "  \"artifacts\": {\n";
  bool first = true;
  for (const Artifact& a : artifacts) {
    if (!first) out << ",\n";
    first = false;
    std::string repr;
    if (a.value_id >= 0) {
      auto value = store.GetValueRepr(run, a.value_id);
      if (value.ok()) repr = *value;
    }
    out << "    \"" << JsonEscape(a.Key()) << "\": {\"processor\": \""
        << JsonEscape(a.processor) << "\", \"port\": \""
        << JsonEscape(a.port) << "\", \"index\": \""
        << JsonEscape(a.index.ToString()) << "\", \"value\": \""
        << JsonEscape(repr) << "\"}";
  }
  out << "\n  },\n";

  out << "  \"processes\": {\n";
  first = true;
  for (const auto& [pid, proc] : processes) {
    if (!first) out << ",\n";
    first = false;
    out << "    \"" << pid << "\": {\"processor\": \"" << JsonEscape(proc)
        << "\"}";
  }
  out << "\n  },\n";

  auto emit_edges =
      [&](const char* name,
          const std::vector<std::tuple<std::string, std::string,
                                       std::string>>& edges,
          const char* from_field, const char* to_field) {
        out << "  \"" << name << "\": [\n";
        for (size_t i = 0; i < edges.size(); ++i) {
          out << "    {\"" << from_field << "\": \""
              << JsonEscape(std::get<0>(edges[i])) << "\", \"" << to_field
              << "\": \"" << JsonEscape(std::get<1>(edges[i]))
              << "\", \"role\": \"" << JsonEscape(std::get<2>(edges[i]))
              << "\"}" << (i + 1 < edges.size() ? "," : "") << "\n";
        }
        out << "  ],\n";
      };
  emit_edges("used", used, "process", "artifact");
  emit_edges("wasGeneratedBy", generated, "artifact", "process");

  out << "  \"wasDerivedFrom\": [\n";
  for (size_t i = 0; i < derived.size(); ++i) {
    out << "    {\"artifact\": \"" << JsonEscape(derived[i].first)
        << "\", \"source\": \"" << JsonEscape(derived[i].second) << "\"}"
        << (i + 1 < derived.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  return out.str();
}

}  // namespace provlin::provenance
