#include "provenance/recorder.h"

#include "common/tracing.h"
#include "workflow/dataflow.h"

namespace provlin::provenance {

Result<int64_t> TraceRecorder::Intern(const Value& v) {
  return store_->InternValue(run_id_, v.ToString());
}

void TraceRecorder::OnRunStart(const std::string& run_id,
                               const workflow::Dataflow& dataflow) {
  run_id_ = run_id;
  run_sym_ = store_->Intern(run_id);
  next_event_id_ = 0;
  Latch(store_->InsertRun(run_id, dataflow.name()));
}

void TraceRecorder::OnWorkflowInput(const std::string& port,
                                    const Value& value) {
  auto id = Intern(value);
  if (!id.ok()) {
    Latch(id.status());
    return;
  }
  XformRecord rec;
  rec.run = run_sym_;
  rec.event_id = next_event_id_++;
  rec.processor = store_->Intern(workflow::kWorkflowProcessor);
  rec.has_in = false;
  rec.has_out = true;
  rec.out_port = store_->Intern(port);
  rec.out_index = Index::Empty();
  rec.out_value = id.value();
  Latch(store_->InsertXform(rec));
}

void TraceRecorder::OnXform(const std::string& processor,
                            const std::vector<engine::BindingEvent>& inputs,
                            const std::vector<engine::BindingEvent>& outputs) {
  PROVLIN_TRACE_SPAN_VAR(span, "recorder/xform");
  if (span.active()) span.SetArgs("processor=" + processor);
  int64_t event_id = next_event_id_++;
  SymbolId proc_sym = store_->Intern(processor);

  auto emit = [&](const engine::BindingEvent* in,
                  const engine::BindingEvent* out) {
    XformRecord rec;
    rec.run = run_sym_;
    rec.event_id = event_id;
    rec.processor = proc_sym;
    if (in != nullptr) {
      auto id = Intern(in->value);
      if (!id.ok()) {
        Latch(id.status());
        return;
      }
      rec.has_in = true;
      rec.in_port = store_->Intern(in->port.port);
      rec.in_index = in->index;
      rec.in_value = id.value();
    }
    if (out != nullptr) {
      auto id = Intern(out->value);
      if (!id.ok()) {
        Latch(id.status());
        return;
      }
      rec.has_out = true;
      rec.out_port = store_->Intern(out->port.port);
      rec.out_index = out->index;
      rec.out_value = id.value();
    }
    Latch(store_->InsertXform(rec));
  };

  if (inputs.empty() && outputs.empty()) return;
  if (inputs.empty()) {
    for (const auto& out : outputs) emit(nullptr, &out);
    return;
  }
  if (outputs.empty()) {
    for (const auto& in : inputs) emit(&in, nullptr);
    return;
  }
  for (const auto& in : inputs) {
    for (const auto& out : outputs) emit(&in, &out);
  }
}

void TraceRecorder::OnXfer(const workflow::PortRef& src,
                           const workflow::PortRef& dst, const Index& index,
                           const Value& element) {
  PROVLIN_TRACE_SPAN("recorder/xfer");
  auto id = Intern(element);
  if (!id.ok()) {
    Latch(id.status());
    return;
  }
  XferRecord rec;
  rec.run = run_sym_;
  rec.src_proc = store_->Intern(src.processor);
  rec.src_port = store_->Intern(src.port);
  rec.src_index = index;
  rec.dst_proc = store_->Intern(dst.processor);
  rec.dst_port = store_->Intern(dst.port);
  rec.dst_index = index;
  rec.value_id = id.value();
  Latch(store_->InsertXfer(rec));
}

void TraceRecorder::OnRunEnd(const std::string& run_id, const Status& status) {
  (void)run_id;
  // Barrier async ingest: any error a shard's writer thread latched
  // while applying this run's rows surfaces on the recorder, not later.
  Latch(store_->Flush());
  Latch(status);
}

}  // namespace provlin::provenance
