#ifndef PROVLIN_PROVENANCE_RECORDER_H_
#define PROVLIN_PROVENANCE_RECORDER_H_

#include <string>

#include "engine/observer.h"
#include "provenance/trace_store.h"

namespace provlin::provenance {

/// Execution observer that persists the observable events of a run into
/// the relational trace store:
///
///   * each elementary xform event InB_P -> OutB_P is flattened into
///     |InB| x |OutB| dependency rows (|OutB| source rows when a
///     processor has no inputs);
///   * each workflow-input binding becomes a "source" xform row
///     (processor = "workflow", NULL in_* columns) so lineage queries can
///     terminate at — and retrieve — the original user inputs;
///   * each arc transfer becomes one xfer row at the producer's
///     granularity;
///   * every distinct element value is interned once per run in `val`.
///
/// Observer callbacks cannot fail, so the first storage error is latched
/// and exposed via status(); callers check it when the run completes.
class TraceRecorder : public engine::ExecutionObserver {
 public:
  explicit TraceRecorder(TraceStore* store) : store_(store) {}

  const Status& status() const { return status_; }

  void OnRunStart(const std::string& run_id,
                  const workflow::Dataflow& dataflow) override;
  void OnWorkflowInput(const std::string& port, const Value& value) override;
  void OnXform(const std::string& processor,
               const std::vector<engine::BindingEvent>& inputs,
               const std::vector<engine::BindingEvent>& outputs) override;
  void OnXfer(const workflow::PortRef& src, const workflow::PortRef& dst,
              const Index& index, const Value& element) override;
  void OnRunEnd(const std::string& run_id, const Status& status) override;

 private:
  void Latch(const Status& st) {
    if (status_.ok() && !st.ok()) status_ = st;
  }
  Result<int64_t> Intern(const Value& v);

  TraceStore* store_;
  std::string run_id_;
  /// Interned once per run; records carry ids, not strings.
  SymbolId run_sym_ = common::kNoSymbol;
  int64_t next_event_id_ = 0;
  Status status_;
};

}  // namespace provlin::provenance

#endif  // PROVLIN_PROVENANCE_RECORDER_H_
