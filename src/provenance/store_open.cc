#include "provenance/store_open.h"

#include <fstream>
#include <utility>

namespace provlin::provenance {

Result<OpenedStore> OpenStore(const StoreOptions& options) {
  OpenedStore out;
  out.options_ = options;
  out.db_ = std::make_unique<storage::Database>();
  if (!options.db_path.empty()) {
    std::ifstream probe(options.db_path);
    if (probe.good()) {
      PROVLIN_RETURN_IF_ERROR(out.db_->Load(options.db_path));
    }
  }
  PROVLIN_ASSIGN_OR_RETURN(
      TraceStore store,
      TraceStore::Open(out.db_.get(), options.ToTraceStoreOptions()));
  out.store_.emplace(std::move(store));
  if (!options.wal_base.empty()) {
    PROVLIN_RETURN_IF_ERROR(out.store_->AttachWalFiles(options.wal_base));
  }
  return out;
}

Status OpenedStore::Save() {
  PROVLIN_RETURN_IF_ERROR(store_->Flush());
  if (options_.db_path.empty()) return Status::OK();
  return db_->Save(options_.db_path);
}

}  // namespace provlin::provenance
