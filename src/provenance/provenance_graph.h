#ifndef PROVLIN_PROVENANCE_PROVENANCE_GRAPH_H_
#define PROVLIN_PROVENANCE_PROVENANCE_GRAPH_H_

#include <map>
#include <set>
#include <string>
#include <vector>

#include "common/result.h"
#include "provenance/trace_store.h"

namespace provlin::provenance {

/// A node of the materialized provenance graph: one binding
/// ⟨P:X[p]⟩ observed in the trace (paper §2.4 builds the graph exactly
/// this way — bindings as nodes, xform/xfer events as arcs).
struct BindingNode {
  std::string processor;
  std::string port;
  Index index;

  std::string ToString() const {
    return processor + ":" + port + index.ToString();
  }
  bool operator<(const BindingNode& o) const {
    if (processor != o.processor) return processor < o.processor;
    if (port != o.port) return port < o.port;
    return index < o.index;
  }
  bool operator==(const BindingNode& o) const {
    return processor == o.processor && port == o.port && index == o.index;
  }
};

enum class EdgeKind {
  kXform,   // dependency through an elementary invocation
  kXfer,    // transfer along an arc
  kRefine,  // coarse binding to a finer sub-binding of the same port
};

struct ProvenanceEdge {
  BindingNode from;
  BindingNode to;
  EdgeKind kind = EdgeKind::kXform;
};

struct ProvenanceGraphStats {
  size_t nodes = 0;
  size_t xform_edges = 0;
  size_t xfer_edges = 0;
  size_t refine_edges = 0;
  size_t source_nodes = 0;  // no incoming edges
  size_t sink_nodes = 0;    // no outgoing edges
};

/// The explicit provenance graph of one run, materialized from the
/// trace relations. This is a *post-mortem analysis and debugging* tool
/// (statistics, Graphviz export) — the lineage engines never build it;
/// avoiding exactly this materialization is the paper's point.
class ProvenanceGraph {
 public:
  /// Scans the run's trace rows and assembles the graph. Bindings of the
  /// same port at different granularities (a whole-value transfer next
  /// to per-element consumptions) are linked by refinement edges from
  /// each binding to its finest recorded proper prefix, so the graph is
  /// connected exactly where coverage makes dependencies flow.
  static Result<ProvenanceGraph> Build(const TraceStore& store,
                                       const std::string& run);

  const std::vector<ProvenanceEdge>& edges() const { return edges_; }
  const std::set<BindingNode>& nodes() const { return nodes_; }

  ProvenanceGraphStats Stats() const;

  /// Graphviz rendering: xform edges solid, xfer edges dashed,
  /// workflow-port nodes boxed.
  std::string ToDot(const std::string& graph_name = "provenance") const;

 private:
  std::set<BindingNode> nodes_;
  std::vector<ProvenanceEdge> edges_;
};

}  // namespace provlin::provenance

#endif  // PROVLIN_PROVENANCE_PROVENANCE_GRAPH_H_
