#ifndef PROVLIN_PROVENANCE_TRACE_STORE_H_
#define PROVLIN_PROVENANCE_TRACE_STORE_H_

#include <atomic>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <tuple>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/annotations.h"
#include "common/interner.h"
#include "common/sync.h"
#include "common/result.h"
#include "storage/database.h"
#include "storage/query.h"
#include "storage/wal.h"
#include "values/index.h"
#include "values/value.h"

namespace provlin::provenance {

using common::IndexId;
using common::SymbolId;

/// One xform dependency row, decoded. Names are interned: the run,
/// processor, and port fields hold SymbolIds from the owning database's
/// SymbolTable (resolve with TraceStore::NameOf). in_* fields are absent
/// for workflow-input source rows (and out_* for sink-only rows).
struct XformRecord {
  SymbolId run = common::kNoSymbol;
  int64_t event_id = 0;
  SymbolId processor = common::kNoSymbol;
  bool has_in = false;
  SymbolId in_port = common::kNoSymbol;
  Index in_index;
  int64_t in_value = -1;
  bool has_out = false;
  SymbolId out_port = common::kNoSymbol;
  Index out_index;
  int64_t out_value = -1;
};

/// One xfer row, decoded (interned names, as in XformRecord).
struct XferRecord {
  SymbolId run = common::kNoSymbol;
  SymbolId src_proc = common::kNoSymbol;
  SymbolId src_port = common::kNoSymbol;
  Index src_index;
  SymbolId dst_proc = common::kNoSymbol;
  SymbolId dst_port = common::kNoSymbol;
  Index dst_index;
  int64_t value_id = -1;
};

/// One probe of a batched lineage level: which (processor, port) pair of
/// which run is asked about, at which index. The same shape serves all
/// four overlap probes (producing / consuming / xfer-into / xfer-from).
/// Probes are run-qualified so one batch may span runs — and therefore
/// shards: the store groups a batch by owning shard, fans the per-shard
/// sub-batches out, and merges results back in probe order.
struct PortProbe {
  SymbolId run = common::kNoSymbol;
  SymbolId processor = common::kNoSymbol;
  SymbolId port = common::kNoSymbol;
  Index index;
};

/// Per-batch dedup memo for identical trace probes. The LineageService
/// installs one per batch (via ProbeMemoScope): the first request to
/// issue a given (probe kind, run, processor, port, index) pays the
/// storage probes, every later identical probe in the batch is answered
/// from memory. Internally synchronized — one memo is shared by all
/// workers of a batch.
class ProbeMemo {
 public:
  ProbeMemo() = default;
  ProbeMemo(const ProbeMemo&) = delete;
  ProbeMemo& operator=(const ProbeMemo&) = delete;

  /// Probes answered from the memo / total memo consultations.
  uint64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  uint64_t lookups() const { return lookups_.load(std::memory_order_relaxed); }

 private:
  friend class TraceStore;
  /// (probe kind, run, packed (processor, port), index id).
  using Key = std::tuple<int, SymbolId, uint64_t, IndexId>;

  /// Selects the map for a record type; REQUIRES makes every access
  /// site prove it holds the memo mutex (the maps are only reachable
  /// through this accessor from TraceStore's memo-aware probes).
  template <typename Record>
  auto& MapFor() REQUIRES(mu_) {
    if constexpr (std::is_same_v<Record, XformRecord>) {
      return xform_;
    } else {
      return xfer_;
    }
  }

  common::Mutex mu_{common::LockRank::kProbeMemo};
  std::map<Key, std::shared_ptr<const std::vector<XformRecord>>> xform_
      GUARDED_BY(mu_);
  std::map<Key, std::shared_ptr<const std::vector<XferRecord>>> xfer_
      GUARDED_BY(mu_);
  /// Hit/lookup tallies stay relaxed atomics — bumped outside mu_ on
  /// the probe fast path, racy-exact under concurrency like TableStats.
  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> lookups_{0};
};

/// RAII installer: makes `memo` the calling thread's active probe memo
/// for the scope's lifetime (scopes nest; the previous memo is restored
/// on destruction). TraceStore's id-space Find* probes consult the
/// active memo transparently.
class ProbeMemoScope {
 public:
  explicit ProbeMemoScope(ProbeMemo* memo);
  ~ProbeMemoScope();
  ProbeMemoScope(const ProbeMemoScope&) = delete;
  ProbeMemoScope& operator=(const ProbeMemoScope&) = delete;

  /// The calling thread's active memo (nullptr outside any scope).
  static ProbeMemo* Active();

 private:
  ProbeMemo* prev_;
};

/// Per-shard / per-tier attribution of one request's physical probe
/// work, filled in by TraceStore's Find* probes when a scope is
/// installed (DESIGN.md §14). Only *physical* probes are credited: a
/// probe answered from the batch's ProbeMemo touched no storage and
/// contributes nothing here (the memo hit is visible separately via
/// ProbeMemo::hits()). Unlike ProbeMemo this is not internally
/// synchronized — a breakdown belongs to exactly one request and is
/// only ever credited on the thread that installed the scope (the
/// batch fan-out harvests worker deltas back to the caller thread
/// first, the same path that keeps ThreadStats attribution exact).
struct ProbeBreakdown {
  struct PerShard {
    uint64_t probes = 0;    ///< logical index probes issued to the shard
    uint64_t descents = 0;  ///< physical descents (tree or segment search)
    uint64_t rows = 0;      ///< rows/entries examined
  };
  std::map<uint32_t, PerShard> shards;
  uint64_t sealed_probes = 0;  ///< probes answered by sealed segments
  uint64_t sealed_rows = 0;    ///< entries examined inside segments

  void CreditShard(uint32_t shard, uint64_t probes, uint64_t descents,
                   uint64_t rows) {
    PerShard& s = shards[shard];
    s.probes += probes;
    s.descents += descents;
    s.rows += rows;
  }
  void CreditSealed(uint64_t probes, uint64_t rows) {
    sealed_probes += probes;
    sealed_rows += rows;
  }
};

/// RAII installer mirroring ProbeMemoScope: makes `breakdown` the
/// calling thread's active probe breakdown (scopes nest; the previous
/// breakdown is restored on destruction).
class ProbeBreakdownScope {
 public:
  explicit ProbeBreakdownScope(ProbeBreakdown* breakdown);
  ~ProbeBreakdownScope();
  ProbeBreakdownScope(const ProbeBreakdownScope&) = delete;
  ProbeBreakdownScope& operator=(const ProbeBreakdownScope&) = delete;

  /// The calling thread's active breakdown (nullptr outside any scope).
  static ProbeBreakdown* Active();

 private:
  ProbeBreakdown* prev_;
};

/// Per-run record counts (the paper's "number of trace database
/// records", Table 1: xform + xfer rows).
struct TraceCounts {
  size_t xform_rows = 0;
  size_t xfer_rows = 0;
  size_t value_rows = 0;

  size_t TotalDependencyRecords() const { return xform_rows + xfer_rows; }
};

/// When (if ever) runs are sealed into compressed immutable segments
/// (DESIGN.md §13). Sealing is run-granular and per-table: a sealed
/// run's xform/xfer rows leave the mutable B+-tree tier and live in a
/// storage::Segment blob; probes against it decode compressed blocks
/// in place. Writing trace rows to a sealed run transparently unseals
/// it back into the hot tier first.
enum class CompressMode {
  /// Never seal. Opening an image that contains segments decodes them
  /// back into the hot tier (the escape hatch).
  kOff = 0,
  /// Seal cold runs: at Open every run except the latest per shard,
  /// and at InsertRun every prior run on the new run's shard. The run
  /// being captured stays hot.
  kSeal = 1,
  /// Seal every run, including the latest, at Open and on Flush().
  /// Maximal footprint reduction; appends pay an unseal.
  kAlways = 2,
};

/// How a TraceStore is opened (DESIGN.md §11).
struct TraceStoreOptions {
  /// Number of run shards. 0 = auto: the count recorded in the database
  /// image if one exists, else the PROVLIN_TEST_SHARDS environment
  /// variable, else 1. An explicit count that differs from the image's
  /// triggers resharding: rows migrate to the shard their run hashes to
  /// under the new count.
  size_t shards = 0;
  /// When true, each shard runs a dedicated writer thread draining a
  /// bounded ingest queue: Insert{Xform,Xfer} and value-row writes
  /// enqueue and return, and WAL append + B+-tree insert happen on the
  /// shard's writer. Errors latch per shard and surface on the next
  /// Flush() (or any synchronous op on that shard). When false, writes
  /// apply synchronously on the calling thread — the legacy behavior.
  bool async_ingest = false;
  /// Segment sealing policy. Unset = the PROVLIN_TEST_COMPRESS
  /// environment variable ("seal" / "always"), else kOff.
  std::optional<CompressMode> compress;
};

/// Typed query surface over the relational trace database — since the
/// run-sharding refactor, a routing facade over N physical shards
/// (ShardedTraceStore in DESIGN.md §11). Each shard owns its own copy
/// of the trace tables (and B+-trees), optionally its own WAL file and
/// ingest queue + writer thread; a run's rows live wholly in the shard
/// its id hashes to. Single-run operations route to the owning shard;
/// the batch finders group probes by shard, fan per-shard MultiSeek
/// sub-batches out over an internal pool, and merge results back in
/// the caller's original probe order — so the lineage engines see
/// byte-identical bindings at any shard count.
///
/// All reads go through the declarative SelectQuery layer, so every
/// trace access uses an index (asserted by tests) — the property the
/// paper's evaluation relies on.
///
/// Identifier boundary: the hot query surface speaks SymbolIds; the
/// string overloads are thin shims that resolve names once and delegate.
/// A string that was never recorded simply yields empty results.
///
/// Thread safety: reads are safe concurrently with ingest — each shard
/// guards its tables with a reader/writer lock, and every read first
/// waits for the rows enqueued before it started (read-your-writes per
/// shard). Maintenance ops (InsertRun, DeleteRun) are synchronous and
/// serialize against the owning shard.
class TraceStore {
 public:
  /// Wraps an existing database; creates the provenance schema if the
  /// tables are missing. The database must outlive the store.
  static Result<TraceStore> Open(storage::Database* db);
  static Result<TraceStore> Open(storage::Database* db,
                                 const TraceStoreOptions& options);

  TraceStore(TraceStore&& other) noexcept;
  TraceStore& operator=(TraceStore&& other) noexcept;
  TraceStore(const TraceStore&) = delete;
  TraceStore& operator=(const TraceStore&) = delete;
  /// Drains and joins any writer threads.
  ~TraceStore();

  // --- sharding -----------------------------------------------------------

  /// Number of run shards this store routes over (≥ 1).
  size_t shard_count() const;

  /// Owning shard of a run id: RunShardHash(run_id) % shard_count().
  size_t ShardOfRun(std::string_view run_id) const;

  /// Drains every shard's ingest queue and returns the first latched
  /// ingest error (resetting none — a failed store stays failed).
  /// A no-op returning OK for synchronous stores.
  Status Flush();

  // --- compressed segment tier (DESIGN.md §13) -----------------------------

  /// The sealing policy this store was opened with.
  CompressMode compress_mode() const;

  /// Seals one run's trace rows into compressed segments, regardless of
  /// the store's mode (manual maintenance). Idempotent for an already
  /// sealed run; NotFound when the run does not exist.
  Status SealRun(const std::string& run_id);

  /// Seals every run on every shard.
  Status SealAllRuns();

  /// Approximate resident footprint of the trace tables (xform + xfer),
  /// split by tier. Hot covers the mutable tables' rows and B+-trees;
  /// sealed covers the compressed segment blobs plus their decode-ready
  /// headers. The bytes-per-row ratio between the tiers is the
  /// compression headline EXPERIMENTS.md reports.
  struct TierBytes {
    size_t hot_bytes = 0;
    size_t hot_rows = 0;
    size_t sealed_bytes = 0;
    size_t sealed_rows = 0;
  };
  TierBytes ApproxMemory() const;

  // --- identifier dictionary ----------------------------------------------

  /// Interns `name` in the owning database's symbol table. Const because
  /// the dictionaries live in the database, which the store merely
  /// points to; planners may intern from read paths without snapshotting
  /// names up front. Newly minted symbols are flushed to the WAL as
  /// definition records just before the next logged row (ids are
  /// positional, so replay re-interns them in order).
  SymbolId Intern(std::string_view name) const;

  /// Id of `name` if already interned (pure read; never grows tables).
  std::optional<SymbolId> LookupSymbol(std::string_view name) const;

  /// Resolves an id back to its string (render boundary).
  const std::string& NameOf(SymbolId id) const;

  /// Dense id of an index path, for lineage-plan cache keys.
  IndexId InternIndex(const Index& index) const;

  // --- write side (used by TraceRecorder) ---------------------------------

  /// Attaches a single external write-ahead log shared by every shard:
  /// subsequent trace-row inserts are logged (and flushed) before they
  /// reach the tables, making capture crash-safe. Appends from multiple
  /// shards serialize on an internal mutex. Pass nullptr to detach. The
  /// WAL must outlive the store.
  void AttachWal(storage::WriteAheadLog* wal);

  /// Attaches one store-owned WAL file per shard under `base`: shard 0
  /// logs to `base` itself (so an unsharded store produces exactly the
  /// legacy single-file layout), shard k to storage::ShardWalPath(base,
  /// k), and a manifest recording the shard count is written next to
  /// them when the store has more than one shard. Writer threads append
  /// to their own file without cross-shard contention.
  Status AttachWalFiles(const std::string& base);

  /// Replays a WAL produced by a (possibly crashed) capture session into
  /// `db`, creating the provenance schema when missing. Returns the
  /// number of rows applied. Symbol-definition records re-intern names
  /// in logged order, so replayed rows resolve to the same ids. If a
  /// manifest exists next to `wal_path`, every shard file it names is
  /// replayed; rows route to the shard their run hashes to under the
  /// target schema's shard count (`shards` = 0 keeps the schema already
  /// in `db`, else the manifest's count, else 1), so replaying into a
  /// differently-sharded database reshards on the fly.
  static Result<size_t> ReplayWal(const std::string& wal_path,
                                  storage::Database* db, size_t shards = 0);

  Status InsertRun(const std::string& run_id, const std::string& workflow);

  /// Removes a run and all of its trace rows (maintenance: traces
  /// accumulate over many runs and old ones eventually get pruned).
  /// Returns the number of rows removed; NotFound when the run does not
  /// exist. Dictionary entries are append-only and survive (ids must
  /// stay stable for other runs). Only the owning shard is touched: its
  /// tables are swept, and a deletion record is appended to *its* WAL
  /// only, so replay skips the deleted rows without rewriting other
  /// shards' logs.
  Result<size_t> DeleteRun(const std::string& run_id);

  /// Workflow name a run was recorded under.
  Result<std::string> RunWorkflow(const std::string& run_id) const;
  /// Interns `repr` for the run, returning its value id (dedups).
  Result<int64_t> InternValue(const std::string& run_id,
                              const std::string& repr);
  Status InsertXform(const XformRecord& rec);
  Status InsertXfer(const XferRecord& rec);

  // --- read side (used by the lineage engines) ----------------------------

  /// All runs recorded, in insertion order (merged across shards by the
  /// global run sequence number).
  Result<std::vector<std::string>> ListRuns() const;

  /// xform rows of `run`/`processor` whose OUT binding *overlaps* index
  /// `q` on `out_port`: rows with out_index equal to q, a proper prefix
  /// of q (a coarser binding that covers q), or an extension of q (finer
  /// bindings below q). This is the inversion probe of the naïve
  /// traversal (Def. 1, xform case).
  Result<std::vector<XformRecord>> FindProducing(SymbolId run,
                                                 SymbolId processor,
                                                 SymbolId out_port,
                                                 const Index& q) const;
  Result<std::vector<XformRecord>> FindProducing(const std::string& run,
                                                 const std::string& processor,
                                                 const std::string& out_port,
                                                 const Index& q) const;

  /// Same overlap semantics on the IN side: the focused trace query
  /// Q(P, X_i, p_i) of Alg. 2.
  Result<std::vector<XformRecord>> FindConsuming(SymbolId run,
                                                 SymbolId processor,
                                                 SymbolId in_port,
                                                 const Index& p) const;
  Result<std::vector<XformRecord>> FindConsuming(const std::string& run,
                                                 const std::string& processor,
                                                 const std::string& in_port,
                                                 const Index& p) const;

  /// xfer rows into (dst_proc, dst_port) overlapping `p` (naïve arc hop).
  Result<std::vector<XferRecord>> FindXfersInto(SymbolId run,
                                                SymbolId dst_proc,
                                                SymbolId dst_port,
                                                const Index& p) const;
  Result<std::vector<XferRecord>> FindXfersInto(const std::string& run,
                                                const std::string& dst_proc,
                                                const std::string& dst_port,
                                                const Index& p) const;

  /// xfer rows leaving (src_proc, src_port) overlapping `p` — the arc
  /// hop of *forward* (impact) queries.
  Result<std::vector<XferRecord>> FindXfersFrom(SymbolId run,
                                                SymbolId src_proc,
                                                SymbolId src_port,
                                                const Index& p) const;
  Result<std::vector<XferRecord>> FindXfersFrom(const std::string& run,
                                                const std::string& src_proc,
                                                const std::string& src_port,
                                                const Index& p) const;

  // --- batched read side ---------------------------------------------------
  // Each batch variant answers probes[i] exactly as its single-probe
  // counterpart would (same rows, same order). Probes are run-qualified:
  // the batch is grouped by owning shard, each shard group flattens into
  // one ExecuteMultiSelect pass over that shard's trace table (sorted
  // probes share B+-tree descents), groups spanning multiple shards run
  // concurrently on the store's fan-out pool, and the CSR-style results
  // merge back into the caller's original probe order.

  Result<std::vector<std::vector<XformRecord>>> FindProducingBatch(
      const std::vector<PortProbe>& probes) const;
  Result<std::vector<std::vector<XformRecord>>> FindConsumingBatch(
      const std::vector<PortProbe>& probes) const;
  Result<std::vector<std::vector<XferRecord>>> FindXfersIntoBatch(
      const std::vector<PortProbe>& probes) const;
  Result<std::vector<std::vector<XferRecord>>> FindXfersFromBatch(
      const std::vector<PortProbe>& probes) const;

  /// Raw per-run scans (exporters / graph builders; not query paths).
  Result<std::vector<XformRecord>> ScanXforms(const std::string& run) const;
  Result<std::vector<XferRecord>> ScanXfers(const std::string& run) const;

  /// Resolves a value id to its literal representation / parsed Value.
  Result<std::string> GetValueRepr(SymbolId run, int64_t value_id) const;
  Result<std::string> GetValueRepr(const std::string& run,
                                   int64_t value_id) const;
  Result<Value> GetValue(const std::string& run, int64_t value_id) const;

  /// Record counts for one run (full-table scan of the owning shard;
  /// used by benches and EXPERIMENTS.md, not by query paths).
  Result<TraceCounts> CountRecords(const std::string& run) const;

  /// Aggregate counts across all runs and shards.
  Result<TraceCounts> CountAllRecords() const;

  storage::Database* db();
  const storage::Database* db() const;

 private:
  struct Rep;
  struct Shard;

  explicit TraceStore(std::unique_ptr<Rep> rep);

  /// Memo-aware single overlap probe, decoded. `kind` tags the memo key
  /// space (one per public Find* flavor).
  template <typename Record>
  Result<std::vector<Record>> FindOneImpl(int kind, const char* table,
                                          const char* pair_col,
                                          const char* index_col,
                                          Record (*decode)(const storage::Row&),
                                          SymbolId run, storage::IdPair pair,
                                          const Index& idx) const;

  /// Memo-aware batched overlap probes with shard fan-out/merge;
  /// results[i] answers probes[i].
  template <typename Record>
  Result<std::vector<std::vector<Record>>> FindBatchImpl(
      int kind, const char* table, const char* pair_col, const char* index_col,
      Record (*decode)(const storage::Row&),
      const std::vector<PortProbe>& probes) const;

  std::unique_ptr<Rep> rep_;
};

}  // namespace provlin::provenance

#endif  // PROVLIN_PROVENANCE_TRACE_STORE_H_
