#include "common/lock_debug.h"

#if PROVLIN_LOCK_DEBUG

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <vector>

// The runtime half of the ranked lock hierarchy (DESIGN.md §15).
//
// Two detectors share the bookkeeping here:
//
//  1. Per-thread rank stack: every blocking acquisition must carry a
//     rank strictly greater than the deepest rank the thread already
//     holds (same rank allowed only under SameRankExemptionScope).
//     This catches an inversion the moment either conflicting
//     interleaving RUNS.
//  2. Process-global lock-order graph: every acquired-while-held pair
//     adds an instance-level edge; a new edge that closes a cycle
//     aborts. This catches inversions whose two sides never run in the
//     same test — thread A takes L1→L2 in one test, thread B takes
//     L2→L1 in another, and the second edge trips even though neither
//     interleaving deadlocked. It is also the only net under the
//     same-rank exemption, where the per-thread check is mute.
//
// Deliberately self-contained: this file must not take any provlin
// lock (metrics, tracing, interner — they all route back through
// common/sync.h and would recurse), so the graph is protected by a raw
// atomic_flag spin lock. The graph singleton is leaked to stay usable
// during static destruction.

namespace provlin::common::lock_debug {
namespace {

struct Held {
  const void* lock = nullptr;
  LockRank rank = LockRank::kTestOuter;
  std::source_location site;
};

struct ThreadState {
  // Deeper nesting than this is a bug by itself.
  static constexpr size_t kMaxHeld = 64;
  Held held[kMaxHeld];
  size_t depth = 0;
  int exempt = 0;  // SameRankExemptionScope nesting count
};

ThreadState& State() {
  thread_local ThreadState state;
  return state;
}

/// One acquired-while-held edge: `to` was acquired while `from` was
/// held. Sites are the two acquisitions that first recorded the edge.
struct Edge {
  const void* to = nullptr;
  LockRank to_rank = LockRank::kTestOuter;
  std::source_location from_site;
  std::source_location to_site;
};

struct Node {
  LockRank rank = LockRank::kTestOuter;
  std::vector<Edge> out;
};

/// Process-global order graph, spin-locked (see file comment). Leaked:
/// locks destroyed during static teardown may still call OnDestroy.
struct Graph {
  std::atomic_flag spin = ATOMIC_FLAG_INIT;
  std::map<const void*, Node> nodes;

  void Lock() {
    while (spin.test_and_set(std::memory_order_acquire)) {
    }
  }
  void Unlock() { spin.clear(std::memory_order_release); }
};

Graph& G() {
  static Graph* graph = new Graph;
  return *graph;
}

void PrintSite(const char* prefix, const std::source_location& site) {
  std::fprintf(stderr, "%s%s:%u\n", prefix, site.file_name(),
               static_cast<unsigned>(site.line()));
}

[[noreturn]] void DieRankViolation(LockRank rank,
                                   const std::source_location& site,
                                   const Held& deepest) {
  std::fprintf(stderr,
               "provlin lock-rank violation: acquiring '%s' (rank %u)\n",
               LockRankName(rank), static_cast<unsigned>(rank));
  PrintSite("  at ", site);
  std::fprintf(stderr, "  while holding '%s' (rank %u)\n",
               LockRankName(deepest.rank),
               static_cast<unsigned>(deepest.rank));
  PrintSite("  acquired at ", deepest.site);
  std::fprintf(stderr,
               "lock ranks must strictly increase along each thread's "
               "acquisition chain\n(same-rank only under "
               "lock_debug::SameRankExemptionScope); see DESIGN.md "
               "S15.\n");
  std::fflush(stderr);
  std::abort();
}

[[noreturn]] void DieAlreadyHeld(LockRank rank,
                                 const std::source_location& site,
                                 const Held& prior) {
  std::fprintf(stderr,
               "provlin lock-rank violation: re-acquiring '%s' (rank %u) "
               "already held by this thread\n",
               LockRankName(rank), static_cast<unsigned>(rank));
  PrintSite("  at ", site);
  PrintSite("  first acquired at ", prior.site);
  std::fflush(stderr);
  std::abort();
}

/// Depth-first search for a path `src` → ... → `dst` in the order
/// graph (REQUIRES the graph spin lock). Fills `path` with the edges
/// walked when found.
bool FindPath(Graph& g, const void* src, const void* dst,
              std::vector<const Edge*>* path,
              std::vector<const void*>* visited) {
  for (const void* v : *visited) {
    if (v == src) return false;
  }
  visited->push_back(src);
  auto it = g.nodes.find(src);
  if (it == g.nodes.end()) return false;
  for (const Edge& e : it->second.out) {
    path->push_back(&e);
    if (e.to == dst || FindPath(g, e.to, dst, path, visited)) return true;
    path->pop_back();
  }
  return false;
}

[[noreturn]] void DieCycle(const Held& from, LockRank to_rank,
                           const std::source_location& to_site,
                           const std::vector<const Edge*>& back_path) {
  std::fprintf(
      stderr,
      "provlin lock-order cycle: acquiring '%s' (rank %u) while holding "
      "'%s' (rank %u) closes a cycle in the process-global lock-order "
      "graph\n",
      LockRankName(to_rank), static_cast<unsigned>(to_rank),
      LockRankName(from.rank), static_cast<unsigned>(from.rank));
  PrintSite("  closing edge acquired at ", to_site);
  PrintSite("  while held since ", from.site);
  std::fprintf(stderr, "  conflicting order recorded earlier:\n");
  for (const Edge* e : back_path) {
    std::fprintf(stderr, "    -> '%s' (rank %u):\n", LockRankName(e->to_rank),
                 static_cast<unsigned>(e->to_rank));
    PrintSite("      acquired at ", e->to_site);
    PrintSite("      while holding the lock acquired at ", e->from_site);
  }
  std::fprintf(stderr,
               "two threads disagree on the acquisition order of these "
               "locks; see DESIGN.md S15.\n");
  std::fflush(stderr);
  std::abort();
}

/// Records the edge held→acquired and aborts if it closes a cycle.
void AddEdgeAndCheck(const Held& from, const void* to, LockRank to_rank,
                     const std::source_location& to_site) {
  Graph& g = G();
  g.Lock();
  Node& node = g.nodes[from.lock];
  node.rank = from.rank;
  bool known = false;
  for (const Edge& e : node.out) {
    if (e.to == to) {
      known = true;
      break;
    }
  }
  if (!known) {
    node.out.push_back(Edge{to, to_rank, from.site, to_site});
    g.nodes[to].rank = to_rank;  // ensure the node exists for DFS
  }
  // Cycle test: is `from` reachable FROM `to`? (The new edge from→to
  // plus any to→...→from path is a cycle.) Checked even for known
  // edges: the reverse path may have appeared since.
  std::vector<const Edge*> path;
  std::vector<const void*> visited;
  if (FindPath(g, to, from.lock, &path, &visited)) {
    DieCycle(from, to_rank, to_site, path);  // aborts; spin lock moot
  }
  g.Unlock();
}

void Push(ThreadState& s, const void* lock, LockRank rank,
          const std::source_location& site) {
  if (s.depth >= ThreadState::kMaxHeld) {
    std::fprintf(stderr,
                 "provlin lock-rank violation: thread holds more than %zu "
                 "locks\n",
                 ThreadState::kMaxHeld);
    std::fflush(stderr);
    std::abort();
  }
  s.held[s.depth++] = Held{lock, rank, site};
}

/// The held entry with the greatest rank, or nullptr when none held.
const Held* Deepest(const ThreadState& s) {
  const Held* deepest = nullptr;
  for (size_t i = 0; i < s.depth; ++i) {
    if (deepest == nullptr || s.held[i].rank >= deepest->rank) {
      deepest = &s.held[i];
    }
  }
  return deepest;
}

}  // namespace

void OnAcquire(const void* lock, LockRank rank,
               const std::source_location& site) {
  ThreadState& s = State();
  for (size_t i = 0; i < s.depth; ++i) {
    if (s.held[i].lock == lock) DieAlreadyHeld(rank, site, s.held[i]);
  }
  if (const Held* deepest = Deepest(s)) {
    if (rank < deepest->rank ||
        (rank == deepest->rank && s.exempt == 0)) {
      DieRankViolation(rank, site, *deepest);
    }
    // Feed the order graph with every held→acquired pair, not just the
    // deepest: the cycle detector is instance-granular and cheap here.
    for (size_t i = 0; i < s.depth; ++i) {
      AddEdgeAndCheck(s.held[i], lock, rank, site);
    }
  }
  Push(s, lock, rank, site);
}

void OnTryAcquire(const void* lock, LockRank rank,
                  const std::source_location& site) {
  ThreadState& s = State();
  for (size_t i = 0; i < s.depth; ++i) {
    if (s.held[i].lock == lock) DieAlreadyHeld(rank, site, s.held[i]);
  }
  Push(s, lock, rank, site);
}

void OnRelease(const void* lock) {
  ThreadState& s = State();
  // Search top-down: releases are almost always LIFO, but guards of
  // independent ranks may unwind in either order.
  for (size_t i = s.depth; i > 0; --i) {
    if (s.held[i - 1].lock == lock) {
      for (size_t j = i - 1; j + 1 < s.depth; ++j) s.held[j] = s.held[j + 1];
      --s.depth;
      return;
    }
  }
  // Releasing a lock this thread does not hold: tolerated (another
  // thread may legitimately unlock a handoff mutex), just untracked.
}

void OnDestroy(const void* lock) {
  Graph& g = G();
  g.Lock();
  g.nodes.erase(lock);
  for (auto& [node, data] : g.nodes) {
    (void)node;
    for (size_t i = data.out.size(); i > 0; --i) {
      if (data.out[i - 1].to == lock) {
        data.out.erase(data.out.begin() + static_cast<long>(i) - 1);
      }
    }
  }
  g.Unlock();
}

size_t HeldDepth() { return State().depth; }

SameRankExemptionScope::SameRankExemptionScope() { ++State().exempt; }
SameRankExemptionScope::~SameRankExemptionScope() { --State().exempt; }

}  // namespace provlin::common::lock_debug

#endif  // PROVLIN_LOCK_DEBUG
