#ifndef PROVLIN_COMMON_STRING_UTIL_H_
#define PROVLIN_COMMON_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace provlin {

/// Splits `s` on `sep`, keeping empty tokens. Split("a..b", '.') ->
/// {"a", "", "b"}. Split("", '.') -> {""}.
std::vector<std::string> Split(std::string_view s, char sep);

/// Joins `parts` with `sep` between adjacent elements.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

bool StartsWith(std::string_view s, std::string_view prefix);
bool EndsWith(std::string_view s, std::string_view suffix);

/// Strips ASCII whitespace from both ends.
std::string_view Trim(std::string_view s);

/// Parses a base-10 signed integer; returns false on any non-numeric input,
/// overflow, or trailing garbage.
bool ParseInt64(std::string_view s, int64_t* out);

/// Parses a double; returns false on any malformed input.
bool ParseDouble(std::string_view s, double* out);

}  // namespace provlin

#endif  // PROVLIN_COMMON_STRING_UTIL_H_
