#ifndef PROVLIN_COMMON_LOGGING_H_
#define PROVLIN_COMMON_LOGGING_H_

#include <sstream>
#include <string>

namespace provlin {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Sets the global minimum level; messages below it are dropped.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

/// Emits one line to stderr: "[LEVEL] file:line message".
void LogMessage(LogLevel level, const char* file, int line,
                const std::string& message);

namespace internal {

/// Stream-style collector used by the PROVLIN_LOG macro.
class LogStream {
 public:
  LogStream(LogLevel level, const char* file, int line)
      : level_(level), file_(file), line_(line) {}
  ~LogStream() { LogMessage(level_, file_, line_, stream_.str()); }

  template <typename T>
  LogStream& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  const char* file_;
  int line_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace provlin

#define PROVLIN_LOG(level)                                       \
  ::provlin::internal::LogStream(::provlin::LogLevel::k##level,  \
                                 __FILE__, __LINE__)

#endif  // PROVLIN_COMMON_LOGGING_H_
