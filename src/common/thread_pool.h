#ifndef PROVLIN_COMMON_THREAD_POOL_H_
#define PROVLIN_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace provlin::common {

/// Fixed-size worker pool with a single FIFO queue. Tasks receive the
/// index of the worker running them (0 .. num_threads-1), which lets
/// callers keep per-thread accounting (the lineage service's per-thread
/// probe counters) without any thread-id mapping of their own.
///
/// Submission is thread-safe. Destruction drains the queue: every task
/// submitted before ~ThreadPool runs to completion before the workers
/// join.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (at least 1).
  explicit ThreadPool(size_t num_threads);

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Finishes all queued tasks, then joins the workers.
  ~ThreadPool();

  /// Enqueues a task; it runs on some worker, which passes its index.
  void Submit(std::function<void(size_t worker)> task);

  /// Convenience overload for tasks that ignore the worker index.
  void Submit(std::function<void()> task);

  /// Blocks until the queue is empty and no task is in flight.
  void WaitIdle();

  size_t num_threads() const { return workers_.size(); }

 private:
  void WorkerLoop(size_t worker);

  std::mutex mu_;
  std::condition_variable wake_;       // workers wait for tasks / shutdown
  std::condition_variable idle_;       // WaitIdle waits for quiescence
  std::deque<std::function<void(size_t)>> queue_;
  size_t in_flight_ = 0;
  bool shutting_down_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace provlin::common

#endif  // PROVLIN_COMMON_THREAD_POOL_H_
