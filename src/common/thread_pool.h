#ifndef PROVLIN_COMMON_THREAD_POOL_H_
#define PROVLIN_COMMON_THREAD_POOL_H_

#include <cstddef>
#include <deque>
#include <functional>
#include <thread>
#include <vector>

#include "common/annotations.h"
#include "common/sync.h"

namespace provlin::common {

/// Fixed-size worker pool with a single FIFO queue. Tasks receive the
/// index of the worker running them (0 .. num_threads-1), which lets
/// callers keep per-thread accounting (the lineage service's per-thread
/// probe counters) without any thread-id mapping of their own.
///
/// Submission is thread-safe. Destruction drains the queue: every task
/// submitted before ~ThreadPool runs to completion before the workers
/// join.
///
/// Lock discipline (checked by -Wthread-safety): all queue state lives
/// under mu_; the condvars pair with explicit predicate loops so every
/// guarded read happens in a scope the analysis can see holding mu_.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (at least 1).
  explicit ThreadPool(size_t num_threads);

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Finishes all queued tasks, then joins the workers.
  ~ThreadPool();

  /// Enqueues a task; it runs on some worker, which passes its index.
  void Submit(std::function<void(size_t worker)> task) EXCLUDES(mu_);

  /// Convenience overload for tasks that ignore the worker index.
  void Submit(std::function<void()> task);

  /// Blocks until the queue is empty and no task is in flight.
  void WaitIdle() EXCLUDES(mu_);

  size_t num_threads() const { return workers_.size(); }

 private:
  void WorkerLoop(size_t worker);

  Mutex mu_{LockRank::kThreadPool};
  CondVar wake_;  // workers wait for tasks / shutdown
  CondVar idle_;  // WaitIdle waits for quiescence
  std::deque<std::function<void(size_t)>> queue_ GUARDED_BY(mu_);
  size_t in_flight_ GUARDED_BY(mu_) = 0;
  bool shutting_down_ GUARDED_BY(mu_) = false;
  std::vector<std::thread> workers_;
};

}  // namespace provlin::common

#endif  // PROVLIN_COMMON_THREAD_POOL_H_
