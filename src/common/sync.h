#ifndef PROVLIN_COMMON_SYNC_H_
#define PROVLIN_COMMON_SYNC_H_

#include <condition_variable>
#include <mutex>
#include <shared_mutex>

#include "common/annotations.h"
#include "common/lock_debug.h"
#include "common/lock_rank.h"

namespace provlin::common {

/// The project's synchronization primitives: thin wrappers over the
/// std primitives that carry Clang Thread Safety annotations, so the
/// relationship between a lock and the data it guards is checked at
/// compile time (see common/annotations.h and DESIGN.md §10).
///
/// These are the ONLY mutexes the tree may use — tools/lint_provlin.py
/// rejects raw std::mutex / std::shared_mutex / std::lock_guard /
/// std::condition_variable anywhere outside this header. std::once_flag
/// and std::atomic are not capabilities and stay allowed.
///
/// Every mutex is constructed with a named LockRank from the central
/// registry in common/lock_rank.h — the rank-less constructor is
/// deleted, and the lint additionally rejects construction sites whose
/// initializer does not spell a `LockRank::` enumerator. Release
/// builds discard the rank at construction (layout-asserted identical
/// to the raw std types below); PROVLIN_LOCK_DEBUG builds keep it and
/// enforce the §10/§11 lock hierarchy at runtime, aborting on the
/// first out-of-order acquisition with both acquisition sites, plus a
/// process-global lock-order graph with cycle detection (DESIGN.md
/// §15 and common/lock_debug.h).
///
/// Idiom:
///
///   class Cache {
///    public:
///     void Put(Key k, V v) EXCLUDES(mu_) {
///       MutexLock lock(mu_);
///       map_.emplace(std::move(k), std::move(v));
///     }
///    private:
///     Mutex mu_{LockRank::kMyCache};
///     std::map<Key, V> map_ GUARDED_BY(mu_);
///   };
///
/// Condition variables pair with explicit predicate loops, not the
/// lambda-predicate wait overloads: the analysis checks the guarded
/// reads of the loop condition in the locked enclosing scope, whereas a
/// predicate lambda is analyzed as a separate unannotated function and
/// every guarded read in it is flagged:
///
///   MutexLock lock(mu_);
///   while (queue_.empty() && !stop_) not_empty_.Wait(mu_);

/// Exclusive mutex (wraps std::mutex).
class CAPABILITY("mutex") Mutex {
 public:
  /// Every Mutex carries a rank from the central hierarchy
  /// (common/lock_rank.h); construction without one must not compile.
  Mutex() = delete;
#if PROVLIN_LOCK_DEBUG
  explicit Mutex(LockRank rank) : rank_(rank) {}
  ~Mutex() { lock_debug::OnDestroy(this); }

  void Lock(const std::source_location& site =
                std::source_location::current()) ACQUIRE() {
    lock_debug::OnAcquire(this, rank_, site);
    mu_.lock();
  }
  void Unlock() RELEASE() {
    mu_.unlock();
    lock_debug::OnRelease(this);
  }
  bool TryLock(const std::source_location& site =
                   std::source_location::current()) TRY_ACQUIRE(true) {
    if (!mu_.try_lock()) return false;
    lock_debug::OnTryAcquire(this, rank_, site);
    return true;
  }
#else
  explicit Mutex(LockRank rank) { (void)rank; }

  void Lock() ACQUIRE() { mu_.lock(); }
  void Unlock() RELEASE() { mu_.unlock(); }
  bool TryLock() TRY_ACQUIRE(true) { return mu_.try_lock(); }
#endif
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  /// Tells the analysis this mutex is held on paths it cannot follow
  /// (no runtime effect). Each call site carries a comment saying who
  /// really holds the lock.
  void AssertHeld() ASSERT_CAPABILITY(this) {}

 private:
  friend class CondVar;
  std::mutex mu_;
#if PROVLIN_LOCK_DEBUG
  LockRank rank_;
#endif
};

/// Reader/writer mutex (wraps std::shared_mutex).
class CAPABILITY("shared_mutex") SharedMutex {
 public:
  /// Ranked like Mutex: rank-less construction must not compile.
  SharedMutex() = delete;
#if PROVLIN_LOCK_DEBUG
  explicit SharedMutex(LockRank rank) : rank_(rank) {}
  ~SharedMutex() { lock_debug::OnDestroy(this); }

  void Lock(const std::source_location& site =
                std::source_location::current()) ACQUIRE() {
    lock_debug::OnAcquire(this, rank_, site);
    mu_.lock();
  }
  void Unlock() RELEASE() {
    mu_.unlock();
    lock_debug::OnRelease(this);
  }
  bool TryLock(const std::source_location& site =
                   std::source_location::current()) TRY_ACQUIRE(true) {
    if (!mu_.try_lock()) return false;
    lock_debug::OnTryAcquire(this, rank_, site);
    return true;
  }

  void LockShared(const std::source_location& site =
                      std::source_location::current()) ACQUIRE_SHARED() {
    lock_debug::OnAcquire(this, rank_, site);
    mu_.lock_shared();
  }
  void UnlockShared() RELEASE_SHARED() {
    mu_.unlock_shared();
    lock_debug::OnRelease(this);
  }
  bool TryLockShared(const std::source_location& site =
                         std::source_location::current())
      TRY_ACQUIRE_SHARED(true) {
    if (!mu_.try_lock_shared()) return false;
    lock_debug::OnTryAcquire(this, rank_, site);
    return true;
  }
#else
  explicit SharedMutex(LockRank rank) { (void)rank; }

  void Lock() ACQUIRE() { mu_.lock(); }
  void Unlock() RELEASE() { mu_.unlock(); }
  bool TryLock() TRY_ACQUIRE(true) { return mu_.try_lock(); }

  void LockShared() ACQUIRE_SHARED() { mu_.lock_shared(); }
  void UnlockShared() RELEASE_SHARED() { mu_.unlock_shared(); }
  bool TryLockShared() TRY_ACQUIRE_SHARED(true) {
    return mu_.try_lock_shared();
  }
#endif
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void AssertHeld() ASSERT_CAPABILITY(this) {}
  void AssertReaderHeld() ASSERT_SHARED_CAPABILITY(this) {}

 private:
  std::shared_mutex mu_;
#if PROVLIN_LOCK_DEBUG
  LockRank rank_;
#endif
};

#if !PROVLIN_LOCK_DEBUG
// The zero-overhead contract: without the detector, the rank is
// consumed at construction and the wrappers are layout-identical to
// the raw primitives — no per-lock state, no per-acquisition work
// (tests/lock_debug_test.cc verifies the behavioral half, and
// bench_storage_micro BM_MutexLockUnlock / BM_SharedMutexReadLock
// guard the cost).
static_assert(sizeof(Mutex) == sizeof(std::mutex),
              "release-build Mutex must not carry lock-debug state");
static_assert(sizeof(SharedMutex) == sizeof(std::shared_mutex),
              "release-build SharedMutex must not carry lock-debug state");
#endif

/// Scoped exclusive lock on a Mutex (the std::lock_guard analogue).
class SCOPED_CAPABILITY MutexLock {
 public:
#if PROVLIN_LOCK_DEBUG
  explicit MutexLock(Mutex& mu, const std::source_location& site =
                                    std::source_location::current())
      ACQUIRE(mu)
      : mu_(mu) {
    mu_.Lock(site);
  }
#else
  explicit MutexLock(Mutex& mu) ACQUIRE(mu) : mu_(mu) { mu_.Lock(); }
#endif
  ~MutexLock() RELEASE() { mu_.Unlock(); }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// Scoped exclusive lock on a SharedMutex (the write side).
class SCOPED_CAPABILITY WriterLock {
 public:
#if PROVLIN_LOCK_DEBUG
  explicit WriterLock(SharedMutex& mu, const std::source_location& site =
                                           std::source_location::current())
      ACQUIRE(mu)
      : mu_(mu) {
    mu_.Lock(site);
  }
#else
  explicit WriterLock(SharedMutex& mu) ACQUIRE(mu) : mu_(mu) { mu_.Lock(); }
#endif
  ~WriterLock() RELEASE() { mu_.Unlock(); }
  WriterLock(const WriterLock&) = delete;
  WriterLock& operator=(const WriterLock&) = delete;

 private:
  SharedMutex& mu_;
};

/// Scoped shared lock on a SharedMutex (the read side).
class SCOPED_CAPABILITY ReaderLock {
 public:
#if PROVLIN_LOCK_DEBUG
  explicit ReaderLock(SharedMutex& mu, const std::source_location& site =
                                           std::source_location::current())
      ACQUIRE_SHARED(mu)
      : mu_(mu) {
    mu_.LockShared(site);
  }
#else
  explicit ReaderLock(SharedMutex& mu) ACQUIRE_SHARED(mu) : mu_(mu) {
    mu_.LockShared();
  }
#endif
  ~ReaderLock() RELEASE() { mu_.UnlockShared(); }
  ReaderLock(const ReaderLock&) = delete;
  ReaderLock& operator=(const ReaderLock&) = delete;

 private:
  SharedMutex& mu_;
};

/// Condition variable over provlin::common::Mutex. Wait() requires the
/// mutex held; the temporary release/reacquire inside is invisible to
/// the analysis (and to the lock-debug held stack) by design — the
/// capability is held at entry and at exit, which is the contract
/// callers reason with. Use explicit `while (!condition) cv.Wait(mu);`
/// loops — see the header comment.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void Wait(Mutex& mu) REQUIRES(mu) {
    // Adopt the already-held std::mutex so the std wait protocol
    // (unlock, block, relock) runs on it, then release ownership back
    // to the caller's scoped guard without unlocking.
    std::unique_lock<std::mutex> lock(mu.mu_, std::adopt_lock);
    cv_.wait(lock);
    lock.release();
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace provlin::common

#endif  // PROVLIN_COMMON_SYNC_H_
