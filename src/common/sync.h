#ifndef PROVLIN_COMMON_SYNC_H_
#define PROVLIN_COMMON_SYNC_H_

#include <condition_variable>
#include <mutex>
#include <shared_mutex>

#include "common/annotations.h"

namespace provlin::common {

/// The project's synchronization primitives: thin wrappers over the
/// std primitives that carry Clang Thread Safety annotations, so the
/// relationship between a lock and the data it guards is checked at
/// compile time (see common/annotations.h and DESIGN.md §10).
///
/// These are the ONLY mutexes the tree may use — tools/lint_provlin.py
/// rejects raw std::mutex / std::shared_mutex / std::lock_guard /
/// std::condition_variable anywhere outside this header. std::once_flag
/// and std::atomic are not capabilities and stay allowed.
///
/// Idiom:
///
///   class Cache {
///    public:
///     void Put(Key k, V v) EXCLUDES(mu_) {
///       MutexLock lock(mu_);
///       map_.emplace(std::move(k), std::move(v));
///     }
///    private:
///     Mutex mu_;
///     std::map<Key, V> map_ GUARDED_BY(mu_);
///   };
///
/// Condition variables pair with explicit predicate loops, not the
/// lambda-predicate wait overloads: the analysis checks the guarded
/// reads of the loop condition in the locked enclosing scope, whereas a
/// predicate lambda is analyzed as a separate unannotated function and
/// every guarded read in it is flagged:
///
///   MutexLock lock(mu_);
///   while (queue_.empty() && !stop_) not_empty_.Wait(mu_);

/// Exclusive mutex (wraps std::mutex).
class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() ACQUIRE() { mu_.lock(); }
  void Unlock() RELEASE() { mu_.unlock(); }
  bool TryLock() TRY_ACQUIRE(true) { return mu_.try_lock(); }

  /// Tells the analysis this mutex is held on paths it cannot follow
  /// (no runtime effect). Each call site carries a comment saying who
  /// really holds the lock.
  void AssertHeld() ASSERT_CAPABILITY(this) {}

 private:
  friend class CondVar;
  std::mutex mu_;
};

/// Reader/writer mutex (wraps std::shared_mutex).
class CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex() = default;
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void Lock() ACQUIRE() { mu_.lock(); }
  void Unlock() RELEASE() { mu_.unlock(); }
  bool TryLock() TRY_ACQUIRE(true) { return mu_.try_lock(); }

  void LockShared() ACQUIRE_SHARED() { mu_.lock_shared(); }
  void UnlockShared() RELEASE_SHARED() { mu_.unlock_shared(); }
  bool TryLockShared() TRY_ACQUIRE_SHARED(true) {
    return mu_.try_lock_shared();
  }

  void AssertHeld() ASSERT_CAPABILITY(this) {}
  void AssertReaderHeld() ASSERT_SHARED_CAPABILITY(this) {}

 private:
  std::shared_mutex mu_;
};

/// Scoped exclusive lock on a Mutex (the std::lock_guard analogue).
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) ACQUIRE(mu) : mu_(mu) { mu_.Lock(); }
  ~MutexLock() RELEASE() { mu_.Unlock(); }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// Scoped exclusive lock on a SharedMutex (the write side).
class SCOPED_CAPABILITY WriterLock {
 public:
  explicit WriterLock(SharedMutex& mu) ACQUIRE(mu) : mu_(mu) { mu_.Lock(); }
  ~WriterLock() RELEASE() { mu_.Unlock(); }
  WriterLock(const WriterLock&) = delete;
  WriterLock& operator=(const WriterLock&) = delete;

 private:
  SharedMutex& mu_;
};

/// Scoped shared lock on a SharedMutex (the read side).
class SCOPED_CAPABILITY ReaderLock {
 public:
  explicit ReaderLock(SharedMutex& mu) ACQUIRE_SHARED(mu) : mu_(mu) {
    mu_.LockShared();
  }
  ~ReaderLock() RELEASE() { mu_.UnlockShared(); }
  ReaderLock(const ReaderLock&) = delete;
  ReaderLock& operator=(const ReaderLock&) = delete;

 private:
  SharedMutex& mu_;
};

/// Condition variable over provlin::common::Mutex. Wait() requires the
/// mutex held; the temporary release/reacquire inside is invisible to
/// the analysis by design (the capability is held at entry and at exit,
/// which is the contract callers reason with). Use explicit `while
/// (!condition) cv.Wait(mu);` loops — see the header comment.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void Wait(Mutex& mu) REQUIRES(mu) {
    // Adopt the already-held std::mutex so the std wait protocol
    // (unlock, block, relock) runs on it, then release ownership back
    // to the caller's scoped guard without unlocking.
    std::unique_lock<std::mutex> lock(mu.mu_, std::adopt_lock);
    cv_.wait(lock);
    lock.release();
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace provlin::common

#endif  // PROVLIN_COMMON_SYNC_H_
