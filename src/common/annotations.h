#ifndef PROVLIN_COMMON_ANNOTATIONS_H_
#define PROVLIN_COMMON_ANNOTATIONS_H_

/// Clang Thread Safety Analysis annotations.
///
/// These macros expose the `-Wthread-safety` attribute vocabulary so
/// lock discipline is checked at compile time: which mutex guards which
/// data (GUARDED_BY), which functions demand a held lock (REQUIRES),
/// which acquire/release one (ACQUIRE/RELEASE), and which types *are*
/// capabilities (CAPABILITY, SCOPED_CAPABILITY). The annotated mutex
/// wrappers live in common/sync.h; everything concurrent in the tree
/// uses them, and the static-analysis CI tier builds with
/// `-Wthread-safety -Werror=thread-safety` so a violated annotation is
/// a build break, not a TSan lottery ticket.
///
/// Under GCC (the tier-1 toolchain) every macro expands to nothing, so
/// annotations cost nothing where the analysis is unavailable.
///
/// Reference: https://clang.llvm.org/docs/ThreadSafetyAnalysis.html

#if defined(__clang__)
#define PROVLIN_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define PROVLIN_THREAD_ANNOTATION(x)  // no-op outside clang
#endif

/// Marks a class as a capability (lockable). The string argument names
/// the capability kind in diagnostics ("mutex").
#define CAPABILITY(x) PROVLIN_THREAD_ANNOTATION(capability(x))

/// Marks an RAII class whose constructor acquires and destructor
/// releases a capability (MutexLock and friends).
#define SCOPED_CAPABILITY PROVLIN_THREAD_ANNOTATION(scoped_lockable)

/// Data member requires the given capability to be held for access.
#define GUARDED_BY(x) PROVLIN_THREAD_ANNOTATION(guarded_by(x))

/// Pointer member: the *pointee* requires the capability.
#define PT_GUARDED_BY(x) PROVLIN_THREAD_ANNOTATION(pt_guarded_by(x))

/// Lock-ordering declarations (acquire `this` before/after the others).
#define ACQUIRED_BEFORE(...) \
  PROVLIN_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))
#define ACQUIRED_AFTER(...) \
  PROVLIN_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))

/// Function precondition: capability held on entry and on exit.
#define REQUIRES(...) \
  PROVLIN_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define REQUIRES_SHARED(...) \
  PROVLIN_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))

/// Function acquires (and holds past return) the capability.
#define ACQUIRE(...) \
  PROVLIN_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define ACQUIRE_SHARED(...) \
  PROVLIN_THREAD_ANNOTATION(acquire_shared_capability(__VA_ARGS__))

/// Function releases the capability (held on entry, not on exit).
#define RELEASE(...) \
  PROVLIN_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define RELEASE_SHARED(...) \
  PROVLIN_THREAD_ANNOTATION(release_shared_capability(__VA_ARGS__))
#define RELEASE_GENERIC(...) \
  PROVLIN_THREAD_ANNOTATION(release_generic_capability(__VA_ARGS__))

/// Function acquires the capability iff it returns the given value.
#define TRY_ACQUIRE(...) \
  PROVLIN_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))
#define TRY_ACQUIRE_SHARED(...) \
  PROVLIN_THREAD_ANNOTATION(try_acquire_shared_capability(__VA_ARGS__))

/// Function must NOT be called with the capability held (anti-deadlock:
/// public entry points of a class exclude their own mutex).
#define EXCLUDES(...) PROVLIN_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Runtime assertion informing the analysis a capability is held — the
/// escape hatch for invariants the checker cannot follow (e.g. a lock
/// taken by a caller through a path it cannot see).
#define ASSERT_CAPABILITY(x) PROVLIN_THREAD_ANNOTATION(assert_capability(x))
#define ASSERT_SHARED_CAPABILITY(x) \
  PROVLIN_THREAD_ANNOTATION(assert_shared_capability(x))

/// Function returns a reference to the capability guarding its result.
#define RETURN_CAPABILITY(x) PROVLIN_THREAD_ANNOTATION(lock_returned(x))

/// Opts a function out of the analysis. Every use carries a comment
/// explaining why the checker cannot express the pattern (enforced by
/// review, exercised by the negative-compile tests' positive control).
#define NO_THREAD_SAFETY_ANALYSIS \
  PROVLIN_THREAD_ANNOTATION(no_thread_safety_analysis)

#endif  // PROVLIN_COMMON_ANNOTATIONS_H_
