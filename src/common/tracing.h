#ifndef PROVLIN_COMMON_TRACING_H_
#define PROVLIN_COMMON_TRACING_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "common/annotations.h"
#include "common/sync.h"

namespace provlin::common::tracing {

/// One completed span, recorded when its guard leaves scope. Timestamps
/// are microseconds since the tracer's enable epoch; `tid` is the
/// tracer's dense per-thread id (stable for a thread's lifetime), so
/// cross-thread service batches lay out as parallel tracks in Perfetto.
struct TraceEvent {
  std::string name;
  std::string args;  // optional free-form annotation ("" = none)
  uint64_t ts_us = 0;
  uint64_t dur_us = 0;
  uint32_t tid = 0;
  uint16_t depth = 0;  // nesting depth on its thread (0 = top level)
};

/// Runtime-switchable span tracer with a bounded ring-buffer sink.
///
/// Disabled (the default) it costs one acquire atomic load (a plain
/// load on x86) and a branch per PROVLIN_TRACE_SPAN site — measured
/// ≤ 2% on the probe-bound lineage benches (EXPERIMENTS.md
/// "Observability overhead"). Enabled,
/// each span closing takes the ring mutex briefly; the ring overwrites
/// its oldest events on wraparound (dropped() counts casualties), so
/// tracing never grows without bound.
///
/// Export is Chrome trace-event JSON ("X" complete events): feed the
/// file to Perfetto / chrome://tracing and a lineage query opens as a
/// per-thread timeline of plan builds, probe batches, and binding
/// retrieval.
class Tracer {
 public:
  Tracer() = default;
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// The process-wide tracer all PROVLIN_TRACE_SPAN sites report to.
  static Tracer& Global();

  /// Starts capturing with a ring of `capacity` events (also resets the
  /// epoch and clears previously captured events).
  void Enable(size_t capacity = 1 << 16);
  void Disable();

  // Acquire pairs with the release store in Enable(): a guard that sees
  // enabled() == true also sees that Enable()'s epoch and generation.
  static bool enabled() { return enabled_.load(std::memory_order_acquire); }

  /// Records one completed span stamped with the current enable
  /// generation (usable directly for spans whose lifetime does not
  /// match a C++ scope).
  void Record(std::string name, std::string args, uint64_t ts_us,
              uint64_t dur_us, uint16_t depth);

  /// As above, tagged with the enable generation observed when the span
  /// opened. Events whose generation is stale — the capture was flipped
  /// off and back on while the span was in flight — are dropped rather
  /// than recorded with timestamps from a dead epoch.
  void Record(std::string name, std::string args, uint64_t ts_us,
              uint64_t dur_us, uint16_t depth, uint64_t generation);

  /// Microseconds since the enable epoch.
  uint64_t NowMicros() const;

  /// Monotonic count of Enable() calls. SpanGuard stamps it at span
  /// start so Record() can reject spans straddling a capture flip.
  uint64_t generation() const {
    return gen_.load(std::memory_order_acquire);
  }

  /// Dense id of the calling thread (1, 2, ... in first-use order).
  static uint32_t ThisThreadId();

  /// Captured events in timestamp order (oldest surviving first).
  std::vector<TraceEvent> Snapshot() const;
  /// Events overwritten by ring wraparound since Enable().
  uint64_t dropped() const;
  size_t capacity() const;

  /// Chrome trace-event JSON: {"traceEvents": [...]} with one "X" entry
  /// per captured span, sorted by start timestamp.
  std::string ExportChromeTrace() const;

 private:
  // Inline static so SpanGuard's disabled fast path inlines to one
  // relaxed load and a branch, with no call through Global().
  inline static std::atomic<bool> enabled_{false};
  // The ring and its bookkeeping are the only mutex-guarded state; the
  // epoch/generation pair stays atomic so the lock-free SpanGuard fast
  // path (enabled() + NowMicros() + generation()) never touches mu_.
  mutable Mutex mu_{LockRank::kTracer};
  std::vector<TraceEvent> ring_ GUARDED_BY(mu_);
  size_t ring_capacity_ GUARDED_BY(mu_) = 0;
  uint64_t total_recorded_ GUARDED_BY(mu_) = 0;
  // The epoch is raw steady_clock nanoseconds (not a time_point) so the
  // lock-free NowMicros() on the span fast path can read it atomically
  // while Enable() rewrites it under mu_.
  std::atomic<int64_t> epoch_ns_{0};
  std::atomic<uint64_t> gen_{0};
};

/// RAII span: stamps the start on construction and records the completed
/// event on destruction. When the tracer is disabled at construction the
/// guard is inert — no clock read, no allocation, nothing recorded (even
/// if tracing is enabled mid-span). A span whose scope straddles a
/// Disable()+Enable() flip is dropped at Record() — its start timestamp
/// belongs to the previous epoch, so it has no valid place in the new
/// capture.
class SpanGuard {
 public:
  explicit SpanGuard(const char* name) {
    if (!Tracer::enabled()) return;
    Begin(name);
  }
  ~SpanGuard() {
    if (active_) End();
  }
  SpanGuard(const SpanGuard&) = delete;
  SpanGuard& operator=(const SpanGuard&) = delete;

  /// True when this span will be recorded — guard for building args
  /// strings only when someone is listening.
  bool active() const { return active_; }

  /// Attaches a free-form annotation shown in the trace viewer's args
  /// pane (no-op on inactive spans).
  void SetArgs(std::string args) {
    if (active_) args_ = std::move(args);
  }

 private:
  void Begin(const char* name);
  void End();

  bool active_ = false;
  const char* name_ = nullptr;
  std::string args_;
  uint64_t start_us_ = 0;
  uint64_t gen_ = 0;
  uint16_t depth_ = 0;
};

/// Publishes the global tracer's ring-sink health as registry gauges —
/// tracing/enabled (0/1), tracing/ring_events (captured events
/// surviving in the ring), tracing/ring_capacity, and
/// tracing/ring_dropped (events lost to wraparound) — so `provlin
/// stats` and the server's STATS scrape expose whether a capture is
/// live and whether it has been overrunning. Call at snapshot points;
/// the gauges are last-write-wins.
void PublishTracingStats();

}  // namespace provlin::common::tracing

/// Opens a span covering the rest of the enclosing scope:
///   PROVLIN_TRACE_SPAN("indexproj/s2_probes");
/// Compiles to one atomic load + branch when tracing is disabled.
#define PROVLIN_TRACE_SPAN_CAT2(a, b) a##b
#define PROVLIN_TRACE_SPAN_CAT(a, b) PROVLIN_TRACE_SPAN_CAT2(a, b)
#define PROVLIN_TRACE_SPAN(name)                       \
  ::provlin::common::tracing::SpanGuard PROVLIN_TRACE_SPAN_CAT( \
      provlin_span_, __LINE__)(name)

/// Named-guard variant for spans that want SetArgs():
///   PROVLIN_TRACE_SPAN_VAR(span, "service/request");
///   if (span.active()) span.SetArgs("req=" + std::to_string(i));
#define PROVLIN_TRACE_SPAN_VAR(var, name) \
  ::provlin::common::tracing::SpanGuard var(name)

#endif  // PROVLIN_COMMON_TRACING_H_
