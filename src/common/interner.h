#ifndef PROVLIN_COMMON_INTERNER_H_
#define PROVLIN_COMMON_INTERNER_H_

#include <cstdint>
#include <deque>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/annotations.h"
#include "common/sync.h"

namespace provlin::common {

/// Dense identifier of an interned string (processor name, port name,
/// run id, ...). Ids are assigned 0, 1, 2, ... in first-seen order and
/// never change for the lifetime of the owning SymbolTable, so they can
/// be stored in relational rows and persisted alongside the table that
/// minted them.
using SymbolId = uint32_t;

/// Sentinel for "no symbol" (e.g. the absent side of a source-only
/// provenance row). Never returned by Intern().
inline constexpr SymbolId kNoSymbol = UINT32_MAX;

/// Dense identifier of an interned index path (see IndexDictionary).
using IndexId = uint32_t;

inline constexpr IndexId kNoIndexId = UINT32_MAX;

/// Append-only bidirectional map between strings and dense SymbolIds —
/// the dictionary-encoding substrate of the identifier layer. Hot paths
/// (executor port binding, trace probes, lineage traversal) carry
/// SymbolIds and compare integers; strings appear only at parse/render
/// boundaries through Intern()/NameOf().
///
/// Thread safety: Intern/Lookup/NameOf/size/names may be called from any
/// thread — concurrent lineage queries intern plan keys and visited-set
/// keys on shared stores, so the table synchronizes internally with a
/// shared mutex (reads take the shared side; Intern only takes the
/// exclusive side when it actually mints a new id). Strings live in a
/// deque, so the references handed out by NameOf stay valid while other
/// threads intern. Restore/Clear are exclusive *setup* operations and
/// must not race with readers.
class SymbolTable {
 public:
  SymbolTable() = default;

  /// Movable so owners (Database) keep value semantics: the *contents*
  /// move, each object keeps its own mutex. Moving while other threads
  /// use either side is outside the contract. Excluded from the thread
  /// safety analysis: both sides' mutexes are taken in address order, a
  /// runtime-chosen dual acquisition the checker cannot express.
  SymbolTable(SymbolTable&& other) noexcept NO_THREAD_SAFETY_ANALYSIS;
  SymbolTable& operator=(SymbolTable&& other) noexcept
      NO_THREAD_SAFETY_ANALYSIS;
  SymbolTable(const SymbolTable&) = delete;
  SymbolTable& operator=(const SymbolTable&) = delete;

  /// Id of `name`, interning it on first sight.
  SymbolId Intern(std::string_view name);

  /// Id of `name` if already interned; does not modify the table. Read
  /// paths use this so querying an unknown name cannot grow the table.
  std::optional<SymbolId> Lookup(std::string_view name) const;

  /// The string a valid id denotes. Precondition: id < size(). The
  /// reference is stable for the table's lifetime (append-only deque).
  const std::string& NameOf(SymbolId id) const;

  bool Contains(SymbolId id) const { return id < size(); }

  size_t size() const;
  bool empty() const { return size() == 0; }

  /// Snapshot of all interned strings in id order — the serialization
  /// image. A table restored via Restore(names()) assigns identical ids.
  std::vector<std::string> names() const;

  /// Replaces the contents with `names` (ids = positions). Used when
  /// loading a persisted database image.
  void Restore(std::vector<std::string> names);

  void Clear();

 private:
  struct StringHash {
    using is_transparent = void;
    size_t operator()(std::string_view s) const {
      return std::hash<std::string_view>{}(s);
    }
  };

  mutable SharedMutex mu_{LockRank::kSymbolTable};
  std::deque<std::string> names_ GUARDED_BY(mu_);
  std::unordered_map<std::string_view, SymbolId, StringHash, std::equal_to<>>
      ids_ GUARDED_BY(mu_);
};

/// Append-only dictionary of index paths (the component vectors of
/// values::Index), deduplicated: equal paths always receive the same
/// IndexId. Lives in common/ and speaks raw `std::vector<int32_t>` so
/// the identifier layer does not depend on the values library; callers
/// pass `index.parts()`.
///
/// Thread safety: same contract as SymbolTable — Intern/Lookup/PartsOf
/// synchronize internally, Restore/Clear are exclusive setup operations.
class IndexDictionary {
 public:
  IndexDictionary() = default;

  /// Movable with the same contract as SymbolTable (contents move, the
  /// mutex stays put; no concurrent use during a move). Excluded from
  /// the analysis for the same reason: address-ordered dual locking.
  IndexDictionary(IndexDictionary&& other) noexcept NO_THREAD_SAFETY_ANALYSIS;
  IndexDictionary& operator=(IndexDictionary&& other) noexcept
      NO_THREAD_SAFETY_ANALYSIS;
  IndexDictionary(const IndexDictionary&) = delete;
  IndexDictionary& operator=(const IndexDictionary&) = delete;

  /// Id of `parts`, interning on first sight.
  IndexId Intern(const std::vector<int32_t>& parts);

  /// Id of `parts` if present; does not modify the dictionary.
  std::optional<IndexId> Lookup(const std::vector<int32_t>& parts) const;

  /// The path a valid id denotes. Precondition: id < size(). The
  /// reference is stable for the dictionary's lifetime.
  const std::vector<int32_t>& PartsOf(IndexId id) const;

  size_t size() const;
  bool empty() const { return size() == 0; }

  /// Snapshot of all paths in id order — the serialization image.
  std::vector<std::vector<int32_t>> paths() const;

  /// Replaces the contents with `paths` (ids = positions).
  void Restore(std::vector<std::vector<int32_t>> paths);

  void Clear();

 private:
  struct PathHash {
    size_t operator()(const std::vector<int32_t>& parts) const;
  };

  mutable SharedMutex mu_{LockRank::kIndexDictionary};
  std::deque<std::vector<int32_t>> paths_ GUARDED_BY(mu_);
  std::unordered_map<std::vector<int32_t>, IndexId, PathHash> ids_
      GUARDED_BY(mu_);
};

}  // namespace provlin::common

#endif  // PROVLIN_COMMON_INTERNER_H_
