#include "common/interner.h"

#include <functional>
#include <utility>

namespace provlin::common {

namespace {

/// Locks two SharedMutexes exclusively in address order — the
/// deadlock-free protocol for move operations between two internally
/// synchronized tables (concurrent cross-moves acquire in the same
/// order). Callers are NO_THREAD_SAFETY_ANALYSIS: a runtime-ordered
/// dual acquisition has no static capability expression. The two
/// instances share one LockRank, so the second acquisition runs under
/// the lock-debug same-rank exemption — the address ordering supplies
/// the total order the rank check cannot see (DESIGN.md §15).
class DualWriterLock {
 public:
  DualWriterLock(SharedMutex& a, SharedMutex& b) NO_THREAD_SAFETY_ANALYSIS
      : first_(std::less<SharedMutex*>{}(&a, &b) ? a : b),
        second_(std::less<SharedMutex*>{}(&a, &b) ? b : a) {
    [[maybe_unused]] lock_debug::SameRankExemptionScope exempt;
    first_.Lock();
    second_.Lock();
  }
  ~DualWriterLock() NO_THREAD_SAFETY_ANALYSIS {
    second_.Unlock();
    first_.Unlock();
  }
  DualWriterLock(const DualWriterLock&) = delete;
  DualWriterLock& operator=(const DualWriterLock&) = delete;

 private:
  SharedMutex& first_;
  SharedMutex& second_;
};

}  // namespace

SymbolTable::SymbolTable(SymbolTable&& other) noexcept {
  WriterLock lock(other.mu_);
  names_ = std::move(other.names_);
  ids_ = std::move(other.ids_);
  other.names_.clear();
  other.ids_.clear();
}

SymbolTable& SymbolTable::operator=(SymbolTable&& other) noexcept {
  if (this == &other) return *this;
  DualWriterLock lock(mu_, other.mu_);
  names_ = std::move(other.names_);
  ids_ = std::move(other.ids_);
  other.names_.clear();
  other.ids_.clear();
  return *this;
}

SymbolId SymbolTable::Intern(std::string_view name) {
  {
    ReaderLock lock(mu_);
    auto it = ids_.find(name);
    if (it != ids_.end()) return it->second;
  }
  WriterLock lock(mu_);
  // Double-check: another thread may have minted the id between locks.
  auto it = ids_.find(name);
  if (it != ids_.end()) return it->second;
  SymbolId id = static_cast<SymbolId>(names_.size());
  names_.emplace_back(name);
  ids_.emplace(std::string_view(names_.back()), id);
  return id;
}

std::optional<SymbolId> SymbolTable::Lookup(std::string_view name) const {
  ReaderLock lock(mu_);
  auto it = ids_.find(name);
  if (it == ids_.end()) return std::nullopt;
  return it->second;
}

const std::string& SymbolTable::NameOf(SymbolId id) const {
  ReaderLock lock(mu_);
  return names_[id];
}

size_t SymbolTable::size() const {
  ReaderLock lock(mu_);
  return names_.size();
}

std::vector<std::string> SymbolTable::names() const {
  ReaderLock lock(mu_);
  return std::vector<std::string>(names_.begin(), names_.end());
}

void SymbolTable::Restore(std::vector<std::string> names) {
  WriterLock lock(mu_);
  names_.assign(std::make_move_iterator(names.begin()),
                std::make_move_iterator(names.end()));
  ids_.clear();
  ids_.reserve(names_.size());
  for (size_t i = 0; i < names_.size(); ++i) {
    ids_.emplace(std::string_view(names_[i]), static_cast<SymbolId>(i));
  }
}

void SymbolTable::Clear() {
  WriterLock lock(mu_);
  names_.clear();
  ids_.clear();
}

IndexDictionary::IndexDictionary(IndexDictionary&& other) noexcept {
  WriterLock lock(other.mu_);
  paths_ = std::move(other.paths_);
  ids_ = std::move(other.ids_);
  other.paths_.clear();
  other.ids_.clear();
}

IndexDictionary& IndexDictionary::operator=(IndexDictionary&& other) noexcept {
  if (this == &other) return *this;
  DualWriterLock lock(mu_, other.mu_);
  paths_ = std::move(other.paths_);
  ids_ = std::move(other.ids_);
  other.paths_.clear();
  other.ids_.clear();
  return *this;
}

size_t IndexDictionary::PathHash::operator()(
    const std::vector<int32_t>& parts) const {
  size_t h = 0xcbf29ce484222325ull;
  for (int32_t p : parts) {
    h ^= static_cast<size_t>(static_cast<uint32_t>(p));
    h *= 0x100000001b3ull;
  }
  return h;
}

IndexId IndexDictionary::Intern(const std::vector<int32_t>& parts) {
  {
    ReaderLock lock(mu_);
    auto it = ids_.find(parts);
    if (it != ids_.end()) return it->second;
  }
  WriterLock lock(mu_);
  auto it = ids_.find(parts);
  if (it != ids_.end()) return it->second;
  IndexId id = static_cast<IndexId>(paths_.size());
  paths_.push_back(parts);
  ids_.emplace(paths_.back(), id);
  return id;
}

std::optional<IndexId> IndexDictionary::Lookup(
    const std::vector<int32_t>& parts) const {
  ReaderLock lock(mu_);
  auto it = ids_.find(parts);
  if (it == ids_.end()) return std::nullopt;
  return it->second;
}

const std::vector<int32_t>& IndexDictionary::PartsOf(IndexId id) const {
  ReaderLock lock(mu_);
  return paths_[id];
}

size_t IndexDictionary::size() const {
  ReaderLock lock(mu_);
  return paths_.size();
}

std::vector<std::vector<int32_t>> IndexDictionary::paths() const {
  ReaderLock lock(mu_);
  return std::vector<std::vector<int32_t>>(paths_.begin(), paths_.end());
}

void IndexDictionary::Restore(std::vector<std::vector<int32_t>> paths) {
  WriterLock lock(mu_);
  paths_.assign(std::make_move_iterator(paths.begin()),
                std::make_move_iterator(paths.end()));
  ids_.clear();
  ids_.reserve(paths_.size());
  for (size_t i = 0; i < paths_.size(); ++i) {
    ids_.emplace(paths_[i], static_cast<IndexId>(i));
  }
}

void IndexDictionary::Clear() {
  WriterLock lock(mu_);
  paths_.clear();
  ids_.clear();
}

}  // namespace provlin::common
