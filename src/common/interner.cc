#include "common/interner.h"

namespace provlin::common {

SymbolId SymbolTable::Intern(std::string_view name) {
  auto it = ids_.find(name);
  if (it != ids_.end()) return it->second;
  SymbolId id = static_cast<SymbolId>(names_.size());
  names_.emplace_back(name);
  ids_.emplace(names_.back(), id);
  return id;
}

std::optional<SymbolId> SymbolTable::Lookup(std::string_view name) const {
  auto it = ids_.find(name);
  if (it == ids_.end()) return std::nullopt;
  return it->second;
}

void SymbolTable::Restore(std::vector<std::string> names) {
  names_ = std::move(names);
  ids_.clear();
  ids_.reserve(names_.size());
  for (size_t i = 0; i < names_.size(); ++i) {
    ids_.emplace(names_[i], static_cast<SymbolId>(i));
  }
}

void SymbolTable::Clear() {
  names_.clear();
  ids_.clear();
}

size_t IndexDictionary::PathHash::operator()(
    const std::vector<int32_t>& parts) const {
  size_t h = 0xcbf29ce484222325ull;
  for (int32_t p : parts) {
    h ^= static_cast<size_t>(static_cast<uint32_t>(p));
    h *= 0x100000001b3ull;
  }
  return h;
}

IndexId IndexDictionary::Intern(const std::vector<int32_t>& parts) {
  auto it = ids_.find(parts);
  if (it != ids_.end()) return it->second;
  IndexId id = static_cast<IndexId>(paths_.size());
  paths_.push_back(parts);
  ids_.emplace(paths_.back(), id);
  return id;
}

std::optional<IndexId> IndexDictionary::Lookup(
    const std::vector<int32_t>& parts) const {
  auto it = ids_.find(parts);
  if (it == ids_.end()) return std::nullopt;
  return it->second;
}

void IndexDictionary::Restore(std::vector<std::vector<int32_t>> paths) {
  paths_ = std::move(paths);
  ids_.clear();
  ids_.reserve(paths_.size());
  for (size_t i = 0; i < paths_.size(); ++i) {
    ids_.emplace(paths_[i], static_cast<IndexId>(i));
  }
}

void IndexDictionary::Clear() {
  paths_.clear();
  ids_.clear();
}

}  // namespace provlin::common
