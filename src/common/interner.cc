#include "common/interner.h"

#include <mutex>

namespace provlin::common {

SymbolTable::SymbolTable(SymbolTable&& other) noexcept {
  std::unique_lock<std::shared_mutex> lock(other.mu_);
  names_ = std::move(other.names_);
  ids_ = std::move(other.ids_);
  other.names_.clear();
  other.ids_.clear();
}

SymbolTable& SymbolTable::operator=(SymbolTable&& other) noexcept {
  if (this == &other) return *this;
  std::unique_lock<std::shared_mutex> self_lock(mu_, std::defer_lock);
  std::unique_lock<std::shared_mutex> other_lock(other.mu_, std::defer_lock);
  std::lock(self_lock, other_lock);
  names_ = std::move(other.names_);
  ids_ = std::move(other.ids_);
  other.names_.clear();
  other.ids_.clear();
  return *this;
}

SymbolId SymbolTable::Intern(std::string_view name) {
  {
    std::shared_lock<std::shared_mutex> lock(mu_);
    auto it = ids_.find(name);
    if (it != ids_.end()) return it->second;
  }
  std::unique_lock<std::shared_mutex> lock(mu_);
  // Double-check: another thread may have minted the id between locks.
  auto it = ids_.find(name);
  if (it != ids_.end()) return it->second;
  SymbolId id = static_cast<SymbolId>(names_.size());
  names_.emplace_back(name);
  ids_.emplace(std::string_view(names_.back()), id);
  return id;
}

std::optional<SymbolId> SymbolTable::Lookup(std::string_view name) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  auto it = ids_.find(name);
  if (it == ids_.end()) return std::nullopt;
  return it->second;
}

const std::string& SymbolTable::NameOf(SymbolId id) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return names_[id];
}

size_t SymbolTable::size() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return names_.size();
}

std::vector<std::string> SymbolTable::names() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return std::vector<std::string>(names_.begin(), names_.end());
}

void SymbolTable::Restore(std::vector<std::string> names) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  names_.assign(std::make_move_iterator(names.begin()),
                std::make_move_iterator(names.end()));
  ids_.clear();
  ids_.reserve(names_.size());
  for (size_t i = 0; i < names_.size(); ++i) {
    ids_.emplace(std::string_view(names_[i]), static_cast<SymbolId>(i));
  }
}

void SymbolTable::Clear() {
  std::unique_lock<std::shared_mutex> lock(mu_);
  names_.clear();
  ids_.clear();
}

IndexDictionary::IndexDictionary(IndexDictionary&& other) noexcept {
  std::unique_lock<std::shared_mutex> lock(other.mu_);
  paths_ = std::move(other.paths_);
  ids_ = std::move(other.ids_);
  other.paths_.clear();
  other.ids_.clear();
}

IndexDictionary& IndexDictionary::operator=(IndexDictionary&& other) noexcept {
  if (this == &other) return *this;
  std::unique_lock<std::shared_mutex> self_lock(mu_, std::defer_lock);
  std::unique_lock<std::shared_mutex> other_lock(other.mu_, std::defer_lock);
  std::lock(self_lock, other_lock);
  paths_ = std::move(other.paths_);
  ids_ = std::move(other.ids_);
  other.paths_.clear();
  other.ids_.clear();
  return *this;
}

size_t IndexDictionary::PathHash::operator()(
    const std::vector<int32_t>& parts) const {
  size_t h = 0xcbf29ce484222325ull;
  for (int32_t p : parts) {
    h ^= static_cast<size_t>(static_cast<uint32_t>(p));
    h *= 0x100000001b3ull;
  }
  return h;
}

IndexId IndexDictionary::Intern(const std::vector<int32_t>& parts) {
  {
    std::shared_lock<std::shared_mutex> lock(mu_);
    auto it = ids_.find(parts);
    if (it != ids_.end()) return it->second;
  }
  std::unique_lock<std::shared_mutex> lock(mu_);
  auto it = ids_.find(parts);
  if (it != ids_.end()) return it->second;
  IndexId id = static_cast<IndexId>(paths_.size());
  paths_.push_back(parts);
  ids_.emplace(paths_.back(), id);
  return id;
}

std::optional<IndexId> IndexDictionary::Lookup(
    const std::vector<int32_t>& parts) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  auto it = ids_.find(parts);
  if (it == ids_.end()) return std::nullopt;
  return it->second;
}

const std::vector<int32_t>& IndexDictionary::PartsOf(IndexId id) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return paths_[id];
}

size_t IndexDictionary::size() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return paths_.size();
}

std::vector<std::vector<int32_t>> IndexDictionary::paths() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return std::vector<std::vector<int32_t>>(paths_.begin(), paths_.end());
}

void IndexDictionary::Restore(std::vector<std::vector<int32_t>> paths) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  paths_.assign(std::make_move_iterator(paths.begin()),
                std::make_move_iterator(paths.end()));
  ids_.clear();
  ids_.reserve(paths_.size());
  for (size_t i = 0; i < paths_.size(); ++i) {
    ids_.emplace(paths_[i], static_cast<IndexId>(i));
  }
}

void IndexDictionary::Clear() {
  std::unique_lock<std::shared_mutex> lock(mu_);
  paths_.clear();
  ids_.clear();
}

}  // namespace provlin::common
