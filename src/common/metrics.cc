#include "common/metrics.h"

#include <algorithm>
#include <cstdio>
#include <thread>

namespace provlin::common::metrics {

namespace {

/// Sanitizes a registry key into a Prometheus metric name: the exported
/// name must match [a-zA-Z_:][a-zA-Z0-9_:]*, so '/' and any other
/// punctuation become '_' and everything gets the provlin_ prefix.
std::string PrometheusName(const std::string& key) {
  std::string out = "provlin_";
  for (char c : key) {
    bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
              (c >= '0' && c <= '9') || c == '_' || c == ':';
    out += ok ? c : '_';
  }
  return out;
}

std::string FormatDouble(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%g", v);
  return buf;
}

/// Minimal JSON string escaping for metric keys (keys are code-chosen
/// paths, but exposition output must stay well-formed regardless).
std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)), counts_(bounds_.size() + 1) {}

void Histogram::Observe(double v) {
  // Buckets are inclusive upper bounds (Prometheus `le` semantics): an
  // observation equal to a bound lands in that bound's bucket.
  size_t i = static_cast<size_t>(
      std::lower_bound(bounds_.begin(), bounds_.end(), v) - bounds_.begin());
  counts_[i].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  double cur = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(cur, cur + v,
                                     std::memory_order_relaxed)) {
  }
}

HistogramSnapshot Histogram::Snapshot() const {
  HistogramSnapshot snap;
  snap.bounds = bounds_;
  snap.counts.reserve(counts_.size());
  for (const auto& c : counts_) {
    snap.counts.push_back(c.load(std::memory_order_relaxed));
  }
  snap.count = count_.load(std::memory_order_relaxed);
  snap.sum = sum_.load(std::memory_order_relaxed);
  return snap;
}

void Histogram::Reset() {
  for (auto& c : counts_) c.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
}

double HistogramSnapshot::Percentile(double q) const {
  if (count == 0 || counts.empty()) return kEmptyHistogramPercentile;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  // Rank of the target observation among `count` sorted observations.
  double rank = q * static_cast<double>(count);
  uint64_t cumulative = 0;
  for (size_t i = 0; i < counts.size(); ++i) {
    cumulative += counts[i];
    if (static_cast<double>(cumulative) < rank) continue;
    // The +Inf bucket has no finite upper edge to interpolate toward:
    // report the last finite bound (or 0 for a bound-less histogram).
    if (i >= bounds.size()) return bounds.empty() ? 0.0 : bounds.back();
    double lo = i == 0 ? 0.0 : bounds[i - 1];
    double hi = bounds[i];
    uint64_t in_bucket = counts[i];
    if (in_bucket == 0) return hi;
    double into = rank - static_cast<double>(cumulative - in_bucket);
    return lo + (hi - lo) * (into / static_cast<double>(in_bucket));
  }
  return bounds.empty() ? 0.0 : bounds.back();
}

const std::vector<double>& DefaultLatencyBoundsMs() {
  static const std::vector<double> kBounds = {
      0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 25, 50, 100, 250, 500,
      1000, 2500, 5000, 10000};
  return kBounds;
}

const std::vector<double>& DefaultSizeBounds() {
  static const std::vector<double> kBounds = {1,  2,   4,   8,   16,  32, 64,
                                              128, 256, 512, 1024, 2048, 4096};
  return kBounds;
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

Counter* MetricsRegistry::GetCounter(std::string_view name) {
  {
    ReaderLock lock(mu_);
    auto it = counters_.find(name);
    if (it != counters_.end()) return it->second.get();
  }
  WriterLock lock(mu_);
  auto [it, inserted] =
      counters_.try_emplace(std::string(name), nullptr);
  if (inserted) it->second = std::make_unique<Counter>();
  return it->second.get();
}

Gauge* MetricsRegistry::GetGauge(std::string_view name) {
  {
    ReaderLock lock(mu_);
    auto it = gauges_.find(name);
    if (it != gauges_.end()) return it->second.get();
  }
  WriterLock lock(mu_);
  auto [it, inserted] = gauges_.try_emplace(std::string(name), nullptr);
  if (inserted) it->second = std::make_unique<Gauge>();
  return it->second.get();
}

Histogram* MetricsRegistry::GetHistogram(std::string_view name,
                                         const std::vector<double>& bounds) {
  {
    ReaderLock lock(mu_);
    auto it = histograms_.find(name);
    if (it != histograms_.end()) return it->second.get();
  }
  WriterLock lock(mu_);
  auto [it, inserted] = histograms_.try_emplace(std::string(name), nullptr);
  if (inserted) it->second = std::make_unique<Histogram>(bounds);
  return it->second.get();
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  MetricsSnapshot snap;
  ReaderLock lock(mu_);
  for (const auto& [name, c] : counters_) snap.counters[name] = c->Value();
  for (const auto& [name, g] : gauges_) snap.gauges[name] = g->Value();
  for (const auto& [name, h] : histograms_) {
    snap.histograms[name] = h->Snapshot();
  }
  return snap;
}

void MetricsRegistry::Reset() {
  ReaderLock lock(mu_);
  for (const auto& [name, c] : counters_) c->Reset();
  for (const auto& [name, g] : gauges_) g->Reset();
  for (const auto& [name, h] : histograms_) h->Reset();
}

size_t MetricsRegistry::num_instruments() const {
  ReaderLock lock(mu_);
  return counters_.size() + gauges_.size() + histograms_.size();
}

uint64_t MetricsSnapshot::counter(std::string_view name) const {
  auto it = counters.find(std::string(name));
  return it == counters.end() ? 0 : it->second;
}

int64_t MetricsSnapshot::gauge(std::string_view name) const {
  auto it = gauges.find(std::string(name));
  return it == gauges.end() ? 0 : it->second;
}

double MetricsSnapshot::histogram_sum(std::string_view name) const {
  auto it = histograms.find(std::string(name));
  return it == histograms.end() ? 0.0 : it->second.sum;
}

std::string MetricsSnapshot::ToPrometheusText() const {
  std::string out;
  for (const auto& [name, value] : counters) {
    std::string pname = PrometheusName(name);
    out += "# TYPE " + pname + " counter\n";
    out += pname + " " + std::to_string(value) + "\n";
  }
  for (const auto& [name, value] : gauges) {
    std::string pname = PrometheusName(name);
    out += "# TYPE " + pname + " gauge\n";
    out += pname + " " + std::to_string(value) + "\n";
  }
  for (const auto& [name, h] : histograms) {
    std::string pname = PrometheusName(name);
    out += "# TYPE " + pname + " histogram\n";
    uint64_t cumulative = 0;
    for (size_t i = 0; i < h.bounds.size(); ++i) {
      cumulative += h.counts[i];
      out += pname + "_bucket{le=\"" + FormatDouble(h.bounds[i]) + "\"} " +
             std::to_string(cumulative) + "\n";
    }
    out += pname + "_bucket{le=\"+Inf\"} " + std::to_string(h.count) + "\n";
    out += pname + "_sum " + FormatDouble(h.sum) + "\n";
    out += pname + "_count " + std::to_string(h.count) + "\n";
  }
  return out;
}

std::string MetricsSnapshot::ToJson(int indent) const {
  std::string pad(static_cast<size_t>(indent < 0 ? 0 : indent), ' ');
  std::string pad2 = pad + "  ";
  std::string pad4 = pad2 + "  ";
  std::string out = "{\n";
  out += pad2 + "\"counters\": {";
  bool first = true;
  for (const auto& [name, value] : counters) {
    out += first ? "\n" : ",\n";
    first = false;
    out += pad4 + "\"" + JsonEscape(name) + "\": " + std::to_string(value);
  }
  out += first ? "},\n" : "\n" + pad2 + "},\n";
  out += pad2 + "\"gauges\": {";
  first = true;
  for (const auto& [name, value] : gauges) {
    out += first ? "\n" : ",\n";
    first = false;
    out += pad4 + "\"" + JsonEscape(name) + "\": " + std::to_string(value);
  }
  out += first ? "},\n" : "\n" + pad2 + "},\n";
  out += pad2 + "\"histograms\": {";
  first = true;
  for (const auto& [name, h] : histograms) {
    out += first ? "\n" : ",\n";
    first = false;
    out += pad4 + "\"" + JsonEscape(name) + "\": {\"count\": " +
           std::to_string(h.count) + ", \"sum\": " + FormatDouble(h.sum) +
           ", \"buckets\": [";
    for (size_t i = 0; i < h.counts.size(); ++i) {
      if (i > 0) out += ", ";
      out += std::to_string(h.counts[i]);
    }
    out += "]}";
  }
  out += first ? "}\n" : "\n" + pad2 + "}\n";
  out += pad + "}";
  return out;
}

}  // namespace provlin::common::metrics
