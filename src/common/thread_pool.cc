#include "common/thread_pool.h"

#include <utility>

namespace provlin::common {

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) num_threads = 1;
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mu_);
    shutting_down_ = true;
  }
  wake_.NotifyAll();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::Submit(std::function<void(size_t)> task) {
  {
    MutexLock lock(mu_);
    queue_.push_back(std::move(task));
  }
  wake_.NotifyOne();
}

void ThreadPool::Submit(std::function<void()> task) {
  Submit([fn = std::move(task)](size_t) { fn(); });
}

void ThreadPool::WaitIdle() {
  MutexLock lock(mu_);
  // Explicit predicate loop: the guarded reads happen here, where the
  // analysis sees mu_ held (a wait-with-lambda predicate would be
  // analyzed as a lockless separate function and flagged).
  while (!queue_.empty() || in_flight_ != 0) idle_.Wait(mu_);
}

void ThreadPool::WorkerLoop(size_t worker) {
  for (;;) {
    std::function<void(size_t)> task;
    {
      MutexLock lock(mu_);
      while (!shutting_down_ && queue_.empty()) wake_.Wait(mu_);
      if (queue_.empty()) return;  // shutting down and drained
      task = std::move(queue_.front());
      queue_.pop_front();
      ++in_flight_;
    }
    task(worker);
    {
      MutexLock lock(mu_);
      --in_flight_;
      if (queue_.empty() && in_flight_ == 0) idle_.NotifyAll();
    }
  }
}

}  // namespace provlin::common
