#include "common/thread_pool.h"

#include <utility>

namespace provlin::common {

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) num_threads = 1;
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutting_down_ = true;
  }
  wake_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::Submit(std::function<void(size_t)> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
  }
  wake_.notify_one();
}

void ThreadPool::Submit(std::function<void()> task) {
  Submit([fn = std::move(task)](size_t) { fn(); });
}

void ThreadPool::WaitIdle() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_.wait(lock, [this] { return queue_.empty() && in_flight_ == 0; });
}

void ThreadPool::WorkerLoop(size_t worker) {
  for (;;) {
    std::function<void(size_t)> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      wake_.wait(lock, [this] { return shutting_down_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutting down and drained
      task = std::move(queue_.front());
      queue_.pop_front();
      ++in_flight_;
    }
    task(worker);
    {
      std::lock_guard<std::mutex> lock(mu_);
      --in_flight_;
      if (queue_.empty() && in_flight_ == 0) idle_.notify_all();
    }
  }
}

}  // namespace provlin::common
