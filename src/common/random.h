#ifndef PROVLIN_COMMON_RANDOM_H_
#define PROVLIN_COMMON_RANDOM_H_

#include <cstdint>

namespace provlin {

/// Deterministic, seedable xorshift128+ generator. All simulators, the
/// synthetic workflow generator, and the property-test drivers draw from
/// this so every experiment in the repo is reproducible bit-for-bit.
class Random {
 public:
  explicit Random(uint64_t seed = 0x9E3779B97F4A7C15ull) {
    // SplitMix64 expansion of the seed into the two lanes.
    s_[0] = SplitMix(&seed);
    s_[1] = SplitMix(&seed);
    if (s_[0] == 0 && s_[1] == 0) s_[0] = 1;
  }

  uint64_t Next() {
    uint64_t x = s_[0];
    const uint64_t y = s_[1];
    s_[0] = y;
    x ^= x << 23;
    s_[1] = x ^ y ^ (x >> 17) ^ (y >> 26);
    return s_[1] + y;
  }

  /// Uniform integer in [0, bound). bound must be > 0.
  uint64_t Uniform(uint64_t bound) { return Next() % bound; }

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t UniformRange(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(
                    Uniform(static_cast<uint64_t>(hi - lo + 1)));
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// True with probability p.
  bool Bernoulli(double p) { return NextDouble() < p; }

 private:
  static uint64_t SplitMix(uint64_t* state) {
    uint64_t z = (*state += 0x9E3779B97F4A7C15ull);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
  }

  uint64_t s_[2];
};

}  // namespace provlin

#endif  // PROVLIN_COMMON_RANDOM_H_
