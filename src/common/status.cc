#include "common/status.h"

namespace provlin {

std::string_view StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kCorruption:
      return "Corruption";
    case StatusCode::kIoError:
      return "IoError";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
    case StatusCode::kUnavailable:
      return "Unavailable";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out(StatusCodeName(code_));
  out += ": ";
  out += message_;
  return out;
}

}  // namespace provlin
