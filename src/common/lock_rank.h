#ifndef PROVLIN_COMMON_LOCK_RANK_H_
#define PROVLIN_COMMON_LOCK_RANK_H_

#include <cstdint>

namespace provlin::common {

/// Central registry of lock ranks — the machine-checked form of the
/// DESIGN.md §10/§11/§12/§13 lock inventories. Every Mutex/SharedMutex
/// in the tree is constructed with exactly one of these names (the
/// rank-less constructor is deleted, and tools/lint_provlin.py rejects
/// construction sites under src/ whose initializer does not spell a
/// `LockRank::` enumerator).
///
/// The invariant (enforced at runtime in PROVLIN_LOCK_DEBUG builds, see
/// common/lock_debug.h and DESIGN.md §15): along any one thread's
/// acquisition chain, ranks must STRICTLY INCREASE. A lock acquired
/// first (outermost) therefore carries a numerically smaller rank than
/// every lock acquired while it is held. Acquiring a lock whose rank is
/// ≤ the deepest rank currently held aborts the process with both
/// acquisition sites. The one sanctioned exception is same-rank
/// acquisition under lock_debug::SameRankExemptionScope — used by the
/// interner's address-ordered DualWriterLock, where two instances of
/// the same lock are taken in runtime (address) order.
///
/// Values are spaced so future locks can slot between existing ones
/// without renumbering the tree. Keep this list in the same order as
/// the DESIGN.md lock tables, and add the rank there when adding one
/// here.
enum class LockRank : uint32_t {
  // --- Server tier (outermost: the serving path acquires these before
  //     anything below; DESIGN.md §12 lock inventory). ---
  /// LineageServer::conns_mu_ — live-connection list.
  kServerConnections = 100,
  /// LineageServer::queue_mu_ — admission-controlled dispatch queue.
  kServerQueue = 110,
  /// LineageServer::Connection::write_mu — per-connection response
  /// frame serialization.
  kServerConnWrite = 120,
  /// SlowRequestLog::mu_ — structured slow-request log file.
  kServerSlowLog = 130,

  // --- Service tier (DESIGN.md §10). ---
  /// LineageService::ExecuteBatch's stack-local batch-completion latch.
  kServiceBatchLatch = 200,
  /// LineageService::metrics_mu_ — end-of-batch accumulation.
  kServiceMetrics = 210,
  /// tools/loadgen per-connection intended-send-time map (client side
  /// of the serving path; never held with server-process locks).
  kLoadgenConn = 250,

  // --- Shared pools. ---
  /// ThreadPool::mu_ — task queue and shutdown protocol. Never held
  /// while a task runs, so everything a task acquires ranks above it.
  kThreadPool = 300,

  // --- Lineage planning. ---
  /// IndexProjLineage::PlanCache::mu — plan map (builds run outside
  /// it, under the entry's once_flag).
  kPlanCache = 400,
  /// Dataflow::Ports() lazy PortSpace build (static build_mu).
  kDataflowPorts = 450,

  // --- Trace store (DESIGN.md §11: within a shard, ingest_mu <
  //     data_mu < wal_mu; cross-shard locks are never held together). ---
  /// TraceStore::Rep::run_mu — global run sequence numbers.
  kStoreRunSeq = 500,
  /// TraceStore::Shard::ingest_mu — bounded ingest queue, watermarks,
  /// intern cache.
  kShardIngest = 510,
  /// TraceStore::Shard::data_mu — tables, owned WAL, sealed segments.
  kShardData = 520,
  /// TraceStore::Rep::wal_mu — externally-attached shared WAL; nests
  /// inside the owning shard's data_mu on the apply path.
  kStoreSharedWal = 530,
  /// Batch fan-out completion latch (FanLatch::mu in trace_store.cc).
  kStoreFanLatch = 540,
  /// ProbeMemo::mu_ — per-batch probe dedup maps. Consulted and filled
  /// in scopes that never overlap a shard lock, but ranked above
  /// data_mu so a future overlap could only nest it inside.
  kProbeMemo = 550,

  // --- Storage. ---
  /// Database::Blobs::mu — blob catalog; sealing takes it under the
  /// owning shard's exclusive data_mu.
  kDatabaseBlobs = 600,

  // --- Identifier layer (interned under shard/plan locks, so it ranks
  //     above all of them; DESIGN.md §10). ---
  /// SymbolTable::mu_. Move assignment locks two instances at this one
  /// rank via the address-ordered DualWriterLock (same-rank exemption).
  kSymbolTable = 700,
  /// IndexDictionary::mu_ — same contract as SymbolTable.
  kIndexDictionary = 710,

  // --- Observability leaves (innermost: instrumented code may hold
  //     any lock above when these are taken; they call out to nothing). ---
  /// Tracer::mu_ — span ring buffer.
  kTracer = 880,
  /// MetricsRegistry::mu_ — instrument maps. First-call GetCounter /
  /// GetGauge / GetHistogram statics may run under arbitrary locks, so
  /// this is the deepest rank in the tree.
  kMetricsRegistry = 900,

  // --- Tests only: generic ranks for fixtures that need an ordered
  //     pair/triple without touching production ranks. ---
  kTestOuter = 960,
  kTestMiddle = 970,
  kTestInner = 980,
};

/// The registered name of a rank, for diagnostics ("shard.data_mu").
/// Returns "unregistered" for a value outside the registry — which the
/// PROVLIN_LOCK_DEBUG abort message surfaces loudly.
constexpr const char* LockRankName(LockRank rank) {
  switch (rank) {
    case LockRank::kServerConnections:
      return "server.conns_mu";
    case LockRank::kServerQueue:
      return "server.queue_mu";
    case LockRank::kServerConnWrite:
      return "server.connection.write_mu";
    case LockRank::kServerSlowLog:
      return "server.slow_log_mu";
    case LockRank::kServiceBatchLatch:
      return "service.batch_latch_mu";
    case LockRank::kServiceMetrics:
      return "service.metrics_mu";
    case LockRank::kLoadgenConn:
      return "loadgen.conn_mu";
    case LockRank::kThreadPool:
      return "thread_pool.mu";
    case LockRank::kPlanCache:
      return "lineage.plan_cache_mu";
    case LockRank::kDataflowPorts:
      return "workflow.ports_build_mu";
    case LockRank::kStoreRunSeq:
      return "trace_store.run_mu";
    case LockRank::kShardIngest:
      return "trace_store.shard.ingest_mu";
    case LockRank::kShardData:
      return "trace_store.shard.data_mu";
    case LockRank::kStoreSharedWal:
      return "trace_store.wal_mu";
    case LockRank::kStoreFanLatch:
      return "trace_store.fan_latch_mu";
    case LockRank::kProbeMemo:
      return "trace_store.probe_memo_mu";
    case LockRank::kDatabaseBlobs:
      return "database.blobs_mu";
    case LockRank::kSymbolTable:
      return "interner.symbol_table_mu";
    case LockRank::kIndexDictionary:
      return "interner.index_dictionary_mu";
    case LockRank::kTracer:
      return "tracing.tracer_mu";
    case LockRank::kMetricsRegistry:
      return "metrics.registry_mu";
    case LockRank::kTestOuter:
      return "test.outer";
    case LockRank::kTestMiddle:
      return "test.middle";
    case LockRank::kTestInner:
      return "test.inner";
  }
  return "unregistered";
}

}  // namespace provlin::common

#endif  // PROVLIN_COMMON_LOCK_RANK_H_
