#ifndef PROVLIN_COMMON_METRICS_H_
#define PROVLIN_COMMON_METRICS_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "common/annotations.h"
#include "common/sync.h"

namespace provlin::common::metrics {

/// Process-wide observability substrate: named counters, gauges, and
/// fixed-bucket latency histograms, all registered in one
/// MetricsRegistry. Every tier (storage, provenance, lineage, service)
/// reports into the same registry, so one snapshot shows a query's whole
/// cost pyramid — trace probes over B+-tree descents over WAL appends —
/// with consistent names.
///
/// Naming convention (see DESIGN.md "Observability"): keys are
/// `<tier>/<what>` paths, lowercase, e.g. "storage/descents",
/// "lineage/plan_cache_hits", "service/queue_wait_ms". Prometheus
/// exposition rewrites '/' to '_' and prefixes "provlin_".
///
/// Hot-path cost: Counter::Add is one relaxed fetch_add on a sharded
/// cache-line-padded atomic; call sites cache the Counter* in a local
/// static, so steady state is pointer deref + relaxed add.

/// Monotonic counter, sharded to keep concurrent writers off each
/// other's cache lines. Value() sums the shards (racy-exact under
/// concurrent writers, exact when quiescent — same contract as the
/// storage layer's TableStats).
///
/// Deliberately lock-free: every field is a relaxed atomic, so nothing
/// here is mutex-guarded and the thread safety analysis has nothing to
/// check — the whole contract is "individual reads/writes are atomic,
/// cross-shard sums are racy-exact". The same holds for Gauge and
/// Histogram below; only the registry's name→instrument maps take a
/// capability.
class Counter {
 public:
  Counter() = default;
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  void Add(uint64_t n = 1) {
    shards_[ShardIndex()].v.fetch_add(n, std::memory_order_relaxed);
  }
  void Increment() { Add(1); }

  uint64_t Value() const {
    uint64_t sum = 0;
    for (const Shard& s : shards_) sum += s.v.load(std::memory_order_relaxed);
    return sum;
  }

  void Reset() {
    for (Shard& s : shards_) s.v.store(0, std::memory_order_relaxed);
  }

 private:
  /// One cache line per shard; threads hash onto shards by id, so the
  /// common case (few hot threads) never contends a line.
  struct alignas(64) Shard {
    std::atomic<uint64_t> v{0};
  };
  static constexpr size_t kShards = 8;

  // One shard per thread, fixed at first use. Inline so Add() compiles
  // down to a TLS load plus a relaxed fetch_add — this sits on per-probe
  // and per-row paths.
  static size_t ShardIndex() {
    thread_local const size_t shard =
        std::hash<std::thread::id>{}(std::this_thread::get_id()) % kShards;
    return shard;
  }

  Shard shards_[kShards];
};

/// Last-write-wins signed gauge (e.g. "service/last_batch_wall_us").
class Gauge {
 public:
  Gauge() = default;
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  void Set(int64_t v) { v_.store(v, std::memory_order_relaxed); }
  void Add(int64_t n) { v_.fetch_add(n, std::memory_order_relaxed); }
  int64_t Value() const { return v_.load(std::memory_order_relaxed); }
  void Reset() { Set(0); }

 private:
  std::atomic<int64_t> v_{0};
};

/// What HistogramSnapshot::Percentile reports for a histogram with no
/// observations. Deliberately 0.0 rather than NaN: every consumer
/// (loadgen's BENCH_served.json, bench reports, the stats command)
/// feeds percentiles straight into JSON or arithmetic, where a NaN
/// would silently poison the output, while 0.0 reads as "no latency
/// observed" and keeps monotonicity checks (p50 ≤ p95 ≤ p99) trivially
/// true. Callers that must distinguish "empty" from "all zeros" check
/// HistogramSnapshot::count themselves.
inline constexpr double kEmptyHistogramPercentile = 0.0;

/// Point-in-time histogram contents (value snapshot).
struct HistogramSnapshot {
  /// Upper bounds of the finite buckets; counts has bounds.size() + 1
  /// entries, the last one being the +Inf overflow bucket.
  std::vector<double> bounds;
  std::vector<uint64_t> counts;
  uint64_t count = 0;
  double sum = 0.0;

  /// Estimated value at quantile q in [0, 1] (0.5 = p50, 0.99 = p99) by
  /// linear interpolation within the bucket the rank falls into — the
  /// Prometheus histogram_quantile estimator. Observations in the +Inf
  /// overflow bucket report the last finite bound (the estimate cannot
  /// exceed what the buckets can represent). An empty histogram (count
  /// == 0, or a snapshot with no buckets at all) returns the
  /// kEmptyHistogramPercentile sentinel for every q. This is how
  /// served-latency p50/p95/p99 are derived from the registry's
  /// fixed-bucket histograms (loadgen, bench reports).
  double Percentile(double q) const;
};

/// Fixed-bucket histogram. Bucket bounds are set at registration and
/// never change; Observe() is a branchless-ish scan over a handful of
/// bounds plus two relaxed adds. Not for hot per-probe paths — use it at
/// aggregation points (per query, per batch, per WAL append).
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  void Observe(double v);

  HistogramSnapshot Snapshot() const;
  void Reset();

  const std::vector<double>& bounds() const { return bounds_; }

 private:
  std::vector<double> bounds_;
  std::vector<std::atomic<uint64_t>> counts_;  // bounds_.size() + 1
  std::atomic<uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

/// Default latency buckets in milliseconds: 50 µs up to 10 s.
const std::vector<double>& DefaultLatencyBoundsMs();
/// Power-of-two size buckets (batch sizes, frontier widths): 1 .. 4096.
const std::vector<double>& DefaultSizeBounds();

/// Consistent point-in-time view of a whole registry, detached from the
/// live instruments: the API-stable surface that expositions, the CLI
/// `stats` command, bench JSON emissions, and the ServiceMetrics /
/// LineageTiming views are computed from.
struct MetricsSnapshot {
  std::map<std::string, uint64_t> counters;
  std::map<std::string, int64_t> gauges;
  std::map<std::string, HistogramSnapshot> histograms;

  /// Value of a named counter, 0 when absent (an instrument nobody
  /// touched is indistinguishable from one at zero).
  uint64_t counter(std::string_view name) const;
  int64_t gauge(std::string_view name) const;
  /// Sum field of a named histogram, 0 when absent.
  double histogram_sum(std::string_view name) const;

  /// Prometheus text exposition format (name-sanitized, HELP-less).
  std::string ToPrometheusText() const;
  /// JSON object {"counters": {...}, "gauges": {...}, "histograms": ...}.
  std::string ToJson(int indent = 0) const;
};

/// Named-instrument registry. Instruments are created on first use and
/// live for the registry's lifetime, so handles returned by Get* are
/// stable and may be cached in local statics at call sites.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// The process-wide registry every tier reports into.
  static MetricsRegistry& Global();

  Counter* GetCounter(std::string_view name);
  Gauge* GetGauge(std::string_view name);
  /// First registration fixes the bucket bounds; later calls with a
  /// different bounds vector get the existing instrument unchanged.
  Histogram* GetHistogram(std::string_view name,
                          const std::vector<double>& bounds_ms =
                              DefaultLatencyBoundsMs());

  MetricsSnapshot Snapshot() const;
  /// Zeroes every instrument (names and bucket bounds survive).
  void Reset();

  size_t num_instruments() const;

 private:
  mutable SharedMutex mu_{LockRank::kMetricsRegistry};
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_
      GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_
      GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_
      GUARDED_BY(mu_);
};

/// Global-registry conveniences — the forms instrumentation sites use:
///   static auto* c = common::metrics::GetCounter("storage/descents");
///   c->Add(n);
inline Counter* GetCounter(std::string_view name) {
  return MetricsRegistry::Global().GetCounter(name);
}
inline Gauge* GetGauge(std::string_view name) {
  return MetricsRegistry::Global().GetGauge(name);
}
inline Histogram* GetHistogram(std::string_view name,
                               const std::vector<double>& bounds_ms =
                                   DefaultLatencyBoundsMs()) {
  return MetricsRegistry::Global().GetHistogram(name, bounds_ms);
}

}  // namespace provlin::common::metrics

#endif  // PROVLIN_COMMON_METRICS_H_
