#include "common/string_util.h"

#include <cerrno>
#include <cstdlib>
#include <cstring>

namespace provlin {

std::vector<std::string> Split(std::string_view s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      break;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

std::string_view Trim(std::string_view s) {
  size_t b = 0;
  size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

bool ParseInt64(std::string_view s, int64_t* out) {
  if (s.empty()) return false;
  std::string buf(s);
  errno = 0;
  char* end = nullptr;
  long long v = std::strtoll(buf.c_str(), &end, 10);
  if (errno == ERANGE || end != buf.c_str() + buf.size()) return false;
  *out = static_cast<int64_t>(v);
  return true;
}

bool ParseDouble(std::string_view s, double* out) {
  if (s.empty()) return false;
  std::string buf(s);
  errno = 0;
  char* end = nullptr;
  double v = std::strtod(buf.c_str(), &end);
  if (errno == ERANGE || end != buf.c_str() + buf.size()) return false;
  *out = v;
  return true;
}

}  // namespace provlin
