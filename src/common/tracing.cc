#include "common/tracing.h"

#include <algorithm>
#include <cstdio>

#include "common/metrics.h"

namespace provlin::common::tracing {

namespace metrics = ::provlin::common::metrics;

namespace {

/// Per-thread span nesting depth (only meaningful while enabled; a span
/// opened under one Enable() and closed under another is dropped at
/// Record() via its generation stamp, so its depth never surfaces).
thread_local uint16_t t_depth = 0;

int64_t SteadyNowNanos() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

Tracer& Tracer::Global() {
  static Tracer* tracer = new Tracer();
  return *tracer;
}

void Tracer::Enable(size_t capacity) {
  MutexLock lock(mu_);
  ring_.clear();
  ring_.reserve(capacity == 0 ? 1 : capacity);
  ring_capacity_ = capacity == 0 ? 1 : capacity;
  total_recorded_ = 0;
  epoch_ns_.store(SteadyNowNanos(), std::memory_order_relaxed);
  // Release ordering on gen_ then enabled_: a guard that acquires either
  // also sees this Enable()'s epoch, so lock-free NowMicros() reads are
  // race-free and consistent with the generation it stamps.
  gen_.fetch_add(1, std::memory_order_release);
  enabled_.store(true, std::memory_order_release);
}

void Tracer::Disable() { enabled_.store(false, std::memory_order_release); }

uint64_t Tracer::NowMicros() const {
  int64_t now_ns = SteadyNowNanos();
  int64_t epoch_ns = epoch_ns_.load(std::memory_order_acquire);
  // A concurrent Enable() can move the epoch past an already-taken clock
  // reading; clamp instead of underflowing (the span then dies on its
  // generation check anyway).
  return now_ns <= epoch_ns
             ? 0
             : static_cast<uint64_t>(now_ns - epoch_ns) / 1000;
}

uint32_t Tracer::ThisThreadId() {
  static std::atomic<uint32_t> next{1};
  thread_local const uint32_t id =
      next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

void Tracer::Record(std::string name, std::string args, uint64_t ts_us,
                    uint64_t dur_us, uint16_t depth) {
  Record(std::move(name), std::move(args), ts_us, dur_us, depth,
         generation());
}

void Tracer::Record(std::string name, std::string args, uint64_t ts_us,
                    uint64_t dur_us, uint16_t depth, uint64_t generation) {
  TraceEvent ev;
  ev.name = std::move(name);
  ev.args = std::move(args);
  ev.ts_us = ts_us;
  ev.dur_us = dur_us;
  ev.tid = ThisThreadId();
  ev.depth = depth;
  MutexLock lock(mu_);
  if (!enabled_.load(std::memory_order_relaxed)) return;
  // Stale generation: the span opened under a previous Enable(), so its
  // start timestamp is measured against a dead epoch — drop it rather
  // than pollute the new capture with a garbage duration.
  if (generation != gen_.load(std::memory_order_relaxed)) return;
  if (ring_.size() < ring_capacity_) {
    ring_.push_back(std::move(ev));
  } else {
    // Wraparound: overwrite the oldest slot. total_recorded_ keeps the
    // logical position so Snapshot can unroll the ring in order.
    ring_[total_recorded_ % ring_capacity_] = std::move(ev);
  }
  ++total_recorded_;
}

std::vector<TraceEvent> Tracer::Snapshot() const {
  std::vector<TraceEvent> out;
  {
    MutexLock lock(mu_);
    if (total_recorded_ <= ring_.size()) {
      out = ring_;
    } else {
      // Oldest surviving event sits right after the most recent write.
      size_t start = total_recorded_ % ring_capacity_;
      out.reserve(ring_.size());
      for (size_t i = 0; i < ring_.size(); ++i) {
        out.push_back(ring_[(start + i) % ring_.size()]);
      }
    }
  }
  // Ties break by duration descending, then depth ascending, so an
  // enclosing span precedes the spans it contains — the order trace
  // viewers expect for same-tid "X" events sharing a start timestamp.
  // The depth tie-break matters when both spans round to 0us: guards
  // record on destruction, so the ring holds the inner span first.
  std::stable_sort(out.begin(), out.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     if (a.ts_us != b.ts_us) return a.ts_us < b.ts_us;
                     if (a.dur_us != b.dur_us) return a.dur_us > b.dur_us;
                     return a.depth < b.depth;
                   });
  return out;
}

uint64_t Tracer::dropped() const {
  MutexLock lock(mu_);
  return total_recorded_ <= ring_capacity_
             ? 0
             : total_recorded_ - ring_capacity_;
}

size_t Tracer::capacity() const {
  MutexLock lock(mu_);
  return ring_capacity_;
}

std::string Tracer::ExportChromeTrace() const {
  std::vector<TraceEvent> events = Snapshot();
  std::string out = "{\"traceEvents\": [\n";
  for (size_t i = 0; i < events.size(); ++i) {
    const TraceEvent& ev = events[i];
    out += "  {\"name\": \"" + JsonEscape(ev.name) +
           "\", \"cat\": \"provlin\", \"ph\": \"X\", \"ts\": " +
           std::to_string(ev.ts_us) + ", \"dur\": " +
           std::to_string(ev.dur_us) + ", \"pid\": 1, \"tid\": " +
           std::to_string(ev.tid);
    out += ", \"args\": {\"depth\": " + std::to_string(ev.depth);
    if (!ev.args.empty()) {
      out += ", \"note\": \"" + JsonEscape(ev.args) + "\"";
    }
    out += "}}";
    out += i + 1 < events.size() ? ",\n" : "\n";
  }
  out += "]}\n";
  return out;
}

void SpanGuard::Begin(const char* name) {
  active_ = true;
  name_ = name;
  depth_ = t_depth++;
  Tracer& tracer = Tracer::Global();
  gen_ = tracer.generation();
  start_us_ = tracer.NowMicros();
}

void SpanGuard::End() {
  Tracer& tracer = Tracer::Global();
  uint64_t end_us = tracer.NowMicros();
  if (t_depth > 0) --t_depth;
  // end < start only when an Enable() flip moved the epoch mid-span;
  // clamp so even a racing stale event carries a sane duration.
  uint64_t dur_us = end_us >= start_us_ ? end_us - start_us_ : 0;
  tracer.Record(name_, std::move(args_), start_us_, dur_us, depth_, gen_);
}

void PublishTracingStats() {
  Tracer& tracer = Tracer::Global();
  static metrics::Gauge* enabled = metrics::GetGauge("tracing/enabled");
  static metrics::Gauge* events = metrics::GetGauge("tracing/ring_events");
  static metrics::Gauge* capacity = metrics::GetGauge("tracing/ring_capacity");
  static metrics::Gauge* dropped = metrics::GetGauge("tracing/ring_dropped");
  enabled->Set(Tracer::enabled() ? 1 : 0);
  events->Set(static_cast<int64_t>(tracer.Snapshot().size()));
  capacity->Set(static_cast<int64_t>(tracer.capacity()));
  dropped->Set(static_cast<int64_t>(tracer.dropped()));
}

}  // namespace provlin::common::tracing
