#ifndef PROVLIN_COMMON_METRIC_NAMES_H_
#define PROVLIN_COMMON_METRIC_NAMES_H_

#include <string_view>

namespace provlin::common::metrics::names {

/// The one authoritative list of registry instrument names (DESIGN.md
/// §9). Every string-literal name passed to GetCounter / GetGauge /
/// GetHistogram anywhere under src/ or tools/ must appear in one of the
/// arrays below — enforced by tools/lint_provlin.py (rule
/// "metric-name") — so the schema `provlin stats` exposes, the names
/// DESIGN.md documents, and the names call sites bump cannot drift
/// apart. Tests are exempt (they register throwaway instruments on
/// purpose).
///
/// Dynamic names are the one sanctioned exception: per-shard
/// instruments follow the pattern `provenance/shard<k>/<what>` with
/// <what> ∈ {rows, probes, segments, segment_rows, segment_bytes,
/// hot_rows} (see trace_store.cc), and per-engine query counts follow
/// `lineage/queries_<engine>` (see lineage/query.cc); the lint only
/// checks complete literals, and the patterns are documented here and
/// in DESIGN.md instead.

/// Monotonic counters, `<tier>/<what>`.
inline constexpr std::string_view kCounterNames[] = {
    // storage: B+-tree and segment physical probe work
    "storage/inserts",
    "storage/deletes",
    "storage/index_probes",
    "storage/full_scans",
    "storage/rows_examined",
    "storage/batched_probes",
    "storage/descents",
    "storage/segment_probes",
    "storage/segment_entries_examined",
    "storage/segment_searches",
    "storage/segment_block_decodes",
    // write-ahead log
    "wal/appends",
    "wal/bytes",
    "wal/flushes",
    // provenance capture + probe memo
    "provenance/xform_rows",
    "provenance/xfer_rows",
    "provenance/rows_ingested",
    "provenance/memo_hits",
    "provenance/memo_lookups",
    // lineage engines
    "lineage/queries",
    "lineage/trace_probes",
    "lineage/trace_descents",
    "lineage/graph_steps",
    "lineage/plan_builds",
    "lineage/plan_cache_hits",
    // batch service
    "service/batches",
    "service/requests",
    "service/failed_requests",
    "service/plan_cache_hits",
    "service/trace_probes",
    "service/trace_descents",
    "service/probe_memo_hits",
    "service/probe_memo_lookups",
    // network server
    "server/connections_accepted",
    "server/connections_rejected",
    "server/requests",
    "server/responses_ok",
    "server/responses_error",
    "server/overload_shed",
    "server/bad_frames",
    "server/stats_requests",
    "server/slow_requests_logged",
    // frame transport
    "net/frames_in",
    "net/frames_out",
    "net/bytes_in",
    "net/bytes_out",
};

/// Last-write-wins gauges.
inline constexpr std::string_view kGaugeNames[] = {
    "service/last_batch_wall_us",
    "provenance/shards",
    "server/queue_depth",
    // tracer ring-sink health (published by PublishTracingStats)
    "tracing/enabled",
    "tracing/ring_events",
    "tracing/ring_capacity",
    "tracing/ring_dropped",
};

/// Latency histograms (DefaultLatencyBoundsMs buckets).
inline constexpr std::string_view kLatencyHistogramNames[] = {
    "lineage/t1_ms",
    "lineage/t2_ms",
    "service/queue_wait_ms",
    "service/exec_ms",
    "service/batch_wall_ms",
    "server/request_ms",
    // per-phase served-request decomposition (DESIGN.md §14)
    "server/queue_ms",
    "server/dispatch_ms",
    "server/execute_ms",
    "server/serialize_ms",
    "server/write_ms",
};

/// Size histograms (DefaultSizeBounds buckets).
inline constexpr std::string_view kSizeHistogramNames[] = {
    "storage/multiseek_batch_size",
    "server/batch_size",
};

/// Names owned by tools/loadgen — not pre-registered by the CLI (a
/// provlin process never bumps them) but part of the authoritative
/// schema for the lint and for BENCH_served.json consumers.
inline constexpr std::string_view kLoadgenCounterNames[] = {
    "loadgen/sent",
    "loadgen/ok",
    "loadgen/overloaded",
    "loadgen/errors",
};

inline constexpr std::string_view kLoadgenHistogramNames[] = {
    "loadgen/latency_ms",
    // per-phase aggregates scraped from --timelines answers
    "loadgen/timeline_queue_ms",
    "loadgen/timeline_dispatch_ms",
    "loadgen/timeline_execute_ms",
    "loadgen/timeline_total_ms",
};

}  // namespace provlin::common::metrics::names

#endif  // PROVLIN_COMMON_METRIC_NAMES_H_
