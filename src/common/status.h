#ifndef PROVLIN_COMMON_STATUS_H_
#define PROVLIN_COMMON_STATUS_H_

#include <string>
#include <string_view>
#include <utility>

namespace provlin {

/// Coarse error taxonomy used across the library. Modelled on the
/// RocksDB/Abseil style: library code reports failures through Status /
/// Result<T> values instead of exceptions.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kFailedPrecondition,
  kOutOfRange,
  kCorruption,
  kIoError,
  kInternal,
  kUnimplemented,
  /// Transient refusal: the callee is temporarily unable to take the
  /// work (e.g. the lineage server shed the request under overload).
  /// Retrying later may succeed — unlike FailedPrecondition, nothing
  /// about the request itself is wrong.
  kUnavailable,
};

/// Returns a stable human-readable name for a code (e.g. "InvalidArgument").
std::string_view StatusCodeName(StatusCode code);

/// Value type carrying either success (`ok()`) or an error code plus a
/// human-readable message. Cheap to copy in the success case.
class Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsInvalidArgument() const {
    return code_ == StatusCode::kInvalidArgument;
  }
  bool IsUnavailable() const { return code_ == StatusCode::kUnavailable; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

}  // namespace provlin

#endif  // PROVLIN_COMMON_STATUS_H_
