#include "common/logging.h"

#include <atomic>
#include <cstdio>

namespace provlin {
namespace {

std::atomic<LogLevel> g_level{LogLevel::kWarning};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

}  // namespace

void SetLogLevel(LogLevel level) { g_level.store(level); }
LogLevel GetLogLevel() { return g_level.load(); }

void LogMessage(LogLevel level, const char* file, int line,
                const std::string& message) {
  if (level < g_level.load()) return;
  std::fprintf(stderr, "[%s] %s:%d %s\n", LevelName(level), file, line,
               message.c_str());
}

}  // namespace provlin
