#include "common/logging.h"

#include <atomic>
#include <cstdio>

namespace provlin {
namespace {

/// Relaxed-atomic by contract: the level is a monotonicity-free tuning
/// knob read on every log site; racing a SetLogLevel with a log line
/// may deliver or drop that one line, which is acceptable. No mutex —
/// message emission itself relies on stdio's per-call FILE locking
/// (POSIX), so concurrent lines never interleave mid-line.
std::atomic<LogLevel> g_level{LogLevel::kWarning};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

}  // namespace

void SetLogLevel(LogLevel level) {
  g_level.store(level, std::memory_order_relaxed);
}
LogLevel GetLogLevel() { return g_level.load(std::memory_order_relaxed); }

void LogMessage(LogLevel level, const char* file, int line,
                const std::string& message) {
  if (level < g_level.load(std::memory_order_relaxed)) return;
  std::fprintf(stderr, "[%s] %s:%d %s\n", LevelName(level), file, line,
               message.c_str());
}

}  // namespace provlin
