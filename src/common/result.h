#ifndef PROVLIN_COMMON_RESULT_H_
#define PROVLIN_COMMON_RESULT_H_

#include <cassert>
#include <optional>
#include <utility>

#include "common/status.h"

namespace provlin {

/// Result<T> carries either a value of type T or a non-OK Status.
/// Access to value() on an error result is a programming error (asserts in
/// debug builds; undefined in release, as with absl::StatusOr).
template <typename T>
class Result {
 public:
  /// Implicit from value — enables `return some_t;`.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit from error status — enables `return Status::NotFound(...)`.
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "Result constructed from OK status without value");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  T& value() & {
    assert(ok());
    return *value_;
  }
  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }
  T&& operator*() && { return std::move(*this).value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

  /// Returns the contained value or `fallback` when in error state.
  T value_or(T fallback) const& { return ok() ? *value_ : std::move(fallback); }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace provlin

/// Propagates a non-OK Status from an expression returning Status.
#define PROVLIN_RETURN_IF_ERROR(expr)            \
  do {                                           \
    ::provlin::Status _st = (expr);              \
    if (!_st.ok()) return _st;                   \
  } while (0)

/// Evaluates an expression returning Result<T>; on success binds the value
/// to `lhs`, otherwise propagates the error status.
#define PROVLIN_ASSIGN_OR_RETURN(lhs, expr)                  \
  PROVLIN_ASSIGN_OR_RETURN_IMPL_(                            \
      PROVLIN_CONCAT_(_result_tmp_, __LINE__), lhs, expr)

#define PROVLIN_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, expr) \
  auto tmp = (expr);                                   \
  if (!tmp.ok()) return tmp.status();                  \
  lhs = std::move(tmp).value()

#define PROVLIN_CONCAT_(a, b) PROVLIN_CONCAT_IMPL_(a, b)
#define PROVLIN_CONCAT_IMPL_(a, b) a##b

#endif  // PROVLIN_COMMON_RESULT_H_
