#ifndef PROVLIN_COMMON_TIMER_H_
#define PROVLIN_COMMON_TIMER_H_

#include <chrono>
#include <cstdint>

namespace provlin {

/// Monotonic wall-clock timer used both by the lineage engines (to report
/// the paper's t1/t2 breakdown) and by the bench harness.
class WallTimer {
 public:
  WallTimer() { Restart(); }

  void Restart() { start_ = Clock::now(); }

  /// Elapsed time since construction / last Restart, in microseconds.
  int64_t ElapsedMicros() const {
    return std::chrono::duration_cast<std::chrono::microseconds>(
               Clock::now() - start_)
        .count();
  }

  double ElapsedMillis() const {
    return static_cast<double>(ElapsedMicros()) / 1000.0;
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace provlin

#endif  // PROVLIN_COMMON_TIMER_H_
