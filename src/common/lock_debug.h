#ifndef PROVLIN_COMMON_LOCK_DEBUG_H_
#define PROVLIN_COMMON_LOCK_DEBUG_H_

#include <cstddef>

#include "common/lock_rank.h"

#ifndef PROVLIN_LOCK_DEBUG
#define PROVLIN_LOCK_DEBUG 0
#endif

#if PROVLIN_LOCK_DEBUG
#include <source_location>
#endif

namespace provlin::common {

/// True when this build carries the runtime ranked-lock deadlock
/// detector (cmake -DPROVLIN_LOCK_DEBUG=ON; DESIGN.md §15). In release
/// builds every hook below compiles to nothing and common/sync.h
/// static-asserts that Mutex/SharedMutex are layout-identical to the
/// raw std primitives.
inline constexpr bool kLockDebugEnabled = PROVLIN_LOCK_DEBUG != 0;

namespace lock_debug {

#if PROVLIN_LOCK_DEBUG

/// Rank-checks and records a blocking acquisition about to happen on
/// the calling thread. Aborts (with both acquisition sites) when `rank`
/// is ≤ the deepest rank the thread already holds — unless the two
/// ranks are equal and a SameRankExemptionScope is active — or when the
/// new acquired-while-held edge closes a cycle in the process-global
/// lock-order graph. Called by common/sync.h only.
void OnAcquire(const void* lock, LockRank rank,
               const std::source_location& site);

/// Records a *successful* try-acquisition. A try-lock cannot block, so
/// its own ordering is not checked and it contributes no order-graph
/// edge — but the lock is now held, so it participates in the
/// deepest-held-rank check for every later blocking acquisition.
void OnTryAcquire(const void* lock, LockRank rank,
                  const std::source_location& site);

/// Pops `lock` from the calling thread's held set.
void OnRelease(const void* lock);

/// Forgets a destroyed lock: removes its node (and every incident
/// edge) from the process-global order graph so a reused address
/// cannot alias stale edges.
void OnDestroy(const void* lock);

/// Number of locks the calling thread currently holds (tests).
size_t HeldDepth();

/// While alive on a thread, acquiring a lock whose rank EQUALS the
/// deepest held rank is permitted on that thread (strictly lower still
/// aborts, and the acquisition still feeds the cycle detector). The
/// one production user is the interner's DualWriterLock, which locks
/// two same-rank instances in address order. Scopes nest.
class SameRankExemptionScope {
 public:
  SameRankExemptionScope();
  ~SameRankExemptionScope();
  SameRankExemptionScope(const SameRankExemptionScope&) = delete;
  SameRankExemptionScope& operator=(const SameRankExemptionScope&) = delete;
};

#else  // !PROVLIN_LOCK_DEBUG

// Release builds: the detector does not exist. HeldDepth() is constant
// 0 even while locks are held — tests/lock_debug_test.cc uses exactly
// that to prove the tracking state compiled out.
inline constexpr size_t HeldDepth() { return 0; }

class SameRankExemptionScope {
 public:
  SameRankExemptionScope() = default;
  SameRankExemptionScope(const SameRankExemptionScope&) = delete;
  SameRankExemptionScope& operator=(const SameRankExemptionScope&) = delete;
};

#endif  // PROVLIN_LOCK_DEBUG

}  // namespace lock_debug
}  // namespace provlin::common

#endif  // PROVLIN_COMMON_LOCK_DEBUG_H_
