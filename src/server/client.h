#ifndef PROVLIN_SERVER_CLIENT_H_
#define PROVLIN_SERVER_CLIENT_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "common/result.h"
#include "lineage/query.h"
#include "lineage/wire.h"
#include "server/frame.h"

namespace provlin::server {

/// Client half of the wire protocol: one TCP connection speaking
/// length-prefixed wire.h frames. Send() and Receive() are split so a
/// caller can pipeline — push a window of requests, then drain
/// responses, matching them by the echoed request id. A LineageClient
/// is single-threaded (loadgen runs one per connection thread); it is
/// movable but not copyable.
class LineageClient {
 public:
  static Result<LineageClient> Connect(
      const std::string& host, uint16_t port,
      uint32_t max_frame_bytes = lineage::wire::kDefaultMaxFrameBytes);

  LineageClient(LineageClient&&) = default;
  LineageClient& operator=(LineageClient&&) = default;

  /// Sends one request frame; returns the request id it was assigned
  /// (monotonic per client, echoed back in the response). The default
  /// encodes wire v1 — byte-identical to every pre-timeline client.
  /// Passing want_timeline=true upgrades the frame to wire v2 and asks
  /// the server to attach its per-phase RequestTimeline to the answer.
  Result<uint64_t> Send(std::string_view engine,
                        const lineage::LineageRequest& request,
                        bool want_timeline = false);

  /// Id the next Send() will use. Lets a pipelining caller register
  /// per-request state (e.g. intended send time) *before* the frame is
  /// on the wire — after Send() returns, the response may already have
  /// arrived on another thread.
  uint64_t next_request_id() const { return next_id_; }

  /// Blocks for the next response frame. NotFound-style failures come
  /// back as ok envelopes with ok=false (inspect `code`), transport
  /// failures (EOF, oversized frame) as a non-ok Result. EOF before any
  /// frame is Unavailable — the server closed or refused the
  /// connection.
  Result<lineage::wire::ResponseEnvelope> Receive();

  /// Send + Receive for the strictly synchronous case.
  Result<lineage::wire::ResponseEnvelope> Call(
      std::string_view engine, const lineage::LineageRequest& request,
      bool want_timeline = false);

  /// Synchronous STATS scrape (wire v2): asks the server for a metrics
  /// snapshot and/or its tracer ring without touching the dispatch
  /// queue. `want` is a bitmask of wire::kStatsWantMetrics /
  /// kStatsWantTrace. Must not be interleaved with pipelined Send()s
  /// that still have responses in flight — the scrape reply would
  /// arrive out of band.
  Result<lineage::wire::StatsResponse> Stats(
      uint8_t want = lineage::wire::kStatsWantMetrics);

  const Socket& socket() const { return socket_; }

 private:
  LineageClient(Socket socket, uint32_t max_frame_bytes)
      : socket_(std::move(socket)), max_frame_bytes_(max_frame_bytes) {}

  Socket socket_;
  uint32_t max_frame_bytes_;
  uint64_t next_id_ = 1;
};

}  // namespace provlin::server

#endif  // PROVLIN_SERVER_CLIENT_H_
