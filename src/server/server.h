#ifndef PROVLIN_SERVER_SERVER_H_
#define PROVLIN_SERVER_SERVER_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/annotations.h"
#include "common/result.h"
#include "common/sync.h"
#include "common/timer.h"
#include "lineage/service.h"
#include "lineage/wire.h"
#include "server/frame.h"
#include "server/slow_log.h"

namespace provlin::server {

/// Tuning knobs for the network lineage server.
struct ServerOptions {
  /// TCP port to listen on (loopback). 0 = kernel-assigned ephemeral
  /// port; recover it with LineageServer::port() (tests, --port-file).
  uint16_t port = 0;
  /// Connections beyond this are accepted and immediately closed (the
  /// client sees EOF) — one bounded reader thread per live connection.
  size_t max_connections = 64;
  /// Admission-control bound on the central request queue. A request
  /// arriving while the queue holds this many gets a typed OVERLOADED
  /// response instead of a slot — queue memory stays bounded no matter
  /// how fast clients push (DESIGN.md §12 backpressure policy).
  size_t max_queue = 256;
  /// Most requests one dispatcher drain hands to LineageService::
  /// ExecuteBatch — the unit of cross-client plan sharing and probe
  /// dedup. Larger batches amortize more but add latency under load.
  size_t max_batch = 64;
  /// Frame-size ceiling, both directions (see frame.h).
  uint32_t max_frame_bytes = lineage::wire::kDefaultMaxFrameBytes;
  /// Worker pool / batching behaviour of the underlying LineageService.
  lineage::ServiceOptions service;
  /// Slow-request log threshold in milliseconds: a served request whose
  /// admission-to-encode total meets or exceeds it is appended to the
  /// structured JSON-lines log at `slow_log_path` (timeline, engine,
  /// shard fan-out, probe counts, EXPLAIN payload — DESIGN.md §14).
  /// Negative disables the log entirely; 0 logs every request (the
  /// round-trip test mode).
  double slow_request_ms = -1.0;
  std::string slow_log_path = "slow_requests.jsonl";
  /// Rotation bound for the slow-request log's live file.
  uint64_t slow_log_max_bytes = 4u << 20;
};

/// Cumulative served-traffic counters (value snapshot; also published
/// to the process-wide registry under server/*).
struct ServerStats {
  uint64_t connections_accepted = 0;
  uint64_t connections_rejected = 0;
  uint64_t requests = 0;       ///< well-formed requests admitted or shed
  uint64_t responses_ok = 0;
  uint64_t responses_error = 0;  ///< typed errors other than OVERLOADED
  uint64_t overload_shed = 0;    ///< requests refused by admission control
  uint64_t bad_frames = 0;       ///< frames that failed envelope decode
  uint64_t stats_requests = 0;   ///< STATS scrapes (separate from requests)
  uint64_t slow_requests_logged = 0;  ///< records appended to the slow log
};

/// The network front-end of the lineage API: accepts loopback TCP
/// connections carrying length-prefixed wire.h frames, decodes
/// RequestEnvelopes, funnels them through one shared concurrent
/// LineageService (so concurrent clients ride the same plan cache,
/// probe memo, and worker pool), and streams each response frame back
/// on the requesting connection as its batch completes. Requests from
/// different connections are batched together — the §3.4 amortization
/// applied across the network boundary.
///
/// Responses to one connection preserve that connection's request
/// order per drain but may interleave across drains; clients match
/// responses to requests by the echoed request id, never by order.
///
/// Admission control: a bounded central queue. When it is full the
/// reader thread answers OVERLOADED immediately — nothing queues, no
/// memory grows, and the client gets a typed retryable signal
/// (Status::Unavailable through ResponseEnvelope::ToStatus).
///
/// Lock inventory (DESIGN.md §12): queue_mu_ guards the pending queue
/// and dispatcher wakeup; conns_mu_ guards the connection list; each
/// connection's write_mu serializes response frames. queue_mu_ and
/// conns_mu_ are leaves and never held together; write_mu is taken
/// with neither held.
class LineageServer {
 public:
  /// Engine registry: wire engine names ("naive", "indexproj") to
  /// borrowed engines, which must outlive the server and be safe for
  /// concurrent Query() (both in-tree engines are).
  using EngineMap =
      std::map<std::string, const lineage::LineageEngine*, std::less<>>;

  /// Produces the EXPLAIN payload (a JSON object as a string) for a
  /// request against one engine — the same step costs the CLI's
  /// `explain` command prints. Must be safe for calls concurrent with
  /// Query() on the same engine. An empty string means "no explanation
  /// available" and is logged as JSON null.
  using ExplainFn = std::function<std::string(const lineage::LineageRequest&)>;

  LineageServer(EngineMap engines, ServerOptions options = {});
  /// Stops and joins if still running.
  ~LineageServer();
  LineageServer(const LineageServer&) = delete;
  LineageServer& operator=(const LineageServer&) = delete;

  /// Registers the EXPLAIN producer for a wire engine name, used by the
  /// slow-request log. Call before Start() — the map is read without a
  /// lock once serving.
  void SetExplainer(std::string engine, ExplainFn fn);

  /// Binds, listens, and spawns the accept + dispatch threads.
  Status Start();

  /// Stops accepting, sheds everything still queued (typed OVERLOADED),
  /// drains in-flight batches, closes connections, joins all threads.
  /// Idempotent.
  void Stop();

  /// Bound port (valid after Start; the ephemeral port when port=0).
  uint16_t port() const { return port_; }

  ServerStats stats() const;

  /// Test hooks: freeze/unfreeze the dispatcher so admission control
  /// can be driven deterministically (queue fills while paused).
  void PauseDispatchForTest() EXCLUDES(queue_mu_);
  void ResumeDispatchForTest() EXCLUDES(queue_mu_);

 private:
  /// One live client connection: the socket, a write lock serializing
  /// response frames (dispatcher and reader both respond), and the
  /// reader thread draining request frames.
  struct Connection {
    Socket socket;
    common::Mutex write_mu{common::LockRank::kServerConnWrite};
    std::thread reader;
    std::atomic<bool> done{false};

    Status Write(std::string_view payload, uint32_t max_frame_bytes)
        EXCLUDES(write_mu);
  };

  /// One admitted request waiting for a dispatcher drain.
  struct Pending {
    std::shared_ptr<Connection> conn;
    lineage::wire::RequestEnvelope envelope;
    WallTimer admitted;  ///< request_ms measures admission → response
    /// Queue phase (admission → dispatcher dequeue), stamped by the
    /// dispatcher as it pulls the request off the queue.
    double queue_ms = 0.0;
  };

  void AcceptLoop();
  void ReadLoop(std::shared_ptr<Connection> conn);
  /// Answers one STATS scrape inline on the reader thread — a scrape
  /// never enters the dispatch queue, so it cannot be blocked by (or
  /// block) request dispatch.
  void HandleStatsScrape(const std::shared_ptr<Connection>& conn,
                         std::string_view payload);
  void DispatchLoop();
  void ExecuteDrain(std::vector<Pending> drain);
  /// Queue admission: true = queued, false = shed (caller answers
  /// OVERLOADED).
  bool Submit(Pending pending) EXCLUDES(queue_mu_);
  /// The one place server/queue_depth is written: every enqueue,
  /// dequeue, and shed path updates the gauge while still holding
  /// queue_mu_, so it can never go stale against queue_.size().
  void UpdateQueueDepthLocked() REQUIRES(queue_mu_);
  void ReapFinishedConnections() EXCLUDES(conns_mu_);
  /// Appends one slow-request record (timeline + EXPLAIN payload).
  void LogSlowRequest(const Pending& pending,
                      const lineage::wire::RequestTimeline& timeline,
                      const Status& status);

  EngineMap engines_;
  ServerOptions options_;
  lineage::LineageService service_;
  /// Wire engine name → EXPLAIN producer (slow-request log). Written
  /// before Start(), read-only while serving.
  std::map<std::string, ExplainFn, std::less<>> explainers_;
  /// Non-null iff options_.slow_request_ms >= 0 and the log opened.
  std::unique_ptr<SlowRequestLog> slow_log_;

  Socket listener_;
  uint16_t port_ = 0;
  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};

  common::Mutex queue_mu_{common::LockRank::kServerQueue};
  common::CondVar queue_cv_;
  std::deque<Pending> queue_ GUARDED_BY(queue_mu_);
  bool paused_ GUARDED_BY(queue_mu_) = false;

  mutable common::Mutex conns_mu_{common::LockRank::kServerConnections};
  std::vector<std::shared_ptr<Connection>> conns_ GUARDED_BY(conns_mu_);

  std::thread accept_thread_;
  std::thread dispatch_thread_;
};

}  // namespace provlin::server

#endif  // PROVLIN_SERVER_SERVER_H_
