#include "server/slow_log.h"

#include <sys/stat.h>

#include <cerrno>
#include <cstring>
#include <utility>

namespace provlin::server {

std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

Result<std::unique_ptr<SlowRequestLog>> SlowRequestLog::Open(Options options) {
  if (options.path.empty()) {
    return Status::InvalidArgument("slow-request log needs a path");
  }
  if (options.max_bytes == 0) {
    return Status::InvalidArgument("slow-request log max_bytes must be > 0");
  }
  std::unique_ptr<SlowRequestLog> log(new SlowRequestLog(std::move(options)));
  common::MutexLock lock(log->mu_);
  log->file_ = std::fopen(log->options_.path.c_str(), "ab");
  if (log->file_ == nullptr) {
    return Status::IoError("cannot open slow-request log '" +
                           log->options_.path + "': " + std::strerror(errno));
  }
  struct stat st {};
  if (::stat(log->options_.path.c_str(), &st) == 0) {
    log->bytes_ = static_cast<uint64_t>(st.st_size);
  }
  return log;
}

SlowRequestLog::~SlowRequestLog() {
  common::MutexLock lock(mu_);
  if (file_ != nullptr) std::fclose(file_);
}

Status SlowRequestLog::RotateLocked() {
  std::fclose(file_);
  file_ = nullptr;
  const std::string rotated = options_.path + ".1";
  // rename(2) replaces an existing rotation atomically; a failure
  // (cross-device, permissions) falls through to truncating in place —
  // the bound matters more than the history.
  if (std::rename(options_.path.c_str(), rotated.c_str()) != 0) {
    std::remove(options_.path.c_str());
  }
  file_ = std::fopen(options_.path.c_str(), "wb");
  if (file_ == nullptr) {
    return Status::IoError("cannot reopen slow-request log '" + options_.path +
                           "': " + std::strerror(errno));
  }
  bytes_ = 0;
  return Status::OK();
}

Status SlowRequestLog::Append(std::string_view json_record) {
  common::MutexLock lock(mu_);
  if (file_ == nullptr) {
    return Status::FailedPrecondition("slow-request log is closed");
  }
  const uint64_t record_bytes = json_record.size() + 1;  // + newline
  if (bytes_ > 0 && bytes_ + record_bytes > options_.max_bytes) {
    PROVLIN_RETURN_IF_ERROR(RotateLocked());
  }
  if (std::fwrite(json_record.data(), 1, json_record.size(), file_) !=
          json_record.size() ||
      std::fputc('\n', file_) == EOF) {
    return Status::IoError("slow-request log write failed: " +
                           std::string(std::strerror(errno)));
  }
  std::fflush(file_);
  bytes_ += record_bytes;
  ++records_;
  return Status::OK();
}

uint64_t SlowRequestLog::records() const {
  common::MutexLock lock(mu_);
  return records_;
}

}  // namespace provlin::server
