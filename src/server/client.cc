#include "server/client.h"

#include <utility>

namespace provlin::server {

namespace wire = lineage::wire;

Result<LineageClient> LineageClient::Connect(const std::string& host,
                                             uint16_t port,
                                             uint32_t max_frame_bytes) {
  PROVLIN_ASSIGN_OR_RETURN(Socket socket, TcpConnect(host, port));
  return LineageClient(std::move(socket), max_frame_bytes);
}

Result<uint64_t> LineageClient::Send(std::string_view engine,
                                     const lineage::LineageRequest& request,
                                     bool want_timeline) {
  wire::RequestEnvelope envelope;
  envelope.request_id = next_id_++;
  envelope.engine = std::string(engine);
  envelope.request = request;
  if (want_timeline) {
    envelope.version = wire::kWireVersion;
    envelope.want_timeline = true;
  }
  PROVLIN_RETURN_IF_ERROR(WriteFrame(
      socket_, wire::EncodeRequestEnvelope(envelope), max_frame_bytes_));
  return envelope.request_id;
}

Result<wire::ResponseEnvelope> LineageClient::Receive() {
  std::string payload;
  PROVLIN_ASSIGN_OR_RETURN(bool got,
                           ReadFrame(socket_, &payload, max_frame_bytes_));
  if (!got) {
    return Status::Unavailable(
        "connection closed by server before a response frame");
  }
  return wire::DecodeResponseEnvelope(payload);
}

Result<wire::ResponseEnvelope> LineageClient::Call(
    std::string_view engine, const lineage::LineageRequest& request,
    bool want_timeline) {
  PROVLIN_RETURN_IF_ERROR(Send(engine, request, want_timeline).status());
  return Receive();
}

Result<wire::StatsResponse> LineageClient::Stats(uint8_t want) {
  wire::StatsRequest scrape;
  scrape.request_id = next_id_++;
  scrape.want = want;
  PROVLIN_RETURN_IF_ERROR(WriteFrame(socket_, wire::EncodeStatsRequest(scrape),
                                     max_frame_bytes_));
  std::string payload;
  PROVLIN_ASSIGN_OR_RETURN(bool got,
                           ReadFrame(socket_, &payload, max_frame_bytes_));
  if (!got) {
    return Status::Unavailable(
        "connection closed by server before the STATS response");
  }
  PROVLIN_ASSIGN_OR_RETURN(wire::StatsResponse response,
                           wire::DecodeStatsResponse(payload));
  if (response.request_id != scrape.request_id) {
    return Status::Corruption("STATS response id mismatch");
  }
  return response;
}

}  // namespace provlin::server
