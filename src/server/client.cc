#include "server/client.h"

#include <utility>

namespace provlin::server {

namespace wire = lineage::wire;

Result<LineageClient> LineageClient::Connect(const std::string& host,
                                             uint16_t port,
                                             uint32_t max_frame_bytes) {
  PROVLIN_ASSIGN_OR_RETURN(Socket socket, TcpConnect(host, port));
  return LineageClient(std::move(socket), max_frame_bytes);
}

Result<uint64_t> LineageClient::Send(std::string_view engine,
                                     const lineage::LineageRequest& request) {
  wire::RequestEnvelope envelope;
  envelope.request_id = next_id_++;
  envelope.engine = std::string(engine);
  envelope.request = request;
  PROVLIN_RETURN_IF_ERROR(WriteFrame(
      socket_, wire::EncodeRequestEnvelope(envelope), max_frame_bytes_));
  return envelope.request_id;
}

Result<wire::ResponseEnvelope> LineageClient::Receive() {
  std::string payload;
  PROVLIN_ASSIGN_OR_RETURN(bool got,
                           ReadFrame(socket_, &payload, max_frame_bytes_));
  if (!got) {
    return Status::Unavailable(
        "connection closed by server before a response frame");
  }
  return wire::DecodeResponseEnvelope(payload);
}

Result<wire::ResponseEnvelope> LineageClient::Call(
    std::string_view engine, const lineage::LineageRequest& request) {
  PROVLIN_RETURN_IF_ERROR(Send(engine, request).status());
  return Receive();
}

}  // namespace provlin::server
