#ifndef PROVLIN_SERVER_SLOW_LOG_H_
#define PROVLIN_SERVER_SLOW_LOG_H_

#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <string_view>

#include "common/annotations.h"
#include "common/result.h"
#include "common/sync.h"

namespace provlin::server {

/// Escapes a string for embedding in a JSON string literal (quotes,
/// backslashes, control characters). Shared by the slow-request log
/// and the server's STATS assembly.
std::string JsonEscape(std::string_view s);

/// Structured slow-request sink: one JSON object per line, appended to
/// a bounded rotating file. When an append would push the live file
/// past `max_bytes`, the file is rotated to `<path>.1` (replacing any
/// previous rotation) and a fresh file is started — so the log never
/// holds more than ~2 × max_bytes on disk no matter how long the
/// server runs or how low the slow threshold is set (DESIGN.md §14).
///
/// Internally synchronized: the dispatcher appends from its own
/// thread; Append serializes writers and flushes per record so a
/// crashed server loses at most the record being written.
class SlowRequestLog {
 public:
  struct Options {
    std::string path;
    /// Rotation threshold for the live file (default 4 MiB).
    uint64_t max_bytes = 4u << 20;
  };

  /// Opens (creates or appends to) the log file.
  static Result<std::unique_ptr<SlowRequestLog>> Open(Options options);

  ~SlowRequestLog();
  SlowRequestLog(const SlowRequestLog&) = delete;
  SlowRequestLog& operator=(const SlowRequestLog&) = delete;

  /// Appends one record (a complete JSON object, no trailing newline —
  /// the log adds it) and flushes. Rotates first when the record would
  /// overflow max_bytes.
  Status Append(std::string_view json_record) EXCLUDES(mu_);

  const std::string& path() const { return options_.path; }
  /// Records appended over this log's lifetime (not just the live file).
  uint64_t records() const EXCLUDES(mu_);

 private:
  explicit SlowRequestLog(Options options) : options_(std::move(options)) {}
  Status RotateLocked() REQUIRES(mu_);

  const Options options_;
  mutable common::Mutex mu_{common::LockRank::kServerSlowLog};
  std::FILE* file_ GUARDED_BY(mu_) = nullptr;
  uint64_t bytes_ GUARDED_BY(mu_) = 0;
  uint64_t records_ GUARDED_BY(mu_) = 0;
};

}  // namespace provlin::server

#endif  // PROVLIN_SERVER_SLOW_LOG_H_
