#include "server/server.h"

#include <poll.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <utility>

#include "common/logging.h"
#include "common/metrics.h"
#include "common/tracing.h"

namespace provlin::server {
namespace {

namespace wire = lineage::wire;

struct ServerCounters {
  common::metrics::Counter* connections_accepted;
  common::metrics::Counter* connections_rejected;
  common::metrics::Counter* requests;
  common::metrics::Counter* responses_ok;
  common::metrics::Counter* responses_error;
  common::metrics::Counter* overload_shed;
  common::metrics::Counter* bad_frames;
  common::metrics::Counter* stats_requests;
  common::metrics::Counter* slow_logged;
  common::metrics::Histogram* request_ms;
  common::metrics::Histogram* batch_size;
  // Per-phase decomposition of every served request (DESIGN.md §14);
  // always on — the overhead budget is held by EXPERIMENTS.md's A/B run.
  common::metrics::Histogram* queue_ms;
  common::metrics::Histogram* dispatch_ms;
  common::metrics::Histogram* execute_ms;
  common::metrics::Histogram* serialize_ms;
  common::metrics::Histogram* write_ms;
  common::metrics::Gauge* queue_depth;
};

ServerCounters& Counters() {
  static ServerCounters c = {
      common::metrics::GetCounter("server/connections_accepted"),
      common::metrics::GetCounter("server/connections_rejected"),
      common::metrics::GetCounter("server/requests"),
      common::metrics::GetCounter("server/responses_ok"),
      common::metrics::GetCounter("server/responses_error"),
      common::metrics::GetCounter("server/overload_shed"),
      common::metrics::GetCounter("server/bad_frames"),
      common::metrics::GetCounter("server/stats_requests"),
      common::metrics::GetCounter("server/slow_requests_logged"),
      common::metrics::GetHistogram("server/request_ms"),
      common::metrics::GetHistogram("server/batch_size",
                                    common::metrics::DefaultSizeBounds()),
      common::metrics::GetHistogram("server/queue_ms"),
      common::metrics::GetHistogram("server/dispatch_ms"),
      common::metrics::GetHistogram("server/execute_ms"),
      common::metrics::GetHistogram("server/serialize_ms"),
      common::metrics::GetHistogram("server/write_ms"),
      common::metrics::GetGauge("server/queue_depth"),
  };
  return c;
}

/// Engine-status → wire error taxonomy for failed requests.
wire::ErrorCode CodeForStatus(const Status& status) {
  switch (status.code()) {
    case StatusCode::kNotFound:
      return wire::ErrorCode::kNotFound;
    case StatusCode::kInvalidArgument:
      return wire::ErrorCode::kBadRequest;
    case StatusCode::kUnavailable:
      return wire::ErrorCode::kOverloaded;
    default:
      return wire::ErrorCode::kInternal;
  }
}

/// Best-effort request id out of a frame that failed full decode: the
/// id sits at a fixed offset (version u8, type u8, id u64), so even a
/// bad request can usually get an error matched to it.
uint64_t SalvageRequestId(std::string_view payload) {
  if (payload.size() < 10) return 0;
  uint64_t id = 0;
  std::memcpy(&id, payload.data() + 2, 8);
  return id;
}

}  // namespace

Status LineageServer::Connection::Write(std::string_view payload,
                                        uint32_t max_frame_bytes) {
  common::MutexLock lock(write_mu);
  return WriteFrame(socket, payload, max_frame_bytes);
}

LineageServer::LineageServer(EngineMap engines, ServerOptions options)
    : engines_(std::move(engines)),
      options_(options),
      service_(options.service) {}

LineageServer::~LineageServer() { Stop(); }

void LineageServer::SetExplainer(std::string engine, ExplainFn fn) {
  explainers_[std::move(engine)] = std::move(fn);
}

Status LineageServer::Start() {
  if (running_.load()) return Status::FailedPrecondition("already started");
  if (options_.slow_request_ms >= 0 && slow_log_ == nullptr) {
    PROVLIN_ASSIGN_OR_RETURN(
        slow_log_, SlowRequestLog::Open(
                       {options_.slow_log_path, options_.slow_log_max_bytes}));
  }
  PROVLIN_ASSIGN_OR_RETURN(listener_, TcpListen(options_.port));
  PROVLIN_ASSIGN_OR_RETURN(port_, LocalPort(listener_));
  running_.store(true);
  stopping_.store(false);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  dispatch_thread_ = std::thread([this] { DispatchLoop(); });
  return Status::OK();
}

void LineageServer::Stop() {
  if (!running_.exchange(false)) return;
  stopping_.store(true);
  // 1. Stop accepting. The accept loop never blocks indefinitely — it
  //    polls the listener with a 100 ms timeout and re-checks
  //    stopping_ — so joining first and closing the listener after is
  //    both prompt and race-free (no thread touches the fd once the
  //    join returns).
  if (accept_thread_.joinable()) accept_thread_.join();
  listener_.Close();
  // 2. Stop the readers: shutting the sockets down unblocks recv with
  //    EOF. Joining them means no new queue entries after this point.
  std::vector<std::shared_ptr<Connection>> conns;
  {
    common::MutexLock lock(conns_mu_);
    conns = conns_;
  }
  for (auto& conn : conns) conn->socket.ShutdownBoth();
  for (auto& conn : conns) {
    if (conn->reader.joinable()) conn->reader.join();
  }
  // 3. Stop the dispatcher: it sheds whatever is still queued (typed
  //    OVERLOADED — the writes may fail against shut-down sockets,
  //    which is fine) and exits once the queue is empty.
  {
    common::MutexLock lock(queue_mu_);
    paused_ = false;
    queue_cv_.NotifyAll();
  }
  if (dispatch_thread_.joinable()) dispatch_thread_.join();
  {
    common::MutexLock lock(conns_mu_);
    conns_.clear();
  }
}

ServerStats LineageServer::stats() const {
  // The server publishes only to the process-wide registry; the typed
  // snapshot is rebuilt from it (same pattern as ServiceMetrics).
  ServerCounters& c = Counters();
  ServerStats s;
  s.connections_accepted = c.connections_accepted->Value();
  s.connections_rejected = c.connections_rejected->Value();
  s.requests = c.requests->Value();
  s.responses_ok = c.responses_ok->Value();
  s.responses_error = c.responses_error->Value();
  s.overload_shed = c.overload_shed->Value();
  s.bad_frames = c.bad_frames->Value();
  s.stats_requests = c.stats_requests->Value();
  s.slow_requests_logged = c.slow_logged->Value();
  return s;
}

void LineageServer::PauseDispatchForTest() {
  common::MutexLock lock(queue_mu_);
  paused_ = true;
}

void LineageServer::ResumeDispatchForTest() {
  common::MutexLock lock(queue_mu_);
  paused_ = false;
  queue_cv_.NotifyAll();
}

void LineageServer::AcceptLoop() {
  while (!stopping_.load()) {
    pollfd pfd{};
    pfd.fd = listener_.fd();
    pfd.events = POLLIN;
    int rc = ::poll(&pfd, 1, /*timeout_ms=*/100);
    if (rc < 0 && errno != EINTR) break;
    if (rc <= 0 || (pfd.revents & POLLIN) == 0) {
      ReapFinishedConnections();
      continue;
    }
    Result<Socket> accepted = Accept(listener_);
    if (!accepted.ok()) {
      if (stopping_.load()) break;
      PROVLIN_LOG(Warning) << "accept failed: "
                           << accepted.status().ToString();
      continue;
    }
    ReapFinishedConnections();
    size_t live = 0;
    {
      common::MutexLock lock(conns_mu_);
      live = conns_.size();
    }
    if (live >= options_.max_connections) {
      // Bounded thread count: refuse by closing. The client sees EOF
      // before any frame — distinguishable from a served connection.
      Counters().connections_rejected->Increment();
      continue;  // `accepted` closes on scope exit
    }
    auto conn = std::make_shared<Connection>();
    conn->socket = std::move(*accepted);
    Counters().connections_accepted->Increment();
    {
      common::MutexLock lock(conns_mu_);
      conns_.push_back(conn);
    }
    conn->reader = std::thread([this, conn] { ReadLoop(conn); });
  }
}

void LineageServer::ReapFinishedConnections() {
  std::vector<std::shared_ptr<Connection>> finished;
  {
    common::MutexLock lock(conns_mu_);
    for (auto it = conns_.begin(); it != conns_.end();) {
      if ((*it)->done.load()) {
        finished.push_back(std::move(*it));
        it = conns_.erase(it);
      } else {
        ++it;
      }
    }
  }
  // Join outside the lock; responses in flight for a finished
  // connection keep their shared_ptr alive independently.
  for (auto& conn : finished) {
    if (conn->reader.joinable()) conn->reader.join();
  }
}

void LineageServer::ReadLoop(std::shared_ptr<Connection> conn) {
  std::string payload;
  while (!stopping_.load()) {
    Result<bool> frame = ReadFrame(conn->socket, &payload,
                                   options_.max_frame_bytes);
    if (!frame.ok()) {
      // Oversized or truncated frame: the stream cannot be resynced.
      Counters().bad_frames->Increment();
      break;
    }
    if (!*frame) break;  // clean EOF
    // Version gate before anything else is parsed (wire.h contract): a
    // frame in neither live version gets a typed UNSUPPORTED_VERSION,
    // not a misparse. Every response is encoded in the version of the
    // frame it answers, so a v1 client never sees v2 bytes.
    if (payload.empty() ||
        !wire::IsSupportedWireVersion(static_cast<uint8_t>(payload[0]))) {
      Counters().bad_frames->Increment();
      (void)conn->Write(
          wire::EncodeErrorResponse(
              SalvageRequestId(payload), wire::ErrorCode::kUnsupportedVersion,
              "server speaks wire versions " +
                  std::to_string(wire::kWireVersionLegacy) + ".." +
                  std::to_string(wire::kWireVersion)),
          options_.max_frame_bytes);
      continue;
    }
    // STATS scrapes are answered inline on the reader thread: a scrape
    // never touches the dispatch queue, so a monitoring poll can
    // neither be shed by admission control nor block serving.
    if (payload.size() >= 2 &&
        static_cast<uint8_t>(payload[1]) ==
            static_cast<uint8_t>(wire::MessageType::kStatsRequest)) {
      HandleStatsScrape(conn, payload);
      continue;
    }
    Result<wire::RequestEnvelope> envelope =
        wire::DecodeRequestEnvelope(payload);
    if (!envelope.ok()) {
      Counters().bad_frames->Increment();
      (void)conn->Write(
          wire::EncodeErrorResponse(SalvageRequestId(payload),
                                    wire::ErrorCode::kBadRequest,
                                    envelope.status().ToString()),
          options_.max_frame_bytes);
      continue;
    }
    Counters().requests->Increment();
    Pending pending;
    pending.conn = conn;
    pending.envelope = std::move(*envelope);
    uint64_t request_id = pending.envelope.request_id;
    uint8_t version = pending.envelope.version;
    if (!Submit(std::move(pending))) {
      // Admission control: full queue → typed shed, written from the
      // reader so the response is immediate and nothing is buffered.
      Counters().overload_shed->Increment();
      (void)conn->Write(
          wire::EncodeErrorResponse(request_id, wire::ErrorCode::kOverloaded,
                                    "request queue full (" +
                                        std::to_string(options_.max_queue) +
                                        " deep); retry later",
                                    version),
          options_.max_frame_bytes);
    }
  }
  conn->done.store(true);
}

void LineageServer::HandleStatsScrape(
    const std::shared_ptr<Connection>& conn, std::string_view payload) {
  Result<wire::StatsRequest> request = wire::DecodeStatsRequest(payload);
  if (!request.ok()) {
    Counters().bad_frames->Increment();
    (void)conn->Write(
        wire::EncodeErrorResponse(SalvageRequestId(payload),
                                  wire::ErrorCode::kBadRequest,
                                  request.status().ToString(),
                                  wire::kWireVersion),
        options_.max_frame_bytes);
    return;
  }
  // Scrapes are counted apart from served requests so the snapshot
  // balance invariant (responses_ok + responses_error + overload_shed
  // == requests) holds under concurrent scraping.
  Counters().stats_requests->Increment();
  wire::StatsResponse response;
  response.request_id = request->request_id;
  if ((request->want & wire::kStatsWantMetrics) != 0) {
    common::tracing::PublishTracingStats();
    common::metrics::MetricsSnapshot snap =
        common::metrics::MetricsRegistry::Global().Snapshot();
    response.has_metrics = true;
    response.prometheus_text = snap.ToPrometheusText();
    response.metrics_json = snap.ToJson();
  }
  if ((request->want & wire::kStatsWantTrace) != 0) {
    common::tracing::Tracer& tracer = common::tracing::Tracer::Global();
    response.has_trace = true;
    response.trace_json = tracer.ExportChromeTrace();
    response.trace_events = tracer.Snapshot().size();
    response.trace_dropped = tracer.dropped();
  }
  (void)conn->Write(wire::EncodeStatsResponse(response),
                    options_.max_frame_bytes);
}

void LineageServer::UpdateQueueDepthLocked() {
  Counters().queue_depth->Set(static_cast<int64_t>(queue_.size()));
}

bool LineageServer::Submit(Pending pending) {
  common::MutexLock lock(queue_mu_);
  if (stopping_.load() || queue_.size() >= options_.max_queue) return false;
  queue_.push_back(std::move(pending));
  UpdateQueueDepthLocked();
  queue_cv_.NotifyOne();
  return true;
}

void LineageServer::DispatchLoop() {
  while (true) {
    std::vector<Pending> drain;
    bool shutting_down = false;
    {
      common::MutexLock lock(queue_mu_);
      while (!stopping_.load() && (queue_.empty() || paused_)) {
        queue_cv_.Wait(queue_mu_);
      }
      shutting_down = stopping_.load();
      size_t n = queue_.size();
      if (!shutting_down && n > options_.max_batch) n = options_.max_batch;
      drain.reserve(n);
      for (size_t i = 0; i < n; ++i) {
        // Dequeue closes the request's queue phase.
        queue_.front().queue_ms = queue_.front().admitted.ElapsedMillis();
        drain.push_back(std::move(queue_.front()));
        queue_.pop_front();
      }
      UpdateQueueDepthLocked();
      if (shutting_down && queue_.empty() && drain.empty()) break;
    }
    if (shutting_down) {
      // Shutdown sheds rather than executes: prompt, bounded, and the
      // client-visible semantics are the same as overload.
      for (const Pending& p : drain) {
        Counters().overload_shed->Increment();
        (void)p.conn->Write(
            wire::EncodeErrorResponse(p.envelope.request_id,
                                      wire::ErrorCode::kOverloaded,
                                      "server shutting down",
                                      p.envelope.version),
            options_.max_frame_bytes);
      }
      continue;
    }
    if (!drain.empty()) ExecuteDrain(std::move(drain));
  }
}

void LineageServer::ExecuteDrain(std::vector<Pending> drain) {
  PROVLIN_TRACE_SPAN("server/drain");
  Counters().batch_size->Observe(static_cast<double>(drain.size()));
  WallTimer dispatch_timer;
  // Resolve engines up front; unknown names answer immediately and are
  // excluded from the service batch (`requests` keeps positional
  // alignment via the index vector).
  std::vector<lineage::ServiceRequest> batch;
  std::vector<size_t> batch_to_drain;
  batch.reserve(drain.size());
  for (size_t i = 0; i < drain.size(); ++i) {
    const wire::RequestEnvelope& env = drain[i].envelope;
    auto it = engines_.find(env.engine);
    if (it == engines_.end()) {
      Counters().responses_error->Increment();
      (void)drain[i].conn->Write(
          wire::EncodeErrorResponse(env.request_id,
                                    wire::ErrorCode::kBadRequest,
                                    "unknown engine '" + env.engine + "'",
                                    env.version),
          options_.max_frame_bytes);
      continue;
    }
    batch.push_back({it->second, env.request});
    batch_to_drain.push_back(i);
  }
  if (batch.empty()) return;
  // Dispatch work done on this thread before the batch is handed to
  // the service; the per-request remainder of the dispatch phase is
  // the service-internal wait until a worker picks the request up.
  const double predispatch_ms = dispatch_timer.ElapsedMillis();
  std::vector<lineage::ServiceResponse> responses =
      service_.ExecuteBatch(batch);
  for (size_t b = 0; b < responses.size(); ++b) {
    Pending& p = drain[batch_to_drain[b]];
    const lineage::ServiceResponse& r = responses[b];
    // Assemble the phase timeline for every request — recording is
    // always on (it feeds the server/*_ms histograms and the slow log);
    // the wire only carries it when the client asked.
    wire::RequestTimeline timeline;
    timeline.queue_ms = p.queue_ms;
    timeline.dispatch_ms = predispatch_ms + r.queue_wait_ms;
    timeline.execute_ms = r.exec_ms;
    timeline.rows_examined = r.rows_examined;
    if (r.status.ok()) {
      timeline.trace_probes = r.answer.timing.trace_probes;
      timeline.trace_descents = r.answer.timing.trace_descents;
    }
    uint64_t physical_probes = 0;
    for (const auto& [shard, cost] : r.breakdown.shards) {
      timeline.shards.push_back(
          {shard, cost.probes, cost.descents, cost.rows});
      physical_probes += cost.probes;
    }
    timeline.sealed_probes = r.breakdown.sealed_probes;
    timeline.hot_probes = physical_probes >= r.breakdown.sealed_probes
                              ? physical_probes - r.breakdown.sealed_probes
                              : 0;
    // Total closes just before the frame encode: serialize_ms/write_ms
    // are structurally unknowable at encode time and stay 0 on the
    // wire (wire.h contract) — the histograms and slow log get the
    // real values below.
    timeline.total_ms = p.admitted.ElapsedMillis();
    std::string frame;
    WallTimer serialize_timer;
    if (r.status.ok()) {
      Counters().responses_ok->Increment();
      if (p.envelope.version >= wire::kWireVersion) {
        frame = wire::EncodeAnswerResponseV2(
            p.envelope.request_id, r.answer,
            p.envelope.want_timeline ? &timeline : nullptr);
      } else {
        frame = wire::EncodeAnswerResponse(p.envelope.request_id, r.answer);
      }
    } else {
      Counters().responses_error->Increment();
      frame = wire::EncodeErrorResponse(p.envelope.request_id,
                                        CodeForStatus(r.status),
                                        r.status.ToString(),
                                        p.envelope.version);
    }
    const double serialize_ms = serialize_timer.ElapsedMillis();
    Counters().request_ms->Observe(p.admitted.ElapsedMillis());
    WallTimer write_timer;
    Status written = p.conn->Write(frame, options_.max_frame_bytes);
    const double write_ms = write_timer.ElapsedMillis();
    if (!written.ok() && !stopping_.load()) {
      PROVLIN_LOG(Warning) << "response write failed (client gone?): "
                           << written.ToString();
    }
    ServerCounters& c = Counters();
    c.queue_ms->Observe(timeline.queue_ms);
    c.dispatch_ms->Observe(timeline.dispatch_ms);
    c.execute_ms->Observe(timeline.execute_ms);
    c.serialize_ms->Observe(serialize_ms);
    c.write_ms->Observe(write_ms);
    if (slow_log_ != nullptr && timeline.total_ms >= options_.slow_request_ms) {
      timeline.serialize_ms = serialize_ms;
      timeline.write_ms = write_ms;
      // Re-stamp the total so it covers the serialize and write phases
      // the record now carries — the logged invariant is
      // queue + dispatch + execute + serialize + write <= total.
      timeline.total_ms = p.admitted.ElapsedMillis();
      LogSlowRequest(p, timeline, r.status);
    }
  }
}

void LineageServer::LogSlowRequest(const Pending& pending,
                                   const wire::RequestTimeline& timeline,
                                   const Status& status) {
  const wire::RequestEnvelope& env = pending.envelope;
  std::string explain = "null";
  auto it = explainers_.find(env.engine);
  if (it != explainers_.end() && it->second != nullptr) {
    std::string payload = it->second(env.request);
    if (!payload.empty()) explain = std::move(payload);
  }
  const double now_s = std::chrono::duration<double>(
                           std::chrono::system_clock::now().time_since_epoch())
                           .count();
  std::string rec = "{";
  rec += "\"ts\":" + std::to_string(now_s);
  rec += ",\"request_id\":" + std::to_string(env.request_id);
  rec += ",\"engine\":\"" + JsonEscape(env.engine) + "\"";
  rec += ",\"request\":\"" + JsonEscape(env.request.ToString()) + "\"";
  rec += ",\"status\":\"" +
         JsonEscape(status.ok() ? "OK" : status.ToString()) + "\"";
  rec += ",\"timeline\":{";
  rec += "\"queue_ms\":" + std::to_string(timeline.queue_ms);
  rec += ",\"dispatch_ms\":" + std::to_string(timeline.dispatch_ms);
  rec += ",\"execute_ms\":" + std::to_string(timeline.execute_ms);
  rec += ",\"serialize_ms\":" + std::to_string(timeline.serialize_ms);
  rec += ",\"write_ms\":" + std::to_string(timeline.write_ms);
  rec += ",\"total_ms\":" + std::to_string(timeline.total_ms);
  rec += "}";
  rec += ",\"trace_probes\":" + std::to_string(timeline.trace_probes);
  rec += ",\"trace_descents\":" + std::to_string(timeline.trace_descents);
  rec += ",\"rows_examined\":" + std::to_string(timeline.rows_examined);
  rec += ",\"hot_probes\":" + std::to_string(timeline.hot_probes);
  rec += ",\"sealed_probes\":" + std::to_string(timeline.sealed_probes);
  rec += ",\"shards\":[";
  for (size_t i = 0; i < timeline.shards.size(); ++i) {
    const wire::ShardCost& s = timeline.shards[i];
    if (i > 0) rec += ",";
    rec += "{\"shard\":" + std::to_string(s.shard) +
           ",\"probes\":" + std::to_string(s.probes) +
           ",\"descents\":" + std::to_string(s.descents) +
           ",\"rows\":" + std::to_string(s.rows) + "}";
  }
  rec += "]";
  rec += ",\"explain\":" + explain;
  rec += "}";
  Status appended = slow_log_->Append(rec);
  if (appended.ok()) {
    Counters().slow_logged->Increment();
  } else {
    PROVLIN_LOG(Warning) << "slow-request log append failed: "
                         << appended.ToString();
  }
}

}  // namespace provlin::server
