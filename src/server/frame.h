#ifndef PROVLIN_SERVER_FRAME_H_
#define PROVLIN_SERVER_FRAME_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "common/result.h"
#include "lineage/wire.h"

namespace provlin::server {

/// Frame transport of the lineage wire protocol (DESIGN.md §12): every
/// message travels as one length-prefixed frame on a TCP stream,
///
///   [payload length u32, little-endian][payload bytes]
///
/// where the payload is a wire.h envelope. The length prefix is
/// validated against a configured ceiling *before* any allocation, so
/// a hostile or corrupted peer can cost at most 4 bytes of read-ahead —
/// never an unbounded buffer. Frames are self-delimiting, which is what
/// lets one connection pipeline many requests and read answers out of
/// band.

/// Owning file-descriptor handle for sockets (move-only RAII).
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Socket& operator=(Socket&& other) noexcept;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;
  ~Socket() { Close(); }

  int fd() const { return fd_; }
  bool valid() const { return fd_ >= 0; }
  void Close();
  /// shutdown(2) both directions — unblocks a reader in another thread
  /// without racing the fd close.
  void ShutdownBoth();

 private:
  int fd_ = -1;
};

/// Listening TCP socket on 127.0.0.1:`port` (port 0 = kernel-assigned;
/// recover the bound port with LocalPort). SO_REUSEADDR is set so CI
/// restarts do not trip over TIME_WAIT.
Result<Socket> TcpListen(uint16_t port, int backlog = 64);

/// Port a bound socket actually listens on.
Result<uint16_t> LocalPort(const Socket& socket);

/// Blocking connect to host:port (numeric or resolvable host).
Result<Socket> TcpConnect(const std::string& host, uint16_t port);

/// Accepts one connection; blocks. Callers multiplex stop-signals by
/// polling the listener before calling (see LineageServer's accept
/// loop) or by closing the listener, which fails the accept.
Result<Socket> Accept(const Socket& listener);

/// Writes one frame (length prefix + payload), looping over partial
/// writes. Rejects payloads above `max_frame_bytes` without writing.
Status WriteFrame(const Socket& socket, std::string_view payload,
                  uint32_t max_frame_bytes = lineage::wire::kDefaultMaxFrameBytes);

/// Reads one frame into `payload`. Returns false on clean EOF at a
/// frame boundary (peer closed), true when a frame was read. A length
/// prefix above `max_frame_bytes` is OutOfRange — the connection cannot
/// be resynchronized and must be closed. EOF inside a frame is
/// Corruption.
Result<bool> ReadFrame(const Socket& socket, std::string* payload,
                       uint32_t max_frame_bytes = lineage::wire::kDefaultMaxFrameBytes);

}  // namespace provlin::server

#endif  // PROVLIN_SERVER_FRAME_H_
