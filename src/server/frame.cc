#include "server/frame.h"

#include <arpa/inet.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/metrics.h"

namespace provlin::server {
namespace {

std::string Errno(const char* what) {
  return std::string(what) + ": " + std::strerror(errno);
}

/// Full write with EINTR/partial-write handling.
Status WriteAll(int fd, const char* data, size_t n) {
  size_t off = 0;
  while (off < n) {
    ssize_t w = ::send(fd, data + off, n - off, MSG_NOSIGNAL);
    if (w < 0) {
      if (errno == EINTR) continue;
      return Status::IoError(Errno("send"));
    }
    off += static_cast<size_t>(w);
  }
  return Status::OK();
}

/// Full read; returns the byte count actually read (short only at EOF).
Result<size_t> ReadUpTo(int fd, char* data, size_t n) {
  size_t off = 0;
  while (off < n) {
    ssize_t r = ::recv(fd, data + off, n - off, 0);
    if (r < 0) {
      if (errno == EINTR) continue;
      return Status::IoError(Errno("recv"));
    }
    if (r == 0) break;  // EOF
    off += static_cast<size_t>(r);
  }
  return off;
}

}  // namespace

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

void Socket::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void Socket::ShutdownBoth() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

Result<Socket> TcpListen(uint16_t port, int backlog) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Status::IoError(Errno("socket"));
  Socket sock(fd);
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    return Status::IoError(Errno("bind"));
  }
  if (::listen(fd, backlog) != 0) return Status::IoError(Errno("listen"));
  return sock;
}

Result<uint16_t> LocalPort(const Socket& socket) {
  sockaddr_in addr{};
  socklen_t len = sizeof(addr);
  if (::getsockname(socket.fd(), reinterpret_cast<sockaddr*>(&addr), &len) !=
      0) {
    return Status::IoError(Errno("getsockname"));
  }
  return static_cast<uint16_t>(ntohs(addr.sin_port));
}

Result<Socket> TcpConnect(const std::string& host, uint16_t port) {
  addrinfo hints{};
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* res = nullptr;
  int rc = ::getaddrinfo(host.c_str(), std::to_string(port).c_str(), &hints,
                         &res);
  if (rc != 0) {
    return Status::IoError("getaddrinfo(" + host + "): " +
                           ::gai_strerror(rc));
  }
  Status last = Status::IoError("no addresses for '" + host + "'");
  for (addrinfo* ai = res; ai != nullptr; ai = ai->ai_next) {
    int fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd < 0) {
      last = Status::IoError(Errno("socket"));
      continue;
    }
    if (::connect(fd, ai->ai_addr, ai->ai_addrlen) == 0) {
      ::freeaddrinfo(res);
      int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      return Socket(fd);
    }
    last = Status::IoError(Errno("connect"));
    ::close(fd);
  }
  ::freeaddrinfo(res);
  return last;
}

Result<Socket> Accept(const Socket& listener) {
  while (true) {
    int fd = ::accept(listener.fd(), nullptr, nullptr);
    if (fd >= 0) {
      int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      return Socket(fd);
    }
    if (errno == EINTR) continue;
    return Status::IoError(Errno("accept"));
  }
}

Status WriteFrame(const Socket& socket, std::string_view payload,
                  uint32_t max_frame_bytes) {
  if (payload.size() > max_frame_bytes) {
    return Status::InvalidArgument(
        "frame payload of " + std::to_string(payload.size()) +
        " bytes exceeds the " + std::to_string(max_frame_bytes) +
        "-byte frame ceiling");
  }
  char prefix[4];
  uint32_t len = static_cast<uint32_t>(payload.size());
  std::memcpy(prefix, &len, 4);
  PROVLIN_RETURN_IF_ERROR(WriteAll(socket.fd(), prefix, 4));
  PROVLIN_RETURN_IF_ERROR(WriteAll(socket.fd(), payload.data(),
                                   payload.size()));
  static auto* frames = common::metrics::GetCounter("net/frames_out");
  static auto* bytes = common::metrics::GetCounter("net/bytes_out");
  frames->Increment();
  bytes->Add(4 + payload.size());
  return Status::OK();
}

Result<bool> ReadFrame(const Socket& socket, std::string* payload,
                       uint32_t max_frame_bytes) {
  char prefix[4];
  PROVLIN_ASSIGN_OR_RETURN(size_t got, ReadUpTo(socket.fd(), prefix, 4));
  if (got == 0) return false;  // clean EOF between frames
  if (got < 4) {
    return Status::Corruption("EOF inside a frame length prefix");
  }
  uint32_t len = 0;
  std::memcpy(&len, prefix, 4);
  if (len > max_frame_bytes) {
    // Nothing past this point can be trusted as a frame boundary; the
    // caller must drop the connection.
    return Status::OutOfRange("frame length " + std::to_string(len) +
                              " exceeds the " +
                              std::to_string(max_frame_bytes) +
                              "-byte frame ceiling");
  }
  payload->resize(len);
  if (len > 0) {
    PROVLIN_ASSIGN_OR_RETURN(got, ReadUpTo(socket.fd(), payload->data(), len));
    if (got < len) {
      return Status::Corruption("EOF inside a " + std::to_string(len) +
                                "-byte frame payload");
    }
  }
  static auto* frames = common::metrics::GetCounter("net/frames_in");
  static auto* bytes = common::metrics::GetCounter("net/bytes_in");
  frames->Increment();
  bytes->Add(4 + static_cast<uint64_t>(len));
  return true;
}

}  // namespace provlin::server
