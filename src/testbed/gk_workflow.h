#ifndef PROVLIN_TESTBED_GK_WORKFLOW_H_
#define PROVLIN_TESTBED_GK_WORKFLOW_H_

#include <memory>

#include "common/result.h"
#include "engine/activity.h"
#include "values/value.h"
#include "workflow/dataflow.h"

namespace provlin::testbed {

/// The genes2Kegg (GK) workflow of paper Fig. 1, the "typical short-path
/// design" of the evaluation:
///
///   list_of_geneIDList : list(list(string))
///     └ normalize_gene_ids        (per-gene, δ=2 — fine-grained)
///        ├ get_pathways_by_genes  (per sub-list, δ=1)
///        │   └ getPathwayDescriptions (per sub-list, δ=1)
///        │       └ paths_per_gene : list(list(string))
///        └ merge_gene_lists       (flatten, whole-value — coarse)
///            └ get_common_pathways    (whole list)
///                └ describe_common    (whole list)
///                    └ commonPathways : list(string)
///
/// The left branch keeps per-sub-list granularity, so
/// lin(paths_per_gene[i]) maps back to exactly input sub-list i; the
/// right branch flattens, so lin(commonPathways) depends on all genes —
/// the paper's motivating example.
Result<std::shared_ptr<const workflow::Dataflow>> MakeGkWorkflow();

/// Registry with builtins + KEGG simulator activities (seeded).
Result<std::shared_ptr<engine::ActivityRegistry>> MakeGkRegistry(
    uint64_t seed = 42);

/// The paper's example input: [[20816, 26416], [328788]] as strings.
Value GkSampleInput();

/// A synthetic input with `lists` sub-lists of `genes_per_list` gene ids.
Value GkSyntheticInput(int lists, int genes_per_list, uint64_t seed = 1);

}  // namespace provlin::testbed

#endif  // PROVLIN_TESTBED_GK_WORKFLOW_H_
