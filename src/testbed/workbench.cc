#include "testbed/workbench.h"

#include "engine/builtin_activities.h"
#include "provenance/recorder.h"
#include "testbed/gk_workflow.h"
#include "testbed/pd_workflow.h"
#include "testbed/synthetic.h"

namespace provlin::testbed {

Result<std::unique_ptr<Workbench>> Workbench::Create(
    std::shared_ptr<const workflow::Dataflow> flow,
    std::shared_ptr<engine::ActivityRegistry> registry,
    const provenance::TraceStoreOptions& store_options) {
  auto wb = std::unique_ptr<Workbench>(new Workbench());
  wb->db_ = std::make_unique<storage::Database>();
  PROVLIN_ASSIGN_OR_RETURN(
      provenance::TraceStore store,
      provenance::TraceStore::Open(wb->db_.get(), store_options));
  wb->store_.emplace(std::move(store));
  wb->flow_ = std::move(flow);
  wb->registry_ = std::move(registry);
  PROVLIN_ASSIGN_OR_RETURN(
      lineage::IndexProjLineage engine,
      lineage::IndexProjLineage::Create(wb->flow_, &*wb->store_));
  wb->index_proj_.emplace(std::move(engine));
  wb->naive_.emplace(&*wb->store_);
  return wb;
}

Result<std::unique_ptr<Workbench>> Workbench::Synthetic(
    int chain_length, const provenance::TraceStoreOptions& store_options) {
  PROVLIN_ASSIGN_OR_RETURN(std::shared_ptr<const workflow::Dataflow> flow,
                           MakeSyntheticWorkflow(chain_length));
  auto registry = std::make_shared<engine::ActivityRegistry>();
  engine::RegisterBuiltinActivities(registry.get());
  return Create(std::move(flow), std::move(registry), store_options);
}

Result<std::unique_ptr<Workbench>> Workbench::GK(
    uint64_t seed, const provenance::TraceStoreOptions& store_options) {
  PROVLIN_ASSIGN_OR_RETURN(std::shared_ptr<const workflow::Dataflow> flow,
                           MakeGkWorkflow());
  PROVLIN_ASSIGN_OR_RETURN(std::shared_ptr<engine::ActivityRegistry> registry,
                           MakeGkRegistry(seed));
  return Create(std::move(flow), std::move(registry), store_options);
}

Result<std::unique_ptr<Workbench>> Workbench::PD(
    int text_steps, uint64_t seed,
    const provenance::TraceStoreOptions& store_options) {
  PROVLIN_ASSIGN_OR_RETURN(std::shared_ptr<const workflow::Dataflow> flow,
                           MakePdWorkflow(text_steps));
  PROVLIN_ASSIGN_OR_RETURN(std::shared_ptr<engine::ActivityRegistry> registry,
                           MakePdRegistry(seed));
  return Create(std::move(flow), std::move(registry), store_options);
}

Result<engine::RunResult> Workbench::Run(
    const std::map<std::string, Value>& inputs, const std::string& run_id,
    const engine::ExecuteOptions& options) {
  provenance::TraceRecorder recorder(&*store_);
  engine::Executor executor(registry_.get(), &recorder);
  PROVLIN_ASSIGN_OR_RETURN(engine::RunResult result,
                           executor.Execute(*flow_, inputs, run_id, options));
  PROVLIN_RETURN_IF_ERROR(recorder.status());
  return result;
}

Result<engine::RunResult> Workbench::RunSynthetic(int d,
                                                  const std::string& run_id) {
  return Run({{"ListSize", SyntheticInput(d)}}, run_id);
}

}  // namespace provlin::testbed
