#ifndef PROVLIN_TESTBED_WORKBENCH_H_
#define PROVLIN_TESTBED_WORKBENCH_H_

#include <map>
#include <memory>
#include <optional>
#include <string>

#include "common/result.h"
#include "engine/executor.h"
#include "lineage/engine.h"
#include "lineage/index_proj_lineage.h"
#include "lineage/naive_lineage.h"
#include "provenance/trace_store.h"
#include "storage/database.h"
#include "workflow/dataflow.h"

namespace provlin::testbed {

/// Owns one end-to-end setup — dataflow, activity registry, trace
/// database, lineage engines — and the glue to execute runs with
/// provenance capture. Tests, benches and examples all build on this.
class Workbench {
 public:
  /// The Fig. 5 synthetic family with chain length `l`. `store_options`
  /// shapes the trace store (shard count, async ingest) — the default
  /// keeps the legacy unsharded layout (modulo PROVLIN_TEST_SHARDS).
  static Result<std::unique_ptr<Workbench>> Synthetic(
      int chain_length,
      const provenance::TraceStoreOptions& store_options = {});
  /// The genes2Kegg workflow with the simulated KEGG services.
  static Result<std::unique_ptr<Workbench>> GK(
      uint64_t seed = 42,
      const provenance::TraceStoreOptions& store_options = {});
  /// The protein-discovery workflow with the simulated PubMed services.
  static Result<std::unique_ptr<Workbench>> PD(
      int text_steps = 22, uint64_t seed = 7,
      const provenance::TraceStoreOptions& store_options = {});
  /// Any dataflow + registry combination.
  static Result<std::unique_ptr<Workbench>> Create(
      std::shared_ptr<const workflow::Dataflow> flow,
      std::shared_ptr<engine::ActivityRegistry> registry,
      const provenance::TraceStoreOptions& store_options = {});

  /// Executes one run with provenance capture; fails if the recorder hit
  /// a storage error.
  Result<engine::RunResult> Run(const std::map<std::string, Value>& inputs,
                                const std::string& run_id,
                                const engine::ExecuteOptions& options = {});

  /// Synthetic convenience: binds { ListSize: d }.
  Result<engine::RunResult> RunSynthetic(int d, const std::string& run_id);

  const std::shared_ptr<const workflow::Dataflow>& flow() const {
    return flow_;
  }
  provenance::TraceStore* store() { return &*store_; }
  const provenance::TraceStore* store() const { return &*store_; }
  storage::Database* db() { return db_.get(); }

  /// The NI baseline over this workbench's trace store.
  lineage::NaiveLineage Naive() const {
    return lineage::NaiveLineage(&*store_);
  }
  /// The IndexProj engine (owned; plan cache persists across queries).
  lineage::IndexProjLineage* IndexProj() { return &*index_proj_; }

  /// Stable engine instance by name ("naive" | "indexproj"), as the
  /// LineageEngine interface — what service batches and interface-level
  /// tests address. Returns nullptr for unknown names.
  const lineage::LineageEngine* Engine(std::string_view name) {
    if (name == "naive") return &*naive_;
    if (name == "indexproj") return &*index_proj_;
    return nullptr;
  }

 private:
  Workbench() = default;

  std::unique_ptr<storage::Database> db_;
  std::optional<provenance::TraceStore> store_;
  std::shared_ptr<const workflow::Dataflow> flow_;
  std::shared_ptr<engine::ActivityRegistry> registry_;
  std::optional<lineage::NaiveLineage> naive_;
  std::optional<lineage::IndexProjLineage> index_proj_;
};

}  // namespace provlin::testbed

#endif  // PROVLIN_TESTBED_WORKBENCH_H_
