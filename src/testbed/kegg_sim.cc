#include "testbed/kegg_sim.h"

#include <algorithm>
#include <set>

#include "common/random.h"

namespace provlin::testbed {
namespace {

// A fixed pathway universe modelled on real KEGG entries.
const char* const kPathways[] = {
    "path:04010", "path:04370", "path:04210", "path:04620", "path:04150",
    "path:04151", "path:04630", "path:04668", "path:04910", "path:04915",
    "path:05200", "path:05210", "path:05212", "path:04110", "path:04115",
    "path:03320", "path:00010", "path:00020", "path:00190", "path:04330",
};
const char* const kDescriptions[] = {
    "MAPK signaling pathway",      "VEGF signaling pathway",
    "Apoptosis",                   "Toll-like receptor signaling",
    "mTOR signaling pathway",      "PI3K-Akt signaling pathway",
    "JAK-STAT signaling pathway",  "TNF signaling pathway",
    "Insulin signaling pathway",   "Estrogen signaling pathway",
    "Pathways in cancer",          "Colorectal cancer",
    "Pancreatic cancer",           "Cell cycle",
    "p53 signaling pathway",       "PPAR signaling pathway",
    "Glycolysis / Gluconeogenesis", "Citrate cycle (TCA cycle)",
    "Oxidative phosphorylation",   "Notch signaling pathway",
};
constexpr size_t kNumPathways = sizeof(kPathways) / sizeof(kPathways[0]);

uint64_t HashString(const std::string& s) {
  uint64_t h = 0xcbf29ce484222325ull;
  for (char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ull;
  }
  return h;
}

}  // namespace

std::vector<std::string> KeggSimulator::PathwaysForGene(
    const std::string& gene) const {
  Random rng(seed_ ^ HashString(gene));
  std::set<size_t> picks;
  picks.insert(0);  // "path:04010 MAPK signaling" is shared by every gene
  size_t extra = 2 + rng.Uniform(3);
  while (picks.size() < 1 + extra) {
    picks.insert(static_cast<size_t>(rng.Uniform(kNumPathways)));
  }
  std::vector<std::string> out;
  for (size_t i : picks) out.push_back(kPathways[i]);
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<std::string> KeggSimulator::PathwaysForGenes(
    const std::vector<std::string>& genes) const {
  std::vector<std::string> common;
  bool first = true;
  for (const std::string& gene : genes) {
    std::vector<std::string> here = PathwaysForGene(gene);
    if (first) {
      common = here;
      first = false;
      continue;
    }
    std::set<std::string> set_here(here.begin(), here.end());
    std::vector<std::string> kept;
    for (const std::string& p : common) {
      if (set_here.count(p) > 0) kept.push_back(p);
    }
    common = std::move(kept);
  }
  return common;
}

std::string KeggSimulator::DescribePathway(
    const std::string& pathway_id) const {
  for (size_t i = 0; i < kNumPathways; ++i) {
    if (pathway_id == kPathways[i]) {
      return pathway_id + " " + kDescriptions[i];
    }
  }
  return pathway_id + " (unknown pathway)";
}

Status KeggSimulator::RegisterActivities(
    engine::ActivityRegistry* registry) const {
  KeggSimulator sim = *this;

  PROVLIN_RETURN_IF_ERROR(registry->Register(
      "kegg_pathways_by_genes",
      [sim](const engine::ActivityConfig&)
          -> Result<std::shared_ptr<engine::Activity>> {
        return std::shared_ptr<engine::Activity>(new engine::LambdaActivity(
            [sim](const std::vector<Value>& in)
                -> Result<std::vector<Value>> {
              if (in.size() != 1 || !in[0].is_list()) {
                return Status::InvalidArgument(
                    "kegg_pathways_by_genes expects one list(string)");
              }
              std::vector<std::string> genes;
              for (const Value& g : in[0].elements()) {
                if (!g.is_atom() || !g.atom().is_string()) {
                  return Status::InvalidArgument("gene ids must be strings");
                }
                genes.push_back(g.atom().AsString());
              }
              return std::vector<Value>{
                  Value::StringList(sim.PathwaysForGenes(genes))};
            }));
      }));

  PROVLIN_RETURN_IF_ERROR(registry->Register(
      "kegg_pathway_descriptions",
      [sim](const engine::ActivityConfig&)
          -> Result<std::shared_ptr<engine::Activity>> {
        return std::shared_ptr<engine::Activity>(new engine::LambdaActivity(
            [sim](const std::vector<Value>& in)
                -> Result<std::vector<Value>> {
              if (in.size() != 1 || !in[0].is_list()) {
                return Status::InvalidArgument(
                    "kegg_pathway_descriptions expects one list(string)");
              }
              std::vector<std::string> descs;
              for (const Value& p : in[0].elements()) {
                if (!p.is_atom() || !p.atom().is_string()) {
                  return Status::InvalidArgument(
                      "pathway ids must be strings");
                }
                descs.push_back(sim.DescribePathway(p.atom().AsString()));
              }
              return std::vector<Value>{Value::StringList(descs)};
            }));
      }));

  return Status::OK();
}

}  // namespace provlin::testbed
