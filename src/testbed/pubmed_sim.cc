#include "testbed/pubmed_sim.h"

#include <set>

#include "common/random.h"

namespace provlin::testbed {
namespace {

const char* const kProteins[] = {
    "BRCA1", "TP53",  "EGFR",  "KRAS",  "MYC",   "AKT1",  "PTEN",
    "RB1",   "VEGFA", "TNF",   "IL6",   "ESR1",  "CDK2",  "MDM2",
    "STAT3", "JAK2",  "MTOR",  "PIK3CA", "BRAF", "NRAS",
};
constexpr size_t kNumProteins = sizeof(kProteins) / sizeof(kProteins[0]);

const char* const kFiller[] = {
    "study",      "of",        "signaling", "in",        "tumor",
    "cells",      "suggests",  "that",      "expression", "levels",
    "correlate",  "with",      "response",  "to",        "treatment",
};
constexpr size_t kNumFiller = sizeof(kFiller) / sizeof(kFiller[0]);

uint64_t HashString(const std::string& s) {
  uint64_t h = 0xcbf29ce484222325ull;
  for (char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ull;
  }
  return h;
}

}  // namespace

std::vector<std::string> PubmedSimulator::Search(
    const std::vector<std::string>& terms) const {
  std::vector<std::string> ids;
  for (const std::string& term : terms) {
    Random rng(seed_ ^ HashString(term));
    for (int i = 0; i < 3; ++i) {
      ids.push_back("PMID" + std::to_string(10000000 + rng.Uniform(9000000)));
    }
  }
  return ids;
}

std::string PubmedSimulator::FetchAbstract(
    const std::string& abstract_id) const {
  Random rng(seed_ ^ HashString(abstract_id));
  size_t mentions = 2 + rng.Uniform(4);
  std::string text;
  for (size_t i = 0; i < mentions; ++i) {
    for (int w = 0; w < 4; ++w) {
      text += kFiller[rng.Uniform(kNumFiller)];
      text += ' ';
    }
    text += kProteins[rng.Uniform(kNumProteins)];
    text += ' ';
  }
  text += "(" + abstract_id + ")";
  return text;
}

std::vector<std::string> PubmedSimulator::ExtractProteins(
    const std::string& text) const {
  std::set<std::string> found;
  for (size_t i = 0; i < kNumProteins; ++i) {
    if (text.find(kProteins[i]) != std::string::npos) {
      found.insert(kProteins[i]);
    }
  }
  return std::vector<std::string>(found.begin(), found.end());
}

Status PubmedSimulator::RegisterActivities(
    engine::ActivityRegistry* registry) const {
  PubmedSimulator sim = *this;

  auto expect_string = [](const Value& v) -> Result<std::string> {
    if (!v.is_atom() || !v.atom().is_string()) {
      return Status::InvalidArgument("expected a string atom");
    }
    return v.atom().AsString();
  };

  PROVLIN_RETURN_IF_ERROR(registry->Register(
      "pubmed_search",
      [sim, expect_string](const engine::ActivityConfig&)
          -> Result<std::shared_ptr<engine::Activity>> {
        return std::shared_ptr<engine::Activity>(new engine::LambdaActivity(
            [sim, expect_string](const std::vector<Value>& in)
                -> Result<std::vector<Value>> {
              if (in.size() != 1 || !in[0].is_list()) {
                return Status::InvalidArgument(
                    "pubmed_search expects one list(string)");
              }
              std::vector<std::string> terms;
              for (const Value& t : in[0].elements()) {
                PROVLIN_ASSIGN_OR_RETURN(std::string s, expect_string(t));
                terms.push_back(std::move(s));
              }
              return std::vector<Value>{Value::StringList(sim.Search(terms))};
            }));
      }));

  PROVLIN_RETURN_IF_ERROR(registry->Register(
      "pubmed_fetch",
      [sim, expect_string](const engine::ActivityConfig&)
          -> Result<std::shared_ptr<engine::Activity>> {
        return std::shared_ptr<engine::Activity>(new engine::LambdaActivity(
            [sim, expect_string](const std::vector<Value>& in)
                -> Result<std::vector<Value>> {
              if (in.size() != 1) {
                return Status::InvalidArgument("pubmed_fetch expects one id");
              }
              PROVLIN_ASSIGN_OR_RETURN(std::string id, expect_string(in[0]));
              return std::vector<Value>{Value::Str(sim.FetchAbstract(id))};
            }));
      }));

  PROVLIN_RETURN_IF_ERROR(registry->Register(
      "protein_extract",
      [sim, expect_string](const engine::ActivityConfig&)
          -> Result<std::shared_ptr<engine::Activity>> {
        return std::shared_ptr<engine::Activity>(new engine::LambdaActivity(
            [sim, expect_string](const std::vector<Value>& in)
                -> Result<std::vector<Value>> {
              if (in.size() != 1) {
                return Status::InvalidArgument(
                    "protein_extract expects one text");
              }
              PROVLIN_ASSIGN_OR_RETURN(std::string text,
                                       expect_string(in[0]));
              return std::vector<Value>{
                  Value::StringList(sim.ExtractProteins(text))};
            }));
      }));

  return Status::OK();
}

}  // namespace provlin::testbed
