#ifndef PROVLIN_TESTBED_KEGG_SIM_H_
#define PROVLIN_TESTBED_KEGG_SIM_H_

#include <string>
#include <vector>

#include "engine/activity.h"

namespace provlin::testbed {

/// Deterministic stand-in for the KEGG web services used by the
/// genes2Kegg workflow (paper Fig. 1). The engine treats processors as
/// black boxes, so only the *shape* of the returned collections matters
/// for provenance; a seeded synthetic gene→pathway map exercises exactly
/// the same code paths as the live database (see DESIGN.md,
/// Substitutions).
class KeggSimulator {
 public:
  explicit KeggSimulator(uint64_t seed = 42) : seed_(seed) {}

  /// Pathways a single gene participates in: one pathway shared by all
  /// genes (so commonPathways is never empty, as in the paper's example)
  /// plus 2–4 gene-specific ones, all deterministic in (seed, gene).
  std::vector<std::string> PathwaysForGene(const std::string& gene) const;

  /// Pathways in which *all* of the given genes are involved (the
  /// get_pathways_by_genes service): intersection over the gene list.
  std::vector<std::string> PathwaysForGenes(
      const std::vector<std::string>& genes) const;

  /// Human-readable description of a pathway id (the
  /// getPathwayDescriptions service, element-wise).
  std::string DescribePathway(const std::string& pathway_id) const;

  /// Registers activities:
  ///   kegg_pathways_by_genes   list(string) -> list(string)
  ///   kegg_pathway_descriptions list(string) -> list(string)
  Status RegisterActivities(engine::ActivityRegistry* registry) const;

 private:
  uint64_t seed_;
};

}  // namespace provlin::testbed

#endif  // PROVLIN_TESTBED_KEGG_SIM_H_
