#ifndef PROVLIN_TESTBED_PD_WORKFLOW_H_
#define PROVLIN_TESTBED_PD_WORKFLOW_H_

#include <memory>

#include "common/result.h"
#include "engine/activity.h"
#include "values/value.h"
#include "workflow/dataflow.h"

namespace provlin::testbed {

/// The Protein Discovery (PD) workflow — the paper's "longer workflow
/// that looks for protein terms in a set of article abstracts from
/// PubMed", used as the long-path end of the real-workflow spectrum.
///
///   terms : list(string)
///     -> normalize_terms -> expand_query          (per-term steps)
///     -> search_pubmed                            (whole-list service)
///     -> fetch_abstract                           (per abstract id)
///     -> text-processing chain of `text_steps` per-abstract processors
///     -> extract_proteins                         (per abstract)
///     -> merge_hits (flatten) -> dedupe -> rank
///     -> discovered_proteins : list(string)
///
/// `text_steps` controls the path length; the default of 22 yields a
/// ~30-processor workflow matching the PD scale described in §4.
Result<std::shared_ptr<const workflow::Dataflow>> MakePdWorkflow(
    int text_steps = 22);

/// Registry with builtins + PubMed simulator activities (seeded).
Result<std::shared_ptr<engine::ActivityRegistry>> MakePdRegistry(
    uint64_t seed = 7);

/// A plausible search-term input.
Value PdSampleInput();

}  // namespace provlin::testbed

#endif  // PROVLIN_TESTBED_PD_WORKFLOW_H_
