#include "testbed/pd_workflow.h"

#include "engine/builtin_activities.h"
#include "testbed/pubmed_sim.h"
#include "workflow/builder.h"

namespace provlin::testbed {

using workflow::DataflowBuilder;

Result<std::shared_ptr<const workflow::Dataflow>> MakePdWorkflow(
    int text_steps) {
  if (text_steps < 1) {
    return Status::InvalidArgument("text_steps must be >= 1");
  }
  DataflowBuilder b("protein_discovery");
  b.Input("terms", PortType::String(1));
  b.Output("discovered_proteins", PortType::String(1));

  b.Proc("normalize_terms")
      .Activity("to_lower")
      .In("term", PortType::String(0))
      .Out("normalized", PortType::String(0));
  b.Proc("expand_query")
      .Activity("transform")
      .Config("tag", "expand")
      .In("term", PortType::String(0))
      .Out("expanded", PortType::String(0));
  b.Proc("search_pubmed")
      .Activity("pubmed_search")
      .In("query_terms", PortType::String(1))
      .Out("abstract_ids", PortType::String(1));
  b.Proc("fetch_abstract")
      .Activity("pubmed_fetch")
      .In("abstract_id", PortType::String(0))
      .Out("text", PortType::String(0));

  b.Arc("workflow:terms", "normalize_terms:term");
  b.Arc("normalize_terms:normalized", "expand_query:term");
  b.Arc("expand_query:expanded", "search_pubmed:query_terms");
  b.Arc("search_pubmed:abstract_ids", "fetch_abstract:abstract_id");

  // Per-abstract text-processing chain (one-to-one string steps).
  std::string prev = "fetch_abstract:text";
  for (int i = 1; i <= text_steps; ++i) {
    // Built with += to sidestep a GCC 12 -Wrestrict false positive
    // (PR105329) triggered by chained operator+ on temporaries at -O3.
    std::string name = "text_step_";
    name += std::to_string(i);
    std::string tag = "t";
    tag += std::to_string(i);
    std::string port = name;
    port += ":text";
    b.Proc(name)
        .Activity("transform")
        .Config("tag", tag)
        .In("text", PortType::String(0))
        .Out("text", PortType::String(0));
    b.Arc(prev, port);
    prev = port;
  }

  b.Proc("extract_proteins")
      .Activity("protein_extract")
      .In("text", PortType::String(0))
      .Out("proteins", PortType::String(1));
  b.Proc("merge_hits")
      .Activity("flatten")
      .In("hits", PortType::String(2))
      .Out("merged", PortType::String(1));
  b.Proc("dedupe")
      .Activity("unique_list")
      .In("items", PortType::String(1))
      .Out("items", PortType::String(1));
  b.Proc("rank")
      .Activity("sort_list")
      .In("items", PortType::String(1))
      .Out("items", PortType::String(1));

  b.Arc(prev, "extract_proteins:text");
  b.Arc("extract_proteins:proteins", "merge_hits:hits");
  b.Arc("merge_hits:merged", "dedupe:items");
  b.Arc("dedupe:items", "rank:items");
  b.Arc("rank:items", "workflow:discovered_proteins");

  return b.Build();
}

Result<std::shared_ptr<engine::ActivityRegistry>> MakePdRegistry(
    uint64_t seed) {
  auto registry = std::make_shared<engine::ActivityRegistry>();
  engine::RegisterBuiltinActivities(registry.get());
  PubmedSimulator sim(seed);
  PROVLIN_RETURN_IF_ERROR(sim.RegisterActivities(registry.get()));
  return registry;
}

Value PdSampleInput() {
  return Value::StringList(
      {"apoptosis", "tyrosine kinase", "tumor suppressor"});
}

}  // namespace provlin::testbed
