#include "testbed/synthetic.h"

#include "workflow/builder.h"

namespace provlin::testbed {

using workflow::DataflowBuilder;

std::string ChainAProc(int k) { return "CHAINA_" + std::to_string(k); }
std::string ChainBProc(int k) { return "CHAINB_" + std::to_string(k); }

Result<std::shared_ptr<const workflow::Dataflow>> MakeSyntheticWorkflow(
    int chain_length) {
  if (chain_length < 1) {
    return Status::InvalidArgument("chain_length must be >= 1");
  }
  DataflowBuilder b("synthetic_l" + std::to_string(chain_length));
  b.Input("ListSize", PortType::Int(0));
  b.Output("RESULT", PortType::String(2));

  b.Proc(kListGen)
      .Activity("list_gen")
      .Config("item_prefix", "e")
      .In("size", PortType::Int(0))
      .Out("list", PortType::String(1));
  b.Arc("workflow:ListSize", std::string(kListGen) + ":size");

  auto make_chain = [&](const std::string& tag, auto proc_name) {
    std::string prev = std::string(kListGen) + ":list";
    for (int k = 1; k <= chain_length; ++k) {
      std::string name = proc_name(k);
      b.Proc(name)
          .Activity("transform")
          .Config("tag", tag + std::to_string(k))
          .In("x", PortType::String(0))
          .Out("y", PortType::String(0));
      b.Arc(prev, name + ":x");
      prev = name + ":y";
    }
    return prev;
  };
  std::string enda = make_chain("a", ChainAProc);
  std::string endb = make_chain("b", ChainBProc);

  // Binary cross product: both inputs arrive as 1-deep lists on scalar
  // ports, so the final processor runs d*d elementary invocations and
  // produces a 2-deep result (Def. 2, top case).
  b.Proc(kFinal)
      .Activity("concat2")
      .In("X1", PortType::String(0))
      .In("X2", PortType::String(0))
      .Out("Y", PortType::String(0));
  b.Arc(enda, std::string(kFinal) + ":X1");
  b.Arc(endb, std::string(kFinal) + ":X2");
  b.Arc(std::string(kFinal) + ":Y", "workflow:RESULT");

  return b.Build();
}

Value SyntheticInput(int d) { return Value::Int(d); }

}  // namespace provlin::testbed
