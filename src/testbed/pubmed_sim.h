#ifndef PROVLIN_TESTBED_PUBMED_SIM_H_
#define PROVLIN_TESTBED_PUBMED_SIM_H_

#include <string>
#include <vector>

#include "engine/activity.h"

namespace provlin::testbed {

/// Deterministic stand-in for the PubMed services used by the BioAid
/// Protein Discovery (PD) workflow. PD matters to the paper's evaluation
/// as its "long path" real-life workflow; the simulator produces
/// synthetic abstracts with embedded protein mentions so every processor
/// in the long chain has realistic inputs (see DESIGN.md, Substitutions).
class PubmedSimulator {
 public:
  explicit PubmedSimulator(uint64_t seed = 7) : seed_(seed) {}

  /// Abstract ids matching a list of search terms (3 per term).
  std::vector<std::string> Search(const std::vector<std::string>& terms) const;

  /// Synthetic abstract text for an id; mentions 2–5 protein names drawn
  /// from a fixed lexicon.
  std::string FetchAbstract(const std::string& abstract_id) const;

  /// Protein names mentioned in a text (lexicon matching).
  std::vector<std::string> ExtractProteins(const std::string& text) const;

  /// Registers activities:
  ///   pubmed_search     list(string) -> list(string)  (whole-list)
  ///   pubmed_fetch      string -> string              (per element)
  ///   protein_extract   string -> list(string)        (per element)
  Status RegisterActivities(engine::ActivityRegistry* registry) const;

 private:
  uint64_t seed_;
};

}  // namespace provlin::testbed

#endif  // PROVLIN_TESTBED_PUBMED_SIM_H_
