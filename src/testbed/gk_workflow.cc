#include "testbed/gk_workflow.h"

#include "common/random.h"
#include "engine/builtin_activities.h"
#include "testbed/kegg_sim.h"
#include "workflow/builder.h"

namespace provlin::testbed {

using workflow::DataflowBuilder;

Result<std::shared_ptr<const workflow::Dataflow>> MakeGkWorkflow() {
  DataflowBuilder b("genes2Kegg");
  b.Input("list_of_geneIDList", PortType::String(2));
  b.Output("paths_per_gene", PortType::String(2));
  b.Output("commonPathways", PortType::String(1));

  // Fine-grained front step: iterates down to single gene ids (δ = 2).
  b.Proc("normalize_gene_ids")
      .Activity("prefix")
      .Config("prefix", "mmu:")
      .In("gene", PortType::String(0))
      .Out("normalized", PortType::String(0));

  // Left branch: per-sub-list KEGG lookup (δ = 1 on genes_id_list).
  b.Proc("get_pathways_by_genes")
      .Activity("kegg_pathways_by_genes")
      .In("genes_id_list", PortType::String(1))
      .Out("return", PortType::String(1));
  b.Proc("getPathwayDescriptions")
      .Activity("kegg_pathway_descriptions")
      .In("string", PortType::String(1))
      .Out("return", PortType::String(1));

  // Right branch: flatten destroys granularity (whole-value processors).
  b.Proc("merge_gene_lists")
      .Activity("flatten")
      .In("lists", PortType::String(2))
      .Out("merged", PortType::String(1));
  b.Proc("get_common_pathways")
      .Activity("kegg_pathways_by_genes")
      .In("genes_id_list", PortType::String(1))
      .Out("return", PortType::String(1));
  b.Proc("describe_common")
      .Activity("kegg_pathway_descriptions")
      .In("string", PortType::String(1))
      .Out("return", PortType::String(1));

  b.Arc("workflow:list_of_geneIDList", "normalize_gene_ids:gene");
  b.Arc("normalize_gene_ids:normalized",
        "get_pathways_by_genes:genes_id_list");
  b.Arc("get_pathways_by_genes:return", "getPathwayDescriptions:string");
  b.Arc("getPathwayDescriptions:return", "workflow:paths_per_gene");
  b.Arc("normalize_gene_ids:normalized", "merge_gene_lists:lists");
  b.Arc("merge_gene_lists:merged", "get_common_pathways:genes_id_list");
  b.Arc("get_common_pathways:return", "describe_common:string");
  b.Arc("describe_common:return", "workflow:commonPathways");

  return b.Build();
}

Result<std::shared_ptr<engine::ActivityRegistry>> MakeGkRegistry(
    uint64_t seed) {
  auto registry = std::make_shared<engine::ActivityRegistry>();
  engine::RegisterBuiltinActivities(registry.get());
  KeggSimulator sim(seed);
  PROVLIN_RETURN_IF_ERROR(sim.RegisterActivities(registry.get()));
  return registry;
}

Value GkSampleInput() {
  return Value::List({Value::StringList({"20816", "26416"}),
                      Value::StringList({"328788"})});
}

Value GkSyntheticInput(int lists, int genes_per_list, uint64_t seed) {
  Random rng(seed);
  std::vector<Value> outer;
  outer.reserve(static_cast<size_t>(lists));
  for (int i = 0; i < lists; ++i) {
    std::vector<std::string> genes;
    genes.reserve(static_cast<size_t>(genes_per_list));
    for (int j = 0; j < genes_per_list; ++j) {
      genes.push_back(std::to_string(10000 + rng.Uniform(90000)));
    }
    outer.push_back(Value::StringList(genes));
  }
  return Value::List(std::move(outer));
}

}  // namespace provlin::testbed
