#ifndef PROVLIN_TESTBED_SYNTHETIC_H_
#define PROVLIN_TESTBED_SYNTHETIC_H_

#include <memory>
#include <string>

#include "common/result.h"
#include "values/value.h"
#include "workflow/dataflow.h"

namespace provlin::testbed {

/// Generates the synthetic testbed dataflow family of Fig. 5:
///
///   ListSize : int  ->  LISTGEN_1 (1-deep list of d elements)
///        |-> CHAINA_1 -> ... -> CHAINA_l   (one-to-one, per element)
///        `-> CHAINB_1 -> ... -> CHAINB_l
///   CHAINA_l, CHAINB_l -> TWO_TO_ONE_FINAL (binary cross product)
///        -> RESULT : list(list(string))
///
/// `l` (the chain length) is fixed at generation time; `d` is controlled
/// at run time through the ListSize input, exactly as in §4.1. All chain
/// processors are one-to-one (δ = 1), so lineage precision is maintained
/// end to end: the focused query lin(TWO_TO_ONE_FINAL:Y[i,j],
/// {LISTGEN_1}) is answerable at element granularity while forcing a
/// full path traversal under the naïve strategy.
///
/// Processor names: LISTGEN_1, CHAINA_<k>, CHAINB_<k>, TWO_TO_ONE_FINAL.
Result<std::shared_ptr<const workflow::Dataflow>> MakeSyntheticWorkflow(
    int chain_length);

/// Total processor nodes of the generated graph: 2*l + 2.
inline int SyntheticNodeCount(int chain_length) {
  return 2 * chain_length + 2;
}

/// The run-time input binding { ListSize: d }.
Value SyntheticInput(int d);

inline constexpr const char* kListGen = "LISTGEN_1";
inline constexpr const char* kFinal = "TWO_TO_ONE_FINAL";

/// Name of the k-th processor (1-based) of chain A / B.
std::string ChainAProc(int k);
std::string ChainBProc(int k);

}  // namespace provlin::testbed

#endif  // PROVLIN_TESTBED_SYNTHETIC_H_
