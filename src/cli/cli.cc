#include "cli/cli.h"

#include <csignal>

#include <fstream>
#include <map>
#include <memory>
#include <optional>
#include <sstream>

#include "common/logging.h"
#include "common/metric_names.h"
#include "common/metrics.h"
#include "common/string_util.h"
#include "common/tracing.h"
#include "engine/builtin_activities.h"
#include "engine/executor.h"
#include "lineage/engine.h"
#include "lineage/forward_lineage.h"
#include "lineage/index_proj_lineage.h"
#include "lineage/naive_lineage.h"
#include "lineage/service.h"
#include "provenance/opm_export.h"
#include "provenance/provenance_graph.h"
#include "provenance/recorder.h"
#include "provenance/store_open.h"
#include "provenance/trace_store.h"
#include "server/client.h"
#include "server/server.h"
#include "storage/sql.h"
#include "storage/wal.h"
#include "testbed/gk_workflow.h"
#include "testbed/pd_workflow.h"
#include "testbed/synthetic.h"
#include "values/value_parser.h"
#include "workflow/builder.h"
#include "workflow/depth_propagation.h"
#include "workflow/diff.h"
#include "workflow/validate.h"
#include "workflow/workflow_io.h"

namespace provlin::cli {
namespace {

/// Parsed command line: positional command + repeatable flags.
struct Args {
  std::string command;
  std::map<std::string, std::vector<std::string>> flags;
  std::vector<std::string> positional;

  const std::string* Get(const std::string& flag) const {
    auto it = flags.find(flag);
    if (it == flags.end() || it->second.empty()) return nullptr;
    return &it->second.front();
  }
  std::vector<std::string> GetAll(const std::string& flag) const {
    auto it = flags.find(flag);
    return it == flags.end() ? std::vector<std::string>{} : it->second;
  }
};

Result<Args> ParseArgs(const std::vector<std::string>& argv) {
  Args args;
  if (argv.empty()) return Status::InvalidArgument("missing command");
  args.command = argv[0];
  for (size_t i = 1; i < argv.size(); ++i) {
    const std::string& a = argv[i];
    if (StartsWith(a, "--")) {
      std::string flag = a.substr(2);
      if (i + 1 >= argv.size()) {
        return Status::InvalidArgument("flag --" + flag + " needs a value");
      }
      args.flags[flag].push_back(argv[++i]);
    } else {
      args.positional.push_back(a);
    }
  }
  return args;
}

/// Loaded workflow + matching activity registry.
struct LoadedWorkflow {
  std::shared_ptr<const workflow::Dataflow> flow;
  std::shared_ptr<engine::ActivityRegistry> registry;
};

Result<LoadedWorkflow> LoadWorkflow(const std::string& spec) {
  LoadedWorkflow out;
  if (spec == "builtin:gk") {
    PROVLIN_ASSIGN_OR_RETURN(out.flow, testbed::MakeGkWorkflow());
    PROVLIN_ASSIGN_OR_RETURN(out.registry, testbed::MakeGkRegistry());
    return out;
  }
  if (spec == "builtin:pd") {
    PROVLIN_ASSIGN_OR_RETURN(out.flow, testbed::MakePdWorkflow());
    PROVLIN_ASSIGN_OR_RETURN(out.registry, testbed::MakePdRegistry());
    return out;
  }
  if (StartsWith(spec, "builtin:synthetic:")) {
    int64_t l = 0;
    if (!ParseInt64(spec.substr(18), &l) || l < 1) {
      return Status::InvalidArgument("bad synthetic chain length in '" +
                                     spec + "'");
    }
    PROVLIN_ASSIGN_OR_RETURN(out.flow, testbed::MakeSyntheticWorkflow(
                                           static_cast<int>(l)));
  } else {
    std::ifstream in(spec);
    if (!in) return Status::IoError("cannot open workflow file '" + spec + "'");
    std::ostringstream ss;
    ss << in.rdbuf();
    PROVLIN_ASSIGN_OR_RETURN(std::shared_ptr<workflow::Dataflow> parsed,
                             workflow::ParseDataflow(ss.str()));
    PROVLIN_ASSIGN_OR_RETURN(std::shared_ptr<workflow::Dataflow> flat,
                             parsed->Flatten());
    PROVLIN_RETURN_IF_ERROR(workflow::Validate(*flat));
    out.flow = std::move(flat);
  }
  out.registry = std::make_shared<engine::ActivityRegistry>();
  engine::RegisterBuiltinActivities(out.registry.get());
  return out;
}

/// Parses a 1-based "1,2" index (paper notation); "" or "[]" is whole.
Result<Index> ParseCliIndex(const std::string& text) {
  std::string_view t = Trim(text);
  if (!t.empty() && t.front() == '[') t = t.substr(1);
  if (!t.empty() && t.back() == ']') t = t.substr(0, t.size() - 1);
  if (Trim(t).empty()) return Index();
  std::vector<int32_t> parts;
  for (const std::string& tok : Split(t, ',')) {
    int64_t v = 0;
    if (!ParseInt64(std::string(Trim(tok)), &v) || v < 1) {
      return Status::InvalidArgument("bad index component '" + tok +
                                     "' (indices are 1-based)");
    }
    parts.push_back(static_cast<int32_t>(v - 1));
  }
  return Index(std::move(parts));
}

/// Plain database open for commands that must not touch the shard
/// layout (`sql` queries physical tables, so resharding under it would
/// change what it sees).
Result<storage::Database> OpenDb(const std::string& path) {
  storage::Database db;
  std::ifstream probe(path);
  if (probe.good()) {
    PROVLIN_RETURN_IF_ERROR(db.Load(path));
  }
  return db;
}

Status RequireFlag(const Args& args, const char* flag) {
  if (args.Get(flag) == nullptr) {
    return Status::InvalidArgument(std::string("missing --") + flag);
  }
  return Status::OK();
}

/// Store options from the command line, one flag per StoreOptions
/// field: --db PATH, --wal BASE, --shards N (0 = auto: keep the
/// database's recorded count), --async-ingest true,
/// --compress off|seal|always.
Result<provenance::StoreOptions> CliStoreOptions(const Args& args) {
  provenance::StoreOptions options;
  if (const std::string* db = args.Get("db")) options.db_path = *db;
  if (const std::string* wal = args.Get("wal")) options.wal_base = *wal;
  if (const std::string* shards = args.Get("shards")) {
    int64_t n = 0;
    if (!ParseInt64(*shards, &n) || n < 1) {
      return Status::InvalidArgument("bad --shards value '" + *shards + "'");
    }
    options.shards = static_cast<size_t>(n);
  }
  if (const std::string* async = args.Get("async-ingest")) {
    options.async_ingest = *async != "false";
  }
  if (const std::string* compress = args.Get("compress")) {
    if (*compress == "off") {
      options.compress = provenance::CompressMode::kOff;
    } else if (*compress == "seal") {
      options.compress = provenance::CompressMode::kSeal;
    } else if (*compress == "always") {
      options.compress = provenance::CompressMode::kAlways;
    } else {
      return Status::InvalidArgument("bad --compress value '" + *compress +
                                     "' (off|seal|always)");
    }
  }
  return options;
}

Result<provenance::OpenedStore> OpenStoreFromArgs(const Args& args) {
  PROVLIN_ASSIGN_OR_RETURN(provenance::StoreOptions options,
                           CliStoreOptions(args));
  return provenance::OpenStore(options);
}

/// Pre-registers the well-known instrument names so `provlin stats`
/// exposes the whole schema even for counters this process never
/// bumped: an untouched instrument reads 0, and a stable exposition is
/// what scrapers and the CLI tests key on. The names come from the one
/// authoritative list in common/metric_names.h — the same list the
/// project lint holds every registration site to.
void TouchWellKnownInstruments() {
  namespace metrics = common::metrics;
  namespace names = common::metrics::names;
  for (std::string_view name : names::kCounterNames) {
    metrics::GetCounter(name);
  }
  for (std::string_view name : names::kGaugeNames) {
    metrics::GetGauge(name);
  }
  for (std::string_view name : names::kLatencyHistogramNames) {
    metrics::GetHistogram(name);
  }
  for (std::string_view name : names::kSizeHistogramNames) {
    metrics::GetHistogram(name, metrics::DefaultSizeBounds());
  }
}

Status DumpStats(const std::string& format, std::ostream& out) {
  // Fold the tracer ring's health into the snapshot so dropped spans
  // and ring occupancy show up in the default text output.
  common::tracing::PublishTracingStats();
  common::metrics::MetricsSnapshot snap =
      common::metrics::MetricsRegistry::Global().Snapshot();
  if (format == "prometheus") {
    out << snap.ToPrometheusText();
  } else if (format == "json") {
    out << snap.ToJson() << "\n";
  } else {
    return Status::InvalidArgument("unknown --format '" + format +
                                   "' (prometheus|json)");
  }
  return Status::OK();
}

/// RAII capture window for `--trace-out FILE`: enables the global tracer
/// for the command's working section and writes the Chrome trace JSON
/// when the window closes (nothing happens when no path was requested).
/// Call Finish() right after the traced work to exclude output
/// formatting from the capture; the destructor is the error-path
/// fallback so early returns still flush whatever was captured.
class TraceOutScope {
 public:
  explicit TraceOutScope(const std::string* path) : path_(path) {
    if (path_ != nullptr) common::tracing::Tracer::Global().Enable();
  }
  ~TraceOutScope() { Finish(); }
  TraceOutScope(const TraceOutScope&) = delete;
  TraceOutScope& operator=(const TraceOutScope&) = delete;

  /// Stops the capture and writes the trace file (idempotent).
  void Finish() {
    if (path_ == nullptr || finished_) return;
    finished_ = true;
    common::tracing::Tracer& tracer = common::tracing::Tracer::Global();
    tracer.Disable();
    std::ofstream out(*path_);
    if (!out) {
      PROVLIN_LOG(Error) << "cannot write trace file '" << *path_ << "'";
      return;
    }
    out << tracer.ExportChromeTrace();
  }

 private:
  const std::string* path_;
  bool finished_ = false;
};

// ---------------------------------------------------------------------------
// Commands
// ---------------------------------------------------------------------------

Status CmdRun(const Args& args, std::ostream& out) {
  PROVLIN_RETURN_IF_ERROR(RequireFlag(args, "workflow"));
  PROVLIN_RETURN_IF_ERROR(RequireFlag(args, "db"));
  PROVLIN_RETURN_IF_ERROR(RequireFlag(args, "run"));
  PROVLIN_ASSIGN_OR_RETURN(LoadedWorkflow loaded,
                           LoadWorkflow(*args.Get("workflow")));
  // --wal attaches store-owned per-shard capture WALs: one file per
  // shard plus a manifest when sharded; at one shard this is exactly
  // the legacy single-file layout.
  PROVLIN_ASSIGN_OR_RETURN(provenance::OpenedStore opened,
                           OpenStoreFromArgs(args));
  provenance::TraceStore& store = opened.store();

  std::map<std::string, Value> inputs;
  for (const std::string& binding : args.GetAll("input")) {
    size_t eq = binding.find('=');
    if (eq == std::string::npos) {
      return Status::InvalidArgument("--input expects port=literal, got '" +
                                     binding + "'");
    }
    PROVLIN_ASSIGN_OR_RETURN(Value v, ParseValue(binding.substr(eq + 1)));
    inputs[binding.substr(0, eq)] = std::move(v);
  }

  engine::ExecuteOptions options;
  if (const std::string* coe = args.Get("continue-on-error")) {
    options.continue_on_error = *coe != "false";
  }

  provenance::TraceRecorder recorder(&store);
  engine::Executor executor(loaded.registry.get(), &recorder);
  PROVLIN_ASSIGN_OR_RETURN(
      engine::RunResult result,
      executor.Execute(*loaded.flow, inputs, *args.Get("run"), options));
  PROVLIN_RETURN_IF_ERROR(recorder.status());
  PROVLIN_RETURN_IF_ERROR(opened.Save());

  out << "run " << result.run_id << " completed ("
      << result.total_invocations << " invocations";
  if (result.failed_invocations > 0) {
    out << ", " << result.failed_invocations << " failed";
  }
  out << ")\n";
  for (const auto& [port, value] : result.outputs) {
    out << "  " << port << " = " << value.ToString() << "\n";
  }
  return Status::OK();
}

Status CmdRuns(const Args& args, std::ostream& out) {
  PROVLIN_RETURN_IF_ERROR(RequireFlag(args, "db"));
  PROVLIN_ASSIGN_OR_RETURN(provenance::OpenedStore opened,
                           OpenStoreFromArgs(args));
  PROVLIN_ASSIGN_OR_RETURN(std::vector<std::string> runs,
                           opened.store().ListRuns());
  for (const std::string& run : runs) out << run << "\n";
  return Status::OK();
}

Status CmdLineage(const Args& args, std::ostream& out) {
  PROVLIN_RETURN_IF_ERROR(RequireFlag(args, "db"));
  PROVLIN_RETURN_IF_ERROR(RequireFlag(args, "workflow"));
  PROVLIN_RETURN_IF_ERROR(RequireFlag(args, "target"));
  std::vector<std::string> runs = args.GetAll("run");
  if (runs.empty()) return Status::InvalidArgument("missing --run");

  PROVLIN_ASSIGN_OR_RETURN(LoadedWorkflow loaded,
                           LoadWorkflow(*args.Get("workflow")));
  PROVLIN_ASSIGN_OR_RETURN(provenance::OpenedStore opened,
                           OpenStoreFromArgs(args));
  provenance::TraceStore& store = opened.store();

  PROVLIN_ASSIGN_OR_RETURN(workflow::PortRef target,
                           workflow::ParsePortRef(*args.Get("target")));
  Index index;
  if (const std::string* idx = args.Get("index")) {
    PROVLIN_ASSIGN_OR_RETURN(index, ParseCliIndex(*idx));
  }
  lineage::InterestSet interest;
  for (const std::string& focus : args.GetAll("focus")) {
    interest.insert(focus);
  }
  std::string engine_name =
      args.Get("engine") != nullptr ? *args.Get("engine") : "indexproj";
  bool forward = args.Get("forward") != nullptr &&
                 *args.Get("forward") != "false";

  bool explain = args.Get("explain") != nullptr &&
                 *args.Get("explain") != "false";

  double slow_query_ms = 0.0;
  if (const std::string* slow = args.Get("slow-query-ms")) {
    int64_t n = 0;
    if (!ParseInt64(*slow, &n) || n < 0) {
      return Status::InvalidArgument("bad --slow-query-ms value '" + *slow +
                                     "'");
    }
    slow_query_ms = static_cast<double>(n);
  }

  // Span capture covers plan build and query execution; Finish() below
  // writes the trace file before the summary lines (and any --stats
  // exposition) print, so output formatting stays out of the trace.
  TraceOutScope trace_scope(args.Get("trace-out"));

  lineage::LineageAnswer answer;
  if (forward) {
    if (engine_name == "naive") {
      lineage::NaiveForwardLineage naive(&store);
      PROVLIN_ASSIGN_OR_RETURN(answer,
                               naive.Query(runs[0], target, index, interest));
    } else {
      PROVLIN_ASSIGN_OR_RETURN(
          lineage::ForwardIndexProjLineage fwd,
          lineage::ForwardIndexProjLineage::Create(loaded.flow, &store));
      PROVLIN_ASSIGN_OR_RETURN(
          answer, fwd.QueryMultiRun(runs, target, index, interest));
    }
  } else {
    // Backward engines are interchangeable behind the LineageEngine
    // interface; the command only picks which one to instantiate.
    lineage::NaiveLineage naive(&store);
    std::optional<lineage::IndexProjLineage> index_proj;
    const lineage::LineageEngine* engine = nullptr;
    if (engine_name == "naive") {
      engine = &naive;
    } else if (engine_name == "indexproj") {
      PROVLIN_ASSIGN_OR_RETURN(
          lineage::IndexProjLineage created,
          lineage::IndexProjLineage::Create(loaded.flow, &store));
      index_proj.emplace(std::move(created));
      engine = &*index_proj;
      if (explain) {
        PROVLIN_ASSIGN_OR_RETURN(
            std::shared_ptr<const lineage::LineagePlan> plan,
            index_proj->Plan(target, index, interest));
        out << "plan (" << plan->queries.size() << " trace queries, "
            << plan->graph_steps << " spec-graph steps):\n";
        for (const auto& tq : plan->queries) {
          out << "  " << tq.ToString(store) << "\n";
        }
      }
    } else {
      return Status::InvalidArgument("unknown engine '" + engine_name +
                                     "' (naive|indexproj)");
    }

    lineage::LineageRequest request;
    request.runs = runs;
    request.target = target;
    request.index = index;
    request.interest = interest;

    if (const std::string* threads = args.Get("threads")) {
      // Batch mode: one request per run, executed concurrently on the
      // service's pool; the shared plan cache keeps s1 to one traversal.
      int64_t n = 0;
      if (!ParseInt64(*threads, &n) || n < 1) {
        return Status::InvalidArgument("bad --threads value '" + *threads +
                                       "'");
      }
      lineage::ServiceOptions options;
      options.num_threads = static_cast<size_t>(n);
      options.slow_query_ms = slow_query_ms;
      lineage::LineageService service(options);
      std::vector<lineage::ServiceRequest> requests;
      requests.reserve(runs.size());
      for (const std::string& run : runs) {
        requests.push_back(
            {engine, lineage::LineageRequest::SingleRun(run, target, index,
                                                        interest)});
      }
      std::vector<lineage::ServiceResponse> resp =
          service.ExecuteBatch(requests);
      for (const lineage::ServiceResponse& r : resp) {
        PROVLIN_RETURN_IF_ERROR(r.status);
        answer.bindings.insert(answer.bindings.end(),
                               r.answer.bindings.begin(),
                               r.answer.bindings.end());
        answer.timing.t1_ms += r.answer.timing.t1_ms;
        answer.timing.t2_ms += r.answer.timing.t2_ms;
        answer.timing.trace_probes += r.answer.timing.trace_probes;
      }
      lineage::NormalizeBindings(&answer.bindings);
      out << "service: " << service.metrics().ToString() << "\n";
    } else {
      PROVLIN_ASSIGN_OR_RETURN(answer, engine->Query(request));
    }
  }
  trace_scope.Finish();

  // The single-query analogue of the service's slow-query log: flags
  // outliers without anyone watching a dashboard.
  if (slow_query_ms > 0.0 && args.Get("threads") == nullptr &&
      answer.timing.total_ms() > slow_query_ms) {
    PROVLIN_LOG(Warning) << "slow lineage query ("
                         << answer.timing.total_ms() << " ms > "
                         << slow_query_ms << " ms): " << target.ToString()
                         << index.ToString()
                         << " probes=" << answer.timing.trace_probes
                         << " descents=" << answer.timing.trace_descents;
  }

  out << (forward ? "impact of " : "lineage of ") << target.ToString()
      << index.ToString() << ":\n";
  for (const auto& binding : answer.bindings) {
    out << "  " << binding.ToString() << "\n";
  }
  out << "(" << answer.bindings.size() << " bindings, "
      << answer.timing.trace_probes << " trace probes, t1="
      << answer.timing.t1_ms << "ms t2=" << answer.timing.t2_ms << "ms)\n";
  if (args.Get("stats") != nullptr && *args.Get("stats") != "false") {
    TouchWellKnownInstruments();
    PROVLIN_RETURN_IF_ERROR(DumpStats("prometheus", out));
  }
  return Status::OK();
}

/// `stats --connect HOST:PORT`: scrape a live server's registry (and
/// optionally its tracer ring) over the wire's STATS message instead of
/// dumping this process's counters. The scrape is answered on the
/// server's reader thread, so it works even while the dispatch queue is
/// saturated.
Status CmdStatsRemote(const Args& args, const std::string& connect,
                      std::ostream& out) {
  size_t colon = connect.rfind(':');
  int64_t port_n = 0;
  if (colon == std::string::npos || colon == 0 ||
      !ParseInt64(connect.substr(colon + 1), &port_n) || port_n < 1 ||
      port_n > 65535) {
    return Status::InvalidArgument("bad --connect value '" + connect +
                                   "' (expected HOST:PORT)");
  }
  const std::string host = connect.substr(0, colon);
  const std::string* trace_out = args.Get("trace-out");
  uint8_t want = lineage::wire::kStatsWantMetrics;
  if (trace_out != nullptr) want |= lineage::wire::kStatsWantTrace;

  PROVLIN_ASSIGN_OR_RETURN(
      server::LineageClient client,
      server::LineageClient::Connect(host, static_cast<uint16_t>(port_n)));
  PROVLIN_ASSIGN_OR_RETURN(lineage::wire::StatsResponse response,
                           client.Stats(want));
  std::string format =
      args.Get("format") != nullptr ? *args.Get("format") : "prometheus";
  if (format == "prometheus") {
    out << response.prometheus_text;
  } else if (format == "json") {
    out << response.metrics_json << "\n";
  } else {
    return Status::InvalidArgument("unknown --format '" + format +
                                   "' (prometheus|json)");
  }
  if (trace_out != nullptr) {
    if (!response.has_trace) {
      return Status::FailedPrecondition(
          "server did not return a trace ring (is tracing enabled? serve "
          "--trace true)");
    }
    std::ofstream trace_file(*trace_out);
    if (!trace_file) {
      return Status::IoError("cannot write trace file '" + *trace_out + "'");
    }
    trace_file << response.trace_json;
    out << "# trace: " << response.trace_events << " events ("
        << response.trace_dropped << " dropped) -> " << *trace_out << "\n";
  }
  return Status::OK();
}

Status CmdStats(const Args& args, std::ostream& out) {
  if (const std::string* connect = args.Get("connect")) {
    return CmdStatsRemote(args, *connect, out);
  }
  // Counters cover this process: with --db the exposition reflects the
  // cost of loading the database (inserts, WAL work); most uses are
  // `lineage --stats true` or embedding, where the registry has real
  // query traffic by the time it is dumped.
  if (args.Get("db") != nullptr) {
    PROVLIN_ASSIGN_OR_RETURN(provenance::OpenedStore opened,
                             OpenStoreFromArgs(args));
    (void)opened;
  }
  TouchWellKnownInstruments();
  std::string format =
      args.Get("format") != nullptr ? *args.Get("format") : "prometheus";
  PROVLIN_RETURN_IF_ERROR(DumpStats(format, out));
  if (args.Get("reset") != nullptr && *args.Get("reset") != "false") {
    common::metrics::MetricsRegistry::Global().Reset();
  }
  return Status::OK();
}

Status CmdExplain(const Args& args, std::ostream& out) {
  PROVLIN_RETURN_IF_ERROR(RequireFlag(args, "db"));
  PROVLIN_RETURN_IF_ERROR(RequireFlag(args, "workflow"));
  PROVLIN_RETURN_IF_ERROR(RequireFlag(args, "target"));
  std::vector<std::string> runs = args.GetAll("run");
  if (runs.empty()) return Status::InvalidArgument("missing --run");

  PROVLIN_ASSIGN_OR_RETURN(LoadedWorkflow loaded,
                           LoadWorkflow(*args.Get("workflow")));
  PROVLIN_ASSIGN_OR_RETURN(provenance::OpenedStore opened,
                           OpenStoreFromArgs(args));
  provenance::TraceStore& store = opened.store();
  PROVLIN_ASSIGN_OR_RETURN(workflow::PortRef target,
                           workflow::ParsePortRef(*args.Get("target")));
  Index index;
  if (const std::string* idx = args.Get("index")) {
    PROVLIN_ASSIGN_OR_RETURN(index, ParseCliIndex(*idx));
  }
  lineage::InterestSet interest;
  for (const std::string& focus : args.GetAll("focus")) {
    interest.insert(focus);
  }

  TraceOutScope trace_scope(args.Get("trace-out"));

  PROVLIN_ASSIGN_OR_RETURN(
      lineage::IndexProjLineage engine,
      lineage::IndexProjLineage::Create(loaded.flow, &store));
  lineage::LineageRequest request;
  request.runs = runs;
  request.target = target;
  request.index = index;
  request.interest = interest;
  PROVLIN_ASSIGN_OR_RETURN(lineage::ExplainResult result,
                           engine.Explain(request));
  trace_scope.Finish();
  out << result.ToString(store);
  out << "(" << result.answer.bindings.size() << " bindings, "
      << result.answer.timing.trace_probes << " trace probes, "
      << result.answer.timing.trace_descents << " descents)\n";
  return Status::OK();
}

Status CmdSql(const Args& args, std::ostream& out) {
  PROVLIN_RETURN_IF_ERROR(RequireFlag(args, "db"));
  if (args.positional.empty()) {
    return Status::InvalidArgument("missing SQL statement");
  }
  PROVLIN_ASSIGN_OR_RETURN(storage::Database db, OpenDb(*args.Get("db")));
  PROVLIN_ASSIGN_OR_RETURN(storage::SqlResult result,
                           storage::ExecuteSql(db, args.positional[0]));
  for (size_t i = 0; i < result.columns.size(); ++i) {
    out << (i > 0 ? " | " : "") << result.columns[i];
  }
  out << "\n";
  for (const storage::Row& row : result.rows) {
    for (size_t i = 0; i < row.size(); ++i) {
      out << (i > 0 ? " | " : "") << row[i].ToString();
    }
    out << "\n";
  }
  out << "(" << result.rows.size() << " rows, "
      << storage::AccessPathName(result.access_path) << ")\n";
  return Status::OK();
}

Status CmdDot(const Args& args, std::ostream& out) {
  PROVLIN_RETURN_IF_ERROR(RequireFlag(args, "db"));
  PROVLIN_RETURN_IF_ERROR(RequireFlag(args, "run"));
  PROVLIN_ASSIGN_OR_RETURN(provenance::OpenedStore opened,
                           OpenStoreFromArgs(args));
  PROVLIN_ASSIGN_OR_RETURN(
      provenance::ProvenanceGraph graph,
      provenance::ProvenanceGraph::Build(opened.store(), *args.Get("run")));
  out << graph.ToDot(*args.Get("run"));
  return Status::OK();
}

Status CmdExport(const Args& args, std::ostream& out) {
  PROVLIN_RETURN_IF_ERROR(RequireFlag(args, "db"));
  PROVLIN_RETURN_IF_ERROR(RequireFlag(args, "run"));
  PROVLIN_ASSIGN_OR_RETURN(provenance::OpenedStore opened,
                           OpenStoreFromArgs(args));
  PROVLIN_ASSIGN_OR_RETURN(
      std::string json,
      provenance::ExportOpmJson(opened.store(), *args.Get("run")));
  out << json;
  return Status::OK();
}

Status CmdCounts(const Args& args, std::ostream& out) {
  PROVLIN_RETURN_IF_ERROR(RequireFlag(args, "db"));
  PROVLIN_ASSIGN_OR_RETURN(provenance::OpenedStore opened,
                           OpenStoreFromArgs(args));
  provenance::TraceCounts counts;
  if (const std::string* run = args.Get("run")) {
    PROVLIN_ASSIGN_OR_RETURN(counts, opened.store().CountRecords(*run));
  } else {
    PROVLIN_ASSIGN_OR_RETURN(counts, opened.store().CountAllRecords());
  }
  out << "xform rows:  " << counts.xform_rows << "\n";
  out << "xfer rows:   " << counts.xfer_rows << "\n";
  out << "value rows:  " << counts.value_rows << "\n";
  out << "dependency records: " << counts.TotalDependencyRecords() << "\n";
  return Status::OK();
}

Status CmdWorkflow(const Args& args, std::ostream& out) {
  PROVLIN_RETURN_IF_ERROR(RequireFlag(args, "workflow"));
  PROVLIN_ASSIGN_OR_RETURN(LoadedWorkflow loaded,
                           LoadWorkflow(*args.Get("workflow")));
  out << workflow::SerializeDataflow(*loaded.flow);
  PROVLIN_ASSIGN_OR_RETURN(workflow::DepthMap depths,
                           workflow::PropagateDepths(*loaded.flow));
  out << "# port depths (Alg. 1):\n";
  for (const workflow::Processor& proc : loaded.flow->processors()) {
    const workflow::ProcessorDepths& pd = depths.ForProcessor(proc.name);
    out << "#   " << proc.name << ": l=" << pd.iteration_levels << " deltas=";
    for (size_t i = 0; i < pd.input_deltas.size(); ++i) {
      out << (i > 0 ? "," : "") << pd.input_deltas[i];
    }
    out << "\n";
  }
  return Status::OK();
}

Status CmdDiff(const Args& args, std::ostream& out) {
  std::vector<std::string> specs = args.GetAll("workflow");
  if (specs.size() != 2) {
    return Status::InvalidArgument("diff expects two --workflow flags");
  }
  PROVLIN_ASSIGN_OR_RETURN(LoadedWorkflow before, LoadWorkflow(specs[0]));
  PROVLIN_ASSIGN_OR_RETURN(LoadedWorkflow after, LoadWorkflow(specs[1]));
  out << workflow::DiffDataflows(*before.flow, *after.flow).ToString();
  return Status::OK();
}

Status CmdPrune(const Args& args, std::ostream& out) {
  PROVLIN_RETURN_IF_ERROR(RequireFlag(args, "db"));
  PROVLIN_RETURN_IF_ERROR(RequireFlag(args, "run"));
  PROVLIN_ASSIGN_OR_RETURN(provenance::OpenedStore opened,
                           OpenStoreFromArgs(args));
  PROVLIN_ASSIGN_OR_RETURN(size_t removed,
                           opened.store().DeleteRun(*args.Get("run")));
  PROVLIN_RETURN_IF_ERROR(opened.Save());
  out << "pruned run '" << *args.Get("run") << "' (" << removed
      << " rows)\n";
  return Status::OK();
}

/// Parses a non-negative integer flag into `*value`; absent leaves the
/// default in place.
Status ParseSizeFlag(const Args& args, const char* flag, size_t* value) {
  const std::string* text = args.Get(flag);
  if (text == nullptr) return Status::OK();
  int64_t n = 0;
  if (!ParseInt64(*text, &n) || n < 1) {
    return Status::InvalidArgument(std::string("bad --") + flag + " value '" +
                                   *text + "'");
  }
  *value = static_cast<size_t>(n);
  return Status::OK();
}

Status CmdServe(const Args& args, std::ostream& out) {
  PROVLIN_RETURN_IF_ERROR(RequireFlag(args, "workflow"));
  PROVLIN_RETURN_IF_ERROR(RequireFlag(args, "db"));
  PROVLIN_ASSIGN_OR_RETURN(LoadedWorkflow loaded,
                           LoadWorkflow(*args.Get("workflow")));
  PROVLIN_ASSIGN_OR_RETURN(provenance::OpenedStore opened,
                           OpenStoreFromArgs(args));
  provenance::TraceStore& store = opened.store();

  // Both engines are served; the wire request picks one by name.
  lineage::NaiveLineage naive(&store);
  PROVLIN_ASSIGN_OR_RETURN(
      lineage::IndexProjLineage index_proj,
      lineage::IndexProjLineage::Create(loaded.flow, &store));
  server::LineageServer::EngineMap engines;
  engines["naive"] = &naive;
  engines["indexproj"] = &index_proj;

  server::ServerOptions options;
  if (const std::string* port = args.Get("port")) {
    int64_t n = 0;
    if (!ParseInt64(*port, &n) || n < 0 || n > 65535) {
      return Status::InvalidArgument("bad --port value '" + *port + "'");
    }
    options.port = static_cast<uint16_t>(n);
  }
  PROVLIN_RETURN_IF_ERROR(
      ParseSizeFlag(args, "threads", &options.service.num_threads));
  PROVLIN_RETURN_IF_ERROR(ParseSizeFlag(args, "max-queue",
                                        &options.max_queue));
  PROVLIN_RETURN_IF_ERROR(ParseSizeFlag(args, "max-batch",
                                        &options.max_batch));
  PROVLIN_RETURN_IF_ERROR(ParseSizeFlag(args, "max-connections",
                                        &options.max_connections));
  if (const std::string* slow = args.Get("slow-request-ms")) {
    double ms = 0.0;
    if (!ParseDouble(*slow, &ms) || ms < 0.0) {
      return Status::InvalidArgument("bad --slow-request-ms value '" + *slow +
                                     "' (non-negative ms; 0 logs everything)");
    }
    options.slow_request_ms = ms;
  }
  if (const std::string* path = args.Get("slow-log")) {
    options.slow_log_path = *path;
  }
  if (const std::string* cap = args.Get("slow-log-max-bytes")) {
    int64_t n = 0;
    if (!ParseInt64(*cap, &n) || n < 1) {
      return Status::InvalidArgument("bad --slow-log-max-bytes value '" +
                                     *cap + "'");
    }
    options.slow_log_max_bytes = static_cast<uint64_t>(n);
  }
  // --trace true turns the in-process tracer ring on for the server's
  // lifetime so `provlin stats --connect HOST:PORT --trace-out FILE`
  // can scrape span data from a live process.
  if (args.Get("trace") != nullptr && *args.Get("trace") != "false") {
    common::tracing::Tracer::Global().Enable();
  }

  // Block the shutdown signals before Start() so every server thread
  // inherits the mask and only the sigwait below receives them.
  sigset_t mask;
  sigemptyset(&mask);
  sigaddset(&mask, SIGINT);
  sigaddset(&mask, SIGTERM);
  pthread_sigmask(SIG_BLOCK, &mask, nullptr);

  server::LineageServer server(std::move(engines), options);
  // Slow-request records carry the same EXPLAIN step costs the CLI's
  // `explain` command prints (re-measured for the offending request).
  // `index_proj` and `store` are stack locals declared above the server
  // and so outlive it.
  server.SetExplainer(
      "indexproj",
      [&index_proj, &store](const lineage::LineageRequest& request) {
        Result<lineage::ExplainResult> explained = index_proj.Explain(request);
        if (!explained.ok()) return std::string();
        return explained->ToJson(store);
      });
  PROVLIN_RETURN_IF_ERROR(server.Start());
  out << "serving lineage on 127.0.0.1:" << server.port() << " ("
      << options.service.num_threads << " workers, queue "
      << options.max_queue << ", batch " << options.max_batch << ")\n";
  out.flush();
  // --port-file is how scripts and CI find an ephemeral --port 0: the
  // file appears only once the server is accepting.
  if (const std::string* port_file = args.Get("port-file")) {
    std::ofstream pf(*port_file);
    if (!pf) {
      server.Stop();
      return Status::IoError("cannot write port file '" + *port_file + "'");
    }
    pf << server.port() << "\n";
  }

  int sig = 0;
  sigwait(&mask, &sig);
  out << "caught " << (sig == SIGINT ? "SIGINT" : "SIGTERM")
      << ", shutting down\n";
  server.Stop();

  server::ServerStats stats = server.stats();
  out << "served " << stats.responses_ok << " ok, " << stats.responses_error
      << " error, " << stats.overload_shed << " shed over "
      << stats.connections_accepted << " connections ("
      << stats.connections_rejected << " rejected, " << stats.bad_frames
      << " bad frames, " << stats.stats_requests << " stats scrapes)\n";
  if (stats.slow_requests_logged > 0) {
    out << "slow-request log: " << stats.slow_requests_logged
        << " records -> " << options.slow_log_path << "\n";
  }
  if (args.Get("stats") != nullptr && *args.Get("stats") != "false") {
    TouchWellKnownInstruments();
    PROVLIN_RETURN_IF_ERROR(DumpStats("prometheus", out));
  }
  return Status::OK();
}

const char* kUsage =
    "usage: provlin <command> [flags]\n"
    "commands: run, runs, lineage, explain, serve, stats, sql, dot, export,\n"
    "          counts, workflow, diff, prune\n"
    "see src/cli/cli.h for full flag documentation\n";

}  // namespace

int RunCli(const std::vector<std::string>& argv, std::ostream& out,
           std::ostream& err) {
  auto args = ParseArgs(argv);
  if (!args.ok()) {
    err << args.status().ToString() << "\n" << kUsage;
    return 2;
  }
  Status st;
  if (args->command == "run") {
    st = CmdRun(*args, out);
  } else if (args->command == "runs") {
    st = CmdRuns(*args, out);
  } else if (args->command == "lineage") {
    st = CmdLineage(*args, out);
  } else if (args->command == "explain") {
    st = CmdExplain(*args, out);
  } else if (args->command == "serve") {
    st = CmdServe(*args, out);
  } else if (args->command == "stats") {
    st = CmdStats(*args, out);
  } else if (args->command == "sql") {
    st = CmdSql(*args, out);
  } else if (args->command == "dot") {
    st = CmdDot(*args, out);
  } else if (args->command == "export") {
    st = CmdExport(*args, out);
  } else if (args->command == "counts") {
    st = CmdCounts(*args, out);
  } else if (args->command == "workflow") {
    st = CmdWorkflow(*args, out);
  } else if (args->command == "diff") {
    st = CmdDiff(*args, out);
  } else if (args->command == "prune") {
    st = CmdPrune(*args, out);
  } else if (args->command == "help" || args->command == "--help") {
    out << kUsage;
    return 0;
  } else {
    err << "unknown command '" << args->command << "'\n" << kUsage;
    return 2;
  }
  if (!st.ok()) {
    err << st.ToString() << "\n";
    return 1;
  }
  return 0;
}

}  // namespace provlin::cli
