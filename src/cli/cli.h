#ifndef PROVLIN_CLI_CLI_H_
#define PROVLIN_CLI_CLI_H_

#include <ostream>
#include <string>
#include <vector>

namespace provlin::cli {

/// The provlin command-line tool, factored as a library so tests can
/// drive it in-process. Commands:
///
///   run      --workflow W --db FILE --run ID --input port=literal ...
///            [--wal FILE] [--shards N] [--async-ingest true]
///            [--compress off|seal|always]
///            Execute a workflow with provenance capture and persist the
///            trace database. --shards N partitions the trace store into
///            N run shards (per-shard tables, B+trees, and — with --wal —
///            per-shard WAL files + a manifest); --async-ingest true
///            moves WAL appends and B+-tree inserts to per-shard writer
///            threads.
///   runs     --db FILE
///            List recorded runs.
///   lineage  --db FILE --workflow W --run ID [--run ID]* --target P:X
///            [--index 1,2] [--focus P]* [--engine naive|indexproj]
///            [--forward] [--explain true] [--threads N] [--shards N]
///            [--trace-out FILE.json] [--slow-query-ms N] [--stats true]
///            Answer a (backward or forward) lineage query. With
///            --threads N the runs are answered as a concurrent batch on
///            an N-worker LineageService (one request per run, shared
///            plan cache) and the service metrics are printed.
///            --trace-out captures the query as Chrome trace-event JSON
///            (open in Perfetto); --slow-query-ms logs a WARNING line
///            for queries slower than N ms; --stats true appends the
///            Prometheus metrics exposition after the answer.
///   explain  --db FILE --workflow W --run ID [--run ID]* --target P:X
///            [--index 1,2] [--focus P]* [--shards N]
///            [--trace-out FILE.json]
///            EXPLAIN an IndexProj query: print the generated trace
///            queries with measured per-step costs (probes, descents,
///            rows, bindings, wall time) from a single-probe execution.
///   serve    --workflow W --db FILE [--port N] [--port-file FILE]
///            [--threads N] [--shards N] [--async-ingest true]
///            [--max-queue N] [--max-batch N] [--max-connections N]
///            [--slow-request-ms N] [--slow-log FILE]
///            [--slow-log-max-bytes N] [--trace true] [--stats true]
///            Serve lineage queries over loopback TCP (DESIGN.md §12):
///            length-prefixed wire-protocol frames carrying versioned
///            LineageRequest envelopes, answered by both engines
///            ("naive", "indexproj" — the request names one) through a
///            shared concurrent LineageService. --port 0 (default)
///            binds an ephemeral port; --port-file writes the bound
///            port once the server is accepting. A full request queue
///            sheds load with typed OVERLOADED responses.
///            --slow-request-ms N appends a structured JSON-lines record
///            (phase timeline, shard fan-out, probe counts, EXPLAIN
///            payload — DESIGN.md §14) for every served request at or
///            over N ms to --slow-log (default slow_requests.jsonl,
///            rotated at --slow-log-max-bytes); N=0 logs everything.
///            --trace true keeps the tracer ring live so remote scrapes
///            can pull it. Stop with SIGINT/SIGTERM; a served-traffic
///            summary (and with --stats true the metrics exposition)
///            prints on shutdown. Drive it with tools/loadgen.
///   stats    [--db FILE] [--format prometheus|json] [--reset true]
///            [--connect HOST:PORT] [--trace-out FILE.json]
///            Dump the process metrics registry (counters, gauges,
///            latency histograms across storage, provenance, lineage,
///            and service tiers), including the tracer ring's health
///            gauges (tracing/ring_events, ring_dropped). With
///            --connect the registry of a *live server* is scraped over
///            the wire's STATS message instead (answered on the
///            server's reader thread, so it works under dispatch
///            saturation); --trace-out additionally pulls the server's
///            tracer ring as Chrome trace-event JSON.
///   sql      --db FILE "SELECT ..."
///            Run a SQL query against the trace database.
///   dot      --db FILE --run ID
///            Emit the run's provenance graph in Graphviz format.
///   export   --db FILE --run ID
///            Emit the run's trace as an OPM-style JSON document.
///   counts   --db FILE [--run ID]
///            Trace record statistics.
///   workflow --workflow W
///            Print the (flattened) workflow definition and port depths.
///   diff     --workflow BEFORE --workflow AFTER
///            Structural diff between two workflow versions.
///   prune    --db FILE --run ID
///            Delete a run and all of its trace rows.
///
/// Workflow specifier W is either a path to a text definition
/// (workflow_io format) or one of the builtins: "builtin:gk",
/// "builtin:pd", "builtin:synthetic:<l>". Query indices are 1-based, as
/// in the paper's notation.
///
/// --shards (run/lineage/explain; DESIGN.md §11) defaults to 0 = auto:
/// a database that already records a shard count keeps it, otherwise the
/// store is unsharded. An explicit count that differs from the image's
/// reshards the database on open. `stats` surfaces per-shard
/// provenance/shard<k>/{rows,probes} counters once a sharded store has
/// been opened in the process.
///
/// --compress (every command that opens a store; DESIGN.md §13) selects
/// the segment sealing policy: "off" keeps all runs in the mutable
/// B+tree tier (and decodes any sealed segments back on open), "seal"
/// seals every run except the latest per shard into compressed
/// immutable segments probed in place, "always" also seals the latest.
/// Default: the PROVLIN_TEST_COMPRESS environment variable, else off.
/// `stats` surfaces provenance/shard<k>/{segments,segment_rows,
/// segment_bytes,hot_rows} and the storage/segment_* probe counters.
///
/// Returns a process exit code; output goes to `out`, diagnostics to
/// `err`.
int RunCli(const std::vector<std::string>& args, std::ostream& out,
           std::ostream& err);

}  // namespace provlin::cli

#endif  // PROVLIN_CLI_CLI_H_
