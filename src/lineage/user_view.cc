#include "lineage/user_view.h"

namespace provlin::lineage {

using workflow::kWorkflowProcessor;

Result<UserView> UserView::Create(
    std::shared_ptr<const workflow::Dataflow> dataflow,
    std::map<std::string, std::set<std::string>> composites) {
  UserView view;
  view.dataflow_ = std::move(dataflow);

  for (const auto& [name, members] : composites) {
    if (name == kWorkflowProcessor) {
      return Status::InvalidArgument("'workflow' is reserved");
    }
    if (view.dataflow_->FindProcessor(name) != nullptr) {
      return Status::InvalidArgument("composite '" + name +
                                     "' shadows a processor");
    }
    if (members.empty()) {
      return Status::InvalidArgument("composite '" + name + "' is empty");
    }
    for (const std::string& member : members) {
      if (view.dataflow_->FindProcessor(member) == nullptr) {
        return Status::NotFound("composite '" + name +
                                "' references unknown processor '" + member +
                                "'");
      }
      auto [_, inserted] = view.member_to_composite_.emplace(member, name);
      if (!inserted) {
        return Status::InvalidArgument("processor '" + member +
                                       "' belongs to two composites");
      }
    }
  }
  view.composites_ = std::move(composites);

  // Boundary input ports: arcs crossing into a composite from outside
  // it (including from the workflow inputs). Unconnected defaulted
  // ports are internal configuration, not boundaries.
  for (const auto& [name, members] : view.composites_) {
    for (const std::string& member : members) {
      const workflow::Processor* proc = view.dataflow_->FindProcessor(member);
      for (const workflow::Port& in : proc->inputs) {
        for (const workflow::Arc* arc :
             view.dataflow_->ArcsInto({member, in.name})) {
          bool internal = arc->src.processor != kWorkflowProcessor &&
                          members.count(arc->src.processor) > 0;
          if (!internal) {
            view.boundary_[{member, in.name}] = name;
          }
        }
      }
    }
  }
  return view;
}

const std::string* UserView::CompositeOf(const std::string& processor) const {
  auto it = member_to_composite_.find(processor);
  return it == member_to_composite_.end() ? nullptr : &it->second;
}

Result<std::set<std::string>> UserView::BoundaryInputs(
    const std::string& composite) const {
  if (composites_.count(composite) == 0) {
    return Status::NotFound("no composite named '" + composite + "'");
  }
  std::set<std::string> out;
  for (const auto& [port, owner] : boundary_) {
    if (owner == composite) out.insert(port.first + ":" + port.second);
  }
  return out;
}

Result<InterestSet> UserView::Lower(const InterestSet& view_interest) const {
  InterestSet lowered;
  for (const std::string& name : view_interest) {
    auto cit = composites_.find(name);
    if (cit != composites_.end()) {
      // Focus the members that own a boundary input port.
      for (const auto& [port, owner] : boundary_) {
        if (owner == name) lowered.insert(port.first);
      }
      continue;
    }
    if (name == kWorkflowProcessor ||
        dataflow_->FindProcessor(name) != nullptr) {
      lowered.insert(name);
      continue;
    }
    return Status::NotFound("interest '" + name +
                            "' names neither a composite nor a processor");
  }
  return lowered;
}

LineageAnswer UserView::Raise(const InterestSet& view_interest,
                              LineageAnswer answer) const {
  std::vector<LineageBinding> raised;
  raised.reserve(answer.bindings.size());
  for (LineageBinding& b : answer.bindings) {
    const std::string* composite = CompositeOf(b.port.processor);
    if (composite == nullptr) {
      raised.push_back(std::move(b));
      continue;
    }
    // Bindings inside a composite surface only at boundary ports, and
    // only when the composite (not the member) was asked for.
    auto bit = boundary_.find({b.port.processor, b.port.port});
    bool is_boundary = bit != boundary_.end() && bit->second == *composite;
    bool composite_asked = view_interest.empty() ||
                           view_interest.count(*composite) > 0;
    bool member_asked = view_interest.count(b.port.processor) > 0;
    if (member_asked) {
      raised.push_back(std::move(b));
      continue;
    }
    if (!composite_asked || !is_boundary) continue;
    LineageBinding relabeled = std::move(b);
    relabeled.port = workflow::PortRef{
        *composite, relabeled.port.processor + "." + relabeled.port.port};
    raised.push_back(std::move(relabeled));
  }
  answer.bindings = std::move(raised);
  NormalizeBindings(&answer.bindings);
  return answer;
}

Result<LineageAnswer> UserView::Query(IndexProjLineage* engine,
                                      const std::string& run,
                                      const workflow::PortRef& target,
                                      const Index& q,
                                      const InterestSet& view_interest) const {
  PROVLIN_ASSIGN_OR_RETURN(InterestSet lowered, Lower(view_interest));
  PROVLIN_ASSIGN_OR_RETURN(
      LineageAnswer answer,
      engine->Query(LineageRequest::SingleRun(run, target, q, lowered)));
  return Raise(view_interest, std::move(answer));
}

}  // namespace provlin::lineage
