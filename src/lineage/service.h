#ifndef PROVLIN_LINEAGE_SERVICE_H_
#define PROVLIN_LINEAGE_SERVICE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/annotations.h"
#include "common/metrics.h"
#include "common/result.h"
#include "common/sync.h"
#include "common/thread_pool.h"
#include "lineage/engine.h"
#include "provenance/trace_store.h"

namespace provlin::lineage {

/// Tuning knobs for the batch lineage service.
struct ServiceOptions {
  /// Fixed worker-pool size.
  size_t num_threads = 4;
  /// When set, requests of one batch that resolve to the same plan
  /// (same engine, target, index, and interest set) are chained onto one
  /// worker task, so the first request warms the plan and the rest reuse
  /// it without even touching the cache lock — the §3.4 "plan once,
  /// execute per run" sharing, generalized to whole batches. Turning it
  /// off dispatches every request independently, which maximizes
  /// parallelism (and plan-cache contention — exercised by tests).
  bool group_same_plan = true;
  /// When set, all workers of one batch share a probe memo: identical
  /// trace probes (same kind, run, port, index) issued by different
  /// requests are answered from memory after the first one pays the
  /// storage probes. Request answers are unchanged — only duplicated
  /// physical work disappears. Reported probe/descent counts become
  /// batch-composition-dependent, so count-asserting tests turn this
  /// off.
  bool dedupe_probes = true;
  /// Slow-query outlier threshold in milliseconds: a request whose
  /// engine-measured execution time exceeds it gets one WARNING log line
  /// (target, runs, timing breakdown). 0 disables the check.
  double slow_query_ms = 0.0;
};

/// One entry of a batch: which engine answers which request. Engines are
/// borrowed, must outlive the batch call, and must be safe for
/// concurrent Query() (both in-tree engines are).
struct ServiceRequest {
  const LineageEngine* engine = nullptr;
  LineageRequest request;
};

/// Per-request outcome, positionally aligned with the submitted batch.
struct ServiceResponse {
  Status status;
  LineageAnswer answer;  // meaningful iff status.ok()
  /// Time between batch submission and the request starting to execute.
  double queue_wait_ms = 0.0;
  /// Wall time of the engine Query() call itself (set for failures too,
  /// unlike answer.timing which only exists on success).
  double exec_ms = 0.0;
  /// Worker thread (0 .. num_threads-1) that executed the request.
  size_t worker = 0;
  /// Rows/entries the storage layer examined for this request (worker
  /// ThreadStats delta around the Query() call).
  uint64_t rows_examined = 0;
  /// Per-shard / per-tier physical probe work (DESIGN.md §14), filled
  /// through the ProbeBreakdownScope the worker installs per request.
  provenance::ProbeBreakdown breakdown;
};

/// Cumulative service counters — a value snapshot, consumable by the CLI
/// (`lineage --threads N`) and the service bench.
struct ServiceMetrics {
  uint64_t batches = 0;
  uint64_t requests = 0;
  uint64_t failed_requests = 0;
  /// Requests whose IndexProj plan was served from the shared cache.
  uint64_t plan_cache_hits = 0;
  /// Trace probes issued by service workers (sum over per-thread counts).
  uint64_t trace_probes = 0;
  /// Physical B+-tree descents behind those probes (amortized by batched
  /// probe execution; see LineageTiming::trace_descents).
  uint64_t trace_descents = 0;
  /// Of the probe-memo consultations counted in probe_memo_lookups, how
  /// many were answered from the shared per-batch memo instead of the
  /// storage layer (both zero when ServiceOptions::dedupe_probes is off).
  uint64_t probe_memo_hits = 0;
  uint64_t probe_memo_lookups = 0;
  double total_queue_wait_ms = 0.0;
  /// Sum of per-request execution time (excludes queue wait).
  double total_exec_ms = 0.0;
  /// Wall time of the most recent batch, submission to last response.
  double last_batch_wall_ms = 0.0;
  /// Trace probes per worker thread, indexed by worker id.
  std::vector<uint64_t> per_thread_probes;

  /// Plan-cache hit rate over all requests so far (0 when no requests).
  double plan_cache_hit_rate() const {
    return requests == 0
               ? 0.0
               : static_cast<double>(plan_cache_hits) /
                     static_cast<double>(requests);
  }

  std::string ToString() const;

  /// The registry-derived view: rebuilds the same counters from a
  /// MetricsSnapshot's service/* instruments. In a process with one
  /// LineageService this equals metrics() exactly (asserted by
  /// service_test); with several services it is their sum.
  /// per_thread_probes stays empty — worker attribution is per-service
  /// state the process-wide registry does not keep.
  static ServiceMetrics FromRegistrySnapshot(
      const common::metrics::MetricsSnapshot& snap);
};

/// Concurrent batch lineage query service: accepts a batch of requests
/// and executes them on a fixed-size thread pool against read-only
/// engines. This is the layer that turns the paper's per-query
/// amortization (one spec-graph traversal shared across runs and
/// queries, §3.4) into throughput: many clients' queries ride one plan
/// build, and independent plans run on all cores.
///
/// The trace stores behind the engines must be quiescent while a batch
/// executes (no concurrent capture); the storage read path is designed
/// to be shared (atomic stats, internally synchronized dictionaries).
class LineageService {
 public:
  explicit LineageService(ServiceOptions options = {});

  /// Executes the whole batch and blocks until every request finished.
  /// Responses align positionally with `batch`. Per-request failures are
  /// reported in the response status — one bad request never poisons the
  /// batch. Thread-safe; concurrent batches share the pool.
  std::vector<ServiceResponse> ExecuteBatch(
      const std::vector<ServiceRequest>& batch) EXCLUDES(metrics_mu_);

  /// Snapshot of this service's cumulative counters. The same values are
  /// also published to the process-wide MetricsRegistry under service/*
  /// (see ServiceMetrics::FromRegistrySnapshot).
  ServiceMetrics metrics() const EXCLUDES(metrics_mu_);
  void ResetMetrics() EXCLUDES(metrics_mu_);

  size_t num_threads() const { return pool_.num_threads(); }

 private:
  ServiceOptions options_;
  common::ThreadPool pool_;
  /// Leaf lock (DESIGN.md §10 lock order): taken only after a batch's
  /// workers have quiesced, never while holding or acquiring the plan
  /// cache, interner, or pool locks.
  mutable common::Mutex metrics_mu_{common::LockRank::kServiceMetrics};
  ServiceMetrics metrics_ GUARDED_BY(metrics_mu_);
};

}  // namespace provlin::lineage

#endif  // PROVLIN_LINEAGE_SERVICE_H_
