#ifndef PROVLIN_LINEAGE_VERSIONED_LINEAGE_H_
#define PROVLIN_LINEAGE_VERSIONED_LINEAGE_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "lineage/index_proj_lineage.h"
#include "provenance/trace_store.h"

namespace provlin::lineage {

/// Workflow definitions known to the query layer, keyed by the name
/// recorded in the runs table. Different versions register under
/// different names (e.g. "pipeline-v1", "pipeline-v2").
class WorkflowRegistry {
 public:
  Status Register(std::shared_ptr<const workflow::Dataflow> flow);
  Result<std::shared_ptr<const workflow::Dataflow>> Get(
      const std::string& name) const;
  std::vector<std::string> Names() const;

 private:
  std::map<std::string, std::shared_ptr<const workflow::Dataflow>> flows_;
};

/// Lineage queries spanning runs of *different workflow versions* —
/// the generalization §3.4 sketches: "comparing data products across
/// multiple runs of the same workflow, as well as across runs of
/// different versions of a workflow".
///
/// Runs are grouped by their recorded workflow name; each group gets
/// (and caches) its own IndexProj engine, so the s1 traversal happens
/// once per *version*, and s2 once per run, exactly as in the
/// single-version multi-run case. Versions in which the query target
/// does not exist (the port or processor was removed/renamed)
/// contribute nothing and are reported in `skipped_runs`.
class VersionedLineage {
 public:
  /// Both the registry and the store must outlive this object.
  VersionedLineage(const WorkflowRegistry* registry,
                   const provenance::TraceStore* store)
      : registry_(registry), store_(store) {}

  struct VersionedAnswer {
    LineageAnswer answer;
    /// Runs skipped because their version lacks the target (run -> why).
    std::map<std::string, std::string> skipped_runs;
    /// Number of distinct versions that contributed.
    size_t versions_queried = 0;
  };

  Result<VersionedAnswer> QueryAcrossVersions(
      const std::vector<std::string>& runs, const workflow::PortRef& target,
      const Index& q, const InterestSet& interest);

 private:
  const WorkflowRegistry* registry_;
  const provenance::TraceStore* store_;
  /// Per-version engines, created on first use (plan caches persist).
  std::map<std::string, IndexProjLineage> engines_;
};

}  // namespace provlin::lineage

#endif  // PROVLIN_LINEAGE_VERSIONED_LINEAGE_H_
