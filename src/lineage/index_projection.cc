#include "lineage/index_projection.h"

#include <algorithm>

namespace provlin::lineage {

std::vector<Index> ProjectOutputIndex(const workflow::Processor& proc,
                                      const workflow::ProcessorDepths& depths,
                                      const Index& q) {
  // The strategy layout places each port's fragment at a fixed slot in
  // the output index (cross appends siblings, dot aligns them), so
  // projection is a pure (offset, length) extraction — Def. 4
  // generalized to arbitrary strategy expressions. Fragments truncate
  // when q is shorter than the slot (coarse queries).
  std::vector<Index> out;
  out.reserve(proc.inputs.size());
  for (const workflow::Port& in : proc.inputs) {
    auto it = depths.slots.find(in.name);
    if (it == depths.slots.end() || it->second.length == 0) {
      out.push_back(Index::Empty());
      continue;
    }
    size_t begin = std::min(it->second.offset, q.length());
    size_t take = std::min(it->second.length, q.length() - begin);
    out.push_back(q.SubIndex(begin, take));
  }
  return out;
}

}  // namespace provlin::lineage
