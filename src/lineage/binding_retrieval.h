#ifndef PROVLIN_LINEAGE_BINDING_RETRIEVAL_H_
#define PROVLIN_LINEAGE_BINDING_RETRIEVAL_H_

#include <vector>

#include "lineage/query.h"
#include "provenance/trace_store.h"

namespace provlin::lineage {

/// Appends the IN binding of one xform dependency row as a lineage
/// answer element (value resolved through the val table).
Status AppendInputBinding(const provenance::TraceStore& store,
                          const std::string& run,
                          const provenance::XformRecord& row,
                          std::vector<LineageBinding>* out);

/// Appends bindings for workflow-input source rows. When the query index
/// `q` is finer than the recorded binding (source rows are recorded at
/// whole-value granularity), the element at the residual index is
/// extracted so the reported lineage is as precise as the question —
/// e.g. lin(paths_per_gene[1]) reports only the gene sub-list involved.
Status AppendSourceBindings(const provenance::TraceStore& store,
                            const std::string& run,
                            const std::vector<provenance::XformRecord>& rows,
                            const Index& q,
                            std::vector<LineageBinding>* out);

}  // namespace provlin::lineage

#endif  // PROVLIN_LINEAGE_BINDING_RETRIEVAL_H_
