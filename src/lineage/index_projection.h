#ifndef PROVLIN_LINEAGE_INDEX_PROJECTION_H_
#define PROVLIN_LINEAGE_INDEX_PROJECTION_H_

#include <vector>

#include "values/index.h"
#include "workflow/dataflow.h"
#include "workflow/depth_propagation.h"

namespace provlin::lineage {

/// The index projection rule (Def. 4 + Prop. 1): apportions an output
/// index q of processor `proc` to its input ports, in port order, by the
/// statically computed positive mismatches δs(Xi).
///
/// Under the cross strategy, input i receives the fragment of q starting
/// at offset Σ_{j<i} max(0, δs(Xj)) of length max(0, δs(Xi)); under the
/// dot ("zip") extension every iterated port receives the leading
/// max(0, δs) components of q, since all iterators advance together.
///
/// When q is shorter than the total iteration depth (a coarse or
/// whole-value query), fragments truncate gracefully to what is
/// available, which turns the corresponding trace probes into prefix
/// scans — precision degrades exactly where the requested index does.
/// Components of q beyond the iteration depth address positions *inside*
/// the value built by one elementary invocation; they are opaque under
/// the black-box assumption and are dropped.
std::vector<Index> ProjectOutputIndex(const workflow::Processor& proc,
                                      const workflow::ProcessorDepths& depths,
                                      const Index& q);

}  // namespace provlin::lineage

#endif  // PROVLIN_LINEAGE_INDEX_PROJECTION_H_
