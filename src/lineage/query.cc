#include "lineage/query.h"

#include <algorithm>

namespace provlin::lineage {

void NormalizeBindings(std::vector<LineageBinding>* bindings) {
  std::sort(bindings->begin(), bindings->end());
  bindings->erase(std::unique(bindings->begin(), bindings->end()),
                  bindings->end());

  // Drop bindings covered by a strictly coarser binding on the same run
  // and port. After sorting, a coarser binding precedes its extensions,
  // but not necessarily adjacently, so test against all kept bindings of
  // the same (run, port) group.
  std::vector<LineageBinding> kept;
  kept.reserve(bindings->size());
  for (const LineageBinding& b : *bindings) {
    bool covered = false;
    for (const LineageBinding& k : kept) {
      if (k.run_id == b.run_id && k.port == b.port &&
          k.index.length() < b.index.length() &&
          k.index.IsPrefixOf(b.index)) {
        covered = true;
        break;
      }
    }
    if (!covered) kept.push_back(b);
  }
  *bindings = std::move(kept);
}

}  // namespace provlin::lineage
