#include "lineage/query.h"

#include <algorithm>
#include <map>
#include <string_view>

#include "common/metrics.h"

namespace provlin::lineage {

void NormalizeBindings(std::vector<LineageBinding>* bindings) {
  std::sort(bindings->begin(), bindings->end());
  bindings->erase(std::unique(bindings->begin(), bindings->end()),
                  bindings->end());

  // Drop bindings covered by a strictly coarser binding on the same run
  // and port. After sorting, a coarser binding precedes its extensions,
  // but not necessarily adjacently, so test against all kept bindings of
  // the same (run, port) group.
  std::vector<LineageBinding> kept;
  kept.reserve(bindings->size());
  for (const LineageBinding& b : *bindings) {
    bool covered = false;
    for (const LineageBinding& k : kept) {
      if (k.run_id == b.run_id && k.port == b.port &&
          k.index.length() < b.index.length() &&
          k.index.IsPrefixOf(b.index)) {
        covered = true;
        break;
      }
    }
    if (!covered) kept.push_back(b);
  }
  *bindings = std::move(kept);
}

void PublishTiming(std::string_view engine, const LineageTiming& timing) {
  namespace metrics = common::metrics;
  static auto* queries = metrics::GetCounter("lineage/queries");
  static auto* probes = metrics::GetCounter("lineage/trace_probes");
  static auto* descents = metrics::GetCounter("lineage/trace_descents");
  static auto* steps = metrics::GetCounter("lineage/graph_steps");
  static auto* cache_hits = metrics::GetCounter("lineage/plan_cache_hits");
  static auto* t1 = metrics::GetHistogram("lineage/t1_ms");
  static auto* t2 = metrics::GetHistogram("lineage/t2_ms");
  queries->Increment();
  probes->Add(timing.trace_probes);
  descents->Add(timing.trace_descents);
  steps->Add(timing.graph_steps);
  if (timing.plan_cache_hit) cache_hits->Increment();
  t1->Observe(timing.t1_ms);
  t2->Observe(timing.t2_ms);
  // Per-engine query counts. The engine set is tiny and fixed per
  // process, so a thread-local cache keeps the registry's string build
  // and shared lock off the per-query path.
  thread_local std::map<std::string, metrics::Counter*, std::less<>>
      per_engine;
  auto it = per_engine.find(engine);
  if (it == per_engine.end()) {
    it = per_engine
             .emplace(std::string(engine),
                      metrics::GetCounter("lineage/queries_" +
                                          std::string(engine)))
             .first;
  }
  it->second->Increment();
}

}  // namespace provlin::lineage
