#ifndef PROVLIN_LINEAGE_INDEX_PROJ_LINEAGE_H_
#define PROVLIN_LINEAGE_INDEX_PROJ_LINEAGE_H_

#include <map>
#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include "common/interner.h"
#include "common/result.h"
#include "lineage/query.h"
#include "provenance/trace_store.h"
#include "workflow/depth_propagation.h"

namespace provlin::lineage {

/// One generated trace query Q(P, X_i, p_i) (§3.3) — or, for
/// workflow-input sources, a probe of the source rows. A source query
/// that was reached through a consuming port records it (via_*): at
/// execution time the consumer's trace rows give the granularity at
/// which the input was actually consumed, so coarse queries enumerate
/// exactly the element bindings the naive traversal discovers.
///
/// Queries are stored in id space: the planner interns every name it
/// touches while walking the spec graph, so executing a plan probes the
/// trace with integer keys and no per-run string resolution.
struct TraceQuery {
  common::SymbolId processor = common::kNoSymbol;
  common::SymbolId port = common::kNoSymbol;
  Index index;
  bool workflow_source = false;
  /// Consumer of the workflow input, if any (kNoSymbol otherwise).
  common::SymbolId via_processor = common::kNoSymbol;
  common::SymbolId via_port = common::kNoSymbol;

  std::string ToString(const provenance::TraceStore& store) const {
    return "Q(" + store.NameOf(processor) + ", " + store.NameOf(port) + ", " +
           index.ToString() + ")";
  }
};

/// The product of the s1 spec-graph traversal: the focused trace queries
/// plus traversal statistics. Plans depend only on (workflow, target,
/// index, 𝒫) — not on any run — so they are cached and shared across
/// queries and across runs (§3, §3.4).
struct LineagePlan {
  std::vector<TraceQuery> queries;
  uint64_t graph_steps = 0;
};

/// The paper's contribution: Alg. 2 INDEXPROJ. Lineage queries are
/// answered by traversing the *workflow specification graph*, applying
/// the index projection rule (Def. 4) at each processor, and touching the
/// trace only to retrieve the values of bindings at interesting
/// processors. Query cost is therefore (near-)constant in the provenance
/// path length and in the collection sizes — the scaling behaviour
/// evaluated in §4.
class IndexProjLineage {
 public:
  /// `dataflow` must be flattened + validated; `store` must outlive the
  /// engine. Depth propagation (Alg. 1) runs once here.
  static Result<IndexProjLineage> Create(
      std::shared_ptr<const workflow::Dataflow> dataflow,
      const provenance::TraceStore* store);

  /// s1 only: builds (or fetches from cache) the plan for a query.
  Result<const LineagePlan*> Plan(const workflow::PortRef& target,
                                  const Index& q, const InterestSet& interest);

  /// Full query over one run: s1 (cached) + s2.
  Result<LineageAnswer> Query(const std::string& run,
                              const workflow::PortRef& target, const Index& q,
                              const InterestSet& interest);

  /// Query across several runs: the s1 traversal is performed once and
  /// s2 executed per run with the run id as a parameter (§3.4).
  Result<LineageAnswer> QueryMultiRun(const std::vector<std::string>& runs,
                                      const workflow::PortRef& target,
                                      const Index& q,
                                      const InterestSet& interest);

  /// Wipes the plan cache (used by benches to measure cold planning).
  void ClearPlanCache() { plan_cache_.clear(); }
  size_t plan_cache_size() const { return plan_cache_.size(); }

  const workflow::DepthMap& depths() const { return depths_; }

 private:
  IndexProjLineage(std::shared_ptr<const workflow::Dataflow> dataflow,
                   workflow::DepthMap depths,
                   const provenance::TraceStore* store)
      : dataflow_(std::move(dataflow)),
        depths_(std::move(depths)),
        store_(store) {}

  Result<LineagePlan> BuildPlan(const workflow::PortRef& target,
                                const Index& q,
                                const InterestSet& interest) const;

  /// Executes a plan's trace queries against one run (step s2).
  Status ExecutePlan(const LineagePlan& plan, const std::string& run,
                     std::vector<LineageBinding>* bindings) const;

  /// Plan cache key: (target processor, target port, index id, resolved
  /// interest ids) — a packed integer tuple instead of a concatenated
  /// string, so cache probes never hash plan-sized strings.
  using PlanKey =
      std::tuple<common::SymbolId, common::SymbolId, common::IndexId,
                 std::vector<common::SymbolId>>;
  PlanKey MakePlanKey(const workflow::PortRef& target, const Index& q,
                      const InterestSet& interest) const;

  std::shared_ptr<const workflow::Dataflow> dataflow_;
  workflow::DepthMap depths_;
  const provenance::TraceStore* store_;
  std::map<PlanKey, LineagePlan> plan_cache_;
};

}  // namespace provlin::lineage

#endif  // PROVLIN_LINEAGE_INDEX_PROJ_LINEAGE_H_
