#ifndef PROVLIN_LINEAGE_INDEX_PROJ_LINEAGE_H_
#define PROVLIN_LINEAGE_INDEX_PROJ_LINEAGE_H_

#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <tuple>
#include <vector>

#include "common/annotations.h"
#include "common/interner.h"
#include "common/sync.h"
#include "common/result.h"
#include "lineage/engine.h"
#include "lineage/query.h"
#include "provenance/trace_store.h"
#include "workflow/depth_propagation.h"

namespace provlin::lineage {

/// One generated trace query Q(P, X_i, p_i) (§3.3) — or, for
/// workflow-input sources, a probe of the source rows. A source query
/// that was reached through a consuming port records it (via_*): at
/// execution time the consumer's trace rows give the granularity at
/// which the input was actually consumed, so coarse queries enumerate
/// exactly the element bindings the naive traversal discovers.
///
/// Queries are stored in id space: the planner interns every name it
/// touches while walking the spec graph, so executing a plan probes the
/// trace with integer keys and no per-run string resolution.
struct TraceQuery {
  common::SymbolId processor = common::kNoSymbol;
  common::SymbolId port = common::kNoSymbol;
  Index index;
  bool workflow_source = false;
  /// Consumer of the workflow input, if any (kNoSymbol otherwise).
  common::SymbolId via_processor = common::kNoSymbol;
  common::SymbolId via_port = common::kNoSymbol;

  std::string ToString(const provenance::TraceStore& store) const {
    return "Q(" + store.NameOf(processor) + ", " + store.NameOf(port) + ", " +
           index.ToString() + ")";
  }
};

/// Measured cost of one of a plan's trace queries, from an EXPLAIN run:
/// the query itself plus the probes, B+-tree descents, trace rows, and
/// answer bindings it accounted for, and its wall time. Costs aggregate
/// across the runs in the request's scope.
struct ExplainStep {
  TraceQuery query;
  uint64_t trace_probes = 0;
  uint64_t trace_descents = 0;
  uint64_t rows = 0;
  uint64_t bindings = 0;
  double ms = 0.0;
};

/// An EXPLAIN'd query: the plan (with provenance — cached or built, plan
/// time, graph steps) and the per-trace-query measured costs, plus the
/// ordinary answer so EXPLAIN never diverges from execution.
struct ExplainResult {
  bool plan_cache_hit = false;
  double plan_ms = 0.0;
  uint64_t graph_steps = 0;
  std::vector<ExplainStep> steps;
  LineageAnswer answer;

  /// Human-readable plan: one line per trace query with measured costs.
  std::string ToString(const provenance::TraceStore& store) const;

  /// The same plan and measured step costs as one JSON object — the
  /// slow-request log's EXPLAIN payload (DESIGN.md §14). Field-for-field
  /// what ToString() prints, so the CLI's `explain` and a logged slow
  /// request can be compared directly.
  std::string ToJson(const provenance::TraceStore& store) const;
};

/// The product of the s1 spec-graph traversal: the focused trace queries
/// plus traversal statistics. Plans depend only on (workflow, target,
/// index, 𝒫) — not on any run — so they are cached and shared across
/// queries, across runs, and across threads (§3, §3.4).
struct LineagePlan {
  std::vector<TraceQuery> queries;
  uint64_t graph_steps = 0;
};

/// The paper's contribution: Alg. 2 INDEXPROJ. Lineage queries are
/// answered by traversing the *workflow specification graph*, applying
/// the index projection rule (Def. 4) at each processor, and touching the
/// trace only to retrieve the values of bindings at interesting
/// processors. Query cost is therefore (near-)constant in the provenance
/// path length and in the collection sizes — the scaling behaviour
/// evaluated in §4.
///
/// The plan cache is a thread-safe shared cache: concurrent queries for
/// the same (target, index, 𝒫) key synchronize so the spec-graph
/// traversal runs exactly once and every other query reuses the plan —
/// the amortization the batch LineageService leans on.
class IndexProjLineage : public LineageEngine {
 public:
  /// `dataflow` must be flattened + validated; `store` must outlive the
  /// engine. Depth propagation (Alg. 1) runs once here. In the default
  /// kBatched mode the plan's |𝒫|-many trace queries execute as sorted
  /// probe batches (one producing batch + one consuming batch per run)
  /// instead of |𝒫| independent descents; answers and logical probe
  /// counts are identical to kSingleProbe.
  static Result<IndexProjLineage> Create(
      std::shared_ptr<const workflow::Dataflow> dataflow,
      const provenance::TraceStore* store,
      ProbeExecution mode = ProbeExecution::kBatched);

  std::string_view name() const override { return "indexproj"; }

  /// s1 only: builds (or fetches from the shared cache) the plan for a
  /// query. The returned plan is kept alive by the shared_ptr even if
  /// the cache is cleared concurrently. `cache_hit`, when non-null, is
  /// set to whether the plan came from the cache.
  Result<std::shared_ptr<const LineagePlan>> Plan(
      const workflow::PortRef& target, const Index& q,
      const InterestSet& interest, bool* cache_hit = nullptr) const;

  /// Full query: s1 once (cached, shared) + s2 per run in scope (§3.4).
  Result<LineageAnswer> Query(const LineageRequest& request) const override;

  /// EXPLAIN: answers `request` with the single-probe execution path,
  /// measuring each generated trace query separately (probes, descents,
  /// rows fetched, bindings contributed, wall time). Costs are the real
  /// measured costs of this execution — slower than Query() because
  /// per-step attribution forgoes batching.
  Result<ExplainResult> Explain(const LineageRequest& request) const;

  /// Wipes the plan cache (used by benches to measure cold planning).
  /// Safe under concurrent queries: in-flight plans stay alive through
  /// their shared_ptr.
  void ClearPlanCache();
  size_t plan_cache_size() const;

  /// Monotonic counters: how many plans were actually built (one per
  /// distinct key under contention) vs. served from the cache.
  uint64_t plans_built() const;
  uint64_t plan_cache_hits() const;

  const workflow::DepthMap& depths() const { return depths_; }

 private:
  /// One cache slot. `once` arbitrates concurrent builders of the same
  /// key: the winner runs the s1 traversal, everyone else blocks briefly
  /// and then reads the finished plan. `build_status` and `plan` are
  /// synchronized by the once_flag protocol, not a mutex: call_once
  /// publishes them with a happens-before edge to every later caller,
  /// and they are immutable afterwards — so they carry no GUARDED_BY.
  struct CacheEntry {
    std::once_flag once;
    Status build_status;
    LineagePlan plan;
  };

  /// Shared, internally synchronized plan cache. Lives behind a
  /// unique_ptr so the engine stays movable (single-threaded moves only;
  /// moving while queries are in flight is outside the contract).
  /// Lock order: the plan-cache mutex nests *inside* any service-level
  /// lock and *outside* the interner's (DESIGN.md §10); exactly-one
  /// build per key and safe concurrent Clear both hang off `entries`
  /// being reachable only under `mu` (the shared_ptr keeps evicted
  /// entries alive for in-flight readers).
  struct PlanCache {
    mutable common::SharedMutex mu{common::LockRank::kPlanCache};
    std::map<std::vector<uint64_t>, std::shared_ptr<CacheEntry>> entries
        GUARDED_BY(mu);
    std::atomic<uint64_t> builds{0};
    std::atomic<uint64_t> hits{0};

    /// Failed-build eviction (REQUIRES the write lock): removes `entry`
    /// under `key` iff it is still the mapped slot, so a concurrent
    /// Clear()+rebuild is never clobbered.
    void EraseEntryIfCurrent(const std::vector<uint64_t>& key,
                             const std::shared_ptr<CacheEntry>& entry)
        REQUIRES(mu);
  };

  IndexProjLineage(std::shared_ptr<const workflow::Dataflow> dataflow,
                   workflow::DepthMap depths,
                   const provenance::TraceStore* store, ProbeExecution mode)
      : dataflow_(std::move(dataflow)),
        depths_(std::move(depths)),
        store_(store),
        mode_(mode),
        cache_(std::make_unique<PlanCache>()) {}

  Result<LineagePlan> BuildPlan(const workflow::PortRef& target,
                                const Index& q,
                                const InterestSet& interest) const;

  /// Executes a plan's trace queries against one run (step s2),
  /// dispatching on mode_.
  Status ExecutePlan(const LineagePlan& plan, const std::string& run,
                     std::vector<LineageBinding>* bindings) const;

  /// Single-probe execution of one trace query against one resolved run:
  /// the shared body of the kSingleProbe path and Explain(). `rows`,
  /// when non-null, accumulates the trace rows the query fetched.
  Status ExecuteQuerySingle(const TraceQuery& q, common::SymbolId run_sym,
                            const std::string& run,
                            std::vector<LineageBinding>* bindings,
                            uint64_t* rows) const;

  /// kBatched s2: every probe the plan will issue is known up front, so
  /// the whole plan — across every run in scope — flattens into one
  /// producing batch plus one consuming batch before per-query assembly
  /// (which walks runs then queries, in the per-run loop's order). The
  /// run-qualified probes let a sharded store fan the batch out by
  /// owning shard.
  Status ExecutePlanBatched(const LineagePlan& plan,
                            const std::vector<std::string>& runs,
                            std::vector<LineageBinding>* bindings) const;

  /// Plan cache key: (target processor, target port, index id, resolved
  /// interest ids) — a packed integer vector instead of a concatenated
  /// string, so cache probes never hash plan-sized strings.
  std::vector<uint64_t> MakePlanKey(const workflow::PortRef& target,
                                    const Index& q,
                                    const InterestSet& interest) const;

  std::shared_ptr<const workflow::Dataflow> dataflow_;
  workflow::DepthMap depths_;
  const provenance::TraceStore* store_;
  ProbeExecution mode_;
  std::unique_ptr<PlanCache> cache_;
};

}  // namespace provlin::lineage

#endif  // PROVLIN_LINEAGE_INDEX_PROJ_LINEAGE_H_
