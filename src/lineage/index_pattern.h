#ifndef PROVLIN_LINEAGE_INDEX_PATTERN_H_
#define PROVLIN_LINEAGE_INDEX_PATTERN_H_

#include <optional>
#include <string>
#include <vector>

#include "values/index.h"

namespace provlin::lineage {

/// An index with wildcard components, used by forward (impact) lineage:
/// propagating an element index *with* the dataflow composes output
/// indices per Prop. 1, but fragments contributed by the *other* input
/// ports of a processor are unknown and become wildcards. For example,
/// pushing input element [2] through a binary cross product on the
/// second port yields the pattern [*, 2].
///
/// Matching is prefix-aware, mirroring the overlap semantics of
/// backward queries: an index matches when every known component agrees
/// on the shared prefix (so coarser trace bindings that cover the
/// pattern, and finer bindings below it, both match).
class IndexPattern {
 public:
  IndexPattern() = default;

  /// A pattern with no wildcards.
  explicit IndexPattern(const Index& exact) {
    for (size_t i = 0; i < exact.length(); ++i) {
      components_.push_back(exact[i]);
    }
  }

  static IndexPattern Any() { return IndexPattern(); }

  void AppendKnown(int32_t component) { components_.push_back(component); }
  void AppendWildcard() { components_.push_back(std::nullopt); }
  /// Appends all components of `idx`.
  void AppendIndex(const Index& idx) {
    for (size_t i = 0; i < idx.length(); ++i) components_.push_back(idx[i]);
  }
  /// Appends `n` wildcards.
  void AppendWildcards(size_t n) {
    for (size_t i = 0; i < n; ++i) AppendWildcard();
  }

  size_t length() const { return components_.size(); }
  bool empty() const { return components_.empty(); }
  const std::optional<int32_t>& at(size_t i) const { return components_[i]; }

  /// True when the pattern has no known component.
  bool AllWildcards() const {
    for (const auto& c : components_) {
      if (c.has_value()) return false;
    }
    return true;
  }

  /// Overlap test: true iff `idx` and the pattern agree on every
  /// position both define (either may be shorter than the other).
  bool Overlaps(const Index& idx) const {
    size_t n = std::min(length(), idx.length());
    for (size_t i = 0; i < n; ++i) {
      if (components_[i].has_value() && *components_[i] != idx[i]) {
        return false;
      }
    }
    return true;
  }

  /// The longest known prefix (components before the first wildcard) —
  /// usable as a B+tree probe prefix.
  Index KnownPrefix() const {
    std::vector<int32_t> parts;
    for (const auto& c : components_) {
      if (!c.has_value()) break;
      parts.push_back(*c);
    }
    return Index(std::move(parts));
  }

  /// "[*,2]" style rendering (1-based known components, paper style).
  std::string ToString() const {
    std::string out = "[";
    for (size_t i = 0; i < components_.size(); ++i) {
      if (i > 0) out += ",";
      out += components_[i].has_value()
                 ? std::to_string(*components_[i] + 1)
                 : std::string("*");
    }
    out += "]";
    return out;
  }

  /// Canonical encoding for plan dedup keys.
  std::string Encode() const {
    std::string out;
    for (const auto& c : components_) {
      out += c.has_value() ? std::to_string(*c) : std::string("*");
      out += '.';
    }
    return out;
  }

  bool operator==(const IndexPattern& o) const {
    return components_ == o.components_;
  }

 private:
  std::vector<std::optional<int32_t>> components_;
};

}  // namespace provlin::lineage

#endif  // PROVLIN_LINEAGE_INDEX_PATTERN_H_
