#include "lineage/index_proj_lineage.h"

#include <algorithm>
#include <set>
#include <utility>

#include "common/metrics.h"
#include "common/string_util.h"
#include "common/timer.h"
#include "common/tracing.h"
#include "lineage/binding_retrieval.h"
#include "lineage/index_projection.h"

namespace provlin::lineage {

using common::IndexId;
using common::kNoSymbol;
using common::SymbolId;
using provenance::XformRecord;
using workflow::Dataflow;
using workflow::kWorkflowProcessor;
using workflow::PortRef;
using workflow::Processor;

Result<IndexProjLineage> IndexProjLineage::Create(
    std::shared_ptr<const Dataflow> dataflow,
    const provenance::TraceStore* store, ProbeExecution mode) {
  PROVLIN_ASSIGN_OR_RETURN(workflow::DepthMap depths,
                           workflow::PropagateDepths(*dataflow));
  return IndexProjLineage(std::move(dataflow), std::move(depths), store, mode);
}

namespace {

/// Alg. 2 traversal state. The traversal itself walks the spec graph by
/// name (processor/port names come from the Dataflow), but every emitted
/// TraceQuery and every dedup key is interned immediately: the planner
/// pays the string→id cost once at plan time so that plan execution and
/// re-execution (multi-run, cached plans) are pure integer work.
class Planner {
 public:
  Planner(const Dataflow& flow, const workflow::DepthMap& depths,
          const InterestSet& interest, const provenance::TraceStore& store)
      : flow_(flow),
        depths_(depths),
        store_(store),
        // Interest names are interned up front (the planner interns
        // every spec name it walks anyway), so the per-visit interest
        // check is the id-space IsInteresting overload.
        interest_(InterestIds::Resolve(
            interest, [&store](const std::string& name) {
              return std::optional<SymbolId>(store.Intern(name));
            })) {}

  /// Y ∈ O_P case: apply the projection rule, emit trace queries at
  /// interesting processors, continue through the inputs. `via` names
  /// the consuming input port the traversal arrived through (null for a
  /// direct query on a workflow input).
  Status VisitOutput(const PortRef& port, const Index& q,
                     const PortRef* via = nullptr) {
    ++steps_;
    SymbolId via_proc = kNoSymbol;
    SymbolId via_port = kNoSymbol;
    if (via != nullptr) {
      via_proc = store_.Intern(via->processor);
      via_port = store_.Intern(via->port);
    }
    SymbolId proc_sym = store_.Intern(port.processor);
    auto key = std::make_tuple(proc_sym, store_.Intern(port.port),
                               store_.InternIndex(q), via_proc, via_port,
                               /*output=*/true);
    if (!visited_.insert(key).second) return Status::OK();
    if (port.processor == kWorkflowProcessor) {
      // Reached a top-level workflow input: a lineage source.
      if (IsInteresting(interest_, proc_sym)) {
        TraceQuery tq;
        tq.processor = proc_sym;
        tq.port = store_.Intern(port.port);
        tq.index = q;
        tq.workflow_source = true;
        tq.via_processor = via_proc;
        tq.via_port = via_port;
        AddQuery(std::move(tq));
      }
      return Status::OK();
    }
    const Processor* proc = flow_.FindProcessor(port.processor);
    if (proc == nullptr) {
      return Status::NotFound("no processor '" + port.processor +
                              "' in workflow '" + flow_.name() + "'");
    }
    const workflow::ProcessorDepths& pd = depths_.ForProcessor(proc->name);
    std::vector<Index> projected = ProjectOutputIndex(*proc, pd, q);
    bool interesting = IsInteresting(interest_, proc_sym);
    for (size_t i = 0; i < proc->inputs.size(); ++i) {
      if (interesting) {
        TraceQuery tq;
        tq.processor = proc_sym;
        tq.port = store_.Intern(proc->inputs[i].name);
        tq.index = projected[i];
        AddQuery(std::move(tq));
      }
      PROVLIN_RETURN_IF_ERROR(VisitInput(
          PortRef{proc->name, proc->inputs[i].name}, projected[i]));
    }
    return Status::OK();
  }

  /// Y ∉ O_P case: follow the arcs backwards with the index unchanged.
  Status VisitInput(const PortRef& port, const Index& p) {
    ++steps_;
    auto key = std::make_tuple(store_.Intern(port.processor),
                               store_.Intern(port.port),
                               store_.InternIndex(p), kNoSymbol, kNoSymbol,
                               /*output=*/false);
    if (!visited_.insert(key).second) return Status::OK();
    for (const workflow::Arc* arc : flow_.ArcsInto(port)) {
      PROVLIN_RETURN_IF_ERROR(VisitOutput(arc->src, p, &port));
    }
    return Status::OK();
  }

  LineagePlan TakePlan() {
    LineagePlan plan;
    plan.queries = std::move(queries_);
    plan.graph_steps = steps_;
    return plan;
  }

 private:
  void AddQuery(TraceQuery q) {
    auto key = std::make_tuple(q.processor, q.port, store_.InternIndex(q.index),
                               q.via_processor, q.via_port);
    if (query_keys_.insert(key).second) queries_.push_back(std::move(q));
  }

  using VisitKey =
      std::tuple<SymbolId, SymbolId, IndexId, SymbolId, SymbolId, bool>;
  using QueryKey = std::tuple<SymbolId, SymbolId, IndexId, SymbolId, SymbolId>;

  const Dataflow& flow_;
  const workflow::DepthMap& depths_;
  const provenance::TraceStore& store_;
  InterestIds interest_;
  std::set<VisitKey> visited_;
  std::set<QueryKey> query_keys_;
  std::vector<TraceQuery> queries_;
  uint64_t steps_ = 0;
};

}  // namespace

std::vector<uint64_t> IndexProjLineage::MakePlanKey(
    const PortRef& target, const Index& q, const InterestSet& interest) const {
  std::vector<uint64_t> key;
  key.reserve(3 + interest.size());
  key.push_back(store_->Intern(target.processor));
  key.push_back(store_->Intern(target.port));
  key.push_back(store_->InternIndex(q));
  std::vector<uint64_t> interest_syms;
  interest_syms.reserve(interest.size());
  for (const std::string& p : interest) {
    interest_syms.push_back(store_->Intern(p));
  }
  std::sort(interest_syms.begin(), interest_syms.end());
  key.insert(key.end(), interest_syms.begin(), interest_syms.end());
  return key;
}

Result<LineagePlan> IndexProjLineage::BuildPlan(
    const PortRef& target, const Index& q,
    const InterestSet& interest) const {
  Planner planner(*dataflow_, depths_, interest, *store_);
  if (target.processor == kWorkflowProcessor) {
    if (dataflow_->FindWorkflowOutput(target.port) != nullptr) {
      PROVLIN_RETURN_IF_ERROR(planner.VisitInput(target, q));
    } else if (dataflow_->FindWorkflowInput(target.port) != nullptr) {
      PROVLIN_RETURN_IF_ERROR(planner.VisitOutput(target, q));
    } else {
      return Status::NotFound("no workflow port '" + target.port + "'");
    }
  } else {
    const Processor* proc = dataflow_->FindProcessor(target.processor);
    if (proc == nullptr) {
      return Status::NotFound("no processor '" + target.processor + "'");
    }
    if (proc->FindOutput(target.port) != nullptr) {
      PROVLIN_RETURN_IF_ERROR(planner.VisitOutput(target, q));
    } else if (proc->FindInput(target.port) != nullptr) {
      PROVLIN_RETURN_IF_ERROR(planner.VisitInput(target, q));
    } else {
      return Status::NotFound("no port " + target.ToString());
    }
  }
  return planner.TakePlan();
}

Result<std::shared_ptr<const LineagePlan>> IndexProjLineage::Plan(
    const PortRef& target, const Index& q, const InterestSet& interest,
    bool* cache_hit) const {
  std::vector<uint64_t> key = MakePlanKey(target, q, interest);

  // Fast path: shared lock, entry already present.
  std::shared_ptr<CacheEntry> entry;
  {
    common::ReaderLock lock(cache_->mu);
    auto it = cache_->entries.find(key);
    if (it != cache_->entries.end()) entry = it->second;
  }
  if (entry == nullptr) {
    common::WriterLock lock(cache_->mu);
    auto [it, inserted] = cache_->entries.try_emplace(key);
    if (inserted) it->second = std::make_shared<CacheEntry>();
    entry = it->second;
  }

  // Exactly one thread per entry runs the s1 traversal; contenders block
  // here until the plan (or its failure) is recorded.
  bool built_here = false;
  std::call_once(entry->once, [&] {
    built_here = true;
    PROVLIN_TRACE_SPAN_VAR(span, "indexproj/plan_build");
    if (span.active()) span.SetArgs("target=" + target.ToString());
    cache_->builds.fetch_add(1, std::memory_order_relaxed);
    static auto* builds = common::metrics::GetCounter("lineage/plan_builds");
    builds->Increment();
    Result<LineagePlan> plan = BuildPlan(target, q, interest);
    if (plan.ok()) {
      entry->plan = std::move(plan).value();
    } else {
      entry->build_status = plan.status();
    }
  });
  if (cache_hit != nullptr) *cache_hit = !built_here;
  if (!built_here) cache_->hits.fetch_add(1, std::memory_order_relaxed);

  if (!entry->build_status.ok()) {
    // Evict failed builds so the error is not sticky (e.g. a target that
    // becomes valid after a different workflow is loaded elsewhere).
    Status st = entry->build_status;
    common::WriterLock lock(cache_->mu);
    cache_->EraseEntryIfCurrent(key, entry);
    return st;
  }
  return std::shared_ptr<const LineagePlan>(entry, &entry->plan);
}

void IndexProjLineage::PlanCache::EraseEntryIfCurrent(
    const std::vector<uint64_t>& key,
    const std::shared_ptr<CacheEntry>& entry) {
  auto it = entries.find(key);
  if (it != entries.end() && it->second == entry) entries.erase(it);
}

void IndexProjLineage::ClearPlanCache() {
  common::WriterLock lock(cache_->mu);
  cache_->entries.clear();
}

size_t IndexProjLineage::plan_cache_size() const {
  common::ReaderLock lock(cache_->mu);
  return cache_->entries.size();
}

uint64_t IndexProjLineage::plans_built() const {
  return cache_->builds.load(std::memory_order_relaxed);
}

uint64_t IndexProjLineage::plan_cache_hits() const {
  return cache_->hits.load(std::memory_order_relaxed);
}

namespace {

/// Shared per-query assembly of the plain (non-source) case: dedup
/// identical in-bindings repeated across dependency rows (one row exists
/// per (in, out) pair of an event) and append the survivors.
Status AppendConsumedBindings(const provenance::TraceStore& store,
                              const std::string& run,
                              const std::vector<XformRecord>& rows,
                              std::vector<LineageBinding>* bindings) {
  std::set<std::tuple<SymbolId, IndexId, int64_t>> seen;
  for (const XformRecord& row : rows) {
    if (!row.has_in) continue;
    auto key = std::make_tuple(row.in_port, store.InternIndex(row.in_index),
                               row.in_value);
    if (!seen.insert(key).second) continue;
    PROVLIN_RETURN_IF_ERROR(AppendInputBinding(store, run, row, bindings));
  }
  return Status::OK();
}

/// Shared assembly of the workflow-source case reached through a
/// consumer: the consumer's trace rows tell at which granularity the
/// input elements were actually consumed — the same indices the naive
/// traversal arrives with — and the source rows are re-filtered per
/// arrival index.
Status AppendSourceViaConsumer(const provenance::TraceStore& store,
                               const std::string& run,
                               const std::vector<XformRecord>& src_rows,
                               const std::vector<XformRecord>& consumed,
                               std::vector<LineageBinding>* bindings) {
  std::set<IndexId> arrival_keys;
  std::vector<Index> arrivals;
  for (const XformRecord& row : consumed) {
    if (!row.has_in) continue;
    if (arrival_keys.insert(store.InternIndex(row.in_index)).second) {
      arrivals.push_back(row.in_index);
    }
  }
  for (const Index& r : arrivals) {
    PROVLIN_RETURN_IF_ERROR(
        AppendSourceBindings(store, run, src_rows, r, bindings));
  }
  return Status::OK();
}

}  // namespace

Status IndexProjLineage::ExecutePlanBatched(
    const LineagePlan& plan, const std::vector<std::string>& runs,
    std::vector<LineageBinding>* bindings) const {
  PROVLIN_TRACE_SPAN_VAR(span, "indexproj/s2_run");
  if (span.active()) {
    span.SetArgs("runs=" + std::to_string(runs.size()) +
                 " queries=" + std::to_string(plan.queries.size()));
  }
  // Every probe the plan issues is determined by the plan alone, so the
  // whole of s2 — across *all* runs in scope — flattens into one
  // producing batch (source queries) and one consuming batch
  // (via-consumer probes + plain queries) before any result is
  // consumed. Probes carry their run, so a sharded store groups the
  // batch by owning shard and fans the sub-batches out concurrently.
  constexpr size_t kNone = static_cast<size_t>(-1);
  struct RunSlots {
    const std::string* run = nullptr;
    SymbolId run_sym = kNoSymbol;
    std::vector<size_t> producing_slot;
    std::vector<size_t> consuming_slot;
  };
  std::vector<RunSlots> per_run;
  std::vector<provenance::PortProbe> producing;
  std::vector<provenance::PortProbe> consuming;
  for (const std::string& run : runs) {
    // A run the trace never recorded has no rows for any query.
    auto run_sym = store_->LookupSymbol(run);
    if (!run_sym.has_value()) continue;
    RunSlots slots;
    slots.run = &run;
    slots.run_sym = *run_sym;
    slots.producing_slot.assign(plan.queries.size(), kNone);
    slots.consuming_slot.assign(plan.queries.size(), kNone);
    for (size_t i = 0; i < plan.queries.size(); ++i) {
      const TraceQuery& q = plan.queries[i];
      if (q.workflow_source) {
        slots.producing_slot[i] = producing.size();
        producing.push_back({*run_sym, q.processor, q.port, q.index});
        if (q.via_processor != kNoSymbol) {
          slots.consuming_slot[i] = consuming.size();
          consuming.push_back({*run_sym, q.via_processor, q.via_port, q.index});
        }
      } else {
        slots.consuming_slot[i] = consuming.size();
        consuming.push_back({*run_sym, q.processor, q.port, q.index});
      }
    }
    per_run.push_back(std::move(slots));
  }

  std::vector<std::vector<XformRecord>> produced;
  if (!producing.empty()) {
    PROVLIN_ASSIGN_OR_RETURN(produced, store_->FindProducingBatch(producing));
  }
  std::vector<std::vector<XformRecord>> consumed;
  if (!consuming.empty()) {
    PROVLIN_ASSIGN_OR_RETURN(consumed, store_->FindConsumingBatch(consuming));
  }

  // Assembly walks runs then queries in plan order, exactly like the
  // per-run single-probe loop — only the probe physics changed above.
  for (const RunSlots& slots : per_run) {
    const std::string& run = *slots.run;
    for (size_t i = 0; i < plan.queries.size(); ++i) {
      const TraceQuery& q = plan.queries[i];
      if (q.workflow_source) {
        const std::vector<XformRecord>& src_rows =
            produced[slots.producing_slot[i]];
        if (q.via_processor == kNoSymbol) {
          PROVLIN_RETURN_IF_ERROR(
              AppendSourceBindings(*store_, run, src_rows, q.index, bindings));
          continue;
        }
        PROVLIN_RETURN_IF_ERROR(AppendSourceViaConsumer(
            *store_, run, src_rows, consumed[slots.consuming_slot[i]],
            bindings));
        continue;
      }
      PROVLIN_RETURN_IF_ERROR(AppendConsumedBindings(
          *store_, run, consumed[slots.consuming_slot[i]], bindings));
    }
  }
  return Status::OK();
}

Status IndexProjLineage::ExecuteQuerySingle(
    const TraceQuery& q, SymbolId run_sym, const std::string& run,
    std::vector<LineageBinding>* bindings, uint64_t* rows) const {
  if (q.workflow_source) {
    PROVLIN_ASSIGN_OR_RETURN(
        std::vector<XformRecord> src_rows,
        store_->FindProducing(run_sym, q.processor, q.port, q.index));
    if (rows != nullptr) *rows += src_rows.size();
    if (q.via_processor == kNoSymbol) {
      // Direct query on the workflow input port itself.
      return AppendSourceBindings(*store_, run, src_rows, q.index, bindings);
    }
    PROVLIN_ASSIGN_OR_RETURN(
        std::vector<XformRecord> consumed,
        store_->FindConsuming(run_sym, q.via_processor, q.via_port, q.index));
    if (rows != nullptr) *rows += consumed.size();
    return AppendSourceViaConsumer(*store_, run, src_rows, consumed, bindings);
  }
  PROVLIN_ASSIGN_OR_RETURN(
      std::vector<XformRecord> xform_rows,
      store_->FindConsuming(run_sym, q.processor, q.port, q.index));
  if (rows != nullptr) *rows += xform_rows.size();
  return AppendConsumedBindings(*store_, run, xform_rows, bindings);
}

Status IndexProjLineage::ExecutePlan(
    const LineagePlan& plan, const std::string& run,
    std::vector<LineageBinding>* bindings) const {
  if (mode_ == ProbeExecution::kBatched) {
    return ExecutePlanBatched(plan, {run}, bindings);
  }
  // A run the trace never recorded has no rows for any query in the
  // plan; resolving it once up front skips |queries| futile probes.
  auto run_sym = store_->LookupSymbol(run);
  if (!run_sym.has_value()) return Status::OK();
  for (const TraceQuery& q : plan.queries) {
    PROVLIN_RETURN_IF_ERROR(
        ExecuteQuerySingle(q, *run_sym, run, bindings, nullptr));
  }
  return Status::OK();
}

Result<LineageAnswer> IndexProjLineage::Query(
    const LineageRequest& request) const {
  PROVLIN_TRACE_SPAN("indexproj/query");
  LineageAnswer answer;

  // s1: one spec-graph traversal, shared by every run in scope — and,
  // through the shared cache, by every concurrent query on the same key.
  WallTimer t1;
  bool cache_hit = false;
  PROVLIN_ASSIGN_OR_RETURN(
      std::shared_ptr<const LineagePlan> plan,
      Plan(request.target, request.index, request.interest, &cache_hit));
  answer.timing.plan_cache_hit = cache_hit;
  answer.timing.t1_ms = t1.ElapsedMillis();
  answer.timing.graph_steps = plan->graph_steps;

  // s2: execute the generated trace queries per run. Probe counts come
  // from this thread's counters so concurrent queries don't pollute each
  // other's cost attribution.
  storage::ThreadStats before = storage::ThisThreadStats();
  WallTimer t2;
  if (mode_ == ProbeExecution::kBatched) {
    // All runs in one batched execution: one producing + one consuming
    // batch for the whole scope, fanned out across shards by the store.
    PROVLIN_RETURN_IF_ERROR(
        ExecutePlanBatched(*plan, request.runs, &answer.bindings));
  } else {
    for (const std::string& run : request.runs) {
      PROVLIN_RETURN_IF_ERROR(ExecutePlan(*plan, run, &answer.bindings));
    }
  }
  answer.timing.t2_ms = t2.ElapsedMillis();
  answer.timing.trace_probes =
      storage::ThisThreadStats().probes() - before.probes();
  answer.timing.trace_descents =
      storage::ThisThreadStats().descents - before.descents;

  NormalizeBindings(&answer.bindings);
  PublishTiming(name(), answer.timing);
  return answer;
}

Result<ExplainResult> IndexProjLineage::Explain(
    const LineageRequest& request) const {
  PROVLIN_TRACE_SPAN("indexproj/explain");
  ExplainResult out;

  WallTimer t1;
  bool cache_hit = false;
  PROVLIN_ASSIGN_OR_RETURN(
      std::shared_ptr<const LineagePlan> plan,
      Plan(request.target, request.index, request.interest, &cache_hit));
  out.plan_cache_hit = cache_hit;
  out.plan_ms = t1.ElapsedMillis();
  out.graph_steps = plan->graph_steps;

  out.steps.resize(plan->queries.size());
  for (size_t i = 0; i < plan->queries.size(); ++i) {
    out.steps[i].query = plan->queries[i];
  }
  // Single-probe execution, one measured step per trace query; costs
  // accumulate across the runs in scope so the plan keeps one row per
  // generated query no matter how many runs it was applied to.
  for (const std::string& run : request.runs) {
    auto run_sym = store_->LookupSymbol(run);
    if (!run_sym.has_value()) continue;
    for (size_t i = 0; i < plan->queries.size(); ++i) {
      ExplainStep& step = out.steps[i];
      storage::ThreadStats before = storage::ThisThreadStats();
      size_t bindings_before = out.answer.bindings.size();
      WallTimer t;
      PROVLIN_RETURN_IF_ERROR(ExecuteQuerySingle(
          plan->queries[i], *run_sym, run, &out.answer.bindings, &step.rows));
      step.ms += t.ElapsedMillis();
      step.trace_probes +=
          storage::ThisThreadStats().probes() - before.probes();
      step.trace_descents +=
          storage::ThisThreadStats().descents - before.descents;
      step.bindings += out.answer.bindings.size() - bindings_before;
    }
  }

  out.answer.timing.plan_cache_hit = cache_hit;
  out.answer.timing.t1_ms = out.plan_ms;
  out.answer.timing.graph_steps = out.graph_steps;
  for (const ExplainStep& step : out.steps) {
    out.answer.timing.t2_ms += step.ms;
    out.answer.timing.trace_probes += step.trace_probes;
    out.answer.timing.trace_descents += step.trace_descents;
  }
  NormalizeBindings(&out.answer.bindings);
  PublishTiming(name(), out.answer.timing);
  return out;
}

std::string ExplainResult::ToString(
    const provenance::TraceStore& store) const {
  char buf[160];
  std::string out = "IndexProj plan: " + std::to_string(steps.size()) +
                    " trace queries, " + std::to_string(graph_steps) +
                    " graph steps, s1 ";
  std::snprintf(buf, sizeof(buf), "%.3f ms (%s)\n", plan_ms,
                plan_cache_hit ? "plan cache hit" : "plan built");
  out += buf;
  for (size_t i = 0; i < steps.size(); ++i) {
    const ExplainStep& s = steps[i];
    std::string kind =
        s.query.workflow_source
            ? (s.query.via_processor != common::kNoSymbol ? "source-via"
                                                          : "source")
            : "consume";
    std::snprintf(buf, sizeof(buf),
                  "  step %2zu  %-10s %-40s probes=%llu descents=%llu "
                  "rows=%llu bindings=%llu %.3f ms\n",
                  i, kind.c_str(), s.query.ToString(store).c_str(),
                  static_cast<unsigned long long>(s.trace_probes),
                  static_cast<unsigned long long>(s.trace_descents),
                  static_cast<unsigned long long>(s.rows),
                  static_cast<unsigned long long>(s.bindings), s.ms);
    out += buf;
  }
  return out;
}

namespace {

std::string JsonQuote(const std::string& s) {
  std::string out = "\"";
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += "\"";
  return out;
}

}  // namespace

std::string ExplainResult::ToJson(const provenance::TraceStore& store) const {
  std::string out = "{";
  out += "\"plan_cache_hit\":" + std::string(plan_cache_hit ? "true" : "false");
  out += ",\"plan_ms\":" + std::to_string(plan_ms);
  out += ",\"graph_steps\":" + std::to_string(graph_steps);
  out += ",\"steps\":[";
  for (size_t i = 0; i < steps.size(); ++i) {
    const ExplainStep& s = steps[i];
    const char* kind =
        s.query.workflow_source
            ? (s.query.via_processor != common::kNoSymbol ? "source-via"
                                                          : "source")
            : "consume";
    if (i > 0) out += ",";
    out += "{\"kind\":\"" + std::string(kind) + "\"";
    out += ",\"query\":" + JsonQuote(s.query.ToString(store));
    out += ",\"trace_probes\":" + std::to_string(s.trace_probes);
    out += ",\"trace_descents\":" + std::to_string(s.trace_descents);
    out += ",\"rows\":" + std::to_string(s.rows);
    out += ",\"bindings\":" + std::to_string(s.bindings);
    out += ",\"ms\":" + std::to_string(s.ms);
    out += "}";
  }
  out += "]}";
  return out;
}

}  // namespace provlin::lineage
