#include "lineage/index_proj_lineage.h"

#include <set>

#include "common/string_util.h"
#include "common/timer.h"
#include "lineage/binding_retrieval.h"
#include "lineage/index_projection.h"

namespace provlin::lineage {

using provenance::XformRecord;
using workflow::Dataflow;
using workflow::kWorkflowProcessor;
using workflow::PortRef;
using workflow::Processor;

Result<IndexProjLineage> IndexProjLineage::Create(
    std::shared_ptr<const Dataflow> dataflow,
    const provenance::TraceStore* store) {
  PROVLIN_ASSIGN_OR_RETURN(workflow::DepthMap depths,
                           workflow::PropagateDepths(*dataflow));
  return IndexProjLineage(std::move(dataflow), std::move(depths), store);
}

namespace {

std::string PlanKey(const PortRef& target, const Index& q,
                    const InterestSet& interest) {
  std::string key = target.ToString() + "\x1f" + q.Encode() + "\x1f";
  for (const std::string& p : interest) {
    key += p;
    key += ',';
  }
  return key;
}

/// Alg. 2 traversal state.
class Planner {
 public:
  Planner(const Dataflow& flow, const workflow::DepthMap& depths,
          const InterestSet& interest)
      : flow_(flow), depths_(depths), interest_(interest) {}

  /// Y ∈ O_P case: apply the projection rule, emit trace queries at
  /// interesting processors, continue through the inputs. `via` names
  /// the consuming input port the traversal arrived through (empty for a
  /// direct query on a workflow input).
  Status VisitOutput(const PortRef& port, const Index& q,
                     const PortRef* via = nullptr) {
    ++steps_;
    std::string via_key =
        via == nullptr ? std::string() : via->ToString();
    if (!visited_
             .insert(port.ToString() + "\x1f" + q.Encode() + "\x1fo\x1f" +
                     via_key)
             .second) {
      return Status::OK();
    }
    if (port.processor == kWorkflowProcessor) {
      // Reached a top-level workflow input: a lineage source.
      if (IsInteresting(interest_, kWorkflowProcessor)) {
        TraceQuery tq;
        tq.processor = kWorkflowProcessor;
        tq.port = port.port;
        tq.index = q;
        tq.workflow_source = true;
        if (via != nullptr) {
          tq.via_processor = via->processor;
          tq.via_port = via->port;
        }
        AddQuery(std::move(tq));
      }
      return Status::OK();
    }
    const Processor* proc = flow_.FindProcessor(port.processor);
    if (proc == nullptr) {
      return Status::NotFound("no processor '" + port.processor +
                              "' in workflow '" + flow_.name() + "'");
    }
    const workflow::ProcessorDepths& pd = depths_.ForProcessor(proc->name);
    std::vector<Index> projected = ProjectOutputIndex(*proc, pd, q);
    bool interesting = IsInteresting(interest_, proc->name);
    for (size_t i = 0; i < proc->inputs.size(); ++i) {
      if (interesting) {
        TraceQuery tq;
        tq.processor = proc->name;
        tq.port = proc->inputs[i].name;
        tq.index = projected[i];
        AddQuery(std::move(tq));
      }
      PROVLIN_RETURN_IF_ERROR(VisitInput(
          PortRef{proc->name, proc->inputs[i].name}, projected[i]));
    }
    return Status::OK();
  }

  /// Y ∉ O_P case: follow the arcs backwards with the index unchanged.
  Status VisitInput(const PortRef& port, const Index& p) {
    ++steps_;
    if (!visited_.insert(port.ToString() + "\x1f" + p.Encode() + "\x1fi")
             .second) {
      return Status::OK();
    }
    for (const workflow::Arc* arc : flow_.ArcsInto(port)) {
      PROVLIN_RETURN_IF_ERROR(VisitOutput(arc->src, p, &port));
    }
    return Status::OK();
  }

  LineagePlan TakePlan() {
    LineagePlan plan;
    plan.queries = std::move(queries_);
    plan.graph_steps = steps_;
    return plan;
  }

 private:
  void AddQuery(TraceQuery q) {
    std::string key = q.processor + "\x1f" + q.port + "\x1f" +
                      q.index.Encode() + "\x1f" + q.via_processor + "\x1f" +
                      q.via_port;
    if (query_keys_.insert(key).second) queries_.push_back(std::move(q));
  }

  const Dataflow& flow_;
  const workflow::DepthMap& depths_;
  const InterestSet& interest_;
  std::set<std::string> visited_;
  std::set<std::string> query_keys_;
  std::vector<TraceQuery> queries_;
  uint64_t steps_ = 0;
};

}  // namespace

Result<LineagePlan> IndexProjLineage::BuildPlan(
    const PortRef& target, const Index& q,
    const InterestSet& interest) const {
  Planner planner(*dataflow_, depths_, interest);
  if (target.processor == kWorkflowProcessor) {
    if (dataflow_->FindWorkflowOutput(target.port) != nullptr) {
      PROVLIN_RETURN_IF_ERROR(planner.VisitInput(target, q));
    } else if (dataflow_->FindWorkflowInput(target.port) != nullptr) {
      PROVLIN_RETURN_IF_ERROR(planner.VisitOutput(target, q));
    } else {
      return Status::NotFound("no workflow port '" + target.port + "'");
    }
  } else {
    const Processor* proc = dataflow_->FindProcessor(target.processor);
    if (proc == nullptr) {
      return Status::NotFound("no processor '" + target.processor + "'");
    }
    if (proc->FindOutput(target.port) != nullptr) {
      PROVLIN_RETURN_IF_ERROR(planner.VisitOutput(target, q));
    } else if (proc->FindInput(target.port) != nullptr) {
      PROVLIN_RETURN_IF_ERROR(planner.VisitInput(target, q));
    } else {
      return Status::NotFound("no port " + target.ToString());
    }
  }
  return planner.TakePlan();
}

Result<const LineagePlan*> IndexProjLineage::Plan(const PortRef& target,
                                                  const Index& q,
                                                  const InterestSet& interest) {
  std::string key = PlanKey(target, q, interest);
  auto it = plan_cache_.find(key);
  if (it != plan_cache_.end()) return &it->second;
  PROVLIN_ASSIGN_OR_RETURN(LineagePlan plan, BuildPlan(target, q, interest));
  auto [pos, _] = plan_cache_.emplace(key, std::move(plan));
  return &pos->second;
}

Status IndexProjLineage::ExecutePlan(
    const LineagePlan& plan, const std::string& run,
    std::vector<LineageBinding>* bindings) const {
  for (const TraceQuery& q : plan.queries) {
    if (q.workflow_source) {
      PROVLIN_ASSIGN_OR_RETURN(
          std::vector<XformRecord> src_rows,
          store_->FindProducing(run, kWorkflowProcessor, q.port, q.index));
      if (q.via_processor.empty()) {
        // Direct query on the workflow input port itself.
        PROVLIN_RETURN_IF_ERROR(
            AppendSourceBindings(*store_, run, src_rows, q.index, bindings));
        continue;
      }
      // The input reached the query target through (via_processor,
      // via_port); the consumer's trace rows tell at which granularity
      // the input elements were actually consumed — the same indices the
      // naive traversal arrives with.
      PROVLIN_ASSIGN_OR_RETURN(
          std::vector<XformRecord> consumed,
          store_->FindConsuming(run, q.via_processor, q.via_port, q.index));
      std::set<std::string> arrival_keys;
      std::vector<Index> arrivals;
      for (const XformRecord& row : consumed) {
        if (!row.has_in) continue;
        if (arrival_keys.insert(row.in_index.Encode()).second) {
          arrivals.push_back(row.in_index);
        }
      }
      for (const Index& r : arrivals) {
        PROVLIN_RETURN_IF_ERROR(
            AppendSourceBindings(*store_, run, src_rows, r, bindings));
      }
      continue;
    }
    PROVLIN_ASSIGN_OR_RETURN(
        std::vector<XformRecord> rows,
        store_->FindConsuming(run, q.processor, q.port, q.index));
    // Dedup identical in-bindings repeated across dependency rows (one
    // row exists per (in, out) pair of an event).
    std::set<std::string> seen;
    for (const XformRecord& row : rows) {
      if (!row.has_in) continue;
      std::string key = row.in_port + "\x1f" + row.in_index.Encode() + "\x1f" +
                        std::to_string(row.in_value);
      if (!seen.insert(key).second) continue;
      PROVLIN_RETURN_IF_ERROR(AppendInputBinding(*store_, run, row, bindings));
    }
  }
  return Status::OK();
}

Result<LineageAnswer> IndexProjLineage::Query(const std::string& run,
                                              const PortRef& target,
                                              const Index& q,
                                              const InterestSet& interest) {
  return QueryMultiRun({run}, target, q, interest);
}

Result<LineageAnswer> IndexProjLineage::QueryMultiRun(
    const std::vector<std::string>& runs, const PortRef& target,
    const Index& q, const InterestSet& interest) {
  LineageAnswer answer;

  // s1: one spec-graph traversal, shared by every run in scope.
  std::string key = PlanKey(target, q, interest);
  answer.timing.plan_cache_hit = plan_cache_.count(key) > 0;
  WallTimer t1;
  PROVLIN_ASSIGN_OR_RETURN(const LineagePlan* plan,
                           Plan(target, q, interest));
  answer.timing.t1_ms = t1.ElapsedMillis();
  answer.timing.graph_steps = plan->graph_steps;

  // s2: execute the generated trace queries per run.
  storage::TableStats before = store_->db()->AggregateStats();
  WallTimer t2;
  for (const std::string& run : runs) {
    PROVLIN_RETURN_IF_ERROR(ExecutePlan(*plan, run, &answer.bindings));
  }
  answer.timing.t2_ms = t2.ElapsedMillis();
  storage::TableStats after = store_->db()->AggregateStats();
  answer.timing.trace_probes =
      (after.index_probes - before.index_probes) +
      (after.full_scans - before.full_scans);

  NormalizeBindings(&answer.bindings);
  return answer;
}

}  // namespace provlin::lineage
