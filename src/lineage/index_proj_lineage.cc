#include "lineage/index_proj_lineage.h"

#include <algorithm>
#include <set>

#include "common/string_util.h"
#include "common/timer.h"
#include "lineage/binding_retrieval.h"
#include "lineage/index_projection.h"

namespace provlin::lineage {

using common::IndexId;
using common::kNoSymbol;
using common::SymbolId;
using provenance::XformRecord;
using workflow::Dataflow;
using workflow::kWorkflowProcessor;
using workflow::PortRef;
using workflow::Processor;

Result<IndexProjLineage> IndexProjLineage::Create(
    std::shared_ptr<const Dataflow> dataflow,
    const provenance::TraceStore* store) {
  PROVLIN_ASSIGN_OR_RETURN(workflow::DepthMap depths,
                           workflow::PropagateDepths(*dataflow));
  return IndexProjLineage(std::move(dataflow), std::move(depths), store);
}

namespace {

/// Alg. 2 traversal state. The traversal itself walks the spec graph by
/// name (processor/port names come from the Dataflow), but every emitted
/// TraceQuery and every dedup key is interned immediately: the planner
/// pays the string→id cost once at plan time so that plan execution and
/// re-execution (multi-run, cached plans) are pure integer work.
class Planner {
 public:
  Planner(const Dataflow& flow, const workflow::DepthMap& depths,
          const InterestSet& interest, const provenance::TraceStore& store)
      : flow_(flow), depths_(depths), interest_(interest), store_(store) {}

  /// Y ∈ O_P case: apply the projection rule, emit trace queries at
  /// interesting processors, continue through the inputs. `via` names
  /// the consuming input port the traversal arrived through (null for a
  /// direct query on a workflow input).
  Status VisitOutput(const PortRef& port, const Index& q,
                     const PortRef* via = nullptr) {
    ++steps_;
    SymbolId via_proc = kNoSymbol;
    SymbolId via_port = kNoSymbol;
    if (via != nullptr) {
      via_proc = store_.Intern(via->processor);
      via_port = store_.Intern(via->port);
    }
    auto key = std::make_tuple(store_.Intern(port.processor),
                               store_.Intern(port.port),
                               store_.InternIndex(q), via_proc, via_port,
                               /*output=*/true);
    if (!visited_.insert(key).second) return Status::OK();
    if (port.processor == kWorkflowProcessor) {
      // Reached a top-level workflow input: a lineage source.
      if (IsInteresting(interest_, kWorkflowProcessor)) {
        TraceQuery tq;
        tq.processor = store_.Intern(kWorkflowProcessor);
        tq.port = store_.Intern(port.port);
        tq.index = q;
        tq.workflow_source = true;
        tq.via_processor = via_proc;
        tq.via_port = via_port;
        AddQuery(std::move(tq));
      }
      return Status::OK();
    }
    const Processor* proc = flow_.FindProcessor(port.processor);
    if (proc == nullptr) {
      return Status::NotFound("no processor '" + port.processor +
                              "' in workflow '" + flow_.name() + "'");
    }
    const workflow::ProcessorDepths& pd = depths_.ForProcessor(proc->name);
    std::vector<Index> projected = ProjectOutputIndex(*proc, pd, q);
    bool interesting = IsInteresting(interest_, proc->name);
    for (size_t i = 0; i < proc->inputs.size(); ++i) {
      if (interesting) {
        TraceQuery tq;
        tq.processor = store_.Intern(proc->name);
        tq.port = store_.Intern(proc->inputs[i].name);
        tq.index = projected[i];
        AddQuery(std::move(tq));
      }
      PROVLIN_RETURN_IF_ERROR(VisitInput(
          PortRef{proc->name, proc->inputs[i].name}, projected[i]));
    }
    return Status::OK();
  }

  /// Y ∉ O_P case: follow the arcs backwards with the index unchanged.
  Status VisitInput(const PortRef& port, const Index& p) {
    ++steps_;
    auto key = std::make_tuple(store_.Intern(port.processor),
                               store_.Intern(port.port),
                               store_.InternIndex(p), kNoSymbol, kNoSymbol,
                               /*output=*/false);
    if (!visited_.insert(key).second) return Status::OK();
    for (const workflow::Arc* arc : flow_.ArcsInto(port)) {
      PROVLIN_RETURN_IF_ERROR(VisitOutput(arc->src, p, &port));
    }
    return Status::OK();
  }

  LineagePlan TakePlan() {
    LineagePlan plan;
    plan.queries = std::move(queries_);
    plan.graph_steps = steps_;
    return plan;
  }

 private:
  void AddQuery(TraceQuery q) {
    auto key = std::make_tuple(q.processor, q.port, store_.InternIndex(q.index),
                               q.via_processor, q.via_port);
    if (query_keys_.insert(key).second) queries_.push_back(std::move(q));
  }

  using VisitKey =
      std::tuple<SymbolId, SymbolId, IndexId, SymbolId, SymbolId, bool>;
  using QueryKey = std::tuple<SymbolId, SymbolId, IndexId, SymbolId, SymbolId>;

  const Dataflow& flow_;
  const workflow::DepthMap& depths_;
  const InterestSet& interest_;
  const provenance::TraceStore& store_;
  std::set<VisitKey> visited_;
  std::set<QueryKey> query_keys_;
  std::vector<TraceQuery> queries_;
  uint64_t steps_ = 0;
};

}  // namespace

IndexProjLineage::PlanKey IndexProjLineage::MakePlanKey(
    const PortRef& target, const Index& q, const InterestSet& interest) const {
  std::vector<SymbolId> interest_syms;
  interest_syms.reserve(interest.size());
  for (const std::string& p : interest) {
    interest_syms.push_back(store_->Intern(p));
  }
  std::sort(interest_syms.begin(), interest_syms.end());
  return PlanKey(store_->Intern(target.processor), store_->Intern(target.port),
                 store_->InternIndex(q), std::move(interest_syms));
}

Result<LineagePlan> IndexProjLineage::BuildPlan(
    const PortRef& target, const Index& q,
    const InterestSet& interest) const {
  Planner planner(*dataflow_, depths_, interest, *store_);
  if (target.processor == kWorkflowProcessor) {
    if (dataflow_->FindWorkflowOutput(target.port) != nullptr) {
      PROVLIN_RETURN_IF_ERROR(planner.VisitInput(target, q));
    } else if (dataflow_->FindWorkflowInput(target.port) != nullptr) {
      PROVLIN_RETURN_IF_ERROR(planner.VisitOutput(target, q));
    } else {
      return Status::NotFound("no workflow port '" + target.port + "'");
    }
  } else {
    const Processor* proc = dataflow_->FindProcessor(target.processor);
    if (proc == nullptr) {
      return Status::NotFound("no processor '" + target.processor + "'");
    }
    if (proc->FindOutput(target.port) != nullptr) {
      PROVLIN_RETURN_IF_ERROR(planner.VisitOutput(target, q));
    } else if (proc->FindInput(target.port) != nullptr) {
      PROVLIN_RETURN_IF_ERROR(planner.VisitInput(target, q));
    } else {
      return Status::NotFound("no port " + target.ToString());
    }
  }
  return planner.TakePlan();
}

Result<const LineagePlan*> IndexProjLineage::Plan(const PortRef& target,
                                                  const Index& q,
                                                  const InterestSet& interest) {
  PlanKey key = MakePlanKey(target, q, interest);
  auto it = plan_cache_.find(key);
  if (it != plan_cache_.end()) return &it->second;
  PROVLIN_ASSIGN_OR_RETURN(LineagePlan plan, BuildPlan(target, q, interest));
  auto [pos, _] = plan_cache_.emplace(std::move(key), std::move(plan));
  return &pos->second;
}

Status IndexProjLineage::ExecutePlan(
    const LineagePlan& plan, const std::string& run,
    std::vector<LineageBinding>* bindings) const {
  // A run the trace never recorded has no rows for any query in the
  // plan; resolving it once up front skips |queries| futile probes.
  auto run_sym = store_->LookupSymbol(run);
  if (!run_sym.has_value()) return Status::OK();
  for (const TraceQuery& q : plan.queries) {
    if (q.workflow_source) {
      PROVLIN_ASSIGN_OR_RETURN(
          std::vector<XformRecord> src_rows,
          store_->FindProducing(*run_sym, q.processor, q.port, q.index));
      if (q.via_processor == kNoSymbol) {
        // Direct query on the workflow input port itself.
        PROVLIN_RETURN_IF_ERROR(
            AppendSourceBindings(*store_, run, src_rows, q.index, bindings));
        continue;
      }
      // The input reached the query target through (via_processor,
      // via_port); the consumer's trace rows tell at which granularity
      // the input elements were actually consumed — the same indices the
      // naive traversal arrives with.
      PROVLIN_ASSIGN_OR_RETURN(
          std::vector<XformRecord> consumed,
          store_->FindConsuming(*run_sym, q.via_processor, q.via_port,
                                q.index));
      std::set<IndexId> arrival_keys;
      std::vector<Index> arrivals;
      for (const XformRecord& row : consumed) {
        if (!row.has_in) continue;
        if (arrival_keys.insert(store_->InternIndex(row.in_index)).second) {
          arrivals.push_back(row.in_index);
        }
      }
      for (const Index& r : arrivals) {
        PROVLIN_RETURN_IF_ERROR(
            AppendSourceBindings(*store_, run, src_rows, r, bindings));
      }
      continue;
    }
    PROVLIN_ASSIGN_OR_RETURN(
        std::vector<XformRecord> rows,
        store_->FindConsuming(*run_sym, q.processor, q.port, q.index));
    // Dedup identical in-bindings repeated across dependency rows (one
    // row exists per (in, out) pair of an event).
    std::set<std::tuple<SymbolId, IndexId, int64_t>> seen;
    for (const XformRecord& row : rows) {
      if (!row.has_in) continue;
      auto key = std::make_tuple(row.in_port, store_->InternIndex(row.in_index),
                                 row.in_value);
      if (!seen.insert(key).second) continue;
      PROVLIN_RETURN_IF_ERROR(AppendInputBinding(*store_, run, row, bindings));
    }
  }
  return Status::OK();
}

Result<LineageAnswer> IndexProjLineage::Query(const std::string& run,
                                              const PortRef& target,
                                              const Index& q,
                                              const InterestSet& interest) {
  return QueryMultiRun({run}, target, q, interest);
}

Result<LineageAnswer> IndexProjLineage::QueryMultiRun(
    const std::vector<std::string>& runs, const PortRef& target,
    const Index& q, const InterestSet& interest) {
  LineageAnswer answer;

  // s1: one spec-graph traversal, shared by every run in scope.
  PlanKey key = MakePlanKey(target, q, interest);
  answer.timing.plan_cache_hit = plan_cache_.count(key) > 0;
  WallTimer t1;
  PROVLIN_ASSIGN_OR_RETURN(const LineagePlan* plan,
                           Plan(target, q, interest));
  answer.timing.t1_ms = t1.ElapsedMillis();
  answer.timing.graph_steps = plan->graph_steps;

  // s2: execute the generated trace queries per run.
  storage::TableStats before = store_->db()->AggregateStats();
  WallTimer t2;
  for (const std::string& run : runs) {
    PROVLIN_RETURN_IF_ERROR(ExecutePlan(*plan, run, &answer.bindings));
  }
  answer.timing.t2_ms = t2.ElapsedMillis();
  storage::TableStats after = store_->db()->AggregateStats();
  answer.timing.trace_probes =
      (after.index_probes - before.index_probes) +
      (after.full_scans - before.full_scans);

  NormalizeBindings(&answer.bindings);
  return answer;
}

}  // namespace provlin::lineage
