#include "lineage/forward_lineage.h"

#include <algorithm>
#include <set>
#include <tuple>

#include "common/timer.h"
#include "common/tracing.h"

namespace provlin::lineage {

using common::IndexId;
using common::kNoSymbol;
using common::SymbolId;
using provenance::XferRecord;
using provenance::XformRecord;
using workflow::Dataflow;
using workflow::kWorkflowProcessor;
using workflow::PortRef;
using workflow::Processor;

// ---------------------------------------------------------------------------
// Naive forward traversal
// ---------------------------------------------------------------------------

namespace {

/// ID-space forward traversal, mirroring the backward naive engine:
/// ports and runs are SymbolIds, indexes are dense IndexIds, and the
/// visited set compares integer tuples. Strings only reappear in the
/// reported bindings.
class ForwardTraversal {
 public:
  ForwardTraversal(const provenance::TraceStore& store, std::string run,
                   SymbolId run_sym, const InterestSet& interest)
      : store_(store),
        run_(std::move(run)),
        run_sym_(run_sym),
        all_interesting_(interest.empty()),
        workflow_sym_(store.Intern(kWorkflowProcessor)) {
    for (const std::string& name : interest) {
      auto sym = store.LookupSymbol(name);
      if (sym.has_value()) interest_syms_.insert(*sym);
    }
  }

  bool Interesting(SymbolId processor) const {
    return all_interesting_ || interest_syms_.count(processor) > 0;
  }

  /// Producer side: a value sits on an output port (or workflow input);
  /// hop every outgoing arc.
  Status VisitProducer(SymbolId processor, SymbolId port, const Index& p) {
    ++steps_;
    auto key = std::make_tuple(processor, port, store_.InternIndex(p),
                               /*producer=*/true);
    if (!visited_.insert(key).second) return Status::OK();
    PROVLIN_ASSIGN_OR_RETURN(
        std::vector<XferRecord> xfers,
        store_.FindXfersFrom(run_sym_, processor, port, p));
    std::set<std::pair<SymbolId, SymbolId>> dsts;
    for (const XferRecord& row : xfers) {
      dsts.insert({row.dst_proc, row.dst_port});
    }
    for (const auto& [dst_proc, dst_port] : dsts) {
      if (dst_proc == workflow_sym_) {
        if (Interesting(workflow_sym_)) {
          PROVLIN_RETURN_IF_ERROR(ReportWorkflowOutput(dst_port, p));
        }
        continue;
      }
      PROVLIN_RETURN_IF_ERROR(VisitConsumer(dst_proc, dst_port, p));
    }
    return Status::OK();
  }

  /// Consumer side: the value arrived at an input port; the xform rows
  /// give the elementary events that consumed it and their outputs.
  Status VisitConsumer(SymbolId processor, SymbolId port, const Index& p) {
    ++steps_;
    auto key = std::make_tuple(processor, port, store_.InternIndex(p),
                               /*producer=*/false);
    if (!visited_.insert(key).second) return Status::OK();
    PROVLIN_ASSIGN_OR_RETURN(
        std::vector<XformRecord> rows,
        store_.FindConsuming(run_sym_, processor, port, p));
    bool interesting = Interesting(processor);
    std::set<std::pair<SymbolId, Index>> next;
    for (const XformRecord& row : rows) {
      if (!row.has_out) continue;
      if (interesting) {
        PROVLIN_ASSIGN_OR_RETURN(std::string repr,
                                 store_.GetValueRepr(row.run, row.out_value));
        bindings_.push_back(LineageBinding{
            run_,
            PortRef{store_.NameOf(row.processor), store_.NameOf(row.out_port)},
            row.out_index, std::move(repr)});
      }
      next.insert({row.out_port, row.out_index});
    }
    for (const auto& [out_port, idx] : next) {
      PROVLIN_RETURN_IF_ERROR(VisitProducer(processor, out_port, idx));
    }
    return Status::OK();
  }

  std::vector<LineageBinding>& bindings() { return bindings_; }
  uint64_t steps() const { return steps_; }

 private:
  Status ReportWorkflowOutput(SymbolId out_port, const Index& p) {
    // The (single, coarse) xfer row into the workflow output carries the
    // whole value; report the element the arrival index selects.
    PROVLIN_ASSIGN_OR_RETURN(
        std::vector<XferRecord> rows,
        store_.FindXfersInto(run_sym_, workflow_sym_, out_port, p));
    for (const XferRecord& row : rows) {
      PROVLIN_ASSIGN_OR_RETURN(Value whole,
                               store_.GetValue(run_, row.value_id));
      if (!row.dst_index.IsPrefixOf(p)) continue;
      Index residual =
          p.SubIndex(row.dst_index.length(), p.length() - row.dst_index.length());
      auto element = whole.At(residual);
      if (!element.ok()) continue;  // index beyond the produced value
      bindings_.push_back(LineageBinding{
          run_, PortRef{kWorkflowProcessor, store_.NameOf(out_port)}, p,
          element.value().ToString()});
    }
    return Status::OK();
  }

  const provenance::TraceStore& store_;
  std::string run_;
  SymbolId run_sym_;
  bool all_interesting_;
  SymbolId workflow_sym_;
  std::set<SymbolId> interest_syms_;
  std::set<std::tuple<SymbolId, SymbolId, IndexId, bool>> visited_;
  std::vector<LineageBinding> bindings_;
  uint64_t steps_ = 0;
};

}  // namespace

Result<LineageAnswer> NaiveForwardLineage::Query(
    const std::string& run, const PortRef& target, const Index& p,
    const InterestSet& interest) const {
  PROVLIN_TRACE_SPAN("forward_ni/query");
  LineageAnswer answer;
  storage::TableStats before = store_->db()->AggregateStats();
  WallTimer timer;

  // Resolve the query to id space once; unrecorded names have no impact.
  auto run_sym = store_->LookupSymbol(run);
  auto proc_sym = store_->LookupSymbol(target.processor);
  auto port_sym = store_->LookupSymbol(target.port);
  if (!run_sym || !proc_sym || !port_sym) {
    answer.timing.t2_ms = timer.ElapsedMillis();
    return answer;
  }

  ForwardTraversal traversal(*store_, run, *run_sym, interest);
  // Side detection: ports with outgoing xfer rows or producing xform
  // rows are producer-side; anything else is consumed.
  PROVLIN_ASSIGN_OR_RETURN(
      std::vector<XferRecord> out_xfers,
      store_->FindXfersFrom(*run_sym, *proc_sym, *port_sym, p));
  bool producer = !out_xfers.empty();
  if (!producer) {
    PROVLIN_ASSIGN_OR_RETURN(
        std::vector<XformRecord> produced,
        store_->FindProducing(*run_sym, *proc_sym, *port_sym, p));
    producer = !produced.empty();
  }
  if (producer) {
    PROVLIN_RETURN_IF_ERROR(traversal.VisitProducer(*proc_sym, *port_sym, p));
  } else {
    PROVLIN_RETURN_IF_ERROR(traversal.VisitConsumer(*proc_sym, *port_sym, p));
  }

  answer.bindings = std::move(traversal.bindings());
  NormalizeBindings(&answer.bindings);
  answer.timing.t2_ms = timer.ElapsedMillis();
  answer.timing.graph_steps = traversal.steps();
  storage::TableStats after = store_->db()->AggregateStats();
  answer.timing.trace_probes = (after.index_probes - before.index_probes) +
                               (after.full_scans - before.full_scans);
  answer.timing.trace_descents = after.descents - before.descents;
  PublishTiming("forward_naive", answer.timing);
  return answer;
}

// ---------------------------------------------------------------------------
// Forward IndexProj
// ---------------------------------------------------------------------------

Result<ForwardIndexProjLineage> ForwardIndexProjLineage::Create(
    std::shared_ptr<const Dataflow> dataflow,
    const provenance::TraceStore* store, ProbeExecution mode) {
  PROVLIN_ASSIGN_OR_RETURN(workflow::DepthMap depths,
                           workflow::PropagateDepths(*dataflow));
  return ForwardIndexProjLineage(std::move(dataflow), std::move(depths),
                                 store, mode);
}

namespace {

/// Truncates/pads `pattern` to exactly `len` components (wildcard pad).
IndexPattern FitPattern(const IndexPattern& pattern, size_t len) {
  IndexPattern out;
  for (size_t i = 0; i < len; ++i) {
    if (i < pattern.length() && pattern.at(i).has_value()) {
      out.AppendKnown(*pattern.at(i));
    } else {
      out.AppendWildcard();
    }
  }
  return out;
}

/// Forward planner. Port names are interned as they are reached;
/// patterns (which carry wildcards and so have no IndexId) keep their
/// compact Encode() form inside the plan-build dedup keys — those sets
/// live only for the duration of one BuildPlan.
class ForwardPlanner {
 public:
  ForwardPlanner(const Dataflow& flow, const workflow::DepthMap& depths,
                 const InterestSet& interest,
                 const provenance::TraceStore& store)
      : flow_(flow), depths_(depths), interest_(interest), store_(store) {}

  Status VisitProducer(const PortRef& port, const IndexPattern& pattern) {
    ++steps_;
    auto key = std::make_tuple(store_.Intern(port.processor),
                               store_.Intern(port.port), pattern.Encode(),
                               /*producer=*/true);
    if (!visited_.insert(key).second) return Status::OK();
    for (const workflow::Arc* arc : flow_.ArcsFrom(port)) {
      PROVLIN_RETURN_IF_ERROR(VisitConsumer(arc->dst, pattern));
    }
    return Status::OK();
  }

  Status VisitConsumer(const PortRef& port, const IndexPattern& pattern) {
    ++steps_;
    auto key = std::make_tuple(store_.Intern(port.processor),
                               store_.Intern(port.port), pattern.Encode(),
                               /*producer=*/false);
    if (!visited_.insert(key).second) return Status::OK();
    if (port.processor == kWorkflowProcessor) {
      if (IsInteresting(interest_, kWorkflowProcessor)) {
        ForwardTraceQuery q;
        q.processor = store_.Intern(kWorkflowProcessor);
        q.port = store_.Intern(port.port);
        q.pattern = pattern;
        q.workflow_output = true;
        AddQuery(std::move(q));
      }
      return Status::OK();
    }
    const Processor* proc = flow_.FindProcessor(port.processor);
    if (proc == nullptr) {
      return Status::NotFound("no processor '" + port.processor + "'");
    }
    auto ordinal = proc->InputOrdinal(port.port);
    if (!ordinal.has_value()) {
      return Status::NotFound("no input port " + port.ToString());
    }
    const workflow::ProcessorDepths& pd = depths_.ForProcessor(proc->name);
    // The strategy layout gives this port's slot in the output index;
    // the fragment lands there and everything else is unknown (Prop. 1
    // inverted, generalized to strategy expressions).
    workflow::PortSlot slot;
    auto sit = pd.slots.find(port.port);
    if (sit != pd.slots.end()) slot = sit->second;
    IndexPattern fragment = FitPattern(pattern, slot.length);
    IndexPattern out_pattern;
    out_pattern.AppendWildcards(slot.offset);
    for (size_t i = 0; i < fragment.length(); ++i) {
      if (fragment.at(i).has_value()) {
        out_pattern.AppendKnown(*fragment.at(i));
      } else {
        out_pattern.AppendWildcard();
      }
    }
    out_pattern.AppendWildcards(static_cast<size_t>(pd.iteration_levels) -
                                slot.offset - slot.length);

    if (IsInteresting(interest_, proc->name)) {
      for (const workflow::Port& out : proc->outputs) {
        ForwardTraceQuery q;
        q.processor = store_.Intern(proc->name);
        q.port = store_.Intern(out.name);
        q.pattern = out_pattern;
        AddQuery(std::move(q));
      }
    }
    for (const workflow::Port& out : proc->outputs) {
      PROVLIN_RETURN_IF_ERROR(
          VisitProducer(PortRef{proc->name, out.name}, out_pattern));
    }
    return Status::OK();
  }

  ForwardPlan TakePlan() {
    ForwardPlan plan;
    plan.queries = std::move(queries_);
    plan.graph_steps = steps_;
    return plan;
  }

 private:
  void AddQuery(ForwardTraceQuery q) {
    auto key = std::make_tuple(q.processor, q.port, q.pattern.Encode());
    if (query_keys_.insert(key).second) queries_.push_back(std::move(q));
  }

  using VisitKey = std::tuple<SymbolId, SymbolId, std::string, bool>;
  using QueryKey = std::tuple<SymbolId, SymbolId, std::string>;

  const Dataflow& flow_;
  const workflow::DepthMap& depths_;
  const InterestSet& interest_;
  const provenance::TraceStore& store_;
  std::set<VisitKey> visited_;
  std::set<QueryKey> query_keys_;
  std::vector<ForwardTraceQuery> queries_;
  uint64_t steps_ = 0;
};

}  // namespace

ForwardIndexProjLineage::PlanKey ForwardIndexProjLineage::MakePlanKey(
    const PortRef& target, const Index& p, const InterestSet& interest) const {
  std::vector<SymbolId> interest_syms;
  interest_syms.reserve(interest.size());
  for (const std::string& s : interest) {
    interest_syms.push_back(store_->Intern(s));
  }
  std::sort(interest_syms.begin(), interest_syms.end());
  return PlanKey(store_->Intern(target.processor), store_->Intern(target.port),
                 store_->InternIndex(p), std::move(interest_syms));
}

Result<ForwardPlan> ForwardIndexProjLineage::BuildPlan(
    const PortRef& target, const Index& p,
    const InterestSet& interest) const {
  ForwardPlanner planner(*dataflow_, depths_, interest, *store_);
  IndexPattern pattern(p);
  if (target.processor == kWorkflowProcessor) {
    if (dataflow_->FindWorkflowInput(target.port) != nullptr) {
      PROVLIN_RETURN_IF_ERROR(planner.VisitProducer(target, pattern));
    } else if (dataflow_->FindWorkflowOutput(target.port) != nullptr) {
      // Forward from a workflow output: nothing is downstream.
      return planner.TakePlan();
    } else {
      return Status::NotFound("no workflow port '" + target.port + "'");
    }
  } else {
    const Processor* proc = dataflow_->FindProcessor(target.processor);
    if (proc == nullptr) {
      return Status::NotFound("no processor '" + target.processor + "'");
    }
    if (proc->FindOutput(target.port) != nullptr) {
      PROVLIN_RETURN_IF_ERROR(planner.VisitProducer(target, pattern));
    } else if (proc->FindInput(target.port) != nullptr) {
      PROVLIN_RETURN_IF_ERROR(planner.VisitConsumer(target, pattern));
    } else {
      return Status::NotFound("no port " + target.ToString());
    }
  }
  return planner.TakePlan();
}

Result<const ForwardPlan*> ForwardIndexProjLineage::Plan(
    const PortRef& target, const Index& p, const InterestSet& interest) {
  PlanKey key = MakePlanKey(target, p, interest);
  auto it = plan_cache_.find(key);
  if (it != plan_cache_.end()) return &it->second;
  PROVLIN_ASSIGN_OR_RETURN(ForwardPlan plan, BuildPlan(target, p, interest));
  auto [pos, _] = plan_cache_.emplace(std::move(key), std::move(plan));
  return &pos->second;
}

namespace {

/// Workflow-output assembly: the coarse xfer row into the output carries
/// the whole value; enumerate the concrete indices the pattern selects.
Status AppendForwardOutputBindings(const provenance::TraceStore& store,
                                   const std::string& run,
                                   const ForwardTraceQuery& q,
                                   const std::vector<XferRecord>& rows,
                                   std::vector<LineageBinding>* bindings) {
  for (const XferRecord& row : rows) {
    PROVLIN_ASSIGN_OR_RETURN(Value whole, store.GetValue(run, row.value_id));
    for (const Index& idx : whole.IndicesAtLevel(q.pattern.length())) {
      if (!q.pattern.Overlaps(idx)) continue;
      auto element = whole.At(idx);
      if (!element.ok()) continue;
      bindings->push_back(LineageBinding{
          run, PortRef{kWorkflowProcessor, store.NameOf(q.port)}, idx,
          element.value().ToString()});
    }
  }
  return Status::OK();
}

/// Interesting-processor assembly: out-bindings whose index the pattern
/// selects, deduped per (index, value).
Status AppendForwardProducedBindings(const provenance::TraceStore& store,
                                     const std::string& run,
                                     const ForwardTraceQuery& q,
                                     const std::vector<XformRecord>& rows,
                                     std::vector<LineageBinding>* bindings) {
  PortRef port{store.NameOf(q.processor), store.NameOf(q.port)};
  std::set<std::pair<IndexId, int64_t>> seen;
  for (const XformRecord& row : rows) {
    if (!row.has_out || row.out_port != q.port) continue;
    if (!q.pattern.Overlaps(row.out_index)) continue;
    auto key = std::make_pair(store.InternIndex(row.out_index), row.out_value);
    if (!seen.insert(key).second) continue;
    PROVLIN_ASSIGN_OR_RETURN(std::string repr,
                             store.GetValueRepr(row.run, row.out_value));
    bindings->push_back(
        LineageBinding{run, port, row.out_index, std::move(repr)});
  }
  return Status::OK();
}

}  // namespace

Status ForwardIndexProjLineage::ExecutePlanBatched(
    const ForwardPlan& plan, const std::string& run,
    std::vector<LineageBinding>* bindings) const {
  auto run_sym = store_->LookupSymbol(run);
  if (!run_sym.has_value()) return Status::OK();

  constexpr size_t kNone = static_cast<size_t>(-1);
  std::vector<provenance::PortProbe> xfer_probes;
  std::vector<provenance::PortProbe> prod_probes;
  std::vector<size_t> slot(plan.queries.size(), kNone);
  for (size_t i = 0; i < plan.queries.size(); ++i) {
    const ForwardTraceQuery& q = plan.queries[i];
    auto& probes = q.workflow_output ? xfer_probes : prod_probes;
    slot[i] = probes.size();
    probes.push_back({*run_sym, q.processor, q.port, q.pattern.KnownPrefix()});
  }

  std::vector<std::vector<XferRecord>> xfer_rows;
  if (!xfer_probes.empty()) {
    PROVLIN_ASSIGN_OR_RETURN(xfer_rows, store_->FindXfersIntoBatch(xfer_probes));
  }
  std::vector<std::vector<XformRecord>> prod_rows;
  if (!prod_probes.empty()) {
    PROVLIN_ASSIGN_OR_RETURN(prod_rows, store_->FindProducingBatch(prod_probes));
  }

  for (size_t i = 0; i < plan.queries.size(); ++i) {
    const ForwardTraceQuery& q = plan.queries[i];
    if (q.workflow_output) {
      PROVLIN_RETURN_IF_ERROR(AppendForwardOutputBindings(
          *store_, run, q, xfer_rows[slot[i]], bindings));
    } else {
      PROVLIN_RETURN_IF_ERROR(AppendForwardProducedBindings(
          *store_, run, q, prod_rows[slot[i]], bindings));
    }
  }
  return Status::OK();
}

Status ForwardIndexProjLineage::ExecutePlan(
    const ForwardPlan& plan, const std::string& run,
    std::vector<LineageBinding>* bindings) const {
  if (mode_ == ProbeExecution::kBatched) {
    return ExecutePlanBatched(plan, run, bindings);
  }
  auto run_sym = store_->LookupSymbol(run);
  if (!run_sym.has_value()) return Status::OK();
  for (const ForwardTraceQuery& q : plan.queries) {
    if (q.workflow_output) {
      PROVLIN_ASSIGN_OR_RETURN(
          std::vector<XferRecord> rows,
          store_->FindXfersInto(*run_sym, q.processor, q.port,
                                q.pattern.KnownPrefix()));
      PROVLIN_RETURN_IF_ERROR(
          AppendForwardOutputBindings(*store_, run, q, rows, bindings));
      continue;
    }
    PROVLIN_ASSIGN_OR_RETURN(
        std::vector<XformRecord> rows,
        store_->FindProducing(*run_sym, q.processor, q.port,
                              q.pattern.KnownPrefix()));
    PROVLIN_RETURN_IF_ERROR(
        AppendForwardProducedBindings(*store_, run, q, rows, bindings));
  }
  return Status::OK();
}

Result<LineageAnswer> ForwardIndexProjLineage::Query(
    const std::string& run, const PortRef& target, const Index& p,
    const InterestSet& interest) {
  return QueryMultiRun({run}, target, p, interest);
}

Result<LineageAnswer> ForwardIndexProjLineage::QueryMultiRun(
    const std::vector<std::string>& runs, const PortRef& target,
    const Index& p, const InterestSet& interest) {
  PROVLIN_TRACE_SPAN("forward_indexproj/query");
  LineageAnswer answer;
  PlanKey key = MakePlanKey(target, p, interest);
  answer.timing.plan_cache_hit = plan_cache_.count(key) > 0;
  WallTimer t1;
  PROVLIN_ASSIGN_OR_RETURN(const ForwardPlan* plan,
                           Plan(target, p, interest));
  answer.timing.t1_ms = t1.ElapsedMillis();
  answer.timing.graph_steps = plan->graph_steps;

  storage::TableStats before = store_->db()->AggregateStats();
  WallTimer t2;
  for (const std::string& run : runs) {
    PROVLIN_RETURN_IF_ERROR(ExecutePlan(*plan, run, &answer.bindings));
  }
  answer.timing.t2_ms = t2.ElapsedMillis();
  storage::TableStats after = store_->db()->AggregateStats();
  answer.timing.trace_probes = (after.index_probes - before.index_probes) +
                               (after.full_scans - before.full_scans);
  answer.timing.trace_descents = after.descents - before.descents;

  NormalizeBindings(&answer.bindings);
  PublishTiming("forward_indexproj", answer.timing);
  return answer;
}

}  // namespace provlin::lineage
