#include "lineage/forward_lineage.h"

#include <set>

#include "common/timer.h"

namespace provlin::lineage {

using provenance::XferRecord;
using provenance::XformRecord;
using workflow::Dataflow;
using workflow::kWorkflowProcessor;
using workflow::PortRef;
using workflow::Processor;

// ---------------------------------------------------------------------------
// Naive forward traversal
// ---------------------------------------------------------------------------

namespace {

class ForwardTraversal {
 public:
  ForwardTraversal(const provenance::TraceStore& store, std::string run,
                   InterestSet interest)
      : store_(store), run_(std::move(run)), interest_(std::move(interest)) {}

  /// Producer side: a value sits on an output port (or workflow input);
  /// hop every outgoing arc.
  Status VisitProducer(const PortRef& port, const Index& p) {
    ++steps_;
    if (!visited_.insert(port.ToString() + "\x1f" + p.Encode() + "\x1fp")
             .second) {
      return Status::OK();
    }
    PROVLIN_ASSIGN_OR_RETURN(
        std::vector<XferRecord> xfers,
        store_.FindXfersFrom(run_, port.processor, port.port, p));
    std::set<std::pair<std::string, std::string>> dsts;
    for (const XferRecord& row : xfers) {
      dsts.insert({row.dst_proc, row.dst_port});
    }
    for (const auto& [dst_proc, dst_port] : dsts) {
      if (dst_proc == kWorkflowProcessor) {
        if (IsInteresting(interest_, kWorkflowProcessor)) {
          PROVLIN_RETURN_IF_ERROR(
              ReportWorkflowOutput(dst_port, p));
        }
        continue;
      }
      PROVLIN_RETURN_IF_ERROR(
          VisitConsumer(PortRef{dst_proc, dst_port}, p));
    }
    return Status::OK();
  }

  /// Consumer side: the value arrived at an input port; the xform rows
  /// give the elementary events that consumed it and their outputs.
  Status VisitConsumer(const PortRef& port, const Index& p) {
    ++steps_;
    if (!visited_.insert(port.ToString() + "\x1f" + p.Encode() + "\x1f" "c")
             .second) {
      return Status::OK();
    }
    PROVLIN_ASSIGN_OR_RETURN(
        std::vector<XformRecord> rows,
        store_.FindConsuming(run_, port.processor, port.port, p));
    bool interesting = IsInteresting(interest_, port.processor);
    std::set<std::pair<std::string, std::string>> next;
    for (const XformRecord& row : rows) {
      if (!row.has_out) continue;
      if (interesting) {
        PROVLIN_ASSIGN_OR_RETURN(std::string repr,
                                 store_.GetValueRepr(run_, row.out_value));
        bindings_.push_back(LineageBinding{
            run_, PortRef{row.processor, row.out_port}, row.out_index,
            std::move(repr)});
      }
      next.insert({row.out_port, row.out_index.Encode()});
    }
    for (const auto& [out_port, enc] : next) {
      PROVLIN_ASSIGN_OR_RETURN(Index idx, Index::Decode(enc));
      PROVLIN_RETURN_IF_ERROR(
          VisitProducer(PortRef{port.processor, out_port}, idx));
    }
    return Status::OK();
  }

  std::vector<LineageBinding>& bindings() { return bindings_; }
  uint64_t steps() const { return steps_; }

 private:
  Status ReportWorkflowOutput(const std::string& out_port, const Index& p) {
    // The (single, coarse) xfer row into the workflow output carries the
    // whole value; report the element the arrival index selects.
    PROVLIN_ASSIGN_OR_RETURN(
        std::vector<XferRecord> rows,
        store_.FindXfersInto(run_, kWorkflowProcessor, out_port, p));
    for (const XferRecord& row : rows) {
      PROVLIN_ASSIGN_OR_RETURN(Value whole,
                               store_.GetValue(run_, row.value_id));
      if (!row.dst_index.IsPrefixOf(p)) continue;
      Index residual =
          p.SubIndex(row.dst_index.length(), p.length() - row.dst_index.length());
      auto element = whole.At(residual);
      if (!element.ok()) continue;  // index beyond the produced value
      bindings_.push_back(LineageBinding{
          run_, PortRef{kWorkflowProcessor, out_port}, p,
          element.value().ToString()});
    }
    return Status::OK();
  }

  const provenance::TraceStore& store_;
  std::string run_;
  InterestSet interest_;
  std::set<std::string> visited_;
  std::vector<LineageBinding> bindings_;
  uint64_t steps_ = 0;
};

}  // namespace

Result<LineageAnswer> NaiveForwardLineage::Query(
    const std::string& run, const PortRef& target, const Index& p,
    const InterestSet& interest) const {
  LineageAnswer answer;
  storage::TableStats before = store_->db()->AggregateStats();
  WallTimer timer;

  ForwardTraversal traversal(*store_, run, interest);
  // Side detection: ports with outgoing xfer rows or producing xform
  // rows are producer-side; anything else is consumed.
  PROVLIN_ASSIGN_OR_RETURN(
      std::vector<XferRecord> out_xfers,
      store_->FindXfersFrom(run, target.processor, target.port, p));
  bool producer = !out_xfers.empty();
  if (!producer) {
    PROVLIN_ASSIGN_OR_RETURN(
        std::vector<XformRecord> produced,
        store_->FindProducing(run, target.processor, target.port, p));
    producer = !produced.empty();
  }
  if (producer) {
    PROVLIN_RETURN_IF_ERROR(traversal.VisitProducer(target, p));
  } else {
    PROVLIN_RETURN_IF_ERROR(traversal.VisitConsumer(target, p));
  }

  answer.bindings = std::move(traversal.bindings());
  NormalizeBindings(&answer.bindings);
  answer.timing.t2_ms = timer.ElapsedMillis();
  answer.timing.graph_steps = traversal.steps();
  storage::TableStats after = store_->db()->AggregateStats();
  answer.timing.trace_probes = (after.index_probes - before.index_probes) +
                               (after.full_scans - before.full_scans);
  return answer;
}

// ---------------------------------------------------------------------------
// Forward IndexProj
// ---------------------------------------------------------------------------

Result<ForwardIndexProjLineage> ForwardIndexProjLineage::Create(
    std::shared_ptr<const Dataflow> dataflow,
    const provenance::TraceStore* store) {
  PROVLIN_ASSIGN_OR_RETURN(workflow::DepthMap depths,
                           workflow::PropagateDepths(*dataflow));
  return ForwardIndexProjLineage(std::move(dataflow), std::move(depths),
                                 store);
}

namespace {

std::string ForwardPlanKey(const PortRef& target, const Index& p,
                           const InterestSet& interest) {
  std::string key = target.ToString() + "\x1f" + p.Encode() + "\x1f";
  for (const std::string& s : interest) {
    key += s;
    key += ',';
  }
  return key;
}

/// Truncates/pads `pattern` to exactly `len` components (wildcard pad).
IndexPattern FitPattern(const IndexPattern& pattern, size_t len) {
  IndexPattern out;
  for (size_t i = 0; i < len; ++i) {
    if (i < pattern.length() && pattern.at(i).has_value()) {
      out.AppendKnown(*pattern.at(i));
    } else {
      out.AppendWildcard();
    }
  }
  return out;
}

class ForwardPlanner {
 public:
  ForwardPlanner(const Dataflow& flow, const workflow::DepthMap& depths,
                 const InterestSet& interest)
      : flow_(flow), depths_(depths), interest_(interest) {}

  Status VisitProducer(const PortRef& port, const IndexPattern& pattern) {
    ++steps_;
    if (!visited_
             .insert(port.ToString() + "\x1f" + pattern.Encode() + "\x1fp")
             .second) {
      return Status::OK();
    }
    for (const workflow::Arc* arc : flow_.ArcsFrom(port)) {
      PROVLIN_RETURN_IF_ERROR(VisitConsumer(arc->dst, pattern));
    }
    return Status::OK();
  }

  Status VisitConsumer(const PortRef& port, const IndexPattern& pattern) {
    ++steps_;
    if (!visited_
             .insert(port.ToString() + "\x1f" + pattern.Encode() + "\x1f" "c")
             .second) {
      return Status::OK();
    }
    if (port.processor == kWorkflowProcessor) {
      if (IsInteresting(interest_, kWorkflowProcessor)) {
        ForwardTraceQuery q;
        q.processor = kWorkflowProcessor;
        q.port = port.port;
        q.pattern = pattern;
        q.workflow_output = true;
        AddQuery(std::move(q));
      }
      return Status::OK();
    }
    const Processor* proc = flow_.FindProcessor(port.processor);
    if (proc == nullptr) {
      return Status::NotFound("no processor '" + port.processor + "'");
    }
    auto ordinal = proc->InputOrdinal(port.port);
    if (!ordinal.has_value()) {
      return Status::NotFound("no input port " + port.ToString());
    }
    const workflow::ProcessorDepths& pd = depths_.ForProcessor(proc->name);
    // The strategy layout gives this port's slot in the output index;
    // the fragment lands there and everything else is unknown (Prop. 1
    // inverted, generalized to strategy expressions).
    workflow::PortSlot slot;
    auto sit = pd.slots.find(port.port);
    if (sit != pd.slots.end()) slot = sit->second;
    IndexPattern fragment = FitPattern(pattern, slot.length);
    IndexPattern out_pattern;
    out_pattern.AppendWildcards(slot.offset);
    for (size_t i = 0; i < fragment.length(); ++i) {
      if (fragment.at(i).has_value()) {
        out_pattern.AppendKnown(*fragment.at(i));
      } else {
        out_pattern.AppendWildcard();
      }
    }
    out_pattern.AppendWildcards(static_cast<size_t>(pd.iteration_levels) -
                                slot.offset - slot.length);

    if (IsInteresting(interest_, proc->name)) {
      for (const workflow::Port& out : proc->outputs) {
        ForwardTraceQuery q;
        q.processor = proc->name;
        q.port = out.name;
        q.pattern = out_pattern;
        AddQuery(std::move(q));
      }
    }
    for (const workflow::Port& out : proc->outputs) {
      PROVLIN_RETURN_IF_ERROR(
          VisitProducer(PortRef{proc->name, out.name}, out_pattern));
    }
    return Status::OK();
  }

  ForwardPlan TakePlan() {
    ForwardPlan plan;
    plan.queries = std::move(queries_);
    plan.graph_steps = steps_;
    return plan;
  }

 private:
  void AddQuery(ForwardTraceQuery q) {
    std::string key =
        q.processor + "\x1f" + q.port + "\x1f" + q.pattern.Encode();
    if (query_keys_.insert(key).second) queries_.push_back(std::move(q));
  }

  const Dataflow& flow_;
  const workflow::DepthMap& depths_;
  const InterestSet& interest_;
  std::set<std::string> visited_;
  std::set<std::string> query_keys_;
  std::vector<ForwardTraceQuery> queries_;
  uint64_t steps_ = 0;
};

}  // namespace

Result<ForwardPlan> ForwardIndexProjLineage::BuildPlan(
    const PortRef& target, const Index& p,
    const InterestSet& interest) const {
  ForwardPlanner planner(*dataflow_, depths_, interest);
  IndexPattern pattern(p);
  if (target.processor == kWorkflowProcessor) {
    if (dataflow_->FindWorkflowInput(target.port) != nullptr) {
      PROVLIN_RETURN_IF_ERROR(planner.VisitProducer(target, pattern));
    } else if (dataflow_->FindWorkflowOutput(target.port) != nullptr) {
      // Forward from a workflow output: nothing is downstream.
      return planner.TakePlan();
    } else {
      return Status::NotFound("no workflow port '" + target.port + "'");
    }
  } else {
    const Processor* proc = dataflow_->FindProcessor(target.processor);
    if (proc == nullptr) {
      return Status::NotFound("no processor '" + target.processor + "'");
    }
    if (proc->FindOutput(target.port) != nullptr) {
      PROVLIN_RETURN_IF_ERROR(planner.VisitProducer(target, pattern));
    } else if (proc->FindInput(target.port) != nullptr) {
      PROVLIN_RETURN_IF_ERROR(planner.VisitConsumer(target, pattern));
    } else {
      return Status::NotFound("no port " + target.ToString());
    }
  }
  return planner.TakePlan();
}

Result<const ForwardPlan*> ForwardIndexProjLineage::Plan(
    const PortRef& target, const Index& p, const InterestSet& interest) {
  std::string key = ForwardPlanKey(target, p, interest);
  auto it = plan_cache_.find(key);
  if (it != plan_cache_.end()) return &it->second;
  PROVLIN_ASSIGN_OR_RETURN(ForwardPlan plan, BuildPlan(target, p, interest));
  auto [pos, _] = plan_cache_.emplace(key, std::move(plan));
  return &pos->second;
}

Status ForwardIndexProjLineage::ExecutePlan(
    const ForwardPlan& plan, const std::string& run,
    std::vector<LineageBinding>* bindings) const {
  for (const ForwardTraceQuery& q : plan.queries) {
    if (q.workflow_output) {
      // The coarse xfer row into the output carries the whole value;
      // enumerate the concrete indices the pattern selects.
      PROVLIN_ASSIGN_OR_RETURN(
          std::vector<XferRecord> rows,
          store_->FindXfersInto(run, kWorkflowProcessor, q.port,
                                q.pattern.KnownPrefix()));
      for (const XferRecord& row : rows) {
        PROVLIN_ASSIGN_OR_RETURN(Value whole,
                                 store_->GetValue(run, row.value_id));
        for (const Index& idx : whole.IndicesAtLevel(q.pattern.length())) {
          if (!q.pattern.Overlaps(idx)) continue;
          auto element = whole.At(idx);
          if (!element.ok()) continue;
          bindings->push_back(LineageBinding{
              run, PortRef{kWorkflowProcessor, q.port}, idx,
              element.value().ToString()});
        }
      }
      continue;
    }
    PROVLIN_ASSIGN_OR_RETURN(
        std::vector<XformRecord> rows,
        store_->FindProducing(run, q.processor, q.port,
                              q.pattern.KnownPrefix()));
    std::set<std::string> seen;
    for (const XformRecord& row : rows) {
      if (!row.has_out || row.out_port != q.port) continue;
      if (!q.pattern.Overlaps(row.out_index)) continue;
      std::string key = row.out_index.Encode() + "\x1f" +
                        std::to_string(row.out_value);
      if (!seen.insert(key).second) continue;
      PROVLIN_ASSIGN_OR_RETURN(std::string repr,
                               store_->GetValueRepr(run, row.out_value));
      bindings->push_back(LineageBinding{
          run, PortRef{q.processor, q.port}, row.out_index,
          std::move(repr)});
    }
  }
  return Status::OK();
}

Result<LineageAnswer> ForwardIndexProjLineage::Query(
    const std::string& run, const PortRef& target, const Index& p,
    const InterestSet& interest) {
  return QueryMultiRun({run}, target, p, interest);
}

Result<LineageAnswer> ForwardIndexProjLineage::QueryMultiRun(
    const std::vector<std::string>& runs, const PortRef& target,
    const Index& p, const InterestSet& interest) {
  LineageAnswer answer;
  std::string key = ForwardPlanKey(target, p, interest);
  answer.timing.plan_cache_hit = plan_cache_.count(key) > 0;
  WallTimer t1;
  PROVLIN_ASSIGN_OR_RETURN(const ForwardPlan* plan,
                           Plan(target, p, interest));
  answer.timing.t1_ms = t1.ElapsedMillis();
  answer.timing.graph_steps = plan->graph_steps;

  storage::TableStats before = store_->db()->AggregateStats();
  WallTimer t2;
  for (const std::string& run : runs) {
    PROVLIN_RETURN_IF_ERROR(ExecutePlan(*plan, run, &answer.bindings));
  }
  answer.timing.t2_ms = t2.ElapsedMillis();
  storage::TableStats after = store_->db()->AggregateStats();
  answer.timing.trace_probes = (after.index_probes - before.index_probes) +
                               (after.full_scans - before.full_scans);

  NormalizeBindings(&answer.bindings);
  return answer;
}

}  // namespace provlin::lineage
