#ifndef PROVLIN_LINEAGE_ENGINE_H_
#define PROVLIN_LINEAGE_ENGINE_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "lineage/query.h"

namespace provlin::lineage {

/// One lineage question, self-contained: which runs are in scope, which
/// binding ⟨target[index]⟩ is asked about, and the interest set 𝒫 that
/// focuses the answer. This is the uniform request shape of the lineage
/// API — single-run queries are simply requests with one run, and the
/// §3.4 multi-run sharing falls out of `runs` holding several.
struct LineageRequest {
  std::vector<std::string> runs;
  workflow::PortRef target;
  Index index;
  InterestSet interest;

  /// Convenience for the common single-run case.
  static LineageRequest SingleRun(std::string run, workflow::PortRef target,
                                  Index index, InterestSet interest = {}) {
    LineageRequest req;
    req.runs.push_back(std::move(run));
    req.target = std::move(target);
    req.index = std::move(index);
    req.interest = std::move(interest);
    return req;
  }

  /// Convenience for an explicit run set (§3.4 multi-run sharing).
  static LineageRequest MultiRun(std::vector<std::string> runs,
                                 workflow::PortRef target, Index index,
                                 InterestSet interest = {}) {
    LineageRequest req;
    req.runs = std::move(runs);
    req.target = std::move(target);
    req.index = std::move(index);
    req.interest = std::move(interest);
    return req;
  }

  std::string ToString() const {
    std::string runs_repr;
    for (const std::string& r : runs) {
      if (!runs_repr.empty()) runs_repr += ",";
      runs_repr += r;
    }
    return "lin(" + target.ToString() + index.ToString() + " @ {" +
           runs_repr + "})";
  }
};

/// How an engine issues its trace-database probes. kSingleProbe is the
/// seed behaviour: every probe is an independent B+-tree descent.
/// kBatched collects each traversal level (NI) or plan (IndexProj) into
/// sorted probe batches answered in one amortized index pass — same
/// logical probes and byte-identical answers, fewer physical descents.
enum class ProbeExecution { kSingleProbe, kBatched };

/// Abstract lineage engine: anything that can answer lin(⟨target[q]⟩, 𝒫)
/// over a recorded trace. The two paper algorithms (NaiveLineage = NI,
/// IndexProjLineage = Alg. 2) implement it, and the CLI, examples,
/// equivalence tests, and the concurrent LineageService program against
/// this interface instead of the concrete types.
///
/// Query() is the single entry point and must be safe to call from many
/// threads at once on an engine whose trace store is quiescent — the
/// contract the batch service builds on.
class LineageEngine {
 public:
  virtual ~LineageEngine() = default;

  /// Engine identifier ("naive", "indexproj") for CLIs, logs, metrics.
  virtual std::string_view name() const = 0;

  /// Answers one request across all runs in its scope.
  virtual Result<LineageAnswer> Query(const LineageRequest& request) const = 0;

};

}  // namespace provlin::lineage

#endif  // PROVLIN_LINEAGE_ENGINE_H_
