#ifndef PROVLIN_LINEAGE_USER_VIEW_H_
#define PROVLIN_LINEAGE_USER_VIEW_H_

#include <map>
#include <memory>
#include <set>
#include <string>

#include "common/result.h"
#include "lineage/index_proj_lineage.h"
#include "lineage/query.h"

namespace provlin::lineage {

/// Zoom-style user views (Biton et al., which the paper cites as
/// complementary to its approach): the user groups processors into
/// named *composites* to hide uninteresting internal structure. A
/// lineage query focused on a composite answers at the composite's
/// boundary — the input ports of member processors that are fed from
/// outside the group — and hides member-internal dependencies.
///
/// The view is purely a query-rewriting layer on top of the ordinary
/// engines: interest sets are *lowered* to the underlying processors,
/// and answers are *raised* by dropping composite-internal bindings and
/// relabeling boundary ones as "<composite>:<member>.<port>".
class UserView {
 public:
  /// `composites` maps a composite name to its member processors.
  /// Composites must be disjoint, non-empty, contain only existing
  /// processors, and must not shadow a processor name or "workflow".
  static Result<UserView> Create(
      std::shared_ptr<const workflow::Dataflow> dataflow,
      std::map<std::string, std::set<std::string>> composites);

  /// Translates a view-level interest set (composite names, plain
  /// processor names, "workflow") to the underlying processor set.
  /// Focusing a composite selects exactly the members owning a boundary
  /// input port. An empty set stays empty (unfocused).
  Result<InterestSet> Lower(const InterestSet& view_interest) const;

  /// Rewrites an answer for the view-level interest set: bindings on
  /// composite-internal ports are dropped, bindings on composite
  /// boundary ports are relabeled. Bindings of plain (non-composite)
  /// interests pass through unchanged.
  LineageAnswer Raise(const InterestSet& view_interest,
                      LineageAnswer answer) const;

  /// Convenience: Lower + engine query + Raise.
  Result<LineageAnswer> Query(IndexProjLineage* engine,
                              const std::string& run,
                              const workflow::PortRef& target,
                              const Index& q,
                              const InterestSet& view_interest) const;

  /// Composite owning a processor, or nullptr.
  const std::string* CompositeOf(const std::string& processor) const;

  /// Boundary input ports of a composite, as "member:port" strings.
  Result<std::set<std::string>> BoundaryInputs(
      const std::string& composite) const;

 private:
  UserView() = default;

  std::shared_ptr<const workflow::Dataflow> dataflow_;
  std::map<std::string, std::set<std::string>> composites_;
  std::map<std::string, std::string> member_to_composite_;
  /// (processor, port) -> owning composite, for boundary ports only.
  std::map<std::pair<std::string, std::string>, std::string> boundary_;
};

}  // namespace provlin::lineage

#endif  // PROVLIN_LINEAGE_USER_VIEW_H_
