#ifndef PROVLIN_LINEAGE_FORWARD_LINEAGE_H_
#define PROVLIN_LINEAGE_FORWARD_LINEAGE_H_

#include <map>
#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include "common/interner.h"
#include "common/result.h"
#include "lineage/engine.h"
#include "lineage/index_pattern.h"
#include "lineage/query.h"
#include "provenance/trace_store.h"
#include "workflow/depth_propagation.h"

namespace provlin::lineage {

/// Forward ("impact") lineage — the dual of Def. 1: given a binding
/// ⟨P:Y[p]⟩, find every *output* binding of the interesting processors
/// that depends on it ("a KEGG release changed gene X: which results
/// are affected?"). This extends the paper, which treats backward
/// queries only; the same machinery applies because the index
/// projection rule is invertible: pushing an index *with* the flow
/// composes output indices per Prop. 1, with the fragments contributed
/// by a processor's other ports becoming wildcards (IndexPattern).
///
/// InterestSet semantics mirror the backward engines: named processors
/// report their output bindings, "workflow" selects the workflow output
/// ports, the empty set is unfocused.

/// Naïve forward baseline: walks the trace in flow direction (xfer rows
/// by source, xform rows by input port), one probe bundle per step.
class NaiveForwardLineage {
 public:
  explicit NaiveForwardLineage(const provenance::TraceStore* store)
      : store_(store) {}

  Result<LineageAnswer> Query(const std::string& run,
                              const workflow::PortRef& target, const Index& p,
                              const InterestSet& interest) const;

 private:
  const provenance::TraceStore* store_;
};

/// One generated forward trace query: retrieve the out-bindings of
/// `processor`:`port` whose index overlaps `pattern`. Names are stored
/// interned, like the backward TraceQuery.
struct ForwardTraceQuery {
  common::SymbolId processor = common::kNoSymbol;
  common::SymbolId port = common::kNoSymbol;
  IndexPattern pattern;
  bool workflow_output = false;

  std::string ToString(const provenance::TraceStore& store) const {
    return "Qf(" + store.NameOf(processor) + ", " + store.NameOf(port) + ", " +
           pattern.ToString() + ")";
  }
};

struct ForwardPlan {
  std::vector<ForwardTraceQuery> queries;
  uint64_t graph_steps = 0;
};

/// Spec-graph forward engine: traverses the workflow graph downstream
/// from the target, composing index patterns, and touches the trace
/// only to retrieve the matching out-bindings of interesting processors
/// (plus one probe per reached workflow output). Plans are cached like
/// the backward engine's.
class ForwardIndexProjLineage {
 public:
  /// kBatched (default) executes a plan's trace queries as one
  /// xfers-into batch plus one producing batch per run; kSingleProbe
  /// keeps one independent descent per query. Answers are identical.
  static Result<ForwardIndexProjLineage> Create(
      std::shared_ptr<const workflow::Dataflow> dataflow,
      const provenance::TraceStore* store,
      ProbeExecution mode = ProbeExecution::kBatched);

  Result<const ForwardPlan*> Plan(const workflow::PortRef& target,
                                  const Index& p, const InterestSet& interest);

  Result<LineageAnswer> Query(const std::string& run,
                              const workflow::PortRef& target, const Index& p,
                              const InterestSet& interest);

  Result<LineageAnswer> QueryMultiRun(const std::vector<std::string>& runs,
                                      const workflow::PortRef& target,
                                      const Index& p,
                                      const InterestSet& interest);

  void ClearPlanCache() { plan_cache_.clear(); }

 private:
  ForwardIndexProjLineage(std::shared_ptr<const workflow::Dataflow> dataflow,
                          workflow::DepthMap depths,
                          const provenance::TraceStore* store,
                          ProbeExecution mode)
      : dataflow_(std::move(dataflow)),
        depths_(std::move(depths)),
        store_(store),
        mode_(mode) {}

  Result<ForwardPlan> BuildPlan(const workflow::PortRef& target,
                                const Index& p,
                                const InterestSet& interest) const;
  Status ExecutePlan(const ForwardPlan& plan, const std::string& run,
                     std::vector<LineageBinding>* bindings) const;
  Status ExecutePlanBatched(const ForwardPlan& plan, const std::string& run,
                            std::vector<LineageBinding>* bindings) const;

  /// Same integer-tuple cache key shape as the backward engine.
  using PlanKey =
      std::tuple<common::SymbolId, common::SymbolId, common::IndexId,
                 std::vector<common::SymbolId>>;
  PlanKey MakePlanKey(const workflow::PortRef& target, const Index& p,
                      const InterestSet& interest) const;

  std::shared_ptr<const workflow::Dataflow> dataflow_;
  workflow::DepthMap depths_;
  const provenance::TraceStore* store_;
  ProbeExecution mode_ = ProbeExecution::kBatched;
  std::map<PlanKey, ForwardPlan> plan_cache_;
};

}  // namespace provlin::lineage

#endif  // PROVLIN_LINEAGE_FORWARD_LINEAGE_H_
