#include "lineage/naive_lineage.h"

#include <map>
#include <set>
#include <tuple>

#include "common/timer.h"
#include "common/tracing.h"
#include "lineage/binding_retrieval.h"

namespace provlin::lineage {

using provenance::SymbolId;
using provenance::XferRecord;
using provenance::XformRecord;
using workflow::kWorkflowProcessor;
using workflow::PortRef;

namespace {

/// Which side of a processor a visited binding sits on: output-port
/// bindings invert xform events (Def. 1 case 1), input-port bindings hop
/// an arc (case 2).
enum class Side { kOutput, kInput };

/// ID-space traversal state: processors, ports, and runs are SymbolIds
/// and indexes are dense IndexIds, so the visited set and the recursion
/// compare integers. Strings only reappear in the reported bindings.
///
/// One Traversal may span several runs: the visited set and every
/// frontier entry are run-qualified, and the batched driver sends each
/// level's probes for *all* runs to the store as one run-qualified
/// batch — which the sharded store splits by owning shard and fans out.
class Traversal {
 public:
  Traversal(const provenance::TraceStore& store, const InterestSet& interest)
      : store_(store),
        workflow_sym_(store.Intern(kWorkflowProcessor)),
        // Names never recorded can't match any trace row; Resolve drops
        // them so the hot check is a pure integer set lookup.
        interest_(InterestIds::Resolve(
            interest, [&store](const std::string& name) {
              return store.LookupSymbol(name);
            })) {}

  /// Registers a run and seeds the batched frontier with its target.
  void Seed(std::string run, SymbolId run_sym, SymbolId processor,
            SymbolId port, const Index& q, Side side) {
    run_names_.emplace(run_sym, std::move(run));
    frontier_.push_back({run_sym, processor, port, q, side});
  }

  /// Registers a run for the recursive (single-probe) driver.
  void AddRun(std::string run, SymbolId run_sym) {
    run_names_.emplace(run_sym, std::move(run));
  }

  Status Visit(SymbolId run, SymbolId processor, SymbolId port, const Index& q,
               Side side) {
    ++steps_;
    auto key = std::make_tuple(run, processor, port, store_.InternIndex(q),
                               side == Side::kOutput);
    if (!visited_.insert(key).second) return Status::OK();

    if (side == Side::kOutput) {
      PROVLIN_ASSIGN_OR_RETURN(std::vector<XformRecord> rows,
                               store_.FindProducing(run, processor, port, q));
      if (processor == workflow_sym_) {
        // Workflow-input source rows: traversal terminates here.
        if (IsInteresting(interest_, workflow_sym_)) {
          PROVLIN_RETURN_IF_ERROR(
              AppendSourceBindings(store_, RunName(run), rows, q, &bindings_));
        }
        return Status::OK();
      }
      bool interesting = IsInteresting(interest_, processor);
      std::set<std::pair<SymbolId, Index>> next;  // (in_port, index)
      for (const XformRecord& row : rows) {
        if (!row.has_in) continue;
        if (interesting) {
          PROVLIN_RETURN_IF_ERROR(
              AppendInputBinding(store_, RunName(run), row, &bindings_));
        }
        next.insert({row.in_port, row.in_index});
      }
      for (const auto& [in_port, idx] : next) {
        PROVLIN_RETURN_IF_ERROR(
            Visit(run, processor, in_port, idx, Side::kInput));
      }
      return Status::OK();
    }

    // Input side: hop the arc backwards. Indices transfer identically,
    // so the recursion keeps q; the xfer rows identify the source port.
    PROVLIN_ASSIGN_OR_RETURN(std::vector<XferRecord> rows,
                             store_.FindXfersInto(run, processor, port, q));
    std::set<std::pair<SymbolId, SymbolId>> sources;
    for (const XferRecord& row : rows) {
      sources.insert({row.src_proc, row.src_port});
    }
    for (const auto& [src_proc, src_port] : sources) {
      PROVLIN_RETURN_IF_ERROR(Visit(run, src_proc, src_port, q, Side::kOutput));
    }
    return Status::OK();
  }

  /// Frontier-batched form of the same traversal over all seeded runs:
  /// each BFS level collects its pending visits, filters them through
  /// the visited set (counting every attempt, like the recursive calls
  /// do), and issues one producing batch and one xfer batch for the
  /// whole level. Runs traverse independently (the visited key carries
  /// the run), so the expanded node set — and therefore the logical
  /// probe set, step count, and answer — is identical to looping the
  /// recursion over the runs; only probe physics (shared descents,
  /// cross-shard fan-out) and visit order differ, and the final
  /// NormalizeBindings erases the order.
  Status RunBatched() {
    std::vector<Pending> frontier = std::move(frontier_);
    frontier_.clear();
    while (!frontier.empty()) {
      PROVLIN_TRACE_SPAN_VAR(level_span, "ni/frontier_level");
      if (level_span.active()) {
        level_span.SetArgs("width=" + std::to_string(frontier.size()));
      }
      std::vector<Pending> out_items;
      std::vector<Pending> in_items;
      for (Pending& item : frontier) {
        ++steps_;
        auto key = std::make_tuple(item.run, item.processor, item.port,
                                   store_.InternIndex(item.index),
                                   item.side == Side::kOutput);
        if (!visited_.insert(key).second) continue;
        (item.side == Side::kOutput ? out_items : in_items)
            .push_back(std::move(item));
      }
      std::vector<Pending> next;

      if (!out_items.empty()) {
        std::vector<provenance::PortProbe> probes;
        probes.reserve(out_items.size());
        for (const Pending& item : out_items) {
          probes.push_back({item.run, item.processor, item.port, item.index});
        }
        PROVLIN_ASSIGN_OR_RETURN(
            std::vector<std::vector<XformRecord>> results,
            store_.FindProducingBatch(probes));
        for (size_t i = 0; i < out_items.size(); ++i) {
          const Pending& item = out_items[i];
          const std::vector<XformRecord>& rows = results[i];
          if (item.processor == workflow_sym_) {
            if (IsInteresting(interest_, workflow_sym_)) {
              PROVLIN_RETURN_IF_ERROR(AppendSourceBindings(
                  store_, RunName(item.run), rows, item.index, &bindings_));
            }
            continue;
          }
          bool interesting = IsInteresting(interest_, item.processor);
          std::set<std::pair<SymbolId, Index>> successors;
          for (const XformRecord& row : rows) {
            if (!row.has_in) continue;
            if (interesting) {
              PROVLIN_RETURN_IF_ERROR(AppendInputBinding(
                  store_, RunName(item.run), row, &bindings_));
            }
            successors.insert({row.in_port, row.in_index});
          }
          for (const auto& [in_port, idx] : successors) {
            next.push_back(
                {item.run, item.processor, in_port, idx, Side::kInput});
          }
        }
      }

      if (!in_items.empty()) {
        std::vector<provenance::PortProbe> probes;
        probes.reserve(in_items.size());
        for (const Pending& item : in_items) {
          probes.push_back({item.run, item.processor, item.port, item.index});
        }
        PROVLIN_ASSIGN_OR_RETURN(
            std::vector<std::vector<XferRecord>> results,
            store_.FindXfersIntoBatch(probes));
        for (size_t i = 0; i < in_items.size(); ++i) {
          const Pending& item = in_items[i];
          std::set<std::pair<SymbolId, SymbolId>> sources;
          for (const XferRecord& row : results[i]) {
            sources.insert({row.src_proc, row.src_port});
          }
          for (const auto& [src_proc, src_port] : sources) {
            next.push_back(
                {item.run, src_proc, src_port, item.index, Side::kOutput});
          }
        }
      }

      frontier = std::move(next);
    }
    return Status::OK();
  }

  std::vector<LineageBinding>& bindings() { return bindings_; }
  uint64_t steps() const { return steps_; }

 private:
  struct Pending {
    SymbolId run;
    SymbolId processor;
    SymbolId port;
    Index index;
    Side side;
  };

  const std::string& RunName(SymbolId run) const {
    return run_names_.at(run);
  }

  const provenance::TraceStore& store_;
  SymbolId workflow_sym_;
  InterestIds interest_;
  std::map<SymbolId, std::string> run_names_;
  std::vector<Pending> frontier_;
  std::set<std::tuple<SymbolId, SymbolId, SymbolId, common::IndexId, bool>>
      visited_;
  std::vector<LineageBinding> bindings_;
  uint64_t steps_ = 0;
};

}  // namespace

Result<LineageAnswer> NaiveLineage::QueryOneRun(
    const std::string& run, const workflow::PortRef& target, const Index& q,
    const InterestSet& interest, ProbeExecution mode) const {
  PROVLIN_TRACE_SPAN_VAR(span, "ni/query_run");
  if (span.active()) span.SetArgs("run=" + run);
  LineageAnswer answer;
  // Probe counts come from the calling thread's counters, not the global
  // aggregate: under the concurrent service the global delta would charge
  // this query with every other worker's probes.
  storage::ThreadStats before = storage::ThisThreadStats();
  WallTimer timer;

  // Resolve the query to id space once; names the trace never recorded
  // cannot have lineage, so the answer is empty.
  auto run_sym = store_->LookupSymbol(run);
  auto proc_sym = store_->LookupSymbol(target.processor);
  auto port_sym = store_->LookupSymbol(target.port);
  if (!run_sym || !proc_sym || !port_sym) {
    answer.timing.t2_ms = timer.ElapsedMillis();
    return answer;
  }

  Traversal traversal(*store_, interest);

  // Auto-detect the starting side: a port with producing xform rows is an
  // output (includes workflow inputs via their source rows); anything
  // else is treated as an arc destination.
  PROVLIN_ASSIGN_OR_RETURN(
      std::vector<XformRecord> probe,
      store_->FindProducing(*run_sym, *proc_sym, *port_sym, q));
  Side side = probe.empty() ? Side::kInput : Side::kOutput;
  if (mode == ProbeExecution::kBatched) {
    traversal.Seed(run, *run_sym, *proc_sym, *port_sym, q, side);
    PROVLIN_RETURN_IF_ERROR(traversal.RunBatched());
  } else {
    traversal.AddRun(run, *run_sym);
    PROVLIN_RETURN_IF_ERROR(
        traversal.Visit(*run_sym, *proc_sym, *port_sym, q, side));
  }

  // Per-run bindings stay raw: Query() normalizes once over the combined
  // answer, and normalizing twice is pure duplicated sort/dedup work.
  answer.bindings = std::move(traversal.bindings());
  answer.timing.t2_ms = timer.ElapsedMillis();
  answer.timing.graph_steps = traversal.steps();
  answer.timing.trace_probes =
      storage::ThisThreadStats().probes() - before.probes();
  answer.timing.trace_descents =
      storage::ThisThreadStats().descents - before.descents;
  return answer;
}

Result<LineageAnswer> NaiveLineage::Query(const LineageRequest& request) const {
  // Batched mode traverses all requested runs as one frontier: each
  // level's probes for every run go to the store as one run-qualified
  // batch, which a sharded store splits by owning shard and fans out
  // concurrently. Runs still expand independently (the visited set is
  // run-qualified), so the node set and bindings match the per-run loop.
  if (mode_ == ProbeExecution::kBatched && request.runs.size() > 1) {
    PROVLIN_TRACE_SPAN_VAR(span, "ni/query_multirun");
    if (span.active()) {
      span.SetArgs("runs=" + std::to_string(request.runs.size()));
    }
    LineageAnswer combined;
    storage::ThreadStats before = storage::ThisThreadStats();
    WallTimer timer;
    auto proc_sym = store_->LookupSymbol(request.target.processor);
    auto port_sym = store_->LookupSymbol(request.target.port);
    if (proc_sym && port_sym) {
      Traversal traversal(*store_, request.interest);
      // Side auto-detection batches too: one producing probe per run.
      std::vector<std::string> runs;
      std::vector<provenance::PortProbe> probes;
      for (const std::string& run : request.runs) {
        auto run_sym = store_->LookupSymbol(run);
        if (!run_sym) continue;  // never recorded: no lineage
        runs.push_back(run);
        probes.push_back({*run_sym, *proc_sym, *port_sym, request.index});
      }
      PROVLIN_ASSIGN_OR_RETURN(
          std::vector<std::vector<XformRecord>> detect,
          store_->FindProducingBatch(probes));
      for (size_t i = 0; i < runs.size(); ++i) {
        Side side = detect[i].empty() ? Side::kInput : Side::kOutput;
        traversal.Seed(runs[i], probes[i].run, *proc_sym, *port_sym,
                       request.index, side);
      }
      PROVLIN_RETURN_IF_ERROR(traversal.RunBatched());
      combined.bindings = std::move(traversal.bindings());
      combined.timing.graph_steps = traversal.steps();
    }
    combined.timing.t2_ms = timer.ElapsedMillis();
    combined.timing.trace_probes =
        storage::ThisThreadStats().probes() - before.probes();
    combined.timing.trace_descents =
        storage::ThisThreadStats().descents - before.descents;
    NormalizeBindings(&combined.bindings);
    PublishTiming(name(), combined.timing);
    return combined;
  }

  LineageAnswer combined;
  for (const std::string& run : request.runs) {
    PROVLIN_ASSIGN_OR_RETURN(
        LineageAnswer one, QueryOneRun(run, request.target, request.index,
                                       request.interest, mode_));
    combined.bindings.insert(combined.bindings.end(), one.bindings.begin(),
                             one.bindings.end());
    combined.timing.t1_ms += one.timing.t1_ms;
    combined.timing.t2_ms += one.timing.t2_ms;
    combined.timing.trace_probes += one.timing.trace_probes;
    combined.timing.graph_steps += one.timing.graph_steps;
    combined.timing.trace_descents += one.timing.trace_descents;
  }
  NormalizeBindings(&combined.bindings);
  PublishTiming(name(), combined.timing);
  return combined;
}

}  // namespace provlin::lineage
