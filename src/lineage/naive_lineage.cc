#include "lineage/naive_lineage.h"

#include <set>

#include "common/timer.h"
#include "lineage/binding_retrieval.h"

namespace provlin::lineage {

using provenance::XferRecord;
using provenance::XformRecord;
using workflow::kWorkflowProcessor;
using workflow::PortRef;

namespace {

/// Which side of a processor a visited binding sits on: output-port
/// bindings invert xform events (Def. 1 case 1), input-port bindings hop
/// an arc (case 2).
enum class Side { kOutput, kInput };

class Traversal {
 public:
  Traversal(const provenance::TraceStore& store, std::string run,
            InterestSet interest)
      : store_(store), run_(std::move(run)), interest_(std::move(interest)) {}

  Status Visit(const PortRef& port, const Index& q, Side side) {
    ++steps_;
    std::string key = port.ToString() + "\x1f" + q.Encode() + "\x1f" +
                      (side == Side::kOutput ? "o" : "i");
    if (!visited_.insert(key).second) return Status::OK();

    if (side == Side::kOutput) {
      PROVLIN_ASSIGN_OR_RETURN(
          std::vector<XformRecord> rows,
          store_.FindProducing(run_, port.processor, port.port, q));
      if (port.processor == kWorkflowProcessor) {
        // Workflow-input source rows: traversal terminates here.
        if (IsInteresting(interest_, kWorkflowProcessor)) {
          PROVLIN_RETURN_IF_ERROR(
              AppendSourceBindings(store_, run_, rows, q, &bindings_));
        }
        return Status::OK();
      }
      bool interesting = IsInteresting(interest_, port.processor);
      std::set<std::pair<std::string, std::string>> next;  // (port, index)
      for (const XformRecord& row : rows) {
        if (!row.has_in) continue;
        if (interesting) {
          PROVLIN_RETURN_IF_ERROR(
              AppendInputBinding(store_, run_, row, &bindings_));
        }
        next.insert({row.in_port, row.in_index.Encode()});
      }
      for (const auto& [in_port, enc] : next) {
        PROVLIN_ASSIGN_OR_RETURN(Index idx, Index::Decode(enc));
        PROVLIN_RETURN_IF_ERROR(
            Visit(PortRef{port.processor, in_port}, idx, Side::kInput));
      }
      return Status::OK();
    }

    // Input side: hop the arc backwards. Indices transfer identically,
    // so the recursion keeps q; the xfer rows identify the source port.
    PROVLIN_ASSIGN_OR_RETURN(
        std::vector<XferRecord> rows,
        store_.FindXfersInto(run_, port.processor, port.port, q));
    std::set<std::pair<std::string, std::string>> sources;
    for (const XferRecord& row : rows) {
      sources.insert({row.src_proc, row.src_port});
    }
    for (const auto& [src_proc, src_port] : sources) {
      PROVLIN_RETURN_IF_ERROR(
          Visit(PortRef{src_proc, src_port}, q, Side::kOutput));
    }
    return Status::OK();
  }

  std::vector<LineageBinding>& bindings() { return bindings_; }
  uint64_t steps() const { return steps_; }

 private:
  const provenance::TraceStore& store_;
  std::string run_;
  InterestSet interest_;
  std::set<std::string> visited_;
  std::vector<LineageBinding> bindings_;
  uint64_t steps_ = 0;
};

}  // namespace

Result<LineageAnswer> NaiveLineage::Query(const std::string& run,
                                          const PortRef& target,
                                          const Index& q,
                                          const InterestSet& interest) const {
  LineageAnswer answer;
  storage::TableStats before = store_->db()->AggregateStats();
  WallTimer timer;

  Traversal traversal(*store_, run, interest);

  // Auto-detect the starting side: a port with producing xform rows is an
  // output (includes workflow inputs via their source rows); anything
  // else is treated as an arc destination.
  PROVLIN_ASSIGN_OR_RETURN(
      std::vector<XformRecord> probe,
      store_->FindProducing(run, target.processor, target.port, q));
  Side side = probe.empty() ? Side::kInput : Side::kOutput;
  PROVLIN_RETURN_IF_ERROR(traversal.Visit(target, q, side));

  answer.bindings = std::move(traversal.bindings());
  NormalizeBindings(&answer.bindings);
  answer.timing.t2_ms = timer.ElapsedMillis();
  answer.timing.graph_steps = traversal.steps();
  storage::TableStats after = store_->db()->AggregateStats();
  answer.timing.trace_probes =
      (after.index_probes - before.index_probes) +
      (after.full_scans - before.full_scans);
  return answer;
}

Result<LineageAnswer> NaiveLineage::QueryMultiRun(
    const std::vector<std::string>& runs, const PortRef& target,
    const Index& q, const InterestSet& interest) const {
  LineageAnswer combined;
  for (const std::string& run : runs) {
    PROVLIN_ASSIGN_OR_RETURN(LineageAnswer one,
                             Query(run, target, q, interest));
    combined.bindings.insert(combined.bindings.end(), one.bindings.begin(),
                             one.bindings.end());
    combined.timing.t1_ms += one.timing.t1_ms;
    combined.timing.t2_ms += one.timing.t2_ms;
    combined.timing.trace_probes += one.timing.trace_probes;
    combined.timing.graph_steps += one.timing.graph_steps;
  }
  NormalizeBindings(&combined.bindings);
  return combined;
}

}  // namespace provlin::lineage
