#include "lineage/wire.h"

#include <utility>

namespace provlin::lineage::wire {
namespace {

/// Sanity ceiling on decoded element counts (runs, interest names,
/// bindings, index components). The length prefixes below are all
/// validated against the remaining payload before anything is
/// allocated, but a count field costs only 4 bytes to forge — this cap
/// keeps a hostile frame from even *starting* a million-element loop.
constexpr uint32_t kMaxElements = 1u << 20;

Result<uint32_t> ReadCount(storage::BinaryReader* r, const char* what) {
  PROVLIN_ASSIGN_OR_RETURN(uint32_t n, r->ReadU32());
  if (n > kMaxElements) {
    return Status::Corruption(std::string("implausible ") + what +
                              " count " + std::to_string(n));
  }
  return n;
}

void EncodeIndex(const Index& index, storage::BinaryWriter* w) {
  w->WriteU32(static_cast<uint32_t>(index.length()));
  for (int32_t part : index.parts()) {
    w->WriteU32(static_cast<uint32_t>(part));
  }
}

Result<Index> DecodeIndex(storage::BinaryReader* r) {
  PROVLIN_ASSIGN_OR_RETURN(uint32_t n, ReadCount(r, "index component"));
  std::vector<int32_t> parts;
  parts.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    PROVLIN_ASSIGN_OR_RETURN(uint32_t part, r->ReadU32());
    parts.push_back(static_cast<int32_t>(part));
  }
  return Index(std::move(parts));
}

void EncodePortRef(const workflow::PortRef& port, storage::BinaryWriter* w) {
  w->WriteString(port.processor);
  w->WriteString(port.port);
}

Result<workflow::PortRef> DecodePortRef(storage::BinaryReader* r) {
  workflow::PortRef port;
  PROVLIN_ASSIGN_OR_RETURN(port.processor, r->ReadString());
  PROVLIN_ASSIGN_OR_RETURN(port.port, r->ReadString());
  return port;
}

void EncodeTiming(const LineageTiming& t, storage::BinaryWriter* w) {
  w->WriteDouble(t.t1_ms);
  w->WriteDouble(t.t2_ms);
  w->WriteU64(t.trace_probes);
  w->WriteU64(t.trace_descents);
  w->WriteU64(t.graph_steps);
  w->WriteU8(t.plan_cache_hit ? 1 : 0);
}

Result<LineageTiming> DecodeTiming(storage::BinaryReader* r) {
  LineageTiming t;
  PROVLIN_ASSIGN_OR_RETURN(t.t1_ms, r->ReadDouble());
  PROVLIN_ASSIGN_OR_RETURN(t.t2_ms, r->ReadDouble());
  PROVLIN_ASSIGN_OR_RETURN(t.trace_probes, r->ReadU64());
  PROVLIN_ASSIGN_OR_RETURN(t.trace_descents, r->ReadU64());
  PROVLIN_ASSIGN_OR_RETURN(t.graph_steps, r->ReadU64());
  PROVLIN_ASSIGN_OR_RETURN(uint8_t hit, r->ReadU8());
  if (hit > 1) {
    return Status::Corruption("plan_cache_hit flag is " +
                              std::to_string(hit) + ", not 0/1");
  }
  t.plan_cache_hit = hit == 1;
  return t;
}

void WriteHeader(uint8_t type, uint64_t request_id,
                 storage::BinaryWriter* w) {
  w->WriteU8(kWireVersion);
  w->WriteU8(type);
  w->WriteU64(request_id);
}

/// Reads and validates the common header, returning the request id.
/// The version byte is checked before anything else so a v2 frame is
/// rejected as unsupported-version, never misparsed.
Result<uint64_t> ReadHeader(storage::BinaryReader* r, MessageType expected) {
  PROVLIN_ASSIGN_OR_RETURN(uint8_t version, r->ReadU8());
  if (version != kWireVersion) {
    return Status::InvalidArgument("unsupported wire version " +
                                   std::to_string(version) + " (expected " +
                                   std::to_string(kWireVersion) + ")");
  }
  PROVLIN_ASSIGN_OR_RETURN(uint8_t type, r->ReadU8());
  if (type != static_cast<uint8_t>(expected)) {
    return Status::InvalidArgument("unexpected message type " +
                                   std::to_string(type));
  }
  return r->ReadU64();
}

Status ExpectEnd(const storage::BinaryReader& r) {
  if (!r.AtEnd()) {
    return Status::Corruption("trailing garbage after payload at offset " +
                              std::to_string(r.position()));
  }
  return Status::OK();
}

}  // namespace

std::string_view ErrorCodeName(ErrorCode code) {
  switch (code) {
    case ErrorCode::kOverloaded:
      return "OVERLOADED";
    case ErrorCode::kBadRequest:
      return "BAD_REQUEST";
    case ErrorCode::kNotFound:
      return "NOT_FOUND";
    case ErrorCode::kInternal:
      return "INTERNAL";
    case ErrorCode::kUnsupportedVersion:
      return "UNSUPPORTED_VERSION";
  }
  return "UNKNOWN";
}

void EncodeLineageRequest(const LineageRequest& request,
                          storage::BinaryWriter* w) {
  w->WriteU32(static_cast<uint32_t>(request.runs.size()));
  for (const std::string& run : request.runs) w->WriteString(run);
  EncodePortRef(request.target, w);
  EncodeIndex(request.index, w);
  w->WriteU32(static_cast<uint32_t>(request.interest.size()));
  for (const std::string& name : request.interest) w->WriteString(name);
}

Result<LineageRequest> DecodeLineageRequest(storage::BinaryReader* r) {
  LineageRequest request;
  PROVLIN_ASSIGN_OR_RETURN(uint32_t nruns, ReadCount(r, "run"));
  request.runs.reserve(nruns);
  for (uint32_t i = 0; i < nruns; ++i) {
    PROVLIN_ASSIGN_OR_RETURN(std::string run, r->ReadString());
    request.runs.push_back(std::move(run));
  }
  PROVLIN_ASSIGN_OR_RETURN(request.target, DecodePortRef(r));
  PROVLIN_ASSIGN_OR_RETURN(request.index, DecodeIndex(r));
  PROVLIN_ASSIGN_OR_RETURN(uint32_t ninterest, ReadCount(r, "interest"));
  for (uint32_t i = 0; i < ninterest; ++i) {
    PROVLIN_ASSIGN_OR_RETURN(std::string name, r->ReadString());
    request.interest.insert(std::move(name));
  }
  return request;
}

void EncodeLineageAnswer(const LineageAnswer& answer,
                         storage::BinaryWriter* w) {
  w->WriteU32(static_cast<uint32_t>(answer.bindings.size()));
  for (const LineageBinding& b : answer.bindings) {
    w->WriteString(b.run_id);
    EncodePortRef(b.port, w);
    EncodeIndex(b.index, w);
    w->WriteString(b.value_repr);
  }
  EncodeTiming(answer.timing, w);
}

Result<LineageAnswer> DecodeLineageAnswer(storage::BinaryReader* r) {
  LineageAnswer answer;
  PROVLIN_ASSIGN_OR_RETURN(uint32_t n, ReadCount(r, "binding"));
  answer.bindings.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    LineageBinding b;
    PROVLIN_ASSIGN_OR_RETURN(b.run_id, r->ReadString());
    PROVLIN_ASSIGN_OR_RETURN(b.port, DecodePortRef(r));
    PROVLIN_ASSIGN_OR_RETURN(b.index, DecodeIndex(r));
    PROVLIN_ASSIGN_OR_RETURN(b.value_repr, r->ReadString());
    answer.bindings.push_back(std::move(b));
  }
  PROVLIN_ASSIGN_OR_RETURN(answer.timing, DecodeTiming(r));
  return answer;
}

Status ResponseEnvelope::ToStatus() const {
  if (ok) return Status::OK();
  std::string detail(ErrorCodeName(code));
  if (!message.empty()) detail += ": " + message;
  switch (code) {
    case ErrorCode::kOverloaded:
      return Status::Unavailable(std::move(detail));
    case ErrorCode::kBadRequest:
    case ErrorCode::kUnsupportedVersion:
      return Status::InvalidArgument(std::move(detail));
    case ErrorCode::kNotFound:
      return Status::NotFound(std::move(detail));
    case ErrorCode::kInternal:
      return Status::Internal(std::move(detail));
  }
  return Status::Internal(std::move(detail));
}

std::string EncodeRequestEnvelope(const RequestEnvelope& envelope) {
  storage::BinaryWriter w;
  WriteHeader(static_cast<uint8_t>(MessageType::kRequest),
              envelope.request_id, &w);
  w.WriteString(envelope.engine);
  EncodeLineageRequest(envelope.request, &w);
  return w.buffer();
}

std::string EncodeAnswerResponse(uint64_t request_id,
                                 const LineageAnswer& answer) {
  storage::BinaryWriter w;
  WriteHeader(static_cast<uint8_t>(MessageType::kAnswer), request_id, &w);
  EncodeLineageAnswer(answer, &w);
  return w.buffer();
}

std::string EncodeErrorResponse(uint64_t request_id, ErrorCode code,
                                std::string_view message) {
  storage::BinaryWriter w;
  WriteHeader(static_cast<uint8_t>(MessageType::kError), request_id, &w);
  w.WriteU8(static_cast<uint8_t>(code));
  w.WriteString(message);
  return w.buffer();
}

Result<RequestEnvelope> DecodeRequestEnvelope(std::string_view payload) {
  storage::BinaryReader r(payload);
  RequestEnvelope envelope;
  PROVLIN_ASSIGN_OR_RETURN(envelope.request_id,
                           ReadHeader(&r, MessageType::kRequest));
  PROVLIN_ASSIGN_OR_RETURN(envelope.engine, r.ReadString());
  PROVLIN_ASSIGN_OR_RETURN(envelope.request, DecodeLineageRequest(&r));
  PROVLIN_RETURN_IF_ERROR(ExpectEnd(r));
  return envelope;
}

Result<ResponseEnvelope> DecodeResponseEnvelope(std::string_view payload) {
  storage::BinaryReader r(payload);
  ResponseEnvelope envelope;
  // Responses carry either message type; peek the header by hand since
  // ReadHeader pins one expected type.
  PROVLIN_ASSIGN_OR_RETURN(uint8_t version, r.ReadU8());
  if (version != kWireVersion) {
    return Status::InvalidArgument("unsupported wire version " +
                                   std::to_string(version));
  }
  PROVLIN_ASSIGN_OR_RETURN(uint8_t type, r.ReadU8());
  PROVLIN_ASSIGN_OR_RETURN(envelope.request_id, r.ReadU64());
  if (type == static_cast<uint8_t>(MessageType::kAnswer)) {
    envelope.ok = true;
    PROVLIN_ASSIGN_OR_RETURN(envelope.answer, DecodeLineageAnswer(&r));
  } else if (type == static_cast<uint8_t>(MessageType::kError)) {
    envelope.ok = false;
    PROVLIN_ASSIGN_OR_RETURN(uint8_t code, r.ReadU8());
    if (code < static_cast<uint8_t>(ErrorCode::kOverloaded) ||
        code > static_cast<uint8_t>(ErrorCode::kUnsupportedVersion)) {
      return Status::Corruption("unknown error code " + std::to_string(code));
    }
    envelope.code = static_cast<ErrorCode>(code);
    PROVLIN_ASSIGN_OR_RETURN(envelope.message, r.ReadString());
  } else {
    return Status::InvalidArgument("unexpected message type " +
                                   std::to_string(type));
  }
  PROVLIN_RETURN_IF_ERROR(ExpectEnd(r));
  return envelope;
}

}  // namespace provlin::lineage::wire
