#include "lineage/wire.h"

#include <cmath>
#include <utility>

namespace provlin::lineage::wire {
namespace {

/// Sanity ceiling on decoded element counts (runs, interest names,
/// bindings, index components, shard costs). The length prefixes below
/// are all validated against the remaining payload before anything is
/// allocated, but a count field costs only 4 bytes to forge — this cap
/// keeps a hostile frame from even *starting* a million-element loop.
constexpr uint32_t kMaxElements = 1u << 20;

Result<uint32_t> ReadCount(storage::BinaryReader* r, const char* what) {
  PROVLIN_ASSIGN_OR_RETURN(uint32_t n, r->ReadU32());
  if (n > kMaxElements) {
    return Status::Corruption(std::string("implausible ") + what +
                              " count " + std::to_string(n));
  }
  return n;
}

/// Durations on the wire must be finite and non-negative: a NaN or a
/// negative phase would poison every aggregate a client computes.
Result<double> ReadDurationMs(storage::BinaryReader* r, const char* what) {
  PROVLIN_ASSIGN_OR_RETURN(double ms, r->ReadDouble());
  if (!std::isfinite(ms) || ms < 0) {
    return Status::Corruption(std::string("implausible ") + what +
                              " duration");
  }
  return ms;
}

void EncodeIndex(const Index& index, storage::BinaryWriter* w) {
  w->WriteU32(static_cast<uint32_t>(index.length()));
  for (int32_t part : index.parts()) {
    w->WriteU32(static_cast<uint32_t>(part));
  }
}

Result<Index> DecodeIndex(storage::BinaryReader* r) {
  PROVLIN_ASSIGN_OR_RETURN(uint32_t n, ReadCount(r, "index component"));
  std::vector<int32_t> parts;
  parts.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    PROVLIN_ASSIGN_OR_RETURN(uint32_t part, r->ReadU32());
    parts.push_back(static_cast<int32_t>(part));
  }
  return Index(std::move(parts));
}

void EncodePortRef(const workflow::PortRef& port, storage::BinaryWriter* w) {
  w->WriteString(port.processor);
  w->WriteString(port.port);
}

Result<workflow::PortRef> DecodePortRef(storage::BinaryReader* r) {
  workflow::PortRef port;
  PROVLIN_ASSIGN_OR_RETURN(port.processor, r->ReadString());
  PROVLIN_ASSIGN_OR_RETURN(port.port, r->ReadString());
  return port;
}

void EncodeTiming(const LineageTiming& t, storage::BinaryWriter* w) {
  w->WriteDouble(t.t1_ms);
  w->WriteDouble(t.t2_ms);
  w->WriteU64(t.trace_probes);
  w->WriteU64(t.trace_descents);
  w->WriteU64(t.graph_steps);
  w->WriteU8(t.plan_cache_hit ? 1 : 0);
}

Result<LineageTiming> DecodeTiming(storage::BinaryReader* r) {
  LineageTiming t;
  PROVLIN_ASSIGN_OR_RETURN(t.t1_ms, r->ReadDouble());
  PROVLIN_ASSIGN_OR_RETURN(t.t2_ms, r->ReadDouble());
  PROVLIN_ASSIGN_OR_RETURN(t.trace_probes, r->ReadU64());
  PROVLIN_ASSIGN_OR_RETURN(t.trace_descents, r->ReadU64());
  PROVLIN_ASSIGN_OR_RETURN(t.graph_steps, r->ReadU64());
  PROVLIN_ASSIGN_OR_RETURN(uint8_t hit, r->ReadU8());
  if (hit > 1) {
    return Status::Corruption("plan_cache_hit flag is " +
                              std::to_string(hit) + ", not 0/1");
  }
  t.plan_cache_hit = hit == 1;
  return t;
}

void WriteHeader(uint8_t version, uint8_t type, uint64_t request_id,
                 storage::BinaryWriter* w) {
  w->WriteU8(version);
  w->WriteU8(type);
  w->WriteU64(request_id);
}

/// Reads and validates the version byte, which gates everything else:
/// an unsupported version is rejected before a single body byte is
/// parsed.
Result<uint8_t> ReadVersion(storage::BinaryReader* r) {
  PROVLIN_ASSIGN_OR_RETURN(uint8_t version, r->ReadU8());
  if (!IsSupportedWireVersion(version)) {
    return Status::InvalidArgument("unsupported wire version " +
                                   std::to_string(version) + " (expected " +
                                   std::to_string(kWireVersionLegacy) + " or " +
                                   std::to_string(kWireVersion) + ")");
  }
  return version;
}

/// Reads and validates the common header for a single expected type,
/// returning {version, request id}.
struct Header {
  uint8_t version = 0;
  uint64_t request_id = 0;
};

Result<Header> ReadHeader(storage::BinaryReader* r, MessageType expected) {
  Header h;
  PROVLIN_ASSIGN_OR_RETURN(h.version, ReadVersion(r));
  PROVLIN_ASSIGN_OR_RETURN(uint8_t type, r->ReadU8());
  if (type != static_cast<uint8_t>(expected)) {
    return Status::InvalidArgument("unexpected message type " +
                                   std::to_string(type));
  }
  PROVLIN_ASSIGN_OR_RETURN(h.request_id, r->ReadU64());
  return h;
}

Status ExpectEnd(const storage::BinaryReader& r) {
  if (!r.AtEnd()) {
    return Status::Corruption("trailing garbage after payload at offset " +
                              std::to_string(r.position()));
  }
  return Status::OK();
}

}  // namespace

std::string_view ErrorCodeName(ErrorCode code) {
  switch (code) {
    case ErrorCode::kOverloaded:
      return "OVERLOADED";
    case ErrorCode::kBadRequest:
      return "BAD_REQUEST";
    case ErrorCode::kNotFound:
      return "NOT_FOUND";
    case ErrorCode::kInternal:
      return "INTERNAL";
    case ErrorCode::kUnsupportedVersion:
      return "UNSUPPORTED_VERSION";
  }
  return "UNKNOWN";
}

void EncodeLineageRequest(const LineageRequest& request,
                          storage::BinaryWriter* w) {
  w->WriteU32(static_cast<uint32_t>(request.runs.size()));
  for (const std::string& run : request.runs) w->WriteString(run);
  EncodePortRef(request.target, w);
  EncodeIndex(request.index, w);
  w->WriteU32(static_cast<uint32_t>(request.interest.size()));
  for (const std::string& name : request.interest) w->WriteString(name);
}

Result<LineageRequest> DecodeLineageRequest(storage::BinaryReader* r) {
  LineageRequest request;
  PROVLIN_ASSIGN_OR_RETURN(uint32_t nruns, ReadCount(r, "run"));
  request.runs.reserve(nruns);
  for (uint32_t i = 0; i < nruns; ++i) {
    PROVLIN_ASSIGN_OR_RETURN(std::string run, r->ReadString());
    request.runs.push_back(std::move(run));
  }
  PROVLIN_ASSIGN_OR_RETURN(request.target, DecodePortRef(r));
  PROVLIN_ASSIGN_OR_RETURN(request.index, DecodeIndex(r));
  PROVLIN_ASSIGN_OR_RETURN(uint32_t ninterest, ReadCount(r, "interest"));
  for (uint32_t i = 0; i < ninterest; ++i) {
    PROVLIN_ASSIGN_OR_RETURN(std::string name, r->ReadString());
    // The interest set is encoded in sorted order (std::set iteration);
    // requiring strictly-increasing names on decode keeps the format
    // canonical — encode(decode(x)) == x for every accepted payload —
    // which the served byte-comparison tests and the fuzz harness rely
    // on. Found by fuzz_wire: an unsorted or duplicated sequence used
    // to decode fine but re-encode differently.
    if (!request.interest.empty() && name <= *request.interest.rbegin()) {
      return Status::Corruption(
          "interest names not in canonical sorted order");
    }
    request.interest.insert(std::move(name));
  }
  return request;
}

void EncodeLineageAnswer(const LineageAnswer& answer,
                         storage::BinaryWriter* w) {
  w->WriteU32(static_cast<uint32_t>(answer.bindings.size()));
  for (const LineageBinding& b : answer.bindings) {
    w->WriteString(b.run_id);
    EncodePortRef(b.port, w);
    EncodeIndex(b.index, w);
    w->WriteString(b.value_repr);
  }
  EncodeTiming(answer.timing, w);
}

Result<LineageAnswer> DecodeLineageAnswer(storage::BinaryReader* r) {
  LineageAnswer answer;
  PROVLIN_ASSIGN_OR_RETURN(uint32_t n, ReadCount(r, "binding"));
  answer.bindings.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    LineageBinding b;
    PROVLIN_ASSIGN_OR_RETURN(b.run_id, r->ReadString());
    PROVLIN_ASSIGN_OR_RETURN(b.port, DecodePortRef(r));
    PROVLIN_ASSIGN_OR_RETURN(b.index, DecodeIndex(r));
    PROVLIN_ASSIGN_OR_RETURN(b.value_repr, r->ReadString());
    answer.bindings.push_back(std::move(b));
  }
  PROVLIN_ASSIGN_OR_RETURN(answer.timing, DecodeTiming(r));
  return answer;
}

void EncodeRequestTimeline(const RequestTimeline& t,
                           storage::BinaryWriter* w) {
  w->WriteDouble(t.queue_ms);
  w->WriteDouble(t.dispatch_ms);
  w->WriteDouble(t.execute_ms);
  w->WriteDouble(t.serialize_ms);
  w->WriteDouble(t.write_ms);
  w->WriteDouble(t.total_ms);
  w->WriteU64(t.trace_probes);
  w->WriteU64(t.trace_descents);
  w->WriteU64(t.rows_examined);
  w->WriteU64(t.hot_probes);
  w->WriteU64(t.sealed_probes);
  w->WriteU32(static_cast<uint32_t>(t.shards.size()));
  for (const ShardCost& s : t.shards) {
    w->WriteU32(s.shard);
    w->WriteU64(s.probes);
    w->WriteU64(s.descents);
    w->WriteU64(s.rows);
  }
}

Result<RequestTimeline> DecodeRequestTimeline(storage::BinaryReader* r) {
  RequestTimeline t;
  PROVLIN_ASSIGN_OR_RETURN(t.queue_ms, ReadDurationMs(r, "queue"));
  PROVLIN_ASSIGN_OR_RETURN(t.dispatch_ms, ReadDurationMs(r, "dispatch"));
  PROVLIN_ASSIGN_OR_RETURN(t.execute_ms, ReadDurationMs(r, "execute"));
  PROVLIN_ASSIGN_OR_RETURN(t.serialize_ms, ReadDurationMs(r, "serialize"));
  PROVLIN_ASSIGN_OR_RETURN(t.write_ms, ReadDurationMs(r, "write"));
  PROVLIN_ASSIGN_OR_RETURN(t.total_ms, ReadDurationMs(r, "total"));
  PROVLIN_ASSIGN_OR_RETURN(t.trace_probes, r->ReadU64());
  PROVLIN_ASSIGN_OR_RETURN(t.trace_descents, r->ReadU64());
  PROVLIN_ASSIGN_OR_RETURN(t.rows_examined, r->ReadU64());
  PROVLIN_ASSIGN_OR_RETURN(t.hot_probes, r->ReadU64());
  PROVLIN_ASSIGN_OR_RETURN(t.sealed_probes, r->ReadU64());
  PROVLIN_ASSIGN_OR_RETURN(uint32_t nshards, ReadCount(r, "shard cost"));
  t.shards.reserve(nshards);
  for (uint32_t i = 0; i < nshards; ++i) {
    ShardCost s;
    PROVLIN_ASSIGN_OR_RETURN(s.shard, r->ReadU32());
    PROVLIN_ASSIGN_OR_RETURN(s.probes, r->ReadU64());
    PROVLIN_ASSIGN_OR_RETURN(s.descents, r->ReadU64());
    PROVLIN_ASSIGN_OR_RETURN(s.rows, r->ReadU64());
    t.shards.push_back(s);
  }
  return t;
}

Status ResponseEnvelope::ToStatus() const {
  if (ok) return Status::OK();
  std::string detail(ErrorCodeName(code));
  if (!message.empty()) detail += ": " + message;
  switch (code) {
    case ErrorCode::kOverloaded:
      return Status::Unavailable(std::move(detail));
    case ErrorCode::kBadRequest:
    case ErrorCode::kUnsupportedVersion:
      return Status::InvalidArgument(std::move(detail));
    case ErrorCode::kNotFound:
      return Status::NotFound(std::move(detail));
    case ErrorCode::kInternal:
      return Status::Internal(std::move(detail));
  }
  return Status::Internal(std::move(detail));
}

std::string EncodeRequestEnvelope(const RequestEnvelope& envelope) {
  const uint8_t version = IsSupportedWireVersion(envelope.version)
                              ? envelope.version
                              : kWireVersion;
  storage::BinaryWriter w;
  WriteHeader(version, static_cast<uint8_t>(MessageType::kRequest),
              envelope.request_id, &w);
  if (version >= kWireVersion) {
    w.WriteU8(envelope.want_timeline ? kRequestFlagWantTimeline : 0);
  }
  w.WriteString(envelope.engine);
  EncodeLineageRequest(envelope.request, &w);
  return w.buffer();
}

std::string EncodeAnswerResponse(uint64_t request_id,
                                 const LineageAnswer& answer) {
  storage::BinaryWriter w;
  WriteHeader(kWireVersionLegacy, static_cast<uint8_t>(MessageType::kAnswer),
              request_id, &w);
  EncodeLineageAnswer(answer, &w);
  return w.buffer();
}

std::string EncodeAnswerResponseV2(uint64_t request_id,
                                   const LineageAnswer& answer,
                                   const RequestTimeline* timeline) {
  storage::BinaryWriter w;
  WriteHeader(kWireVersion, static_cast<uint8_t>(MessageType::kAnswer),
              request_id, &w);
  EncodeLineageAnswer(answer, &w);
  w.WriteU8(timeline != nullptr ? 1 : 0);
  if (timeline != nullptr) EncodeRequestTimeline(*timeline, &w);
  return w.buffer();
}

std::string EncodeErrorResponse(uint64_t request_id, ErrorCode code,
                                std::string_view message, uint8_t version) {
  if (!IsSupportedWireVersion(version)) version = kWireVersionLegacy;
  storage::BinaryWriter w;
  WriteHeader(version, static_cast<uint8_t>(MessageType::kError), request_id,
              &w);
  w.WriteU8(static_cast<uint8_t>(code));
  w.WriteString(message);
  return w.buffer();
}

std::string EncodeStatsRequest(const StatsRequest& request) {
  storage::BinaryWriter w;
  WriteHeader(kWireVersion, static_cast<uint8_t>(MessageType::kStatsRequest),
              request.request_id, &w);
  w.WriteU8(request.want);
  return w.buffer();
}

std::string EncodeStatsResponse(const StatsResponse& response) {
  storage::BinaryWriter w;
  WriteHeader(kWireVersion, static_cast<uint8_t>(MessageType::kStatsResponse),
              response.request_id, &w);
  w.WriteU8(response.has_metrics ? 1 : 0);
  if (response.has_metrics) {
    w.WriteString(response.prometheus_text);
    w.WriteString(response.metrics_json);
  }
  w.WriteU8(response.has_trace ? 1 : 0);
  if (response.has_trace) {
    w.WriteString(response.trace_json);
    w.WriteU64(response.trace_events);
    w.WriteU64(response.trace_dropped);
  }
  return w.buffer();
}

Result<RequestEnvelope> DecodeRequestEnvelope(std::string_view payload) {
  storage::BinaryReader r(payload);
  RequestEnvelope envelope;
  PROVLIN_ASSIGN_OR_RETURN(Header h, ReadHeader(&r, MessageType::kRequest));
  envelope.version = h.version;
  envelope.request_id = h.request_id;
  if (h.version >= kWireVersion) {
    PROVLIN_ASSIGN_OR_RETURN(uint8_t flags, r.ReadU8());
    if ((flags & ~kKnownRequestFlags) != 0) {
      return Status::Corruption("unknown request flags 0x" +
                                std::to_string(flags));
    }
    envelope.want_timeline = (flags & kRequestFlagWantTimeline) != 0;
  }
  PROVLIN_ASSIGN_OR_RETURN(envelope.engine, r.ReadString());
  PROVLIN_ASSIGN_OR_RETURN(envelope.request, DecodeLineageRequest(&r));
  PROVLIN_RETURN_IF_ERROR(ExpectEnd(r));
  return envelope;
}

Result<ResponseEnvelope> DecodeResponseEnvelope(std::string_view payload) {
  storage::BinaryReader r(payload);
  ResponseEnvelope envelope;
  // Responses carry either message type; peek the header by hand since
  // ReadHeader pins one expected type.
  PROVLIN_ASSIGN_OR_RETURN(envelope.version, ReadVersion(&r));
  PROVLIN_ASSIGN_OR_RETURN(uint8_t type, r.ReadU8());
  PROVLIN_ASSIGN_OR_RETURN(envelope.request_id, r.ReadU64());
  if (type == static_cast<uint8_t>(MessageType::kAnswer)) {
    envelope.ok = true;
    PROVLIN_ASSIGN_OR_RETURN(envelope.answer, DecodeLineageAnswer(&r));
    if (envelope.version >= kWireVersion) {
      PROVLIN_ASSIGN_OR_RETURN(uint8_t has, r.ReadU8());
      if (has > 1) {
        return Status::Corruption("timeline flag is " + std::to_string(has) +
                                  ", not 0/1");
      }
      envelope.has_timeline = has == 1;
      if (envelope.has_timeline) {
        PROVLIN_ASSIGN_OR_RETURN(envelope.timeline, DecodeRequestTimeline(&r));
      }
    }
  } else if (type == static_cast<uint8_t>(MessageType::kError)) {
    envelope.ok = false;
    PROVLIN_ASSIGN_OR_RETURN(uint8_t code, r.ReadU8());
    if (code < static_cast<uint8_t>(ErrorCode::kOverloaded) ||
        code > static_cast<uint8_t>(ErrorCode::kUnsupportedVersion)) {
      return Status::Corruption("unknown error code " + std::to_string(code));
    }
    envelope.code = static_cast<ErrorCode>(code);
    PROVLIN_ASSIGN_OR_RETURN(envelope.message, r.ReadString());
  } else {
    return Status::InvalidArgument("unexpected message type " +
                                   std::to_string(type));
  }
  PROVLIN_RETURN_IF_ERROR(ExpectEnd(r));
  return envelope;
}

Result<StatsRequest> DecodeStatsRequest(std::string_view payload) {
  storage::BinaryReader r(payload);
  StatsRequest request;
  PROVLIN_ASSIGN_OR_RETURN(Header h,
                           ReadHeader(&r, MessageType::kStatsRequest));
  if (h.version < kWireVersion) {
    return Status::InvalidArgument("STATS requires wire version " +
                                   std::to_string(kWireVersion));
  }
  request.request_id = h.request_id;
  PROVLIN_ASSIGN_OR_RETURN(request.want, r.ReadU8());
  if ((request.want & ~kKnownStatsWants) != 0) {
    return Status::Corruption("unknown stats-want bits 0x" +
                              std::to_string(request.want));
  }
  PROVLIN_RETURN_IF_ERROR(ExpectEnd(r));
  return request;
}

Result<StatsResponse> DecodeStatsResponse(std::string_view payload) {
  storage::BinaryReader r(payload);
  StatsResponse response;
  PROVLIN_ASSIGN_OR_RETURN(Header h,
                           ReadHeader(&r, MessageType::kStatsResponse));
  if (h.version < kWireVersion) {
    return Status::InvalidArgument("STATS requires wire version " +
                                   std::to_string(kWireVersion));
  }
  response.request_id = h.request_id;
  PROVLIN_ASSIGN_OR_RETURN(uint8_t has_metrics, r.ReadU8());
  if (has_metrics > 1) {
    return Status::Corruption("metrics flag is " + std::to_string(has_metrics) +
                              ", not 0/1");
  }
  response.has_metrics = has_metrics == 1;
  if (response.has_metrics) {
    PROVLIN_ASSIGN_OR_RETURN(response.prometheus_text, r.ReadString());
    PROVLIN_ASSIGN_OR_RETURN(response.metrics_json, r.ReadString());
  }
  PROVLIN_ASSIGN_OR_RETURN(uint8_t has_trace, r.ReadU8());
  if (has_trace > 1) {
    return Status::Corruption("trace flag is " + std::to_string(has_trace) +
                              ", not 0/1");
  }
  response.has_trace = has_trace == 1;
  if (response.has_trace) {
    PROVLIN_ASSIGN_OR_RETURN(response.trace_json, r.ReadString());
    PROVLIN_ASSIGN_OR_RETURN(response.trace_events, r.ReadU64());
    PROVLIN_ASSIGN_OR_RETURN(response.trace_dropped, r.ReadU64());
  }
  PROVLIN_RETURN_IF_ERROR(ExpectEnd(r));
  return response;
}

}  // namespace provlin::lineage::wire
