#ifndef PROVLIN_LINEAGE_QUERY_H_
#define PROVLIN_LINEAGE_QUERY_H_

#include <set>
#include <string>
#include <utility>
#include <vector>

#include "common/interner.h"
#include "values/index.h"
#include "workflow/dataflow.h"

namespace provlin::lineage {

/// The set 𝒫 of "interesting" processors of Def. 1. The reserved name
/// "workflow" selects the top-level workflow inputs, so queries can ask
/// for the user-supplied data a result derives from. An empty set means
/// *unfocused*: every processor (and the workflow inputs) is interesting.
using InterestSet = std::set<std::string>;

/// True when `processor` is interesting under `interest`.
inline bool IsInteresting(const InterestSet& interest,
                          const std::string& processor) {
  return interest.empty() || interest.count(processor) > 0;
}

/// Id-space form of 𝒫: the interest names resolved to SymbolIds once at
/// the top of a traversal, so the per-visit interest check compares
/// integers instead of re-hashing strings.
struct InterestIds {
  /// Empty 𝒫 = unfocused: everything is interesting.
  bool all = false;
  std::set<common::SymbolId> ids;

  /// Resolves `interest` through `resolve` — any callable mapping a name
  /// to std::optional<SymbolId>. Names the resolver does not know are
  /// dropped: they can never match a visited processor id.
  template <typename ResolveFn>
  static InterestIds Resolve(const InterestSet& interest, ResolveFn&& resolve) {
    InterestIds out;
    out.all = interest.empty();
    for (const std::string& name : interest) {
      std::optional<common::SymbolId> sym = resolve(name);
      if (sym.has_value()) out.ids.insert(*sym);
    }
    return out;
  }
};

/// Id-space overload of IsInteresting — the hot-path form.
inline bool IsInteresting(const InterestIds& interest,
                          common::SymbolId processor) {
  return interest.all || interest.ids.count(processor) > 0;
}

/// One element of a lineage answer: a binding ⟨P:X[p], v⟩ that the
/// queried value depends on, at an input port of an interesting
/// processor (or at a workflow input port).
struct LineageBinding {
  std::string run_id;
  workflow::PortRef port;
  Index index;
  std::string value_repr;

  std::string ToString() const {
    return run_id + ":<" + port.ToString() + index.ToString() + ", " +
           value_repr + ">";
  }

  bool operator==(const LineageBinding& o) const {
    return run_id == o.run_id && port == o.port && index == o.index &&
           value_repr == o.value_repr;
  }
  bool operator<(const LineageBinding& o) const {
    if (run_id != o.run_id) return run_id < o.run_id;
    if (!(port == o.port)) return port < o.port;
    if (index != o.index) return index < o.index;
    return value_repr < o.value_repr;
  }
};

/// Instrumented cost breakdown matching the paper's (s1)/(s2) split:
/// t1 = graph work (spec traversal for IndexProj; zero for NI, whose
/// whole cost is trace access), t2 = trace-database access.
struct LineageTiming {
  double t1_ms = 0.0;
  double t2_ms = 0.0;
  /// Index/scan probes issued against the trace database (from the
  /// storage layer's hardware-independent counters). This counts
  /// *logical* probes — batching never changes it.
  uint64_t trace_probes = 0;
  /// Physical B+-tree root-to-leaf descents behind those probes. Batched
  /// execution amortizes descents across sorted probes, so this drops
  /// below trace_probes; single-probe execution pays one per probe.
  uint64_t trace_descents = 0;
  /// Nodes visited on the graph being traversed (provenance graph for
  /// NI, specification graph for IndexProj).
  uint64_t graph_steps = 0;
  /// True when the IndexProj plan was served from the cache.
  bool plan_cache_hit = false;

  double total_ms() const { return t1_ms + t2_ms; }
};

/// A lineage answer: the set of interesting bindings, sorted, plus the
/// cost breakdown.
struct LineageAnswer {
  std::vector<LineageBinding> bindings;
  LineageTiming timing;
};

/// Normalizes bindings in place: sorts, dedups, and reduces the answer
/// to its *maximal* bindings — a binding whose index extends the index
/// of another binding on the same run and port is covered by it (the
/// coarser binding already states that the whole containing value is in
/// the lineage) and is dropped. This makes the two lineage engines
/// return literally identical answers: the naïve traversal naturally
/// discovers redundant finer bindings when a value reaches a processor
/// both element-wise and whole (e.g. the GK workflow's two branches).
void NormalizeBindings(std::vector<LineageBinding>* bindings);

/// Publishes a finished query's cost breakdown into the process-wide
/// MetricsRegistry under lineage/* (plus a per-engine query counter,
/// e.g. "lineage/queries_indexproj"). Engines call this once at the end
/// of Query(); the per-query LineageTiming stays the caller-facing view,
/// the registry accumulates the process totals that `provlin stats`
/// exposes.
void PublishTiming(std::string_view engine, const LineageTiming& timing);

}  // namespace provlin::lineage

#endif  // PROVLIN_LINEAGE_QUERY_H_
