#ifndef PROVLIN_LINEAGE_NAIVE_LINEAGE_H_
#define PROVLIN_LINEAGE_NAIVE_LINEAGE_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "lineage/engine.h"
#include "lineage/query.h"
#include "provenance/trace_store.h"

namespace provlin::lineage {

/// The paper's baseline NI: lin(⟨P:Y[p], v⟩, 𝒫) computed by the mutual
/// recursion of Def. 1 directly over the *extensional* provenance trace.
/// Each recursion step issues indexed trace-database probes (xform
/// inversion at processors, xfer lookup at arcs), so the total cost
/// grows with the length of the provenance path — the behaviour Fig. 9
/// quantifies. The workflow specification is never consulted.
///
/// Stateless between queries: concurrent Query() calls on a quiescent
/// store are safe.
class NaiveLineage : public LineageEngine {
 public:
  /// The store must outlive the engine.
  explicit NaiveLineage(const provenance::TraceStore* store)
      : store_(store) {}

  std::string_view name() const override { return "naive"; }

  /// Computes the lineage of ⟨target[index]⟩ over the request's runs.
  /// The target may be any processor port or a workflow output/input
  /// port; the side (output vs. input) is auto-detected from the trace.
  /// NI has nothing to share across runs, so several runs are a plain
  /// loop — one full provenance-graph traversal per run (§3.4).
  Result<LineageAnswer> Query(const LineageRequest& request) const override;

  using LineageEngine::Query;
  using LineageEngine::QueryMultiRun;

 private:
  /// One full Def. 1 traversal of a single run.
  Result<LineageAnswer> QueryOneRun(const std::string& run,
                                    const workflow::PortRef& target,
                                    const Index& q,
                                    const InterestSet& interest) const;

  const provenance::TraceStore* store_;
};

}  // namespace provlin::lineage

#endif  // PROVLIN_LINEAGE_NAIVE_LINEAGE_H_
