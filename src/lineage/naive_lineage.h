#ifndef PROVLIN_LINEAGE_NAIVE_LINEAGE_H_
#define PROVLIN_LINEAGE_NAIVE_LINEAGE_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "lineage/engine.h"
#include "lineage/query.h"
#include "provenance/trace_store.h"

namespace provlin::lineage {

/// The paper's baseline NI: lin(⟨P:Y[p], v⟩, 𝒫) computed by the mutual
/// recursion of Def. 1 directly over the *extensional* provenance trace.
/// Each recursion step issues indexed trace-database probes (xform
/// inversion at processors, xfer lookup at arcs), so the total cost
/// grows with the length of the provenance path — the behaviour Fig. 9
/// quantifies. The workflow specification is never consulted.
///
/// Stateless between queries: concurrent Query() calls on a quiescent
/// store are safe.
class NaiveLineage : public LineageEngine {
 public:
  /// The store must outlive the engine. The default kBatched mode runs
  /// the Def. 1 traversal as a frontier-batched BFS: each level's probes
  /// (all producing probes, then all xfer probes) go to the trace store
  /// as one sorted batch, amortizing B+-tree descents. kSingleProbe
  /// keeps the seed's depth-first recursion with one descent per probe.
  /// Both modes visit the same nodes, issue the same logical probes, and
  /// return byte-identical answers.
  explicit NaiveLineage(const provenance::TraceStore* store,
                        ProbeExecution mode = ProbeExecution::kBatched)
      : store_(store), mode_(mode) {}

  std::string_view name() const override { return "naive"; }

  /// Computes the lineage of ⟨target[index]⟩ over the request's runs.
  /// The target may be any processor port or a workflow output/input
  /// port; the side (output vs. input) is auto-detected from the trace.
  /// NI shares no *results* across runs (§3.4), but in kBatched mode a
  /// multi-run request traverses all runs as one frontier: each level's
  /// probes carry their run, so a sharded store groups them by owning
  /// shard and fans the per-shard sub-batches out concurrently. The
  /// expanded node set per run — and the answer — is identical to the
  /// per-run loop kSingleProbe still uses.
  Result<LineageAnswer> Query(const LineageRequest& request) const override;

 private:
  /// One full Def. 1 traversal of a single run.
  Result<LineageAnswer> QueryOneRun(const std::string& run,
                                    const workflow::PortRef& target,
                                    const Index& q,
                                    const InterestSet& interest,
                                    ProbeExecution mode) const;

  const provenance::TraceStore* store_;
  ProbeExecution mode_;
};

}  // namespace provlin::lineage

#endif  // PROVLIN_LINEAGE_NAIVE_LINEAGE_H_
