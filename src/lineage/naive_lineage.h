#ifndef PROVLIN_LINEAGE_NAIVE_LINEAGE_H_
#define PROVLIN_LINEAGE_NAIVE_LINEAGE_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "lineage/query.h"
#include "provenance/trace_store.h"

namespace provlin::lineage {

/// The paper's baseline NI: lin(⟨P:Y[p], v⟩, 𝒫) computed by the mutual
/// recursion of Def. 1 directly over the *extensional* provenance trace.
/// Each recursion step issues indexed trace-database probes (xform
/// inversion at processors, xfer lookup at arcs), so the total cost
/// grows with the length of the provenance path — the behaviour Fig. 9
/// quantifies. The workflow specification is never consulted.
class NaiveLineage {
 public:
  /// The store must outlive the engine.
  explicit NaiveLineage(const provenance::TraceStore* store)
      : store_(store) {}

  /// Computes the lineage of ⟨target[q]⟩ within one run. `target` may be
  /// any processor port or a workflow output/input port; the side
  /// (output vs. input) is auto-detected from the trace.
  Result<LineageAnswer> Query(const std::string& run,
                              const workflow::PortRef& target, const Index& q,
                              const InterestSet& interest) const;

  /// Multi-run form: NI has nothing to share across runs, so this is a
  /// plain loop — one full provenance-graph traversal per run (§3.4).
  Result<LineageAnswer> QueryMultiRun(const std::vector<std::string>& runs,
                                      const workflow::PortRef& target,
                                      const Index& q,
                                      const InterestSet& interest) const;

 private:
  const provenance::TraceStore* store_;
};

}  // namespace provlin::lineage

#endif  // PROVLIN_LINEAGE_NAIVE_LINEAGE_H_
