#include "lineage/versioned_lineage.h"

namespace provlin::lineage {

Status WorkflowRegistry::Register(
    std::shared_ptr<const workflow::Dataflow> flow) {
  const std::string& name = flow->name();
  if (flows_.count(name) > 0) {
    return Status::AlreadyExists("workflow '" + name +
                                 "' already registered");
  }
  flows_[name] = std::move(flow);
  return Status::OK();
}

Result<std::shared_ptr<const workflow::Dataflow>> WorkflowRegistry::Get(
    const std::string& name) const {
  auto it = flows_.find(name);
  if (it == flows_.end()) {
    return Status::NotFound("no workflow named '" + name + "'");
  }
  return it->second;
}

std::vector<std::string> WorkflowRegistry::Names() const {
  std::vector<std::string> out;
  out.reserve(flows_.size());
  for (const auto& [name, _] : flows_) out.push_back(name);
  return out;
}

Result<VersionedLineage::VersionedAnswer>
VersionedLineage::QueryAcrossVersions(const std::vector<std::string>& runs,
                                      const workflow::PortRef& target,
                                      const Index& q,
                                      const InterestSet& interest) {
  VersionedAnswer out;

  // Group the runs by recorded workflow version, preserving run order.
  std::map<std::string, std::vector<std::string>> by_version;
  for (const std::string& run : runs) {
    auto version = store_->RunWorkflow(run);
    if (!version.ok()) {
      out.skipped_runs[run] = version.status().ToString();
      continue;
    }
    by_version[*version].push_back(run);
  }

  for (const auto& [version, version_runs] : by_version) {
    auto flow = registry_->Get(version);
    if (!flow.ok()) {
      for (const std::string& run : version_runs) {
        out.skipped_runs[run] = flow.status().ToString();
      }
      continue;
    }
    auto eit = engines_.find(version);
    if (eit == engines_.end()) {
      PROVLIN_ASSIGN_OR_RETURN(IndexProjLineage engine,
                               IndexProjLineage::Create(*flow, store_));
      eit = engines_.emplace(version, std::move(engine)).first;
    }
    auto answer = eit->second.Query(
        LineageRequest::MultiRun(version_runs, target, q, interest));
    if (!answer.ok()) {
      if (answer.status().IsNotFound()) {
        // Target missing in this version: skip its runs, keep going.
        for (const std::string& run : version_runs) {
          out.skipped_runs[run] = answer.status().ToString();
        }
        continue;
      }
      return answer.status();
    }
    ++out.versions_queried;
    out.answer.bindings.insert(out.answer.bindings.end(),
                               answer->bindings.begin(),
                               answer->bindings.end());
    out.answer.timing.t1_ms += answer->timing.t1_ms;
    out.answer.timing.t2_ms += answer->timing.t2_ms;
    out.answer.timing.trace_probes += answer->timing.trace_probes;
    out.answer.timing.graph_steps += answer->timing.graph_steps;
  }

  NormalizeBindings(&out.answer.bindings);
  return out;
}

}  // namespace provlin::lineage
