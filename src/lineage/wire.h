#ifndef PROVLIN_LINEAGE_WIRE_H_
#define PROVLIN_LINEAGE_WIRE_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "common/result.h"
#include "lineage/engine.h"
#include "lineage/query.h"
#include "storage/serialize.h"

namespace provlin::lineage::wire {

/// Versioned binary encoding of the lineage request/answer API — the
/// one wire shape shared by the network server (src/server), the
/// load-generation client (tools/loadgen), and the codec tests.
/// LineageRequest::ToString() stays a log format only; nothing parses
/// it.
///
/// Every payload starts with a fixed two-byte header:
///
///   [version u8][message type u8][request id u64][body ...]
///
/// followed by a type-specific body built from the storage layer's
/// little-endian primitives (storage/serialize.h): fixed-width
/// integers, length-prefixed strings. The version byte is checked
/// before anything else is read, so a future v2 decoder can dispatch
/// on it (and today's server answers a non-v1 frame with a typed
/// kUnsupportedVersion error instead of misparsing it). Request ids
/// are client-assigned and echoed verbatim in the response, which is
/// what lets one connection pipeline many requests.
inline constexpr uint8_t kWireVersion = 1;

/// Default ceiling on one frame's payload; the server and client both
/// reject frames whose length prefix exceeds their configured maximum
/// (DESIGN.md §12 — bounded memory per connection, no allocation from
/// an untrusted length).
inline constexpr uint32_t kDefaultMaxFrameBytes = 16u << 20;

enum class MessageType : uint8_t {
  kRequest = 1,  ///< client → server: RequestEnvelope
  kAnswer = 2,   ///< server → client: LineageAnswer for the echoed id
  kError = 3,    ///< server → client: typed ErrorCode + message
};

/// Typed failure taxonomy of the served API. kOverloaded is the
/// admission-control response: the server's bounded request queue was
/// full and the request was shed without executing (clients see it as
/// Status::Unavailable and may retry later).
enum class ErrorCode : uint8_t {
  kOverloaded = 1,
  kBadRequest = 2,
  kNotFound = 3,
  kInternal = 4,
  kUnsupportedVersion = 5,
};

std::string_view ErrorCodeName(ErrorCode code);

// --- field-level codecs ----------------------------------------------------
// Raw request/answer bodies, without the envelope header. Shared by the
// envelope encoders below and addressable directly by tests.

void EncodeLineageRequest(const LineageRequest& request,
                          storage::BinaryWriter* w);
Result<LineageRequest> DecodeLineageRequest(storage::BinaryReader* r);

void EncodeLineageAnswer(const LineageAnswer& answer,
                         storage::BinaryWriter* w);
Result<LineageAnswer> DecodeLineageAnswer(storage::BinaryReader* r);

// --- envelopes -------------------------------------------------------------

/// One served request: which engine ("naive" | "indexproj") answers
/// which LineageRequest, matched to its response by `request_id`.
struct RequestEnvelope {
  uint64_t request_id = 0;
  std::string engine;
  LineageRequest request;
};

/// One served response: the answer for `request_id`, or a typed error.
struct ResponseEnvelope {
  uint64_t request_id = 0;
  bool ok = false;
  LineageAnswer answer;                    // meaningful iff ok
  ErrorCode code = ErrorCode::kInternal;   // meaningful iff !ok
  std::string message;                     // meaningful iff !ok

  /// Status view of an error response: kOverloaded maps to the typed
  /// Status::Unavailable, kBadRequest/kUnsupportedVersion to
  /// InvalidArgument, kNotFound to NotFound, the rest to Internal.
  /// OK for an answer response.
  Status ToStatus() const;
};

/// Full payloads (header + body), ready for framing.
std::string EncodeRequestEnvelope(const RequestEnvelope& envelope);
std::string EncodeAnswerResponse(uint64_t request_id,
                                 const LineageAnswer& answer);
std::string EncodeErrorResponse(uint64_t request_id, ErrorCode code,
                                std::string_view message);

/// Decoders reject wrong-version, wrong-type, truncated, and
/// trailing-garbage payloads with Corruption/InvalidArgument — they
/// never crash on adversarial bytes (fuzzed by tests/wire_test.cc).
Result<RequestEnvelope> DecodeRequestEnvelope(std::string_view payload);
Result<ResponseEnvelope> DecodeResponseEnvelope(std::string_view payload);

}  // namespace provlin::lineage::wire

#endif  // PROVLIN_LINEAGE_WIRE_H_
