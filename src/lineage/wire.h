#ifndef PROVLIN_LINEAGE_WIRE_H_
#define PROVLIN_LINEAGE_WIRE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "lineage/engine.h"
#include "lineage/query.h"
#include "storage/serialize.h"

namespace provlin::lineage::wire {

/// Versioned binary encoding of the lineage request/answer API — the
/// one wire shape shared by the network server (src/server), the
/// load-generation client (tools/loadgen), and the codec tests.
/// LineageRequest::ToString() stays a log format only; nothing parses
/// it.
///
/// Every payload starts with a fixed two-byte header:
///
///   [version u8][message type u8][request id u64][body ...]
///
/// followed by a type-specific body built from the storage layer's
/// little-endian primitives (storage/serialize.h): fixed-width
/// integers, length-prefixed strings. The version byte is checked
/// before anything else is read, so frames are dispatched on it and a
/// from-the-future version is rejected as unsupported-version, never
/// misparsed. Request ids are client-assigned and echoed verbatim in
/// the response, which is what lets one connection pipeline many
/// requests.
///
/// Two versions are live:
///
///   v1 — the PR 7 shape: request = engine + LineageRequest, answer =
///        LineageAnswer, error = code + message. v1 frames encode and
///        decode byte-identically to the original codec, so a v1 peer
///        interoperates with a v2 peer with zero behavior change.
///   v2 — adds a flags byte to requests (bit 0: the client wants a
///        RequestTimeline appended to the answer), an optional
///        timeline trailer on answers, and the STATS message pair for
///        scraping a live server's metrics registry and tracer ring.
///
/// The server always replies in the version of the request it is
/// answering, so an old client never sees bytes it cannot parse.
inline constexpr uint8_t kWireVersionLegacy = 1;
inline constexpr uint8_t kWireVersion = 2;

inline constexpr bool IsSupportedWireVersion(uint8_t v) {
  return v == kWireVersionLegacy || v == kWireVersion;
}

/// Default ceiling on one frame's payload; the server and client both
/// reject frames whose length prefix exceeds their configured maximum
/// (DESIGN.md §12 — bounded memory per connection, no allocation from
/// an untrusted length).
inline constexpr uint32_t kDefaultMaxFrameBytes = 16u << 20;

enum class MessageType : uint8_t {
  kRequest = 1,        ///< client → server: RequestEnvelope
  kAnswer = 2,         ///< server → client: LineageAnswer for the echoed id
  kError = 3,          ///< server → client: typed ErrorCode + message
  kStatsRequest = 4,   ///< client → server: scrape request (v2 only)
  kStatsResponse = 5,  ///< server → client: registry/tracer snapshot (v2 only)
};

/// Request flags carried by v2 request envelopes. Unknown bits are
/// rejected at decode time so a future flag cannot be silently
/// half-honored by an old server.
inline constexpr uint8_t kRequestFlagWantTimeline = 0x01;
inline constexpr uint8_t kKnownRequestFlags = kRequestFlagWantTimeline;

/// What a STATS scrape should include (bitmask; unknown bits rejected).
inline constexpr uint8_t kStatsWantMetrics = 0x01;
inline constexpr uint8_t kStatsWantTrace = 0x02;
inline constexpr uint8_t kKnownStatsWants = kStatsWantMetrics | kStatsWantTrace;

/// Typed failure taxonomy of the served API. kOverloaded is the
/// admission-control response: the server's bounded request queue was
/// full and the request was shed without executing (clients see it as
/// Status::Unavailable and may retry later).
enum class ErrorCode : uint8_t {
  kOverloaded = 1,
  kBadRequest = 2,
  kNotFound = 3,
  kInternal = 4,
  kUnsupportedVersion = 5,
};

std::string_view ErrorCodeName(ErrorCode code);

// --- request timeline ------------------------------------------------------

/// Per-shard slice of one request's probe work (DESIGN.md §14).
struct ShardCost {
  uint32_t shard = 0;
  uint64_t probes = 0;
  uint64_t descents = 0;
  uint64_t rows = 0;

  bool operator==(const ShardCost&) const = default;
};

/// Phase decomposition of one served request, measured on the server
/// and attached to a v2 answer when the client set
/// kRequestFlagWantTimeline. All durations are wall milliseconds.
///
/// `serialize_ms` and `write_ms` are structurally unknowable at encode
/// time (the frame is finished before it is written to the socket), so
/// on the wire they are always 0; the server still measures both and
/// publishes them through the server/serialize_ms and server/write_ms
/// histograms and the slow-request log, where they are real. The
/// invariant queue+dispatch+execute+serialize+write ≤ total therefore
/// holds for every frame a client ever sees.
struct RequestTimeline {
  double queue_ms = 0;      ///< admission → dispatcher dequeue
  double dispatch_ms = 0;   ///< dequeue → a service worker picks it up
  double execute_ms = 0;    ///< engine Query() wall time
  double serialize_ms = 0;  ///< answer-frame encode (0 on the wire)
  double write_ms = 0;      ///< socket write (0 on the wire)
  double total_ms = 0;      ///< admission → answer frame encoded

  uint64_t trace_probes = 0;    ///< logical B+-tree probes
  uint64_t trace_descents = 0;  ///< physical root-to-leaf descents
  uint64_t rows_examined = 0;
  uint64_t hot_probes = 0;     ///< probes answered by the hot tier
  uint64_t sealed_probes = 0;  ///< probes answered by sealed segments

  std::vector<ShardCost> shards;  ///< per-shard fan-out breakdown

  bool operator==(const RequestTimeline&) const = default;
};

// --- field-level codecs ----------------------------------------------------
// Raw request/answer bodies, without the envelope header. Shared by the
// envelope encoders below and addressable directly by tests.

void EncodeLineageRequest(const LineageRequest& request,
                          storage::BinaryWriter* w);
Result<LineageRequest> DecodeLineageRequest(storage::BinaryReader* r);

void EncodeLineageAnswer(const LineageAnswer& answer,
                         storage::BinaryWriter* w);
Result<LineageAnswer> DecodeLineageAnswer(storage::BinaryReader* r);

void EncodeRequestTimeline(const RequestTimeline& t, storage::BinaryWriter* w);
Result<RequestTimeline> DecodeRequestTimeline(storage::BinaryReader* r);

// --- envelopes -------------------------------------------------------------

/// One served request: which engine ("naive" | "indexproj") answers
/// which LineageRequest, matched to its response by `request_id`.
/// `version` selects the frame encoding; a default-constructed
/// envelope still encodes the exact v1 bytes of the original codec.
struct RequestEnvelope {
  uint64_t request_id = 0;
  std::string engine;
  LineageRequest request;
  uint8_t version = kWireVersionLegacy;
  bool want_timeline = false;  ///< v2 only; ignored when version == 1
};

/// One served response: the answer for `request_id`, or a typed error.
/// v2 answers may carry a RequestTimeline trailer (`has_timeline`).
struct ResponseEnvelope {
  uint64_t request_id = 0;
  bool ok = false;
  LineageAnswer answer;                    // meaningful iff ok
  ErrorCode code = ErrorCode::kInternal;   // meaningful iff !ok
  std::string message;                     // meaningful iff !ok
  uint8_t version = kWireVersionLegacy;    // version of the decoded frame
  bool has_timeline = false;               // v2 answers only
  RequestTimeline timeline;                // meaningful iff has_timeline

  /// Status view of an error response: kOverloaded maps to the typed
  /// Status::Unavailable, kBadRequest/kUnsupportedVersion to
  /// InvalidArgument, kNotFound to NotFound, the rest to Internal.
  /// OK for an answer response.
  Status ToStatus() const;
};

/// One STATS scrape: which snapshots the client wants (bitmask of
/// kStatsWant*). Always a v2 frame.
struct StatsRequest {
  uint64_t request_id = 0;
  uint8_t want = kStatsWantMetrics;
};

/// Snapshot of a live server: the metrics registry rendered both ways,
/// and/or the tracer ring as Chrome trace JSON plus its drop counters.
struct StatsResponse {
  uint64_t request_id = 0;
  bool has_metrics = false;
  std::string prometheus_text;  // meaningful iff has_metrics
  std::string metrics_json;     // meaningful iff has_metrics
  bool has_trace = false;
  std::string trace_json;       // meaningful iff has_trace
  uint64_t trace_events = 0;    // meaningful iff has_trace
  uint64_t trace_dropped = 0;   // meaningful iff has_trace
};

/// Full payloads (header + body), ready for framing.
std::string EncodeRequestEnvelope(const RequestEnvelope& envelope);
std::string EncodeAnswerResponse(uint64_t request_id,
                                 const LineageAnswer& answer);
/// v2 answer frame; appends `timeline` when non-null.
std::string EncodeAnswerResponseV2(uint64_t request_id,
                                   const LineageAnswer& answer,
                                   const RequestTimeline* timeline);
std::string EncodeErrorResponse(uint64_t request_id, ErrorCode code,
                                std::string_view message,
                                uint8_t version = kWireVersionLegacy);
std::string EncodeStatsRequest(const StatsRequest& request);
std::string EncodeStatsResponse(const StatsResponse& response);

/// Decoders reject wrong-version, wrong-type, truncated, and
/// trailing-garbage payloads with Corruption/InvalidArgument — they
/// never crash on adversarial bytes (fuzzed by tests/wire_test.cc).
Result<RequestEnvelope> DecodeRequestEnvelope(std::string_view payload);
Result<ResponseEnvelope> DecodeResponseEnvelope(std::string_view payload);
Result<StatsRequest> DecodeStatsRequest(std::string_view payload);
Result<StatsResponse> DecodeStatsResponse(std::string_view payload);

}  // namespace provlin::lineage::wire

#endif  // PROVLIN_LINEAGE_WIRE_H_
