#include "lineage/binding_retrieval.h"

#include "values/value_parser.h"

namespace provlin::lineage {

using provenance::XformRecord;

Status AppendInputBinding(const provenance::TraceStore& store,
                          const std::string& run, const XformRecord& row,
                          std::vector<LineageBinding>* out) {
  if (!row.has_in) return Status::OK();
  PROVLIN_ASSIGN_OR_RETURN(std::string repr,
                           store.GetValueRepr(row.run, row.in_value));
  out->push_back(LineageBinding{
      run,
      workflow::PortRef{store.NameOf(row.processor),
                        store.NameOf(row.in_port)},
      row.in_index, std::move(repr)});
  return Status::OK();
}

Status AppendSourceBindings(const provenance::TraceStore& store,
                            const std::string& run,
                            const std::vector<XformRecord>& rows,
                            const Index& q,
                            std::vector<LineageBinding>* out) {
  for (const XformRecord& row : rows) {
    if (!row.has_out) continue;
    PROVLIN_ASSIGN_OR_RETURN(std::string repr,
                             store.GetValueRepr(row.run, row.out_value));
    PROVLIN_ASSIGN_OR_RETURN(Value whole, ParseValue(repr));
    workflow::PortRef port{store.NameOf(row.processor),
                           store.NameOf(row.out_port)};
    if (row.out_index.IsPrefixOf(q)) {
      // Recorded binding covers the question: report precisely at q.
      Index residual = q.SubIndex(row.out_index.length(),
                                  q.length() - row.out_index.length());
      auto element = whole.At(residual);
      if (!element.ok()) {
        // The requested index does not exist in the recorded value; fall
        // back to the recorded (coarser) binding rather than failing the
        // whole query.
        out->push_back(LineageBinding{run, std::move(port), row.out_index,
                                      whole.ToString()});
        continue;
      }
      out->push_back(
          LineageBinding{run, std::move(port), q, element.value().ToString()});
    } else {
      // Finer than the question (whole-value queries): report as stored.
      out->push_back(LineageBinding{run, std::move(port), row.out_index,
                                    whole.ToString()});
    }
  }
  return Status::OK();
}

}  // namespace provlin::lineage
