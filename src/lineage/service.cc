#include "lineage/service.h"

#include <chrono>
#include <map>
#include <tuple>
#include <utility>

#include "common/logging.h"
#include "common/timer.h"
#include "common/tracing.h"
#include "provenance/trace_store.h"
#include "storage/table.h"

namespace provlin::lineage {

namespace {

using Clock = std::chrono::steady_clock;

double MillisSince(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

/// Requests sharing this key share an (engine, plan) pair — the grouping
/// granularity of ServiceOptions::group_same_plan. The interest set is
/// part of the plan identity, the run list is not.
std::tuple<const void*, std::string> GroupKey(const ServiceRequest& req) {
  std::string plan_repr = req.request.target.ToString() +
                          req.request.index.ToString() + "|";
  for (const std::string& p : req.request.interest) plan_repr += p + ",";
  return {static_cast<const void*>(req.engine), std::move(plan_repr)};
}

namespace metrics = common::metrics;

/// Registry handles for the service/* instruments: resolved once, then
/// every batch's accumulation pass mirrors its deltas here so `provlin
/// stats` sees the process totals across all services.
struct ServiceInstruments {
  metrics::Counter* batches = metrics::GetCounter("service/batches");
  metrics::Counter* requests = metrics::GetCounter("service/requests");
  metrics::Counter* failed = metrics::GetCounter("service/failed_requests");
  metrics::Counter* plan_cache_hits =
      metrics::GetCounter("service/plan_cache_hits");
  metrics::Counter* trace_probes = metrics::GetCounter("service/trace_probes");
  metrics::Counter* trace_descents =
      metrics::GetCounter("service/trace_descents");
  metrics::Counter* memo_hits = metrics::GetCounter("service/probe_memo_hits");
  metrics::Counter* memo_lookups =
      metrics::GetCounter("service/probe_memo_lookups");
  metrics::Histogram* queue_wait =
      metrics::GetHistogram("service/queue_wait_ms");
  metrics::Histogram* exec = metrics::GetHistogram("service/exec_ms");
  metrics::Histogram* batch_wall =
      metrics::GetHistogram("service/batch_wall_ms");
  metrics::Gauge* last_batch_wall_us =
      metrics::GetGauge("service/last_batch_wall_us");
};

ServiceInstruments& Mx() {
  static ServiceInstruments m;
  return m;
}

}  // namespace

std::string ServiceMetrics::ToString() const {
  std::string out;
  out += "requests=" + std::to_string(requests);
  out += " batches=" + std::to_string(batches);
  out += " failed=" + std::to_string(failed_requests);
  out += " plan_cache_hit_rate=" +
         std::to_string(plan_cache_hit_rate());
  out += " trace_probes=" + std::to_string(trace_probes);
  out += " trace_descents=" + std::to_string(trace_descents);
  out += " probe_memo_hits=" + std::to_string(probe_memo_hits) + "/" +
         std::to_string(probe_memo_lookups);
  out += " avg_queue_wait_ms=" +
         std::to_string(requests == 0 ? 0.0
                                      : total_queue_wait_ms /
                                            static_cast<double>(requests));
  out += " last_batch_wall_ms=" + std::to_string(last_batch_wall_ms);
  out += " per_thread_probes=[";
  for (size_t i = 0; i < per_thread_probes.size(); ++i) {
    if (i > 0) out += ",";
    out += std::to_string(per_thread_probes[i]);
  }
  out += "]";
  return out;
}

ServiceMetrics ServiceMetrics::FromRegistrySnapshot(
    const common::metrics::MetricsSnapshot& snap) {
  ServiceMetrics m;
  m.batches = snap.counter("service/batches");
  m.requests = snap.counter("service/requests");
  m.failed_requests = snap.counter("service/failed_requests");
  m.plan_cache_hits = snap.counter("service/plan_cache_hits");
  m.trace_probes = snap.counter("service/trace_probes");
  m.trace_descents = snap.counter("service/trace_descents");
  m.probe_memo_hits = snap.counter("service/probe_memo_hits");
  m.probe_memo_lookups = snap.counter("service/probe_memo_lookups");
  m.total_queue_wait_ms = snap.histogram_sum("service/queue_wait_ms");
  m.total_exec_ms = snap.histogram_sum("service/exec_ms");
  m.last_batch_wall_ms =
      static_cast<double>(snap.gauge("service/last_batch_wall_us")) / 1000.0;
  return m;
}

LineageService::LineageService(ServiceOptions options)
    : options_(options), pool_(options.num_threads) {
  metrics_.per_thread_probes.assign(pool_.num_threads(), 0);
}

std::vector<ServiceResponse> LineageService::ExecuteBatch(
    const std::vector<ServiceRequest>& batch) {
  PROVLIN_TRACE_SPAN_VAR(batch_span, "service/batch");
  if (batch_span.active()) {
    batch_span.SetArgs("requests=" + std::to_string(batch.size()));
  }
  std::vector<ServiceResponse> responses(batch.size());
  if (batch.empty()) return responses;

  // Partition the batch into worker tasks: one task per plan group when
  // grouping is on (the group's requests run back-to-back on one worker,
  // so the plan is built once and reused without cache traffic), one
  // task per request otherwise.
  std::vector<std::vector<size_t>> tasks;
  if (options_.group_same_plan) {
    std::map<std::tuple<const void*, std::string>, size_t> group_slot;
    for (size_t i = 0; i < batch.size(); ++i) {
      auto key = GroupKey(batch[i]);
      auto it = group_slot.find(key);
      if (it == group_slot.end()) {
        group_slot.emplace(std::move(key), tasks.size());
        tasks.push_back({i});
      } else {
        tasks[it->second].push_back(i);
      }
    }
  } else {
    tasks.reserve(batch.size());
    for (size_t i = 0; i < batch.size(); ++i) tasks.push_back({i});
  }

  // Per-worker probe accumulation: each worker only ever writes its own
  // slot (tasks on one worker run sequentially), so plain integers are
  // race-free here.
  std::vector<uint64_t> worker_probes(pool_.num_threads(), 0);

  // One probe memo for the whole batch: identical trace probes from
  // different requests are answered once. The memo outlives every worker
  // task (we block on `remaining` below before it goes out of scope).
  std::unique_ptr<provenance::ProbeMemo> memo;
  if (options_.dedupe_probes) {
    memo = std::make_unique<provenance::ProbeMemo>();
  }

  // Batch-completion latch. The annotated local struct lets the
  // analysis tie `remaining` to its mutex even though it lives on this
  // stack frame and is touched from every worker.
  struct BatchDone {
    common::Mutex mu{common::LockRank::kServiceBatchLatch};
    common::CondVar cv;
    size_t remaining GUARDED_BY(mu) = 0;
  } done;
  {
    common::MutexLock lock(done.mu);
    done.remaining = tasks.size();
  }

  Clock::time_point submit_time = Clock::now();
  WallTimer batch_timer;

  for (std::vector<size_t>& task_indices : tasks) {
    pool_.Submit([&, indices = std::move(task_indices)](size_t worker) {
      // Install the batch's shared memo for this worker task; queries it
      // runs consult/fill it through the trace store transparently.
      provenance::ProbeMemoScope memo_scope(memo.get());
      double queue_wait = MillisSince(submit_time);
      for (size_t i : indices) {
        const ServiceRequest& req = batch[i];
        ServiceResponse& resp = responses[i];
        resp.queue_wait_ms = queue_wait;
        resp.worker = worker;
        PROVLIN_TRACE_SPAN_VAR(req_span, "service/request");
        if (req_span.active()) {
          req_span.SetArgs("req=" + std::to_string(i) +
                           " worker=" + std::to_string(worker) + " " +
                           req.request.ToString());
        }
        storage::ThreadStats before = storage::ThisThreadStats();
        WallTimer exec_timer;
        if (req.engine == nullptr) {
          resp.status = Status::InvalidArgument("request has no engine");
        } else {
          // The breakdown scope makes the trace store attribute this
          // request's physical probes per shard and per tier into
          // resp.breakdown (each response slot belongs to one worker).
          provenance::ProbeBreakdownScope breakdown_scope(&resp.breakdown);
          Result<LineageAnswer> answer = req.engine->Query(req.request);
          if (answer.ok()) {
            resp.answer = std::move(answer).value();
          } else {
            resp.status = answer.status();
          }
        }
        resp.exec_ms = exec_timer.ElapsedMillis();
        resp.rows_examined =
            storage::ThisThreadStats().rows_examined - before.rows_examined;
        worker_probes[worker] +=
            storage::ThisThreadStats().probes() - before.probes();
        // Only the first request of a chained group pays the queue wait;
        // the rest start immediately after their predecessor.
        queue_wait = 0.0;
      }
      {
        // Notify under the lock: the moment the count hits zero the
        // waiter may return and destroy the latch, so the last touch of
        // the condvar must happen-before the waiter's re-acquire.
        common::MutexLock lock(done.mu);
        if (--done.remaining == 0) done.cv.NotifyAll();
      }
    });
  }

  {
    common::MutexLock lock(done.mu);
    // Explicit predicate loop (not wait-with-lambda): the guarded read
    // of `remaining` stays in this locked scope for the analysis.
    while (done.remaining != 0) done.cv.Wait(done.mu);
  }
  double batch_wall_ms = batch_timer.ElapsedMillis();

  // Per-instance counters under the lock, process-wide registry mirror
  // alongside: the two views accumulate the same deltas, so in a
  // single-service process FromRegistrySnapshot reproduces metrics().
  common::MutexLock lock(metrics_mu_);
  metrics_.batches += 1;
  metrics_.last_batch_wall_ms = batch_wall_ms;
  Mx().batches->Increment();
  Mx().batch_wall->Observe(batch_wall_ms);
  Mx().last_batch_wall_us->Set(static_cast<int64_t>(batch_wall_ms * 1000.0));
  for (size_t i = 0; i < responses.size(); ++i) {
    const ServiceResponse& resp = responses[i];
    metrics_.requests += 1;
    Mx().requests->Increment();
    Mx().queue_wait->Observe(resp.queue_wait_ms);
    if (!resp.status.ok()) {
      metrics_.failed_requests += 1;
      Mx().failed->Increment();
    }
    if (resp.status.ok() && resp.answer.timing.plan_cache_hit) {
      metrics_.plan_cache_hits += 1;
      Mx().plan_cache_hits->Increment();
    }
    metrics_.total_queue_wait_ms += resp.queue_wait_ms;
    if (resp.status.ok()) {
      double exec_ms = resp.answer.timing.total_ms();
      metrics_.total_exec_ms += exec_ms;
      metrics_.trace_probes += resp.answer.timing.trace_probes;
      metrics_.trace_descents += resp.answer.timing.trace_descents;
      Mx().exec->Observe(exec_ms);
      Mx().trace_probes->Add(resp.answer.timing.trace_probes);
      Mx().trace_descents->Add(resp.answer.timing.trace_descents);
      if (options_.slow_query_ms > 0.0 && exec_ms > options_.slow_query_ms) {
        PROVLIN_LOG(Warning)
            << "slow lineage query (" << exec_ms << " ms > "
            << options_.slow_query_ms << " ms): "
            << batch[i].request.ToString() << " t1=" << resp.answer.timing.t1_ms
            << "ms t2=" << resp.answer.timing.t2_ms
            << "ms probes=" << resp.answer.timing.trace_probes
            << " descents=" << resp.answer.timing.trace_descents
            << " worker=" << resp.worker;
      }
    }
  }
  for (size_t w = 0; w < worker_probes.size(); ++w) {
    metrics_.per_thread_probes[w] += worker_probes[w];
  }
  if (memo != nullptr) {
    metrics_.probe_memo_hits += memo->hits();
    metrics_.probe_memo_lookups += memo->lookups();
    Mx().memo_hits->Add(memo->hits());
    Mx().memo_lookups->Add(memo->lookups());
  }
  return responses;
}

ServiceMetrics LineageService::metrics() const {
  common::MutexLock lock(metrics_mu_);
  return metrics_;
}

void LineageService::ResetMetrics() {
  common::MutexLock lock(metrics_mu_);
  metrics_ = ServiceMetrics{};
  metrics_.per_thread_probes.assign(pool_.num_threads(), 0);
}

}  // namespace provlin::lineage
