#ifndef PROVLIN_VALUES_VALUE_PARSER_H_
#define PROVLIN_VALUES_VALUE_PARSER_H_

#include <string_view>

#include "common/result.h"
#include "values/value.h"

namespace provlin {

/// Parses a value literal as produced by Value::ToString():
///   - double-quoted strings with backslash escapes: "foo \"bar\""
///   - integers: 42, -7
///   - doubles: 3.14, -2e10
///   - booleans: true, false
///   - null
///   - nested lists: [ v1, v2, ... ]
/// Bare words (unquoted tokens that are not numbers/bools/null) parse as
/// strings, which keeps hand-written example inputs terse.
Result<Value> ParseValue(std::string_view text);

}  // namespace provlin

#endif  // PROVLIN_VALUES_VALUE_PARSER_H_
