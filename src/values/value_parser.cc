#include "values/value_parser.h"

#include <cctype>

#include "common/string_util.h"

namespace provlin {
namespace {

/// Recursive-descent parser over a string_view cursor.
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Result<Value> Parse() {
    SkipSpace();
    PROVLIN_ASSIGN_OR_RETURN(Value v, ParseOne());
    SkipSpace();
    if (pos_ != text_.size()) {
      return Status::InvalidArgument("trailing characters at offset " +
                                     std::to_string(pos_));
    }
    return v;
  }

 private:
  Result<Value> ParseOne() {
    SkipSpace();
    if (pos_ >= text_.size()) {
      return Status::InvalidArgument("unexpected end of input");
    }
    char c = text_[pos_];
    if (c == '[') return ParseList();
    if (c == '"') return ParseQuoted();
    if (text_.substr(pos_).rfind("error(\"", 0) == 0) return ParseError();
    return ParseBare();
  }

  Result<Value> ParseList() {
    ++pos_;  // consume '['
    std::vector<Value> elems;
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      return Value::List(std::move(elems));
    }
    while (true) {
      PROVLIN_ASSIGN_OR_RETURN(Value v, ParseOne());
      elems.push_back(std::move(v));
      SkipSpace();
      if (pos_ >= text_.size()) {
        return Status::InvalidArgument("unterminated list");
      }
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == ']') {
        ++pos_;
        return Value::List(std::move(elems));
      }
      return Status::InvalidArgument("expected ',' or ']' at offset " +
                                     std::to_string(pos_));
    }
  }

  Result<Value> ParseQuoted() {
    ++pos_;  // consume '"'
    std::string out;
    while (pos_ < text_.size()) {
      char c = text_[pos_++];
      if (c == '\\') {
        if (pos_ >= text_.size()) {
          return Status::InvalidArgument("dangling escape");
        }
        out += text_[pos_++];
      } else if (c == '"') {
        return Value::Str(std::move(out));
      } else {
        out += c;
      }
    }
    return Status::InvalidArgument("unterminated string literal");
  }

  Result<Value> ParseError() {
    pos_ += 6;  // consume 'error('
    PROVLIN_ASSIGN_OR_RETURN(Value msg, ParseQuoted());
    if (pos_ >= text_.size() || text_[pos_] != ')') {
      return Status::InvalidArgument("unterminated error literal");
    }
    ++pos_;
    return Value::Error(msg.atom().AsString());
  }

  Result<Value> ParseBare() {
    size_t start = pos_;
    while (pos_ < text_.size() && text_[pos_] != ',' && text_[pos_] != ']' &&
           text_[pos_] != '[') {
      ++pos_;
    }
    std::string_view tok = Trim(text_.substr(start, pos_ - start));
    if (tok.empty()) {
      return Status::InvalidArgument("empty token at offset " +
                                     std::to_string(start));
    }
    if (tok == "true") return Value::Boolean(true);
    if (tok == "false") return Value::Boolean(false);
    if (tok == "null") return Value::Null();
    int64_t i;
    if (ParseInt64(tok, &i)) return Value::Int(i);
    double d;
    if (ParseDouble(tok, &d)) return Value::Dbl(d);
    return Value::Str(std::string(tok));
  }

  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  std::string_view text_;
  size_t pos_ = 0;
};

}  // namespace

Result<Value> ParseValue(std::string_view text) { return Parser(text).Parse(); }

}  // namespace provlin
