#ifndef PROVLIN_VALUES_ATOM_H_
#define PROVLIN_VALUES_ATOM_H_

#include <cstdint>
#include <string>
#include <variant>

namespace provlin {

/// The basic (non-list) types S of the dataflow model (paper §2.1).
enum class AtomKind { kNull = 0, kString, kInt, kDouble, kBool, kError };

std::string_view AtomKindName(AtomKind kind);

/// An atomic workflow value: a member of one of the basic types, or an
/// *error token* — the Taverna-style marker substituted for a value when
/// the producing service invocation failed. Error tokens flow through
/// downstream processors without being consumed, so failures stay
/// localized to the affected elements and the provenance trace records
/// exactly which inputs the failure derives from. Lists are represented
/// by Value, which nests Atoms arbitrarily deep.
class Atom {
 public:
  /// Null atom — used for unbound optional inputs.
  Atom() : rep_(std::monostate{}) {}
  explicit Atom(std::string v) : rep_(std::move(v)) {}
  explicit Atom(const char* v) : rep_(std::string(v)) {}
  explicit Atom(int64_t v) : rep_(v) {}
  explicit Atom(double v) : rep_(v) {}
  explicit Atom(bool v) : rep_(v) {}

  /// An error token carrying a diagnostic message.
  static Atom Error(std::string message) {
    Atom a;
    a.rep_ = ErrorToken{std::move(message)};
    return a;
  }

  AtomKind kind() const;

  bool is_null() const { return kind() == AtomKind::kNull; }
  bool is_string() const { return kind() == AtomKind::kString; }
  bool is_int() const { return kind() == AtomKind::kInt; }
  bool is_double() const { return kind() == AtomKind::kDouble; }
  bool is_bool() const { return kind() == AtomKind::kBool; }
  bool is_error() const { return kind() == AtomKind::kError; }

  /// Accessors assume the matching kind; checked by assert in debug builds.
  const std::string& AsString() const { return std::get<std::string>(rep_); }
  int64_t AsInt() const { return std::get<int64_t>(rep_); }
  double AsDouble() const { return std::get<double>(rep_); }
  bool AsBool() const { return std::get<bool>(rep_); }
  const std::string& AsError() const {
    return std::get<ErrorToken>(rep_).message;
  }

  /// Unquoted rendering: strings verbatim, numbers in shortest form,
  /// booleans as true/false, null as "null".
  std::string ToString() const;

  /// Quoted rendering suitable for re-parsing inside a list literal:
  /// strings are double-quoted with backslash escapes.
  std::string ToLiteral() const;

  bool operator==(const Atom& other) const { return rep_ == other.rep_; }
  bool operator!=(const Atom& other) const { return !(*this == other); }
  /// Total order: first by kind, then by value — used as a storage key part.
  bool operator<(const Atom& other) const;

  size_t Hash() const;

 private:
  struct ErrorToken {
    std::string message;
    bool operator==(const ErrorToken& o) const {
      return message == o.message;
    }
    bool operator<(const ErrorToken& o) const { return message < o.message; }
  };

  std::variant<std::monostate, std::string, int64_t, double, bool, ErrorToken>
      rep_;
};

}  // namespace provlin

#endif  // PROVLIN_VALUES_ATOM_H_
