#include "values/type.h"

#include "values/value.h"

namespace provlin {

Result<InferredType> InferType(const Value& v) {
  if (v.is_atom()) {
    // Error tokens are base-type wildcards: they stand in for a value of
    // any type, so they infer like empty/null content.
    if (v.atom().is_error()) return InferredType{AtomKind::kNull, 0};
    return InferredType{v.atom().kind(), 0};
  }
  InferredType agg{AtomKind::kNull, 0};
  bool first = true;
  for (const Value& e : v.elements()) {
    PROVLIN_ASSIGN_OR_RETURN(InferredType et, InferType(e));
    if (first) {
      agg = et;
      first = false;
      continue;
    }
    if (et.depth != agg.depth) {
      return Status::InvalidArgument("non-uniform nesting depth in value " +
                                     v.ToString());
    }
    if (agg.base == AtomKind::kNull) {
      agg.base = et.base;
    } else if (et.base != AtomKind::kNull && et.base != agg.base) {
      return Status::InvalidArgument("mixed atom kinds in value " +
                                     v.ToString());
    }
  }
  return InferredType{agg.base, agg.depth + 1};
}

PortType PortType::Nested(int levels) const {
  PortType t = *this;
  t.depth = depth + levels;
  if (t.depth < 0) t.depth = 0;
  return t;
}

std::string PortType::ToString() const {
  std::string out;
  for (int i = 0; i < depth; ++i) out += "list(";
  out += AtomKindName(base);
  for (int i = 0; i < depth; ++i) out += ")";
  return out;
}

Result<PortType> PortType::Parse(std::string_view text) {
  int d = 0;
  std::string_view rest = text;
  while (rest.size() >= 5 && rest.substr(0, 5) == "list(") {
    if (rest.back() != ')') {
      return Status::InvalidArgument("unbalanced list() in type: " +
                                     std::string(text));
    }
    rest = rest.substr(5, rest.size() - 6);
    ++d;
  }
  PortType t;
  t.depth = d;
  if (rest == "string") {
    t.base = AtomKind::kString;
  } else if (rest == "int") {
    t.base = AtomKind::kInt;
  } else if (rest == "double") {
    t.base = AtomKind::kDouble;
  } else if (rest == "bool") {
    t.base = AtomKind::kBool;
  } else {
    return Status::InvalidArgument("unknown base type: " + std::string(rest));
  }
  return t;
}

}  // namespace provlin
