#include "values/value.h"

#include <cassert>

#include "values/type.h"

namespace provlin {

Value Value::List(std::vector<Value> elems) {
  Value v;
  v.kind_ = Kind::kList;
  v.elems_ = std::move(elems);
  return v;
}

Value Value::StringList(const std::vector<std::string>& items) {
  std::vector<Value> elems;
  elems.reserve(items.size());
  for (const std::string& s : items) elems.push_back(Value::Str(s));
  return List(std::move(elems));
}

const Atom& Value::atom() const {
  assert(is_atom());
  return atom_;
}

const std::vector<Value>& Value::elements() const {
  assert(is_list());
  return elems_;
}

int Value::depth() const {
  if (is_atom()) return 0;
  if (elems_.empty()) return 1;
  return 1 + elems_.front().depth();
}

Result<Value> Value::At(const Index& idx) const {
  const Value* cur = this;
  for (size_t i = 0; i < idx.length(); ++i) {
    if (!cur->is_list()) {
      return Status::OutOfRange("index " + idx.ToString() +
                                " descends into an atom");
    }
    int32_t c = idx[i];
    if (c < 0 || static_cast<size_t>(c) >= cur->elems_.size()) {
      return Status::OutOfRange("index " + idx.ToString() +
                                " out of range at component " +
                                std::to_string(i));
    }
    cur = &cur->elems_[static_cast<size_t>(c)];
  }
  return *cur;
}

size_t Value::TotalAtoms() const {
  if (is_atom()) return 1;
  size_t n = 0;
  for (const Value& e : elems_) n += e.TotalAtoms();
  return n;
}

bool Value::ContainsError() const {
  if (is_atom()) return atom_.is_error();
  for (const Value& e : elems_) {
    if (e.ContainsError()) return true;
  }
  return false;
}

std::string Value::FirstError() const {
  if (is_atom()) return atom_.is_error() ? atom_.AsError() : std::string();
  for (const Value& e : elems_) {
    std::string msg = e.FirstError();
    if (!msg.empty()) return msg;
  }
  return std::string();
}

namespace {

void CollectLeaves(const Value& v, const Index& at, std::vector<Index>* out) {
  if (v.is_atom()) {
    out->push_back(at);
    return;
  }
  const auto& elems = v.elements();
  for (size_t i = 0; i < elems.size(); ++i) {
    CollectLeaves(elems[i], at.Child(static_cast<int32_t>(i)), out);
  }
}

void CollectAtLevel(const Value& v, const Index& at, size_t remaining,
                    std::vector<Index>* out) {
  if (remaining == 0) {
    out->push_back(at);
    return;
  }
  if (v.is_atom()) return;  // cannot descend further
  const auto& elems = v.elements();
  for (size_t i = 0; i < elems.size(); ++i) {
    CollectAtLevel(elems[i], at.Child(static_cast<int32_t>(i)), remaining - 1,
                   out);
  }
}

}  // namespace

std::vector<Index> Value::LeafIndices() const {
  std::vector<Index> out;
  CollectLeaves(*this, Index::Empty(), &out);
  return out;
}

std::vector<Index> Value::IndicesAtLevel(size_t len) const {
  std::vector<Index> out;
  CollectAtLevel(*this, Index::Empty(), len, &out);
  return out;
}

std::string Value::ToString() const {
  if (is_atom()) return atom_.ToLiteral();
  std::string out = "[";
  for (size_t i = 0; i < elems_.size(); ++i) {
    if (i > 0) out += ",";
    out += elems_[i].ToString();
  }
  out += "]";
  return out;
}

bool Value::operator==(const Value& other) const {
  if (kind_ != other.kind_) return false;
  if (is_atom()) return atom_ == other.atom_;
  return elems_ == other.elems_;
}

}  // namespace provlin
