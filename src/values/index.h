#ifndef PROVLIN_VALUES_INDEX_H_
#define PROVLIN_VALUES_INDEX_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"

namespace provlin {

/// An element index path p = [p1 ... pk] into a nested list value
/// (paper §2.1: `v[p1...pk]`). Components are 0-based in the API; the
/// paper's examples are 1-based and the textual rendering follows the
/// paper for readability.
///
/// The empty index `[]` denotes the entire value (coarse granularity).
class Index {
 public:
  Index() = default;
  explicit Index(std::vector<int32_t> parts) : parts_(std::move(parts)) {}
  Index(std::initializer_list<int32_t> parts) : parts_(parts) {}

  static Index Empty() { return Index(); }

  bool empty() const { return parts_.empty(); }
  size_t length() const { return parts_.size(); }
  int32_t operator[](size_t i) const { return parts_[i]; }
  const std::vector<int32_t>& parts() const { return parts_; }

  /// Concatenation q = p1 · p2 (Prop. 1 composes output indices this way).
  Index Concat(const Index& other) const;

  /// Appends one component, returning a new index.
  Index Child(int32_t component) const;

  /// Contiguous fragment [from, from+len) — the building block of the
  /// index projection rule (Def. 4). Requires from+len <= length().
  Index SubIndex(size_t from, size_t len) const;

  /// First `len` components. Requires len <= length().
  Index Prefix(size_t len) const;

  /// True iff this index is a (non-strict) prefix of `other`:
  /// [] is a prefix of everything.
  bool IsPrefixOf(const Index& other) const;

  /// Paper-style rendering with 1-based components: "[1,2]"; "[]" if empty.
  std::string ToString() const;

  /// Order-preserving fixed-radix encoding for composite storage keys:
  /// "00001.00002" (0-based components, zero-padded to 5 digits). The
  /// empty index encodes as "". Lexicographic order of encodings equals
  /// the natural prefix-then-component order of indices, so B+tree prefix
  /// scans enumerate all sub-elements of an index.
  std::string Encode() const;

  /// Inverse of Encode(); rejects malformed strings.
  static Result<Index> Decode(std::string_view encoded);

  bool operator==(const Index& other) const { return parts_ == other.parts_; }
  bool operator!=(const Index& other) const { return !(*this == other); }
  bool operator<(const Index& other) const { return parts_ < other.parts_; }

 private:
  std::vector<int32_t> parts_;
};

}  // namespace provlin

#endif  // PROVLIN_VALUES_INDEX_H_
