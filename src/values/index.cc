#include "values/index.h"

#include <cassert>
#include <cstdio>

#include "common/string_util.h"

namespace provlin {

Index Index::Concat(const Index& other) const {
  std::vector<int32_t> parts = parts_;
  parts.insert(parts.end(), other.parts_.begin(), other.parts_.end());
  return Index(std::move(parts));
}

Index Index::Child(int32_t component) const {
  std::vector<int32_t> parts = parts_;
  parts.push_back(component);
  return Index(std::move(parts));
}

Index Index::SubIndex(size_t from, size_t len) const {
  assert(from + len <= parts_.size());
  return Index(std::vector<int32_t>(parts_.begin() + static_cast<long>(from),
                                    parts_.begin() +
                                        static_cast<long>(from + len)));
}

Index Index::Prefix(size_t len) const { return SubIndex(0, len); }

bool Index::IsPrefixOf(const Index& other) const {
  if (parts_.size() > other.parts_.size()) return false;
  for (size_t i = 0; i < parts_.size(); ++i) {
    if (parts_[i] != other.parts_[i]) return false;
  }
  return true;
}

std::string Index::ToString() const {
  std::string out = "[";
  for (size_t i = 0; i < parts_.size(); ++i) {
    if (i > 0) out += ",";
    out += std::to_string(parts_[i] + 1);  // paper uses 1-based indices
  }
  out += "]";
  return out;
}

std::string Index::Encode() const {
  std::string out;
  char buf[8];
  for (size_t i = 0; i < parts_.size(); ++i) {
    if (i > 0) out += '.';
    std::snprintf(buf, sizeof(buf), "%05d", parts_[i]);
    out += buf;
  }
  return out;
}

Result<Index> Index::Decode(std::string_view encoded) {
  if (encoded.empty()) return Index::Empty();
  std::vector<int32_t> parts;
  for (const std::string& tok : Split(encoded, '.')) {
    if (tok.size() != 5) {
      return Status::InvalidArgument("bad index component: '" + tok + "'");
    }
    int64_t v = 0;
    if (!ParseInt64(tok, &v) || v < 0) {
      return Status::InvalidArgument("bad index component: '" + tok + "'");
    }
    parts.push_back(static_cast<int32_t>(v));
  }
  return Index(std::move(parts));
}

}  // namespace provlin
