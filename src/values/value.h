#ifndef PROVLIN_VALUES_VALUE_H_
#define PROVLIN_VALUES_VALUE_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "values/atom.h"
#include "values/index.h"

namespace provlin {

/// A workflow value: an atom, or an arbitrarily nested list of values
/// (paper §2.1). Values are immutable once constructed; workflow ports,
/// provenance bindings and trace records all refer to Values.
class Value {
 public:
  /// Null atom.
  Value() : kind_(Kind::kAtom) {}
  explicit Value(Atom atom) : kind_(Kind::kAtom), atom_(std::move(atom)) {}

  /// Convenience atom constructors.
  static Value Str(std::string s) { return Value(Atom(std::move(s))); }
  static Value Int(int64_t v) { return Value(Atom(v)); }
  static Value Dbl(double v) { return Value(Atom(v)); }
  static Value Boolean(bool v) { return Value(Atom(v)); }
  static Value Null() { return Value(); }
  /// An error token (possibly wrapped later to match a declared depth).
  static Value Error(std::string message) {
    return Value(Atom::Error(std::move(message)));
  }

  /// List constructor.
  static Value List(std::vector<Value> elems);

  /// A list of string atoms — frequent in the testbed workflows.
  static Value StringList(const std::vector<std::string>& items);

  bool is_atom() const { return kind_ == Kind::kAtom; }
  bool is_list() const { return kind_ == Kind::kList; }

  const Atom& atom() const;
  const std::vector<Value>& elements() const;
  size_t list_size() const { return elements().size(); }

  /// Nesting depth: 0 for atoms; for lists, 1 + depth of the first
  /// element (1 for an empty list). The model assumes uniform depth;
  /// InferType() validates it.
  int depth() const;

  /// Element at index path `idx` (paper: v[p1...pk]); the empty index
  /// returns the whole value. Errors if any component is out of range or
  /// descends into an atom.
  Result<Value> At(const Index& idx) const;

  /// Number of atoms in the (possibly nested) value; atoms count as 1.
  size_t TotalAtoms() const;

  /// True when the value is, or contains (at any depth), an error token.
  bool ContainsError() const;

  /// The first error message found (document order), or "" when none.
  std::string FirstError() const;

  /// All index paths to leaf atoms, in document order. For an atom this
  /// is { [] }.
  std::vector<Index> LeafIndices() const;

  /// All index paths of exactly `len` components (i.e. the elements at
  /// nesting level `len`). len = 0 yields { [] }. Paths that would
  /// descend into atoms are skipped.
  std::vector<Index> IndicesAtLevel(size_t len) const;

  /// Literal rendering, e.g. [["foo","bar"],["red","fox"]].
  std::string ToString() const;

  bool operator==(const Value& other) const;
  bool operator!=(const Value& other) const { return !(*this == other); }

 private:
  enum class Kind { kAtom, kList };

  Kind kind_;
  Atom atom_;
  std::vector<Value> elems_;
};

}  // namespace provlin

#endif  // PROVLIN_VALUES_VALUE_H_
