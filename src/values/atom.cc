#include "values/atom.h"

#include <cmath>
#include <cstdio>
#include <functional>

namespace provlin {

std::string_view AtomKindName(AtomKind kind) {
  switch (kind) {
    case AtomKind::kNull:
      return "null";
    case AtomKind::kString:
      return "string";
    case AtomKind::kInt:
      return "int";
    case AtomKind::kDouble:
      return "double";
    case AtomKind::kBool:
      return "bool";
    case AtomKind::kError:
      return "error";
  }
  return "?";
}

AtomKind Atom::kind() const {
  switch (rep_.index()) {
    case 0:
      return AtomKind::kNull;
    case 1:
      return AtomKind::kString;
    case 2:
      return AtomKind::kInt;
    case 3:
      return AtomKind::kDouble;
    case 4:
      return AtomKind::kBool;
    case 5:
      return AtomKind::kError;
  }
  return AtomKind::kNull;
}

namespace {

std::string DoubleToString(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  // Prefer a shorter form when it round-trips.
  for (int prec = 1; prec < 17; ++prec) {
    char shorter[32];
    std::snprintf(shorter, sizeof(shorter), "%.*g", prec, v);
    double parsed = std::strtod(shorter, nullptr);
    if (parsed == v) return shorter;
  }
  return buf;
}

}  // namespace

std::string Atom::ToString() const {
  switch (kind()) {
    case AtomKind::kNull:
      return "null";
    case AtomKind::kString:
      return AsString();
    case AtomKind::kInt:
      return std::to_string(AsInt());
    case AtomKind::kDouble:
      return DoubleToString(AsDouble());
    case AtomKind::kBool:
      return AsBool() ? "true" : "false";
    case AtomKind::kError:
      return "error: " + AsError();
  }
  return "?";
}

std::string Atom::ToLiteral() const {
  if (is_error()) {
    std::string out = "error(\"";
    for (char c : AsError()) {
      if (c == '"' || c == '\\') out += '\\';
      out += c;
    }
    out += "\")";
    return out;
  }
  if (!is_string()) return ToString();
  std::string out = "\"";
  for (char c : AsString()) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  out += '"';
  return out;
}

bool Atom::operator<(const Atom& other) const {
  if (rep_.index() != other.rep_.index()) {
    return rep_.index() < other.rep_.index();
  }
  return rep_ < other.rep_;
}

size_t Atom::Hash() const {
  switch (kind()) {
    case AtomKind::kNull:
      return 0x9bf0d3;
    case AtomKind::kString:
      return std::hash<std::string>{}(AsString());
    case AtomKind::kInt:
      return std::hash<int64_t>{}(AsInt());
    case AtomKind::kDouble:
      return std::hash<double>{}(AsDouble());
    case AtomKind::kBool:
      return std::hash<bool>{}(AsBool());
    case AtomKind::kError:
      return std::hash<std::string>{}(AsError()) ^ 0xE770Full;
  }
  return 0;
}

}  // namespace provlin
