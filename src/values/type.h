#ifndef PROVLIN_VALUES_TYPE_H_
#define PROVLIN_VALUES_TYPE_H_

#include <string>

#include "common/result.h"
#include "values/atom.h"

namespace provlin {

class Value;

/// Declared type of a port (paper §2.1): a basic type from S, or
/// list(τ) nested to arbitrary depth. `depth` is the paper's declared
/// depth dd(X): 0 for a basic type, k for list^k(basic).
struct PortType {
  AtomKind base = AtomKind::kString;
  int depth = 0;

  static PortType String(int d = 0) { return {AtomKind::kString, d}; }
  static PortType Int(int d = 0) { return {AtomKind::kInt, d}; }
  static PortType Double(int d = 0) { return {AtomKind::kDouble, d}; }
  static PortType Bool(int d = 0) { return {AtomKind::kBool, d}; }

  /// Adds `levels` of list nesting (may be negative to peel levels;
  /// clamped at 0).
  PortType Nested(int levels) const;

  /// Paper notation, e.g. "list(list(string))".
  std::string ToString() const;

  /// Parses the paper notation; rejects malformed strings.
  static Result<PortType> Parse(std::string_view text);

  bool operator==(const PortType& other) const {
    return base == other.base && depth == other.depth;
  }
};

/// Actual depth of a value (paper: depth(v)); requires uniform nesting,
/// which InferType checks.
struct InferredType {
  AtomKind base = AtomKind::kNull;  // kNull when the value has no atoms
  int depth = 0;
};

/// Computes the actual type/depth of `v`, verifying the model's
/// assumption that all elements of a list sit at the same depth.
/// Empty lists infer base kNull at the observed nesting depth.
Result<InferredType> InferType(const Value& v);

}  // namespace provlin

#endif  // PROVLIN_VALUES_TYPE_H_
