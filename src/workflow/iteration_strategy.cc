#include "workflow/iteration_strategy.h"

#include <cctype>

namespace provlin::workflow {

std::string StrategyNode::ToString() const {
  switch (kind) {
    case Kind::kPort:
      return port;
    case Kind::kCross:
    case Kind::kDot: {
      std::string out = kind == Kind::kCross ? "cross(" : "dot(";
      for (size_t i = 0; i < children.size(); ++i) {
        if (i > 0) out += ",";
        out += children[i].ToString();
      }
      out += ")";
      return out;
    }
  }
  return "?";
}

bool StrategyNode::operator==(const StrategyNode& o) const {
  return kind == o.kind && port == o.port && children == o.children;
}

namespace {

class StrategyParser {
 public:
  explicit StrategyParser(std::string_view text) : text_(text) {}

  Result<StrategyNode> Parse() {
    PROVLIN_ASSIGN_OR_RETURN(StrategyNode node, ParseNode());
    SkipSpace();
    if (pos_ != text_.size()) {
      return Status::InvalidArgument(
          "trailing characters in strategy at offset " +
          std::to_string(pos_));
    }
    return node;
  }

 private:
  Result<StrategyNode> ParseNode() {
    SkipSpace();
    PROVLIN_ASSIGN_OR_RETURN(std::string name, ParseIdentifier());
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == '(') {
      StrategyNode::Kind kind;
      if (name == "cross") {
        kind = StrategyNode::Kind::kCross;
      } else if (name == "dot") {
        kind = StrategyNode::Kind::kDot;
      } else {
        return Status::InvalidArgument("unknown combinator '" + name + "'");
      }
      ++pos_;  // consume '('
      std::vector<StrategyNode> children;
      while (true) {
        PROVLIN_ASSIGN_OR_RETURN(StrategyNode child, ParseNode());
        children.push_back(std::move(child));
        SkipSpace();
        if (pos_ >= text_.size()) {
          return Status::InvalidArgument("unterminated combinator");
        }
        if (text_[pos_] == ',') {
          ++pos_;
          continue;
        }
        if (text_[pos_] == ')') {
          ++pos_;
          break;
        }
        return Status::InvalidArgument("expected ',' or ')' at offset " +
                                       std::to_string(pos_));
      }
      if (children.empty()) {
        return Status::InvalidArgument("empty combinator");
      }
      return kind == StrategyNode::Kind::kCross
                 ? StrategyNode::Cross(std::move(children))
                 : StrategyNode::Dot(std::move(children));
    }
    return StrategyNode::Port(std::move(name));
  }

  Result<std::string> ParseIdentifier() {
    size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '_')) {
      ++pos_;
    }
    if (pos_ == start) {
      return Status::InvalidArgument("expected an identifier at offset " +
                                     std::to_string(start));
    }
    return std::string(text_.substr(start, pos_ - start));
  }

  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  std::string_view text_;
  size_t pos_ = 0;
};

/// Recursive layout: records each port's (offset, length) and returns
/// the node's level count.
Result<int> LayoutNode(const StrategyNode& node,
                       const std::map<std::string, int>& deltas,
                       size_t offset, StrategyLayout* out) {
  switch (node.kind) {
    case StrategyNode::Kind::kPort: {
      auto it = deltas.find(node.port);
      if (it == deltas.end()) {
        return Status::NotFound("strategy references unknown port '" +
                                node.port + "'");
      }
      if (out->slots.count(node.port) > 0) {
        return Status::InvalidArgument("port '" + node.port +
                                       "' appears twice in the strategy");
      }
      int levels = it->second > 0 ? it->second : 0;
      out->slots[node.port] = PortSlot{offset, static_cast<size_t>(levels)};
      return levels;
    }
    case StrategyNode::Kind::kCross: {
      int total = 0;
      for (const StrategyNode& child : node.children) {
        PROVLIN_ASSIGN_OR_RETURN(
            int levels,
            LayoutNode(child, deltas, offset + static_cast<size_t>(total),
                       out));
        total += levels;
      }
      return total;
    }
    case StrategyNode::Kind::kDot: {
      // All iterated children share the offset and must agree on levels.
      int common = 0;
      for (const StrategyNode& child : node.children) {
        PROVLIN_ASSIGN_OR_RETURN(int levels,
                                 LayoutNode(child, deltas, offset, out));
        if (levels == 0) continue;
        if (common == 0) {
          common = levels;
        } else if (levels != common) {
          return Status::InvalidArgument(
              "dot children disagree on iteration depth (" +
              std::to_string(common) + " vs " + std::to_string(levels) +
              ")");
        }
      }
      return common;
    }
  }
  return Status::Internal("corrupt strategy node");
}

}  // namespace

Result<StrategyNode> StrategyNode::Parse(std::string_view text) {
  return StrategyParser(text).Parse();
}

Result<StrategyLayout> LayoutStrategy(
    const StrategyNode& tree,
    const std::map<std::string, int>& positive_deltas) {
  StrategyLayout layout;
  PROVLIN_ASSIGN_OR_RETURN(layout.levels,
                           LayoutNode(tree, positive_deltas, 0, &layout));
  // Every iterated port must be placed by the strategy.
  for (const auto& [port, delta] : positive_deltas) {
    if (delta > 0 && layout.slots.count(port) == 0) {
      return Status::InvalidArgument(
          "iterated port '" + port +
          "' is not covered by the iteration strategy");
    }
    if (layout.slots.count(port) == 0) {
      layout.slots[port] = PortSlot{0, 0};
    }
  }
  return layout;
}

}  // namespace provlin::workflow
