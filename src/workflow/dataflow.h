#ifndef PROVLIN_WORKFLOW_DATAFLOW_H_
#define PROVLIN_WORKFLOW_DATAFLOW_H_

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/result.h"
#include "values/type.h"
#include "values/value.h"
#include "workflow/iteration_strategy.h"

namespace provlin::workflow {

/// Reserved processor name denoting the dataflow itself: arcs from
/// ("workflow", in) feed user-supplied inputs into the graph, arcs into
/// ("workflow", out) collect results (paper §2.3 writes e.g.
/// ⟨workflow:paths_per_gene[1]⟩).
inline constexpr const char* kWorkflowProcessor = "workflow";

/// A named, typed port. The declared type's depth is the paper's dd(X).
struct Port {
  std::string name;
  PortType declared_type;

  int dd() const { return declared_type.depth; }
};

/// How a processor combines multiple iterated input lists (§3.2):
/// kCross is Taverna's default generalized cross product (Def. 2);
/// kDot is the "zip" combinator of footnote 7 (equal-shape element-wise
/// pairing) — an extension beyond the paper's main scope, with its own
/// index-projection rule.
enum class IterationStrategy { kCross, kDot };

/// A workflow step: black-box activity with ordered input/output ports.
/// `activity` names the behaviour in the engine's ActivityRegistry;
/// `config` carries activity parameters (treated as part of the black
/// box, not as data inputs). A processor may instead wrap a nested
/// dataflow (`sub_dataflow`), which Flatten() inlines.
struct Processor {
  std::string name;
  std::vector<Port> inputs;   // ordered — index projection depends on it
  std::vector<Port> outputs;
  std::string activity;
  std::map<std::string, std::string> config;
  IterationStrategy strategy = IterationStrategy::kCross;
  /// Optional iteration-strategy *expression* (footnote 7) combining
  /// cross and dot over the input ports, e.g. cross(a, dot(b, c)).
  /// When absent, `strategy` applies flatly over all inputs in order.
  std::optional<StrategyNode> strategy_tree;
  /// Default bindings for input ports with no incoming arc (§2.1).
  std::map<std::string, Value> defaults;
  /// Set when this processor is itself a dataflow (hierarchical nesting).
  std::shared_ptr<const class Dataflow> sub_dataflow;

  const Port* FindInput(std::string_view port) const;
  /// The strategy expression in effect: `strategy_tree` when set,
  /// otherwise the flat `strategy` over all input ports in order.
  StrategyNode EffectiveStrategy() const;
  const Port* FindOutput(std::string_view port) const;
  /// Ordinal of the named input port.
  std::optional<size_t> InputOrdinal(std::string_view port) const;
};

/// One end of an arc: "P:X". `processor` may be kWorkflowProcessor.
struct PortRef {
  std::string processor;
  std::string port;

  std::string ToString() const { return processor + ":" + port; }
  bool operator==(const PortRef& o) const {
    return processor == o.processor && port == o.port;
  }
  bool operator<(const PortRef& o) const {
    return processor != o.processor ? processor < o.processor : port < o.port;
  }
};

/// Data dependency src -> dst (paper §2.1).
struct Arc {
  PortRef src;
  PortRef dst;

  std::string ToString() const {
    return src.ToString() + " -> " + dst.ToString();
  }
};

class PortSpace;

/// A dataflow specification D = (N, E) plus its own typed input/output
/// ports. Construction is typically via DataflowBuilder; Validate()
/// checks well-formedness and Flatten() inlines nested sub-dataflows so
/// the execution engine and the lineage algorithms always see one graph.
class Dataflow {
 public:
  explicit Dataflow(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }

  void AddInput(Port port) {
    port_space_.reset();
    inputs_.push_back(std::move(port));
  }
  void AddOutput(Port port) {
    port_space_.reset();
    outputs_.push_back(std::move(port));
  }
  void AddProcessor(Processor p) {
    port_space_.reset();
    processors_.push_back(std::move(p));
  }
  Status AddArc(const PortRef& src, const PortRef& dst);

  const std::vector<Port>& inputs() const { return inputs_; }
  const std::vector<Port>& outputs() const { return outputs_; }
  const std::vector<Processor>& processors() const { return processors_; }
  const std::vector<Arc>& arcs() const { return arcs_; }

  const Processor* FindProcessor(std::string_view name) const;
  const Port* FindWorkflowInput(std::string_view name) const;
  const Port* FindWorkflowOutput(std::string_view name) const;

  /// Arcs whose destination is `ref` (at most one by validation) /
  /// whose source is `ref`.
  std::vector<const Arc*> ArcsInto(const PortRef& ref) const;
  std::vector<const Arc*> ArcsFrom(const PortRef& ref) const;

  /// Declared type of any port reachable by a PortRef, including the
  /// workflow pseudo-processor's ports.
  Result<PortType> PortDeclaredType(const PortRef& ref,
                                    bool as_destination) const;

  /// Number of processor nodes (the paper's "total number of nodes").
  size_t num_processors() const { return processors_.size(); }

  /// Recursively inlines nested sub-dataflows. Inner processors are
  /// renamed "<outer>.<inner>"; arcs through the nested workflow's ports
  /// are spliced end-to-end. The result contains no sub_dataflow nodes.
  Result<std::shared_ptr<Dataflow>> Flatten() const;

  /// Resolved dense-slot namespace over every addressable port. Built on
  /// first use (Validate() warms it) and cached; mutators invalidate the
  /// cache, so the reference is stable only while the graph is frozen.
  /// Safe to call from concurrent readers of a frozen graph (the lazy
  /// build is serialized); mutators must not race with readers.
  const PortSpace& Ports() const;

 private:
  std::string name_;
  std::vector<Port> inputs_;
  std::vector<Port> outputs_;
  std::vector<Processor> processors_;
  std::vector<Arc> arcs_;
  mutable std::shared_ptr<const PortSpace> port_space_;
};

}  // namespace provlin::workflow

#endif  // PROVLIN_WORKFLOW_DATAFLOW_H_
