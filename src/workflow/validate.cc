#include "workflow/validate.h"

#include <map>
#include <set>

#include "workflow/depth_propagation.h"
#include "workflow/graph.h"
#include "workflow/port_space.h"

namespace provlin::workflow {

namespace {

Status CheckUniquePortNames(const std::vector<Port>& ports,
                            const std::string& context) {
  std::set<std::string> seen;
  for (const Port& p : ports) {
    if (p.name.empty()) {
      return Status::InvalidArgument("empty port name in " + context);
    }
    if (!seen.insert(p.name).second) {
      return Status::InvalidArgument("duplicate port '" + p.name + "' in " +
                                     context);
    }
  }
  return Status::OK();
}

}  // namespace

Status Validate(const Dataflow& dataflow) {
  // Processor names.
  std::set<std::string> names;
  for (const Processor& p : dataflow.processors()) {
    if (p.name.empty()) {
      return Status::InvalidArgument("processor with empty name");
    }
    if (p.name == kWorkflowProcessor) {
      return Status::InvalidArgument("'workflow' is a reserved name");
    }
    if (!names.insert(p.name).second) {
      return Status::InvalidArgument("duplicate processor '" + p.name + "'");
    }
    if (p.sub_dataflow != nullptr) {
      return Status::FailedPrecondition(
          "processor '" + p.name +
          "' wraps a nested dataflow; call Flatten() before Validate()");
    }
    if (p.activity.empty()) {
      return Status::InvalidArgument("processor '" + p.name +
                                     "' has no activity");
    }
    PROVLIN_RETURN_IF_ERROR(
        CheckUniquePortNames(p.inputs, "inputs of '" + p.name + "'"));
    PROVLIN_RETURN_IF_ERROR(
        CheckUniquePortNames(p.outputs, "outputs of '" + p.name + "'"));
    for (const auto& [port, _] : p.defaults) {
      if (p.FindInput(port) == nullptr) {
        return Status::InvalidArgument("default for unknown port '" + port +
                                       "' on '" + p.name + "'");
      }
    }
  }
  PROVLIN_RETURN_IF_ERROR(
      CheckUniquePortNames(dataflow.inputs(), "workflow inputs"));
  PROVLIN_RETURN_IF_ERROR(
      CheckUniquePortNames(dataflow.outputs(), "workflow outputs"));

  // Arcs.
  std::set<std::string> dst_seen;
  for (const Arc& a : dataflow.arcs()) {
    PROVLIN_ASSIGN_OR_RETURN(
        PortType src_type,
        dataflow.PortDeclaredType(a.src, /*as_destination=*/false));
    PROVLIN_ASSIGN_OR_RETURN(
        PortType dst_type,
        dataflow.PortDeclaredType(a.dst, /*as_destination=*/true));
    if (src_type.base != dst_type.base) {
      return Status::InvalidArgument(
          "arc " + a.ToString() + " connects base type " +
          std::string(AtomKindName(src_type.base)) + " to " +
          std::string(AtomKindName(dst_type.base)));
    }
    if (!dst_seen.insert(a.dst.ToString()).second) {
      return Status::InvalidArgument("port " + a.dst.ToString() +
                                     " has multiple incoming arcs");
    }
  }

  // Acyclicity (also a precondition of depth propagation).
  ProcessorGraph graph(dataflow);
  PROVLIN_RETURN_IF_ERROR(graph.TopologicalOrder().status());

  // Depth propagation validates the iteration-strategy expressions as a
  // side effect: unknown/duplicated ports, uncovered iterated ports, and
  // dot children with unequal iteration depths all surface here.
  PROVLIN_RETURN_IF_ERROR(PropagateDepths(dataflow).status());

  // Warm the dense port-slot namespace so the engine and lineage layers
  // resolve names to slot ids without a first-use build.
  dataflow.Ports();

  return Status::OK();
}

}  // namespace provlin::workflow
