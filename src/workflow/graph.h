#ifndef PROVLIN_WORKFLOW_GRAPH_H_
#define PROVLIN_WORKFLOW_GRAPH_H_

#include <map>
#include <set>
#include <string>
#include <vector>

#include "common/result.h"
#include "workflow/dataflow.h"

namespace provlin::workflow {

/// Processor-level dependency view of a dataflow: the paper's
/// specification graph, with the workflow pseudo-processor excluded.
class ProcessorGraph {
 public:
  /// Builds the adjacency structure; the dataflow must outlive the graph.
  explicit ProcessorGraph(const Dataflow& dataflow);

  /// pred(P): processors with an arc into some input port of P (§3.1).
  const std::set<std::string>& Predecessors(const std::string& proc) const;
  const std::set<std::string>& Successors(const std::string& proc) const;

  /// Topological order of processors (Kahn's algorithm, ties broken by
  /// declaration order so results are deterministic). Errors on cycles.
  Result<std::vector<std::string>> TopologicalOrder() const;

  /// Processors from which `target` is reachable (inclusive) — the
  /// upstream cone that a lineage query can ever visit.
  std::set<std::string> UpstreamOf(const std::string& target) const;

  size_t num_nodes() const { return order_.size(); }

 private:
  std::vector<std::string> order_;  // declaration order
  std::map<std::string, std::set<std::string>> preds_;
  std::map<std::string, std::set<std::string>> succs_;
  std::set<std::string> empty_;
};

}  // namespace provlin::workflow

#endif  // PROVLIN_WORKFLOW_GRAPH_H_
