#ifndef PROVLIN_WORKFLOW_PORT_SPACE_H_
#define PROVLIN_WORKFLOW_PORT_SPACE_H_

#include <cstdint>
#include <map>
#include <vector>

#include "workflow/dataflow.h"

namespace provlin::workflow {

/// Dense identifier of one addressable port of a flattened dataflow —
/// the workflow pseudo-processor's inputs and outputs plus every
/// processor input/output port. Slot ids index flat arrays, so the
/// execution engine binds and looks up port values without hashing
/// "processor:port" strings. (Distinct from PortSlot in
/// depth_propagation.h, which describes an index-range layout.)
using PortSlotId = uint32_t;

inline constexpr PortSlotId kNoPortSlot = UINT32_MAX;

/// The resolved port namespace of one dataflow: a bijection between
/// PortRefs and dense slot ids, assigned in a deterministic order
/// (workflow inputs, workflow outputs, then each processor's inputs and
/// outputs in declaration order). Built once per dataflow — Validate()
/// warms it — and cached on the Dataflow; the dataflow must not gain
/// ports afterwards.
class PortSpace {
 public:
  explicit PortSpace(const Dataflow& flow);

  /// Slot of `ref`, or kNoPortSlot if the dataflow has no such port.
  PortSlotId Find(const PortRef& ref) const {
    auto it = by_ref_.find(ref);
    return it == by_ref_.end() ? kNoPortSlot : it->second;
  }

  const PortRef& RefOf(PortSlotId id) const { return refs_[id]; }

  size_t size() const { return refs_.size(); }

 private:
  void Add(std::string processor, std::string port);

  std::vector<PortRef> refs_;
  std::map<PortRef, PortSlotId> by_ref_;
};

}  // namespace provlin::workflow

#endif  // PROVLIN_WORKFLOW_PORT_SPACE_H_
