#ifndef PROVLIN_WORKFLOW_DEPTH_PROPAGATION_H_
#define PROVLIN_WORKFLOW_DEPTH_PROPAGATION_H_

#include <map>
#include <string>
#include <vector>

#include "common/result.h"
#include "workflow/dataflow.h"
#include "workflow/iteration_strategy.h"

namespace provlin::workflow {

/// Statically resolved depths for one processor (paper §3.1):
///   input_depths[i]   = depth(P:Xi), the actual depth of any value that
///                       can reach the port at runtime;
///   input_deltas[i]   = δs(Xi) = depth(P:Xi) − dd(Xi), possibly negative
///                       (negative mismatches wrap values in singletons
///                       and contribute no iteration levels);
///   iteration_levels  = l(P): Σ max(0, δs(Xi)) under the cross-product
///                       strategy, max_i max(0, δs(Xi)) under dot;
///   output_depths[i]  = dd(Yi) + l(P).
struct ProcessorDepths {
  std::vector<int> input_depths;
  std::vector<int> input_deltas;
  int iteration_levels = 0;
  std::vector<int> output_depths;
  /// Per-port placement of index fragments within the output index,
  /// derived from the processor's iteration-strategy expression: cross
  /// appends siblings, dot aligns them. Both lineage directions read
  /// fragments from these (offset, length) slots (generalized Prop. 1).
  std::map<std::string, PortSlot> slots;
};

/// Result of Alg. 1 (PropagateDepths) over a flattened dataflow: actual
/// depths for every port, computed once per workflow definition and
/// shared by the execution engine and by the IndexProj lineage engine.
class DepthMap {
 public:
  const ProcessorDepths& ForProcessor(const std::string& name) const;

  /// Actual depth of an arbitrary port reference; for the workflow
  /// pseudo-processor, inputs have their declared depth (assumption 2 of
  /// §3.1) and outputs the depth of their producing port.
  Result<int> PortDepth(const PortRef& ref, bool is_input) const;

  /// δs for input port ordinal `i` of `proc`.
  Result<int> InputDelta(const std::string& proc, size_t input_ordinal) const;

 private:
  friend Result<DepthMap> PropagateDepths(const Dataflow& dataflow);

  using PortKey = std::pair<std::string, std::string>;  // (processor, port)

  std::map<std::string, ProcessorDepths> per_processor_;
  std::map<PortKey, int> input_depth_by_name_;
  std::map<PortKey, int> output_depth_by_name_;
  std::map<std::string, int> workflow_input_depths_;
  std::map<std::string, int> workflow_output_depths_;
  ProcessorDepths empty_;
};

/// Alg. 1: topologically sorts the (flattened) dataflow and propagates
/// declared depths and mismatches from the workflow inputs downstream.
/// Fails on cyclic graphs or dangling arc references.
Result<DepthMap> PropagateDepths(const Dataflow& dataflow);

}  // namespace provlin::workflow

#endif  // PROVLIN_WORKFLOW_DEPTH_PROPAGATION_H_
