#include "workflow/graph.h"

#include <deque>

namespace provlin::workflow {

ProcessorGraph::ProcessorGraph(const Dataflow& dataflow) {
  for (const Processor& p : dataflow.processors()) {
    order_.push_back(p.name);
    preds_[p.name];
    succs_[p.name];
  }
  for (const Arc& a : dataflow.arcs()) {
    if (a.src.processor == kWorkflowProcessor ||
        a.dst.processor == kWorkflowProcessor) {
      continue;
    }
    preds_[a.dst.processor].insert(a.src.processor);
    succs_[a.src.processor].insert(a.dst.processor);
  }
}

const std::set<std::string>& ProcessorGraph::Predecessors(
    const std::string& proc) const {
  auto it = preds_.find(proc);
  return it == preds_.end() ? empty_ : it->second;
}

const std::set<std::string>& ProcessorGraph::Successors(
    const std::string& proc) const {
  auto it = succs_.find(proc);
  return it == succs_.end() ? empty_ : it->second;
}

Result<std::vector<std::string>> ProcessorGraph::TopologicalOrder() const {
  std::map<std::string, size_t> in_degree;
  for (const std::string& p : order_) {
    in_degree[p] = Predecessors(p).size();
  }
  // Kahn's algorithm with a FIFO seeded in declaration order.
  std::deque<std::string> ready;
  for (const std::string& p : order_) {
    if (in_degree[p] == 0) ready.push_back(p);
  }
  std::vector<std::string> out;
  while (!ready.empty()) {
    std::string p = ready.front();
    ready.pop_front();
    out.push_back(p);
    for (const std::string& s : Successors(p)) {
      if (--in_degree[s] == 0) ready.push_back(s);
    }
  }
  if (out.size() != order_.size()) {
    return Status::FailedPrecondition("dataflow graph contains a cycle");
  }
  return out;
}

std::set<std::string> ProcessorGraph::UpstreamOf(
    const std::string& target) const {
  std::set<std::string> seen;
  std::deque<std::string> frontier{target};
  while (!frontier.empty()) {
    std::string p = frontier.front();
    frontier.pop_front();
    if (!seen.insert(p).second) continue;
    for (const std::string& q : Predecessors(p)) frontier.push_back(q);
  }
  return seen;
}

}  // namespace provlin::workflow
