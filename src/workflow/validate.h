#ifndef PROVLIN_WORKFLOW_VALIDATE_H_
#define PROVLIN_WORKFLOW_VALIDATE_H_

#include "common/result.h"
#include "workflow/dataflow.h"

namespace provlin::workflow {

/// Structural well-formedness checks for a *flattened* dataflow:
///   - non-empty, unique processor names; "workflow" is reserved;
///   - unique port names per processor side and per workflow side;
///   - every arc endpoint resolves to an existing port of the right
///     direction, and no input port has two incoming arcs;
///   - the processor graph is acyclic;
///   - arc endpoints agree on the base (atom) type — depth mismatch is
///     legal and drives implicit iteration;
///   - each processor has an activity (or is a nested dataflow, which
///     Flatten() should have removed);
///   - dot-strategy processors have equal positive mismatches on all
///     iterated ports (the zip combinator needs aligned shapes).
Status Validate(const Dataflow& dataflow);

}  // namespace provlin::workflow

#endif  // PROVLIN_WORKFLOW_VALIDATE_H_
