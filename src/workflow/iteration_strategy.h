#ifndef PROVLIN_WORKFLOW_ITERATION_STRATEGY_H_
#define PROVLIN_WORKFLOW_ITERATION_STRATEGY_H_

#include <map>
#include <string>
#include <vector>

#include "common/result.h"

namespace provlin::workflow {

/// A Taverna iteration-strategy *expression* (the paper's footnote 7:
/// cross and dot "combined into complex expressions", which it leaves
/// out of scope): leaves name input ports, internal nodes combine their
/// children with the cross or dot product. Example:
///
///   cross(genes, dot(samples, labels))
///
/// iterates genes against position-wise (samples, labels) pairs.
///
/// Semantics in terms of iteration levels (with δ⁺ = max(0, δs)):
///   levels(port p)        = δ⁺(p)
///   levels(cross(c...))   = Σ levels(c)
///   levels(dot(c...))     = common levels of its children (all iterated
///                           children must agree — validated)
///
/// The index-projection property (Prop. 1) generalizes: every port's
/// fragment occupies a fixed, statically computable *offset* within the
/// output index — cross appends siblings left to right, dot aligns its
/// children at the same offset. Both lineage directions rely only on
/// (offset, length) pairs, so focused queries stay O(1) per processor
/// under arbitrary strategy expressions.
struct StrategyNode {
  enum class Kind { kCross, kDot, kPort };

  Kind kind = Kind::kCross;
  std::string port;                    // kPort only
  std::vector<StrategyNode> children;  // kCross/kDot only

  static StrategyNode Port(std::string name) {
    StrategyNode n;
    n.kind = Kind::kPort;
    n.port = std::move(name);
    return n;
  }
  static StrategyNode Cross(std::vector<StrategyNode> children) {
    StrategyNode n;
    n.kind = Kind::kCross;
    n.children = std::move(children);
    return n;
  }
  static StrategyNode Dot(std::vector<StrategyNode> children) {
    StrategyNode n;
    n.kind = Kind::kDot;
    n.children = std::move(children);
    return n;
  }

  /// "cross(a,dot(b,c))" — parsable by Parse().
  std::string ToString() const;

  /// Parses the ToString() form; port names are bare identifiers.
  static Result<StrategyNode> Parse(std::string_view text);

  bool operator==(const StrategyNode& o) const;
};

/// Per-port placement of index fragments within the output index q.
struct PortSlot {
  size_t offset = 0;
  size_t length = 0;  // δ⁺ of the port; 0 for non-iterated ports
};

/// Computes levels and per-port slots for a strategy tree, given each
/// referenced port's positive mismatch δ⁺. Validates that dot children
/// with iteration agree on their level count and that no port repeats.
/// Ports in `positive_deltas` missing from the tree get a zero slot.
struct StrategyLayout {
  int levels = 0;
  std::map<std::string, PortSlot> slots;
};
Result<StrategyLayout> LayoutStrategy(
    const StrategyNode& tree,
    const std::map<std::string, int>& positive_deltas);

}  // namespace provlin::workflow

#endif  // PROVLIN_WORKFLOW_ITERATION_STRATEGY_H_
