#include "workflow/builder.h"

#include "workflow/validate.h"

namespace provlin::workflow {

DataflowBuilder::ProcBuilder& DataflowBuilder::ProcBuilder::Activity(
    std::string activity) {
  p_->activity = std::move(activity);
  return *this;
}

DataflowBuilder::ProcBuilder& DataflowBuilder::ProcBuilder::In(
    std::string port, PortType type) {
  p_->inputs.push_back(Port{std::move(port), type});
  return *this;
}

DataflowBuilder::ProcBuilder& DataflowBuilder::ProcBuilder::Out(
    std::string port, PortType type) {
  p_->outputs.push_back(Port{std::move(port), type});
  return *this;
}

DataflowBuilder::ProcBuilder& DataflowBuilder::ProcBuilder::Config(
    std::string key, std::string value) {
  p_->config[std::move(key)] = std::move(value);
  return *this;
}

DataflowBuilder::ProcBuilder& DataflowBuilder::ProcBuilder::Strategy(
    IterationStrategy strategy) {
  p_->strategy = strategy;
  return *this;
}

DataflowBuilder::ProcBuilder& DataflowBuilder::ProcBuilder::StrategyTree(
    StrategyNode tree) {
  p_->strategy_tree = std::move(tree);
  return *this;
}

DataflowBuilder::ProcBuilder& DataflowBuilder::ProcBuilder::Default(
    std::string port, Value value) {
  p_->defaults.emplace(std::move(port), std::move(value));
  return *this;
}

DataflowBuilder::ProcBuilder& DataflowBuilder::ProcBuilder::Nested(
    std::shared_ptr<const Dataflow> sub) {
  p_->sub_dataflow = std::move(sub);
  if (p_->activity.empty()) p_->activity = "nested";
  return *this;
}

DataflowBuilder::DataflowBuilder(std::string name)
    : flow_(std::make_unique<Dataflow>(std::move(name))) {}

DataflowBuilder& DataflowBuilder::Input(std::string port, PortType type) {
  flow_->AddInput(Port{std::move(port), type});
  return *this;
}

DataflowBuilder& DataflowBuilder::Output(std::string port, PortType type) {
  flow_->AddOutput(Port{std::move(port), type});
  return *this;
}

DataflowBuilder::ProcBuilder DataflowBuilder::Proc(std::string name) {
  Processor p;
  p.name = std::move(name);
  flow_->AddProcessor(std::move(p));
  return ProcBuilder(
      const_cast<Processor*>(&flow_->processors().back()));
}

DataflowBuilder& DataflowBuilder::Arc(std::string_view src,
                                      std::string_view dst) {
  if (!deferred_error_.ok()) return *this;
  auto s = ParsePortRef(src);
  if (!s.ok()) {
    deferred_error_ = s.status();
    return *this;
  }
  auto d = ParsePortRef(dst);
  if (!d.ok()) {
    deferred_error_ = d.status();
    return *this;
  }
  Status st = flow_->AddArc(s.value(), d.value());
  if (!st.ok()) deferred_error_ = st;
  return *this;
}

Result<std::shared_ptr<const Dataflow>> DataflowBuilder::Build() {
  PROVLIN_RETURN_IF_ERROR(deferred_error_);
  PROVLIN_ASSIGN_OR_RETURN(std::shared_ptr<Dataflow> flat, flow_->Flatten());
  PROVLIN_RETURN_IF_ERROR(Validate(*flat));
  return std::shared_ptr<const Dataflow>(std::move(flat));
}

Result<PortRef> ParsePortRef(std::string_view text) {
  size_t pos = text.find(':');
  if (pos == std::string_view::npos || pos == 0 || pos + 1 >= text.size()) {
    return Status::InvalidArgument("malformed port reference '" +
                                   std::string(text) + "' (expected P:X)");
  }
  return PortRef{std::string(text.substr(0, pos)),
                 std::string(text.substr(pos + 1))};
}

}  // namespace provlin::workflow
