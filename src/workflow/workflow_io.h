#ifndef PROVLIN_WORKFLOW_WORKFLOW_IO_H_
#define PROVLIN_WORKFLOW_WORKFLOW_IO_H_

#include <memory>
#include <string>

#include "common/result.h"
#include "workflow/dataflow.h"

namespace provlin::workflow {

/// Serializes a (flattened) dataflow to a line-oriented text format:
///
///   workflow <name>
///   in <port> <type>
///   out <port> <type>
///   proc <name> activity=<a> [strategy=cross|dot]
///     pin <port> <type>
///     pout <port> <type>
///     config <key>=<value>
///     default <port> <value-literal>
///   arc <P:X> -> <P':Y>
///
/// Comments start with '#'. Used by examples and for golden-file tests.
std::string SerializeDataflow(const Dataflow& dataflow);

/// Parses the format above; does not validate (callers run Validate()).
Result<std::shared_ptr<Dataflow>> ParseDataflow(std::string_view text);

}  // namespace provlin::workflow

#endif  // PROVLIN_WORKFLOW_WORKFLOW_IO_H_
