#include "workflow/workflow_io.h"

#include <sstream>

#include "common/string_util.h"
#include "values/value_parser.h"
#include "workflow/builder.h"

namespace provlin::workflow {

std::string SerializeDataflow(const Dataflow& dataflow) {
  std::ostringstream out;
  out << "workflow " << dataflow.name() << "\n";
  for (const Port& p : dataflow.inputs()) {
    out << "in " << p.name << " " << p.declared_type.ToString() << "\n";
  }
  for (const Port& p : dataflow.outputs()) {
    out << "out " << p.name << " " << p.declared_type.ToString() << "\n";
  }
  for (const Processor& proc : dataflow.processors()) {
    out << "proc " << proc.name << " activity=" << proc.activity;
    if (proc.strategy_tree.has_value()) {
      out << " strategy=" << proc.strategy_tree->ToString();
    } else if (proc.strategy == IterationStrategy::kDot) {
      out << " strategy=dot";
    }
    out << "\n";
    for (const Port& p : proc.inputs) {
      out << "  pin " << p.name << " " << p.declared_type.ToString() << "\n";
    }
    for (const Port& p : proc.outputs) {
      out << "  pout " << p.name << " " << p.declared_type.ToString() << "\n";
    }
    for (const auto& [k, v] : proc.config) {
      out << "  config " << k << "=" << v << "\n";
    }
    for (const auto& [port, value] : proc.defaults) {
      out << "  default " << port << " " << value.ToString() << "\n";
    }
  }
  for (const Arc& a : dataflow.arcs()) {
    out << "arc " << a.src.ToString() << " -> " << a.dst.ToString() << "\n";
  }
  return out.str();
}

namespace {

Result<PortType> ParseTypeToken(std::string_view tok) {
  return PortType::Parse(tok);
}

}  // namespace

Result<std::shared_ptr<Dataflow>> ParseDataflow(std::string_view text) {
  std::shared_ptr<Dataflow> flow;
  Processor* current = nullptr;

  size_t line_no = 0;
  for (const std::string& raw : Split(text, '\n')) {
    ++line_no;
    std::string_view line = Trim(raw);
    if (line.empty() || line[0] == '#') continue;
    auto err = [&](const std::string& msg) {
      return Status::InvalidArgument("line " + std::to_string(line_no) +
                                     ": " + msg);
    };

    std::vector<std::string> tokens;
    for (const std::string& t : Split(line, ' ')) {
      if (!t.empty()) tokens.push_back(t);
    }
    const std::string& kw = tokens[0];

    if (kw == "workflow") {
      if (tokens.size() != 2) return err("expected: workflow <name>");
      if (flow != nullptr) return err("duplicate workflow line");
      flow = std::make_shared<Dataflow>(tokens[1]);
      continue;
    }
    if (flow == nullptr) return err("file must start with a workflow line");

    if (kw == "in" || kw == "out") {
      if (tokens.size() != 3) return err("expected: " + kw + " <port> <type>");
      PROVLIN_ASSIGN_OR_RETURN(PortType t, ParseTypeToken(tokens[2]));
      if (kw == "in") {
        flow->AddInput(Port{tokens[1], t});
      } else {
        flow->AddOutput(Port{tokens[1], t});
      }
      current = nullptr;
      continue;
    }
    if (kw == "proc") {
      if (tokens.size() < 2) return err("expected: proc <name> ...");
      Processor p;
      p.name = tokens[1];
      for (size_t i = 2; i < tokens.size(); ++i) {
        size_t eq = tokens[i].find('=');
        if (eq == std::string::npos) return err("expected key=value");
        std::string key = tokens[i].substr(0, eq);
        std::string value = tokens[i].substr(eq + 1);
        if (key == "activity") {
          p.activity = value;
        } else if (key == "strategy") {
          if (value == "dot") {
            p.strategy = IterationStrategy::kDot;
          } else if (value == "cross") {
            p.strategy = IterationStrategy::kCross;
          } else if (value.find('(') != std::string::npos) {
            auto tree = StrategyNode::Parse(value);
            if (!tree.ok()) return err(tree.status().message());
            p.strategy_tree = std::move(*tree);
          } else {
            return err("unknown strategy '" + value + "'");
          }
        } else {
          return err("unknown proc attribute '" + key + "'");
        }
      }
      flow->AddProcessor(std::move(p));
      current = const_cast<Processor*>(&flow->processors().back());
      continue;
    }
    if (kw == "pin" || kw == "pout") {
      if (current == nullptr) return err(kw + " outside a proc block");
      if (tokens.size() != 3) return err("expected: " + kw + " <port> <type>");
      PROVLIN_ASSIGN_OR_RETURN(PortType t, ParseTypeToken(tokens[2]));
      if (kw == "pin") {
        current->inputs.push_back(Port{tokens[1], t});
      } else {
        current->outputs.push_back(Port{tokens[1], t});
      }
      continue;
    }
    if (kw == "config") {
      if (current == nullptr) return err("config outside a proc block");
      if (tokens.size() != 2) return err("expected: config <key>=<value>");
      size_t eq = tokens[1].find('=');
      if (eq == std::string::npos) return err("expected key=value");
      current->config[tokens[1].substr(0, eq)] = tokens[1].substr(eq + 1);
      continue;
    }
    if (kw == "default") {
      if (current == nullptr) return err("default outside a proc block");
      if (tokens.size() < 3) return err("expected: default <port> <literal>");
      // The literal may contain spaces: rejoin the tail tokens.
      std::vector<std::string> tail(tokens.begin() + 2, tokens.end());
      PROVLIN_ASSIGN_OR_RETURN(Value v, ParseValue(Join(tail, " ")));
      current->defaults.emplace(tokens[1], std::move(v));
      continue;
    }
    if (kw == "arc") {
      if (tokens.size() != 4 || tokens[2] != "->") {
        return err("expected: arc <P:X> -> <P:Y>");
      }
      PROVLIN_ASSIGN_OR_RETURN(PortRef src, ParsePortRef(tokens[1]));
      PROVLIN_ASSIGN_OR_RETURN(PortRef dst, ParsePortRef(tokens[3]));
      PROVLIN_RETURN_IF_ERROR(flow->AddArc(src, dst));
      current = nullptr;
      continue;
    }
    return err("unknown keyword '" + kw + "'");
  }
  if (flow == nullptr) {
    return Status::InvalidArgument("empty workflow definition");
  }
  return flow;
}

}  // namespace provlin::workflow
