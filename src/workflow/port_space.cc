#include "workflow/port_space.h"

#include <utility>

namespace provlin::workflow {

PortSpace::PortSpace(const Dataflow& flow) {
  for (const Port& in : flow.inputs()) {
    Add(kWorkflowProcessor, in.name);
  }
  for (const Port& out : flow.outputs()) {
    Add(kWorkflowProcessor, out.name);
  }
  for (const Processor& proc : flow.processors()) {
    for (const Port& in : proc.inputs) Add(proc.name, in.name);
    for (const Port& out : proc.outputs) Add(proc.name, out.name);
  }
}

void PortSpace::Add(std::string processor, std::string port) {
  PortRef ref{std::move(processor), std::move(port)};
  // A name can legally appear twice only on the workflow pseudo-node
  // (a port that is both a workflow input and output name); first slot
  // wins, matching string-map behaviour.
  if (by_ref_.count(ref) > 0) return;
  auto id = static_cast<PortSlotId>(refs_.size());
  by_ref_.emplace(ref, id);
  refs_.push_back(std::move(ref));
}

}  // namespace provlin::workflow
