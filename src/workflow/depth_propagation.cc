#include "workflow/depth_propagation.h"

#include <algorithm>

#include "workflow/graph.h"

namespace provlin::workflow {

const ProcessorDepths& DepthMap::ForProcessor(const std::string& name) const {
  auto it = per_processor_.find(name);
  return it == per_processor_.end() ? empty_ : it->second;
}

Result<int> DepthMap::PortDepth(const PortRef& ref, bool is_input) const {
  if (ref.processor == kWorkflowProcessor) {
    const auto& m = is_input ? workflow_input_depths_ : workflow_output_depths_;
    auto it = m.find(ref.port);
    if (it == m.end()) {
      return Status::NotFound("no workflow port '" + ref.port + "'");
    }
    return it->second;
  }
  const auto& m = is_input ? input_depth_by_name_ : output_depth_by_name_;
  auto it = m.find({ref.processor, ref.port});
  if (it == m.end()) {
    return Status::NotFound("no depth recorded for port " + ref.ToString());
  }
  return it->second;
}

Result<int> DepthMap::InputDelta(const std::string& proc,
                                 size_t input_ordinal) const {
  auto it = per_processor_.find(proc);
  if (it == per_processor_.end()) {
    return Status::NotFound("no processor '" + proc + "'");
  }
  if (input_ordinal >= it->second.input_deltas.size()) {
    return Status::OutOfRange("input ordinal out of range for '" + proc +
                              "'");
  }
  return it->second.input_deltas[input_ordinal];
}

Result<DepthMap> PropagateDepths(const Dataflow& dataflow) {
  DepthMap out;

  // Assumption 2 (§3.1): top-level dataflow inputs carry values of their
  // declared type, hence their declared depth.
  for (const Port& p : dataflow.inputs()) {
    out.workflow_input_depths_[p.name] = p.dd();
  }

  ProcessorGraph graph(dataflow);
  PROVLIN_ASSIGN_OR_RETURN(std::vector<std::string> order,
                           graph.TopologicalOrder());

  // Resolved depth of an arc source port.
  auto source_depth = [&](const PortRef& src) -> Result<int> {
    if (src.processor == kWorkflowProcessor) {
      auto it = out.workflow_input_depths_.find(src.port);
      if (it == out.workflow_input_depths_.end()) {
        return Status::NotFound("arc from unknown workflow input '" +
                                src.port + "'");
      }
      return it->second;
    }
    auto pit = out.per_processor_.find(src.processor);
    if (pit == out.per_processor_.end()) {
      return Status::FailedPrecondition(
          "arc source '" + src.processor +
          "' not yet propagated (cycle or dangling reference)");
    }
    const Processor* proc = dataflow.FindProcessor(src.processor);
    for (size_t i = 0; i < proc->outputs.size(); ++i) {
      if (proc->outputs[i].name == src.port) {
        return pit->second.output_depths[i];
      }
    }
    return Status::NotFound("no output port " + src.ToString());
  };

  for (const std::string& pname : order) {
    const Processor* proc = dataflow.FindProcessor(pname);
    if (proc == nullptr) {
      return Status::Internal("toposort produced unknown processor '" +
                              pname + "'");
    }
    ProcessorDepths depths;
    std::map<std::string, int> positive_deltas;
    for (const Port& in : proc->inputs) {
      std::vector<const Arc*> arcs =
          dataflow.ArcsInto(PortRef{pname, in.name});
      int depth;
      if (arcs.empty()) {
        // Unconnected input: bound to a default of the declared type.
        depth = in.dd();
      } else {
        PROVLIN_ASSIGN_OR_RETURN(depth, source_depth(arcs.front()->src));
      }
      int delta = depth - in.dd();
      depths.input_depths.push_back(depth);
      depths.input_deltas.push_back(delta);
      positive_deltas[in.name] = std::max(0, delta);
    }
    // The strategy expression determines the iteration levels and where
    // each port's index fragment lands in the output index.
    auto layout =
        LayoutStrategy(proc->EffectiveStrategy(), positive_deltas);
    if (!layout.ok()) {
      return Status::InvalidArgument("processor '" + pname +
                                     "': " + layout.status().message());
    }
    depths.iteration_levels = layout->levels;
    depths.slots = std::move(layout->slots);
    for (const Port& o : proc->outputs) {
      depths.output_depths.push_back(o.dd() + depths.iteration_levels);
    }
    for (size_t i = 0; i < proc->inputs.size(); ++i) {
      out.input_depth_by_name_[{pname, proc->inputs[i].name}] =
          depths.input_depths[i];
    }
    for (size_t i = 0; i < proc->outputs.size(); ++i) {
      out.output_depth_by_name_[{pname, proc->outputs[i].name}] =
          depths.output_depths[i];
    }
    out.per_processor_[pname] = std::move(depths);
  }

  // Workflow outputs take the depth of whatever feeds them.
  for (const Port& p : dataflow.outputs()) {
    std::vector<const Arc*> arcs =
        dataflow.ArcsInto(PortRef{kWorkflowProcessor, p.name});
    if (arcs.empty()) {
      out.workflow_output_depths_[p.name] = p.dd();
      continue;
    }
    PROVLIN_ASSIGN_OR_RETURN(int depth, source_depth(arcs.front()->src));
    out.workflow_output_depths_[p.name] = depth;
  }

  return out;
}

}  // namespace provlin::workflow
