#ifndef PROVLIN_WORKFLOW_BUILDER_H_
#define PROVLIN_WORKFLOW_BUILDER_H_

#include <memory>
#include <string>

#include "common/result.h"
#include "workflow/dataflow.h"

namespace provlin::workflow {

/// Fluent construction API for dataflows. Example:
///
///   DataflowBuilder b("genes2kegg");
///   b.Input("ids", PortType::String(2));
///   b.Proc("lookup").Activity("kegg").In("genes", PortType::String(1))
///       .Out("return", PortType::String(1));
///   b.Output("paths", PortType::String(2));
///   b.Arc("workflow:ids", "lookup:genes");
///   b.Arc("lookup:return", "workflow:paths");
///   auto flow = b.Build();   // flattens + validates
class DataflowBuilder {
 public:
  /// Scoped helper returned by Proc(); mutates the processor in place.
  class ProcBuilder {
   public:
    ProcBuilder& Activity(std::string activity);
    ProcBuilder& In(std::string port, PortType type);
    ProcBuilder& Out(std::string port, PortType type);
    ProcBuilder& Config(std::string key, std::string value);
    ProcBuilder& Strategy(IterationStrategy strategy);
    /// Sets a full iteration-strategy expression, e.g.
    /// StrategyNode::Parse("cross(a,dot(b,c))").
    ProcBuilder& StrategyTree(StrategyNode tree);
    ProcBuilder& Default(std::string port, Value value);
    /// Makes this processor a nested dataflow.
    ProcBuilder& Nested(std::shared_ptr<const Dataflow> sub);

   private:
    friend class DataflowBuilder;
    explicit ProcBuilder(Processor* p) : p_(p) {}
    Processor* p_;
  };

  explicit DataflowBuilder(std::string name);

  DataflowBuilder& Input(std::string port, PortType type);
  DataflowBuilder& Output(std::string port, PortType type);

  /// Adds a processor and returns a scoped builder for it. The returned
  /// object is only valid until the next Proc() call.
  ProcBuilder Proc(std::string name);

  /// Adds an arc given "P:X" endpoint strings ("workflow:port" for the
  /// dataflow's own ports). Errors are deferred to Build().
  DataflowBuilder& Arc(std::string_view src, std::string_view dst);

  /// Flattens, validates and returns the dataflow.
  Result<std::shared_ptr<const Dataflow>> Build();

 private:
  std::unique_ptr<Dataflow> flow_;
  Status deferred_error_;
};

/// Parses "P:X" into a PortRef; "workflow:X" targets the pseudo-processor.
Result<PortRef> ParsePortRef(std::string_view text);

}  // namespace provlin::workflow

#endif  // PROVLIN_WORKFLOW_BUILDER_H_
