#ifndef PROVLIN_WORKFLOW_DIFF_H_
#define PROVLIN_WORKFLOW_DIFF_H_

#include <string>
#include <vector>

#include "workflow/dataflow.h"

namespace provlin::workflow {

/// Specification-level difference between two workflow versions. (The
/// paper notes that comparing data products "across runs of different
/// versions of a workflow" is a natural use of multi-run queries, while
/// provenance-graph differencing proper is out of scope — this is the
/// spec-side tool that supports the former.)
struct DataflowDiff {
  std::vector<std::string> added_processors;
  std::vector<std::string> removed_processors;
  /// Same-named processors whose activity/strategy/port list changed.
  std::vector<std::string> changed_processors;
  std::vector<std::string> added_arcs;    // Arc::ToString form
  std::vector<std::string> removed_arcs;
  std::vector<std::string> added_ports;    // workflow inputs/outputs
  std::vector<std::string> removed_ports;

  bool Empty() const {
    return added_processors.empty() && removed_processors.empty() &&
           changed_processors.empty() && added_arcs.empty() &&
           removed_arcs.empty() && added_ports.empty() &&
           removed_ports.empty();
  }

  std::string ToString() const;
};

/// Structural diff from `before` to `after` (both flattened).
DataflowDiff DiffDataflows(const Dataflow& before, const Dataflow& after);

}  // namespace provlin::workflow

#endif  // PROVLIN_WORKFLOW_DIFF_H_
