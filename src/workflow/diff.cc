#include "workflow/diff.h"

#include <set>
#include <sstream>

namespace provlin::workflow {

namespace {

bool PortsEqual(const std::vector<Port>& a, const std::vector<Port>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].name != b[i].name ||
        !(a[i].declared_type == b[i].declared_type)) {
      return false;
    }
  }
  return true;
}

bool ProcessorsEqual(const Processor& a, const Processor& b) {
  if (a.strategy_tree.has_value() != b.strategy_tree.has_value()) return false;
  if (a.strategy_tree.has_value() &&
      !(*a.strategy_tree == *b.strategy_tree)) {
    return false;
  }
  return a.activity == b.activity && a.strategy == b.strategy &&
         a.config == b.config && PortsEqual(a.inputs, b.inputs) &&
         PortsEqual(a.outputs, b.outputs);
}

std::set<std::string> ArcSet(const Dataflow& flow) {
  std::set<std::string> out;
  for (const Arc& a : flow.arcs()) out.insert(a.ToString());
  return out;
}

std::set<std::string> PortSet(const Dataflow& flow) {
  std::set<std::string> out;
  for (const Port& p : flow.inputs()) {
    out.insert("in " + p.name + " " + p.declared_type.ToString());
  }
  for (const Port& p : flow.outputs()) {
    out.insert("out " + p.name + " " + p.declared_type.ToString());
  }
  return out;
}

void Subtract(const std::set<std::string>& a, const std::set<std::string>& b,
              std::vector<std::string>* out) {
  for (const std::string& s : a) {
    if (b.count(s) == 0) out->push_back(s);
  }
}

}  // namespace

DataflowDiff DiffDataflows(const Dataflow& before, const Dataflow& after) {
  DataflowDiff diff;

  for (const Processor& p : after.processors()) {
    const Processor* old = before.FindProcessor(p.name);
    if (old == nullptr) {
      diff.added_processors.push_back(p.name);
    } else if (!ProcessorsEqual(*old, p)) {
      diff.changed_processors.push_back(p.name);
    }
  }
  for (const Processor& p : before.processors()) {
    if (after.FindProcessor(p.name) == nullptr) {
      diff.removed_processors.push_back(p.name);
    }
  }

  std::set<std::string> arcs_before = ArcSet(before);
  std::set<std::string> arcs_after = ArcSet(after);
  Subtract(arcs_after, arcs_before, &diff.added_arcs);
  Subtract(arcs_before, arcs_after, &diff.removed_arcs);

  std::set<std::string> ports_before = PortSet(before);
  std::set<std::string> ports_after = PortSet(after);
  Subtract(ports_after, ports_before, &diff.added_ports);
  Subtract(ports_before, ports_after, &diff.removed_ports);

  return diff;
}

std::string DataflowDiff::ToString() const {
  std::ostringstream out;
  auto section = [&](const char* label, const std::vector<std::string>& xs) {
    for (const std::string& x : xs) out << label << " " << x << "\n";
  };
  section("+proc", added_processors);
  section("-proc", removed_processors);
  section("~proc", changed_processors);
  section("+arc", added_arcs);
  section("-arc", removed_arcs);
  section("+port", added_ports);
  section("-port", removed_ports);
  if (Empty()) out << "(no differences)\n";
  return out.str();
}

}  // namespace provlin::workflow
