#include "workflow/dataflow.h"

#include <algorithm>

#include "common/sync.h"
#include "workflow/port_space.h"

namespace provlin::workflow {

const PortSpace& Dataflow::Ports() const {
  // The lazy build must not race when two threads warm the cache of a
  // shared frozen graph at once. A single process-wide mutex suffices:
  // it is only contended on cold builds, and keeps Dataflow copyable.
  // Mutators still invalidate without locking — mutation while readers
  // are active is outside the contract (the graph must be frozen), so
  // port_space_ cannot be GUARDED_BY a function-local capability.
  static common::Mutex build_mu{common::LockRank::kDataflowPorts};
  common::MutexLock lock(build_mu);
  if (port_space_ == nullptr) {
    port_space_ = std::make_shared<const PortSpace>(*this);
  }
  return *port_space_;
}

const Port* Processor::FindInput(std::string_view port) const {
  for (const Port& p : inputs) {
    if (p.name == port) return &p;
  }
  return nullptr;
}

const Port* Processor::FindOutput(std::string_view port) const {
  for (const Port& p : outputs) {
    if (p.name == port) return &p;
  }
  return nullptr;
}

StrategyNode Processor::EffectiveStrategy() const {
  if (strategy_tree.has_value()) return *strategy_tree;
  std::vector<StrategyNode> leaves;
  leaves.reserve(inputs.size());
  for (const Port& in : inputs) leaves.push_back(StrategyNode::Port(in.name));
  return strategy == IterationStrategy::kCross
             ? StrategyNode::Cross(std::move(leaves))
             : StrategyNode::Dot(std::move(leaves));
}

std::optional<size_t> Processor::InputOrdinal(std::string_view port) const {
  for (size_t i = 0; i < inputs.size(); ++i) {
    if (inputs[i].name == port) return i;
  }
  return std::nullopt;
}

Status Dataflow::AddArc(const PortRef& src, const PortRef& dst) {
  // Destination ports accept at most one incoming arc (Taverna model).
  for (const Arc& a : arcs_) {
    if (a.dst == dst) {
      return Status::AlreadyExists("port " + dst.ToString() +
                                   " already has an incoming arc");
    }
  }
  arcs_.push_back(Arc{src, dst});
  return Status::OK();
}

const Processor* Dataflow::FindProcessor(std::string_view name) const {
  for (const Processor& p : processors_) {
    if (p.name == name) return &p;
  }
  return nullptr;
}

const Port* Dataflow::FindWorkflowInput(std::string_view name) const {
  for (const Port& p : inputs_) {
    if (p.name == name) return &p;
  }
  return nullptr;
}

const Port* Dataflow::FindWorkflowOutput(std::string_view name) const {
  for (const Port& p : outputs_) {
    if (p.name == name) return &p;
  }
  return nullptr;
}

std::vector<const Arc*> Dataflow::ArcsInto(const PortRef& ref) const {
  std::vector<const Arc*> out;
  for (const Arc& a : arcs_) {
    if (a.dst == ref) out.push_back(&a);
  }
  return out;
}

std::vector<const Arc*> Dataflow::ArcsFrom(const PortRef& ref) const {
  std::vector<const Arc*> out;
  for (const Arc& a : arcs_) {
    if (a.src == ref) out.push_back(&a);
  }
  return out;
}

Result<PortType> Dataflow::PortDeclaredType(const PortRef& ref,
                                            bool as_destination) const {
  if (ref.processor == kWorkflowProcessor) {
    // As an arc source, a workflow port is an *input* of the dataflow;
    // as a destination it is an *output*.
    const Port* p = as_destination ? FindWorkflowOutput(ref.port)
                                   : FindWorkflowInput(ref.port);
    if (p == nullptr) {
      return Status::NotFound("no workflow port '" + ref.port + "'");
    }
    return p->declared_type;
  }
  const Processor* proc = FindProcessor(ref.processor);
  if (proc == nullptr) {
    return Status::NotFound("no processor '" + ref.processor + "'");
  }
  const Port* p =
      as_destination ? proc->FindInput(ref.port) : proc->FindOutput(ref.port);
  if (p == nullptr) {
    return Status::NotFound("no port " + ref.ToString());
  }
  return p->declared_type;
}

namespace {

/// During flattening, an inner workflow-input port resolves to either an
/// outer arc source or an outer default value (or nothing, when the
/// outer port is simply unconnected).
struct InputOrigin {
  std::optional<PortRef> source;
  std::optional<Value> default_value;
};

}  // namespace

Result<std::shared_ptr<Dataflow>> Dataflow::Flatten() const {
  bool has_nested = std::any_of(
      processors_.begin(), processors_.end(),
      [](const Processor& p) { return p.sub_dataflow != nullptr; });

  auto out = std::make_shared<Dataflow>(name_);
  for (const Port& p : inputs_) out->AddInput(p);
  for (const Port& p : outputs_) out->AddOutput(p);
  if (!has_nested) {
    for (const Processor& p : processors_) out->AddProcessor(p);
    for (const Arc& a : arcs_) {
      PROVLIN_RETURN_IF_ERROR(out->AddArc(a.src, a.dst));
    }
    return out;
  }

  // Maps an original arc endpoint to its flattened replacement(s).
  // For a nested processor N with sub-dataflow S:
  //   * arcs INTO (N, in)  continue to S's consumers of workflow:in;
  //   * arcs FROM (N, out) originate from S's producer of workflow:out.
  for (const Processor& p : processors_) {
    if (p.sub_dataflow == nullptr) {
      out->AddProcessor(p);
      continue;
    }
    PROVLIN_ASSIGN_OR_RETURN(std::shared_ptr<Dataflow> inner,
                             p.sub_dataflow->Flatten());
    for (const Processor& ip : inner->processors()) {
      Processor renamed = ip;
      renamed.name = p.name + "." + ip.name;
      out->AddProcessor(std::move(renamed));
    }
  }

  // Resolves the flattened source of an endpoint used as an arc SOURCE.
  auto resolve_source =
      [&](const PortRef& ref) -> Result<std::vector<PortRef>> {
    if (ref.processor == kWorkflowProcessor) return std::vector<PortRef>{ref};
    const Processor* proc = FindProcessor(ref.processor);
    if (proc == nullptr) {
      return Status::NotFound("arc source processor '" + ref.processor + "'");
    }
    if (proc->sub_dataflow == nullptr) return std::vector<PortRef>{ref};
    PROVLIN_ASSIGN_OR_RETURN(std::shared_ptr<Dataflow> inner,
                             proc->sub_dataflow->Flatten());
    // The inner arc(s) into workflow:<ref.port> give the true producers.
    std::vector<PortRef> sources;
    for (const Arc& ia : inner->arcs()) {
      if (ia.dst.processor == kWorkflowProcessor && ia.dst.port == ref.port) {
        if (ia.src.processor == kWorkflowProcessor) {
          return Status::Unimplemented(
              "pass-through nested workflow port: " + ref.ToString());
        }
        sources.push_back(
            PortRef{ref.processor + "." + ia.src.processor, ia.src.port});
      }
    }
    if (sources.empty()) {
      return Status::NotFound("nested workflow output '" + ref.ToString() +
                              "' has no inner producer");
    }
    return sources;
  };

  // Resolves the flattened destination(s) of an endpoint used as an arc
  // DESTINATION.
  auto resolve_dest = [&](const PortRef& ref) -> Result<std::vector<PortRef>> {
    if (ref.processor == kWorkflowProcessor) return std::vector<PortRef>{ref};
    const Processor* proc = FindProcessor(ref.processor);
    if (proc == nullptr) {
      return Status::NotFound("arc dest processor '" + ref.processor + "'");
    }
    if (proc->sub_dataflow == nullptr) return std::vector<PortRef>{ref};
    PROVLIN_ASSIGN_OR_RETURN(std::shared_ptr<Dataflow> inner,
                             proc->sub_dataflow->Flatten());
    std::vector<PortRef> dests;
    for (const Arc& ia : inner->arcs()) {
      if (ia.src.processor == kWorkflowProcessor && ia.src.port == ref.port) {
        if (ia.dst.processor == kWorkflowProcessor) {
          return Status::Unimplemented(
              "pass-through nested workflow port: " + ref.ToString());
        }
        dests.push_back(
            PortRef{ref.processor + "." + ia.dst.processor, ia.dst.port});
      }
    }
    return dests;  // may be empty: unconsumed nested input
  };

  // Splice outer arcs across nested boundaries.
  for (const Arc& a : arcs_) {
    PROVLIN_ASSIGN_OR_RETURN(std::vector<PortRef> srcs, resolve_source(a.src));
    PROVLIN_ASSIGN_OR_RETURN(std::vector<PortRef> dsts, resolve_dest(a.dst));
    for (const PortRef& s : srcs) {
      for (const PortRef& d : dsts) {
        PROVLIN_RETURN_IF_ERROR(out->AddArc(s, d));
      }
    }
  }

  // Re-create purely internal arcs of each nested dataflow.
  for (const Processor& p : processors_) {
    if (p.sub_dataflow == nullptr) continue;
    PROVLIN_ASSIGN_OR_RETURN(std::shared_ptr<Dataflow> inner,
                             p.sub_dataflow->Flatten());
    for (const Arc& ia : inner->arcs()) {
      if (ia.src.processor == kWorkflowProcessor ||
          ia.dst.processor == kWorkflowProcessor) {
        continue;  // boundary arcs were spliced above
      }
      PROVLIN_RETURN_IF_ERROR(
          out->AddArc(PortRef{p.name + "." + ia.src.processor, ia.src.port},
                      PortRef{p.name + "." + ia.dst.processor, ia.dst.port}));
    }
  }

  return out;
}

}  // namespace provlin::workflow
