#ifndef PROVLIN_ENGINE_ITERATION_H_
#define PROVLIN_ENGINE_ITERATION_H_

#include <memory>
#include <vector>

#include "common/result.h"
#include "values/index.h"
#include "values/value.h"
#include "workflow/dataflow.h"

namespace provlin::engine {

/// The generalized cross product of Def. 2 / Def. 3, materialized: a
/// nested "tuple tree" whose internal structure mirrors the iterated
/// dimensions of the input lists (possibly ragged) and whose leaves are
/// the argument tuples of the elementary processor invocations.
///
/// The path from the root to a leaf is exactly the output index q, and
/// each leaf records the per-port input indices p_i with |p_i| = max(0,
/// δs(X_i)) and q = p_1 ··· p_n — the engine-side counterpart of Prop. 1.
struct TupleTree {
  /// Internal node: one child per element of the iterated dimension.
  std::vector<TupleTree> children;

  /// Leaf payload (valid iff is_leaf).
  bool is_leaf = false;
  std::vector<Value> args;          // one per input port, at declared depth
  std::vector<Index> arg_indices;   // p_i; empty index for non-iterated ports

  /// Depth of the tree (0 for a leaf) — the iteration level l of Def. 3.
  int Depth() const;

  /// Number of leaves = number of elementary invocations.
  size_t CountLeaves() const;
};

/// Builds the iteration structure for one processor firing.
///
/// `bound[i]` is the value arriving at input port i; `deltas[i]` its
/// static mismatch δs(X_i). Ports with δ <= 0 join every tuple whole
/// (negative mismatches wrap the value in -δ singleton lists, per the
/// Def. 2 remark). Under kCross, iterated dimensions nest left-to-right
/// in port order; under kDot (footnote 7) all iterated ports must share
/// one shape, which becomes the tree, and every p_i equals q.
Result<TupleTree> BuildIterationTree(const std::vector<Value>& bound,
                                     const std::vector<int>& deltas,
                                     workflow::IterationStrategy strategy);

/// Generalized construction over an iteration-strategy *expression*
/// (footnote 7): cross children nest left-to-right, dot children zip
/// position-wise; ports not referenced by the expression join every
/// tuple whole. `ports` names the input ports in order, parallel to
/// `bound`/`deltas`.
Result<TupleTree> BuildStrategyIterationTree(
    const workflow::StrategyNode& strategy,
    const std::vector<std::string>& ports, const std::vector<Value>& bound,
    const std::vector<int>& deltas);

/// Wraps `v` in `levels` singleton lists (levels >= 0).
Value WrapSingletons(const Value& v, int levels);

}  // namespace provlin::engine

#endif  // PROVLIN_ENGINE_ITERATION_H_
