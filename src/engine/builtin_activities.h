#ifndef PROVLIN_ENGINE_BUILTIN_ACTIVITIES_H_
#define PROVLIN_ENGINE_BUILTIN_ACTIVITIES_H_

namespace provlin::engine {

class ActivityRegistry;

/// Registers the builtin activity set:
///
///   identity       n -> n       pass-through
///   transform      1 -> 1       string -> "<tag>(<s>)", tag from config
///   to_upper       1 -> 1       uppercase a string
///   to_lower       1 -> 1       lowercase a string
///   prefix         1 -> 1       prepend config "prefix"
///   concat2        2 -> 1       "<a>+<b>" (the 2-to-1 cross-product join)
///   split_words    1 -> 1       string -> list(string), config "sep"
///   join           1 -> 1       list(string) -> string, config "sep"
///   flatten        1 -> 1       list(list(x)) -> list(x), whole-value
///   intersect      1 -> 1       list(list(string)) -> common elements
///   sort_list      1 -> 1       sort a list(string)
///   unique_list    1 -> 1       deduplicate a list(string), keep order
///   head           1 -> 1       first element of a list
///   count          1 -> 1       list -> int length
///   list_gen       1 -> 1       int n -> list(string) of n items,
///                               config "item_prefix" (testbed ListGen)
///
/// Activities operating on whole lists (flatten, intersect, join, count,
/// head, sort_list, unique_list) are exactly the paper's "many-to-one /
/// many-to-many" processors whose traces are coarse-grained.
void RegisterBuiltinActivities(ActivityRegistry* registry);

}  // namespace provlin::engine

#endif  // PROVLIN_ENGINE_BUILTIN_ACTIVITIES_H_
