#ifndef PROVLIN_ENGINE_EXECUTOR_H_
#define PROVLIN_ENGINE_EXECUTOR_H_

#include <map>
#include <string>

#include "common/result.h"
#include "engine/activity.h"
#include "engine/observer.h"
#include "workflow/dataflow.h"

namespace provlin::engine {

/// Execution policy knobs.
struct ExecuteOptions {
  /// When true, a failing elementary invocation does not abort the run:
  /// each of its outputs becomes an *error token* (wrapped to the
  /// declared depth), downstream invocations consuming an error token
  /// short-circuit to error tokens without being invoked, and the run
  /// completes with failures confined to the affected elements — the
  /// Taverna error-propagation model. Error events are recorded in the
  /// trace like any other, so lineage queries on an error output lead
  /// straight to the failing step and its inputs.
  bool continue_on_error = false;
};

/// Outcome of one workflow run.
struct RunResult {
  std::string run_id;
  /// Values bound to the workflow output ports.
  std::map<std::string, Value> outputs;
  /// Every resolved port value "P:X" -> value (for tests/debugging).
  std::map<std::string, Value> port_values;
  /// Total elementary invocations across all processors.
  size_t total_invocations = 0;
  /// Invocations that failed (continue_on_error) or were short-circuited
  /// by an upstream error token.
  size_t failed_invocations = 0;
};

/// Data-driven dataflow interpreter implementing the Taverna semantics of
/// §3.2: processors fire once all connected inputs are bound; depth
/// mismatches trigger implicit iteration (eval_l, Def. 3); every
/// elementary invocation and every arc transfer is reported to the
/// observer as an xform / xfer event.
class Executor {
 public:
  /// `registry` must outlive the executor; `observer` may be null.
  explicit Executor(const ActivityRegistry* registry,
                    ExecutionObserver* observer = nullptr)
      : registry_(registry), observer_(observer) {}

  /// Runs a flattened, validated dataflow on the given workflow-input
  /// bindings. Each input value must have exactly the declared depth of
  /// its port (§3.1 assumption 2).
  Result<RunResult> Execute(const workflow::Dataflow& dataflow,
                            const std::map<std::string, Value>& inputs,
                            const std::string& run_id,
                            const ExecuteOptions& options = {});

 private:
  const ActivityRegistry* registry_;
  ExecutionObserver* observer_;
};

}  // namespace provlin::engine

#endif  // PROVLIN_ENGINE_EXECUTOR_H_
