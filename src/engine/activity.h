#ifndef PROVLIN_ENGINE_ACTIVITY_H_
#define PROVLIN_ENGINE_ACTIVITY_H_

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "values/value.h"

namespace provlin::engine {

/// Per-processor configuration passed to an activity at creation time.
using ActivityConfig = std::map<std::string, std::string>;

/// A black-box behaviour bound to a processor (paper §1: processors are
/// black boxes — the provenance layer observes only their inputs and
/// outputs). One Invoke() call corresponds to one *elementary* processor
/// instance: every input arrives at the port's declared depth, and one
/// value per output port must be returned, again at declared depth
/// (assumption 1 of §3.1).
class Activity {
 public:
  virtual ~Activity() = default;

  /// `inputs` holds one value per input port, in port order.
  virtual Result<std::vector<Value>> Invoke(
      const std::vector<Value>& inputs) const = 0;
};

/// Creates an activity instance from per-processor configuration.
using ActivityFactory =
    std::function<Result<std::shared_ptr<Activity>>(const ActivityConfig&)>;

/// Name -> factory registry. Substrate simulators (KEGG, PubMed) register
/// their service activities here next to the builtins.
class ActivityRegistry {
 public:
  /// Registry pre-populated with the builtin activities.
  static const ActivityRegistry& BuiltinsOnly();

  ActivityRegistry() = default;

  Status Register(const std::string& name, ActivityFactory factory);
  bool Has(const std::string& name) const;
  Result<std::shared_ptr<Activity>> Create(const std::string& name,
                                           const ActivityConfig& config) const;

  std::vector<std::string> Names() const;

 private:
  std::map<std::string, ActivityFactory> factories_;
};

/// Adapts a plain function to an Activity (used heavily by tests).
class LambdaActivity : public Activity {
 public:
  using Fn = std::function<Result<std::vector<Value>>(
      const std::vector<Value>&)>;

  explicit LambdaActivity(Fn fn) : fn_(std::move(fn)) {}

  Result<std::vector<Value>> Invoke(
      const std::vector<Value>& inputs) const override {
    return fn_(inputs);
  }

 private:
  Fn fn_;
};

}  // namespace provlin::engine

#endif  // PROVLIN_ENGINE_ACTIVITY_H_
