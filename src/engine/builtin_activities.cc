#include "engine/builtin_activities.h"

#include <algorithm>
#include <cctype>
#include <set>

#include "common/string_util.h"
#include "engine/activity.h"

namespace provlin::engine {
namespace {

Status ExpectArity(const std::vector<Value>& inputs, size_t n) {
  if (inputs.size() != n) {
    return Status::InvalidArgument("activity expects " + std::to_string(n) +
                                   " inputs, got " +
                                   std::to_string(inputs.size()));
  }
  return Status::OK();
}

Result<std::string> ExpectString(const Value& v) {
  if (!v.is_atom() || !v.atom().is_string()) {
    return Status::InvalidArgument("expected a string atom, got " +
                                   v.ToString());
  }
  return v.atom().AsString();
}

Result<std::vector<std::string>> ExpectStringList(const Value& v) {
  if (!v.is_list()) {
    return Status::InvalidArgument("expected a list, got " + v.ToString());
  }
  std::vector<std::string> out;
  out.reserve(v.list_size());
  for (const Value& e : v.elements()) {
    PROVLIN_ASSIGN_OR_RETURN(std::string s, ExpectString(e));
    out.push_back(std::move(s));
  }
  return out;
}

std::string ConfigOr(const ActivityConfig& config, const std::string& key,
                     const std::string& fallback) {
  auto it = config.find(key);
  return it == config.end() ? fallback : it->second;
}

/// Registers a config-free lambda activity.
void Reg(ActivityRegistry* r, const std::string& name,
         LambdaActivity::Fn fn) {
  Status st = r->Register(
      name, [fn = std::move(fn)](const ActivityConfig&)
                -> Result<std::shared_ptr<Activity>> {
        return std::shared_ptr<Activity>(new LambdaActivity(fn));
      });
  (void)st;  // duplicate registration is a programming error; ignored here
}

/// Registers an activity whose lambda captures the config.
void RegCfg(ActivityRegistry* r, const std::string& name,
            std::function<LambdaActivity::Fn(const ActivityConfig&)> make) {
  Status st = r->Register(
      name, [make = std::move(make)](const ActivityConfig& cfg)
                -> Result<std::shared_ptr<Activity>> {
        return std::shared_ptr<Activity>(new LambdaActivity(make(cfg)));
      });
  (void)st;
}

}  // namespace

void RegisterBuiltinActivities(ActivityRegistry* registry) {
  Reg(registry, "identity",
      [](const std::vector<Value>& in) -> Result<std::vector<Value>> {
        return in;
      });

  RegCfg(registry, "transform", [](const ActivityConfig& cfg) {
    std::string tag = ConfigOr(cfg, "tag", "f");
    return [tag](const std::vector<Value>& in) -> Result<std::vector<Value>> {
      PROVLIN_RETURN_IF_ERROR(ExpectArity(in, 1));
      PROVLIN_ASSIGN_OR_RETURN(std::string s, ExpectString(in[0]));
      return std::vector<Value>{Value::Str(tag + "(" + s + ")")};
    };
  });

  Reg(registry, "to_upper",
      [](const std::vector<Value>& in) -> Result<std::vector<Value>> {
        PROVLIN_RETURN_IF_ERROR(ExpectArity(in, 1));
        PROVLIN_ASSIGN_OR_RETURN(std::string s, ExpectString(in[0]));
        std::transform(s.begin(), s.end(), s.begin(), [](unsigned char c) {
          return static_cast<char>(std::toupper(c));
        });
        return std::vector<Value>{Value::Str(std::move(s))};
      });

  Reg(registry, "to_lower",
      [](const std::vector<Value>& in) -> Result<std::vector<Value>> {
        PROVLIN_RETURN_IF_ERROR(ExpectArity(in, 1));
        PROVLIN_ASSIGN_OR_RETURN(std::string s, ExpectString(in[0]));
        std::transform(s.begin(), s.end(), s.begin(), [](unsigned char c) {
          return static_cast<char>(std::tolower(c));
        });
        return std::vector<Value>{Value::Str(std::move(s))};
      });

  RegCfg(registry, "prefix", [](const ActivityConfig& cfg) {
    std::string prefix = ConfigOr(cfg, "prefix", "");
    return [prefix](
               const std::vector<Value>& in) -> Result<std::vector<Value>> {
      PROVLIN_RETURN_IF_ERROR(ExpectArity(in, 1));
      PROVLIN_ASSIGN_OR_RETURN(std::string s, ExpectString(in[0]));
      return std::vector<Value>{Value::Str(prefix + s)};
    };
  });

  Reg(registry, "concat2",
      [](const std::vector<Value>& in) -> Result<std::vector<Value>> {
        PROVLIN_RETURN_IF_ERROR(ExpectArity(in, 2));
        PROVLIN_ASSIGN_OR_RETURN(std::string a, ExpectString(in[0]));
        PROVLIN_ASSIGN_OR_RETURN(std::string b, ExpectString(in[1]));
        return std::vector<Value>{Value::Str(a + "+" + b)};
      });

  RegCfg(registry, "split_words", [](const ActivityConfig& cfg) {
    std::string sep = ConfigOr(cfg, "sep", " ");
    char s = sep.empty() ? ' ' : sep[0];
    return [s](const std::vector<Value>& in) -> Result<std::vector<Value>> {
      PROVLIN_RETURN_IF_ERROR(ExpectArity(in, 1));
      PROVLIN_ASSIGN_OR_RETURN(std::string text, ExpectString(in[0]));
      std::vector<Value> words;
      for (const std::string& w : Split(text, s)) {
        if (!w.empty()) words.push_back(Value::Str(w));
      }
      return std::vector<Value>{Value::List(std::move(words))};
    };
  });

  RegCfg(registry, "join", [](const ActivityConfig& cfg) {
    std::string sep = ConfigOr(cfg, "sep", " ");
    return
        [sep](const std::vector<Value>& in) -> Result<std::vector<Value>> {
          PROVLIN_RETURN_IF_ERROR(ExpectArity(in, 1));
          PROVLIN_ASSIGN_OR_RETURN(std::vector<std::string> items,
                                   ExpectStringList(in[0]));
          return std::vector<Value>{Value::Str(Join(items, sep))};
        };
  });

  Reg(registry, "flatten",
      [](const std::vector<Value>& in) -> Result<std::vector<Value>> {
        PROVLIN_RETURN_IF_ERROR(ExpectArity(in, 1));
        if (!in[0].is_list()) {
          return Status::InvalidArgument("flatten expects a list");
        }
        std::vector<Value> flat;
        for (const Value& sub : in[0].elements()) {
          if (!sub.is_list()) {
            return Status::InvalidArgument(
                "flatten expects a list of lists");
          }
          for (const Value& e : sub.elements()) flat.push_back(e);
        }
        return std::vector<Value>{Value::List(std::move(flat))};
      });

  Reg(registry, "intersect",
      [](const std::vector<Value>& in) -> Result<std::vector<Value>> {
        PROVLIN_RETURN_IF_ERROR(ExpectArity(in, 1));
        if (!in[0].is_list()) {
          return Status::InvalidArgument("intersect expects a list of lists");
        }
        bool first = true;
        std::vector<std::string> common;
        for (const Value& sub : in[0].elements()) {
          PROVLIN_ASSIGN_OR_RETURN(std::vector<std::string> items,
                                   ExpectStringList(sub));
          if (first) {
            common = items;
            first = false;
            continue;
          }
          std::set<std::string> here(items.begin(), items.end());
          std::vector<std::string> kept;
          for (const std::string& c : common) {
            if (here.count(c) > 0) kept.push_back(c);
          }
          common = std::move(kept);
        }
        std::vector<Value> out;
        for (const std::string& c : common) out.push_back(Value::Str(c));
        return std::vector<Value>{Value::List(std::move(out))};
      });

  Reg(registry, "sort_list",
      [](const std::vector<Value>& in) -> Result<std::vector<Value>> {
        PROVLIN_RETURN_IF_ERROR(ExpectArity(in, 1));
        PROVLIN_ASSIGN_OR_RETURN(std::vector<std::string> items,
                                 ExpectStringList(in[0]));
        std::sort(items.begin(), items.end());
        return std::vector<Value>{Value::StringList(items)};
      });

  Reg(registry, "unique_list",
      [](const std::vector<Value>& in) -> Result<std::vector<Value>> {
        PROVLIN_RETURN_IF_ERROR(ExpectArity(in, 1));
        PROVLIN_ASSIGN_OR_RETURN(std::vector<std::string> items,
                                 ExpectStringList(in[0]));
        std::set<std::string> seen;
        std::vector<std::string> kept;
        for (const std::string& s : items) {
          if (seen.insert(s).second) kept.push_back(s);
        }
        return std::vector<Value>{Value::StringList(kept)};
      });

  Reg(registry, "head",
      [](const std::vector<Value>& in) -> Result<std::vector<Value>> {
        PROVLIN_RETURN_IF_ERROR(ExpectArity(in, 1));
        if (!in[0].is_list() || in[0].list_size() == 0) {
          return Status::InvalidArgument("head expects a non-empty list");
        }
        return std::vector<Value>{in[0].elements().front()};
      });

  Reg(registry, "count",
      [](const std::vector<Value>& in) -> Result<std::vector<Value>> {
        PROVLIN_RETURN_IF_ERROR(ExpectArity(in, 1));
        if (!in[0].is_list()) {
          return Status::InvalidArgument("count expects a list");
        }
        return std::vector<Value>{
            Value::Int(static_cast<int64_t>(in[0].list_size()))};
      });

  RegCfg(registry, "fail_if", [](const ActivityConfig& cfg) {
    std::string needle = ConfigOr(cfg, "match", "");
    return [needle](
               const std::vector<Value>& in) -> Result<std::vector<Value>> {
      PROVLIN_RETURN_IF_ERROR(ExpectArity(in, 1));
      PROVLIN_ASSIGN_OR_RETURN(std::string s, ExpectString(in[0]));
      if (!needle.empty() && s.find(needle) != std::string::npos) {
        return Status::Internal("fail_if matched '" + needle + "' in '" +
                                s + "'");
      }
      return std::vector<Value>{Value::Str(s)};
    };
  });

  RegCfg(registry, "list_gen", [](const ActivityConfig& cfg) {
    std::string item_prefix = ConfigOr(cfg, "item_prefix", "item");
    return [item_prefix](
               const std::vector<Value>& in) -> Result<std::vector<Value>> {
      PROVLIN_RETURN_IF_ERROR(ExpectArity(in, 1));
      if (!in[0].is_atom() || !in[0].atom().is_int()) {
        return Status::InvalidArgument("list_gen expects an int size");
      }
      int64_t n = in[0].atom().AsInt();
      if (n < 0) return Status::InvalidArgument("negative list size");
      std::vector<Value> items;
      items.reserve(static_cast<size_t>(n));
      for (int64_t i = 0; i < n; ++i) {
        items.push_back(Value::Str(item_prefix + std::to_string(i)));
      }
      return std::vector<Value>{Value::List(std::move(items))};
    };
  });
}

}  // namespace provlin::engine
