#include "engine/iteration.h"

#include <algorithm>
#include <map>

namespace provlin::engine {

int TupleTree::Depth() const {
  if (is_leaf) return 0;
  int d = 1;
  for (const TupleTree& c : children) {
    d = std::max(d, 1 + c.Depth());
  }
  return d;
}

size_t TupleTree::CountLeaves() const {
  if (is_leaf) return 1;
  size_t n = 0;
  for (const TupleTree& c : children) n += c.CountLeaves();
  return n;
}

Value WrapSingletons(const Value& v, int levels) {
  Value out = v;
  for (int i = 0; i < levels; ++i) {
    out = Value::List({std::move(out)});
  }
  return out;
}

namespace {

using workflow::StrategyNode;

/// Intermediate tree carrying per-port payloads at the leaves; converted
/// to a TupleTree once the whole strategy expression is evaluated.
struct PNode {
  bool leaf = false;
  std::vector<PNode> children;
  /// port ordinal -> (element value, element index).
  std::map<size_t, std::pair<Value, Index>> payload;
};

void MergeIntoLeaves(PNode* node,
                     const std::map<size_t, std::pair<Value, Index>>& extra) {
  if (node->leaf) {
    for (const auto& [ordinal, pv] : extra) node->payload[ordinal] = pv;
    return;
  }
  for (PNode& c : node->children) MergeIntoLeaves(&c, extra);
}

/// Mirrors `remaining` levels of `v`, producing leaves carrying the
/// reached element for `ordinal`. Error tokens standing in for a
/// collection collapse the subtree to one short-circuiting leaf.
Status MirrorPort(size_t ordinal, const Value& v, int remaining,
                  const Index& at, PNode* out) {
  if (remaining == 0 || (v.is_atom() && v.atom().is_error())) {
    out->leaf = true;
    out->payload[ordinal] = {v, at};
    return Status::OK();
  }
  if (!v.is_list()) {
    return Status::InvalidArgument(
        "value too shallow for declared iteration depth at index " +
        at.ToString());
  }
  out->leaf = false;
  out->children.resize(v.list_size());
  for (size_t i = 0; i < v.list_size(); ++i) {
    PROVLIN_RETURN_IF_ERROR(MirrorPort(ordinal, v.elements()[i],
                                       remaining - 1,
                                       at.Child(static_cast<int32_t>(i)),
                                       &out->children[i]));
  }
  return Status::OK();
}

/// cross(a, b): a's dimensions outermost; every leaf of a is replaced by
/// a copy of b whose leaves absorb the a-leaf's payload.
PNode CrossCombine(const PNode& a, const PNode& b) {
  if (a.leaf) {
    PNode out = b;
    MergeIntoLeaves(&out, a.payload);
    return out;
  }
  PNode out;
  out.leaf = false;
  out.children.reserve(a.children.size());
  for (const PNode& c : a.children) {
    out.children.push_back(CrossCombine(c, b));
  }
  return out;
}

/// dot(children): shaped (non-leaf) children zip position-wise and must
/// agree on widths at every level; leaf children (non-iterated ports or
/// error-collapsed subtrees) broadcast their payload into every result
/// leaf.
Status ZipCombine(const std::vector<const PNode*>& nodes, PNode* out) {
  std::vector<const PNode*> shaped;
  std::map<size_t, std::pair<Value, Index>> broadcast;
  for (const PNode* n : nodes) {
    if (n->leaf) {
      for (const auto& [ordinal, pv] : n->payload) broadcast[ordinal] = pv;
    } else {
      shaped.push_back(n);
    }
  }
  if (shaped.empty()) {
    out->leaf = true;
    out->payload = std::move(broadcast);
    return Status::OK();
  }
  size_t width = shaped.front()->children.size();
  for (const PNode* n : shaped) {
    if (n->children.size() != width) {
      return Status::InvalidArgument(
          "dot iteration over lists of unequal length");
    }
  }
  out->leaf = false;
  out->children.resize(width);
  for (size_t i = 0; i < width; ++i) {
    std::vector<const PNode*> lane;
    lane.reserve(shaped.size());
    for (const PNode* n : shaped) lane.push_back(&n->children[i]);
    PROVLIN_RETURN_IF_ERROR(ZipCombine(lane, &out->children[i]));
  }
  if (!broadcast.empty()) MergeIntoLeaves(out, broadcast);
  return Status::OK();
}

struct BuildContext {
  const std::vector<std::string>* ports;
  const std::vector<Value>* bound;
  const std::vector<int>* deltas;

  Result<size_t> Ordinal(const std::string& name) const {
    for (size_t i = 0; i < ports->size(); ++i) {
      if ((*ports)[i] == name) return i;
    }
    return Status::NotFound("strategy references unknown port '" + name +
                            "'");
  }
};

Status BuildNode(const BuildContext& ctx, const StrategyNode& node,
                 PNode* out) {
  switch (node.kind) {
    case StrategyNode::Kind::kPort: {
      PROVLIN_ASSIGN_OR_RETURN(size_t ordinal, ctx.Ordinal(node.port));
      int delta = (*ctx.deltas)[ordinal];
      if (delta <= 0) {
        out->leaf = true;
        out->payload[ordinal] = {
            WrapSingletons((*ctx.bound)[ordinal], -delta), Index()};
        return Status::OK();
      }
      return MirrorPort(ordinal, (*ctx.bound)[ordinal], delta, Index(), out);
    }
    case StrategyNode::Kind::kCross: {
      PNode acc;
      acc.leaf = true;
      for (const StrategyNode& child : node.children) {
        PNode built;
        PROVLIN_RETURN_IF_ERROR(BuildNode(ctx, child, &built));
        acc = CrossCombine(acc, built);
      }
      *out = std::move(acc);
      return Status::OK();
    }
    case StrategyNode::Kind::kDot: {
      std::vector<PNode> built(node.children.size());
      for (size_t i = 0; i < node.children.size(); ++i) {
        PROVLIN_RETURN_IF_ERROR(BuildNode(ctx, node.children[i], &built[i]));
      }
      std::vector<const PNode*> ptrs;
      ptrs.reserve(built.size());
      for (const PNode& n : built) ptrs.push_back(&n);
      return ZipCombine(ptrs, out);
    }
  }
  return Status::Internal("corrupt strategy node");
}

/// Converts a PNode tree into the public TupleTree: leaves get one arg
/// per port in port order; ports absent from a leaf's payload (never
/// referenced by the strategy, or elided by an error collapse) join
/// whole, at coarse granularity.
void Finalize(const BuildContext& ctx, const PNode& node, TupleTree* out) {
  if (node.leaf) {
    out->is_leaf = true;
    for (size_t i = 0; i < ctx.ports->size(); ++i) {
      auto it = node.payload.find(i);
      if (it != node.payload.end()) {
        out->args.push_back(it->second.first);
        out->arg_indices.push_back(it->second.second);
      } else {
        int delta = (*ctx.deltas)[i];
        out->args.push_back(
            WrapSingletons((*ctx.bound)[i], delta < 0 ? -delta : 0));
        out->arg_indices.push_back(Index());
      }
    }
    return;
  }
  out->is_leaf = false;
  out->children.resize(node.children.size());
  for (size_t i = 0; i < node.children.size(); ++i) {
    Finalize(ctx, node.children[i], &out->children[i]);
  }
}

}  // namespace

Result<TupleTree> BuildStrategyIterationTree(
    const workflow::StrategyNode& strategy,
    const std::vector<std::string>& ports, const std::vector<Value>& bound,
    const std::vector<int>& deltas) {
  if (bound.size() != deltas.size() || ports.size() != bound.size()) {
    return Status::InvalidArgument("ports/bound/deltas arity mismatch");
  }
  BuildContext ctx{&ports, &bound, &deltas};
  PNode root;
  PROVLIN_RETURN_IF_ERROR(BuildNode(ctx, strategy, &root));
  TupleTree out;
  Finalize(ctx, root, &out);
  return out;
}

Result<TupleTree> BuildIterationTree(const std::vector<Value>& bound,
                                     const std::vector<int>& deltas,
                                     workflow::IterationStrategy strategy) {
  if (bound.size() != deltas.size()) {
    return Status::InvalidArgument("bound/deltas arity mismatch");
  }
  // Flat strategies are the degenerate expression over all ports in
  // order; ports are addressed by ordinal-derived names here.
  std::vector<std::string> ports;
  std::vector<StrategyNode> leaves;
  ports.reserve(bound.size());
  for (size_t i = 0; i < bound.size(); ++i) {
    ports.push_back("p" + std::to_string(i));
    leaves.push_back(StrategyNode::Port(ports.back()));
  }
  // Flat dot requires equal positive mismatches (checked here for direct
  // callers; workflow-level validation reports it at build time).
  if (strategy == workflow::IterationStrategy::kDot) {
    int common = 0;
    for (int d : deltas) {
      if (d <= 0) continue;
      if (common == 0) {
        common = d;
      } else if (d != common) {
        return Status::InvalidArgument(
            "dot strategy requires equal positive mismatches");
      }
    }
  }
  StrategyNode tree = strategy == workflow::IterationStrategy::kCross
                          ? StrategyNode::Cross(std::move(leaves))
                          : StrategyNode::Dot(std::move(leaves));
  return BuildStrategyIterationTree(tree, ports, bound, deltas);
}

}  // namespace provlin::engine
