#include "engine/activity.h"

#include "engine/builtin_activities.h"

namespace provlin::engine {

const ActivityRegistry& ActivityRegistry::BuiltinsOnly() {
  static const ActivityRegistry* kRegistry = [] {
    auto* r = new ActivityRegistry();
    RegisterBuiltinActivities(r);
    return r;
  }();
  return *kRegistry;
}

Status ActivityRegistry::Register(const std::string& name,
                                  ActivityFactory factory) {
  if (factories_.count(name) > 0) {
    return Status::AlreadyExists("activity '" + name +
                                 "' already registered");
  }
  factories_[name] = std::move(factory);
  return Status::OK();
}

bool ActivityRegistry::Has(const std::string& name) const {
  return factories_.count(name) > 0;
}

Result<std::shared_ptr<Activity>> ActivityRegistry::Create(
    const std::string& name, const ActivityConfig& config) const {
  auto it = factories_.find(name);
  if (it == factories_.end()) {
    return Status::NotFound("no activity named '" + name + "'");
  }
  return it->second(config);
}

std::vector<std::string> ActivityRegistry::Names() const {
  std::vector<std::string> out;
  out.reserve(factories_.size());
  for (const auto& [name, _] : factories_) out.push_back(name);
  return out;
}

}  // namespace provlin::engine
