#ifndef PROVLIN_ENGINE_OBSERVER_H_
#define PROVLIN_ENGINE_OBSERVER_H_

#include <string>
#include <vector>

#include "values/index.h"
#include "values/value.h"
#include "workflow/dataflow.h"

namespace provlin::engine {

/// A binding ⟨P:X[p], v⟩ as it appears in an observable event (paper
/// §2.3). `value` is the *element* at index `p` of the value bound to
/// the port — the whole value when p = [].
struct BindingEvent {
  workflow::PortRef port;
  Index index;
  Value value;

  std::string ToString() const {
    return "<" + port.ToString() + index.ToString() + ", " +
           value.ToString() + ">";
  }
};

/// Receives the observable events of a workflow execution — exactly the
/// information the paper's provenance layer records, nothing more (the
/// black-box assumption). The provenance TraceRecorder implements this;
/// tests install lightweight observers of their own.
class ExecutionObserver {
 public:
  virtual ~ExecutionObserver() = default;

  virtual void OnRunStart(const std::string& run_id,
                          const workflow::Dataflow& dataflow) {
    (void)run_id;
    (void)dataflow;
  }

  /// A user value was bound to a top-level workflow input port.
  virtual void OnWorkflowInput(const std::string& port, const Value& value) {
    (void)port;
    (void)value;
  }

  /// One elementary processor instance fired: InB_P -> OutB_P (§2.3 (1)).
  virtual void OnXform(const std::string& processor,
                       const std::vector<BindingEvent>& inputs,
                       const std::vector<BindingEvent>& outputs) {
    (void)processor;
    (void)inputs;
    (void)outputs;
  }

  /// An element moved along an arc (§2.3 (2)). Indices map identically
  /// on both ends (the arc transfers the value unchanged).
  virtual void OnXfer(const workflow::PortRef& src,
                      const workflow::PortRef& dst, const Index& index,
                      const Value& element) {
    (void)src;
    (void)dst;
    (void)index;
    (void)element;
  }

  virtual void OnWorkflowOutput(const std::string& port, const Value& value) {
    (void)port;
    (void)value;
  }

  virtual void OnRunEnd(const std::string& run_id, const Status& status) {
    (void)run_id;
    (void)status;
  }
};

}  // namespace provlin::engine

#endif  // PROVLIN_ENGINE_OBSERVER_H_
