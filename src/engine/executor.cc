#include "engine/executor.h"

#include <optional>

#include "engine/iteration.h"
#include "values/type.h"
#include "workflow/depth_propagation.h"
#include "workflow/graph.h"
#include "workflow/port_space.h"

namespace provlin::engine {
namespace {

using workflow::Arc;
using workflow::Dataflow;
using workflow::DepthMap;
using workflow::kNoPortSlot;
using workflow::kWorkflowProcessor;
using workflow::PortRef;
using workflow::PortSlotId;
using workflow::Processor;
using workflow::ProcessorDepths;

/// Recursively evaluates the iteration tree: invokes the activity at
/// each leaf, reports an xform event, and assembles one nested output
/// value per output port (the map of Def. 3).
class TreeEvaluator {
 public:
  TreeEvaluator(const Processor& proc, const Activity& activity,
                ExecutionObserver* observer, const ExecuteOptions& options)
      : proc_(proc),
        activity_(activity),
        observer_(observer),
        options_(options) {}

  size_t invocations() const { return invocations_; }
  size_t failed_invocations() const { return failed_; }
  const std::vector<Index>& out_indices() const { return out_indices_; }

  /// Returns one value per output port for the subtree at `node`.
  Result<std::vector<Value>> Eval(const TupleTree& node, const Index& path) {
    if (node.is_leaf) {
      std::vector<Value> outs;
      // Error-token propagation: an invocation whose arguments carry an
      // upstream error is never attempted; its outputs are error tokens
      // at declared depth (and the event is still recorded, so lineage
      // of the error leads back to the failure).
      std::string upstream_error;
      for (const Value& arg : node.args) {
        if (arg.ContainsError()) {
          upstream_error = arg.FirstError();
          break;
        }
      }
      if (!upstream_error.empty()) {
        ++failed_;
        for (const workflow::Port& out : proc_.outputs) {
          outs.push_back(
              WrapSingletons(Value::Error(upstream_error), out.dd()));
        }
      } else {
        Result<std::vector<Value>> invoked = activity_.Invoke(node.args);
        if (!invoked.ok()) {
          if (!options_.continue_on_error) return invoked.status();
          ++failed_;
          std::string msg = proc_.name + ": " + invoked.status().ToString();
          for (const workflow::Port& out : proc_.outputs) {
            outs.push_back(WrapSingletons(Value::Error(msg), out.dd()));
          }
        } else {
          outs = std::move(invoked).value();
          if (outs.size() != proc_.outputs.size()) {
            return Status::Internal(
                "activity '" + proc_.activity + "' returned " +
                std::to_string(outs.size()) + " values for " +
                std::to_string(proc_.outputs.size()) + " output ports");
          }
          // Assumption 1 (§3.1): outputs arrive at the declared depth.
          for (size_t j = 0; j < outs.size(); ++j) {
            if (outs[j].depth() != proc_.outputs[j].dd()) {
              return Status::Internal(
                  "activity '" + proc_.activity + "' bound depth-" +
                  std::to_string(outs[j].depth()) + " value to port '" +
                  proc_.outputs[j].name + "' of declared depth " +
                  std::to_string(proc_.outputs[j].dd()));
            }
          }
        }
      }
      ++invocations_;
      out_indices_.push_back(path);
      if (observer_ != nullptr) {
        std::vector<BindingEvent> ins;
        ins.reserve(node.args.size());
        for (size_t i = 0; i < node.args.size(); ++i) {
          ins.push_back(BindingEvent{PortRef{proc_.name, proc_.inputs[i].name},
                                     node.arg_indices[i], node.args[i]});
        }
        std::vector<BindingEvent> outbs;
        outbs.reserve(outs.size());
        for (size_t j = 0; j < outs.size(); ++j) {
          outbs.push_back(BindingEvent{
              PortRef{proc_.name, proc_.outputs[j].name}, path, outs[j]});
        }
        observer_->OnXform(proc_.name, ins, outbs);
      }
      return outs;
    }
    // Internal node: one list level per output port.
    std::vector<std::vector<Value>> per_child;
    per_child.reserve(node.children.size());
    for (size_t i = 0; i < node.children.size(); ++i) {
      PROVLIN_ASSIGN_OR_RETURN(
          std::vector<Value> sub,
          Eval(node.children[i], path.Child(static_cast<int32_t>(i))));
      per_child.push_back(std::move(sub));
    }
    std::vector<Value> outs;
    outs.reserve(proc_.outputs.size());
    for (size_t j = 0; j < proc_.outputs.size(); ++j) {
      std::vector<Value> level;
      level.reserve(per_child.size());
      for (auto& sub : per_child) level.push_back(std::move(sub[j]));
      outs.push_back(Value::List(std::move(level)));
    }
    return outs;
  }

 private:
  const Processor& proc_;
  const Activity& activity_;
  ExecutionObserver* observer_;
  ExecuteOptions options_;
  size_t invocations_ = 0;
  size_t failed_ = 0;
  std::vector<Index> out_indices_;
};

}  // namespace

Result<RunResult> Executor::Execute(const Dataflow& dataflow,
                                    const std::map<std::string, Value>& inputs,
                                    const std::string& run_id,
                                    const ExecuteOptions& options) {
  RunResult result;
  result.run_id = run_id;

  PROVLIN_ASSIGN_OR_RETURN(DepthMap depths,
                           workflow::PropagateDepths(dataflow));
  workflow::ProcessorGraph graph(dataflow);
  PROVLIN_ASSIGN_OR_RETURN(std::vector<std::string> order,
                           graph.TopologicalOrder());

  if (observer_ != nullptr) observer_->OnRunStart(run_id, dataflow);
  auto fail = [&](Status st) -> Status {
    if (observer_ != nullptr) observer_->OnRunEnd(run_id, st);
    return st;
  };

  // Resolved values and production granularity (the out-binding indices
  // recorded when the port's value was produced) per port. Ports are
  // addressed by their dense slot ids, so the hot loop binds and looks
  // up values by array index rather than by "processor:port" string.
  const workflow::PortSpace& ports = dataflow.Ports();
  std::vector<std::optional<Value>> port_values(ports.size());
  std::vector<std::vector<Index>> port_granularity(ports.size());

  // Bind workflow inputs (assumption 2: value depth == declared depth).
  for (const workflow::Port& in : dataflow.inputs()) {
    auto it = inputs.find(in.name);
    if (it == inputs.end()) {
      return fail(Status::InvalidArgument("missing workflow input '" +
                                          in.name + "'"));
    }
    PROVLIN_ASSIGN_OR_RETURN(InferredType t, InferType(it->second));
    if (t.depth != in.dd()) {
      return fail(Status::InvalidArgument(
          "workflow input '" + in.name + "' has depth " +
          std::to_string(t.depth) + ", declared " + std::to_string(in.dd())));
    }
    if (t.base != AtomKind::kNull && t.base != in.declared_type.base) {
      return fail(Status::InvalidArgument(
          "workflow input '" + in.name + "' has base type " +
          std::string(AtomKindName(t.base)) + ", declared " +
          std::string(AtomKindName(in.declared_type.base))));
    }
    PortSlotId slot = ports.Find(PortRef{kWorkflowProcessor, in.name});
    port_values[slot] = it->second;
    port_granularity[slot] = {Index::Empty()};
    if (observer_ != nullptr) observer_->OnWorkflowInput(in.name, it->second);
  }

  // Emits xfer events for one arc at the producer's granularity. Arcs
  // into workflow outputs transfer coarsely (one whole-value event):
  // Taverna collects outputs as complete values, and lineage queries on
  // them keep their fine index because arc transfers are index-identical.
  auto emit_xfer = [&](const Arc& arc) -> Status {
    if (observer_ == nullptr) return Status::OK();
    PortSlotId src_slot = ports.Find(arc.src);
    const Value& value = *port_values[src_slot];
    if (arc.dst.processor == kWorkflowProcessor) {
      observer_->OnXfer(arc.src, arc.dst, Index::Empty(), value);
      return Status::OK();
    }
    for (const Index& idx : port_granularity[src_slot]) {
      PROVLIN_ASSIGN_OR_RETURN(Value element, value.At(idx));
      observer_->OnXfer(arc.src, arc.dst, idx, element);
    }
    return Status::OK();
  };

  for (const std::string& pname : order) {
    const Processor* proc = dataflow.FindProcessor(pname);
    const ProcessorDepths& pd = depths.ForProcessor(pname);

    // Gather input bindings.
    std::vector<Value> bound;
    bound.reserve(proc->inputs.size());
    for (size_t i = 0; i < proc->inputs.size(); ++i) {
      const workflow::Port& in = proc->inputs[i];
      PortRef dst{pname, in.name};
      std::vector<const Arc*> arcs = dataflow.ArcsInto(dst);
      if (!arcs.empty()) {
        const Arc& arc = *arcs.front();
        PortSlotId src_slot = ports.Find(arc.src);
        if (src_slot == kNoPortSlot || !port_values[src_slot].has_value()) {
          return fail(Status::Internal("arc source " + arc.src.ToString() +
                                       " unresolved at " + pname));
        }
        Status st = emit_xfer(arc);
        if (!st.ok()) return fail(st);
        bound.push_back(*port_values[src_slot]);
      } else {
        auto dit = proc->defaults.find(in.name);
        if (dit == proc->defaults.end()) {
          return fail(Status::FailedPrecondition(
              "input port " + dst.ToString() +
              " is unconnected and has no default"));
        }
        PROVLIN_ASSIGN_OR_RETURN(InferredType t, InferType(dit->second));
        if (t.depth != in.dd()) {
          return fail(Status::InvalidArgument(
              "default for " + dst.ToString() + " has depth " +
              std::to_string(t.depth) + ", declared " +
              std::to_string(in.dd())));
        }
        bound.push_back(dit->second);
      }
      // Static/actual depth agreement (the property §3.1 relies on).
      if (bound.back().depth() != pd.input_depths[i]) {
        return fail(Status::Internal(
            "port " + dst.ToString() + ": actual depth " +
            std::to_string(bound.back().depth()) + " != propagated depth " +
            std::to_string(pd.input_depths[i])));
      }
    }

    std::vector<std::string> port_names;
    port_names.reserve(proc->inputs.size());
    for (const workflow::Port& in : proc->inputs) {
      port_names.push_back(in.name);
    }
    PROVLIN_ASSIGN_OR_RETURN(
        TupleTree tree,
        BuildStrategyIterationTree(proc->EffectiveStrategy(), port_names,
                                   bound, pd.input_deltas));

    auto activity = registry_->Create(proc->activity, proc->config);
    if (!activity.ok()) return fail(activity.status());

    TreeEvaluator evaluator(*proc, *activity.value(), observer_, options);
    PROVLIN_ASSIGN_OR_RETURN(std::vector<Value> outs,
                             evaluator.Eval(tree, Index::Empty()));
    result.total_invocations += evaluator.invocations();
    result.failed_invocations += evaluator.failed_invocations();

    std::vector<Index> granularity = evaluator.out_indices();
    if (granularity.empty()) {
      // Zero invocations (empty iterated list): the ports still carry
      // their (empty) nested values at whole-value granularity.
      granularity = {Index::Empty()};
    }
    for (size_t j = 0; j < proc->outputs.size(); ++j) {
      PortSlotId slot = ports.Find(PortRef{pname, proc->outputs[j].name});
      port_values[slot] = std::move(outs[j]);
      port_granularity[slot] = granularity;
    }
  }

  // Collect workflow outputs.
  for (const workflow::Port& out : dataflow.outputs()) {
    PortRef dst{kWorkflowProcessor, out.name};
    std::vector<const Arc*> arcs = dataflow.ArcsInto(dst);
    if (arcs.empty()) {
      return fail(Status::FailedPrecondition("workflow output '" + out.name +
                                             "' has no incoming arc"));
    }
    const Arc& arc = *arcs.front();
    PortSlotId src_slot = ports.Find(arc.src);
    if (src_slot == kNoPortSlot || !port_values[src_slot].has_value()) {
      return fail(Status::Internal("arc source " + arc.src.ToString() +
                                   " unresolved at workflow output"));
    }
    Status st = emit_xfer(arc);
    if (!st.ok()) return fail(st);
    result.outputs[out.name] = *port_values[src_slot];
    port_values[ports.Find(dst)] = *port_values[src_slot];
    if (observer_ != nullptr) {
      observer_->OnWorkflowOutput(out.name, *port_values[src_slot]);
    }
  }

  // Render boundary: RunResult keeps the string-keyed view for callers
  // and tests; the flat slot vectors existed only for the run itself.
  for (size_t i = 0; i < port_values.size(); ++i) {
    if (!port_values[i].has_value()) continue;
    result.port_values.emplace(
        ports.RefOf(static_cast<PortSlotId>(i)).ToString(),
        std::move(*port_values[i]));
  }
  if (observer_ != nullptr) observer_->OnRunEnd(run_id, Status::OK());
  return result;
}

}  // namespace provlin::engine
