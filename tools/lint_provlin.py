#!/usr/bin/env python3
"""Project-specific lint for the provlin tree.

Mechanically enforceable conventions that neither the compiler nor
clang-tidy check for us:

  1. sync-primitives: raw C++ standard-library synchronization primitives
     (std::mutex, std::shared_mutex, std::lock_guard, std::unique_lock,
     std::condition_variable, ...) are banned everywhere except
     src/common/sync.h, which wraps them in the Clang Thread Safety
     Analysis-annotated provlin::common types. std::atomic, std::once_flag
     and std::call_once are NOT capabilities and stay allowed.
  2. iostream-in-header: no `#include <iostream>` in headers — it drags
     in static init-order machinery (std::ios_base::Init) for every
     translation unit that touches the header.
  3. span-literal: the name argument of PROVLIN_TRACE_SPAN /
     PROVLIN_TRACE_SPAN_VAR must be a string literal. The tracer stores
     `const char*` without copying, so a computed name could dangle by
     the time the ring buffer is snapshotted.
  4. test-sleep: no std::this_thread::sleep_for in tests used as a
     synchronization mechanism — sleeps make tests flaky under load and
     slow everywhere else. Legitimate uses (e.g. timing the sleep itself)
     carry an explicit `// lint: allow(sleep)` marker on the same line.
  5. metric-name: a string-literal instrument name passed to
     GetCounter / GetGauge / GetHistogram under src/ or tools/ must
     appear in the authoritative lists in src/common/metric_names.h —
     one schema, so `provlin stats` and scrapers always see every name
     and a typo'd registration cannot silently fork an instrument.
     Tests are exempt (they register throwaway names), and computed
     names (the sanctioned per-shard `"provenance/shard" + k + ...`
     pattern) are not literals and are skipped.
  6. lock-rank: every Mutex / SharedMutex declared under src/ or tools/
     must be constructed with a spelled-out `LockRank::` enumerator from
     the central registry (src/common/lock_rank.h). The rank-less
     constructor is already deleted, but the compiler would accept an
     unregistered `static_cast<LockRank>(n)` or a rank forwarded through
     a variable; the lint pins construction sites to named registry
     entries so the DESIGN.md lock tables stay the single source of
     truth. sync.h itself (the wrapper definition) is exempt.

Usage:
  python3 tools/lint_provlin.py [--root DIR] [SUBDIR ...]

Exits 0 when clean, 1 when any finding is reported (or the root is
missing). Findings are printed one per line as `path:line: rule: detail`.
"""

from __future__ import annotations

import argparse
import re
import sys
from pathlib import Path

# Directories scanned relative to the repo root, and the extensions that
# count as C++ sources/headers.
SCAN_DIRS = ("src", "tests", "bench", "examples", "tools")
CXX_EXTENSIONS = {".h", ".hpp", ".cc", ".cpp", ".cxx"}
HEADER_EXTENSIONS = {".h", ".hpp"}

# The one file allowed to name raw standard-library sync primitives: it
# defines the annotated wrappers everything else must use.
SYNC_WRAPPER = Path("src") / "common" / "sync.h"

BANNED_SYNC = (
    "std::mutex",
    "std::timed_mutex",
    "std::recursive_mutex",
    "std::recursive_timed_mutex",
    "std::shared_mutex",
    "std::shared_timed_mutex",
    "std::lock_guard",
    "std::unique_lock",
    "std::shared_lock",
    "std::scoped_lock",
    "std::condition_variable",
    "std::condition_variable_any",
)
# \b on both sides so std::mutex does not also match std::mutex-like
# longer names handled separately (condition_variable vs _any ordering).
BANNED_SYNC_RE = re.compile(
    "|".join(re.escape(t) + r"\b" for t in sorted(BANNED_SYNC, key=len, reverse=True))
)

IOSTREAM_RE = re.compile(r"^\s*#\s*include\s*<iostream>")

# Name argument of a span macro: PROVLIN_TRACE_SPAN(<name>) or
# PROVLIN_TRACE_SPAN_VAR(<var>, <name>). The internal CAT helpers and the
# macro definitions themselves (lines starting with #define) are skipped.
SPAN_RE = re.compile(r"\bPROVLIN_TRACE_SPAN(_VAR)?\s*\(([^)]*)\)")

SLEEP_RE = re.compile(r"\bsleep_for\s*\(")
SLEEP_ALLOW = "lint: allow(sleep)"

# A registration call whose first argument is a *complete* string
# literal: GetCounter("..."), GetGauge("..."), GetHistogram("...", ...).
# A literal followed by `+` (the sanctioned dynamic patterns —
# per-shard, per-engine) is a computed name and is not checked.
METRIC_CALL_RE = re.compile(
    r"\bGet(?:Counter|Gauge|Histogram)\s*\(\s*\"([^\"]+)\"\s*[,)]"
)
METRIC_NAMES_HEADER = Path("src") / "common" / "metric_names.h"
STRING_LITERAL_RE = re.compile(r"\"([^\"]+)\"")


def load_registered_metric_names(root: Path) -> set[str] | None:
    """Every string literal in metric_names.h — the authoritative schema."""
    path = root / METRIC_NAMES_HEADER
    try:
        text = path.read_text(encoding="utf-8")
    except (OSError, UnicodeDecodeError):
        return None
    return set(STRING_LITERAL_RE.findall(text))

# A Mutex/SharedMutex *object* declaration: optional qualifiers, the
# type, one identifier, then `;` / `{` / `=` / `(`. References, pointers
# and the guard types (MutexLock etc.) do not match (`Mutex` requires a
# word boundary on both sides). The initializer — the rest of the
# matched line — must spell a LockRank:: enumerator.
LOCK_DECL_RE = re.compile(
    r"\b(?:provlin::)?(?:common::)?(?:Shared)?Mutex\s+\w+\s*[;{=(]"
)
LOCK_RANK_TOKEN = "LockRank::"

LINE_COMMENT_RE = re.compile(r"//.*$")


def strip_line_comment(line: str) -> str:
    """Drops a trailing // comment (good enough: no multi-line strings here)."""
    return LINE_COMMENT_RE.sub("", line)


def lint_file(
    path: Path,
    rel: Path,
    findings: list[str],
    metric_names: set[str] | None = None,
) -> None:
    try:
        text = path.read_text(encoding="utf-8")
    except (OSError, UnicodeDecodeError) as e:
        findings.append(f"{rel}: read-error: {e}")
        return

    is_header = path.suffix in HEADER_EXTENSIONS
    is_test = rel.parts[0] == "tests"
    is_sync_wrapper = rel == SYNC_WRAPPER
    check_lock_ranks = rel.parts[0] in ("src", "tools") and not is_sync_wrapper
    check_metric_names = (
        metric_names is not None
        and rel.parts[0] in ("src", "tools")
        and rel != METRIC_NAMES_HEADER
    )
    in_block_comment = False

    for lineno, raw in enumerate(text.splitlines(), start=1):
        # Track /* ... */ comments so documentation mentioning the banned
        # names is not flagged.
        line = raw
        if in_block_comment:
            end = line.find("*/")
            if end < 0:
                continue
            line = line[end + 2 :]
            in_block_comment = False
        while True:
            start = line.find("/*")
            if start < 0:
                break
            end = line.find("*/", start + 2)
            if end < 0:
                in_block_comment = True
                line = line[:start]
                break
            line = line[:start] + line[end + 2 :]
        code = strip_line_comment(line)

        if not is_sync_wrapper:
            m = BANNED_SYNC_RE.search(code)
            if m:
                findings.append(
                    f"{rel}:{lineno}: sync-primitives: use provlin::common "
                    f"sync wrappers (common/sync.h) instead of {m.group(0)}"
                )

        if is_header and IOSTREAM_RE.search(code):
            findings.append(
                f"{rel}:{lineno}: iostream-in-header: include <ostream>/<cstdio> "
                "in the .cc instead"
            )

        if not code.lstrip().startswith("#define"):
            for m in SPAN_RE.finditer(code):
                args = m.group(2)
                name_arg = args.split(",", 1)[1] if m.group(1) else args
                name_arg = name_arg.strip()
                if name_arg and not name_arg.startswith('"'):
                    findings.append(
                        f"{rel}:{lineno}: span-literal: PROVLIN_TRACE_SPAN name "
                        f"must be a string literal, got `{name_arg}`"
                    )

        if check_metric_names:
            for m in METRIC_CALL_RE.finditer(code):
                name = m.group(1)
                if name not in metric_names:
                    findings.append(
                        f"{rel}:{lineno}: metric-name: '{name}' is not listed "
                        "in src/common/metric_names.h — add it to the schema "
                        "there (one authoritative list per instrument kind)"
                    )

        if check_lock_ranks:
            m = LOCK_DECL_RE.search(code)
            if m and LOCK_RANK_TOKEN not in code:
                findings.append(
                    f"{rel}:{lineno}: lock-rank: Mutex/SharedMutex must be "
                    "constructed with a named LockRank:: enumerator from "
                    "src/common/lock_rank.h (see DESIGN.md §15)"
                )

        if is_test and SLEEP_RE.search(code) and SLEEP_ALLOW not in raw:
            findings.append(
                f"{rel}:{lineno}: test-sleep: sleep_for in a test — synchronize "
                f"explicitly, or mark `// {SLEEP_ALLOW}` if the sleep itself is "
                "under test"
            )


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        description="provlin project lint (sync wrappers, header hygiene, "
        "span literals, test sleeps)."
    )
    parser.add_argument(
        "--root",
        type=Path,
        default=Path(__file__).resolve().parent.parent,
        help="repository root to scan (default: the repo containing this script)",
    )
    parser.add_argument(
        "dirs",
        nargs="*",
        metavar="SUBDIR",
        help=f"subdirectories of the root to scan (default: {' '.join(SCAN_DIRS)})",
    )
    args = parser.parse_args(argv)

    root = args.root
    if not root.is_dir():
        print(f"error: root {root} is not a directory", file=sys.stderr)
        return 1

    findings: list[str] = []
    scanned = 0
    metric_names = load_registered_metric_names(root)
    if metric_names is None:
        findings.append(
            f"{METRIC_NAMES_HEADER}: read-error: the authoritative metric "
            "name schema is missing (metric-name rule cannot run)"
        )
    for d in args.dirs or SCAN_DIRS:
        base = root / d
        if not base.is_dir():
            if args.dirs:  # explicitly requested: missing is an error
                print(f"error: {base} is not a directory", file=sys.stderr)
                return 1
            continue
        for path in sorted(base.rglob("*")):
            if path.suffix in CXX_EXTENSIONS and path.is_file():
                lint_file(path, path.relative_to(root), findings, metric_names)
                scanned += 1

    for f in findings:
        print(f)
    print(
        f"lint_provlin: {scanned} files scanned, {len(findings)} finding(s)",
        file=sys.stderr,
    )
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
