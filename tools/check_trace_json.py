#!/usr/bin/env python3
"""Validate a Chrome trace-event JSON file emitted by --trace-out.

Usage: check_trace_json.py TRACE.json [--min-events N]

Checks that the file is what Perfetto / chrome://tracing will accept and
what the tracer promises to emit:

  - top level is an object with a "traceEvents" array,
  - every event is an object with the required fields (name, ph, ts,
    pid, tid) of the right types,
  - duration events are balanced: every "B" has a matching "E" on the
    same (pid, tid); "X" complete events carry a non-negative "dur",
  - timestamps are non-negative and sorted non-decreasing across the
    array (the tracer exports in start-timestamp order).

Exit status 0 on success, 1 with a report on any violation.
"""

import argparse
import json
import sys

REQUIRED_FIELDS = {"name": str, "ph": str, "ts": (int, float), "pid": int,
                   "tid": int}


def validate(doc):
    errors = []
    if not isinstance(doc, dict) or "traceEvents" not in doc:
        return ["top level is not an object with a 'traceEvents' array"]
    events = doc["traceEvents"]
    if not isinstance(events, list):
        return ["'traceEvents' is not an array"]

    open_stacks = {}  # (pid, tid) -> list of open "B" names
    last_ts = None
    for i, ev in enumerate(events):
        where = f"event {i}"
        if not isinstance(ev, dict):
            errors.append(f"{where}: not an object")
            continue
        bad_field = False
        for field, types in REQUIRED_FIELDS.items():
            if field not in ev:
                errors.append(f"{where}: missing '{field}'")
                bad_field = True
            elif not isinstance(ev[field], types):
                errors.append(
                    f"{where}: '{field}' has type "
                    f"{type(ev[field]).__name__}")
                bad_field = True
        if bad_field:
            continue
        where = f"event {i} ({ev['name']!r})"

        if ev["ts"] < 0:
            errors.append(f"{where}: negative ts {ev['ts']}")
        if last_ts is not None and ev["ts"] < last_ts:
            errors.append(
                f"{where}: ts {ev['ts']} < previous {last_ts} "
                "(events must be sorted by start timestamp)")
        last_ts = ev["ts"]

        key = (ev["pid"], ev["tid"])
        ph = ev["ph"]
        if ph == "X":
            if "dur" not in ev:
                errors.append(f"{where}: 'X' event without 'dur'")
            elif not isinstance(ev["dur"], (int, float)) or ev["dur"] < 0:
                errors.append(f"{where}: bad 'dur' {ev['dur']!r}")
        elif ph == "B":
            open_stacks.setdefault(key, []).append(ev["name"])
        elif ph == "E":
            stack = open_stacks.get(key, [])
            if not stack:
                errors.append(f"{where}: 'E' with no open 'B' on {key}")
            else:
                stack.pop()
        elif ph not in ("i", "I", "M", "C"):
            errors.append(f"{where}: unsupported phase {ph!r}")

    for key, stack in sorted(open_stacks.items()):
        for name in stack:
            errors.append(f"unclosed 'B' event {name!r} on {key}")
    return errors


def main(argv):
    parser = argparse.ArgumentParser(
        description="Validate a Chrome trace-event JSON file emitted by "
        "--trace-out (required fields, balanced B/E pairs, sorted "
        "timestamps)."
    )
    parser.add_argument("trace", help="trace JSON file to validate")
    parser.add_argument(
        "--min-events",
        type=int,
        default=0,
        metavar="N",
        help="fail unless the file contains at least N events (default 0)",
    )
    args = parser.parse_args(argv)
    path = args.trace
    min_events = args.min_events

    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"[{path}] unreadable or malformed JSON: {e}")
        return 1

    errors = validate(doc)
    n = len(doc.get("traceEvents", [])) if isinstance(doc, dict) else 0
    if not errors and n < min_events:
        errors.append(f"only {n} events, expected at least {min_events}")
    if errors:
        print(f"[{path}] {len(errors)} violation(s):")
        for e in errors:
            print(f"  {e}")
        return 1
    print(f"[{path}] {n} trace events, all well-formed")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
